#!/usr/bin/env bash
# The full gate: tier-1 verify (release build + tests) plus formatting and
# lints. Run before sending a PR; CI runs exactly this.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo test -q --workspace (IMPACC_PARALLEL=4)"
# Tier-1 again on the conservative parallel engine: every launched run
# partitions by node and advances under a 4-worker horizon protocol.
# Bit-identical results are the contract (DESIGN.md §5i), so the whole
# suite must stay green with the knob forced on.
IMPACC_PARALLEL=4 cargo test -q --workspace

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> profiler golden test"
cargo test -q -p impacc-prof golden

echo "==> perf smoke: bench_speed --quick"
PERF_DIR=target/perf
mkdir -p "$PERF_DIR"
IMPACC_BENCH_DIR="$PERF_DIR" \
    cargo run --release -q -p impacc-bench --bin bench_speed -- --quick \
    | grep -E '^\[speed\]|actors:'

echo "==> perf regression gate"
# Compare the fresh run's events/sec against the committed baseline
# (baselines/speed.json, regenerated via ./ci.sh --rebaseline on the
# reference machine). A drop of more than IMPACC_PERF_BASELINE_PCT percent
# (default 30) fails CI. Skips with a notice when no baseline is committed.
PCT="${IMPACC_PERF_BASELINE_PCT:-30}"
fresh=$(grep -o '"events_per_sec":[0-9]*' "$PERF_DIR/BENCH_speed.json" | cut -d: -f2)
if [[ "${1:-}" == "--rebaseline" ]]; then
    mkdir -p baselines
    cp "$PERF_DIR/BENCH_speed.json" baselines/speed.json
    echo "perf gate: baseline reset to $fresh events/sec (commit baselines/speed.json)"
elif baseline_json=$(git show HEAD:baselines/speed.json 2>/dev/null); then
    base=$(printf '%s' "$baseline_json" | grep -o '"events_per_sec":[0-9]*' | cut -d: -f2)
    awk -v fresh="$fresh" -v base="$base" -v pct="$PCT" 'BEGIN {
        floor = base * (1 - pct / 100);
        printf "perf gate: fresh %.0f vs baseline %.0f events/sec (floor %.0f, -%s%%)\n",
            fresh, base, floor, pct;
        if (fresh < floor) {
            printf "perf gate: FAIL — throughput regressed more than %s%%\n", pct;
            exit 1;
        }
        print "perf gate: ok";
    }'
else
    echo "perf gate: skipped (no committed baselines/speed.json; run ./ci.sh --rebaseline)"
fi

echo "==> cores-sweep + flight-overhead gate: bench_speed --smoke"
# 8192-actor lockstep, serial engine vs 4 conservative workers: the
# parallel run must match the serial event total (±1 teardown dispatch)
# and finish at least 2x faster. The smoke also prices the always-on
# flight recorder against a bare engine on the phased compute loop and
# fails if the overhead exceeds IMPACC_FLIGHT_OVERHEAD_PCT (default 10%).
# The binary panics (nonzero exit) on any violation.
cargo run --release -q -p impacc-bench --bin bench_speed -- --smoke

echo "==> lockstep parallel regression gate"
# Same floor as the main speed gate, applied to the 4-worker lockstep
# throughput published by the cores sweep (lockstep_par4_events_per_sec
# in BENCH_speed.json): the conservative engine must not quietly lose
# its win over the serial engine release over release.
fresh=$(grep -o '"lockstep_par4_events_per_sec":[0-9.]*' "$PERF_DIR/BENCH_speed.json" | cut -d: -f2)
if [[ "${1:-}" == "--rebaseline" ]]; then
    echo "lockstep gate: baseline reset to $fresh events/sec (covered by baselines/speed.json)"
elif base=$(git show HEAD:baselines/speed.json 2>/dev/null \
        | grep -o '"lockstep_par4_events_per_sec":[0-9.]*' | cut -d: -f2) \
        && [[ -n "$base" ]]; then
    awk -v fresh="$fresh" -v base="$base" -v pct="$PCT" 'BEGIN {
        floor = base * (1 - pct / 100);
        printf "lockstep gate: fresh %.0f vs baseline %.0f events/sec (floor %.0f, -%s%%)\n",
            fresh, base, floor, pct;
        if (fresh < floor) {
            printf "lockstep gate: FAIL — parallel throughput regressed more than %s%%\n", pct;
            exit 1;
        }
        print "lockstep gate: ok";
    }'
else
    echo "lockstep gate: skipped (no lockstep_par4_events_per_sec in committed baseline; run ./ci.sh --rebaseline)"
fi

echo "==> chaos smoke: fixed-seed fault injection + flight dump schema"
# A seeded faulted exchange must complete bit-correct with retries > 0,
# and a device-loss run must finish via the §3.2 remap. The binary
# panics (nonzero exit) on any violation, and drains each scenario's
# flight ring into $PERF_DIR/FLIGHT_*.json (reproducibility asserted
# in-binary).
IMPACC_BENCH_DIR="$PERF_DIR" \
    cargo run --release -q -p impacc-bench --bin bench_chaos -- --smoke
# The device-loss dump must be schema-versioned, carry an anomaly
# trigger, and attribute the fault (the mapper's remap marker is in the
# ring's retained events).
flight="$PERF_DIR/FLIGHT_chaos_device_loss.json"
[[ -f "$flight" ]] || { echo "flight gate: $flight missing"; exit 1; }
for needle in '"schema_version"' '"trigger":"anomaly"' 'device_loss' 'remap'; do
    grep -q "$needle" "$flight" \
        || { echo "flight gate: $needle missing from $flight"; exit 1; }
done
echo "flight gate: device-loss dump schema + fault attribution ok"

echo "==> coll smoke: hierarchical vs flat collectives"
# The two-level hierarchical allreduce must beat the flat binomial
# schedule at a small and a large payload on a multi-rank-per-node
# cluster; the binary panics (nonzero exit) on a regression.
cargo run --release -q -p impacc-bench --bin bench_coll -- --smoke

echo "==> coll sweep + regression gate"
# Same shape as the speed gate: fresh events/sec from the collective
# sweep vs the committed baselines/coll.json, floor at -$PCT%.
IMPACC_BENCH_DIR="$PERF_DIR" IMPACC_BENCH_QUICK=1 \
    cargo run --release -q -p impacc-bench --bin bench_coll \
    | grep -E '^\[coll\]'
fresh=$(grep -o '"events_per_sec":[0-9]*' "$PERF_DIR/BENCH_coll.json" | cut -d: -f2)
if [[ "${1:-}" == "--rebaseline" ]]; then
    cp "$PERF_DIR/BENCH_coll.json" baselines/coll.json
    echo "coll gate: baseline reset to $fresh events/sec (commit baselines/coll.json)"
elif baseline_json=$(git show HEAD:baselines/coll.json 2>/dev/null); then
    base=$(printf '%s' "$baseline_json" | grep -o '"events_per_sec":[0-9]*' | cut -d: -f2)
    awk -v fresh="$fresh" -v base="$base" -v pct="$PCT" 'BEGIN {
        floor = base * (1 - pct / 100);
        printf "coll gate: fresh %.0f vs baseline %.0f events/sec (floor %.0f, -%s%%)\n",
            fresh, base, floor, pct;
        if (fresh < floor) {
            printf "coll gate: FAIL — throughput regressed more than %s%%\n", pct;
            exit 1;
        }
        print "coll gate: ok";
    }'
else
    echo "coll gate: skipped (no committed baselines/coll.json; run ./ci.sh --rebaseline)"
fi

echo "==> array smoke: hand-written parity + halo scaling"
# The distributed-array layer's acceptance checks: the array jacobi must
# match the hand-written app bit-for-bit (residuals) and tick-for-tick
# (virtual end time) in all three runtime modes, halo bytes must scale
# exactly linearly with exchange depth, and the IMPACC-vs-baseline win
# must survive the array lowering. The binary panics (nonzero exit) on
# any violation.
cargo run --release -q -p impacc-bench --bin bench_array -- --smoke

echo "==> array sweep + regression gate"
# Same shape as the speed/coll gates: fresh events/sec from the
# halo-depth sweep vs the committed baselines/array.json, floor at -$PCT%.
IMPACC_BENCH_DIR="$PERF_DIR" IMPACC_BENCH_QUICK=1 \
    cargo run --release -q -p impacc-bench --bin bench_array \
    | grep -E '^\[array\]'
fresh=$(grep -o '"events_per_sec":[0-9]*' "$PERF_DIR/BENCH_array.json" | cut -d: -f2)
if [[ "${1:-}" == "--rebaseline" ]]; then
    cp "$PERF_DIR/BENCH_array.json" baselines/array.json
    echo "array gate: baseline reset to $fresh events/sec (commit baselines/array.json)"
elif baseline_json=$(git show HEAD:baselines/array.json 2>/dev/null); then
    base=$(printf '%s' "$baseline_json" | grep -o '"events_per_sec":[0-9]*' | cut -d: -f2)
    awk -v fresh="$fresh" -v base="$base" -v pct="$PCT" 'BEGIN {
        floor = base * (1 - pct / 100);
        printf "array gate: fresh %.0f vs baseline %.0f events/sec (floor %.0f, -%s%%)\n",
            fresh, base, floor, pct;
        if (fresh < floor) {
            printf "array gate: FAIL — throughput regressed more than %s%%\n", pct;
            exit 1;
        }
        print "array gate: ok";
    }'
else
    echo "array gate: skipped (no committed baselines/array.json; run ./ci.sh --rebaseline)"
fi

echo "==> serve smoke: admission control + cache determinism"
# Backpressure must reject with a reason, and a resubmitted job set must
# be 100% cache hits with byte-identical results. The binary panics
# (nonzero exit) on any violation.
cargo run --release -q -p impacc-bench --bin bench_serve -- --smoke

echo "==> serve load test + regression gate"
# Same shape as the speed/coll gates: fresh cold-pass throughput from
# the serving-layer load test vs the committed baselines/serve.json,
# floor at -$PCT%. The load test itself asserts a 100% warm hit rate.
IMPACC_BENCH_DIR="$PERF_DIR" IMPACC_BENCH_QUICK=1 \
    cargo run --release -q -p impacc-bench --bin bench_serve \
    | grep -E '^\[serve\]'
fresh=$(grep -o '"events_per_sec":[0-9]*' "$PERF_DIR/BENCH_serve.json" | cut -d: -f2)
if [[ "${1:-}" == "--rebaseline" ]]; then
    cp "$PERF_DIR/BENCH_serve.json" baselines/serve.json
    echo "serve gate: baseline reset to $fresh events/sec (commit baselines/serve.json)"
elif baseline_json=$(git show HEAD:baselines/serve.json 2>/dev/null); then
    base=$(printf '%s' "$baseline_json" | grep -o '"events_per_sec":[0-9]*' | cut -d: -f2)
    awk -v fresh="$fresh" -v base="$base" -v pct="$PCT" 'BEGIN {
        floor = base * (1 - pct / 100);
        printf "serve gate: fresh %.0f vs baseline %.0f events/sec (floor %.0f, -%s%%)\n",
            fresh, base, floor, pct;
        if (fresh < floor) {
            printf "serve gate: FAIL — throughput regressed more than %s%%\n", pct;
            exit 1;
        }
        print "serve gate: ok";
    }'
else
    echo "serve gate: skipped (no committed baselines/serve.json; run ./ci.sh --rebaseline)"
fi

echo "==> serve campaign: cached resubmit executes nothing"
# Drive the shipped collective campaign through the spool daemon twice.
# The second drain must be answered entirely by the content-addressed
# cache: 'executed 0' or the serving layer broke its core contract.
SPOOL=target/ci-spool
rm -rf "$SPOOL"
serve_bin=target/release/serve
"$serve_bin" campaign --spool "$SPOOL" campaigns/coll_sweep.campaign
"$serve_bin" daemon --spool "$SPOOL" --workers 4 --drain
"$serve_bin" campaign --spool "$SPOOL" campaigns/coll_sweep.campaign
second=$("$serve_bin" daemon --spool "$SPOOL" --workers 4 --drain)
echo "$second"
if ! grep -q "executed 0," <<<"$second"; then
    echo "serve campaign gate: FAIL — resubmitted campaign re-executed jobs"
    exit 1
fi
echo "serve campaign gate: ok"

echo "==> serve campaign: array scenarios end-to-end"
# The three distributed-array workloads (stencil3d, stencil2d, redblack)
# through the same spool daemon: every sweep point must execute, and a
# resubmit must again be answered entirely from the cache.
"$serve_bin" campaign --spool "$SPOOL" campaigns/array.campaign
"$serve_bin" daemon --spool "$SPOOL" --workers 4 --drain
"$serve_bin" campaign --spool "$SPOOL" campaigns/array.campaign
second=$("$serve_bin" daemon --spool "$SPOOL" --workers 4 --drain)
echo "$second"
if ! grep -q "executed 0," <<<"$second"; then
    echo "array campaign gate: FAIL — resubmitted campaign re-executed jobs"
    exit 1
fi
echo "array campaign gate: ok"

echo "==> dsl golden-translation gate"
# The source-to-source compiler's output is part of the contract: for
# every shipped .acc example, `impaccc translate` must reproduce the
# committed golden snapshot (canonical source + lowered plan) byte for
# byte. Regenerate deliberately with:
#   impaccc translate <name> > crates/dsl/golden/<name>.plan
impaccc=target/release/impaccc
for prog in jacobi dot stencil2d; do
    golden="crates/dsl/golden/$prog.plan"
    [[ -f "$golden" ]] || { echo "dsl golden gate: $golden missing"; exit 1; }
    if ! diff -u "$golden" <("$impaccc" translate "$prog"); then
        echo "dsl golden gate: FAIL — $prog translation drifted from $golden"
        exit 1
    fi
done
echo "dsl golden gate: ok (3 translations byte-identical)"

echo "==> dsl smoke: compiled-program parity + device split"
# The compiler's acceptance checks: the compiled jacobi.acc must match
# the hand-written app bit-for-bit and tick-for-tick in all three
# runtime modes, the testmpi-pattern dot.acc must run end to end on
# single- and multi-node launches with the exact sum, the 4-way device
# split must beat one device by >= 3x in virtual time, and translation
# must stay under 10ms and byte-stable. The binary panics (nonzero
# exit) on any violation.
cargo run --release -q -p impacc-bench --bin bench_dsl -- --smoke

echo "==> dsl sweep + regression gate"
# Same shape as the speed/coll/array gates: fresh events/sec from the
# compiled-DSL sweep vs the committed baselines/dsl.json, floor at -$PCT%.
IMPACC_BENCH_DIR="$PERF_DIR" IMPACC_BENCH_QUICK=1 \
    cargo run --release -q -p impacc-bench --bin bench_dsl \
    | grep -E '^\[dsl\]'
fresh=$(grep -o '"events_per_sec":[0-9]*' "$PERF_DIR/BENCH_dsl.json" | cut -d: -f2)
if [[ "${1:-}" == "--rebaseline" ]]; then
    cp "$PERF_DIR/BENCH_dsl.json" baselines/dsl.json
    echo "dsl gate: baseline reset to $fresh events/sec (commit baselines/dsl.json)"
elif baseline_json=$(git show HEAD:baselines/dsl.json 2>/dev/null); then
    base=$(printf '%s' "$baseline_json" | grep -o '"events_per_sec":[0-9]*' | cut -d: -f2)
    awk -v fresh="$fresh" -v base="$base" -v pct="$PCT" 'BEGIN {
        floor = base * (1 - pct / 100);
        printf "dsl gate: fresh %.0f vs baseline %.0f events/sec (floor %.0f, -%s%%)\n",
            fresh, base, floor, pct;
        if (fresh < floor) {
            printf "dsl gate: FAIL — throughput regressed more than %s%%\n", pct;
            exit 1;
        }
        print "dsl gate: ok";
    }'
else
    echo "dsl gate: skipped (no committed baselines/dsl.json; run ./ci.sh --rebaseline)"
fi

echo "==> serve campaign: compiled-DSL programs end-to-end"
# The .acc programs through the same spool daemon, keyed by the normal
# form of their source: every sweep point must execute once, and a
# resubmit must again be answered entirely from the cache.
"$serve_bin" campaign --spool "$SPOOL" campaigns/dsl.campaign
"$serve_bin" daemon --spool "$SPOOL" --workers 4 --drain
"$serve_bin" campaign --spool "$SPOOL" campaigns/dsl.campaign
second=$("$serve_bin" daemon --spool "$SPOOL" --workers 4 --drain)
echo "$second"
if ! grep -q "executed 0," <<<"$second"; then
    echo "dsl campaign gate: FAIL — resubmitted campaign re-executed jobs"
    exit 1
fi
echo "dsl campaign gate: ok"

echo "ci: all green"
