#!/usr/bin/env bash
# The full gate: tier-1 verify (release build + tests) plus formatting and
# lints. Run before sending a PR; CI runs exactly this.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> perf smoke: bench_speed --quick"
cargo run --release -q -p impacc-bench --bin bench_speed -- --quick \
    | grep -E '^\[speed\]|actors:'

echo "ci: all green"
