//! Simulated accelerator devices.
//!
//! A [`Device`] wraps one accelerator of the machine spec: it owns the
//! device-memory space inside the node's unified address space, a serial
//! compute engine (kernels execute one at a time), and helpers that enqueue
//! copies/kernels on activity queues or perform them directly (the message
//! handler thread uses the direct forms for fused copies, §3.7).
//!
//! Timing convention: an operation's *data effects* (bytes moved, kernel
//! results written) materialize at the operation's completion instant —
//! the executing actor advances first, then mutates the backing store.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use impacc_machine::{ClusterResources, DeviceKind, DeviceSpec, HdDir, KernelCost};
use impacc_mem::{AddressSpace, Backing, DevPtr, MemError, MemSpace, Region};
use impacc_vtime::{Ctx, Latch, SerialResource};

use crate::queue::ActivityQueue;

/// Standard accounting tags used across the framework, so breakdown
/// figures (11 and 14) can aggregate consistently.
pub mod tags {
    /// Host-to-device PCIe transfer time.
    pub const HTOD: &str = "HtoD";
    /// Device-to-host PCIe transfer time.
    pub const DTOH: &str = "DtoH";
    /// Direct device-to-device peer transfer time.
    pub const DTOD: &str = "DtoD";
    /// Host-to-host memcpy time.
    pub const HTOH: &str = "HtoH";
    /// Kernel execution time.
    pub const KERNEL: &str = "kernel";
    /// Fixed driver/launch overheads.
    pub const OVERHEAD: &str = "acc_overhead";
}

/// A device allocation: the device region plus (for OpenCL devices) the
/// host-side shadow range that gives the buffer an address.
#[derive(Clone, Debug)]
pub struct DevAlloc {
    /// The device-memory region holding the bytes.
    pub region: Region,
    /// OpenCL only: the reserved host-range alias.
    pub shadow: Option<Region>,
    /// The pointer the program arithmetic uses.
    pub ptr: DevPtr,
}

impl DevAlloc {
    /// The address used for pointer arithmetic over this allocation.
    pub fn addr(&self) -> impacc_mem::VirtAddr {
        self.ptr.lookup_addr()
    }
}

struct DeviceInner {
    node: usize,
    idx: usize,
    spec: DeviceSpec,
    res: Arc<ClusterResources>,
    space: Arc<AddressSpace>,
    compute: SerialResource,
    next_handle: AtomicU64,
}

/// One simulated accelerator. Cloning shares the device.
#[derive(Clone)]
pub struct Device {
    inner: Arc<DeviceInner>,
}

impl Device {
    /// Wrap device `idx` of `node`, registering its memory space (and an
    /// OpenCL shadow space if needed) in the node's address space.
    pub fn new(
        node: usize,
        idx: usize,
        res: Arc<ClusterResources>,
        space: Arc<AddressSpace>,
    ) -> Device {
        let spec = res.spec.nodes[node].devices[idx].clone();
        space.register_space(MemSpace::Device(idx), spec.mem_bytes);
        if spec.kind == DeviceKind::OpenClMic {
            space.register_space(MemSpace::MappedShadow(idx), spec.mem_bytes);
        }
        Device {
            inner: Arc::new(DeviceInner {
                node,
                idx,
                spec,
                res,
                space,
                compute: SerialResource::new("dev_compute"),
                next_handle: AtomicU64::new(1),
            }),
        }
    }

    /// Node index this device belongs to.
    pub fn node(&self) -> usize {
        self.inner.node
    }

    /// Local device index within the node.
    pub fn idx(&self) -> usize {
        self.inner.idx
    }

    /// Device description.
    pub fn spec(&self) -> &DeviceSpec {
        &self.inner.spec
    }

    /// The driver API family for this device.
    pub fn kind(&self) -> DeviceKind {
        self.inner.spec.kind
    }

    /// The machine resources this device reserves transfers against.
    pub fn resources(&self) -> &Arc<ClusterResources> {
        &self.inner.res
    }

    /// Has the active fault plan marked this device as failed? The §3.2
    /// task–device mapper must not assign work here; kernel launches on a
    /// failed device panic (a real driver would return an error on every
    /// call).
    pub fn is_failed(&self) -> bool {
        self.inner
            .res
            .chaos
            .device_failed(self.inner.node, self.inner.idx)
    }

    /// Allocate `len` bytes of device memory. CUDA devices return the raw
    /// device address (UVA-style); OpenCL devices additionally reserve a
    /// host shadow range and return a handle+mapped pointer (§3.4).
    pub fn alloc(&self, len: u64) -> Result<DevAlloc, MemError> {
        let region = self
            .inner
            .space
            .alloc(MemSpace::Device(self.inner.idx), len)?;
        match self.inner.spec.kind {
            DeviceKind::OpenClMic => {
                let shadow = self.inner.space.alloc_with_backing(
                    MemSpace::MappedShadow(self.inner.idx),
                    len,
                    region.backing.clone(),
                )?;
                let handle = self.inner.next_handle.fetch_add(1, Ordering::Relaxed);
                Ok(DevAlloc {
                    ptr: DevPtr::OpenCl {
                        handle,
                        mapped: shadow.addr,
                    },
                    region,
                    shadow: Some(shadow),
                })
            }
            _ => Ok(DevAlloc {
                ptr: DevPtr::Cuda { addr: region.addr },
                region,
                shadow: None,
            }),
        }
    }

    /// Free a device allocation (and its shadow range).
    pub fn free(&self, alloc: &DevAlloc) -> Result<(), MemError> {
        self.inner.space.free(alloc.region.addr)?;
        if let Some(shadow) = &alloc.shadow {
            self.inner.space.free(shadow.addr)?;
        }
        Ok(())
    }

    /// Perform a host<->device copy on the calling actor, blocking it until
    /// the transfer completes. `far` selects the NUMA-unfriendly path;
    /// `pinned` says the host endpoint is page-locked memory.
    #[allow(clippy::too_many_arguments)]
    pub fn perform_copy(
        &self,
        ctx: &Ctx,
        dir: HdDir,
        far: bool,
        pinned: bool,
        host: (&Arc<Backing>, u64),
        dev: (&Arc<Backing>, u64),
        bytes: u64,
    ) {
        let d = &self.inner;
        ctx.advance(d.res.acc_copy_overhead(d.spec.kind), tags::OVERHEAD);
        // Transient DMA faults re-reserve the link per attempt; only the
        // final attempt commits bytes (impacc-mem owns that invariant).
        let end = impacc_mem::reserve_hd_with_faults(
            ctx,
            &d.res,
            d.node,
            d.idx,
            dir,
            far,
            pinned,
            bytes,
            ctx.now(),
        );
        let (tag, tkey) = match dir {
            HdDir::HtoD => (tags::HTOD, "t_HtoD"),
            HdDir::DtoH => (tags::DTOH, "t_DtoH"),
        };
        let issue = ctx.now();
        ctx.advance_until(end, tag);
        impacc_mem::commit_copy(dir, host, dev, bytes);
        ctx.metrics().add(tag, bytes);
        ctx.metrics().add(tkey, end.since(issue).0);
        ctx.span(tag, issue, end, || {
            vec![
                ("bytes", bytes.to_string()),
                ("device", format!("n{}.d{}", d.node, d.idx)),
                ("far", far.to_string()),
                ("pinned", pinned.to_string()),
            ]
        });
    }

    /// Enqueue an asynchronous host<->device copy on `q`.
    #[allow(clippy::too_many_arguments)]
    pub fn enqueue_copy(
        &self,
        ctx: &Ctx,
        q: &ActivityQueue,
        dir: HdDir,
        far: bool,
        pinned: bool,
        host: (Arc<Backing>, u64),
        dev: (Arc<Backing>, u64),
        bytes: u64,
    ) -> Latch {
        let this = self.clone();
        q.enqueue(ctx, "copy", move |qctx| {
            this.perform_copy(
                qctx,
                dir,
                far,
                pinned,
                (&host.0, host.1),
                (&dev.0, dev.1),
                bytes,
            );
        })
    }

    /// Perform a direct device-to-device peer copy (GPUDirect-style) to
    /// `dst_dev` on the same node, blocking the calling actor.
    pub fn perform_p2p(
        &self,
        ctx: &Ctx,
        dst_dev: &Device,
        src: (&Arc<Backing>, u64),
        dst: (&Arc<Backing>, u64),
        bytes: u64,
    ) {
        let d = &self.inner;
        assert_eq!(d.node, dst_dev.inner.node, "peer copies are intra-node");
        ctx.advance(d.res.acc_copy_overhead(d.spec.kind), tags::OVERHEAD);
        let issue = ctx.now();
        let end = d
            .res
            .reserve_p2p_copy(d.node, d.idx, dst_dev.inner.idx, bytes, ctx.now());
        ctx.advance_until(end, tags::DTOD);
        Backing::copy(src.0, src.1, dst.0, dst.1, bytes);
        ctx.metrics().add(tags::DTOD, bytes);
        ctx.metrics().add("t_DtoD", end.since(issue).0);
        ctx.span(tags::DTOD, issue, end, || {
            vec![
                ("bytes", bytes.to_string()),
                ("src", format!("n{}.d{}", d.node, d.idx)),
                (
                    "dst",
                    format!("n{}.d{}", dst_dev.inner.node, dst_dev.inner.idx),
                ),
            ]
        });
    }

    /// Perform (blocking) a kernel: reserve the device's compute engine for
    /// the modelled duration, then apply `f`'s data effects.
    pub fn perform_kernel(&self, ctx: &Ctx, cost: &KernelCost, f: impl FnOnce()) {
        self.perform_kernel_cfg(ctx, cost, &impacc_machine::LaunchConfig::default(), f);
    }

    /// Like [`Device::perform_kernel`] with an explicit gang/worker/vector
    /// launch configuration (§2.3): undersized launches underutilize the
    /// device's execution lanes.
    pub fn perform_kernel_cfg(
        &self,
        ctx: &Ctx,
        cost: &KernelCost,
        cfg: &impacc_machine::LaunchConfig,
        f: impl FnOnce(),
    ) {
        let d = &self.inner;
        assert!(
            !self.is_failed(),
            "kernel launched on failed device n{}.d{}: the launcher should have remapped",
            d.node,
            d.idx
        );
        ctx.advance(d.res.launch_overhead(d.spec.kind), tags::OVERHEAD);
        let dur = d.res.kernel_dur_cfg(d.node, d.idx, cost, cfg);
        let issue = ctx.now();
        let (start, end) = d.compute.reserve(ctx, dur);
        ctx.advance_until(end, tags::KERNEL);
        if start > issue {
            // Contention on the device's serial compute engine.
            ctx.span("queue_wait", issue, start, || {
                vec![("resource", format!("n{}.d{}.compute", d.node, d.idx))]
            });
        }
        ctx.span(tags::KERNEL, start, end, || {
            vec![("device", format!("n{}.d{}", d.node, d.idx))]
        });
        f();
    }

    /// Enqueue an asynchronous kernel on `q`. The closure runs at the
    /// kernel's completion instant and performs the real computation.
    pub fn enqueue_kernel(
        &self,
        ctx: &Ctx,
        q: &ActivityQueue,
        cost: KernelCost,
        f: impl FnOnce() + Send + 'static,
    ) -> Latch {
        let this = self.clone();
        q.enqueue(ctx, "kernel", move |qctx| {
            this.perform_kernel(qctx, &cost, f);
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use impacc_machine::presets;
    use impacc_vtime::{Sim, SimDur, SimTime};

    fn with_device(
        spec: impacc_machine::MachineSpec,
        dev_idx: usize,
        f: impl FnOnce(&Ctx, Device, Arc<AddressSpace>) + Send + 'static,
    ) -> impacc_vtime::SimReport {
        let mut sim = Sim::new();
        sim.spawn("t0", move |ctx| {
            let res = Arc::new(ClusterResources::new(Arc::new(spec)));
            let space = Arc::new(AddressSpace::new(1 << 40, None));
            let dev = Device::new(0, dev_idx, res, space.clone());
            f(ctx, dev, space);
        });
        sim.run().unwrap()
    }

    #[test]
    fn cuda_alloc_returns_raw_pointer() {
        with_device(presets::psg(), 0, |_ctx, dev, _| {
            let a = dev.alloc(1024).unwrap();
            assert!(a.shadow.is_none());
            assert_eq!(a.addr(), a.region.addr);
            dev.free(&a).unwrap();
        });
    }

    #[test]
    fn opencl_alloc_returns_handle_and_shadow() {
        with_device(presets::beacon(1), 0, |_ctx, dev, space| {
            let a = dev.alloc(1024).unwrap();
            let shadow = a.shadow.clone().expect("OpenCL allocs have shadows");
            match a.ptr {
                DevPtr::OpenCl { handle, mapped } => {
                    assert_eq!(handle, 1);
                    assert_eq!(mapped, shadow.addr);
                }
                _ => panic!("expected OpenCL pointer"),
            }
            // Shadow shares the device backing.
            a.region.backing.write(0, &[3; 4]);
            let mut out = [0u8; 4];
            shadow.backing.read(0, &mut out);
            assert_eq!(out, [3; 4]);
            dev.free(&a).unwrap();
            assert_eq!(space.region_count(), 0);
        });
    }

    #[test]
    fn device_memory_exhaustion_surfaces() {
        with_device(presets::titan(1), 0, |_ctx, dev, _| {
            // K20x has 6 GB.
            let a = dev.alloc(5 << 30).unwrap();
            assert!(dev.alloc(2 << 30).is_err());
            dev.free(&a).unwrap();
            assert!(dev.alloc(2 << 30).is_ok());
        });
    }

    #[test]
    fn copy_moves_bytes_and_charges_time() {
        let report = with_device(presets::psg(), 0, |ctx, dev, space| {
            let host = space.alloc(MemSpace::Host, 1 << 20).unwrap();
            host.backing.write(0, &[9; 64]);
            let a = dev.alloc(1 << 20).unwrap();
            dev.perform_copy(
                ctx,
                HdDir::HtoD,
                false,
                true,
                (&host.backing, 0),
                (&a.region.backing, 0),
                1 << 20,
            );
            let mut out = [0u8; 64];
            a.region.backing.read(0, &mut out);
            assert_eq!(out, [9; 64]);
            // 1 MiB over 12 GB/s ≈ 87 us + 6 us latency + 7 us overhead.
            let t = ctx.now().as_secs_f64();
            assert!(t > 90e-6 && t < 110e-6, "t = {t}");
        });
        assert_eq!(report.metrics[tags::HTOD], 1 << 20);
    }

    #[test]
    fn async_copies_on_two_queues_overlap_but_one_queue_serializes() {
        with_device(presets::psg(), 0, |ctx, dev, space| {
            let host = space.alloc(MemSpace::Host, 2 << 20).unwrap();
            let a = dev.alloc(2 << 20).unwrap();
            let q1 = ActivityQueue::spawn(ctx, "q1".into());
            let q2 = ActivityQueue::spawn(ctx, "q2".into());

            // Same direction on one queue: serialize.
            let t0 = ctx.now();
            let l1 = dev.enqueue_copy(
                ctx,
                &q1,
                HdDir::HtoD,
                false,
                true,
                (host.backing.clone(), 0),
                (a.region.backing.clone(), 0),
                1 << 20,
            );
            let l2 = dev.enqueue_copy(
                ctx,
                &q1,
                HdDir::HtoD,
                false,
                true,
                (host.backing.clone(), 0),
                (a.region.backing.clone(), 0),
                1 << 20,
            );
            l1.wait(ctx, "w");
            l2.wait(ctx, "w");
            let serial = ctx.now().since(t0);

            // Opposite directions on two queues: overlap on full-duplex PCIe.
            let t1 = ctx.now();
            let l3 = dev.enqueue_copy(
                ctx,
                &q1,
                HdDir::HtoD,
                false,
                true,
                (host.backing.clone(), 0),
                (a.region.backing.clone(), 0),
                1 << 20,
            );
            let l4 = dev.enqueue_copy(
                ctx,
                &q2,
                HdDir::DtoH,
                false,
                true,
                (host.backing.clone(), 0),
                (a.region.backing.clone(), 0),
                1 << 20,
            );
            l3.wait(ctx, "w");
            l4.wait(ctx, "w");
            let overlapped = ctx.now().since(t1);
            assert!(
                overlapped.as_secs_f64() < 0.7 * serial.as_secs_f64(),
                "overlapped {overlapped} vs serial {serial}"
            );
        });
    }

    #[test]
    fn far_copy_is_slower() {
        with_device(presets::psg(), 0, |ctx, dev, space| {
            let host = space.alloc(MemSpace::Host, 64 << 20).unwrap();
            let a = dev.alloc(64 << 20).unwrap();
            let t0 = ctx.now();
            dev.perform_copy(
                ctx,
                HdDir::HtoD,
                false,
                true,
                (&host.backing, 0),
                (&a.region.backing, 0),
                64 << 20,
            );
            let near = ctx.now().since(t0);
            let t1 = ctx.now();
            dev.perform_copy(
                ctx,
                HdDir::HtoD,
                true,
                true,
                (&host.backing, 0),
                (&a.region.backing, 0),
                64 << 20,
            );
            let far = ctx.now().since(t1);
            let ratio = far.as_secs_f64() / near.as_secs_f64();
            assert!(ratio > 3.0 && ratio < 4.0, "ratio = {ratio}");
        });
    }

    #[test]
    fn p2p_copy_moves_bytes_directly() {
        with_device(presets::psg(), 0, |ctx, dev0, space| {
            let dev1 = Device::new(0, 1, dev0.resources().clone(), space.clone());
            let a = dev0.alloc(1 << 20).unwrap();
            let b = dev1.alloc(1 << 20).unwrap();
            a.region.backing.write(100, &[7; 8]);
            dev0.perform_p2p(
                ctx,
                &dev1,
                (&a.region.backing, 0),
                (&b.region.backing, 0),
                1 << 20,
            );
            let mut out = [0u8; 8];
            b.region.backing.read(100, &mut out);
            assert_eq!(out, [7; 8]);
        });
    }

    #[test]
    fn kernel_time_follows_roofline() {
        with_device(presets::psg(), 0, |ctx, dev, _| {
            let t0 = ctx.now();
            // 1.45 GFLOP on a 1450 GFLOP/s device at the generated-kernel
            // efficiency of 0.3 => 3.33 ms.
            dev.perform_kernel(ctx, &KernelCost::flops(1.45e9), || {});
            let dt = ctx.now().since(t0).as_secs_f64();
            let expect = 1.45e9 / (1450e9 * 0.3) + 8e-6;
            assert!((dt - expect).abs() < 0.1e-3, "dt = {dt}, expect {expect}");
        });
    }

    #[test]
    fn kernels_serialize_on_device_compute() {
        with_device(presets::psg(), 0, |ctx, dev, _| {
            let q1 = ActivityQueue::spawn(ctx, "q1".into());
            let q2 = ActivityQueue::spawn(ctx, "q2".into());
            let l1 = dev.enqueue_kernel(ctx, &q1, KernelCost::flops(1.45e9), || {});
            let l2 = dev.enqueue_kernel(ctx, &q2, KernelCost::flops(1.45e9), || {});
            l1.wait(ctx, "w");
            l2.wait(ctx, "w");
            // Two ~3.3ms kernels on one device serialize even from two queues.
            let t = ctx.now().as_secs_f64();
            assert!(t > 6.5e-3, "t = {t}");
        });
    }

    #[test]
    fn kernel_results_visible_after_completion() {
        with_device(presets::psg(), 0, |ctx, dev, space| {
            let out = space.alloc(MemSpace::Host, 8).unwrap();
            let b = out.backing.clone();
            let q = ActivityQueue::spawn(ctx, "q".into());
            let l = dev.enqueue_kernel(ctx, &q, KernelCost::flops(1e9), move || {
                b.write_f64s(0, &[42.0]);
            });
            assert_eq!(out.backing.read_f64s(0, 1)[0], 0.0);
            l.wait(ctx, "w");
            assert_eq!(out.backing.read_f64s(0, 1)[0], 42.0);
        });
    }

    #[test]
    fn integrated_cpu_device_copies_cheaply() {
        let mut spec = presets::test_cluster(1, 1);
        spec.nodes[0].devices[0].kind = DeviceKind::CpuCores;
        with_device(spec, 0, |ctx, dev, space| {
            let host = space.alloc(MemSpace::Host, 1 << 20).unwrap();
            let a = dev.alloc(1 << 20).unwrap();
            let t0 = ctx.now();
            dev.perform_copy(
                ctx,
                HdDir::HtoD,
                false,
                true,
                (&host.backing, 0),
                (&a.region.backing, 0),
                1 << 20,
            );
            // No driver overhead, host-memcpy speed.
            let dt = ctx.now().since(t0).as_secs_f64();
            assert!(dt < 60e-6, "dt = {dt}");
            assert_eq!(ctx.now(), SimTime::ZERO + SimDur::from_secs_f64(dt));
        });
    }
}
