//! # impacc-acc — simulated accelerators
//!
//! The accelerator substrate of the IMPACC reproduction: simulated CUDA
//! GPUs, OpenCL MICs and CPU-as-accelerator devices with
//!
//! * device memory allocation inside the node's unified address space
//!   (raw device pointers for CUDA, handle+shadow mapping for OpenCL, §3.4),
//! * in-order [`ActivityQueue`]s served by daemon actors (OpenACC `async`
//!   queues, and the carrier for IMPACC's *unified activity queue*, §3.6),
//! * analytically-timed copies and kernels whose **data effects are real**
//!   (bytes move, kernel closures compute) while durations come from the
//!   machine cost model.

#![warn(missing_docs)]

pub mod device;
pub mod queue;

pub use device::{tags, DevAlloc, Device};
pub use queue::ActivityQueue;
