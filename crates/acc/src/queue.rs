//! OpenACC activity queues (§3.6).
//!
//! An accelerator has one or more activity queues, selected by the `async`
//! clause's integer argument. Operations enqueued on one queue execute
//! **in order**; operations on different queues are active simultaneously
//! and complete in any order. IMPACC's *unified activity queue* is this
//! same structure — the runtime simply enqueues MPI operations alongside
//! kernels and data transfers (the op is an opaque closure, so anything
//! the runtime can express becomes queueable).
//!
//! Each queue is served by a daemon actor; enqueue returns a [`Latch`]
//! that opens when the operation completes.

use std::collections::VecDeque;
use std::sync::Arc;

use impacc_machine::{Chaos, FaultSite};
use impacc_vtime::{Ctx, Latch, Notify, SimTime, WakeReason};
use parking_lot::Mutex;

/// An operation waiting on a queue.
struct QueuedOp {
    label: &'static str,
    enq_at: SimTime,
    /// Enqueuing actor, captured only while a span sink is recording: the
    /// source end of the "enq" causal edge emitted when the op starts.
    enq_by: Option<String>,
    exec: Box<dyn FnOnce(&Ctx) + Send>,
    done: Latch,
}

struct QInner {
    name: String,
    ops: Mutex<VecDeque<QueuedOp>>,
    work: Notify,
    /// Opens briefly... not stored: idle tracking is via `pending`.
    pending: Mutex<usize>,
    /// Fault injection: queue-abort rolls before each op executes.
    chaos: Chaos,
}

/// An in-order asynchronous operation stream served by a daemon actor.
///
/// Cloning shares the queue.
#[derive(Clone)]
pub struct ActivityQueue {
    inner: Arc<QInner>,
}

impl ActivityQueue {
    /// Create a queue and spawn its daemon service actor. `name` is used
    /// for the actor (diagnostics and accounting). Fault injection is
    /// disabled; the runtime uses [`ActivityQueue::spawn_with_chaos`].
    pub fn spawn(ctx: &Ctx, name: String) -> ActivityQueue {
        ActivityQueue::spawn_with_chaos(ctx, name, Chaos::disabled())
    }

    /// Like [`ActivityQueue::spawn`] with a fault-injection handle: each
    /// op rolls [`FaultSite::QueueAbort`] before executing; a fired abort
    /// flushes the op's launch and replays it after a fixed penalty, so
    /// data effects are unchanged and only timing moves.
    pub fn spawn_with_chaos(ctx: &Ctx, name: String, chaos: Chaos) -> ActivityQueue {
        let inner = Arc::new(QInner {
            name: name.clone(),
            ops: Mutex::new(VecDeque::new()),
            work: Notify::new(),
            pending: Mutex::new(0),
            chaos,
        });
        let q = ActivityQueue {
            inner: inner.clone(),
        };
        ctx.spawn_daemon(name, move |qctx| loop {
            let op = inner.ops.lock().pop_front();
            match op {
                Some(op) => {
                    let started = qctx.now();
                    if started > op.enq_at {
                        // Time the op sat behind earlier work on this queue.
                        qctx.span("queue_wait", op.enq_at, started, || {
                            vec![("op", op.label.to_string())]
                        });
                    }
                    // FIFO-order edge: this op could not start before the
                    // actor that enqueued it reached the enqueue point.
                    if let Some(enq_by) = &op.enq_by {
                        qctx.edge_to_self("enq", enq_by, op.enq_at, started, || {
                            vec![("op", op.label.to_string())]
                        });
                    }
                    // Injected queue abort (impacc-chaos): the op's launch
                    // is flushed and replayed after a penalty. The replay
                    // runs to completion, so data effects are unchanged.
                    if inner.chaos.roll(FaultSite::QueueAbort, started) {
                        let p = inner
                            .chaos
                            .plan()
                            .expect("fault implies plan")
                            .abort_penalty;
                        qctx.metrics().inc("retries");
                        qctx.metrics().inc("chaos_queue_abort");
                        let t0 = qctx.now();
                        qctx.span("fault", t0, t0 + p, || {
                            vec![
                                ("site", "queue_abort".to_string()),
                                ("op", op.label.to_string()),
                            ]
                        });
                        qctx.advance(p, "queue_abort");
                    }
                    (op.exec)(qctx);
                    op.done.open(qctx);
                    *inner.pending.lock() -= 1;
                }
                None => {
                    if qctx.is_shutdown() {
                        return;
                    }
                    let name = &inner.name;
                    let r = inner
                        .work
                        .wait_with_cause(qctx, "queue_idle", || format!("queue {name} empty"));
                    if r == WakeReason::Shutdown {
                        return;
                    }
                }
            }
        });
        q
    }

    /// Enqueue an operation. It will run on the queue's daemon actor after
    /// every previously enqueued operation has completed. The returned
    /// latch opens on completion.
    ///
    /// The closure receives the *daemon's* context: any time it charges is
    /// asynchronous with respect to the enqueuing task.
    pub fn enqueue(
        &self,
        ctx: &Ctx,
        label: &'static str,
        exec: impl FnOnce(&Ctx) + Send + 'static,
    ) -> Latch {
        let done = Latch::new();
        {
            let mut ops = self.inner.ops.lock();
            ops.push_back(QueuedOp {
                label,
                enq_at: ctx.now(),
                enq_by: ctx.sink_enabled().then(|| ctx.name()),
                exec: Box::new(exec),
                done: done.clone(),
            });
            *self.inner.pending.lock() += 1;
        }
        self.inner.work.notify_one(ctx);
        done
    }

    /// `#pragma acc wait(q)`: block the calling task until everything
    /// currently on the queue has completed. Blocked time is charged under
    /// `tag`.
    pub fn wait_all(&self, ctx: &Ctx, tag: &'static str) {
        let marker = self.enqueue(ctx, "wait_marker", |_| {});
        marker.wait_with_cause(ctx, tag, || format!("drain queue {}", self.inner.name));
    }

    /// `#pragma acc wait(other) async(self)`: enqueue a dependency so that
    /// subsequent operations on *this* queue start only after everything
    /// currently on `other` has completed — without blocking the host.
    pub fn enqueue_wait_for(&self, ctx: &Ctx, other: &ActivityQueue) {
        if Arc::ptr_eq(&self.inner, &other.inner) {
            return; // a queue is always ordered against itself
        }
        let marker = other.enqueue(ctx, "cross_wait_marker", |_| {});
        let other_name = other.inner.name.clone();
        self.enqueue(ctx, "cross_wait", move |qctx| {
            marker.wait_with_cause(qctx, "cross_queue_wait", || {
                format!("drain queue {other_name}")
            });
        });
    }

    /// Number of operations enqueued but not yet completed.
    pub fn pending(&self) -> usize {
        *self.inner.pending.lock()
    }

    /// Label of the operation at the head of the queue, if any (tests).
    pub fn head_label(&self) -> Option<&'static str> {
        self.inner.ops.lock().front().map(|o| o.label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use impacc_vtime::{Sim, SimDur, SimTime};
    use std::sync::Mutex as StdMutex;

    #[test]
    fn ops_on_one_queue_run_in_order() {
        let log = Arc::new(StdMutex::new(Vec::new()));
        let mut sim = Sim::new();
        let log2 = log.clone();
        sim.spawn("host", move |ctx| {
            let q = ActivityQueue::spawn(ctx, "q1".into());
            for i in 0..3 {
                let log = log2.clone();
                q.enqueue(ctx, "op", move |qctx| {
                    qctx.advance(SimDur::from_us(10 - 3 * i), "work");
                    log.lock().unwrap().push(i);
                });
            }
            q.wait_all(ctx, "acc_wait");
            // In-order: 0 (10us) then 1 (7us) then 2 (4us) = 21us total,
            // even though later ops are shorter.
            assert_eq!(ctx.now(), SimTime::ZERO + SimDur::from_us(21));
        });
        sim.run().unwrap();
        assert_eq!(*log.lock().unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn different_queues_overlap() {
        let mut sim = Sim::new();
        sim.spawn("host", move |ctx| {
            let q1 = ActivityQueue::spawn(ctx, "q1".into());
            let q2 = ActivityQueue::spawn(ctx, "q2".into());
            let a = q1.enqueue(ctx, "a", |qctx| qctx.advance(SimDur::from_us(10), "w"));
            let b = q2.enqueue(ctx, "b", |qctx| qctx.advance(SimDur::from_us(10), "w"));
            a.wait(ctx, "wait");
            b.wait(ctx, "wait");
            // Both ran concurrently: 10us, not 20.
            assert_eq!(ctx.now(), SimTime::ZERO + SimDur::from_us(10));
        });
        sim.run().unwrap();
    }

    #[test]
    fn host_continues_while_queue_works() {
        let mut sim = Sim::new();
        sim.spawn("host", move |ctx| {
            let q = ActivityQueue::spawn(ctx, "q".into());
            q.enqueue(ctx, "slow", |qctx| qctx.advance(SimDur::from_ms(1), "w"));
            // Host is free immediately.
            assert_eq!(ctx.now(), SimTime::ZERO);
            ctx.advance(SimDur::from_us(5), "host_work");
            assert_eq!(q.pending(), 1);
            q.wait_all(ctx, "acc_wait");
            assert_eq!(ctx.now(), SimTime::ZERO + SimDur::from_ms(1));
            assert_eq!(q.pending(), 0);
        });
        sim.run().unwrap();
    }

    #[test]
    fn latch_opens_exactly_when_op_finishes() {
        let mut sim = Sim::new();
        sim.spawn("host", move |ctx| {
            let q = ActivityQueue::spawn(ctx, "q".into());
            let l = q.enqueue(ctx, "op", |qctx| qctx.advance(SimDur::from_us(3), "w"));
            assert!(!l.is_open());
            l.wait(ctx, "wait");
            assert!(l.is_open());
            assert_eq!(ctx.now(), SimTime::ZERO + SimDur::from_us(3));
        });
        sim.run().unwrap();
    }

    #[test]
    fn cross_queue_wait_orders_without_blocking_host() {
        let mut sim = Sim::new();
        sim.spawn("host", move |ctx| {
            let q1 = ActivityQueue::spawn(ctx, "q1".into());
            let q2 = ActivityQueue::spawn(ctx, "q2".into());
            let flag = Arc::new(StdMutex::new(0u32));
            let f1 = flag.clone();
            q1.enqueue(ctx, "slow", move |qctx| {
                qctx.advance(SimDur::from_us(50), "w");
                *f1.lock().unwrap() = 1;
            });
            // q2 must not start its op until q1's is done...
            q2.enqueue_wait_for(ctx, &q1);
            let f2 = flag.clone();
            let checked = q2.enqueue(ctx, "after", move |qctx| {
                assert_eq!(*f2.lock().unwrap(), 1, "q1's op must have finished");
                qctx.advance(SimDur::from_us(5), "w");
            });
            // ...but the host is still free right now.
            assert_eq!(ctx.now(), SimTime::ZERO);
            checked.wait(ctx, "wait");
            assert_eq!(ctx.now(), SimTime::ZERO + SimDur::from_us(55));
        });
        sim.run().unwrap();
    }

    #[test]
    fn cross_queue_wait_on_self_is_a_noop() {
        let mut sim = Sim::new();
        sim.spawn("host", move |ctx| {
            let q = ActivityQueue::spawn(ctx, "q".into());
            q.enqueue_wait_for(ctx, &q);
            q.wait_all(ctx, "w");
        });
        sim.run().unwrap();
    }

    #[test]
    fn queue_daemon_exits_on_shutdown() {
        let mut sim = Sim::new();
        sim.spawn("host", move |ctx| {
            let _q = ActivityQueue::spawn(ctx, "q".into());
            ctx.advance(SimDur::from_us(1), "w");
            // Host exits with the queue idle; daemon must shut down.
        });
        sim.run().unwrap();
    }

    #[test]
    fn queue_abort_replays_with_penalty() {
        use impacc_machine::FaultPlan;
        let mut sim = Sim::new();
        sim.spawn("host", move |ctx| {
            let chaos = Chaos::new(FaultPlan::new(1).with_rate(FaultSite::QueueAbort, 1.0));
            let p = chaos.plan().unwrap().abort_penalty;
            let q = ActivityQueue::spawn_with_chaos(ctx, "q".into(), chaos);
            let hit = Arc::new(StdMutex::new(0u32));
            let h = hit.clone();
            let l = q.enqueue(ctx, "op", move |qctx| {
                qctx.advance(SimDur::from_us(10), "w");
                *h.lock().unwrap() += 1;
            });
            l.wait(ctx, "wait");
            assert_eq!(ctx.now(), SimTime::ZERO + p + SimDur::from_us(10));
            assert_eq!(*hit.lock().unwrap(), 1, "the replayed op runs exactly once");
        });
        let report = sim.run().unwrap();
        assert_eq!(report.metrics["chaos_queue_abort"], 1);
        assert_eq!(report.metrics["retries"], 1);
    }

    #[test]
    fn enqueued_op_can_enqueue_more() {
        // The unified activity queue lets an op (e.g. a fused MPI call)
        // schedule follow-up work.
        let mut sim = Sim::new();
        sim.spawn("host", move |ctx| {
            let q = ActivityQueue::spawn(ctx, "q".into());
            let q2 = q.clone();
            q.enqueue(ctx, "outer", move |qctx| {
                qctx.advance(SimDur::from_us(1), "w");
                q2.enqueue(qctx, "inner", |qc| qc.advance(SimDur::from_us(2), "w"));
            });
            // The first wait marker was enqueued before "inner" existed, so
            // it completes right after "outer"...
            q.wait_all(ctx, "acc_wait");
            assert_eq!(ctx.now(), SimTime::ZERO + SimDur::from_us(1));
            // ...and a second wait drains the nested op.
            q.wait_all(ctx, "acc_wait");
            assert_eq!(ctx.now(), SimTime::ZERO + SimDur::from_us(3));
        });
        sim.run().unwrap();
    }
}
