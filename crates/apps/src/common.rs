//! Shared helpers for the benchmark applications.

use std::sync::Arc;

use impacc_core::{Launch, RunSummary, RuntimeOptions, TaskCtx};
use impacc_machine::MachineSpec;
use impacc_vtime::{SimError, SpanSink};

// The partition/neighbour arithmetic and the truncation gate moved to
// `impacc-array`, the single home for decomposition math; re-exported
// here so app code keeps one import path.
pub use impacc_array::{math_ok, BlockPartition};

/// Run a per-task program over `spec` with the given runtime options.
pub fn launch_app<F>(
    spec: MachineSpec,
    options: RuntimeOptions,
    phys_cap: Option<u64>,
    app: F,
) -> Result<RunSummary, SimError>
where
    F: Fn(&TaskCtx) + Send + Sync + 'static,
{
    launch_app_sink(spec, options, phys_cap, None, app)
}

/// [`launch_app`] with an optional span sink (e.g. an
/// `impacc_obs::Recorder`) attached for timeline capture.
pub fn launch_app_sink<F>(
    spec: MachineSpec,
    options: RuntimeOptions,
    phys_cap: Option<u64>,
    sink: Option<Arc<dyn SpanSink>>,
    app: F,
) -> Result<RunSummary, SimError>
where
    F: Fn(&TaskCtx) + Send + Sync + 'static,
{
    launch_app_tuned(spec, options, phys_cap, sink, true, app)
}

/// [`launch_app_sink`] with explicit control over the engine's
/// baton-handoff elision, for determinism checks that pin the fast path
/// on or off. Virtual-time results must be identical either way.
pub fn launch_app_tuned<F>(
    spec: MachineSpec,
    options: RuntimeOptions,
    phys_cap: Option<u64>,
    sink: Option<Arc<dyn SpanSink>>,
    elide_handoff: bool,
    app: F,
) -> Result<RunSummary, SimError>
where
    F: Fn(&TaskCtx) + Send + Sync + 'static,
{
    let mut l = Launch::new(spec, options).elide_handoff(elide_handoff);
    if let Some(cap) = phys_cap {
        l = l.phys_cap(cap);
    }
    if let Some(sink) = sink {
        l = l.span_sink(sink);
    }
    l.run(app)
}
