//! Shared helpers for the benchmark applications.

use std::sync::Arc;

use impacc_core::{BufView, Launch, RunSummary, RuntimeOptions, TaskCtx};
use impacc_machine::MachineSpec;
use impacc_vtime::{SimError, SpanSink};

/// Row-block partition of `n` items over `p` parts: part `i` gets
/// `counts[i]` items starting at `offsets[i]` (ragged when `p ∤ n`).
#[derive(Clone, Debug)]
pub struct BlockPartition {
    /// Items per part.
    pub counts: Vec<usize>,
    /// Start item per part.
    pub offsets: Vec<usize>,
}

impl BlockPartition {
    /// Split `n` items over `p` parts as evenly as possible.
    pub fn new(n: usize, p: usize) -> BlockPartition {
        assert!(p > 0);
        let base = n / p;
        let extra = n % p;
        let mut counts = Vec::with_capacity(p);
        let mut offsets = Vec::with_capacity(p);
        let mut off = 0;
        for i in 0..p {
            let c = base + usize::from(i < extra);
            counts.push(c);
            offsets.push(off);
            off += c;
        }
        BlockPartition { counts, offsets }
    }

    /// Number of parts.
    pub fn parts(&self) -> usize {
        self.counts.len()
    }
}

/// True when real math over this view is meaningful: the physical backing
/// holds every logical byte (no truncation). Timing-only runs skip the
/// arithmetic but keep identical cost-model behaviour.
pub fn math_ok(view: &BufView) -> bool {
    view.backing.phys_len() == view.backing.logical_len()
}

/// Run a per-task program over `spec` with the given runtime options.
pub fn launch_app<F>(
    spec: MachineSpec,
    options: RuntimeOptions,
    phys_cap: Option<u64>,
    app: F,
) -> Result<RunSummary, SimError>
where
    F: Fn(&TaskCtx) + Send + Sync + 'static,
{
    launch_app_sink(spec, options, phys_cap, None, app)
}

/// [`launch_app`] with an optional span sink (e.g. an
/// `impacc_obs::Recorder`) attached for timeline capture.
pub fn launch_app_sink<F>(
    spec: MachineSpec,
    options: RuntimeOptions,
    phys_cap: Option<u64>,
    sink: Option<Arc<dyn SpanSink>>,
    app: F,
) -> Result<RunSummary, SimError>
where
    F: Fn(&TaskCtx) + Send + Sync + 'static,
{
    launch_app_tuned(spec, options, phys_cap, sink, true, app)
}

/// [`launch_app_sink`] with explicit control over the engine's
/// baton-handoff elision, for determinism checks that pin the fast path
/// on or off. Virtual-time results must be identical either way.
pub fn launch_app_tuned<F>(
    spec: MachineSpec,
    options: RuntimeOptions,
    phys_cap: Option<u64>,
    sink: Option<Arc<dyn SpanSink>>,
    elide_handoff: bool,
    app: F,
) -> Result<RunSummary, SimError>
where
    F: Fn(&TaskCtx) + Send + Sync + 'static,
{
    let mut l = Launch::new(spec, options).elide_handoff(elide_handoff);
    if let Some(cap) = phys_cap {
        l = l.phys_cap(cap);
    }
    if let Some(sink) = sink {
        l = l.span_sink(sink);
    }
    l.run(app)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_exact_and_ordered() {
        let p = BlockPartition::new(10, 3);
        assert_eq!(p.counts, vec![4, 3, 3]);
        assert_eq!(p.offsets, vec![0, 4, 7]);
        assert_eq!(p.counts.iter().sum::<usize>(), 10);

        let p = BlockPartition::new(8, 4);
        assert_eq!(p.counts, vec![2; 4]);

        let p = BlockPartition::new(3, 5);
        assert_eq!(p.counts, vec![1, 1, 1, 0, 0]);
        assert_eq!(p.offsets, vec![0, 1, 2, 3, 3]);
    }
}
