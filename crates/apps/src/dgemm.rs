//! Distributed DGEMM (§4.2): `C = A × B` over square `n×n` matrices.
//!
//! The root task owns `A` and `B`; it sends each task a row block of `A`
//! and broadcasts `B` to everyone, each task multiplies its block on its
//! accelerator, and the root gathers the row blocks of `C`.
//!
//! Under IMPACC the inputs are read-only, so node-local tasks *alias* the
//! root's `A` slices and the broadcast `B` (node heap aliasing), the
//! block transfers fuse into single copies, and the whole per-task
//! pipeline (HtoD, kernel, DtoH, sends) rides one activity queue with no
//! host synchronization (Figure 4(c) style). The baseline does the
//! Figure 4(b) thing: explicit staging plus `acc wait` / `MPI_Waitall`
//! between the MPI and OpenACC streamlines.

use impacc_core::{MpiOpts, RunSummary, RuntimeOptions, TaskCtx};
use impacc_machine::{KernelCost, MachineSpec};
use impacc_vtime::SimError;

use crate::common::{launch_app, math_ok, BlockPartition};

/// DGEMM workload parameters.
#[derive(Clone, Debug)]
pub struct DgemmParams {
    /// Matrix dimension (matrices are `n×n` doubles).
    pub n: usize,
    /// Check the product against a reference at the root (only sound for
    /// small `n` with full physical backing).
    pub verify: bool,
}

fn a_at(i: usize, j: usize) -> f64 {
    ((i + 2 * j) % 5) as f64 - 2.0
}

fn b_at(i: usize, j: usize) -> f64 {
    ((3 * i + j) % 7) as f64 - 3.0
}

const TAG_A: i32 = 100;
const TAG_C: i32 = 101;

/// The per-task DGEMM program.
pub fn dgemm_task(tc: &TaskCtx, p: &DgemmParams) {
    let n = p.n;
    let rank = tc.rank() as usize;
    let size = tc.size() as usize;
    let part = BlockPartition::new(n, size);
    let my_rows = part.counts[rank];
    let impacc = tc.options().is_impacc();

    // ---- allocation & input distribution -------------------------------
    let b = tc.malloc_f64(n * n);
    let a_block = tc.malloc_f64(my_rows.max(1) * n);
    let a_full = if rank == 0 {
        let a = tc.malloc_f64(n * n);
        let av = tc.host_view(&a);
        if math_ok(&av) {
            for i in 0..n {
                let row: Vec<f64> = (0..n).map(|j| a_at(i, j)).collect();
                av.write_f64s(i * n, &row);
            }
            let bv = tc.host_view(&b);
            for i in 0..n {
                let row: Vec<f64> = (0..n).map(|j| b_at(i, j)).collect();
                bv.write_f64s(i * n, &row);
            }
        }
        Some(a)
    } else {
        None
    };

    // Broadcast B. IMPACC: read-only → node heap aliasing (§3.8 collective).
    let bcast_opts = if impacc {
        MpiOpts::host().readonly()
    } else {
        MpiOpts::host()
    };
    tc.mpi_bcast(&b, 0, bcast_opts);

    // Root scatters A row blocks; the slices are read-only so node-local
    // tasks alias straight into the root's A (Figure 7).
    let send_opts = if impacc {
        MpiOpts::host().readonly()
    } else {
        MpiOpts::host()
    };
    if rank == 0 {
        let a = a_full.as_ref().expect("root owns A");
        for r in 1..size {
            if part.counts[r] == 0 {
                continue;
            }
            let off = (part.offsets[r] * n * 8) as u64;
            let len = (part.counts[r] * n * 8) as u64;
            tc.mpi_send(a, off, len, r as u32, TAG_A, send_opts);
        }
        // The root's own block travels as a self message so that — like
        // everyone else — only the block (not all of A) gets a device
        // mirror; under IMPACC the read-only self transfer aliases.
        if my_rows > 0 {
            let req = tc.mpi_isend(
                a,
                (part.offsets[0] * n * 8) as u64,
                (my_rows * n * 8) as u64,
                0,
                TAG_A,
                send_opts,
            );
            tc.mpi_recv(&a_block, 0, a_block.len, 0, TAG_A, send_opts);
            req.wait(tc.ctx());
        }
    } else if my_rows > 0 {
        tc.mpi_recv(&a_block, 0, a_block.len, 0, TAG_A, send_opts);
    }

    // ---- device compute -------------------------------------------------
    let c_block = tc.malloc_f64(my_rows.max(1) * n);
    if my_rows > 0 {
        let (a_buf, a_row0) = (&a_block, 0usize);
        tc.acc_create(a_buf);
        tc.acc_create(&b);
        tc.acc_create(&c_block);
        let cost = KernelCost::new(
            2.0 * my_rows as f64 * n as f64 * n as f64,
            (my_rows * n * 2 + n * n) as f64 * 8.0,
        );
        let gemm = {
            let av = tc.dev_view(a_buf);
            let bv = tc.dev_view(&b);
            let cv = tc.dev_view(&c_block);
            let rows = my_rows;
            move || {
                if !math_ok(&av) || !math_ok(&bv) {
                    return;
                }
                let a = av.read_f64s(0, av.elems());
                let bm = bv.read_f64s(0, n * n);
                let mut c = vec![0.0f64; rows * n];
                for i in 0..rows {
                    let ai = (a_row0 + i) * n;
                    for k in 0..n {
                        let aik = a[ai + k];
                        if aik == 0.0 {
                            continue;
                        }
                        let bk = &bm[k * n..(k + 1) * n];
                        let ci = &mut c[i * n..(i + 1) * n];
                        for j in 0..n {
                            ci[j] += aik * bk[j];
                        }
                    }
                }
                cv.write_f64s(0, &c);
            }
        };

        let use_queue = impacc && tc.options().unified_queue;
        if use_queue {
            // Unified activity queue: updates, kernel, result send all on
            // queue 1; the host never blocks until the final wait.
            tc.acc_update_device(a_buf, 0, a_buf.len, Some(1));
            tc.acc_update_device(&b, 0, b.len, Some(1));
            tc.acc_kernel(Some(1), cost, gemm);
            if rank != 0 {
                tc.mpi_send(
                    &c_block,
                    0,
                    c_block.len,
                    0,
                    TAG_C,
                    MpiOpts::device().on_queue(1),
                );
            } else {
                tc.acc_update_host(&c_block, 0, c_block.len, Some(1));
            }
        } else if impacc {
            // IMPACC without the unified queue (ablation): unified device
            // buffers, but Figure 4(b)-style synchronization points.
            tc.acc_update_device(a_buf, 0, a_buf.len, Some(1));
            tc.acc_update_device(&b, 0, b.len, Some(1));
            tc.acc_wait(1);
            tc.acc_kernel(None, cost, gemm);
            if rank != 0 {
                tc.mpi_send(&c_block, 0, c_block.len, 0, TAG_C, MpiOpts::device());
            } else {
                tc.acc_update_host(&c_block, 0, c_block.len, None);
            }
        } else {
            // Figure 4(b): async ops with explicit synchronization points.
            tc.acc_update_device(a_buf, 0, a_buf.len, Some(1));
            tc.acc_update_device(&b, 0, b.len, Some(1));
            tc.acc_wait(1);
            tc.acc_kernel(None, cost, gemm);
            tc.acc_update_host(&c_block, 0, c_block.len, None);
            if rank != 0 {
                tc.mpi_send(&c_block, 0, c_block.len, 0, TAG_C, MpiOpts::host());
            }
        }
    }

    // ---- gather ----------------------------------------------------------
    if rank == 0 {
        let c = tc.malloc_f64(n * n);
        // Root's own block.
        if my_rows > 0 {
            if impacc {
                tc.acc_wait(1);
            }
            let cb = tc.host_view(&c_block);
            let cv = tc.host_view(&c);
            if math_ok(&cb) {
                let vals = cb.read_f64s(0, my_rows * n);
                cv.write_f64s(part.offsets[0] * n, &vals);
            }
        }
        for r in 1..size {
            if part.counts[r] == 0 {
                continue;
            }
            let off = (part.offsets[r] * n * 8) as u64;
            let len = (part.counts[r] * n * 8) as u64;
            tc.mpi_recv(&c, off, len, r as u32, TAG_C, MpiOpts::host());
        }
        if p.verify {
            verify_product(tc, &c, n);
        }
    } else if impacc && my_rows > 0 {
        // Drain the pipeline before exiting.
        tc.acc_wait(1);
    }
}

fn verify_product(tc: &TaskCtx, c: &impacc_core::HBuf, n: usize) {
    let cv = tc.host_view(c);
    if !math_ok(&cv) {
        return;
    }
    let got = cv.read_f64s(0, n * n);
    for i in 0..n {
        for j in 0..n {
            let expect: f64 = (0..n).map(|k| a_at(i, k) * b_at(k, j)).sum();
            assert!(
                (got[i * n + j] - expect).abs() < 1e-9,
                "C[{i}][{j}] = {} expected {expect}",
                got[i * n + j]
            );
        }
    }
}

/// Run DGEMM on `spec` and return the report.
pub fn run_dgemm(
    spec: MachineSpec,
    options: RuntimeOptions,
    phys_cap: Option<u64>,
    params: DgemmParams,
) -> Result<RunSummary, SimError> {
    launch_app(spec, options, phys_cap, move |tc| dgemm_task(tc, &params))
}

#[cfg(test)]
mod tests {
    use super::*;
    use impacc_machine::presets;

    #[test]
    fn impacc_dgemm_is_bit_correct() {
        let s = run_dgemm(
            presets::test_cluster(1, 4),
            RuntimeOptions::impacc(),
            None,
            DgemmParams {
                n: 24,
                verify: true,
            },
        )
        .unwrap();
        // Inputs were read-only: A-slices and B aliased node-locally.
        assert!(s.report.metrics["aliased_msgs"] >= 3);
    }

    #[test]
    fn baseline_dgemm_is_bit_correct() {
        run_dgemm(
            presets::test_cluster(1, 4),
            RuntimeOptions::baseline(),
            None,
            DgemmParams {
                n: 24,
                verify: true,
            },
        )
        .unwrap();
    }

    #[test]
    fn multinode_dgemm_correct_both_modes() {
        for opts in [RuntimeOptions::impacc(), RuntimeOptions::baseline()] {
            run_dgemm(
                presets::test_cluster(2, 2),
                opts,
                None,
                DgemmParams {
                    n: 20,
                    verify: true,
                },
            )
            .unwrap();
        }
    }

    #[test]
    fn ragged_partition_works() {
        // 4 tasks, n = 10: blocks of 3,3,2,2.
        run_dgemm(
            presets::test_cluster(1, 4),
            RuntimeOptions::impacc(),
            None,
            DgemmParams {
                n: 10,
                verify: true,
            },
        )
        .unwrap();
    }

    #[test]
    fn single_task_dgemm() {
        run_dgemm(
            presets::test_cluster(1, 1),
            RuntimeOptions::impacc(),
            None,
            DgemmParams {
                n: 16,
                verify: true,
            },
        )
        .unwrap();
    }

    #[test]
    fn impacc_beats_baseline_on_small_matrices() {
        // The paper's headline: for small matrices the baseline's
        // communication dominates; IMPACC's aliasing + fused copies keep
        // it scaling (Figure 10(a)).
        let n = 256;
        let i = run_dgemm(
            presets::psg(),
            RuntimeOptions::impacc(),
            None,
            DgemmParams { n, verify: false },
        )
        .unwrap();
        let b = run_dgemm(
            presets::psg(),
            RuntimeOptions::baseline(),
            None,
            DgemmParams { n, verify: false },
        )
        .unwrap();
        assert!(
            i.elapsed_secs() < b.elapsed_secs(),
            "IMPACC {} vs baseline {}",
            i.elapsed_secs(),
            b.elapsed_secs()
        );
    }

    #[test]
    fn truncated_run_matches_full_run_timing() {
        let full = run_dgemm(
            presets::test_cluster(1, 2),
            RuntimeOptions::impacc(),
            None,
            DgemmParams {
                n: 64,
                verify: false,
            },
        )
        .unwrap();
        let capped = run_dgemm(
            presets::test_cluster(1, 2),
            RuntimeOptions::impacc(),
            Some(512),
            DgemmParams {
                n: 64,
                verify: false,
            },
        )
        .unwrap();
        assert_eq!(full.report.end_time, capped.report.end_time);
    }
}
