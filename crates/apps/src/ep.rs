//! NAS Parallel Benchmarks EP — Embarrassingly Parallel (§4.2).
//!
//! Each task generates Gaussian pairs with the Marsaglia polar method over
//! NPB's linear congruential generator (a = 5^13, modulus 2^46), counts
//! them by concentric square annuli, and the job ends with a single
//! `MPI_Allreduce`. There is essentially no communication — the paper uses
//! EP to show IMPACC matches MPI+OpenACC when there is nothing to optimize.
//!
//! Real runs of class E (2^40 pairs) are infeasible on the simulator host,
//! so the kernel *cost* is charged for the full class size while the
//! arithmetic actually executes on a deterministic sample (`sample_pairs`),
//! keeping the statistics verifiable.

use impacc_core::{RunSummary, RuntimeOptions, TaskCtx};
use impacc_machine::{KernelCost, MachineSpec};
use impacc_mpi::ReduceOp;
use impacc_vtime::SimError;

use crate::common::launch_app_sink;

/// NPB problem classes (number of random pairs = 2^exponent).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum EpClass {
    /// 2^24 pairs.
    S,
    /// 2^25 pairs.
    W,
    /// 2^28 pairs.
    A,
    /// 2^30 pairs.
    B,
    /// 2^32 pairs.
    C,
    /// 2^36 pairs.
    D,
    /// 2^40 pairs.
    E,
    /// The paper's new class: 64 × class E = 2^46 pairs.
    E64,
}

impl EpClass {
    /// Total pairs for the class.
    pub fn pairs(self) -> u64 {
        1u64 << match self {
            EpClass::S => 24,
            EpClass::W => 25,
            EpClass::A => 28,
            EpClass::B => 30,
            EpClass::C => 32,
            EpClass::D => 36,
            EpClass::E => 40,
            EpClass::E64 => 46,
        }
    }
}

/// EP workload parameters.
#[derive(Clone, Debug)]
pub struct EpParams {
    /// Total pairs the class prescribes (drives the kernel cost model).
    pub total_pairs: u64,
    /// Pairs actually generated per job (split across tasks) for the
    /// verifiable statistics. Keep modest (≤ a few million).
    pub sample_pairs: u64,
}

impl EpParams {
    /// Parameters for an NPB class with a default-sized real sample.
    pub fn class(c: EpClass) -> EpParams {
        EpParams {
            total_pairs: c.pairs(),
            sample_pairs: 1 << 14,
        }
    }
}

/// NPB's LCG: x_{k+1} = a * x_k mod 2^46, a = 5^13.
#[derive(Clone, Debug)]
pub struct NpbRng {
    x: u64,
}

/// 5^13
const A_MULT: u64 = 1_220_703_125;
const MOD_MASK: u64 = (1 << 46) - 1;

impl NpbRng {
    /// Seed the generator (NPB uses 271828183).
    pub fn new(seed: u64) -> NpbRng {
        NpbRng { x: seed & MOD_MASK }
    }

    /// Jump the generator forward by `k` steps in O(log k) (NPB's
    /// `randlc`-power trick), so tasks can claim disjoint subsequences.
    pub fn skip(&mut self, mut k: u64) {
        let mut a = A_MULT;
        while k > 0 {
            if k & 1 == 1 {
                self.x = self.x.wrapping_mul(a) & MOD_MASK;
            }
            a = a.wrapping_mul(a) & MOD_MASK;
            k >>= 1;
        }
    }

    /// Next uniform deviate in (0, 1).
    pub fn next_f64(&mut self) -> f64 {
        self.x = self.x.wrapping_mul(A_MULT) & MOD_MASK;
        self.x as f64 / (1u64 << 46) as f64
    }
}

/// The accumulated EP statistics.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EpStats {
    /// Sum of accepted Gaussian X deviates.
    pub sx: f64,
    /// Sum of accepted Gaussian Y deviates.
    pub sy: f64,
    /// Annulus counts `q[k]`: pairs with `k <= max(|X|,|Y|) < k+1`.
    pub q: [f64; 10],
}

impl EpStats {
    /// Total accepted pairs.
    pub fn accepted(&self) -> f64 {
        self.q.iter().sum()
    }
}

/// Generate `pairs` pairs starting from `rng` and accumulate statistics —
/// the EP inner kernel, exactly as NPB specifies it.
pub fn ep_kernel(rng: &mut NpbRng, pairs: u64) -> EpStats {
    let mut st = EpStats::default();
    for _ in 0..pairs {
        let x = 2.0 * rng.next_f64() - 1.0;
        let y = 2.0 * rng.next_f64() - 1.0;
        let t = x * x + y * y;
        if t <= 1.0 && t > 0.0 {
            let f = (-2.0 * t.ln() / t).sqrt();
            let gx = x * f;
            let gy = y * f;
            let k = gx.abs().max(gy.abs()) as usize;
            if k < 10 {
                st.q[k] += 1.0;
                st.sx += gx;
                st.sy += gy;
            }
        }
    }
    st
}

/// The per-task EP program. Returns the reduced global statistics.
pub fn ep_task(tc: &TaskCtx, p: &EpParams) -> EpStats {
    let rank = tc.rank() as u64;
    let size = tc.size() as u64;

    // Disjoint subsequence per task via the log-time generator jump.
    let my_sample = p.sample_pairs / size + u64::from(rank < p.sample_pairs % size);
    let start = (p.sample_pairs / size) * rank + rank.min(p.sample_pairs % size);
    let mut rng = NpbRng::new(271_828_183);
    rng.skip(start * 2);

    // The device does the real class-sized work in the cost model
    // (~40 flops per pair: two deviates, the rejection test, ln/sqrt).
    let my_total = p.total_pairs / size + u64::from(rank < p.total_pairs % size);
    let cost = KernelCost::flops(my_total as f64 * 40.0);
    let stats = std::sync::Arc::new(parking_lot::Mutex::new(EpStats::default()));
    {
        let stats = stats.clone();
        let mut rng = rng.clone();
        tc.acc_kernel(None, cost, move || {
            *stats.lock() = ep_kernel(&mut rng, my_sample);
        });
    }
    let local = stats.lock().clone();

    // The only communication: one allreduce of [sx, sy, q0..q9].
    let mut v = vec![local.sx, local.sy];
    v.extend_from_slice(&local.q);
    let total = tc.mpi_allreduce_f64(&v, ReduceOp::Sum);
    let mut out = EpStats {
        sx: total[0],
        sy: total[1],
        q: [0.0; 10],
    };
    out.q.copy_from_slice(&total[2..12]);
    out
}

/// Run EP and return the report.
pub fn run_ep(
    spec: MachineSpec,
    options: RuntimeOptions,
    params: EpParams,
) -> Result<RunSummary, SimError> {
    run_ep_sink(spec, options, None, params)
}

/// [`run_ep`] with an optional span sink attached, so harnesses can
/// trace and profile the EP timeline (fig 12's profiled variant).
pub fn run_ep_sink(
    spec: MachineSpec,
    options: RuntimeOptions,
    sink: Option<std::sync::Arc<dyn impacc_vtime::SpanSink>>,
    params: EpParams,
) -> Result<RunSummary, SimError> {
    launch_app_sink(spec, options, None, sink, move |tc| {
        let stats = ep_task(tc, &params);
        // Every rank sees identical totals, and every counted pair is
        // accounted for in exactly one annulus.
        assert!(stats.accepted() > 0.0);
        assert!(stats.accepted() <= params.sample_pairs as f64);
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::launch_app;
    use impacc_machine::presets;

    #[test]
    fn lcg_matches_reference_structure() {
        let mut r = NpbRng::new(271_828_183);
        let first: Vec<f64> = (0..4).map(|_| r.next_f64()).collect();
        // Deterministic, in (0,1), not constant.
        assert!(first.iter().all(|v| *v > 0.0 && *v < 1.0));
        assert!(first.windows(2).any(|w| w[0] != w[1]));
        // Re-seeding reproduces the stream.
        let mut r2 = NpbRng::new(271_828_183);
        assert_eq!(first[0], r2.next_f64());
    }

    #[test]
    fn skip_is_equivalent_to_stepping() {
        let mut a = NpbRng::new(271_828_183);
        for _ in 0..1000 {
            a.next_f64();
        }
        let mut b = NpbRng::new(271_828_183);
        b.skip(1000);
        assert_eq!(a.next_f64(), b.next_f64());
    }

    #[test]
    fn kernel_statistics_are_sane() {
        let mut rng = NpbRng::new(271_828_183);
        let st = ep_kernel(&mut rng, 100_000);
        let acc = st.accepted();
        // Polar-method acceptance rate is π/4 ≈ 0.785.
        let rate = acc / 100_000.0;
        assert!((rate - 0.785).abs() < 0.02, "rate = {rate}");
        // Nearly all Gaussian deviates fall in the first few annuli.
        assert!(st.q[0] + st.q[1] + st.q[2] > 0.99 * acc);
        // Gaussian means are near zero.
        assert!((st.sx / acc).abs() < 0.05);
        assert!((st.sy / acc).abs() < 0.05);
    }

    #[test]
    fn distributed_ep_matches_serial_ep() {
        // Any task split must reproduce the exact serial statistics
        // because each task jumps to its disjoint subsequence.
        let serial = {
            let mut rng = NpbRng::new(271_828_183);
            ep_kernel(&mut rng, 1 << 12)
        };
        for tasks in [1usize, 2, 4] {
            let got = std::sync::Arc::new(parking_lot::Mutex::new(EpStats::default()));
            let got2 = got.clone();
            launch_app(
                presets::test_cluster(1, tasks),
                RuntimeOptions::impacc(),
                None,
                move |tc| {
                    let p = EpParams {
                        total_pairs: 1 << 12,
                        sample_pairs: 1 << 12,
                    };
                    let st = ep_task(tc, &p);
                    if tc.rank() == 0 {
                        *got2.lock() = st;
                    }
                },
            )
            .unwrap();
            let got = got.lock().clone();
            assert!((got.sx - serial.sx).abs() < 1e-6, "{tasks} tasks");
            assert!((got.sy - serial.sy).abs() < 1e-6);
            assert_eq!(got.q, serial.q);
        }
    }

    #[test]
    fn impacc_and_baseline_are_equivalent_for_ep() {
        // The paper: "EP shows almost same performances in IMPACC and
        // MPI+OpenACC for all experiments."
        let p = EpParams {
            total_pairs: 1 << 30,
            sample_pairs: 1 << 10,
        };
        let i = run_ep(presets::psg(), RuntimeOptions::impacc(), p.clone()).unwrap();
        let b = run_ep(presets::psg(), RuntimeOptions::baseline(), p).unwrap();
        let ratio = b.elapsed_secs() / i.elapsed_secs();
        assert!(
            (0.95..1.1).contains(&ratio),
            "EP should not favour either model, ratio = {ratio}"
        );
    }

    #[test]
    fn class_sizes_match_npb() {
        assert_eq!(EpClass::A.pairs(), 1 << 28);
        assert_eq!(EpClass::E.pairs(), 1 << 40);
        assert_eq!(EpClass::E64.pairs(), 64 * EpClass::E.pairs());
    }
}
