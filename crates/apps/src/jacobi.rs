//! 2-D Jacobi iteration (§4.2): a five-point stencil on an `n×n` mesh,
//! partitioned in one dimension; each sweep exchanges boundary rows with
//! the two neighbours.
//!
//! The field lives in device memory for the whole run. Under IMPACC the
//! halo rows are sent straight from device memory
//! (`#pragma acc mpi sendbuf(device) async(1)`), so an intra-node exchange
//! between two GPUs fuses into one direct DtoD peer copy (the Figure 14
//! effect). The baseline stages: `update host`, host MPI, `update device`
//! every sweep.

use std::sync::Arc;

use impacc_array::{CartGrid, ResProbe};
use impacc_core::{HBuf, MpiOpts, RunSummary, RuntimeOptions, TaskCtx};
use impacc_machine::{KernelCost, MachineSpec};
use impacc_vtime::{SimError, SpanSink};

use crate::common::{launch_app_tuned, math_ok, BlockPartition};

/// Jacobi workload parameters.
#[derive(Clone, Debug)]
pub struct JacobiParams {
    /// Mesh dimension (`n×n`).
    pub n: usize,
    /// Number of sweeps.
    pub iters: usize,
    /// Gather and compare against a serial reference at the end.
    pub verify: bool,
}

const TAG_UP: i32 = 200; // travelling towards lower ranks
const TAG_DOWN: i32 = 201; // travelling towards higher ranks
const TAG_GATHER: i32 = 202;

/// Boundary condition: the global top row is held at 1, everything else
/// starts (and stays, on the other borders) at 0.
fn initial_row(global_row: isize, n: usize) -> Vec<f64> {
    if global_row < 0 {
        vec![1.0; n]
    } else {
        vec![0.0; n]
    }
}

/// One serial reference sweep over the full mesh (ghost frame of the same
/// boundary conditions), for verification.
pub fn serial_jacobi(n: usize, iters: usize) -> Vec<f64> {
    // (n+2) x n with ghost top/bottom; left/right borders are the first
    // and last columns, held fixed.
    let rows = n + 2;
    let mut u = vec![0.0f64; rows * n];
    let mut v = u.clone();
    u[..n].copy_from_slice(&vec![1.0; n]); // ghost top = 1
    v[..n].copy_from_slice(&vec![1.0; n]);
    for _ in 0..iters {
        for i in 1..=n {
            for j in 1..n - 1 {
                v[i * n + j] = 0.25
                    * (u[(i - 1) * n + j]
                        + u[(i + 1) * n + j]
                        + u[i * n + j - 1]
                        + u[i * n + j + 1]);
            }
        }
        std::mem::swap(&mut u, &mut v);
    }
    u[n..(n + 1) * n].to_vec() // interior rows 1..=n flattened? caller slices
}

/// The per-task Jacobi program. Returns the final local interior rows
/// (for tests); timing is in the run report.
pub fn jacobi_task(tc: &TaskCtx, p: &JacobiParams) {
    jacobi_task_probed(tc, p, None)
}

/// [`jacobi_task`] with an optional residual probe: rank 0 pushes every
/// globally-reduced residual, so harnesses can compare the convergence
/// history bit-for-bit against the array-API reimplementation.
pub fn jacobi_task_probed(tc: &TaskCtx, p: &JacobiParams, probe: Option<&ResProbe>) {
    let n = p.n;
    let rank = tc.rank() as usize;
    let size = tc.size() as usize;
    let part = BlockPartition::new(n, size);
    let rows = part.counts[rank];
    if rows == 0 {
        // Degenerate partition: still participate in the gather.
        if p.verify && rank != 0 {
            return;
        }
    }
    let impacc = tc.options().is_impacc();
    let row_bytes = (n * 8) as u64;

    // Local field: rows + 2 ghost rows, double buffered.
    let mut u = tc.malloc_f64((rows + 2) * n);
    let mut unew = tc.malloc_f64((rows + 2) * n);
    {
        let uv = tc.host_view(&u);
        let vv = tc.host_view(&unew);
        if math_ok(&uv) {
            for li in 0..rows + 2 {
                let g = part.offsets[rank] as isize + li as isize - 1;
                let row = initial_row(g, n);
                uv.write_f64s(li * n, &row);
                vv.write_f64s(li * n, &row);
            }
        }
    }
    tc.acc_copyin(&u);
    tc.acc_copyin(&unew);

    let grid = CartGrid::line(size);
    let up = grid.neighbor(rank, 0, -1).map(|r| r as u32);
    let down = (rows > 0)
        .then(|| grid.neighbor(rank, 0, 1).map(|r| r as u32))
        .flatten();

    let stencil_cost = KernelCost::new(
        6.0 * rows.max(1) as f64 * n as f64,
        (rows + 2) as f64 * n as f64 * 16.0,
    );

    // Setup (allocation + copyin) ends here; trace consumers cut on this
    // marker to attribute copies to the sweeps alone.
    tc.ctx()
        .event("marker", || vec![("phase", "sweep".to_string())]);

    // Local residual max|unew − u| written by the sweep kernel (shared
    // because the kernel may run asynchronously on queue 1). Huge-scale
    // runs with capped backings skip the math; they fall back to a
    // deterministic decreasing sequence so the reduce stays meaningful.
    let local_res: Arc<parking_lot::Mutex<f64>> = Arc::new(parking_lot::Mutex::new(0.0));
    let mut residuals: Vec<f64> = Vec::new();

    for it in 0..p.iters {
        if rows > 0 {
            // ---- halo exchange on u -------------------------------------
            if impacc && tc.options().unified_queue {
                // Device-resident halos on the unified activity queue: the
                // sends complete at issue, the receives gate the kernel.
                if let Some(upr) = up {
                    tc.mpi_send(
                        &u,
                        row_bytes,
                        row_bytes,
                        upr,
                        TAG_UP,
                        MpiOpts::device().on_queue(1),
                    );
                }
                if let Some(dn) = down {
                    tc.mpi_send(
                        &u,
                        rows as u64 * row_bytes,
                        row_bytes,
                        dn,
                        TAG_DOWN,
                        MpiOpts::device().on_queue(1),
                    );
                }
                if let Some(upr) = up {
                    tc.mpi_recv(
                        &u,
                        0,
                        row_bytes,
                        upr,
                        TAG_DOWN,
                        MpiOpts::device().on_queue(1),
                    );
                }
                if let Some(dn) = down {
                    tc.mpi_recv(
                        &u,
                        (rows as u64 + 1) * row_bytes,
                        row_bytes,
                        dn,
                        TAG_UP,
                        MpiOpts::device().on_queue(1),
                    );
                }
            } else if impacc {
                // IMPACC without the unified queue (ablation): unified
                // device-buffer calls, explicit blocking order.
                let mut reqs = Vec::new();
                if let Some(upr) = up {
                    reqs.push(tc.mpi_isend(
                        &u,
                        row_bytes,
                        row_bytes,
                        upr,
                        TAG_UP,
                        MpiOpts::device(),
                    ));
                    reqs.push(tc.mpi_irecv(&u, 0, row_bytes, upr, TAG_DOWN, MpiOpts::device()));
                }
                if let Some(dn) = down {
                    reqs.push(tc.mpi_isend(
                        &u,
                        rows as u64 * row_bytes,
                        row_bytes,
                        dn,
                        TAG_DOWN,
                        MpiOpts::device(),
                    ));
                    reqs.push(tc.mpi_irecv(
                        &u,
                        (rows as u64 + 1) * row_bytes,
                        row_bytes,
                        dn,
                        TAG_UP,
                        MpiOpts::device(),
                    ));
                }
                tc.mpi_waitall(&reqs);
            } else {
                // Baseline: stage boundary rows through the host.
                if up.is_some() {
                    tc.acc_update_host(&u, row_bytes, row_bytes, None);
                }
                if down.is_some() {
                    tc.acc_update_host(&u, rows as u64 * row_bytes, row_bytes, None);
                }
                let mut reqs = Vec::new();
                if let Some(upr) = up {
                    reqs.push(tc.mpi_isend(&u, row_bytes, row_bytes, upr, TAG_UP, MpiOpts::host()));
                    reqs.push(tc.mpi_irecv(&u, 0, row_bytes, upr, TAG_DOWN, MpiOpts::host()));
                }
                if let Some(dn) = down {
                    reqs.push(tc.mpi_isend(
                        &u,
                        rows as u64 * row_bytes,
                        row_bytes,
                        dn,
                        TAG_DOWN,
                        MpiOpts::host(),
                    ));
                    reqs.push(tc.mpi_irecv(
                        &u,
                        (rows as u64 + 1) * row_bytes,
                        row_bytes,
                        dn,
                        TAG_UP,
                        MpiOpts::host(),
                    ));
                }
                tc.mpi_waitall(&reqs);
                if up.is_some() {
                    tc.acc_update_device(&u, 0, row_bytes, None);
                }
                if down.is_some() {
                    tc.acc_update_device(&u, (rows as u64 + 1) * row_bytes, row_bytes, None);
                }
            }

            // ---- stencil sweep ------------------------------------------
            let uv = tc.dev_view(&u);
            let vv = tc.dev_view(&unew);
            let res_out = local_res.clone();
            let sweep = move || {
                if !math_ok(&uv) {
                    *res_out.lock() = 1.0 / (it + 1) as f64;
                    return;
                }
                let src = uv.read_f64s(0, (rows + 2) * n);
                let mut dst = vv.read_f64s(0, (rows + 2) * n);
                let mut res = 0.0f64;
                for i in 1..=rows {
                    for j in 1..n - 1 {
                        let next = 0.25
                            * (src[(i - 1) * n + j]
                                + src[(i + 1) * n + j]
                                + src[i * n + j - 1]
                                + src[i * n + j + 1]);
                        res = res.max((next - src[i * n + j]).abs());
                        dst[i * n + j] = next;
                    }
                }
                vv.write_f64s(0, &dst);
                *res_out.lock() = res;
            };
            if impacc && tc.options().unified_queue {
                tc.acc_kernel(Some(1), stencil_cost, sweep);
            } else {
                tc.acc_kernel(None, stencil_cost, sweep);
            }
        }
        // Convergence check: the global residual, reduced every sweep —
        // the log(p) term that eventually dominates at Titan scale. The
        // sweep kernel must have completed before its residual is read.
        if impacc && tc.options().unified_queue {
            tc.acc_wait(1);
        }
        let mine = *local_res.lock();
        let residual = tc.mpi_allreduce_f64(&[mine], impacc_mpi::ReduceOp::Max);
        assert!(
            residual[0].is_finite() && residual[0] >= mine,
            "global residual must bound the local one"
        );
        if let Some(pr) = probe {
            if rank == 0 {
                pr.push(residual[0]);
            }
        }
        residuals.push(residual[0]);
        std::mem::swap(&mut u, &mut unew);
    }
    // The reduced residual drives convergence: Jacobi on this boundary
    // problem relaxes, so the final global residual cannot exceed the
    // first (every rank agrees — it came out of the allreduce).
    if p.iters > 1 && rows > 0 {
        assert!(
            residuals.last().unwrap() <= residuals.first().unwrap(),
            "jacobi residual failed to relax: {residuals:?}"
        );
    }
    if impacc && tc.options().unified_queue {
        tc.acc_wait(1);
    }

    // ---- verification gather -------------------------------------------
    if p.verify {
        if rows > 0 {
            tc.acc_update_host(&u, row_bytes, rows as u64 * row_bytes, None);
        }
        if rank == 0 {
            let full = tc.malloc_f64(n * n);
            let fv = tc.host_view(&full);
            if rows > 0 {
                let uv = tc.host_view(&u);
                if math_ok(&uv) {
                    let mine = uv.read_f64s(n, rows * n);
                    fv.write_f64s(0, &mine);
                }
            }
            for r in 1..size {
                if part.counts[r] == 0 {
                    continue;
                }
                tc.mpi_recv(
                    &full,
                    (part.offsets[r] * n * 8) as u64,
                    (part.counts[r] * n * 8) as u64,
                    r as u32,
                    TAG_GATHER,
                    MpiOpts::host(),
                );
            }
            if math_ok(&fv) {
                let got = fv.read_f64s(0, n * n);
                let reference = serial_jacobi(n, p.iters);
                for (k, (g, e)) in got.iter().zip(reference.iter()).enumerate() {
                    assert!(
                        (g - e).abs() < 1e-12,
                        "mesh[{k}] = {g}, reference {e} (n={n}, {} tasks)",
                        size
                    );
                }
            }
        } else if rows > 0 {
            tc.mpi_send(
                &u,
                row_bytes,
                rows as u64 * row_bytes,
                0,
                TAG_GATHER,
                MpiOpts::host(),
            );
        }
    }
    let _: (HBuf, HBuf) = (u, unew);
}

/// Run Jacobi and return the report.
pub fn run_jacobi(
    spec: MachineSpec,
    options: RuntimeOptions,
    phys_cap: Option<u64>,
    params: JacobiParams,
) -> Result<RunSummary, SimError> {
    run_jacobi_sink(spec, options, phys_cap, None, params)
}

/// [`run_jacobi`] with an optional span sink attached, so harnesses can
/// capture the per-copy timeline (Figure 14's breakdown).
pub fn run_jacobi_sink(
    spec: MachineSpec,
    options: RuntimeOptions,
    phys_cap: Option<u64>,
    sink: Option<Arc<dyn SpanSink>>,
    params: JacobiParams,
) -> Result<RunSummary, SimError> {
    run_jacobi_tuned(spec, options, phys_cap, sink, true, params)
}

/// [`run_jacobi_sink`] with explicit control over baton-handoff elision,
/// for the determinism tests that pin the engine fast path on or off.
pub fn run_jacobi_tuned(
    spec: MachineSpec,
    options: RuntimeOptions,
    phys_cap: Option<u64>,
    sink: Option<Arc<dyn SpanSink>>,
    elide_handoff: bool,
    params: JacobiParams,
) -> Result<RunSummary, SimError> {
    launch_app_tuned(spec, options, phys_cap, sink, elide_handoff, move |tc| {
        jacobi_task(tc, &params)
    })
}

/// [`run_jacobi_tuned`] with a residual probe attached: rank 0 pushes
/// every reduced residual into `probe`, giving the caller the exact
/// convergence history the run computed.
pub fn run_jacobi_probed(
    spec: MachineSpec,
    options: RuntimeOptions,
    phys_cap: Option<u64>,
    sink: Option<Arc<dyn SpanSink>>,
    elide_handoff: bool,
    params: JacobiParams,
    probe: ResProbe,
) -> Result<RunSummary, SimError> {
    launch_app_tuned(spec, options, phys_cap, sink, elide_handoff, move |tc| {
        jacobi_task_probed(tc, &params, Some(&probe))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use impacc_machine::presets;

    #[test]
    fn serial_reference_converges_downward() {
        let u = serial_jacobi(16, 50);
        // Heat flows from the hot top edge: interior row 0 is warmer than
        // the last interior row.
        let top_mid = u[16 / 2];
        let bottom_mid = u[15 * 16 + 16 / 2];
        assert!(top_mid > bottom_mid);
        assert!(top_mid > 0.0 && top_mid < 1.0);
    }

    #[test]
    fn impacc_jacobi_matches_serial() {
        for tasks in [1usize, 2, 4] {
            run_jacobi(
                presets::test_cluster(1, tasks),
                RuntimeOptions::impacc(),
                None,
                JacobiParams {
                    n: 16,
                    iters: 7,
                    verify: true,
                },
            )
            .unwrap();
        }
    }

    #[test]
    fn baseline_jacobi_matches_serial() {
        for tasks in [2usize, 3] {
            run_jacobi(
                presets::test_cluster(1, tasks.min(8)),
                RuntimeOptions::baseline(),
                None,
                JacobiParams {
                    n: 15,
                    iters: 5,
                    verify: true,
                },
            )
            .unwrap();
        }
    }

    #[test]
    fn multinode_jacobi_matches_serial() {
        run_jacobi(
            presets::test_cluster(2, 2),
            RuntimeOptions::impacc(),
            None,
            JacobiParams {
                n: 12,
                iters: 6,
                verify: true,
            },
        )
        .unwrap();
    }

    #[test]
    fn impacc_halos_use_direct_dtod_on_psg() {
        let s = run_jacobi(
            presets::psg(),
            RuntimeOptions::impacc(),
            None,
            JacobiParams {
                n: 64,
                iters: 3,
                verify: false,
            },
        )
        .unwrap();
        assert!(
            s.report.metrics["DtoD"] > 0,
            "halos must fuse to peer copies"
        );
        // Host copies exist only for the (tiny) residual allreduce, never
        // for the halo payload itself.
        let htoh = s.report.metrics.get("HtoH").copied().unwrap_or(0);
        assert!(
            htoh < s.report.metrics["DtoD"] / 10,
            "halos must not stage through the host: HtoH = {htoh}"
        );
    }

    #[test]
    fn baseline_stages_through_host() {
        let s = run_jacobi(
            presets::psg(),
            RuntimeOptions::baseline(),
            None,
            JacobiParams {
                n: 64,
                iters: 3,
                verify: false,
            },
        )
        .unwrap();
        assert!(s.report.metrics["HtoD"] > 0);
        assert!(s.report.metrics["DtoH"] > 0);
        assert_eq!(s.report.metrics.get("DtoD"), None);
    }

    #[test]
    fn impacc_beats_baseline_on_psg() {
        let p = JacobiParams {
            n: 512,
            iters: 5,
            verify: false,
        };
        let i = run_jacobi(presets::psg(), RuntimeOptions::impacc(), None, p.clone()).unwrap();
        let b = run_jacobi(presets::psg(), RuntimeOptions::baseline(), None, p).unwrap();
        assert!(
            i.elapsed_secs() < b.elapsed_secs(),
            "IMPACC {} vs baseline {}",
            i.elapsed_secs(),
            b.elapsed_secs()
        );
    }
}
