//! # impacc-apps — the paper's benchmark applications
//!
//! MPI+OpenACC implementations of the four evaluation workloads (§4.2),
//! each written once against the [`TaskCtx`](impacc_core::TaskCtx) API and
//! runnable under both the IMPACC runtime and the legacy MPI+OpenACC
//! baseline:
//!
//! * [`dgemm`] — blocked dense matrix multiply with root-based
//!   distribution (exercises heap aliasing, bcast, unified queues).
//! * [`ep`] — NAS Parallel Benchmarks Embarrassingly Parallel kernel
//!   (exercises pure compute + one allreduce).
//! * [`jacobi`] — 2-D five-point stencil with 1-D partitioning
//!   (exercises device-resident halos and direct DtoD fusion).
//! * [`lulesh`] — a LULESH-2.0-style 3-D proxy with 26-neighbour halo
//!   exchange and host-resident communication buffers.
//!
//! All apps do *real arithmetic* verified against serial references when
//! buffers carry full physical backing; under physical truncation (huge
//! scale) the arithmetic is skipped while timing is unchanged.

#![warn(missing_docs)]

pub mod common;
pub mod dgemm;
pub mod ep;
pub mod jacobi;
pub mod lulesh;

pub use common::{launch_app, launch_app_sink, launch_app_tuned, math_ok, BlockPartition};
pub use dgemm::{dgemm_task, run_dgemm, DgemmParams};
pub use ep::{ep_kernel, ep_task, run_ep, run_ep_sink, EpClass, EpParams, EpStats, NpbRng};
pub use jacobi::{
    jacobi_task, jacobi_task_probed, run_jacobi, run_jacobi_probed, run_jacobi_sink,
    run_jacobi_tuned, serial_jacobi, JacobiParams,
};
pub use lulesh::{lulesh_task, run_lulesh, Coord, LuleshParams};
