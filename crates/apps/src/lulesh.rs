//! LULESH-style shock hydrodynamics proxy (§4.2).
//!
//! LULESH solves the hydrodynamics equations on a staggered 3-D mesh; a
//! task owns an `s×s×s` element cube and exchanges its surface with up to
//! 26 nearest neighbours in a Cartesian topology each iteration
//! (computation O(s³), communication O(s²)). The task count must be a
//! perfect cube.
//!
//! As in the paper's experiment — which runs the *unmodified* LULESH 2.0
//! MPI+OpenACC code — **all communication is host-to-host** in both
//! models; IMPACC's gains come from NUMA-friendly pinning and message
//! fusion (one host copy instead of two + IPC), while its per-message
//! handler overhead is what costs ~5% on Beacon.
//!
//! Each iteration performs LULESH's three communication phases over the
//! proxy field, with device kernels between them, and a periodic
//! allreduce standing in for the `dtcourant`/`dthydro` reduction.

use impacc_core::{MpiOpts, RunSummary, RuntimeOptions, TaskCtx, UReq};
use impacc_machine::{KernelCost, MachineSpec};
use impacc_mpi::ReduceOp;
use impacc_vtime::SimError;

use crate::common::{launch_app, math_ok};

/// LULESH workload parameters (weak scaling: `s` is per-task).
#[derive(Clone, Debug)]
pub struct LuleshParams {
    /// Elements per cube edge per task (problem size s³ per task).
    pub s: usize,
    /// Time-step iterations.
    pub iters: usize,
    /// Verify halo contents every iteration.
    pub verify: bool,
}

/// 3-D task grid coordinates for a cubic decomposition.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Coord {
    /// Grid extent per dimension (tasks = q³).
    pub q: usize,
    /// Position.
    pub x: usize,
    /// Position.
    pub y: usize,
    /// Position.
    pub z: usize,
}

impl Coord {
    /// Coordinates of `rank` in a `q³` grid (x fastest).
    pub fn of(rank: usize, q: usize) -> Coord {
        Coord {
            q,
            x: rank % q,
            y: (rank / q) % q,
            z: rank / (q * q),
        }
    }

    /// Rank of these coordinates.
    pub fn rank(&self) -> usize {
        self.x + self.q * (self.y + self.q * self.z)
    }

    /// The neighbour displaced by `(dx,dy,dz)`, if inside the grid.
    pub fn neighbor(&self, d: (i32, i32, i32)) -> Option<Coord> {
        let shift = |v: usize, dv: i32| -> Option<usize> {
            let nv = v as i32 + dv;
            (nv >= 0 && nv < self.q as i32).then_some(nv as usize)
        };
        Some(Coord {
            q: self.q,
            x: shift(self.x, d.0)?,
            y: shift(self.y, d.1)?,
            z: shift(self.z, d.2)?,
        })
    }
}

/// All 26 neighbour displacement vectors, in deterministic order.
pub fn directions() -> Vec<(i32, i32, i32)> {
    let mut v = Vec::with_capacity(26);
    for dz in -1..=1 {
        for dy in -1..=1 {
            for dx in -1..=1 {
                if (dx, dy, dz) != (0, 0, 0) {
                    v.push((dx, dy, dz));
                }
            }
        }
    }
    v
}

/// Surface-patch element count for a displacement on an `s`-cube:
/// faces are s², edges s, corners 1.
pub fn patch_elems(d: (i32, i32, i32), s: usize) -> usize {
    match d.0.abs() + d.1.abs() + d.2.abs() {
        1 => s * s,
        2 => s,
        3 => 1,
        _ => unreachable!("displacement out of range"),
    }
}

/// Deterministic halo payload marker: what `rank` sends in `dir` at `iter`.
fn payload(rank: usize, dir_idx: usize, iter: usize) -> f64 {
    (rank * 1_000_000 + iter * 100 + dir_idx) as f64
}

/// The per-task LULESH proxy program.
pub fn lulesh_task(tc: &TaskCtx, p: &LuleshParams) {
    let size = tc.size() as usize;
    let q = (size as f64).cbrt().round() as usize;
    assert_eq!(q * q * q, size, "LULESH requires a cubic task count");
    let me = Coord::of(tc.rank() as usize, q);
    let s = p.s;
    let dirs = directions();

    // One send and one receive buffer per direction (host heap; LULESH's
    // comm buffers are plain mallocs).
    let send_bufs: Vec<_> = dirs
        .iter()
        .map(|d| tc.malloc_f64(patch_elems(*d, s)))
        .collect();
    let recv_bufs: Vec<_> = dirs
        .iter()
        .map(|d| tc.malloc_f64(patch_elems(*d, s)))
        .collect();
    // The element field lives on the device.
    let field = tc.malloc_f64(s * s * s);
    tc.acc_copyin(&field);

    // Per-iteration costs: three kernel phases like LULESH's
    // CalcForce / CalcLagrange / CalcTimeConstraints split.
    let elems = (s * s * s) as f64;
    // ~2.5k flops and ~1KB of traffic per element per step, split like
    // LULESH's CalcForce / CalcLagrange / CalcTimeConstraints phases.
    let phase_cost = [
        KernelCost::new(1500.0 * elems, 480.0 * elems),
        KernelCost::new(800.0 * elems, 320.0 * elems),
        KernelCost::new(250.0 * elems, 160.0 * elems),
    ];

    // Boundary data lives on the device; LULESH updates it to the host
    // before each exchange and back after (unmodified app: both models
    // pay these PCIe transfers — pinning decides how fast they are).
    let boundary_bytes = ((6 * s * s * 8) as u64).min(field.len);

    // The Courant-style time constraint: each rank derives a local dt
    // from the boundary state it actually received this iteration, and
    // the global step is the Min-allreduce of those. Advancing the
    // simulated clock by the reduced value is what makes every rank
    // march in lock-step.
    let mut sim_time = 0.0f64;
    let mut prev_dt = f64::INFINITY;

    for iter in 0..p.iters {
        // ---- phase 1: node-centred exchange over all 26 neighbours -----
        tc.acc_update_host(&field, 0, boundary_bytes, None);
        let mut reqs: Vec<UReq> = Vec::new();
        for (di, d) in dirs.iter().enumerate() {
            let Some(nb) = me.neighbor(*d) else { continue };
            let sb = &send_bufs[di];
            {
                let v = tc.host_view(sb);
                if math_ok(&v) {
                    let val = payload(me.rank(), di, iter);
                    v.write_f64s(0, &vec![val; sb.elems()]);
                }
            }
            let tag = di as i32;
            reqs.push(tc.mpi_isend(sb, 0, sb.len, nb.rank() as u32, tag, MpiOpts::host()));
            // The matching receive uses the opposite direction's tag.
            let opp = dirs
                .iter()
                .position(|o| *o == (-d.0, -d.1, -d.2))
                .expect("directions are symmetric");
            reqs.push(tc.mpi_irecv(
                &recv_bufs[di],
                0,
                recv_bufs[di].len,
                nb.rank() as u32,
                opp as i32,
                MpiOpts::host(),
            ));
        }
        tc.mpi_waitall(&reqs);
        tc.acc_update_device(&field, 0, boundary_bytes, None);

        if p.verify {
            for (di, d) in dirs.iter().enumerate() {
                let Some(nb) = me.neighbor(*d) else { continue };
                let v = tc.host_view(&recv_bufs[di]);
                if math_ok(&v) {
                    let opp = dirs
                        .iter()
                        .position(|o| *o == (-d.0, -d.1, -d.2))
                        .expect("symmetric");
                    let expect = payload(nb.rank(), opp, iter);
                    let got = v.read_f64s(0, 1)[0];
                    assert_eq!(got, expect, "halo from {:?} dir {d:?}", nb);
                }
            }
        }

        tc.acc_kernel(None, phase_cost[0], || {});

        // ---- phase 2: element-centred exchange over the 6 faces --------
        let mut reqs: Vec<UReq> = Vec::new();
        for (di, d) in dirs.iter().enumerate() {
            if d.0.abs() + d.1.abs() + d.2.abs() != 1 {
                continue;
            }
            let Some(nb) = me.neighbor(*d) else { continue };
            let tag = 100 + di as i32;
            let sb = &send_bufs[di];
            reqs.push(tc.mpi_isend(sb, 0, sb.len, nb.rank() as u32, tag, MpiOpts::host()));
            let opp = dirs
                .iter()
                .position(|o| *o == (-d.0, -d.1, -d.2))
                .expect("symmetric");
            reqs.push(tc.mpi_irecv(
                &recv_bufs[di],
                0,
                recv_bufs[di].len,
                nb.rank() as u32,
                100 + opp as i32,
                MpiOpts::host(),
            ));
        }
        tc.mpi_waitall(&reqs);
        tc.acc_kernel(None, phase_cost[1], || {});
        tc.acc_kernel(None, phase_cost[2], || {});

        // ---- time-constraint reduction ----------------------------------
        // Local constraint from the received boundary payloads (their
        // magnitude grows with the iteration stamp, so dt shrinks);
        // huge-scale runs without live data fall back to a deterministic
        // decreasing sequence.
        let mut boundary_max = 0.0f64;
        let mut have_data = false;
        for (di, d) in dirs.iter().enumerate() {
            if me.neighbor(*d).is_none() {
                continue;
            }
            let v = tc.host_view(&recv_bufs[di]);
            if math_ok(&v) {
                boundary_max = boundary_max.max(v.read_f64s(0, 1)[0].abs());
                have_data = true;
            }
        }
        let local_dt = if have_data {
            1.0 / (2.0 + boundary_max)
        } else {
            1.0 / (iter + 1) as f64
        };
        let dt = tc.mpi_allreduce_f64(&[local_dt], ReduceOp::Min);
        assert!(
            dt[0] > 0.0 && dt[0] <= local_dt,
            "global dt must satisfy every rank's constraint"
        );
        assert!(
            dt[0] < prev_dt,
            "time constraint must tighten as the boundary state advances"
        );
        prev_dt = dt[0];
        sim_time += dt[0];
    }
    assert!(
        p.iters == 0 || sim_time > 0.0,
        "the reduced dt drives the simulated clock"
    );
}

/// Run the LULESH proxy and return the report.
pub fn run_lulesh(
    spec: MachineSpec,
    options: RuntimeOptions,
    phys_cap: Option<u64>,
    params: LuleshParams,
) -> Result<RunSummary, SimError> {
    launch_app(spec, options, phys_cap, move |tc| lulesh_task(tc, &params))
}

#[cfg(test)]
mod tests {
    use super::*;
    use impacc_machine::presets;

    #[test]
    fn coordinates_round_trip() {
        for q in [1usize, 2, 3] {
            for r in 0..q * q * q {
                assert_eq!(Coord::of(r, q).rank(), r);
            }
        }
    }

    #[test]
    fn directions_are_26_and_symmetric() {
        let dirs = directions();
        assert_eq!(dirs.len(), 26);
        for d in &dirs {
            assert!(dirs.contains(&(-d.0, -d.1, -d.2)));
        }
    }

    #[test]
    fn patch_sizes_follow_geometry() {
        assert_eq!(patch_elems((1, 0, 0), 8), 64);
        assert_eq!(patch_elems((1, 1, 0), 8), 8);
        assert_eq!(patch_elems((1, 1, 1), 8), 1);
    }

    #[test]
    fn interior_task_has_26_neighbors() {
        let c = Coord::of(13, 3); // centre of a 3x3x3 grid
        assert_eq!((c.x, c.y, c.z), (1, 1, 1));
        let n = directions()
            .iter()
            .filter(|d| c.neighbor(**d).is_some())
            .count();
        assert_eq!(n, 26);
        // A corner task has 7.
        let corner = Coord::of(0, 3);
        let n = directions()
            .iter()
            .filter(|d| corner.neighbor(**d).is_some())
            .count();
        assert_eq!(n, 7);
    }

    #[test]
    fn single_task_lulesh_runs() {
        run_lulesh(
            presets::test_cluster(1, 1),
            RuntimeOptions::impacc(),
            None,
            LuleshParams {
                s: 4,
                iters: 3,
                verify: true,
            },
        )
        .unwrap();
    }

    #[test]
    fn eight_tasks_halo_contents_verified_both_modes() {
        for opts in [RuntimeOptions::impacc(), RuntimeOptions::baseline()] {
            run_lulesh(
                presets::test_cluster(1, 8),
                opts,
                None,
                LuleshParams {
                    s: 3,
                    iters: 2,
                    verify: true,
                },
            )
            .unwrap();
        }
    }

    #[test]
    fn twenty_seven_tasks_across_nodes() {
        // 27 tasks over 4 nodes x 8 devices = 32 slots (5 idle is fine:
        // use 27 of them by trimming the spec).
        let mut spec = presets::test_cluster(4, 8);
        spec.nodes[3].devices.truncate(3); // 8+8+8+3 = 27
        run_lulesh(
            spec,
            RuntimeOptions::impacc(),
            None,
            LuleshParams {
                s: 2,
                iters: 2,
                verify: true,
            },
        )
        .unwrap();
    }

    #[test]
    fn impacc_wins_on_psg_single_node() {
        // Paper-scale per-task problem (its Figure 15 titles use sizes in
        // the tens per edge): faces are large enough that fusing away a
        // copy beats the message-command overhead.
        let p = LuleshParams {
            s: 48,
            iters: 4,
            verify: false,
        };
        let i = run_lulesh(presets::psg(), RuntimeOptions::impacc(), None, p.clone()).unwrap();
        let b = run_lulesh(presets::psg(), RuntimeOptions::baseline(), None, p).unwrap();
        assert!(
            i.elapsed_secs() < b.elapsed_secs(),
            "pinning + fusion should win: {} vs {}",
            i.elapsed_secs(),
            b.elapsed_secs()
        );
    }
}
