//! Array-layer acceptance tests.
//!
//! 1. **Hand-written parity** — jacobi re-expressed on the array API
//!    must be indistinguishable from the hand-written app in all three
//!    runtime modes: bit-identical residual history, identical engine
//!    metrics (modulo the array layer's own `array_*` counters), and
//!    the same virtual end time. The array layer charges for exactly
//!    the traffic and compute the hand-written code issues — no hidden
//!    packing, no extra synchronization.
//! 2. **Parallel determinism** — the array jacobi is bit-identical
//!    (report, spans, PROF json) across conservative-engine
//!    parallelism degrees 1/2/8.
//! 3. **Chaos** — the 3-d stencil under a fixed-seed fault plan
//!    recovers bit-identically (its built-in serial-replay verification
//!    runs inside the faulted launch) and reruns reproduce the same
//!    observables exactly.
//! 4. **Scenario sweeps** — every new scenario verifies against its
//!    serial replay across task counts, runtime modes and halo depths,
//!    and `map`/`reduce`/`gather` round-trip exactly, block-cyclic
//!    layout included.

use std::collections::BTreeMap;

use impacc_apps::{launch_app, launch_app_tuned, run_jacobi_probed, JacobiParams};
use impacc_array::scenarios::{
    jacobi_array_task, redblack_task, stencil2d_task, stencil3d_task, ArrayJacobiParams,
    RedBlackParams, Stencil2dParams, Stencil3dParams,
};
use impacc_array::{ArraySpec, CartGrid, DistArray, Layout, ResProbe};
use impacc_chaos::{FaultPlan, FaultSite};
use impacc_core::{Launch, RunSummary, RuntimeOptions};
use impacc_machine::presets;
use impacc_mpi::ReduceOp;
use impacc_obs::Recorder;

fn modes() -> Vec<(&'static str, RuntimeOptions)> {
    let mut split = RuntimeOptions::impacc();
    split.unified_queue = false;
    vec![
        ("impacc-unified", RuntimeOptions::impacc()),
        ("impacc-split", split),
        ("baseline", RuntimeOptions::baseline()),
    ]
}

/// Engine metrics with the array layer's own counters removed — the
/// hand-written app has no analogue for those, and everything else must
/// match exactly.
fn stripped(s: &RunSummary) -> BTreeMap<&'static str, u64> {
    s.report
        .metrics
        .iter()
        .filter(|(k, _)| !k.starts_with("array_"))
        .map(|(k, v)| (*k, *v))
        .collect()
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Jacobi on the array API vs the hand-written app: same machine, same
/// mode, same parameters — same residual bits, same metrics, same
/// virtual end time. Runs with verification on, so both sides also do
/// their full gather + serial-reference comparison inside the launch.
#[test]
fn array_jacobi_matches_handwritten_in_all_modes() {
    for (name, opts) in modes() {
        let hand_probe = ResProbe::new();
        let hand = run_jacobi_probed(
            presets::test_cluster(2, 2),
            opts,
            None,
            None,
            true,
            JacobiParams {
                n: 24,
                iters: 6,
                verify: true,
            },
            hand_probe.clone(),
        )
        .expect("hand-written jacobi");

        let arr_probe = ResProbe::new();
        let probe_in = arr_probe.clone();
        let arr = launch_app_tuned(
            presets::test_cluster(2, 2),
            opts,
            None,
            None,
            true,
            move |tc| {
                jacobi_array_task(
                    tc,
                    &ArrayJacobiParams {
                        n: 24,
                        iters: 6,
                        verify: true,
                    },
                    Some(&probe_in),
                )
            },
        )
        .expect("array jacobi");

        let h = hand_probe.take();
        let a = arr_probe.take();
        assert!(!h.is_empty(), "{name}: probe captured no residuals");
        assert_eq!(bits(&h), bits(&a), "{name}: residual history bits");
        assert_eq!(stripped(&hand), stripped(&arr), "{name}: engine metrics");
        assert_eq!(
            hand.report.end_time, arr.report.end_time,
            "{name}: virtual end time"
        );
        assert_eq!(
            hand.report.events, arr.report.events,
            "{name}: dispatch count"
        );
    }
}

/// Same parity under physical truncation: math is skipped, timing and
/// traffic are charged identically.
#[test]
fn array_jacobi_matches_handwritten_under_phys_cap() {
    let hand = run_jacobi_probed(
        presets::test_cluster(2, 2),
        RuntimeOptions::impacc(),
        Some(4096),
        None,
        true,
        JacobiParams {
            n: 256,
            iters: 4,
            verify: false,
        },
        ResProbe::new(),
    )
    .expect("hand-written jacobi (capped)");
    let arr = launch_app_tuned(
        presets::test_cluster(2, 2),
        RuntimeOptions::impacc(),
        Some(4096),
        None,
        true,
        move |tc| {
            jacobi_array_task(
                tc,
                &ArrayJacobiParams {
                    n: 256,
                    iters: 4,
                    verify: false,
                },
                None,
            )
        },
    )
    .expect("array jacobi (capped)");
    assert_eq!(stripped(&hand), stripped(&arr), "capped metrics");
    assert_eq!(hand.report.end_time, arr.report.end_time, "capped end time");
}

struct Observed {
    summary: RunSummary,
    spans: Vec<impacc_obs::Span>,
    prof_json: String,
}

fn observe(summary: RunSummary, rec: &Recorder, name: &str) -> Observed {
    rec.canonicalize();
    let spans = rec.spans();
    let prof_json = impacc_prof::analyze(&spans, &rec.edges()).to_json(name);
    Observed {
        summary,
        spans,
        prof_json,
    }
}

fn assert_bit_identical(base: &Observed, other: &Observed, degree: usize) {
    let (a, b) = (&base.summary.report, &other.summary.report);
    assert_eq!(a.end_time, b.end_time, "virtual end time @ p={degree}");
    assert_eq!(a.events, b.events, "dispatch count @ p={degree}");
    assert_eq!(a.metrics, b.metrics, "engine metrics @ p={degree}");
    assert_eq!(a.actors, b.actors, "per-actor tags @ p={degree}");
    assert_eq!(
        a.parallel_advances, b.parallel_advances,
        "parallel advances @ p={degree}"
    );
    assert_eq!(
        a.horizon_stalls, b.horizon_stalls,
        "horizon stalls @ p={degree}"
    );
    assert_eq!(base.spans, other.spans, "span streams @ p={degree}");
    assert_eq!(
        base.prof_json, other.prof_json,
        "PROF json payload @ p={degree}"
    );
}

/// Array jacobi on a 4-node cluster is bit-identical across
/// conservative-engine parallelism degrees, pinned through the typed
/// `Launch::parallelism` builder (immune to ambient `IMPACC_PARALLEL`).
#[test]
fn array_jacobi_is_bit_identical_across_parallelism() {
    let run = |degree: usize| -> Observed {
        let rec = Recorder::new();
        let s = Launch::new(presets::test_cluster(4, 2), RuntimeOptions::impacc())
            .parallelism(degree)
            .recorder(&rec)
            .run(move |tc| {
                jacobi_array_task(
                    tc,
                    &ArrayJacobiParams {
                        n: 64,
                        iters: 6,
                        verify: false,
                    },
                    None,
                )
            })
            .expect("array jacobi run");
        observe(s, &rec, "array_jacobi")
    };
    let base = run(1);
    assert!(
        base.summary.report.parallel_advances > 0,
        "a 4-node array jacobi should overlap partitions in at least one window"
    );
    assert!(
        base.spans
            .iter()
            .any(|sp| sp.attr("label") == Some("array.halo")),
        "halo exchanges must reach the recorded trace"
    );
    for d in [2usize, 8] {
        assert_bit_identical(&base, &run(d), d);
    }
}

/// 3-d stencil under a fixed-seed fault plan: link drops and copy
/// faults fire, the run still verifies bit-exactly against its serial
/// replay (recovery is lossless), and a rerun with the same seed
/// reproduces every observable.
#[test]
fn stencil3d_chaos_fixed_seed_is_repeatable() {
    let run = || -> Observed {
        let rec = Recorder::new();
        let plan = FaultPlan::new(0x5EED_A88A)
            .with_rate(FaultSite::LinkDrop, 0.2)
            .with_rate(FaultSite::CopyFault, 0.1);
        let s = Launch::new(presets::test_cluster(2, 2), RuntimeOptions::impacc())
            .chaos(plan)
            .recorder(&rec)
            .run(move |tc| {
                stencil3d_task(
                    tc,
                    &Stencil3dParams {
                        n: 8,
                        iters: 4,
                        verify: true,
                    },
                    None,
                )
            })
            .expect("faulted stencil3d");
        observe(s, &rec, "stencil3d_chaos")
    };
    let first = run();
    let retries = first
        .summary
        .report
        .metrics
        .get("retries")
        .copied()
        .unwrap_or(0);
    assert!(retries > 0, "seeded 20% link-drop plan must cause retries");
    let again = run();
    assert_bit_identical(&first, &again, 1);
}

/// Every scenario verifies against its serial replay — across task
/// counts, runtime modes, and (for the variable-depth stencil) halo
/// radii. The verification itself is inside each task: a failure
/// panics the launch.
#[test]
fn stencil2d_verifies_across_halo_depths_tasks_and_modes() {
    for halo in 1usize..=3 {
        for tasks in [1usize, 2, 4] {
            for (name, opts) in modes() {
                let p = Stencil2dParams {
                    n: 16,
                    iters: 4,
                    halo,
                    verify: true,
                };
                launch_app(presets::test_cluster(1, tasks), opts, None, move |tc| {
                    stencil2d_task(tc, &p, None)
                })
                .unwrap_or_else(|e| panic!("stencil2d h={halo} t={tasks} {name}: {e:?}"));
            }
        }
    }
}

#[test]
fn stencil3d_verifies_across_tasks() {
    // tasks=4 puts a 2x2 grid on dims 0/1, so dim-1 halos exercise the
    // strided multi-run lowering.
    for tasks in [1usize, 2, 4] {
        for (name, opts) in modes() {
            let p = Stencil3dParams {
                n: 10,
                iters: 3,
                verify: true,
            };
            launch_app(presets::test_cluster(1, tasks), opts, None, move |tc| {
                stencil3d_task(tc, &p, None)
            })
            .unwrap_or_else(|e| panic!("stencil3d t={tasks} {name}: {e:?}"));
        }
    }
}

#[test]
fn redblack_verifies_across_tasks() {
    for tasks in [1usize, 2, 3] {
        for (name, opts) in modes() {
            let p = RedBlackParams {
                n: 15,
                iters: 4,
                verify: true,
            };
            launch_app(presets::test_cluster(1, tasks), opts, None, move |tc| {
                redblack_task(tc, &p, None)
            })
            .unwrap_or_else(|e| panic!("redblack t={tasks} {name}: {e:?}"));
        }
    }
}

/// `map`/`reduce`/`gather` round-trip with exact integer arithmetic, on
/// both layouts. Block-cyclic gathers take the strided staging path.
#[test]
fn map_reduce_gather_are_exact_on_both_layouts() {
    let shape = vec![9usize, 7];
    // Integer-valued cells keep every fold order exact.
    let cell = |g: &[isize]| (g[0] * 7 + g[1]) as f64;
    let expect_sum: f64 = {
        let mut s = 0.0;
        for i in 0..9isize {
            for j in 0..7isize {
                s += 2.0 * cell(&[i, j]);
            }
        }
        s
    };
    let mut layouts = vec![(
        ArraySpec::block(shape.clone(), CartGrid::line(2), 1),
        "block",
    )];
    let mut cyc = ArraySpec::block(shape.clone(), CartGrid::line(2), 0);
    cyc.layout = Layout::BlockCyclic { block: 2 };
    layouts.push((cyc, "cyclic"));

    for (spec, tag) in layouts {
        let spec_in = spec.clone();
        launch_app(
            presets::test_cluster(1, 2),
            RuntimeOptions::impacc(),
            None,
            move |tc| {
                let u = DistArray::build(tc, &spec_in);
                u.fill(tc, cell);
                u.to_device(tc);
                u.map(tc, 1.0, |_g, old| 2.0 * old);
                let got = u.reduce(tc, ReduceOp::Sum, 1.0, |_g, v| v);
                assert_eq!(got.to_bits(), expect_sum.to_bits(), "reduce sum");
                if let Some(full) = u.gather(tc, 0) {
                    for i in 0..9isize {
                        for j in 0..7isize {
                            let got = full[(i * 7 + j) as usize];
                            let want = 2.0 * cell(&[i, j]);
                            assert_eq!(got.to_bits(), want.to_bits(), "gather[{i},{j}]");
                        }
                    }
                }
            },
        )
        .unwrap_or_else(|e| panic!("map/reduce {tag}: {e:?}"));
    }
}
