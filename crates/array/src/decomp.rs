//! Decomposition math: block partitions, Cartesian rank grids, layouts.
//!
//! This module is the single home for the partition/neighbour arithmetic
//! that the hand-written apps used to duplicate. Everything here is pure
//! integer math — no simulator state — so it is shared by the runtime
//! lowering (`dist`), the schedule inference (`schedule`), the serve-side
//! job validation and the property tests.

/// Row-block partition of `n` items over `p` parts: part `i` gets
/// `counts[i]` items starting at `offsets[i]` (ragged when `p ∤ n`).
#[derive(Clone, Debug)]
pub struct BlockPartition {
    /// Items per part.
    pub counts: Vec<usize>,
    /// Start item per part.
    pub offsets: Vec<usize>,
}

impl BlockPartition {
    /// Split `n` items over `p` parts as evenly as possible. The extras
    /// go to the first `n mod p` parts, so counts are non-increasing —
    /// an empty part implies every later part is empty too, which the
    /// halo-schedule inference relies on (an empty neighbour *is* the
    /// global boundary).
    pub fn new(n: usize, p: usize) -> BlockPartition {
        assert!(p > 0);
        let base = n / p;
        let extra = n % p;
        let mut counts = Vec::with_capacity(p);
        let mut offsets = Vec::with_capacity(p);
        let mut off = 0;
        for i in 0..p {
            let c = base + usize::from(i < extra);
            counts.push(c);
            offsets.push(off);
            off += c;
        }
        BlockPartition { counts, offsets }
    }

    /// Number of parts.
    pub fn parts(&self) -> usize {
        self.counts.len()
    }

    /// Half-open global index range owned by part `i`.
    pub fn range(&self, i: usize) -> std::ops::Range<usize> {
        self.offsets[i]..self.offsets[i] + self.counts[i]
    }

    /// Smallest non-zero part, or 0 when every part is empty. This bounds
    /// the halo depth a decomposition can support without multi-hop
    /// exchanges.
    pub fn min_nonzero(&self) -> usize {
        self.counts
            .iter()
            .copied()
            .filter(|&c| c > 0)
            .min()
            .unwrap_or(0)
    }
}

/// How each decomposed dimension assigns global indices to ranks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Layout {
    /// One contiguous block per rank (the default, and the only layout
    /// the stencil driver accepts).
    Block,
    /// Round-robin blocks of `block` indices per rank. Supported by the
    /// decomposition math and `map`/`reduce`; halo exchange over a
    /// cyclic layout is rejected at build time.
    BlockCyclic {
        /// Indices per cyclic block.
        block: usize,
    },
}

/// A Cartesian process grid: `dims[d]` ranks along grid dimension `d`,
/// row-major rank numbering (dimension 0 varies slowest), non-periodic.
/// Grid dimension `d` decomposes array dimension `d`; trailing array
/// dimensions are unsplit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CartGrid {
    /// Ranks per grid dimension.
    pub dims: Vec<usize>,
}

impl CartGrid {
    /// Factor `ranks` over `nd` dimensions as squarely as possible
    /// (an `MPI_Dims_create` equivalent): prime factors are folded,
    /// largest first, onto the currently-smallest dimension, then the
    /// dimensions are sorted descending so earlier (slower-varying)
    /// array dimensions get the larger splits.
    pub fn new(ranks: usize, nd: usize) -> CartGrid {
        assert!(ranks > 0 && nd > 0);
        let mut dims = vec![1usize; nd];
        let mut factors = prime_factors(ranks);
        factors.sort_unstable_by(|a, b| b.cmp(a));
        for f in factors {
            let i = (0..nd).min_by_key(|&i| dims[i]).unwrap();
            dims[i] *= f;
        }
        dims.sort_unstable_by(|a, b| b.cmp(a));
        CartGrid { dims }
    }

    /// A 1-d grid over `ranks` ranks — the decomposition every
    /// row-partitioned app (jacobi) uses.
    pub fn line(ranks: usize) -> CartGrid {
        assert!(ranks > 0);
        CartGrid { dims: vec![ranks] }
    }

    /// Number of grid dimensions.
    pub fn ndims(&self) -> usize {
        self.dims.len()
    }

    /// Total ranks the grid addresses.
    pub fn ranks(&self) -> usize {
        self.dims.iter().product()
    }

    /// Cartesian coordinates of `rank` (row-major: dimension 0 slowest).
    pub fn coords(&self, rank: usize) -> Vec<usize> {
        assert!(rank < self.ranks());
        let mut c = vec![0usize; self.ndims()];
        let mut rem = rank;
        for d in (0..self.ndims()).rev() {
            c[d] = rem % self.dims[d];
            rem /= self.dims[d];
        }
        c
    }

    /// Rank at `coords`.
    pub fn rank_of(&self, coords: &[usize]) -> usize {
        assert_eq!(coords.len(), self.ndims());
        let mut r = 0usize;
        for (&c, &dim) in coords.iter().zip(&self.dims) {
            assert!(c < dim);
            r = r * dim + c;
        }
        r
    }

    /// Coordinates shifted by `delta`, or `None` when the shift leaves
    /// the (non-periodic) grid.
    pub fn shifted(&self, coords: &[usize], delta: &[isize]) -> Option<Vec<usize>> {
        let mut out = Vec::with_capacity(self.ndims());
        for d in 0..self.ndims() {
            let c = coords[d] as isize + delta[d];
            if c < 0 || c >= self.dims[d] as isize {
                return None;
            }
            out.push(c as usize);
        }
        Some(out)
    }

    /// The rank one step in direction `dir ∈ {-1,+1}` along grid
    /// dimension `dim`, or `None` at the grid edge.
    pub fn neighbor(&self, rank: usize, dim: usize, dir: isize) -> Option<usize> {
        let mut delta = vec![0isize; self.ndims()];
        delta[dim] = dir;
        self.shifted(&self.coords(rank), &delta)
            .map(|c| self.rank_of(&c))
    }
}

/// Largest halo depth a block decomposition of `shape` over `grid` can
/// exchange in one hop: the smallest non-zero block length over every
/// grid dimension that actually splits (more than one rank). Unsplit
/// dimensions do not constrain the halo.
pub fn max_halo(shape: &[usize], grid: &CartGrid) -> usize {
    let mut h = usize::MAX;
    for (&n, &dim) in shape.iter().zip(&grid.dims) {
        if dim > 1 {
            h = h.min(BlockPartition::new(n, dim).min_nonzero());
        }
    }
    h
}

fn prime_factors(mut n: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut f = 2;
    while f * f <= n {
        while n.is_multiple_of(f) {
            out.push(f);
            n /= f;
        }
        f += 1;
    }
    if n > 1 {
        out.push(n);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_exact_and_ordered() {
        let p = BlockPartition::new(10, 3);
        assert_eq!(p.counts, vec![4, 3, 3]);
        assert_eq!(p.offsets, vec![0, 4, 7]);
        assert_eq!(p.counts.iter().sum::<usize>(), 10);

        let p = BlockPartition::new(8, 4);
        assert_eq!(p.counts, vec![2; 4]);

        let p = BlockPartition::new(3, 5);
        assert_eq!(p.counts, vec![1, 1, 1, 0, 0]);
        assert_eq!(p.offsets, vec![0, 1, 2, 3, 3]);
        assert_eq!(p.min_nonzero(), 1);
        assert_eq!(p.range(1), 1..2);
    }

    #[test]
    fn grid_factors_squarely() {
        assert_eq!(CartGrid::new(4, 2).dims, vec![2, 2]);
        assert_eq!(CartGrid::new(6, 2).dims, vec![3, 2]);
        assert_eq!(CartGrid::new(8, 3).dims, vec![2, 2, 2]);
        assert_eq!(CartGrid::new(12, 2).dims, vec![4, 3]);
        assert_eq!(CartGrid::new(7, 2).dims, vec![7, 1]);
        assert_eq!(CartGrid::new(1, 3).dims, vec![1, 1, 1]);
        assert_eq!(CartGrid::line(5).dims, vec![5]);
    }

    #[test]
    fn coords_roundtrip_and_neighbors() {
        let g = CartGrid::new(6, 2); // 3 x 2
        for r in 0..6 {
            assert_eq!(g.rank_of(&g.coords(r)), r);
        }
        assert_eq!(g.coords(0), vec![0, 0]);
        assert_eq!(g.coords(3), vec![1, 1]);
        assert_eq!(g.neighbor(0, 0, 1), Some(2));
        assert_eq!(g.neighbor(0, 0, -1), None);
        assert_eq!(g.neighbor(0, 1, 1), Some(1));
        assert_eq!(g.neighbor(1, 1, 1), None);

        let line = CartGrid::line(4);
        assert_eq!(line.neighbor(2, 0, -1), Some(1));
        assert_eq!(line.neighbor(3, 0, 1), None);
    }

    #[test]
    fn max_halo_tracks_smallest_split_block() {
        assert_eq!(max_halo(&[16, 16], &CartGrid::line(4)), 4);
        assert_eq!(max_halo(&[10, 10], &CartGrid::new(4, 2)), 5);
        // Unsplit dims don't constrain.
        assert_eq!(max_halo(&[4, 1000], &CartGrid::line(2)), 2);
        // No split dims at all: unconstrained.
        assert_eq!(max_halo(&[8], &CartGrid::line(1)), usize::MAX);
    }
}
