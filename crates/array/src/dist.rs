//! The distributed array runtime: materialize tiles, lower inferred
//! schedules to the unified queues, and run kernels.
//!
//! A [`DistArray`] owns one node-heap buffer per task holding the local
//! tile (owned block plus ghost pads on the grid-mapped dimensions). The
//! exchange lowering mirrors the three runtime modes the hand-written
//! apps implement — IMPACC with the unified activity queue (device sends
//! enqueued on queue 1, completing at issue), IMPACC without it
//! (device-buffer isend/irecv + waitall), and the baseline that stages
//! every halo through the host — and for a 1-d block row decomposition
//! it issues the *identical* operation sequence as the hand-written
//! jacobi, which the parity tests exploit: residuals, byte counters and
//! the virtual end time all match bit-for-bit.

use std::sync::Arc;

use impacc_core::{BufView, HBuf, MpiOpts, TaskCtx};
use impacc_machine::KernelCost;
use impacc_mpi::ReduceOp;
use parking_lot::Mutex;

use crate::decomp::{max_halo, BlockPartition, CartGrid, Layout};
use crate::schedule::{infer, RegionBox, Schedule, TileGeom};

/// Tag for gather/redistribution traffic, outside the halo tag range.
pub const GATHER_TAG: i32 = 1900;

/// True when real math over this view is meaningful: the physical backing
/// holds every logical byte (no truncation). Timing-only runs skip the
/// arithmetic but keep identical cost-model behaviour.
pub fn math_ok(view: &BufView) -> bool {
    view.backing.phys_len() == view.backing.logical_len()
}

/// Declaration of a distributed global array.
#[derive(Clone, Debug)]
pub struct ArraySpec {
    /// Global extents, row-major (dimension 0 slowest).
    pub shape: Vec<usize>,
    /// Process grid; grid dimension `d` decomposes array dimension `d`.
    pub grid: CartGrid,
    /// Per-dimension index-to-rank layout.
    pub layout: Layout,
    /// Ghost depth on every grid-mapped dimension.
    pub halo: usize,
    /// Exchange edge/corner neighbours too (needed only by kernels with
    /// diagonal dependencies). Face-only schedules still keep edge ghosts
    /// deterministic — they just lag by an exchange.
    pub corners: bool,
}

impl ArraySpec {
    /// Block-decomposed spec with face-only exchange.
    pub fn block(shape: Vec<usize>, grid: CartGrid, halo: usize) -> ArraySpec {
        ArraySpec {
            shape,
            grid,
            layout: Layout::Block,
            halo,
            corners: false,
        }
    }

    /// Check the declaration against a launch of `size` ranks.
    pub fn validate(&self, size: usize) -> Result<(), String> {
        if self.shape.is_empty() {
            return Err("array shape must have at least one dimension".into());
        }
        if self.shape.contains(&0) {
            return Err("array extents must be positive".into());
        }
        let g = self.grid.ndims();
        if g == 0 || g > self.shape.len() {
            return Err(format!("grid rank {g} must be in 1..={}", self.shape.len()));
        }
        if self.grid.ranks() != size {
            return Err(format!(
                "grid addresses {} ranks but the launch has {size}",
                self.grid.ranks()
            ));
        }
        match self.layout {
            Layout::Block => {
                let cap = max_halo(&self.shape, &self.grid);
                if self.halo > cap {
                    return Err(format!(
                        "halo {} exceeds the smallest split block ({cap}); \
                         multi-hop halos are not supported",
                        self.halo
                    ));
                }
            }
            Layout::BlockCyclic { block } => {
                if block == 0 {
                    return Err("cyclic block length must be positive".into());
                }
                if self.halo != 0 {
                    return Err("halo exchange over a block-cyclic layout is not supported".into());
                }
            }
        }
        Ok(())
    }
}

/// Shared local-residual slot written by an asynchronous stencil kernel.
#[derive(Clone, Default)]
pub struct StencilRes(Arc<Mutex<f64>>);

impl StencilRes {
    /// Read the residual. Only meaningful after the kernel's queue has
    /// been waited on (or for synchronous launches).
    pub fn get(&self) -> f64 {
        *self.0.lock()
    }
}

/// Residual probe: scenario tasks push each globally-reduced residual
/// (rank 0 only) so harnesses can compare convergence histories
/// bit-for-bit across implementations.
#[derive(Clone, Default)]
pub struct ResProbe(Arc<Mutex<Vec<f64>>>);

impl ResProbe {
    /// Fresh empty probe.
    pub fn new() -> ResProbe {
        ResProbe::default()
    }

    /// Append one reduced residual.
    pub fn push(&self, v: f64) {
        self.0.lock().push(v);
    }

    /// Snapshot the recorded sequence.
    pub fn take(&self) -> Vec<f64> {
        self.0.lock().clone()
    }
}

/// One cell's neighbourhood, handed to stencil closures.
pub struct Cell<'a> {
    pub(crate) src: &'a [f64],
    pub(crate) idx: usize,
    pub(crate) strides: &'a [isize],
    pub(crate) g: &'a [isize],
}

impl<'a> Cell<'a> {
    /// The cell's own value.
    pub fn center(&self) -> f64 {
        self.src[self.idx]
    }

    /// The value at relative offset `off` (per dimension). Offsets must
    /// stay within the halo on mapped dims and the margin on unmapped
    /// ones; violations panic on the out-of-bounds index.
    pub fn at(&self, off: &[isize]) -> f64 {
        let mut i = self.idx as isize;
        for (d, o) in off.iter().enumerate() {
            i += o * self.strides[d];
        }
        self.src[i as usize]
    }

    /// Global coordinate of the cell along dimension `d`.
    pub fn global(&self, d: usize) -> isize {
        self.g[d]
    }
}

/// Stencil closure: new value of a cell from its neighbourhood.
pub type CellFn = Arc<dyn Fn(&Cell<'_>) -> f64 + Send + Sync>;

/// Per-sweep stencil configuration.
#[derive(Clone, Debug)]
pub struct StencilSpec {
    /// Per-dimension `(lo, hi)` *global* margins: cells within the margin
    /// of the global domain edge are never updated (in-domain boundary
    /// conditions). Use `(0, 0)` on dims whose boundary lives in the
    /// ghost pad.
    pub margin: Vec<(usize, usize)>,
    /// Flops charged per *owned* cell (matching the hand-written apps,
    /// which charge the whole tile, margins included).
    pub flops_per_cell: f64,
    /// Residual to report when physical truncation disables real math.
    pub fallback: f64,
    /// Red-black coloring: update only cells whose global coordinate sum
    /// has this parity.
    pub color: Option<usize>,
}

/// A distributed N-d array of `f64`, one tile per task.
pub struct DistArray {
    spec: ArraySpec,
    rank: usize,
    /// Owned cells per dim.
    counts: Vec<usize>,
    /// Global offset per dim (Block layout; 0 on cyclic/unsplit dims).
    offsets: Vec<usize>,
    /// Ghost pad per dim.
    pad: Vec<usize>,
    /// Local padded extents.
    padded: Vec<usize>,
    /// Padded-index → global-coordinate map, per dim.
    gmap: Vec<Vec<isize>>,
    sched: Schedule,
    buf: HBuf,
}

/// Compute any rank's tile geometry under `spec`.
pub fn tile_geom(spec: &ArraySpec, rank: usize) -> TileGeom {
    let (counts, _offsets) = tile_extents(spec, rank);
    let nd = spec.shape.len();
    let g = spec.grid.ndims();
    let mut pad = vec![0usize; nd];
    for p in pad.iter_mut().take(g) {
        *p = spec.halo;
    }
    let padded = counts.iter().zip(&pad).map(|(c, p)| c + 2 * p).collect();
    TileGeom {
        counts,
        pad,
        padded,
    }
}

/// Owned counts and (block) offsets of `rank`'s tile, per dim.
pub fn tile_extents(spec: &ArraySpec, rank: usize) -> (Vec<usize>, Vec<usize>) {
    let nd = spec.shape.len();
    let g = spec.grid.ndims();
    let coords = spec.grid.coords(rank);
    let mut counts = Vec::with_capacity(nd);
    let mut offsets = Vec::with_capacity(nd);
    #[allow(clippy::needless_range_loop)] // four parallel arrays, indices read best
    for d in 0..nd {
        if d < g {
            match spec.layout {
                Layout::Block => {
                    let part = BlockPartition::new(spec.shape[d], spec.grid.dims[d]);
                    counts.push(part.counts[coords[d]]);
                    offsets.push(part.offsets[coords[d]]);
                }
                Layout::BlockCyclic { block } => {
                    counts.push(cyclic_count(
                        spec.shape[d],
                        spec.grid.dims[d],
                        block,
                        coords[d],
                    ));
                    offsets.push(0);
                }
            }
        } else {
            counts.push(spec.shape[d]);
            offsets.push(0);
        }
    }
    (counts, offsets)
}

fn cyclic_count(n: usize, p: usize, block: usize, coord: usize) -> usize {
    let mut total = 0;
    let mut k = 0;
    loop {
        let base = (k * p + coord) * block;
        if base >= n {
            return total;
        }
        total += block.min(n - base);
        k += 1;
    }
}

/// The `l`-th owned global index of `coord` along a cyclic dim.
fn cyclic_global(p: usize, block: usize, coord: usize, l: usize) -> isize {
    (((l / block) * p + coord) * block + l % block) as isize
}

impl DistArray {
    /// Materialize this task's tile: validates the declaration, infers
    /// the halo schedule, and allocates the padded local buffer on the
    /// node heap. The tile starts on the host; call [`DistArray::fill`]
    /// then [`DistArray::to_device`].
    pub fn build(tc: &TaskCtx, spec: &ArraySpec) -> DistArray {
        spec.validate(tc.size() as usize)
            .unwrap_or_else(|e| panic!("invalid array spec: {e}"));
        let rank = tc.rank() as usize;
        let (counts, offsets) = tile_extents(spec, rank);
        let geom = tile_geom(spec, rank);
        let coords = spec.grid.coords(rank);
        let nd = spec.shape.len();
        let mut gmap = Vec::with_capacity(nd);
        for d in 0..nd {
            let mut m = Vec::with_capacity(geom.padded[d]);
            for li in 0..geom.padded[d] {
                let v = match spec.layout {
                    Layout::Block => offsets[d] as isize + li as isize - geom.pad[d] as isize,
                    Layout::BlockCyclic { block } => {
                        if d < spec.grid.ndims() {
                            cyclic_global(spec.grid.dims[d], block, coords[d], li)
                        } else {
                            li as isize
                        }
                    }
                };
                m.push(v);
            }
            gmap.push(m);
        }
        let sched = match spec.layout {
            Layout::Block => infer(&spec.grid, rank, spec.halo, spec.corners, &|r| {
                tile_geom(spec, r)
            }),
            Layout::BlockCyclic { .. } => Schedule::default(),
        };
        let total: usize = geom.padded.iter().product();
        let buf = tc.malloc_f64(total);
        DistArray {
            spec: spec.clone(),
            rank,
            counts,
            offsets,
            pad: geom.pad,
            padded: geom.padded,
            gmap,
            sched,
            buf,
        }
    }

    /// Owned cells per dim.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Global block offsets per dim.
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// Padded local extents.
    pub fn padded(&self) -> &[usize] {
        &self.padded
    }

    /// The inferred halo schedule.
    pub fn schedule(&self) -> &Schedule {
        &self.sched
    }

    /// The backing buffer handle.
    pub fn buf(&self) -> &HBuf {
        &self.buf
    }

    /// True when this rank owns no cells.
    pub fn is_empty(&self) -> bool {
        self.counts.contains(&0)
    }

    /// Number of owned cells.
    pub fn owned_cells(&self) -> usize {
        self.counts.iter().product()
    }

    fn total_padded(&self) -> usize {
        self.padded.iter().product()
    }

    fn strides(&self) -> Vec<isize> {
        let nd = self.padded.len();
        let mut s = vec![1isize; nd];
        for d in (0..nd.saturating_sub(1)).rev() {
            s[d] = s[d + 1] * self.padded[d + 1] as isize;
        }
        s
    }

    /// The owned region in padded coordinates.
    pub fn owned_region(&self) -> RegionBox {
        RegionBox {
            lo: self.pad.clone(),
            hi: self
                .pad
                .iter()
                .zip(&self.counts)
                .map(|(p, c)| p + c)
                .collect(),
        }
    }

    /// Initialize every cell — ghosts included — from its global
    /// coordinates (ghost coordinates fall outside `0..shape`, which is
    /// where boundary conditions live). Host-side; no simulated cost.
    pub fn fill(&self, tc: &TaskCtx, f: impl Fn(&[isize]) -> f64) {
        let hv = tc.host_view(&self.buf);
        if !math_ok(&hv) {
            return;
        }
        let total = self.total_padded();
        if total == 0 {
            return;
        }
        let nd = self.padded.len();
        let mut vals = vec![0.0f64; total];
        let mut idx = vec![0usize; nd];
        let mut g = vec![0isize; nd];
        for v in vals.iter_mut() {
            for d in 0..nd {
                g[d] = self.gmap[d][idx[d]];
            }
            *v = f(&g);
            let mut d = nd;
            while d > 0 {
                d -= 1;
                idx[d] += 1;
                if idx[d] < self.padded[d] {
                    break;
                }
                idx[d] = 0;
            }
        }
        hv.write_f64s(0, &vals);
    }

    /// `#pragma acc enter data copyin` for the tile.
    pub fn to_device(&self, tc: &TaskCtx) {
        tc.acc_copyin(&self.buf);
    }

    /// Exchange halos per the inferred schedule, lowered to the active
    /// runtime mode. Non-contiguous slabs go as one message per
    /// contiguous run (the simulated analogue of a derived datatype);
    /// run order is row-major on both endpoints, so per-tag FIFO
    /// matching pairs them correctly.
    pub fn exchange(&self, tc: &TaskCtx) {
        if self.sched.pairs.is_empty() {
            return;
        }
        let ctx = tc.ctx();
        let t0 = ctx.now();
        let opts = tc.options();
        let impacc = opts.is_impacc();
        let unified = impacc && opts.unified_queue;
        let mut bytes: u64 = 0;
        let mut msgs: u64 = 0;
        if unified {
            // Unified activity queue: every send completes at issue, the
            // receives gate whatever kernel is enqueued next (Figure 4(c)).
            for p in &self.sched.pairs {
                for (off, len) in p.send.region.runs(&self.padded) {
                    tc.mpi_send(
                        &self.buf,
                        off as u64 * 8,
                        len as u64 * 8,
                        p.send.peer,
                        p.send.tag,
                        MpiOpts::device().on_queue(1),
                    );
                    bytes += len as u64 * 8;
                    msgs += 1;
                }
            }
            for p in &self.sched.pairs {
                for (off, len) in p.recv.region.runs(&self.padded) {
                    tc.mpi_recv(
                        &self.buf,
                        off as u64 * 8,
                        len as u64 * 8,
                        p.recv.peer,
                        p.recv.tag,
                        MpiOpts::device().on_queue(1),
                    );
                }
            }
        } else if impacc {
            // IMPACC without the unified queue: device-buffer isend/irecv
            // paired per neighbour, then a single waitall.
            let mut reqs = Vec::new();
            for p in &self.sched.pairs {
                for (off, len) in p.send.region.runs(&self.padded) {
                    reqs.push(tc.mpi_isend(
                        &self.buf,
                        off as u64 * 8,
                        len as u64 * 8,
                        p.send.peer,
                        p.send.tag,
                        MpiOpts::device(),
                    ));
                    bytes += len as u64 * 8;
                    msgs += 1;
                }
                for (off, len) in p.recv.region.runs(&self.padded) {
                    reqs.push(tc.mpi_irecv(
                        &self.buf,
                        off as u64 * 8,
                        len as u64 * 8,
                        p.recv.peer,
                        p.recv.tag,
                        MpiOpts::device(),
                    ));
                }
            }
            tc.mpi_waitall(&reqs);
        } else {
            // Baseline: stage each slab through the host around host MPI.
            for p in &self.sched.pairs {
                for (off, len) in p.send.region.runs(&self.padded) {
                    tc.acc_update_host(&self.buf, off as u64 * 8, len as u64 * 8, None);
                }
            }
            let mut reqs = Vec::new();
            for p in &self.sched.pairs {
                for (off, len) in p.send.region.runs(&self.padded) {
                    reqs.push(tc.mpi_isend(
                        &self.buf,
                        off as u64 * 8,
                        len as u64 * 8,
                        p.send.peer,
                        p.send.tag,
                        MpiOpts::host(),
                    ));
                    bytes += len as u64 * 8;
                    msgs += 1;
                }
                for (off, len) in p.recv.region.runs(&self.padded) {
                    reqs.push(tc.mpi_irecv(
                        &self.buf,
                        off as u64 * 8,
                        len as u64 * 8,
                        p.recv.peer,
                        p.recv.tag,
                        MpiOpts::host(),
                    ));
                }
            }
            tc.mpi_waitall(&reqs);
            for p in &self.sched.pairs {
                for (off, len) in p.recv.region.runs(&self.padded) {
                    tc.acc_update_device(&self.buf, off as u64 * 8, len as u64 * 8, None);
                }
            }
        }
        ctx.metrics().add("array_halo_bytes", bytes);
        let mode = if unified {
            "unified"
        } else if impacc {
            "impacc"
        } else {
            "baseline"
        };
        ctx.span("array.halo", t0, ctx.now(), || {
            vec![
                ("bytes", bytes.to_string()),
                ("msgs", msgs.to_string()),
                ("mode", mode.to_string()),
            ]
        });
    }

    /// Run one stencil sweep reading `self`, writing `out` (pass the same
    /// array for an in-place colored sweep). Returns the local residual
    /// slot (`max |new − old|` over updated cells); wait on the queue
    /// before reading it under the unified-queue mode.
    pub fn stencil(
        &self,
        tc: &TaskCtx,
        out: &DistArray,
        spec: &StencilSpec,
        f: CellFn,
    ) -> StencilRes {
        assert_eq!(
            self.spec.layout,
            Layout::Block,
            "stencil requires a block layout"
        );
        assert_eq!(self.padded, out.padded, "stencil arrays must be congruent");
        assert_eq!(spec.margin.len(), self.padded.len());
        let res = StencilRes::default();
        if self.is_empty() {
            return res;
        }
        let nd = self.padded.len();
        // Loop bounds in padded coords: owned region clipped by global
        // margins.
        let mut plo = vec![0usize; nd];
        let mut phi = vec![0usize; nd];
        for d in 0..nd {
            let (mlo, mhi) = spec.margin[d];
            let lo = (mlo as isize - self.offsets[d] as isize).max(0) as usize;
            let hi_global = self.spec.shape[d] as isize - mhi as isize - self.offsets[d] as isize;
            let hi = hi_global.clamp(lo as isize, self.counts[d] as isize) as usize;
            plo[d] = self.pad[d] + lo;
            phi[d] = self.pad[d] + hi.max(lo);
        }
        let cells: u64 = plo.iter().zip(&phi).map(|(l, h)| (h - l) as u64).product();
        let uv = tc.dev_view(&self.buf);
        let vv = tc.dev_view(&out.buf);
        let total = self.total_padded();
        let strides = self.strides();
        let gmap = self.gmap.clone();
        let color = spec.color;
        let fallback = spec.fallback;
        let res_out = res.clone();
        let sweep = move || {
            if !math_ok(&uv) {
                *res_out.0.lock() = fallback;
                return;
            }
            let src = uv.read_f64s(0, total);
            let mut dst = vv.read_f64s(0, total);
            let mut r = 0.0f64;
            if (0..nd).all(|d| phi[d] > plo[d]) {
                let mut idx = plo.clone();
                let mut g = vec![0isize; nd];
                'cells: loop {
                    let mut lin = 0isize;
                    for d in 0..nd {
                        lin += idx[d] as isize * strides[d];
                        g[d] = gmap[d][idx[d]];
                    }
                    let lin = lin as usize;
                    let on_color = match color {
                        Some(c) => g.iter().sum::<isize>().rem_euclid(2) as usize == c,
                        None => true,
                    };
                    if on_color {
                        let cell = Cell {
                            src: &src,
                            idx: lin,
                            strides: &strides,
                            g: &g,
                        };
                        let next = f(&cell);
                        r = r.max((next - src[lin]).abs());
                        dst[lin] = next;
                    }
                    let mut d = nd;
                    loop {
                        if d == 0 {
                            break 'cells;
                        }
                        d -= 1;
                        idx[d] += 1;
                        if idx[d] < phi[d] {
                            break;
                        }
                        idx[d] = plo[d];
                    }
                }
            }
            vv.write_f64s(0, &dst);
            *res_out.0.lock() = r;
        };
        // Cost convention from the hand-written apps: flops over the whole
        // owned tile, bytes over the padded tile (read + write).
        let cost = KernelCost::new(
            spec.flops_per_cell * self.owned_cells().max(1) as f64,
            total as f64 * 16.0,
        );
        let ctx = tc.ctx();
        let t0 = ctx.now();
        let q = (tc.options().is_impacc() && tc.options().unified_queue).then_some(1);
        tc.acc_kernel(q, cost, sweep);
        ctx.metrics().add("array_cells", cells);
        ctx.span("array.kernel", t0, ctx.now(), || {
            vec![
                ("cells", cells.to_string()),
                ("kind", "stencil".to_string()),
            ]
        });
        res
    }

    /// Apply `f(global_coords, old) -> new` to every owned cell on the
    /// device (works for any layout, cyclic included).
    pub fn map(
        &self,
        tc: &TaskCtx,
        flops_per_cell: f64,
        f: impl Fn(&[isize], f64) -> f64 + Send + Sync + 'static,
    ) {
        if self.is_empty() {
            return;
        }
        let nd = self.padded.len();
        let region = self.owned_region();
        let (plo, phi) = (region.lo, region.hi);
        let uv = tc.dev_view(&self.buf);
        let total = self.total_padded();
        let strides = self.strides();
        let gmap = self.gmap.clone();
        let cells = self.owned_cells() as u64;
        let body = move || {
            if !math_ok(&uv) {
                return;
            }
            let mut vals = uv.read_f64s(0, total);
            let mut idx = plo.clone();
            let mut g = vec![0isize; nd];
            'cells: loop {
                let mut lin = 0isize;
                for d in 0..nd {
                    lin += idx[d] as isize * strides[d];
                    g[d] = gmap[d][idx[d]];
                }
                let lin = lin as usize;
                vals[lin] = f(&g, vals[lin]);
                let mut d = nd;
                loop {
                    if d == 0 {
                        break 'cells;
                    }
                    d -= 1;
                    idx[d] += 1;
                    if idx[d] < phi[d] {
                        break;
                    }
                    idx[d] = plo[d];
                }
            }
            uv.write_f64s(0, &vals);
        };
        let cost = KernelCost::new(
            flops_per_cell * self.owned_cells().max(1) as f64,
            total as f64 * 16.0,
        );
        let ctx = tc.ctx();
        let t0 = ctx.now();
        let q = (tc.options().is_impacc() && tc.options().unified_queue).then_some(1);
        tc.acc_kernel(q, cost, body);
        ctx.metrics().add("array_cells", cells);
        ctx.span("array.kernel", t0, ctx.now(), || {
            vec![("cells", cells.to_string()), ("kind", "map".to_string())]
        });
    }

    /// Fold `f(global_coords, value)` over every owned cell, then combine
    /// across ranks with `op`. Collective: every rank must call it.
    /// Returns 0.0 (deterministically) when truncation disables math.
    pub fn reduce(
        &self,
        tc: &TaskCtx,
        op: ReduceOp,
        flops_per_cell: f64,
        f: impl Fn(&[isize], f64) -> f64 + Send + Sync + 'static,
    ) -> f64 {
        let local: Arc<Mutex<Option<f64>>> = Arc::new(Mutex::new(None));
        let unified = tc.options().is_impacc() && tc.options().unified_queue;
        if !self.is_empty() {
            let nd = self.padded.len();
            let region = self.owned_region();
            let (plo, phi) = (region.lo, region.hi);
            let uv = tc.dev_view(&self.buf);
            let total = self.total_padded();
            let strides = self.strides();
            let gmap = self.gmap.clone();
            let slot = local.clone();
            let body = move || {
                if !math_ok(&uv) {
                    *slot.lock() = Some(0.0);
                    return;
                }
                let vals = uv.read_f64s(0, total);
                let mut acc: Option<f64> = None;
                let mut idx = plo.clone();
                let mut g = vec![0isize; nd];
                'cells: loop {
                    let mut lin = 0isize;
                    for d in 0..nd {
                        lin += idx[d] as isize * strides[d];
                        g[d] = gmap[d][idx[d]];
                    }
                    let v = f(&g, vals[lin as usize]);
                    acc = Some(match (acc, op) {
                        (None, _) => v,
                        (Some(a), ReduceOp::Sum) => a + v,
                        (Some(a), ReduceOp::Max) => a.max(v),
                        (Some(a), ReduceOp::Min) => a.min(v),
                        (Some(a), ReduceOp::Prod) => a * v,
                    });
                    let mut d = nd;
                    loop {
                        if d == 0 {
                            break 'cells;
                        }
                        d -= 1;
                        idx[d] += 1;
                        if idx[d] < phi[d] {
                            break;
                        }
                        idx[d] = plo[d];
                    }
                }
                *slot.lock() = acc;
            };
            let cost = KernelCost::new(
                flops_per_cell * self.owned_cells().max(1) as f64,
                total as f64 * 8.0,
            );
            let q = unified.then_some(1);
            tc.acc_kernel(q, cost, body);
        }
        if unified {
            tc.acc_wait(1);
        }
        let mine = (*local.lock()).unwrap_or(match op {
            ReduceOp::Sum => 0.0,
            ReduceOp::Max => f64::MIN,
            ReduceOp::Min => f64::MAX,
            ReduceOp::Prod => 1.0,
        });
        let ctx = tc.ctx();
        let t0 = ctx.now();
        let out = tc.mpi_allreduce_f64(&[mine], op);
        ctx.span("array.redist", t0, ctx.now(), || {
            vec![("kind", "reduce".to_string())]
        });
        out[0]
    }

    /// Gather the global array to `root`'s host memory. Collective.
    /// Returns `Some(values)` on the root when real math is enabled.
    /// Ranks whose owned block is globally contiguous are received
    /// straight into the assembled buffer (for a 1-d row decomposition
    /// this reproduces the hand-written gather exactly); strided blocks
    /// stage through a packed buffer and scatter cell-by-cell.
    pub fn gather(&self, tc: &TaskCtx, root: u32) -> Option<Vec<f64>> {
        let ctx = tc.ctx();
        let t0 = ctx.now();
        let rank = self.rank as u32;
        let size = tc.size() as usize;
        let owned = self.owned_region();
        if !self.is_empty() {
            for (off, len) in owned.runs(&self.padded) {
                tc.acc_update_host(&self.buf, off as u64 * 8, len as u64 * 8, None);
            }
        }
        let total_global: usize = self.spec.shape.iter().product();
        let out = if rank == root {
            let full = tc.malloc_f64(total_global);
            let fv = tc.host_view(&full);
            let ok = math_ok(&fv);
            if !self.is_empty() && ok {
                let hv = tc.host_view(&self.buf);
                if math_ok(&hv) {
                    self.scatter_local_into(&hv, &fv);
                }
            }
            for r in 0..size {
                if r as u32 == root {
                    continue;
                }
                let (counts, offsets) = tile_extents(&self.spec, r);
                if counts.contains(&0) {
                    continue;
                }
                let cells: usize = counts.iter().product();
                let geom = tile_geom(&self.spec, r);
                let region = RegionBox {
                    lo: geom.pad.clone(),
                    hi: geom
                        .pad
                        .iter()
                        .zip(&geom.counts)
                        .map(|(p, c)| p + c)
                        .collect(),
                };
                if let Some(goff) = contiguous_global_offset(&self.spec, &counts, &offsets) {
                    // The sender emits one message per owned run, in the
                    // tile's row-major order — which, for a globally
                    // contiguous block, is also global row-major order.
                    // Receive each run straight into place (a 1-d row
                    // decomposition has a single run: the hand-written
                    // jacobi gather, message for message).
                    let mut at = goff as u64;
                    for (_off, len) in region.runs(&geom.padded) {
                        tc.mpi_recv(
                            &full,
                            at * 8,
                            len as u64 * 8,
                            r as u32,
                            GATHER_TAG,
                            MpiOpts::host(),
                        );
                        at += len as u64;
                    }
                } else {
                    let staging = tc.malloc_f64(cells);
                    let mut at = 0u64;
                    for (_off, len) in region.runs(&geom.padded) {
                        tc.mpi_recv(
                            &staging,
                            at * 8,
                            len as u64 * 8,
                            r as u32,
                            GATHER_TAG,
                            MpiOpts::host(),
                        );
                        at += len as u64;
                    }
                    if ok {
                        let sv = tc.host_view(&staging);
                        if math_ok(&sv) {
                            scatter_packed(&self.spec, r, &sv, &fv);
                        }
                    }
                    tc.free(staging);
                }
            }
            ok.then(|| fv.read_f64s(0, total_global))
        } else {
            if !self.is_empty() {
                for (off, len) in owned.runs(&self.padded) {
                    tc.mpi_send(
                        &self.buf,
                        off as u64 * 8,
                        len as u64 * 8,
                        root,
                        GATHER_TAG,
                        MpiOpts::host(),
                    );
                }
            }
            None
        };
        ctx.span("array.redist", t0, ctx.now(), || {
            vec![
                ("kind", "gather".to_string()),
                ("cells", total_global.to_string()),
            ]
        });
        out
    }

    /// Copy this rank's owned cells from its host tile into the global
    /// host buffer (no simulated cost — host view traffic).
    fn scatter_local_into(&self, hv: &BufView, fv: &BufView) {
        let nd = self.padded.len();
        let strides = self.strides();
        let region = self.owned_region();
        let (plo, phi) = (region.lo, region.hi);
        let vals = hv.read_f64s(0, self.total_padded());
        let mut idx = plo.clone();
        'cells: loop {
            let mut lin = 0isize;
            let mut gidx = 0usize;
            for d in 0..nd {
                lin += idx[d] as isize * strides[d];
                gidx = gidx * self.spec.shape[d] + self.gmap[d][idx[d]] as usize;
            }
            fv.write_f64s(gidx, &vals[lin as usize..lin as usize + 1]);
            let mut d = nd;
            loop {
                if d == 0 {
                    break 'cells;
                }
                d -= 1;
                idx[d] += 1;
                if idx[d] < phi[d] {
                    break;
                }
                idx[d] = plo[d];
            }
        }
    }

    /// Swap the tiles of two congruent arrays (double buffering).
    pub fn swap(&mut self, other: &mut DistArray) {
        assert_eq!(
            self.padded, other.padded,
            "swapped arrays must be congruent"
        );
        std::mem::swap(&mut self.buf, &mut other.buf);
    }
}

/// If `counts/offsets` describe a globally-contiguous row-major block
/// (full extent on every dim but the first), its global element offset.
fn contiguous_global_offset(
    spec: &ArraySpec,
    counts: &[usize],
    offsets: &[usize],
) -> Option<usize> {
    if spec.layout != Layout::Block {
        return None;
    }
    if counts[1..]
        .iter()
        .zip(&spec.shape[1..])
        .any(|(&c, &s)| c != s)
    {
        return None;
    }
    let tail: usize = spec.shape[1..].iter().product();
    Some(offsets[0] * tail)
}

/// Scatter a packed (run-ordered) tile of rank `r` into the global host
/// buffer.
fn scatter_packed(spec: &ArraySpec, r: usize, sv: &BufView, fv: &BufView) {
    let (counts, offsets) = tile_extents(spec, r);
    let cells: usize = counts.iter().product();
    let vals = sv.read_f64s(0, cells);
    let nd = counts.len();
    let coords = spec.grid.coords(r);
    let mut idx = vec![0usize; nd];
    for v in vals.iter().take(cells) {
        let mut gidx = 0usize;
        for d in 0..nd {
            let g = match spec.layout {
                Layout::Block => (offsets[d] + idx[d]) as isize,
                Layout::BlockCyclic { block } => {
                    if d < spec.grid.ndims() {
                        cyclic_global(spec.grid.dims[d], block, coords[d], idx[d])
                    } else {
                        idx[d] as isize
                    }
                }
            };
            gidx = gidx * spec.shape[d] + g as usize;
        }
        fv.write_f64s(gidx, &[*v]);
        let mut d = nd;
        while d > 0 {
            d -= 1;
            idx[d] += 1;
            if idx[d] < counts[d] {
                break;
            }
            idx[d] = 0;
        }
    }
}
