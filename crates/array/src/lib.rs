//! `impacc-array`: an HDArray-style distributed array layer.
//!
//! Declare an N-d global array with a block (or block-cyclic)
//! decomposition over the launched ranks and a halo depth; the library
//! materializes per-rank tiles on node-heap memory through the normal
//! present-table path, *infers* the halo-exchange schedule from the
//! Cartesian decomposition (face neighbours by default, edge/corner
//! neighbours on request, deduped per direction with deterministic
//! tags), and lowers it onto whichever runtime mode is active — unified
//! activity-queue device sends, plain device isend/irecv, or the
//! host-staged baseline. Kernels run through the existing device queues
//! via a `map`/`stencil`/`reduce` API, and every phase emits obs spans
//! (`array.halo`, `array.kernel`, `array.redist`) so the profiler and
//! flight recorder attribute array traffic like hand-written traffic.
//!
//! Layering:
//! - [`decomp`] — partition/grid arithmetic (pure math, no simulator).
//! - [`schedule`] — direction enumeration and region inference.
//! - [`dist`] — the runtime lowering ([`DistArray`]).
//! - [`scenarios`] — apps written against the array API, with serial
//!   replays used as bit-exact verification oracles.

pub mod decomp;
pub mod dist;
pub mod scenarios;
pub mod schedule;

pub use decomp::{max_halo, BlockPartition, CartGrid, Layout};
pub use dist::{
    math_ok, tile_extents, tile_geom, ArraySpec, Cell, CellFn, DistArray, ResProbe, StencilRes,
    StencilSpec, GATHER_TAG,
};
pub use schedule::{directions, infer, Entry, Pair, RegionBox, Schedule, TileGeom, HALO_TAG_BASE};
