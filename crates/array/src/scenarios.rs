//! Scenarios written against the array API.
//!
//! Each scenario declares a global array, lets the library infer the
//! halo exchange, and drives sweeps through [`DistArray::stencil`] —
//! the whole point of the layer is that none of them hand-writes a
//! single send. Verification replays the *same* cell closure on a
//! serial [`SerialField`] and asserts bit-for-bit equality of both the
//! gathered field and the reduced residual history: the distributed
//! sweeps compute every cell from identically-valued neighbours, so
//! exact equality is the correct expectation, not a tolerance.

use std::sync::Arc;

use impacc_core::TaskCtx;
use impacc_mpi::ReduceOp;

use crate::decomp::CartGrid;
use crate::dist::{ArraySpec, Cell, CellFn, DistArray, ResProbe, StencilSpec};

/// Jacobi boundary conditions: the ghost row above the global top is
/// held at 1, everything else starts at 0 (matching the hand-written
/// app's `initial_row`).
pub fn jacobi_bc(g: &[isize]) -> f64 {
    if g[0] < 0 {
        1.0
    } else {
        0.0
    }
}

/// The five-point Jacobi update, in the hand-written operand order.
pub fn jacobi_cell() -> CellFn {
    Arc::new(|c: &Cell<'_>| {
        0.25 * (c.at(&[-1, 0]) + c.at(&[1, 0]) + c.at(&[0, -1]) + c.at(&[0, 1]))
    })
}

/// Parameters shared by the square 2-d scenarios.
#[derive(Clone, Debug)]
pub struct ArrayJacobiParams {
    /// Mesh dimension (`n×n`).
    pub n: usize,
    /// Number of sweeps.
    pub iters: usize,
    /// Gather and compare against the serial replay at the end.
    pub verify: bool,
}

/// Jacobi re-expressed on the array API. With a 1-d block row
/// decomposition this issues the identical operation sequence as the
/// hand-written `jacobi_task`, which the parity tests verify down to
/// byte-equal metrics and end times.
pub fn jacobi_array_task(tc: &TaskCtx, p: &ArrayJacobiParams, probe: Option<&ResProbe>) {
    let spec = ArraySpec::block(vec![p.n, p.n], CartGrid::line(tc.size() as usize), 1);
    let mut u = DistArray::build(tc, &spec);
    let mut unew = DistArray::build(tc, &spec);
    u.fill(tc, jacobi_bc);
    unew.fill(tc, jacobi_bc);
    u.to_device(tc);
    unew.to_device(tc);
    tc.ctx()
        .event("marker", || vec![("phase", "sweep".to_string())]);

    let unified = tc.options().is_impacc() && tc.options().unified_queue;
    let f = jacobi_cell();
    let mut residuals: Vec<f64> = Vec::new();
    for it in 0..p.iters {
        u.exchange(tc);
        let sspec = StencilSpec {
            margin: vec![(0, 0), (1, 1)],
            flops_per_cell: 6.0,
            fallback: 1.0 / (it + 1) as f64,
            color: None,
        };
        let res = u.stencil(tc, &unew, &sspec, f.clone());
        if unified {
            tc.acc_wait(1);
        }
        let mine = res.get();
        let residual = tc.mpi_allreduce_f64(&[mine], ReduceOp::Max);
        assert!(
            residual[0].is_finite() && residual[0] >= mine,
            "global residual must bound the local one"
        );
        if let Some(pr) = probe {
            if tc.rank() == 0 {
                pr.push(residual[0]);
            }
        }
        residuals.push(residual[0]);
        u.swap(&mut unew);
    }
    if p.iters > 1 && !u.is_empty() {
        assert!(
            residuals.last().unwrap() <= residuals.first().unwrap(),
            "jacobi residual failed to relax: {residuals:?}"
        );
    }
    if unified {
        tc.acc_wait(1);
    }
    if p.verify {
        let got = u.gather(tc, 0);
        if let Some(got) = got {
            let mut reference = SerialField::new(&[p.n, p.n], 1, 1, &jacobi_bc);
            let mut serial_res = Vec::new();
            for _ in 0..p.iters {
                serial_res.push(reference.step(&[(0, 0), (1, 1)], None, &f));
            }
            assert_bits_eq(&got, &reference.interior(), "jacobi_array field");
            assert_bits_eq(&residuals, &serial_res, "jacobi_array residuals");
        }
    }
}

/// 3-d 7-point stencil parameters.
#[derive(Clone, Debug)]
pub struct Stencil3dParams {
    /// Cube edge (`n×n×n`).
    pub n: usize,
    /// Number of sweeps.
    pub iters: usize,
    /// Gather and compare against the serial replay at the end.
    pub verify: bool,
}

fn stencil3d_bc(g: &[isize]) -> f64 {
    0.01 * ((g[0] * g[0] - g[1] + 2 * g[2]) as f64)
}

fn stencil3d_cell() -> CellFn {
    Arc::new(|c: &Cell<'_>| {
        let sum6 = c.at(&[-1, 0, 0])
            + c.at(&[1, 0, 0])
            + c.at(&[0, -1, 0])
            + c.at(&[0, 1, 0])
            + c.at(&[0, 0, -1])
            + c.at(&[0, 0, 1]);
        c.center() + 0.1 * (sum6 - 6.0 * c.center())
    })
}

/// 3-d 7-point smoothing sweep over a 2-d-decomposed cube: dimensions
/// 0 and 1 split across the rank grid (so dim-1 halos exercise the
/// strided multi-run lowering), dimension 2 unsplit with in-domain
/// boundaries.
pub fn stencil3d_task(tc: &TaskCtx, p: &Stencil3dParams, probe: Option<&ResProbe>) {
    let spec = ArraySpec::block(vec![p.n, p.n, p.n], CartGrid::new(tc.size() as usize, 2), 1);
    let mut u = DistArray::build(tc, &spec);
    let mut unew = DistArray::build(tc, &spec);
    u.fill(tc, stencil3d_bc);
    unew.fill(tc, stencil3d_bc);
    u.to_device(tc);
    unew.to_device(tc);
    tc.ctx()
        .event("marker", || vec![("phase", "sweep".to_string())]);

    let unified = tc.options().is_impacc() && tc.options().unified_queue;
    let f = stencil3d_cell();
    let margin = vec![(0, 0), (0, 0), (1, 1)];
    let mut residuals: Vec<f64> = Vec::new();
    for it in 0..p.iters {
        u.exchange(tc);
        let sspec = StencilSpec {
            margin: margin.clone(),
            flops_per_cell: 9.0,
            fallback: 1.0 / (it + 1) as f64,
            color: None,
        };
        let res = u.stencil(tc, &unew, &sspec, f.clone());
        if unified {
            tc.acc_wait(1);
        }
        let residual = tc.mpi_allreduce_f64(&[res.get()], ReduceOp::Max);
        assert!(residual[0].is_finite());
        if let Some(pr) = probe {
            if tc.rank() == 0 {
                pr.push(residual[0]);
            }
        }
        residuals.push(residual[0]);
        u.swap(&mut unew);
    }
    if unified {
        tc.acc_wait(1);
    }
    if p.verify {
        if let Some(got) = u.gather(tc, 0) {
            let mut reference = SerialField::new(&[p.n, p.n, p.n], 2, 1, &stencil3d_bc);
            let mut serial_res = Vec::new();
            for _ in 0..p.iters {
                serial_res.push(reference.step(&margin, None, &f));
            }
            assert_bits_eq(&got, &reference.interior(), "stencil3d field");
            assert_bits_eq(&residuals, &serial_res, "stencil3d residuals");
        }
    }
}

/// Variable-halo 2-d stencil parameters.
#[derive(Clone, Debug)]
pub struct Stencil2dParams {
    /// Mesh dimension (`n×n`).
    pub n: usize,
    /// Number of sweeps.
    pub iters: usize,
    /// Star radius = exchanged halo depth.
    pub halo: usize,
    /// Gather and compare against the serial replay at the end.
    pub verify: bool,
}

fn stencil2d_cell(h: usize) -> CellFn {
    Arc::new(move |c: &Cell<'_>| {
        let mut acc = c.center();
        for k in 1..=h as isize {
            acc += c.at(&[-k, 0]) + c.at(&[k, 0]) + c.at(&[0, -k]) + c.at(&[0, k]);
        }
        acc / (4 * h + 1) as f64
    })
}

/// Radius-`halo` star average on a row-decomposed square: the halo
/// depth is a runtime parameter, so one sweep exchanges `halo` rows per
/// neighbour — the knob the campaign files and the bench sweep turn.
pub fn stencil2d_task(tc: &TaskCtx, p: &Stencil2dParams, probe: Option<&ResProbe>) {
    assert!(p.halo >= 1, "stencil2d needs a positive halo");
    let spec = ArraySpec::block(vec![p.n, p.n], CartGrid::line(tc.size() as usize), p.halo);
    let mut u = DistArray::build(tc, &spec);
    let mut unew = DistArray::build(tc, &spec);
    u.fill(tc, jacobi_bc);
    unew.fill(tc, jacobi_bc);
    u.to_device(tc);
    unew.to_device(tc);
    tc.ctx()
        .event("marker", || vec![("phase", "sweep".to_string())]);

    let unified = tc.options().is_impacc() && tc.options().unified_queue;
    let f = stencil2d_cell(p.halo);
    let margin = vec![(0, 0), (p.halo, p.halo)];
    let mut residuals: Vec<f64> = Vec::new();
    for it in 0..p.iters {
        u.exchange(tc);
        let sspec = StencilSpec {
            margin: margin.clone(),
            flops_per_cell: (4 * p.halo + 2) as f64,
            fallback: 1.0 / (it + 1) as f64,
            color: None,
        };
        let res = u.stencil(tc, &unew, &sspec, f.clone());
        if unified {
            tc.acc_wait(1);
        }
        let residual = tc.mpi_allreduce_f64(&[res.get()], ReduceOp::Max);
        assert!(residual[0].is_finite());
        if let Some(pr) = probe {
            if tc.rank() == 0 {
                pr.push(residual[0]);
            }
        }
        residuals.push(residual[0]);
        u.swap(&mut unew);
    }
    if unified {
        tc.acc_wait(1);
    }
    if p.verify {
        if let Some(got) = u.gather(tc, 0) {
            let mut reference = SerialField::new(&[p.n, p.n], 1, p.halo, &jacobi_bc);
            let mut serial_res = Vec::new();
            for _ in 0..p.iters {
                serial_res.push(reference.step(&margin, None, &f));
            }
            assert_bits_eq(&got, &reference.interior(), "stencil2d field");
            assert_bits_eq(&residuals, &serial_res, "stencil2d residuals");
        }
    }
}

/// Red-black Gauss-Seidel parameters.
#[derive(Clone, Debug)]
pub struct RedBlackParams {
    /// Mesh dimension (`n×n`).
    pub n: usize,
    /// Number of full (red + black) sweeps.
    pub iters: usize,
    /// Gather and compare against the serial replay at the end.
    pub verify: bool,
}

/// Red-black Gauss-Seidel relaxation: two colored in-place half-sweeps
/// per iteration, with a halo exchange before each so the black pass
/// sees the red updates from the neighbouring tiles.
pub fn redblack_task(tc: &TaskCtx, p: &RedBlackParams, probe: Option<&ResProbe>) {
    let spec = ArraySpec::block(vec![p.n, p.n], CartGrid::line(tc.size() as usize), 1);
    let u = DistArray::build(tc, &spec);
    u.fill(tc, jacobi_bc);
    u.to_device(tc);
    tc.ctx()
        .event("marker", || vec![("phase", "sweep".to_string())]);

    let unified = tc.options().is_impacc() && tc.options().unified_queue;
    let f = jacobi_cell();
    let margin = vec![(0, 0), (1, 1)];
    let mut residuals: Vec<f64> = Vec::new();
    for it in 0..p.iters {
        let half = |color: usize| {
            u.exchange(tc);
            let sspec = StencilSpec {
                margin: margin.clone(),
                flops_per_cell: 3.0,
                fallback: 1.0 / (it + 1) as f64,
                color: Some(color),
            };
            u.stencil(tc, &u, &sspec, f.clone())
        };
        let red = half(0);
        let black = half(1);
        if unified {
            tc.acc_wait(1);
        }
        let mine = red.get().max(black.get());
        let residual = tc.mpi_allreduce_f64(&[mine], ReduceOp::Max);
        assert!(residual[0].is_finite());
        if let Some(pr) = probe {
            if tc.rank() == 0 {
                pr.push(residual[0]);
            }
        }
        residuals.push(residual[0]);
    }
    if unified {
        tc.acc_wait(1);
    }
    if p.verify {
        if let Some(got) = u.gather(tc, 0) {
            let mut reference = SerialField::new(&[p.n, p.n], 1, 1, &jacobi_bc);
            let mut serial_res = Vec::new();
            for _ in 0..p.iters {
                let r0 = reference.step(&margin, Some(0), &f);
                let r1 = reference.step(&margin, Some(1), &f);
                serial_res.push(r0.max(r1));
            }
            assert_bits_eq(&got, &reference.interior(), "redblack field");
            assert_bits_eq(&residuals, &serial_res, "redblack residuals");
        }
    }
}

fn assert_bits_eq(got: &[f64], expect: &[f64], what: &str) {
    assert_eq!(got.len(), expect.len(), "{what}: length mismatch");
    for (k, (g, e)) in got.iter().zip(expect).enumerate() {
        assert!(
            g.to_bits() == e.to_bits(),
            "{what}[{k}] = {g:?}, expected {e:?} (bitwise)"
        );
    }
}

/// Serial replay of a padded field: the verification oracle. Runs the
/// *same* [`CellFn`] the distributed sweep ran, over the whole domain,
/// with the same ghost-pad boundary semantics.
pub struct SerialField {
    shape: Vec<usize>,
    pad: Vec<usize>,
    padded: Vec<usize>,
    vals: Vec<f64>,
}

impl SerialField {
    /// Build and fill: pads of depth `halo` on the first `mapped` dims.
    pub fn new(
        shape: &[usize],
        mapped: usize,
        halo: usize,
        f: &dyn Fn(&[isize]) -> f64,
    ) -> SerialField {
        let nd = shape.len();
        let mut pad = vec![0usize; nd];
        for p in pad.iter_mut().take(mapped) {
            *p = halo;
        }
        let padded: Vec<usize> = shape.iter().zip(&pad).map(|(s, p)| s + 2 * p).collect();
        let total: usize = padded.iter().product();
        let mut vals = vec![0.0f64; total];
        let mut idx = vec![0usize; nd];
        let mut g = vec![0isize; nd];
        for v in vals.iter_mut() {
            for d in 0..nd {
                g[d] = idx[d] as isize - pad[d] as isize;
            }
            *v = f(&g);
            let mut d = nd;
            while d > 0 {
                d -= 1;
                idx[d] += 1;
                if idx[d] < padded[d] {
                    break;
                }
                idx[d] = 0;
            }
        }
        SerialField {
            shape: shape.to_vec(),
            pad,
            padded,
            vals,
        }
    }

    /// One sweep; returns `max |new − old|` over updated cells.
    pub fn step(&mut self, margin: &[(usize, usize)], color: Option<usize>, f: &CellFn) -> f64 {
        let nd = self.shape.len();
        let mut strides = vec![1isize; nd];
        for d in (0..nd.saturating_sub(1)).rev() {
            strides[d] = strides[d + 1] * self.padded[d + 1] as isize;
        }
        let src = self.vals.clone();
        let mut res = 0.0f64;
        let plo: Vec<usize> = (0..nd).map(|d| self.pad[d] + margin[d].0).collect();
        let phi: Vec<usize> = (0..nd)
            .map(|d| self.pad[d] + self.shape[d] - margin[d].1)
            .collect();
        if (0..nd).any(|d| phi[d] <= plo[d]) {
            return res;
        }
        let mut idx = plo.clone();
        let mut g = vec![0isize; nd];
        'cells: loop {
            let mut lin = 0isize;
            for d in 0..nd {
                lin += idx[d] as isize * strides[d];
                g[d] = idx[d] as isize - self.pad[d] as isize;
            }
            let lin = lin as usize;
            let on_color = match color {
                Some(c) => g.iter().sum::<isize>().rem_euclid(2) as usize == c,
                None => true,
            };
            if on_color {
                let cell = Cell {
                    src: &src,
                    idx: lin,
                    strides: &strides,
                    g: &g,
                };
                let next = f(&cell);
                res = res.max((next - src[lin]).abs());
                self.vals[lin] = next;
            }
            let mut d = nd;
            loop {
                if d == 0 {
                    break 'cells;
                }
                d -= 1;
                idx[d] += 1;
                if idx[d] < phi[d] {
                    break;
                }
                idx[d] = plo[d];
            }
        }
        res
    }

    /// The un-padded field, row-major over the global shape.
    pub fn interior(&self) -> Vec<f64> {
        let nd = self.shape.len();
        let mut strides = vec![1usize; nd];
        for d in (0..nd.saturating_sub(1)).rev() {
            strides[d] = strides[d + 1] * self.padded[d + 1];
        }
        let total: usize = self.shape.iter().product();
        let mut out = Vec::with_capacity(total);
        let mut idx = vec![0usize; nd];
        for _ in 0..total {
            let lin: usize = (0..nd).map(|d| (idx[d] + self.pad[d]) * strides[d]).sum();
            out.push(self.vals[lin]);
            let mut d = nd;
            while d > 0 {
                d -= 1;
                idx[d] += 1;
                if idx[d] < self.shape[d] {
                    break;
                }
                idx[d] = 0;
            }
        }
        out
    }
}
