//! Halo-exchange schedule inference.
//!
//! Given a tile geometry (per-dimension owned counts, pads and padded
//! extents) and the Cartesian grid it came from, this module enumerates
//! the exchange *directions* (face neighbours by default, edge/corner
//! neighbours with `corners`), assigns each direction a deterministic
//! tag, and compiles per-rank send/receive region boxes in local padded
//! coordinates. The runtime lowering (`dist`) turns each region into
//! contiguous runs and issues one p2p message per run — the simulated
//! equivalent of an MPI derived datatype.
//!
//! Direction convention: a message with direction `δ` *travels* along
//! `δ` — rank `c` sends its interior slab on the `δ` side to the
//! neighbour at `c+δ`, which receives it into the ghost slab facing
//! back. Tags are `200 + i` with `i` the index of `δ` in lexicographic
//! enumeration (`-1 < 0 < +1`); a 1-d line therefore uses tag 200 for
//! up-travelling and 201 for down-travelling messages, matching the
//! hand-written jacobi convention.

use crate::decomp::CartGrid;

/// Base tag for inferred halo messages.
pub const HALO_TAG_BASE: i32 = 200;

/// An axis-aligned box in local padded coordinates, half-open per dim.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegionBox {
    /// Inclusive lower corner.
    pub lo: Vec<usize>,
    /// Exclusive upper corner.
    pub hi: Vec<usize>,
}

impl RegionBox {
    /// Number of cells in the box.
    pub fn cells(&self) -> usize {
        self.lo
            .iter()
            .zip(&self.hi)
            .map(|(l, h)| h.saturating_sub(*l))
            .product()
    }

    /// True when `pt` lies inside the box.
    pub fn contains(&self, pt: &[usize]) -> bool {
        pt.iter()
            .enumerate()
            .all(|(d, &p)| self.lo[d] <= p && p < self.hi[d])
    }

    /// Decompose the box into maximal contiguous `(offset, len)` element
    /// runs under row-major `padded` extents. Trailing dimensions the box
    /// covers entirely are merged into each run; the remaining leading
    /// dimensions are looped row-major, so run order equals the row-major
    /// cell order of the box — both endpoints of an exchange enumerate
    /// their runs identically, which is what makes per-run message
    /// matching (FIFO per tag) line up.
    pub fn runs(&self, padded: &[usize]) -> Vec<(usize, usize)> {
        let nd = padded.len();
        assert_eq!(self.lo.len(), nd);
        if self.cells() == 0 {
            return Vec::new();
        }
        let mut stride = vec![1usize; nd];
        for d in (0..nd.saturating_sub(1)).rev() {
            stride[d] = stride[d + 1] * padded[d + 1];
        }
        // `k` = first dim of the merged tail: dims k..nd are either fully
        // covered or (for k-1 itself) form the run extent.
        let mut k = nd;
        while k > 0 && self.lo[k - 1] == 0 && self.hi[k - 1] == padded[k - 1] {
            k -= 1;
        }
        if k == 0 {
            return vec![(0, padded.iter().product())];
        }
        let run_dim = k - 1;
        let tail: usize = padded[k..].iter().product();
        let run_len = (self.hi[run_dim] - self.lo[run_dim]) * tail;
        // Loop dims 0..run_dim row-major.
        let mut idx: Vec<usize> = self.lo[..run_dim].to_vec();
        let mut out = Vec::new();
        loop {
            let mut off = self.lo[run_dim] * stride[run_dim];
            for d in 0..run_dim {
                off += idx[d] * stride[d];
            }
            out.push((off, run_len));
            // Odometer increment over dims 0..run_dim.
            let mut d = run_dim;
            loop {
                if d == 0 {
                    return out;
                }
                d -= 1;
                idx[d] += 1;
                if idx[d] < self.hi[d] {
                    break;
                }
                idx[d] = self.lo[d];
            }
        }
    }
}

/// One half of a neighbour exchange: a region to send from (or receive
/// into), the peer rank, and the message tag.
#[derive(Clone, Debug)]
pub struct Entry {
    /// Travel direction of the message (length = array rank; zero on
    /// unsplit dims).
    pub dir: Vec<isize>,
    /// The peer rank.
    pub peer: u32,
    /// Message tag (`HALO_TAG_BASE + direction index`).
    pub tag: i32,
    /// Region in local padded coordinates.
    pub region: RegionBox,
}

/// A send/receive pair with one neighbour. `send` carries direction `δ`
/// (to the neighbour at `c+δ`); `recv` carries direction `−δ` (from that
/// same neighbour, into the ghost slab facing it). Both halves always
/// exist together — a neighbour that exists and is non-empty both sends
/// and receives.
#[derive(Clone, Debug)]
pub struct Pair {
    /// Outgoing half.
    pub send: Entry,
    /// Incoming half.
    pub recv: Entry,
}

/// The full inferred schedule for one rank: neighbour pairs in direction
/// enumeration order.
#[derive(Clone, Debug, Default)]
pub struct Schedule {
    /// Per-neighbour exchange pairs.
    pub pairs: Vec<Pair>,
}

impl Schedule {
    /// Total payload cells sent per exchange.
    pub fn send_cells(&self) -> usize {
        self.pairs.iter().map(|p| p.send.region.cells()).sum()
    }
}

/// Geometry of one rank's tile, in the shapes `dist` materializes.
#[derive(Clone, Debug)]
pub struct TileGeom {
    /// Owned cells per dim (any zero ⇒ the tile is empty).
    pub counts: Vec<usize>,
    /// Ghost pad per dim (halo on grid-mapped dims, 0 elsewhere).
    pub pad: Vec<usize>,
    /// Padded extents (`counts[d] + 2*pad[d]`).
    pub padded: Vec<usize>,
}

impl TileGeom {
    /// True when the tile owns no cells.
    pub fn is_empty(&self) -> bool {
        self.counts.contains(&0)
    }
}

/// Enumerate exchange directions for `g` grid dims embedded in an
/// `nd`-dim array: vectors in `{-1,0,1}^g` (zero-extended to `nd`),
/// excluding zero, lexicographic with `-1 < 0 < 1`. Faces only unless
/// `corners`, which adds every edge/corner direction.
pub fn directions(nd: usize, g: usize, corners: bool) -> Vec<Vec<isize>> {
    assert!(g <= nd);
    let mut out = Vec::new();
    let total = 3usize.pow(g as u32);
    for code in 0..total {
        let mut v = vec![0isize; nd];
        let mut rem = code;
        let mut nonzero = 0;
        for d in (0..g).rev() {
            let digit = rem % 3;
            rem /= 3;
            v[d] = digit as isize - 1;
            if v[d] != 0 {
                nonzero += 1;
            }
        }
        if nonzero == 0 || (!corners && nonzero != 1) {
            continue;
        }
        out.push(v);
    }
    out
}

/// Infer the halo schedule for `rank`.
///
/// `geom_of(r)` supplies any rank's tile geometry (the caller derives it
/// from the partition); `halo` is the exchange depth. Empty tiles get an
/// empty schedule, and exchanges with empty neighbours are skipped:
/// under a block partition an empty neighbour owns nothing between this
/// tile and the domain edge, so the facing ghost *is* the global
/// boundary and keeps its boundary-condition fill.
pub fn infer(
    grid: &CartGrid,
    rank: usize,
    halo: usize,
    corners: bool,
    geom_of: &dyn Fn(usize) -> TileGeom,
) -> Schedule {
    let mine = geom_of(rank);
    if halo == 0 || mine.is_empty() {
        return Schedule::default();
    }
    let nd = mine.counts.len();
    let coords = grid.coords(rank);
    let all = directions(nd, grid.ndims(), corners);
    let tag_of = |d: &[isize]| {
        HALO_TAG_BASE
            + all
                .iter()
                .position(|v| v == d)
                .expect("direction enumerated") as i32
    };
    let mut pairs = Vec::new();
    for dir in &all {
        let Some(peer_coords) = grid.shifted(&coords, &dir[..grid.ndims()]) else {
            continue;
        };
        let peer = grid.rank_of(&peer_coords);
        if geom_of(peer).is_empty() {
            continue;
        }
        let send = slab(&mine, dir, halo, Side::Interior);
        let recv = slab(&mine, dir, halo, Side::Ghost);
        let neg: Vec<isize> = dir.iter().map(|x| -x).collect();
        pairs.push(Pair {
            send: Entry {
                dir: dir.clone(),
                peer: peer as u32,
                tag: tag_of(dir),
                region: send,
            },
            recv: Entry {
                dir: neg.clone(),
                peer: peer as u32,
                tag: tag_of(&neg),
                region: recv,
            },
        });
    }
    Schedule { pairs }
}

enum Side {
    /// The owned slab adjacent to the `δ` face (what we send).
    Interior,
    /// The ghost slab beyond the `δ` face (what we receive from `c+δ`).
    Ghost,
}

/// Build the slab region for direction `dir` on tile `g`. On dims where
/// `dir` is zero the region spans the owned extent only — never the
/// pads — so receive regions of distinct directions are disjoint and
/// cover each ghost cell exactly once (the property test pins this).
fn slab(g: &TileGeom, dir: &[isize], halo: usize, side: Side) -> RegionBox {
    let nd = g.counts.len();
    let mut lo = vec![0usize; nd];
    let mut hi = vec![0usize; nd];
    for d in 0..nd {
        let p = g.pad[d];
        let c = g.counts[d];
        let h = halo.min(c); // build-time validation keeps halo ≤ c on split dims
        match (dir[d], &side) {
            (0, _) => {
                lo[d] = p;
                hi[d] = p + c;
            }
            (-1, Side::Interior) => {
                lo[d] = p;
                hi[d] = p + h;
            }
            (1, Side::Interior) => {
                lo[d] = p + c - h;
                hi[d] = p + c;
            }
            // Receiving a `δ`-travelling message from the neighbour at
            // `c+δ`: it lands in the ghost slab on the `δ` side.
            (-1, Side::Ghost) => {
                lo[d] = p - h;
                hi[d] = p;
            }
            (1, Side::Ghost) => {
                lo[d] = p + c;
                hi[d] = p + c + h;
            }
            _ => unreachable!("direction components are in -1..=1"),
        }
    }
    RegionBox { lo, hi }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomp::BlockPartition;

    fn line_geom(n: usize, cols: usize, p: usize, halo: usize) -> impl Fn(usize) -> TileGeom {
        move |r: usize| {
            let part = BlockPartition::new(n, p);
            TileGeom {
                counts: vec![part.counts[r], cols],
                pad: vec![halo, 0],
                padded: vec![part.counts[r] + 2 * halo, cols],
            }
        }
    }

    #[test]
    fn line_tags_match_handwritten_jacobi() {
        let grid = CartGrid::line(3);
        let geom = line_geom(12, 8, 3, 1);
        let s = infer(&grid, 1, 1, false, &|r| geom(r));
        assert_eq!(s.pairs.len(), 2);
        // δ = -1 (towards rank 0): tag 200 — the hand-written TAG_UP.
        assert_eq!(s.pairs[0].send.tag, 200);
        assert_eq!(s.pairs[0].send.peer, 0);
        assert_eq!(s.pairs[0].recv.tag, 201); // receives down-travelling
        assert_eq!(s.pairs[0].recv.peer, 0);
        // δ = +1 (towards rank 2): tag 201 — TAG_DOWN.
        assert_eq!(s.pairs[1].send.tag, 201);
        assert_eq!(s.pairs[1].send.peer, 2);
        assert_eq!(s.pairs[1].recv.tag, 200);

        // Rank 1 of 3 on n=12: 4 rows, pad 1 ⇒ padded 6 x 8.
        // Send up = first interior row; recv from up = ghost row 0.
        assert_eq!(s.pairs[0].send.region.runs(&[6, 8]), vec![(8, 8)]);
        assert_eq!(s.pairs[0].recv.region.runs(&[6, 8]), vec![(0, 8)]);
        // Send down = last interior row; recv from down = ghost row 5.
        assert_eq!(s.pairs[1].send.region.runs(&[6, 8]), vec![(4 * 8, 8)]);
        assert_eq!(s.pairs[1].recv.region.runs(&[6, 8]), vec![(5 * 8, 8)]);
    }

    #[test]
    fn edge_ranks_have_one_neighbor() {
        let grid = CartGrid::line(3);
        let geom = line_geom(12, 8, 3, 1);
        let s0 = infer(&grid, 0, 1, false, &|r| geom(r));
        assert_eq!(s0.pairs.len(), 1);
        assert_eq!(s0.pairs[0].send.tag, 201); // only δ=+1 exists
        let s2 = infer(&grid, 2, 1, false, &|r| geom(r));
        assert_eq!(s2.pairs.len(), 1);
        assert_eq!(s2.pairs[0].send.tag, 200);
    }

    #[test]
    fn empty_neighbors_are_boundaries() {
        // n=3 over 5 ranks: counts [1,1,1,0,0]. Rank 2's down neighbour
        // owns nothing ⇒ no exchange in that direction.
        let grid = CartGrid::line(5);
        let geom = line_geom(3, 4, 5, 1);
        let s = infer(&grid, 2, 1, false, &|r| geom(r));
        assert_eq!(s.pairs.len(), 1);
        assert_eq!(s.pairs[0].send.peer, 1);
        // Empty ranks have empty schedules.
        assert!(infer(&grid, 3, 1, false, &|r| geom(r)).pairs.is_empty());
    }

    #[test]
    fn face_directions_enumerate_lexicographically() {
        let d = directions(3, 2, false);
        assert_eq!(
            d,
            vec![vec![-1, 0, 0], vec![0, -1, 0], vec![0, 1, 0], vec![1, 0, 0],]
        );
        assert_eq!(directions(2, 2, true).len(), 8);
        assert_eq!(directions(1, 1, false), vec![vec![-1], vec![1]]);
    }

    #[test]
    fn runs_merge_trailing_full_dims() {
        // 3-d padded [4, 6, 5]; region = rows 1..2 x cols 1..5 x full.
        let r = RegionBox {
            lo: vec![1, 1, 0],
            hi: vec![2, 5, 5],
        };
        let runs = r.runs(&[4, 6, 5]);
        // Cols 1..5 with dim 2 fully covered fold into one 20-elem run.
        assert_eq!(runs, vec![(30 + 5, 20)]);
        assert_eq!(runs.iter().map(|r| r.1).sum::<usize>(), r.cells());

        // A partial trailing dim forces one run per (row, col).
        let strided = RegionBox {
            lo: vec![1, 1, 1],
            hi: vec![3, 3, 2],
        };
        let runs = strided.runs(&[4, 6, 5]);
        assert_eq!(runs.len(), 4);
        assert_eq!(runs[0], (30 + 5 + 1, 1));
        assert_eq!(runs[3], (2 * 30 + 2 * 5 + 1, 1));
        assert_eq!(runs.iter().map(|r| r.1).sum::<usize>(), strided.cells());

        // Fully-covering region is a single run.
        let whole = RegionBox {
            lo: vec![0, 0, 0],
            hi: vec![4, 6, 5],
        };
        assert_eq!(whole.runs(&[4, 6, 5]), vec![(0, 120)]);
    }

    #[test]
    fn paired_regions_have_matching_runs() {
        // 2-d split 2x2 on a 7x6 array, halo 2: the dim-1 exchange slabs
        // are strided; both endpoints must produce equal run counts/lens.
        let grid = CartGrid::new(4, 2);
        let geom = |r: usize| {
            let c = grid.coords(r);
            let p0 = BlockPartition::new(7, 2);
            let p1 = BlockPartition::new(6, 2);
            let counts = vec![p0.counts[c[0]], p1.counts[c[1]]];
            TileGeom {
                pad: vec![2, 2],
                padded: vec![counts[0] + 4, counts[1] + 4],
                counts,
            }
        };
        for r in 0..4 {
            let s = infer(&grid, r, 2, false, &|x| geom(x));
            for pair in &s.pairs {
                let peer = pair.send.peer as usize;
                let ps = infer(&grid, peer, 2, false, &|x| geom(x));
                // Find the peer's recv that matches our send (same tag).
                let back = ps
                    .pairs
                    .iter()
                    .find(|q| q.recv.peer as usize == r && q.recv.tag == pair.send.tag)
                    .expect("peer posts a matching recv");
                let a = pair.send.region.runs(&geom(r).padded);
                let b = back.recv.region.runs(&geom(peer).padded);
                assert_eq!(a.len(), b.len(), "run counts must match");
                for (x, y) in a.iter().zip(&b) {
                    assert_eq!(x.1, y.1, "run lengths must match");
                }
            }
        }
    }
}
