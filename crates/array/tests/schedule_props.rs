//! Schedule-inference properties, over random shapes, grids and halo
//! depths (corners on, so edge/corner ghosts are in scope too):
//!
//! 1. **Exact ghost coverage** — on every rank, the receive regions are
//!    pairwise disjoint and cover a boundary ghost cell exactly once iff
//!    the cell's global coordinates fall inside the domain. Ghosts that
//!    map outside the domain (physical boundaries) are never written.
//! 2. **Sends come from owned cells** — every send region lies inside
//!    the owned box, so no rank ever forwards another rank's ghosts.
//! 3. **Run congruence** — the two endpoints of each exchange decompose
//!    their regions into the same number of runs with the same lengths,
//!    which is what makes per-run FIFO message matching line up.

use impacc_array::{
    directions, infer, max_halo, tile_extents, tile_geom, ArraySpec, CartGrid, RegionBox,
};
use proptest::prelude::*;

/// Geometry of one rank plus its global placement.
fn geom_and_offsets(spec: &ArraySpec, rank: usize) -> (impacc_array::TileGeom, Vec<usize>) {
    let (_counts, offsets) = tile_extents(spec, rank);
    (tile_geom(spec, rank), offsets)
}

/// Global coordinate of local padded index `idx[d]` on a tile at
/// `offsets` with pads `pad`: may be negative or beyond the extent for
/// ghost cells on physical boundaries.
fn global(idx: &[usize], offsets: &[usize], pad: &[usize]) -> Vec<isize> {
    idx.iter()
        .zip(offsets)
        .zip(pad)
        .map(|((&i, &o), &p)| o as isize + i as isize - p as isize)
        .collect()
}

fn for_each_cell(padded: &[usize], mut f: impl FnMut(&[usize])) {
    if padded.contains(&0) {
        return;
    }
    let nd = padded.len();
    let mut idx = vec![0usize; nd];
    loop {
        f(&idx);
        let mut d = nd;
        loop {
            if d == 0 {
                return;
            }
            d -= 1;
            idx[d] += 1;
            if idx[d] < padded[d] {
                break;
            }
            idx[d] = 0;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ghosts_covered_exactly_once(
        nd in 1usize..4,
        e0 in 1usize..12,
        e1 in 1usize..12,
        e2 in 1usize..12,
        g0 in 1usize..5,
        g1 in 1usize..4,
        g2 in 1usize..3,
        raw_halo in 1usize..4,
    ) {
        let shape: Vec<usize> = [e0, e1, e2][..nd].to_vec();
        let gdims: Vec<usize> = [g0, g1, g2][..nd].to_vec();
        let grid = CartGrid { dims: gdims };
        let cap = max_halo(&shape, &grid);
        let halo = raw_halo.min(cap.max(1)).max(1);
        let mut spec = ArraySpec::block(shape.clone(), grid.clone(), halo);
        spec.corners = true;
        prop_assert!(spec.validate(grid.ranks()).is_ok());

        let dirs = directions(nd, grid.ndims(), true);
        for rank in 0..grid.ranks() {
            let (geom, offsets) = geom_and_offsets(&spec, rank);
            let sched = infer(&grid, rank, halo, true, &|r| tile_geom(&spec, r));
            if geom.is_empty() {
                prop_assert!(sched.pairs.is_empty());
                continue;
            }

            // Property 2: sends drawn from owned cells only.
            let owned = RegionBox {
                lo: geom.pad.clone(),
                hi: geom.pad.iter().zip(&geom.counts).map(|(p, c)| p + c).collect(),
            };
            for pair in &sched.pairs {
                let s = &pair.send.region;
                for d in 0..nd {
                    prop_assert!(owned.lo[d] <= s.lo[d] && s.hi[d] <= owned.hi[d],
                        "rank {rank} send region {:?} escapes owned box {:?}", s, owned);
                }
                // Property 3: congruent run decompositions per exchange.
                let (peer_geom, _) = geom_and_offsets(&spec, pair.send.peer as usize);
                // The peer's receive region for this message is its ghost
                // slab for the same travel direction; it has the peer's
                // pads but the same per-dim cell counts.
                let srt: Vec<usize> =
                    s.runs(&geom.padded).iter().map(|r| r.1).collect();
                let peer_sched =
                    infer(&grid, pair.send.peer as usize, halo, true, &|r| tile_geom(&spec, r));
                let back = peer_sched
                    .pairs
                    .iter()
                    .find(|p| p.recv.tag == pair.send.tag && p.recv.peer == rank as u32)
                    .expect("peer has the matching receive");
                let rrt: Vec<usize> =
                    back.recv.region.runs(&peer_geom.padded).iter().map(|r| r.1).collect();
                prop_assert_eq!(&srt, &rrt,
                    "run shapes differ for dir {:?} rank {}->{}", pair.send.dir, rank, pair.send.peer);
            }

            // Property 1: exact ghost coverage.
            for_each_cell(&geom.padded, |idx| {
                if owned.contains(idx) {
                    // Receives never land on owned cells.
                    for pair in &sched.pairs {
                        assert!(!pair.recv.region.contains(idx),
                            "rank {rank} recv region overlaps owned cell {idx:?}");
                    }
                    return;
                }
                let gcoord = global(idx, &offsets, &geom.pad);
                let inside = gcoord
                    .iter()
                    .zip(&shape)
                    .all(|(&gc, &n)| gc >= 0 && (gc as usize) < n);
                // A ghost inside the domain is owned by some neighbour —
                // unless every rank on the path there is empty, in which
                // case the block layout puts the cell outside any owned
                // tile and the exchange rightly skips it. Under a block
                // partition (counts non-increasing) an in-domain ghost at
                // halo ≤ min_nonzero always has a non-empty owner, so
                // coverage must be exactly 1.
                let hits = sched
                    .pairs
                    .iter()
                    .filter(|p| p.recv.region.contains(idx))
                    .count();
                if inside {
                    assert_eq!(hits, 1,
                        "rank {rank} ghost {idx:?} (global {gcoord:?}) covered {hits} times");
                } else {
                    assert_eq!(hits, 0,
                        "rank {rank} out-of-domain ghost {idx:?} written by an exchange");
                }
            });

            // Sanity: every pair's direction is one of the enumerated ones.
            for pair in &sched.pairs {
                assert!(dirs.contains(&pair.send.dir));
            }
        }
    }
}
