//! Criterion micro-benchmarks for the core data structures: present-table
//! lookups, the lock-free MPSC command queue, heap-table operations, the
//! MPI matching engine, and the raw DES event rate.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use impacc_core::MpscQueue;
use impacc_mem::{AddressSpace, DevPtr, MemSpace, NodeHeap, PresentEntry, PresentTable};
use impacc_vtime::{Metrics, Sim, SimConfig, SimDur};

fn bench_present_table(c: &mut Criterion) {
    let space = AddressSpace::new(1 << 40, Some(0));
    space.register_space(MemSpace::Device(0), 1 << 40);
    let table = PresentTable::new();
    let mut addrs = Vec::new();
    for _ in 0..1024 {
        let host = space.alloc(MemSpace::Host, 4096).unwrap();
        let dev = space.alloc(MemSpace::Device(0), 4096).unwrap();
        addrs.push((host.addr, dev.addr));
        table.insert(PresentEntry {
            host_addr: host.addr,
            len: 4096,
            dev: DevPtr::Cuda { addr: dev.addr },
            dev_region: dev,
        });
    }
    let mut i = 0;
    c.bench_function("present_table/find_by_host (1024 entries)", |b| {
        b.iter(|| {
            i = (i + 7) % addrs.len();
            black_box(table.find_by_host(addrs[i].0.offset(100)))
        })
    });
    c.bench_function("present_table/find_by_dev (1024 entries)", |b| {
        b.iter(|| {
            i = (i + 7) % addrs.len();
            black_box(table.find_by_dev(addrs[i].1.offset(100)))
        })
    });
}

fn bench_mpsc(c: &mut Criterion) {
    c.bench_function("mpsc/push+pop", |b| {
        let q: MpscQueue<u64> = MpscQueue::new();
        b.iter(|| {
            q.push(black_box(42));
            black_box(q.pop())
        })
    });
    c.bench_function("mpsc/push+pop batch of 64", |b| {
        let q: MpscQueue<u64> = MpscQueue::new();
        b.iter(|| {
            for i in 0..64 {
                q.push(i);
            }
            let mut sum = 0;
            while let Some(v) = q.pop() {
                sum += v;
            }
            black_box(sum)
        })
    });
}

fn bench_heap_table(c: &mut Criterion) {
    c.bench_function("heap/malloc+free", |b| {
        let space = AddressSpace::new(1 << 40, Some(0));
        let heap = NodeHeap::new();
        b.iter(|| {
            let p = heap.malloc(&space, 4096).unwrap();
            heap.free(&space, p).unwrap()
        })
    });
    c.bench_function("heap/alias cycle", |b| {
        let space = AddressSpace::new(1 << 40, Some(0));
        let heap = NodeHeap::new();
        b.iter(|| {
            let src = heap.malloc(&space, 4096).unwrap();
            let dst = heap.malloc(&space, 1024).unwrap();
            let target = heap.deref(src).unwrap().offset(512);
            heap.alias(&space, dst, target).unwrap();
            heap.free(&space, dst).unwrap();
            heap.free(&space, src).unwrap();
        })
    });
}

fn bench_engine(c: &mut Criterion) {
    c.bench_function("des/1000 events, 2 actors", |b| {
        b.iter(|| {
            let mut sim = Sim::new();
            for name in ["a", "b"] {
                sim.spawn(name, |ctx| {
                    for _ in 0..250 {
                        ctx.advance(SimDur::from_ns(10), "w");
                    }
                });
            }
            black_box(sim.run().unwrap().events)
        })
    });
    // The baton-handoff fast path: a lone actor's advance chain never has
    // an earlier heap entry, so with elision on every advance skips the
    // park/unpark round-trip. The elide-off variant is the old engine.
    for elide in [true, false] {
        let name = format!(
            "des/1000 advances, 1 actor, elide {}",
            if elide { "on" } else { "off" }
        );
        c.bench_function(&name, |b| {
            b.iter(|| {
                let mut sim = Sim::with_config(SimConfig {
                    elide_handoff: elide,
                    ..SimConfig::default()
                });
                sim.spawn("solo", |ctx| {
                    for _ in 0..1000 {
                        ctx.advance(SimDur::from_ns(1), "w");
                    }
                });
                black_box(sim.run().unwrap().handoffs_elided)
            })
        });
    }
}

fn bench_metrics(c: &mut Criterion) {
    c.bench_function("metrics/counter bump (own shard)", |b| {
        let m = Metrics::default();
        b.iter(|| m.add(black_box("t_HtoD"), black_box(7)))
    });
    c.bench_function("metrics/snapshot merge of 8 shards", |b| {
        let m = Metrics::default();
        let shards: Vec<Metrics> = (0..8).map(|_| m.new_shard()).collect();
        for (i, s) in shards.iter().enumerate() {
            s.add("t_HtoD", i as u64);
            s.add("bytes", 64);
        }
        b.iter(|| black_box(m.snapshot()))
    });
}

fn bench_matching(c: &mut Criterion) {
    use impacc_machine::{presets, ClusterResources};
    use impacc_mpi::{Comm, MpiTask, MsgBuf, SysMpi};
    use std::sync::Arc;

    c.bench_function("sysmpi/100 ping-pongs", |b| {
        b.iter(|| {
            let res = Arc::new(ClusterResources::new(Arc::new(presets::test_cluster(2, 1))));
            let sys = SysMpi::new(res, vec![0, 1]);
            let world = Comm::world(2);
            let mut sim = Sim::new();
            for r in 0..2u32 {
                let sys = sys.clone();
                let world = world.clone();
                sim.spawn(format!("rank{r}"), move |ctx| {
                    let ep = MpiTask::new(sys, r);
                    let buf = MsgBuf::host(impacc_mem::Backing::new(64, None), 0, 64);
                    for i in 0..100 {
                        if r == 0 {
                            ep.send(ctx, &buf, 1, i, &world);
                            ep.recv(ctx, &buf, Some(1), Some(i), &world);
                        } else {
                            ep.recv(ctx, &buf, Some(0), Some(i), &world);
                            ep.send(ctx, &buf, 0, i, &world);
                        }
                    }
                });
            }
            black_box(sim.run().unwrap().end_time)
        })
    });

    // Large-payload path: each send snapshots the buffer copy-on-write
    // instead of cloning 1 MiB up front; the recv side materializes it
    // directly into the destination backing.
    c.bench_function("sysmpi/10 ping-pongs, 1MiB (zero-copy send)", |b| {
        b.iter(|| {
            let res = Arc::new(ClusterResources::new(Arc::new(presets::test_cluster(2, 1))));
            let sys = SysMpi::new(res, vec![0, 1]);
            let world = Comm::world(2);
            let mut sim = Sim::new();
            for r in 0..2u32 {
                let sys = sys.clone();
                let world = world.clone();
                sim.spawn(format!("rank{r}"), move |ctx| {
                    let ep = MpiTask::new(sys, r);
                    let len = 1 << 20;
                    let buf = MsgBuf::host(impacc_mem::Backing::new(len, None), 0, len);
                    for i in 0..10 {
                        if r == 0 {
                            ep.send(ctx, &buf, 1, i, &world);
                            ep.recv(ctx, &buf, Some(1), Some(i), &world);
                        } else {
                            ep.recv(ctx, &buf, Some(0), Some(i), &world);
                            ep.send(ctx, &buf, 0, i, &world);
                        }
                    }
                });
            }
            black_box(sim.run().unwrap().end_time)
        })
    });
}

criterion_group!(
    benches,
    bench_present_table,
    bench_mpsc,
    bench_heap_table,
    bench_engine,
    bench_metrics,
    bench_matching
);
criterion_main!(benches);
