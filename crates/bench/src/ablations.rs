//! Ablation studies: isolate the contribution of each IMPACC technique
//! called out in DESIGN.md.

use impacc_apps::{run_dgemm, run_lulesh, DgemmParams, LuleshParams};
use impacc_core::{Launch, MpiOpts, RuntimeOptions, TaskCtx};
use impacc_machine::presets;

use crate::specs::{beacon_tasks, psg_tasks};
use crate::util::{fmt_bytes, quick, size_sweep, Table};

/// How much of the small-matrix DGEMM win is node heap aliasing?
pub fn aliasing() -> String {
    let mut out = String::new();
    out.push_str("Ablation: node heap aliasing (DGEMM on PSG, 8 tasks)\n\n");
    let mut t = Table::new(&["n", "IMPACC", "no-aliasing", "baseline", "aliasing share"]);
    let sizes = if quick() {
        vec![512]
    } else {
        vec![512, 1024, 2048, 4096]
    };
    for n in sizes {
        let p = DgemmParams { n, verify: false };
        let full = run_dgemm(
            psg_tasks(8),
            RuntimeOptions::impacc(),
            Some(4096),
            p.clone(),
        )
        .unwrap()
        .elapsed_secs();
        let mut opts = RuntimeOptions::impacc();
        opts.aliasing = false;
        let noalias = run_dgemm(psg_tasks(8), opts, Some(4096), p.clone())
            .unwrap()
            .elapsed_secs();
        let base = run_dgemm(psg_tasks(8), RuntimeOptions::baseline(), Some(4096), p)
            .unwrap()
            .elapsed_secs();
        let share = if base > full {
            (noalias - full) / (base - full)
        } else {
            0.0
        };
        t.row(vec![
            n.to_string(),
            format!("{full:.5}s"),
            format!("{noalias:.5}s"),
            format!("{base:.5}s"),
            format!("{:.0}%", share * 100.0),
        ]);
    }
    out.push_str(&t.render());
    out
}

/// What do the unified activity queues buy at high task counts?
pub fn unified_queue() -> String {
    let mut out = String::new();
    out.push_str("Ablation: unified activity queue (DGEMM on Beacon)\n\n");
    let n = if quick() { 512 } else { 2048 };
    let mut t = Table::new(&["tasks", "IMPACC", "no-unified-queue", "gain"]);
    let counts = if quick() {
        vec![16]
    } else {
        vec![16, 32, 64, 128]
    };
    for tasks in counts {
        let p = DgemmParams { n, verify: false };
        let full = run_dgemm(
            beacon_tasks(tasks),
            RuntimeOptions::impacc(),
            Some(4096),
            p.clone(),
        )
        .unwrap()
        .elapsed_secs();
        let mut opts = RuntimeOptions::impacc();
        opts.unified_queue = false;
        let sync = run_dgemm(beacon_tasks(tasks), opts, Some(4096), p)
            .unwrap()
            .elapsed_secs();
        t.row(vec![
            tasks.to_string(),
            format!("{full:.5}s"),
            format!("{sync:.5}s"),
            format!("{:.2}x", sync / full),
        ]);
    }
    out.push_str(&t.render());
    out
}

/// NUMA pinning inside a full application (LULESH on PSG).
pub fn pinning() -> String {
    let mut out = String::new();
    out.push_str(
        "Ablation: NUMA-friendly task-CPU pinning\n\
         (LULESH, 8 tasks on a skewed PSG node: all GPUs on socket 0)\n\n",
    );
    let p = LuleshParams {
        s: if quick() { 16 } else { 48 },
        iters: 4,
        verify: false,
    };
    // Skew the topology so every GPU hangs off socket 0: the default
    // compact binding then strands half the tasks on the far socket.
    let skewed = || {
        let mut spec = psg_tasks(8);
        for d in &mut spec.nodes[0].devices {
            d.socket = 0;
        }
        spec
    };
    let pinned = run_lulesh(skewed(), RuntimeOptions::impacc(), Some(4096), p.clone())
        .unwrap()
        .elapsed_secs();
    let mut opts = RuntimeOptions::impacc();
    opts.numa_pinning = false;
    let unpinned = run_lulesh(skewed(), opts, Some(4096), p)
        .unwrap()
        .elapsed_secs();
    let mut t = Table::new(&["config", "time", "vs pinned"]);
    t.row(vec![
        "pinned".into(),
        format!("{pinned:.5}s"),
        "1.00x".into(),
    ]);
    t.row(vec![
        "unpinned".into(),
        format!("{unpinned:.5}s"),
        format!("{:.2}x", unpinned / pinned),
    ]);
    out.push_str(&t.render());
    out
}

/// Per-message handler overhead vs payload size: where fusion pays off.
pub fn handler_overhead() -> String {
    let mut out = String::new();
    out.push_str(
        "Ablation: message-command/handler overhead vs payload size\n\
         (intra-node ping on PSG; fusion vs system-MPI staging in IMPACC mode)\n\n",
    );
    let mut t = Table::new(&["size", "fused", "unfused", "baseline", "fusion gain"]);
    let max = if quick() { 1 << 14 } else { 1 << 22 };
    for bytes in size_sweep(64, max, 8) {
        let run = |opts: RuntimeOptions| -> f64 {
            let app = move |tc: &TaskCtx| {
                if tc.rank() >= 2 {
                    return;
                }
                let buf = tc.malloc(bytes);
                for i in 0..8 {
                    if tc.rank() == 0 {
                        tc.mpi_send(&buf, 0, bytes, 1, i, MpiOpts::host());
                    } else {
                        tc.mpi_recv(&buf, 0, bytes, 0, i, MpiOpts::host());
                    }
                }
            };
            let mut spec = presets::psg();
            spec.nodes[0].devices.truncate(2);
            Launch::new(spec, opts)
                .phys_cap(4096)
                .run(app)
                .unwrap()
                .elapsed_secs()
        };
        let fused = run(RuntimeOptions::impacc());
        let mut nofuse = RuntimeOptions::impacc();
        nofuse.fusion = false;
        let unfused = run(nofuse);
        let base = run(RuntimeOptions::baseline());
        t.row(vec![
            fmt_bytes(bytes),
            format!("{:.2}us", fused * 1e6),
            format!("{:.2}us", unfused * 1e6),
            format!("{:.2}us", base * 1e6),
            format!("{:.2}x", base / fused),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nsmall messages: command overhead ~ IPC overhead (the Beacon LULESH\n\
         effect); large messages: one copy vs two wins decisively.\n",
    );
    out
}

/// Run all ablations.
pub fn run() -> String {
    format!(
        "{}\n{}\n{}\n{}",
        aliasing(),
        unified_queue(),
        pinning(),
        handler_overhead()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabling_aliasing_slows_dgemm() {
        let p = DgemmParams {
            n: 512,
            verify: false,
        };
        let full = run_dgemm(
            psg_tasks(8),
            RuntimeOptions::impacc(),
            Some(4096),
            p.clone(),
        )
        .unwrap()
        .elapsed_secs();
        let mut opts = RuntimeOptions::impacc();
        opts.aliasing = false;
        let noalias = run_dgemm(psg_tasks(8), opts, Some(4096), p)
            .unwrap()
            .elapsed_secs();
        assert!(noalias > full, "aliasing must help: {noalias} vs {full}");
    }

    #[test]
    fn disabling_pinning_slows_lulesh() {
        // Boundary transfers must be large enough for the PCIe path to
        // outweigh scheduling noise (the paper's per-task problems are).
        let p = LuleshParams {
            s: 48,
            iters: 3,
            verify: false,
        };
        let skewed = || {
            let mut spec = psg_tasks(8);
            for d in &mut spec.nodes[0].devices {
                d.socket = 0;
            }
            spec
        };
        let pinned = run_lulesh(skewed(), RuntimeOptions::impacc(), Some(4096), p.clone())
            .unwrap()
            .elapsed_secs();
        let mut opts = RuntimeOptions::impacc();
        opts.numa_pinning = false;
        let unpinned = run_lulesh(skewed(), opts, Some(4096), p)
            .unwrap()
            .elapsed_secs();
        assert!(unpinned > pinned, "{unpinned} vs {pinned}");
    }
}
