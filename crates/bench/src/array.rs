//! Distributed-array sweep — halo depth × mesh size on the inferred
//! exchange schedules, plus the runtime-mode comparison for the array
//! jacobi.
//!
//! The first table turns the `impacc-array` halo knob: a radius-`h` star
//! stencil exchanges `h` rows per neighbour per sweep, so wire bytes
//! grow linearly with depth while the per-sweep arithmetic grows with
//! the star size — the update rate (owned-cell updates per virtual
//! second) prices that trade. The second table reruns the array jacobi
//! under all three runtime modes: the array layer lowers the *same*
//! schedule to unified-queue device sends, split isend/irecv, or the
//! host-staged baseline, so the IMPACC win carries over unchanged.

use impacc_apps::launch_app;
use impacc_array::scenarios::{
    jacobi_array_task, stencil2d_task, ArrayJacobiParams, Stencil2dParams,
};
use impacc_core::{RunSummary, RuntimeOptions};
use impacc_machine::presets;

use crate::util::{fmt_bytes, quick, Table};

fn metric(s: &RunSummary, key: &str) -> u64 {
    s.report.metrics.get(key).copied().unwrap_or(0)
}

/// Run the radius-`halo` 2-d star stencil on the 2×2-GPU cluster.
pub fn run_stencil2d(n: usize, iters: usize, halo: usize, opts: RuntimeOptions) -> RunSummary {
    let p = Stencil2dParams {
        n,
        iters,
        halo,
        verify: false,
    };
    launch_app(presets::test_cluster(2, 2), opts, None, move |tc| {
        stencil2d_task(tc, &p, None)
    })
    .expect("stencil2d run")
}

/// Run the array-API jacobi on the 2×2-GPU cluster.
pub fn run_array_jacobi(n: usize, iters: usize, opts: RuntimeOptions) -> RunSummary {
    let p = ArrayJacobiParams {
        n,
        iters,
        verify: false,
    };
    launch_app(presets::test_cluster(2, 2), opts, None, move |tc| {
        jacobi_array_task(tc, &p, None)
    })
    .expect("array jacobi run")
}

/// Run the halo-depth × mesh-size sweep; returns the rendered report.
pub fn run() -> String {
    let mut out = String::from(
        "Distributed arrays: halo depth vs update rate (inferred exchange schedules)\n\
         (test cluster, 2 nodes x 2 GPUs = 4 ranks; elapsed is virtual time)\n\n",
    );
    let sizes: &[usize] = if quick() { &[256] } else { &[64, 256] };
    let halos: &[usize] = &[1, 2, 4];
    let iters = 4;
    let mut t = Table::new(&[
        "mesh",
        "halo",
        "elapsed",
        "halo bytes",
        "cell updates",
        "updates/us",
    ]);
    for &n in sizes {
        for &h in halos {
            let s = run_stencil2d(n, iters, h, RuntimeOptions::impacc());
            let cells = metric(&s, "array_cells");
            t.row(vec![
                format!("{n}x{n}"),
                h.to_string(),
                format!("{:.1}us", s.elapsed_secs() * 1e6),
                fmt_bytes(metric(&s, "array_halo_bytes")),
                cells.to_string(),
                format!("{:.0}", cells as f64 / (s.elapsed_secs() * 1e6)),
            ]);
        }
    }
    out.push_str(&t.render());

    out.push_str("\nArray jacobi under the three runtime modes (same inferred schedule):\n\n");
    let mut split = RuntimeOptions::impacc();
    split.unified_queue = false;
    let modes = [
        ("impacc unified", RuntimeOptions::impacc()),
        ("impacc split", split),
        ("baseline", RuntimeOptions::baseline()),
    ];
    let n = if quick() { 256 } else { 512 };
    let mut t = Table::new(&["mode", "elapsed", "halo bytes"]);
    for (name, opts) in modes {
        let s = run_array_jacobi(n, iters, opts);
        t.row(vec![
            name.to_string(),
            format!("{:.1}us", s.elapsed_secs() * 1e6),
            fmt_bytes(metric(&s, "array_halo_bytes")),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nhalo traffic scales linearly with depth (the schedule sends h rows\n\
         per neighbour per sweep) while the star stencil's arithmetic grows\n\
         with radius, so deeper halos buy fewer exchanges per unit of work\n\
         at a per-sweep bandwidth cost — the trade EXPERIMENTS.md tabulates.\n",
    );
    out
}

/// CI smoke — the array layer's acceptance checks:
///
/// 1. the array jacobi must match the hand-written app bit-for-bit
///    (residual history) and tick-for-tick (virtual end time);
/// 2. halo bytes must scale exactly linearly with the exchange depth;
/// 3. the array jacobi must keep the IMPACC-beats-baseline property.
///
/// Panics (nonzero exit) on any violation.
pub fn smoke() -> String {
    use impacc_apps::{run_jacobi_probed, JacobiParams};
    use impacc_array::ResProbe;

    let mut out = String::from("array smoke: parity, halo scaling, mode win\n");

    // 1. Bit-parity with the hand-written jacobi, all three modes.
    let mut split = RuntimeOptions::impacc();
    split.unified_queue = false;
    for (name, opts) in [
        ("impacc unified", RuntimeOptions::impacc()),
        ("impacc split", split),
        ("baseline", RuntimeOptions::baseline()),
    ] {
        let hand_probe = ResProbe::new();
        let hand = run_jacobi_probed(
            presets::test_cluster(2, 2),
            opts,
            None,
            None,
            true,
            JacobiParams {
                n: 32,
                iters: 5,
                verify: true,
            },
            hand_probe.clone(),
        )
        .expect("hand-written jacobi");
        let arr_probe = ResProbe::new();
        let probe_in = arr_probe.clone();
        let p = ArrayJacobiParams {
            n: 32,
            iters: 5,
            verify: true,
        };
        let arr = launch_app(presets::test_cluster(2, 2), opts, None, move |tc| {
            jacobi_array_task(tc, &p, Some(&probe_in))
        })
        .expect("array jacobi");
        let (h, a) = (hand_probe.take(), arr_probe.take());
        assert!(
            !h.is_empty()
                && h.len() == a.len()
                && h.iter().zip(&a).all(|(x, y)| x.to_bits() == y.to_bits()),
            "{name}: array residuals diverged from hand-written: {h:?} vs {a:?}"
        );
        assert_eq!(
            hand.report.end_time, arr.report.end_time,
            "{name}: array jacobi end time drifted from hand-written"
        );
        out.push_str(&format!(
            "  parity [{name}]: residual bits + end time identical over {} sweeps\n",
            h.len()
        ));
    }

    // 2. Exact linear halo-byte scaling with exchange depth.
    let base = metric(
        &run_stencil2d(64, 3, 1, RuntimeOptions::impacc()),
        "array_halo_bytes",
    );
    assert!(base > 0, "depth-1 sweep must exchange halos");
    for h in [2u64, 4] {
        let b = metric(
            &run_stencil2d(64, 3, h as usize, RuntimeOptions::impacc()),
            "array_halo_bytes",
        );
        assert_eq!(
            b,
            base * h,
            "halo bytes must scale exactly with depth {h}: {b} vs {base}x{h}"
        );
    }
    out.push_str(&format!(
        "  halo scaling: depth 1/2/4 -> {}/{}/{} (exactly linear)\n",
        fmt_bytes(base),
        fmt_bytes(base * 2),
        fmt_bytes(base * 4)
    ));

    // 3. The array layer inherits the IMPACC-vs-baseline win.
    let i = run_array_jacobi(256, 4, RuntimeOptions::impacc());
    let b = run_array_jacobi(256, 4, RuntimeOptions::baseline());
    assert!(
        i.elapsed_secs() < b.elapsed_secs(),
        "array jacobi must keep the IMPACC win: {:.1}us vs {:.1}us",
        i.elapsed_secs() * 1e6,
        b.elapsed_secs() * 1e6
    );
    out.push_str(&format!(
        "  mode win: impacc {:.1}us vs baseline {:.1}us ({:.2}x)\n",
        i.elapsed_secs() * 1e6,
        b.elapsed_secs() * 1e6,
        b.elapsed_secs() / i.elapsed_secs()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_passes() {
        let out = smoke();
        assert!(out.contains("array smoke"));
        assert!(out.contains("exactly linear"));
    }

    #[test]
    fn deeper_halos_cost_bandwidth_not_messages_per_cell() {
        let (n, iters) = (64u64, 2u64);
        let h1 = run_stencil2d(n as usize, iters as usize, 1, RuntimeOptions::impacc());
        let h4 = run_stencil2d(n as usize, iters as usize, 4, RuntimeOptions::impacc());
        assert!(metric(&h4, "array_halo_bytes") > metric(&h1, "array_halo_bytes"));
        // The update count moves only by the fixed-boundary margin (a
        // radius-h star leaves h rows untouched at each global edge);
        // the exchange depth itself only moves traffic.
        let margin_rows = n * (2 * 4 - 2) * iters;
        assert_eq!(
            metric(&h1, "array_cells") - metric(&h4, "array_cells"),
            margin_rows
        );
        assert_eq!(metric(&h1, "array_cells"), n * (n - 2) * iters);
    }
}
