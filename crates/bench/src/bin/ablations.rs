//! See `impacc_bench::ablations`.
fn main() {
    impacc_bench::util::bench_main("ablations", impacc_bench::ablations::run);
}
