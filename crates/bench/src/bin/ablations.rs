//! See `impacc_bench::ablations`.
fn main() {
    println!("{}", impacc_bench::ablations::run());
}
