//! Regenerate every table and figure of the paper's evaluation in one go,
//! writing each section's `BENCH_<name>.json` alongside.
fn main() {
    use impacc_bench::util::bench_main;
    let t0 = std::time::Instant::now();
    println!("==== Table 1 ====");
    bench_main("table1", impacc_machine::presets::table1);
    println!("==== Figures 4/5 ====");
    bench_main("fig5", impacc_bench::fig5::run);
    println!("==== Figure 8 ====");
    bench_main("fig8", impacc_bench::fig8::run);
    println!("==== Figure 9 ====");
    bench_main("fig9", impacc_bench::fig9::run);
    println!("==== Figure 10 ====");
    bench_main("fig10", impacc_bench::fig10::run);
    println!("==== Figure 11 ====");
    bench_main("fig11", impacc_bench::fig10::run_fig11);
    println!("==== Figure 12 ====");
    bench_main("fig12", impacc_bench::fig12::run);
    println!("==== Figure 13 ====");
    bench_main("fig13", impacc_bench::fig13::run);
    println!("==== Figure 14 ====");
    bench_main("fig14", impacc_bench::fig13::run_fig14);
    println!("==== Figure 15 ====");
    bench_main("fig15", impacc_bench::fig15::run);
    println!("==== Ablations ====");
    bench_main("ablations", impacc_bench::ablations::run);
    eprintln!(
        "regenerated all figures in {:.1}s",
        t0.elapsed().as_secs_f64()
    );
}
