//! Regenerate every table and figure of the paper's evaluation in one go.
fn main() {
    let t0 = std::time::Instant::now();
    println!("==== Table 1 ====\n{}", impacc_machine::presets::table1());
    println!("==== Figures 4/5 ====\n{}", impacc_bench::fig5::run());
    println!("==== Figure 8 ====\n{}", impacc_bench::fig8::run());
    println!("==== Figure 9 ====\n{}", impacc_bench::fig9::run());
    println!("==== Figure 10 ====\n{}", impacc_bench::fig10::run());
    println!("==== Figure 11 ====\n{}", impacc_bench::fig10::run_fig11());
    println!("==== Figure 12 ====\n{}", impacc_bench::fig12::run());
    println!("==== Figure 13 ====\n{}", impacc_bench::fig13::run());
    println!("==== Figure 14 ====\n{}", impacc_bench::fig13::run_fig14());
    println!("==== Figure 15 ====\n{}", impacc_bench::fig15::run());
    println!("==== Ablations ====\n{}", impacc_bench::ablations::run());
    eprintln!("regenerated all figures in {:.1}s", t0.elapsed().as_secs_f64());
}
