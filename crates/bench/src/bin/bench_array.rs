//! Distributed-array sweep binary: halo depth × mesh size over the
//! inferred exchange schedules, plus the runtime-mode comparison;
//! writes `BENCH_array.json`.
//!
//! Usage: `bench_array [--quick] [--smoke]`
//!
//! `--smoke` runs the fixed CI check instead of the sweep: the array
//! jacobi must match the hand-written app bit-for-bit and tick-for-tick
//! in all three runtime modes, halo bytes must scale exactly linearly
//! with exchange depth, and the IMPACC-vs-baseline win must survive the
//! array lowering. Any violation panics (nonzero exit).
fn main() {
    impacc_bench::bench_bin(
        "array",
        impacc_bench::array::run,
        Some(impacc_bench::array::smoke),
    );
}
