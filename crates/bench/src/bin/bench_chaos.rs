//! Chaos sweep binary: fault rate vs completion time/goodput plus the
//! device-loss remap scenario; writes `BENCH_chaos.json`.
//!
//! Usage: `bench_chaos [--quick] [--smoke]`
//!
//! `--smoke` runs the fixed-seed CI check instead of the sweep: a faulted
//! exchange must complete bit-correct with `retries > 0`, and a device-loss
//! run must finish via remap. Any violation panics (nonzero exit).
fn main() {
    impacc_bench::bench_bin(
        "chaos",
        impacc_bench::chaos::run,
        Some(impacc_bench::chaos::smoke),
    );
}
