//! Collective sweep binary: payload size × registry algorithm on a
//! multi-rank-per-node cluster; writes `BENCH_coll.json`.
//!
//! Usage: `bench_coll [--smoke]`
//!
//! `--smoke` runs the fixed CI check instead of the sweep: the two-level
//! hierarchical allreduce must beat the flat binomial schedule at both a
//! small and a large payload. Any regression panics (nonzero exit).
fn main() {
    if std::env::args().skip(1).any(|a| a == "--smoke") {
        print!("{}", impacc_bench::coll::smoke());
        return;
    }
    impacc_bench::util::bench_main("coll", impacc_bench::coll::run);
}
