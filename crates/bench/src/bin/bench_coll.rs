//! Collective sweep binary: payload size × registry algorithm on a
//! multi-rank-per-node cluster; writes `BENCH_coll.json`.
//!
//! Usage: `bench_coll [--quick] [--smoke]`
//!
//! `--smoke` runs the fixed CI check instead of the sweep: the two-level
//! hierarchical allreduce must beat the flat binomial schedule at both a
//! small and a large payload. Any regression panics (nonzero exit).
fn main() {
    impacc_bench::bench_bin(
        "coll",
        impacc_bench::coll::run,
        Some(impacc_bench::coll::smoke),
    );
}
