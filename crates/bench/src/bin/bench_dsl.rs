//! DSL compiler bench: translation cost, compiled-program parity with
//! the hand-written apps, and JACC-style single-loop device splitting.
//! `--smoke` runs the CI acceptance checks (panics on violation).

fn main() {
    impacc_bench::bench_bin(
        "dsl",
        impacc_bench::dsl::run,
        Some(impacc_bench::dsl::smoke),
    );
}
