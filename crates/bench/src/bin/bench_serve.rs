//! Serving-layer load test binary: client threads × jobs against the
//! impacc-serve engine, cold pass then cached resubmit; writes
//! `BENCH_serve.json`.
//!
//! Usage: `bench_serve [--quick] [--smoke]`
//!
//! `--smoke` runs the fixed CI check instead of the load test:
//! backpressure must reject with a reason, and a resubmitted job set
//! must be 100% cache hits with byte-identical results. Any violation
//! panics (nonzero exit).
fn main() {
    impacc_bench::bench_bin(
        "serve",
        impacc_bench::serve::run,
        Some(impacc_bench::serve::smoke),
    );
}
