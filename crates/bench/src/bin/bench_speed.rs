//! See `impacc_bench::speed`. `--quick` is a convenience alias for
//! `IMPACC_BENCH_QUICK=1` so CI can invoke the perf smoke in one line.
fn main() {
    if std::env::args().skip(1).any(|a| a == "--quick") {
        std::env::set_var("IMPACC_BENCH_QUICK", "1");
    }
    impacc_bench::util::bench_main("speed", impacc_bench::speed::run);
}
