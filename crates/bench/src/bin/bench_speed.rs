//! See `impacc_bench::speed`. `--quick` is a convenience alias for
//! `IMPACC_BENCH_QUICK=1` so CI can invoke the perf smoke in one line.
fn main() {
    impacc_bench::bench_bin(
        "speed",
        impacc_bench::speed::run,
        Some(impacc_bench::speed::smoke),
    );
}
