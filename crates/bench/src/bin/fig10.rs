//! See `impacc_bench::fig10`.
fn main() {
    println!("{}", impacc_bench::fig10::run());
}
