//! See `impacc_bench::fig10`.
fn main() {
    impacc_bench::util::bench_main("fig10", impacc_bench::fig10::run);
}
