//! See `impacc_bench::fig10::run_fig11`.
fn main() {
    impacc_bench::util::bench_main("fig11", impacc_bench::fig10::run_fig11);
}
