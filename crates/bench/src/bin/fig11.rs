//! See `impacc_bench::fig10::run_fig11`.
fn main() {
    println!("{}", impacc_bench::fig10::run_fig11());
}
