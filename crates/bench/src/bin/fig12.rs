//! See `impacc_bench::fig12`.
fn main() {
    println!("{}", impacc_bench::fig12::run());
}
