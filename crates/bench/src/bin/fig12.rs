//! See `impacc_bench::fig12`. Pass `--critical-path` (or set
//! `IMPACC_PROF=1`) to append a critical-path profile of one EP run and
//! write `PROF_fig12.json`.
fn main() {
    let prof = impacc_bench::prof::requested();
    impacc_bench::util::bench_main("fig12", || {
        let mut out = impacc_bench::fig12::run();
        if prof {
            out.push('\n');
            out.push_str(
                &impacc_bench::prof::profile_figure("fig12", None, false).expect("known workload"),
            );
        }
        out
    });
}
