//! See `impacc_bench::fig12`.
fn main() {
    impacc_bench::util::bench_main("fig12", impacc_bench::fig12::run);
}
