//! See `impacc_bench::fig13`.
fn main() {
    println!("{}", impacc_bench::fig13::run());
}
