//! See `impacc_bench::fig13`.
fn main() {
    impacc_bench::util::bench_main("fig13", impacc_bench::fig13::run);
}
