//! See `impacc_bench::fig13::run_fig14`. Pass `--trace out.json` to also
//! dump a merged IMPACC + baseline Chrome trace and the span-derived copy
//! breakdown.
fn main() {
    let trace = impacc_bench::util::trace_arg();
    impacc_bench::util::bench_main("fig14", || {
        impacc_bench::fig13::run_fig14_traced(trace.as_deref())
    });
}
