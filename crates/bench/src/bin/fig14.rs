//! See `impacc_bench::fig13::run_fig14`.
fn main() {
    println!("{}", impacc_bench::fig13::run_fig14());
}
