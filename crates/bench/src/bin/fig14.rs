//! See `impacc_bench::fig13::run_fig14`. Pass `--trace out.json` to also
//! dump a merged IMPACC + baseline Chrome trace and the span-derived copy
//! breakdown. Pass `--critical-path` (or set `IMPACC_PROF=1`) to append a
//! critical-path profile of one IMPACC run and write `PROF_fig14.json`.
fn main() {
    let trace = impacc_bench::util::trace_arg();
    let prof = impacc_bench::prof::requested();
    impacc_bench::util::bench_main("fig14", || {
        let mut out = impacc_bench::fig13::run_fig14_traced(trace.as_deref());
        if prof {
            out.push('\n');
            out.push_str(
                &impacc_bench::prof::profile_figure("fig14", None, false).expect("known workload"),
            );
        }
        out
    });
}
