//! See `impacc_bench::fig15`.
fn main() {
    println!("{}", impacc_bench::fig15::run());
}
