//! See `impacc_bench::fig15`.
fn main() {
    impacc_bench::util::bench_main("fig15", impacc_bench::fig15::run);
}
