//! See `impacc_bench::fig5`. Pass `--trace out.json` to also dump a merged
//! Chrome trace of the three synchronization styles.
fn main() {
    let trace = impacc_bench::util::trace_arg();
    impacc_bench::util::bench_main("fig5", || impacc_bench::fig5::run_traced(trace.as_deref()));
}
