//! See `impacc_bench::fig5`.
fn main() {
    println!("{}", impacc_bench::fig5::run());
}
