//! See `impacc_bench::fig5`. Pass `--trace out.json` to also dump a merged
//! Chrome trace of the three synchronization styles. Pass
//! `--critical-path` (or set `IMPACC_PROF=1`) to append a critical-path
//! profile of the unified-queue exchange and write `PROF_fig5.json`.
fn main() {
    let trace = impacc_bench::util::trace_arg();
    let prof = impacc_bench::prof::requested();
    impacc_bench::util::bench_main("fig5", || {
        let mut out = impacc_bench::fig5::run_traced(trace.as_deref());
        if prof {
            out.push('\n');
            out.push_str(
                &impacc_bench::prof::profile_figure("fig5", None, false).expect("known workload"),
            );
        }
        out
    });
}
