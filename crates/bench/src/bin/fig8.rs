//! See `impacc_bench::fig8`.
fn main() {
    impacc_bench::util::bench_main("fig8", impacc_bench::fig8::run);
}
