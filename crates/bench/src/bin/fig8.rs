//! See `impacc_bench::fig8`.
fn main() {
    println!("{}", impacc_bench::fig8::run());
}
