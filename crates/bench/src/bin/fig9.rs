//! See `impacc_bench::fig9`.
fn main() {
    impacc_bench::util::bench_main("fig9", impacc_bench::fig9::run);
}
