//! See `impacc_bench::fig9`.
fn main() {
    println!("{}", impacc_bench::fig9::run());
}
