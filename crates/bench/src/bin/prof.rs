//! Standalone critical-path profiler: re-runs a figure workload with the
//! span/edge recorder attached, prints the blame/wait-state/what-if
//! report, and writes `PROF_<name>.json`.
//!
//! Usage: `prof [fig5|fig12|fig14] [--trace out.json]`
//!
//! `--trace` also writes a Chrome trace with the critical path rendered
//! as a dedicated track (pid 0) plus flow arrows over the cross-actor
//! hops; open via ui.perfetto.dev.
fn main() {
    let name = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with("--"))
        .unwrap_or_else(|| "fig14".to_string());
    let trace = impacc_bench::util::trace_arg();
    print!(
        "{}",
        impacc_bench::prof::profile_figure(&name, trace.as_deref())
    );
}
