//! Standalone critical-path profiler: re-runs a figure workload with the
//! span/edge recorder attached, prints the blame/wait-state/what-if
//! report, and writes `PROF_<name>.json`.
//!
//! Usage: `prof [fig5|fig12|fig14] [--trace out.json] [--slack]`
//!
//! `--trace` also writes a Chrome trace with the critical path rendered
//! as a dedicated track (pid 0) plus flow arrows over the cross-actor
//! hops; open via ui.perfetto.dev.
//!
//! `--slack` prints the ranked off-path slack view instead of the full
//! blame report: the top segments by how much they could grow before
//! joining the critical path (second-order optimization targets).
//!
//! An unknown workload name is a readable error and a nonzero exit, so
//! scripts piping this binary fail loudly instead of shipping an empty
//! profile.
fn main() {
    let name = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with("--"))
        .unwrap_or_else(|| "fig14".to_string());
    let trace = impacc_bench::util::trace_arg();
    let slack = std::env::args().skip(1).any(|a| a == "--slack");
    match impacc_bench::prof::profile_figure(&name, trace.as_deref(), slack) {
        Ok(out) => print!("{out}"),
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(1);
        }
    }
}
