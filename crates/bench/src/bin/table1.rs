//! Table 1: the target heterogeneous accelerator systems.
fn main() {
    println!("Table 1: target systems (as modelled)\n");
    println!("{}", impacc_machine::presets::table1());
}
