//! Table 1: the target heterogeneous accelerator systems.
fn main() {
    impacc_bench::util::bench_main("table1", || {
        format!(
            "Table 1: target systems (as modelled)\n\n{}",
            impacc_machine::presets::table1()
        )
    });
}
