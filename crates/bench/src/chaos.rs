//! Chaos sweep — fault rate vs completion time and goodput, plus the
//! device-loss graceful-degradation scenario.
//!
//! The workload is a fig-5-class exchange (kernel → copyout → send → recv
//! → copyin → kernel, repeated) run two ways:
//!
//! * **internode** on a two-node test cluster, so injected link drops,
//!   duplicates, delays and NIC brown-outs hit a real network path and the
//!   MPI engine's timeout/backoff retry machinery pays for them;
//! * **single-node** on a two-GPU PSG node with one device declared failed,
//!   so the §3.2 task-device mapper must remap the victim rank onto the
//!   survivor and the run still completes bit-correct.
//!
//! Every kernel checks its inputs (`math_ok` guards phys-capped runs), so
//! a faulted run that finishes *is* a correctness result: the recovery
//! paths delivered the right bytes, just later.

use impacc_apps::math_ok;
use impacc_core::{Launch, MpiOpts, RunSummary, RuntimeOptions, TaskCtx};
use impacc_flight::{watchdog, FlightDump, FlightRecorder, Trigger, Watchdog};
use impacc_machine::{presets, FaultPlan, KernelCost, MachineSpec};
use impacc_obs::Recorder;

use crate::util::{gbps, quick, Table};

const N: usize = 1 << 14; // 128 KiB per buffer

/// Two nodes, one GPU each: sends cross the NIC, where the link fault
/// sites live.
pub fn internode_spec() -> MachineSpec {
    presets::test_cluster(2, 1)
}

/// One PSG node truncated to two GPUs: the device-loss remap scenario.
pub fn single_node_spec() -> MachineSpec {
    let mut s = presets::psg();
    s.nodes[0].devices.truncate(2);
    s
}

fn exchange(tc: &TaskCtx, rounds: u32) {
    let peer = 1 - tc.rank();
    let me = tc.rank() as f64;
    let buf0 = tc.malloc_f64(N);
    let buf1 = tc.malloc_f64(N);
    tc.acc_create(&buf0);
    tc.acc_create(&buf1);
    let cost = KernelCost::new(10.0 * N as f64, 16.0 * N as f64);
    for round in 0..rounds {
        let produce = {
            let d = tc.dev_view(&buf0);
            let v = me + round as f64;
            move || {
                if math_ok(&d) {
                    d.write_f64s(0, &vec![v; N]);
                }
            }
        };
        let consume = {
            let d = tc.dev_view(&buf1);
            let expect = peer as f64 + round as f64;
            move || {
                if math_ok(&d) {
                    let got = d.read_f64s(0, N);
                    assert!(
                        got.iter().all(|&x| x == expect),
                        "round {round}: corrupted payload after recovery"
                    );
                }
            }
        };
        tc.acc_kernel(None, cost, produce);
        tc.acc_update_host(&buf0, 0, buf0.len, None);
        let sreq = tc.mpi_isend(&buf0, 0, buf0.len, peer, round as i32, MpiOpts::host());
        tc.mpi_recv(&buf1, 0, buf1.len, peer, round as i32, MpiOpts::host());
        sreq.wait(tc.ctx());
        tc.acc_update_device(&buf1, 0, buf1.len, None);
        tc.acc_kernel(None, cost, consume);
    }
}

/// Run the chaos exchange on `spec` under an optional fault plan.
/// `elide`/`rec` expose the scheduler fast path and the span recorder so
/// the determinism tests can compare observables across configurations.
pub fn run_exchange(
    spec: MachineSpec,
    plan: Option<FaultPlan>,
    rounds: u32,
    elide: bool,
    rec: Option<&Recorder>,
) -> RunSummary {
    run_exchange_flight(spec, plan, rounds, elide, rec, None)
}

/// [`run_exchange`] with a caller-owned flight recorder riding along, so
/// the smoke scenarios can drain the ring into a post-mortem dump and
/// assert its contents.
pub fn run_exchange_flight(
    spec: MachineSpec,
    plan: Option<FaultPlan>,
    rounds: u32,
    elide: bool,
    rec: Option<&Recorder>,
    flight: Option<&FlightRecorder>,
) -> RunSummary {
    let mut l = Launch::new(spec, RuntimeOptions::impacc()).elide_handoff(elide);
    if let Some(p) = plan {
        l = l.chaos(p);
    }
    if let Some(rec) = rec {
        l = l.recorder(rec);
    }
    if let Some(fr) = flight {
        l = l.flight(fr);
    }
    l.run(move |tc| exchange(tc, rounds)).expect("chaos run")
}

fn metric(s: &RunSummary, key: &str) -> u64 {
    s.report.metrics.get(key).copied().unwrap_or(0)
}

/// The fixed seed every reported sweep uses — rerunning the binary must
/// reproduce the tables byte-for-byte.
pub const SWEEP_SEED: u64 = 17;

/// Run the chaos sweep; returns the rendered report.
pub fn run() -> String {
    let mut out = String::from(
        "Chaos: deterministic fault injection vs completion time and goodput\n\
         (fig-5-class exchange; uniform per-site fault rate, seed 17)\n\n",
    );
    let rates: &[f64] = if quick() {
        &[0.0, 0.1]
    } else {
        &[0.0, 0.01, 0.05, 0.1, 0.2]
    };
    let rounds = if quick() { 2 } else { 4 };
    let mut t = Table::new(&["fault rate", "elapsed", "retries", "link drops", "goodput"]);
    for &rate in rates {
        let plan = (rate > 0.0).then(|| FaultPlan::new(SWEEP_SEED).with_uniform_rate(rate));
        let s = run_exchange(internode_spec(), plan, rounds, true, None);
        let secs = s.elapsed_secs();
        let bytes = metric(&s, "mpi_bytes_sent");
        t.row(vec![
            format!("{rate:.2}"),
            format!("{:.1}us", secs * 1e6),
            metric(&s, "retries").to_string(),
            metric(&s, "chaos_link_drop").to_string(),
            format!("{:.3}GB/s", gbps(bytes, secs)),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nretried sends pay the detection timeout plus exponential backoff, so\n\
         goodput falls faster than the raw drop rate; payloads stay bit-correct\n\
         (every consume kernel asserts its input).\n\n",
    );

    let mut t2 = Table::new(&["scenario", "elapsed", "device_remaps"]);
    for (name, plan) in [
        ("healthy", None),
        (
            "device n0.d0 failed",
            Some(FaultPlan::new(7).fail_device(0, 0)),
        ),
    ] {
        let s = run_exchange(single_node_spec(), plan, rounds, true, None);
        t2.row(vec![
            name.to_string(),
            format!("{:.1}us", s.elapsed_secs() * 1e6),
            metric(&s, "device_remaps").to_string(),
        ]);
    }
    out.push_str(&t2.render());
    out.push_str(
        "\ndevice loss: the §3.2 mapper remaps the victim rank onto the node's\n\
         surviving GPU at launch; the run completes with both ranks sharing one\n\
         device instead of failing.\n",
    );
    out
}

/// Run one smoke scenario with a flight recorder attached and drain the
/// ring into a dump: trigger precedence is fault burst, then the first
/// deterministic watchdog anomaly, then plain request.
fn flight_dump_of(
    label: &str,
    spec: MachineSpec,
    plan: FaultPlan,
    rounds: u32,
) -> (RunSummary, FlightDump) {
    let fr = FlightRecorder::new();
    let s = run_exchange_flight(spec, Some(plan), rounds, true, None, Some(&fr));
    let pairs: Vec<(&str, u64)> = s.report.metrics.iter().map(|(k, v)| (*k, *v)).collect();
    let mut anomalies = Watchdog::new().check_counters(&pairs);
    let trigger = if fr.fault_fires() >= watchdog::FAULT_BURST_THRESHOLD {
        Trigger::FaultBurst {
            fired: fr.fault_fires(),
            threshold: watchdog::FAULT_BURST_THRESHOLD,
        }
    } else if let Some(a) = anomalies.iter().find(|a| a.deterministic) {
        Trigger::Anomaly(a.rule.to_string())
    } else {
        Trigger::Request
    };
    anomalies.retain(|a| a.deterministic);
    let dump = fr.dump(
        label,
        trigger,
        s.report.metrics.iter().map(|(k, v)| (*k, *v)),
        &anomalies,
    );
    (s, dump)
}

/// Fixed-seed CI smoke: a faulted run must complete with `retries > 0` and
/// bit-correct payloads, and a device-loss run must finish via remap.
/// Both scenarios drain their flight rings into `FLIGHT_*.json` dumps in
/// the bench dir, and the device-loss dump is asserted reproducible and
/// fault-attributing before it is written. Panics (nonzero exit) on any
/// violation.
pub fn smoke() -> String {
    smoke_to(&impacc_core::config::bench_dir())
}

/// [`smoke`] with an explicit dump directory (tests point this at a
/// temp dir; the binary uses `IMPACC_BENCH_DIR`).
pub fn smoke_to(dir: &std::path::Path) -> String {
    let plan = FaultPlan::new(SWEEP_SEED).with_uniform_rate(0.05);
    let (s, dump) = flight_dump_of("chaos_smoke", internode_spec(), plan, 4);
    let retries = metric(&s, "retries");
    assert!(retries > 0, "faulted smoke run must retry at least once");

    let loss_dump_of = || {
        flight_dump_of(
            "chaos_device_loss",
            single_node_spec(),
            FaultPlan::new(7).fail_device(0, 0),
            2,
        )
    };
    let (loss, loss_dump) = loss_dump_of();
    let remaps = metric(&loss, "device_remaps");
    assert!(remaps >= 1, "device-loss smoke run must remap the victim");
    let loss_json = loss_dump.to_json();
    assert!(
        loss_json.contains("\"schema_version\""),
        "flight dumps are schema-versioned"
    );
    assert!(
        loss_json.contains("device_loss"),
        "the watchdog must attribute the device loss: {loss_json}"
    );
    assert!(
        loss_json.contains("remap"),
        "the ring's last events must carry the remap marker: {loss_json}"
    );
    let (_, again) = loss_dump_of();
    assert_eq!(
        loss_json,
        again.to_json(),
        "flight dumps must be bit-reproducible for a fixed fault plan"
    );

    for d in [&dump, &loss_dump] {
        d.write(dir).expect("write flight dump");
    }
    format!(
        "chaos smoke ok: retries={retries}, link_drops={}, device_remaps={remaps}, \
         elapsed={:.1}us (payloads verified in-kernel)\n\
         flight dumps: {} (trigger={}), {} (trigger={})\n",
        metric(&s, "chaos_link_drop"),
        s.elapsed_secs() * 1e6,
        dump.file_name(),
        dump.trigger.label(),
        loss_dump.file_name(),
        loss_dump.trigger.label(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faulted_run_is_slower_but_completes_correctly() {
        let clean = run_exchange(internode_spec(), None, 2, true, None);
        let plan = FaultPlan::new(SWEEP_SEED).with_uniform_rate(0.1);
        let faulted = run_exchange(internode_spec(), Some(plan), 2, true, None);
        assert_eq!(metric(&clean, "retries"), 0);
        assert!(
            metric(&faulted, "retries") > 0,
            "a 10% uniform rate over 4 sends must retry"
        );
        assert!(
            faulted.elapsed_secs() > clean.elapsed_secs(),
            "recovery costs virtual time: {} vs {}",
            faulted.elapsed_secs(),
            clean.elapsed_secs()
        );
    }

    #[test]
    fn smoke_passes_and_dumps_flight_artifacts() {
        let dir = std::env::temp_dir().join(format!("impacc-chaos-smoke-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let out = smoke_to(&dir);
        assert!(out.contains("chaos smoke ok"));
        assert!(out.contains("FLIGHT_chaos_device_loss.json"));
        for name in ["FLIGHT_chaos_smoke.json", "FLIGHT_chaos_device_loss.json"] {
            let body = std::fs::read_to_string(dir.join(name)).expect("dump written");
            assert!(impacc_obs::chrome::structurally_valid(&body), "{name}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
