//! Collective algorithm sweep — payload size × registry algorithm on a
//! multi-rank-per-node cluster, flat p2p schedules vs the two-level
//! hierarchical path.
//!
//! The workload is `rounds` verified Sum-allreduces (every rank checks
//! the reduced vector bit-exactly, so a row in the table is also a
//! correctness result). `Launch::coll_algo` pins the registry entry per
//! run; the reported elapsed time is virtual, so the sweep is
//! deterministic and byte-reproducible.

use impacc_core::{CollAlgo, Launch, RunSummary, RuntimeOptions, TaskCtx};
use impacc_machine::{presets, FaultPlan, MachineSpec};
use impacc_mpi::ReduceOp;
use impacc_obs::Recorder;

use crate::util::{fmt_bytes, quick, Table};

/// Two nodes, four GPUs each: eight ranks with real intra-node sharing,
/// so the hierarchical path has a node phase worth electing leaders for.
pub fn coll_spec() -> MachineSpec {
    presets::test_cluster(2, 4)
}

/// `rounds` exact Sum-allreduces of `elems` f64s; every rank asserts the
/// reduced vector (integer-valued contributions make all fold orders
/// bit-identical).
fn allreduce_rounds(tc: &TaskCtx, elems: usize, rounds: u32) {
    let size = tc.size();
    for round in 0..rounds {
        let vals = vec![(tc.rank() + round) as f64; elems];
        let out = tc.mpi_allreduce_f64(&vals, ReduceOp::Sum);
        let expect = (0..size).map(|r| (r + round) as f64).sum::<f64>();
        assert!(
            out.len() == elems && out.iter().all(|&x| x == expect),
            "allreduce corrupted: got {:?}.., want {expect}",
            &out[..1.min(out.len())]
        );
    }
}

/// Run the allreduce workload with one pinned registry algorithm
/// (`None` lets the engine's selection policy decide).
pub fn run_coll(algo: Option<CollAlgo>, elems: usize, rounds: u32) -> RunSummary {
    let mut l = Launch::new(coll_spec(), RuntimeOptions::impacc());
    if let Some(a) = algo {
        l = l.coll_algo(a);
    }
    l.run(move |tc| allreduce_rounds(tc, elems, rounds))
        .expect("coll run")
}

/// The mixed collective workload the chaos-determinism suite replays:
/// small and large allreduces, a communicator split (allgather inside),
/// and barriers, under the engine's own per-call selection — so faults
/// land on both internode collective edges and intra-node folds.
pub fn run_coll_chaos(plan: Option<FaultPlan>, elide: bool, rec: Option<&Recorder>) -> RunSummary {
    let mut l = Launch::new(coll_spec(), RuntimeOptions::impacc()).elide_handoff(elide);
    if let Some(p) = plan {
        l = l.chaos(p);
    }
    if let Some(rec) = rec {
        l = l.recorder(rec);
    }
    l.run(|tc| {
        allreduce_rounds(tc, 16, 2);
        allreduce_rounds(tc, 1 << 14, 1);
        let sub = tc.mpi_comm_split((tc.rank() % 2) as i64, tc.rank() as i64);
        assert_eq!(sub.size(), tc.size() / 2);
        tc.mpi_barrier();
        allreduce_rounds(tc, 256, 1);
        tc.mpi_barrier();
    })
    .expect("coll chaos run")
}

fn metric(s: &RunSummary, key: &str) -> u64 {
    s.report.metrics.get(key).copied().unwrap_or(0)
}

/// Run the payload × algorithm sweep; returns the rendered report.
pub fn run() -> String {
    let mut out = String::from(
        "Collectives: registry algorithms vs payload size (verified Sum-allreduce)\n\
         (test cluster, 2 nodes x 4 GPUs = 8 ranks; elapsed is virtual time)\n\n",
    );
    let sizes: &[usize] = if quick() {
        &[128, 1 << 17]
    } else {
        &[128, 1 << 12, 1 << 17]
    };
    let rounds = if quick() { 2 } else { 4 };
    let algos = [
        CollAlgo::Flat,
        CollAlgo::Binomial,
        CollAlgo::Ring,
        CollAlgo::RecursiveDoubling,
        CollAlgo::Rabenseifner,
        CollAlgo::Hier,
    ];
    let mut t = Table::new(&[
        "payload",
        "algorithm",
        "elapsed",
        "wire bytes",
        "intra bytes",
    ]);
    for &elems in sizes {
        for algo in algos {
            let s = run_coll(Some(algo), elems, rounds);
            t.row(vec![
                fmt_bytes(elems as u64 * 8),
                algo.label().to_string(),
                format!("{:.1}us", s.elapsed_secs() * 1e6),
                metric(&s, "mpi_bytes_sent").to_string(),
                metric(&s, "coll_intra_bytes").to_string(),
            ]);
        }
    }
    out.push_str(&t.render());
    out.push_str(
        "\nthe hierarchical entry folds each node's contributions through the\n\
         shared VAS and puts only one leader per node on the wire, so its\n\
         internode byte count is a node-count problem, not a rank-count one;\n\
         flat schedules pay per-rank messaging at every payload size.\n",
    );
    out
}

/// CI smoke: the hierarchical path must beat the flat binomial schedule
/// on the multi-rank-per-node spec for a small (<=1 KiB) and a large
/// (>=1 MiB) payload. Panics (nonzero exit) on a regression.
pub fn smoke() -> String {
    let mut out = String::from("coll smoke: hier vs flat allreduce\n");
    for elems in [128usize, 1 << 17] {
        let flat = run_coll(Some(CollAlgo::Flat), elems, 2);
        let hier = run_coll(Some(CollAlgo::Hier), elems, 2);
        let (tf, th) = (flat.elapsed_secs(), hier.elapsed_secs());
        assert!(
            th < tf,
            "hierarchical allreduce must beat flat binomial at {}: {:.2}us vs {:.2}us",
            fmt_bytes(elems as u64 * 8),
            th * 1e6,
            tf * 1e6
        );
        out.push_str(&format!(
            "  {:>6}: flat {:.2}us, hier {:.2}us ({:.2}x)\n",
            fmt_bytes(elems as u64 * 8),
            tf * 1e6,
            th * 1e6,
            tf / th
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_algorithm_survives_the_workload() {
        for algo in [None, Some(CollAlgo::Hier), Some(CollAlgo::Ring)] {
            let s = run_coll(algo, 64, 2);
            assert!(s.elapsed_secs() > 0.0);
        }
    }

    #[test]
    fn hier_is_faster_and_phases_are_accounted() {
        let flat = run_coll(Some(CollAlgo::Flat), 1 << 12, 2);
        let hier = run_coll(Some(CollAlgo::Hier), 1 << 12, 2);
        // On two nodes both schedules cross the NIC the same number of
        // times (the leader overlay mirrors the flat tree's internode
        // edges), so the hierarchical win is the node phase: shared-VAS
        // folds instead of per-rank intra-node messaging.
        assert!(
            metric(&hier, "mpi_bytes_sent") <= metric(&flat, "mpi_bytes_sent"),
            "hier must never put more on the wire: {} vs {}",
            metric(&hier, "mpi_bytes_sent"),
            metric(&flat, "mpi_bytes_sent")
        );
        assert!(
            hier.elapsed_secs() < flat.elapsed_secs(),
            "hier {}us vs flat {}us",
            hier.elapsed_secs() * 1e6,
            flat.elapsed_secs() * 1e6
        );
        assert!(metric(&hier, "coll_intra_bytes") > 0);
        assert!(metric(&hier, "coll_inter_bytes") > 0);
        assert_eq!(metric(&flat, "coll_intra_bytes"), 0);
    }

    #[test]
    fn smoke_passes() {
        let out = smoke();
        assert!(out.contains("coll smoke"));
    }
}
