//! DSL compiler sweep — source-to-source translation cost and the
//! fidelity of the compiled programs.
//!
//! Three tables. The first prices the compiler itself: wall-clock
//! translation time per shipped example next to what it inferred (plan
//! ops, stencil sites, halo depth). The second reruns the *compiled*
//! jacobi under all three runtime modes — the DSL lowers through the
//! array layer, so the IMPACC-vs-baseline ordering must survive two
//! layers of lowering. The third is the JACC-style claim: one annotated
//! loop, re-launched with one rank per device, splits across a node's
//! GPUs and the virtual time drops accordingly.

use std::sync::Arc;
use std::time::Instant;

use impacc_apps::{launch_app, run_jacobi_probed, JacobiParams};
use impacc_array::ResProbe;
use impacc_core::{RunSummary, RuntimeOptions, TaskCtx};
use impacc_dsl::{
    compile, compile_with_overrides, dump_plan, example, run_program, source_hash, Compiled,
    EXAMPLES,
};
use impacc_machine::presets;

use crate::util::{fmt_bytes, quick, report_extra, Table};

fn metric(s: &RunSummary, key: &str) -> u64 {
    s.report.metrics.get(key).copied().unwrap_or(0)
}

/// Launch a compiled program on `nodes`×`gpus` (one rank per GPU).
pub fn run_dsl(
    c: &Arc<Compiled>,
    nodes: usize,
    gpus: usize,
    opts: RuntimeOptions,
    probe: Option<ResProbe>,
) -> RunSummary {
    let cc = c.clone();
    launch_app(
        presets::test_cluster(nodes, gpus),
        opts,
        None,
        move |tc: &TaskCtx| {
            run_program(tc, &cc, probe.as_ref(), false);
        },
    )
    .expect("dsl run")
}

/// Compile `src` `reps` times; returns (compiled, mean µs per compile).
fn time_compile(src: &str, reps: u32) -> (Compiled, f64) {
    let t0 = Instant::now();
    let mut last = None;
    for _ in 0..reps {
        last = Some(compile(src).expect("example compiles"));
    }
    let us = t0.elapsed().as_secs_f64() * 1e6 / reps as f64;
    (last.expect("reps >= 1"), us)
}

/// Run the translation-cost and fidelity sweep; returns the report.
pub fn run() -> String {
    let mut out = String::from(
        "impacc-dsl: source-to-source translation cost and compiled-program fidelity\n\
         (test cluster; one rank per GPU; elapsed is virtual time)\n\n",
    );
    let reps = if quick() { 20 } else { 200 };
    let mut t = Table::new(&[
        "program", "compile", "plan ops", "stencils", "halo", "src hash",
    ]);
    let mut total_us = 0.0;
    for (name, src) in EXAMPLES {
        let (c, us) = time_compile(src, reps);
        total_us += us;
        t.row(vec![
            name.to_string(),
            format!("{us:.0}us"),
            c.plan.len().to_string(),
            c.stencil_sites.to_string(),
            c.arrays[0].halo.to_string(),
            source_hash(src),
        ]);
    }
    report_extra("compile_us_total", total_us);
    out.push_str(&t.render());

    out.push_str("\nCompiled jacobi under the three runtime modes (2 nodes x 2 GPUs):\n\n");
    let n = if quick() { 64 } else { 128 };
    let jac = Arc::new(
        compile_with_overrides(
            example("jacobi").unwrap(),
            &[("n".to_string(), n as f64), ("iters".to_string(), 4.0)],
        )
        .unwrap(),
    );
    let mut split = RuntimeOptions::impacc();
    split.unified_queue = false;
    let mut t = Table::new(&["mode", "elapsed", "halo bytes"]);
    for (name, opts) in [
        ("impacc unified", RuntimeOptions::impacc()),
        ("impacc split", split),
        ("baseline", RuntimeOptions::baseline()),
    ] {
        let s = run_dsl(&jac, 2, 2, opts, None);
        t.row(vec![
            name.to_string(),
            format!("{:.1}us", s.elapsed_secs() * 1e6),
            fmt_bytes(metric(&s, "array_halo_bytes")),
        ]);
    }
    out.push_str(&t.render());

    out.push_str(
        "\nJACC-style device split: the same annotated loop, one rank per GPU\n(single node):\n\n",
    );
    let n = if quick() { 512 } else { 2048 };
    let jac_split = Arc::new(
        compile_with_overrides(
            example("jacobi").unwrap(),
            &[("n".to_string(), n as f64), ("iters".to_string(), 4.0)],
        )
        .unwrap(),
    );
    let mut t = Table::new(&["gpus", "elapsed", "speedup"]);
    let mut base = 0.0f64;
    for gpus in [1usize, 2, 4] {
        let s = run_dsl(&jac_split, 1, gpus, RuntimeOptions::impacc(), None);
        let el = s.elapsed_secs();
        if gpus == 1 {
            base = el;
        }
        t.row(vec![
            gpus.to_string(),
            format!("{:.1}us", el * 1e6),
            format!("{:.2}x", base / el),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\ntranslation stays microseconds-cheap while the lowered programs keep\n\
         the array layer's schedules: mode ordering and device-split scaling\n\
         both survive the extra lowering step.\n",
    );
    out
}

/// CI smoke — the compiler's acceptance checks:
///
/// 1. the compiled `jacobi.acc` must match the hand-written app
///    bit-for-bit (residual history) and tick-for-tick (virtual end
///    time + dispatch count) in all three runtime modes;
/// 2. the testmpi.cpp-pattern `dot.acc` (comm split shared, device
///    binding by shm rank, reduction(+:sum) → allreduce) must run end
///    to end on single- and multi-node launches with the exact sum;
/// 3. splitting the annotated loop across a node's 4 devices must beat
///    the single-device launch by at least 3x in virtual time;
/// 4. translation must stay under 10ms per example and byte-stable.
///
/// Panics (nonzero exit) on any violation.
pub fn smoke() -> String {
    let mut out = String::from("dsl smoke: parity, testmpi pattern, device split, compile cost\n");

    // 1. Bit-and-tick parity with the hand-written jacobi, all modes.
    let jac = Arc::new(
        compile_with_overrides(
            example("jacobi").unwrap(),
            &[("n".to_string(), 32.0), ("iters".to_string(), 5.0)],
        )
        .unwrap(),
    );
    let mut split = RuntimeOptions::impacc();
    split.unified_queue = false;
    for (name, opts) in [
        ("impacc unified", RuntimeOptions::impacc()),
        ("impacc split", split),
        ("baseline", RuntimeOptions::baseline()),
    ] {
        let hand_probe = ResProbe::new();
        let hand = run_jacobi_probed(
            presets::test_cluster(2, 2),
            opts,
            None,
            None,
            true,
            JacobiParams {
                n: 32,
                iters: 5,
                verify: false,
            },
            hand_probe.clone(),
        )
        .expect("hand-written jacobi");
        let dsl_probe = ResProbe::new();
        let dsl = run_dsl(&jac, 2, 2, opts, Some(dsl_probe.clone()));
        let (h, d) = (hand_probe.take(), dsl_probe.take());
        assert!(
            !h.is_empty()
                && h.len() == d.len()
                && h.iter().zip(&d).all(|(x, y)| x.to_bits() == y.to_bits()),
            "{name}: compiled jacobi residuals diverged: {h:?} vs {d:?}"
        );
        assert_eq!(
            hand.report.end_time, dsl.report.end_time,
            "{name}: compiled jacobi end time drifted from hand-written"
        );
        assert_eq!(
            hand.report.events, dsl.report.events,
            "{name}: compiled jacobi dispatch count drifted"
        );
        out.push_str(&format!(
            "  parity [{name}]: residual bits + end time + {} dispatches identical\n",
            dsl.report.events
        ));
    }

    // 2. The testmpi.cpp pattern end to end: the program itself asserts
    // the device binding (acc_get_device_num == shm rank) and the exact
    // allreduced sum; completion is the correctness result.
    let dot = Arc::new(
        compile_with_overrides(example("dot").unwrap(), &[("n".to_string(), 2048.0)]).unwrap(),
    );
    for (nodes, gpus) in [(1usize, 4usize), (2, 2)] {
        let s = run_dsl(&dot, nodes, gpus, RuntimeOptions::impacc(), None);
        assert!(
            s.report.events > 0,
            "({nodes},{gpus}): the program must dispatch work"
        );
        if nodes > 1 {
            assert!(
                metric(&s, "mpi_bytes_sent") > 0,
                "({nodes},{gpus}): a multi-node reduction must reach the wire"
            );
        }
        out.push_str(&format!(
            "  testmpi dot [{nodes}x{gpus}]: split+bind+allreduce ok, sum exact ({} events)\n",
            s.report.events
        ));
    }

    // 3. JACC-style single-loop device split: 4 GPUs vs 1, virtual time.
    let jac_big = Arc::new(
        compile_with_overrides(
            example("jacobi").unwrap(),
            &[("n".to_string(), 2048.0), ("iters".to_string(), 4.0)],
        )
        .unwrap(),
    );
    let one = run_dsl(&jac_big, 1, 1, RuntimeOptions::impacc(), None).elapsed_secs();
    let four = run_dsl(&jac_big, 1, 4, RuntimeOptions::impacc(), None).elapsed_secs();
    let speedup = one / four;
    assert!(
        speedup >= 3.0,
        "device split too weak: 1 GPU {one:.6}s vs 4 GPUs {four:.6}s ({speedup:.2}x < 3.0x)"
    );
    out.push_str(&format!(
        "  device split: 2048x2048 jacobi, 1 -> 4 GPUs: {:.1}us -> {:.1}us ({speedup:.2}x >= 3.0x)\n",
        one * 1e6,
        four * 1e6
    ));

    // 4. Translation cost and stability.
    for (name, src) in EXAMPLES {
        let (c, us) = time_compile(src, 20);
        assert!(
            us < 10_000.0,
            "{name}: compile took {us:.0}us (>10ms) — the compiler is not microseconds-cheap"
        );
        let again = compile(src).unwrap();
        assert_eq!(
            dump_plan(&c),
            dump_plan(&again),
            "{name}: translation is not byte-stable"
        );
        out.push_str(&format!(
            "  compile [{name}]: {us:.0}us, plan byte-stable\n"
        ));
    }
    out.push_str("dsl smoke: ok\n");
    out
}
