//! Figures 10 & 11 — DGEMM strong scaling and execution-time breakdown.
//!
//! Figure 10: speedup over the MPI+OpenACC single-task run, for
//! (a–d) PSG with 1K–8K matrices and 1–8 tasks, (e) Beacon up to 128
//! tasks, (f) Titan with 24K matrices from 128 tasks up.
//!
//! Figure 11 reuses the PSG runs: normalized execution-time breakdown
//! (kernel / device copies / communication) per configuration.
//!
//! Paper's shape: the baseline stops scaling (or regresses) on small
//! matrices where communication dominates; IMPACC keeps scaling thanks to
//! aliasing + fused copies + the unified queue; on Titan both degrade
//! past 1024 nodes with IMPACC up to ~1.6× ahead.

use impacc_apps::{run_dgemm, DgemmParams};
use impacc_core::{RunSummary, RuntimeOptions};

use crate::specs::{beacon_tasks, psg_tasks, titan_tasks};
use crate::util::{comm_secs, copy_secs, full, kernel_secs, quick, Table};

fn dgemm(spec: impacc_machine::MachineSpec, opts: RuntimeOptions, n: usize) -> RunSummary {
    run_dgemm(spec, opts, Some(4096), DgemmParams { n, verify: false }).expect("dgemm run")
}

/// The PSG matrix sizes for panels (a)–(d).
pub fn psg_sizes() -> Vec<usize> {
    if quick() {
        vec![1024, 2048]
    } else {
        vec![1024, 2048, 4096, 8192]
    }
}

/// Run Figure 10; returns the rendered report.
pub fn run() -> String {
    let mut out = String::new();
    out.push_str("Figure 10: DGEMM strong scaling (speedup over MPI+OpenACC 1-task)\n\n");

    // (a)-(d) PSG.
    for n in psg_sizes() {
        let base1 = dgemm(psg_tasks(1), RuntimeOptions::baseline(), n).elapsed_secs();
        let mut t = Table::new(&["tasks", "IMPACC", "MPI+OpenACC"]);
        for tasks in [1usize, 2, 4, 8] {
            let i = dgemm(psg_tasks(tasks), RuntimeOptions::impacc(), n).elapsed_secs();
            let b = dgemm(psg_tasks(tasks), RuntimeOptions::baseline(), n).elapsed_secs();
            t.row(vec![
                tasks.to_string(),
                format!("{:.2}x", base1 / i),
                format!("{:.2}x", base1 / b),
            ]);
        }
        out.push_str(&format!("PSG, {0}x{0}:\n{1}\n", n, t.render()));
    }

    // (e) Beacon.
    let n = if quick() { 1024 } else { 4096 };
    let base1 = dgemm(beacon_tasks(1), RuntimeOptions::baseline(), n).elapsed_secs();
    let mut t = Table::new(&["tasks", "IMPACC", "MPI+OpenACC"]);
    let beacon_counts: Vec<usize> = if quick() {
        vec![1, 4, 16]
    } else {
        vec![1, 2, 4, 8, 16, 32, 64, 128]
    };
    for tasks in beacon_counts {
        let i = dgemm(beacon_tasks(tasks), RuntimeOptions::impacc(), n).elapsed_secs();
        let b = dgemm(beacon_tasks(tasks), RuntimeOptions::baseline(), n).elapsed_secs();
        t.row(vec![
            tasks.to_string(),
            format!("{:.2}x", base1 / i),
            format!("{:.2}x", base1 / b),
        ]);
    }
    out.push_str(&format!("Beacon, {0}x{0}:\n{1}\n", n, t.render()));

    // (f) Titan, 24K x 24K, normalized to the 128-task baseline.
    let n = if quick() { 4096 } else { 24576 };
    let titan_counts: Vec<usize> = if quick() {
        vec![128, 256]
    } else if full() {
        vec![128, 256, 512, 1024, 2048, 4096, 8192]
    } else {
        vec![128, 256, 512, 1024, 2048]
    };
    let base128 = dgemm(titan_tasks(titan_counts[0]), RuntimeOptions::baseline(), n).elapsed_secs();
    let mut t = Table::new(&["tasks", "IMPACC", "MPI+OpenACC", "IMPACC/MPI+X"]);
    for tasks in titan_counts {
        let i = dgemm(titan_tasks(tasks), RuntimeOptions::impacc(), n).elapsed_secs();
        let b = dgemm(titan_tasks(tasks), RuntimeOptions::baseline(), n).elapsed_secs();
        t.row(vec![
            tasks.to_string(),
            format!("{:.2}x", base128 / i),
            format!("{:.2}x", base128 / b),
            format!("{:.2}x", b / i),
        ]);
    }
    out.push_str(&format!(
        "Titan, {0}x{0} (normalized to 128-task MPI+X):\n{1}\n",
        n,
        t.render()
    ));

    out.push_str(
        "paper: baseline degrades on small PSG matrices while IMPACC scales;\n\
         IMPACC pulls ahead from 32 Beacon tasks; on Titan both degrade past\n\
         1024 nodes, IMPACC up to ~1.6x ahead at 1024.\n",
    );
    out
}

/// Run Figure 11 (execution-time breakdown on PSG).
pub fn run_fig11() -> String {
    let mut out = String::new();
    out.push_str(
        "Figure 11: DGEMM execution-time breakdown on PSG\n\
         (seconds of aggregate activity; normalized to the MPI+X 1-task total per size)\n\n",
    );
    for n in psg_sizes() {
        let base_total = {
            let s = dgemm(psg_tasks(1), RuntimeOptions::baseline(), n);
            s.elapsed_secs()
        };
        let mut t = Table::new(&[
            "tasks",
            "runtime",
            "kernel",
            "copies",
            "comm",
            "total(norm)",
        ]);
        for tasks in [1usize, 2, 4, 8] {
            for (label, opts) in [
                ("IMPACC", RuntimeOptions::impacc()),
                ("MPI+X", RuntimeOptions::baseline()),
            ] {
                let s = dgemm(psg_tasks(tasks), opts, n);
                t.row(vec![
                    tasks.to_string(),
                    label.into(),
                    format!("{:.4}", kernel_secs(&s)),
                    format!("{:.4}", copy_secs(&s)),
                    format!("{:.4}", comm_secs(&s)),
                    format!("{:.2}", s.elapsed_secs() / base_total),
                ]);
            }
        }
        out.push_str(&format!("PSG, {0}x{0}:\n{1}\n", n, t.render()));
    }
    out.push_str(
        "paper: IMPACC dramatically reduces communication time for small\n\
         matrices; kernels dominate (and hide communication) at 8K.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn impacc_scales_where_baseline_stalls_small_psg() {
        let n = 512;
        let b1 = dgemm(psg_tasks(1), RuntimeOptions::baseline(), n).elapsed_secs();
        let b8 = dgemm(psg_tasks(8), RuntimeOptions::baseline(), n).elapsed_secs();
        let i8 = dgemm(psg_tasks(8), RuntimeOptions::impacc(), n).elapsed_secs();
        let impacc_speedup = b1 / i8;
        let baseline_speedup = b1 / b8;
        assert!(
            impacc_speedup > baseline_speedup,
            "IMPACC {impacc_speedup:.2}x vs baseline {baseline_speedup:.2}x"
        );
    }

    #[test]
    fn gap_narrows_as_matrices_grow() {
        // Kernel time grows as n^3 while communication grows as n^2, so
        // the baseline's disadvantage must shrink with n (Figure 10/11).
        let ratio_at = |n: usize| {
            let i = dgemm(psg_tasks(4), RuntimeOptions::impacc(), n).elapsed_secs();
            let b = dgemm(psg_tasks(4), RuntimeOptions::baseline(), n).elapsed_secs();
            b / i
        };
        let small = ratio_at(512);
        let large = ratio_at(8192);
        assert!(small > large, "gap must narrow: {small:.2} -> {large:.2}");
        assert!(large < 2.0, "8K should be kernel-dominated: {large:.2}");
    }
}
