//! Figure 12 — EP speedup: classes A–E on PSG (1–8 tasks), class E on
//! Beacon (up to 128 tasks), the new 64×E class on Titan (128 tasks up).
//!
//! Paper's result: EP is pure compute — near-linear scaling for the large
//! classes, poor strong scaling for small ones (device under-utilization
//! is not modelled, but the fixed launch/reduce overheads produce the
//! same flattening), and **no difference between IMPACC and MPI+OpenACC**.

use impacc_apps::{run_ep, EpClass, EpParams};
use impacc_core::RuntimeOptions;

use crate::specs::{beacon_tasks, psg_tasks, titan_tasks};
use crate::util::{full, quick, Table};

fn ep(spec: impacc_machine::MachineSpec, opts: RuntimeOptions, class: EpClass) -> f64 {
    let params = EpParams {
        total_pairs: class.pairs(),
        sample_pairs: 1 << 10,
    };
    run_ep(spec, opts, params).expect("ep run").elapsed_secs()
}

/// Run Figure 12; returns the rendered report.
pub fn run() -> String {
    let mut out = String::new();
    out.push_str("Figure 12: EP speedup (over MPI+OpenACC 1-task; Titan over 128-task)\n\n");

    let classes: Vec<EpClass> = if quick() {
        vec![EpClass::A, EpClass::C]
    } else {
        vec![EpClass::A, EpClass::B, EpClass::C, EpClass::D, EpClass::E]
    };
    for class in classes {
        let base1 = ep(psg_tasks(1), RuntimeOptions::baseline(), class);
        let mut t = Table::new(&["tasks", "IMPACC", "MPI+OpenACC"]);
        for tasks in [1usize, 2, 4, 8] {
            let i = ep(psg_tasks(tasks), RuntimeOptions::impacc(), class);
            let b = ep(psg_tasks(tasks), RuntimeOptions::baseline(), class);
            t.row(vec![
                tasks.to_string(),
                format!("{:.2}x", base1 / i),
                format!("{:.2}x", base1 / b),
            ]);
        }
        out.push_str(&format!("PSG, class {class:?}:\n{}\n", t.render()));
    }

    // (f) Beacon, class E.
    let base1 = ep(beacon_tasks(1), RuntimeOptions::baseline(), EpClass::E);
    let mut t = Table::new(&["tasks", "IMPACC", "MPI+OpenACC"]);
    let counts: Vec<usize> = if quick() {
        vec![1, 8, 32]
    } else {
        vec![1, 2, 4, 8, 16, 32, 64, 128]
    };
    for tasks in counts {
        let i = ep(beacon_tasks(tasks), RuntimeOptions::impacc(), EpClass::E);
        let b = ep(beacon_tasks(tasks), RuntimeOptions::baseline(), EpClass::E);
        t.row(vec![
            tasks.to_string(),
            format!("{:.2}x", base1 / i),
            format!("{:.2}x", base1 / b),
        ]);
    }
    out.push_str(&format!("Beacon, class E:\n{}\n", t.render()));

    // (g) Titan, class 64xE, normalized to 128 tasks.
    let counts: Vec<usize> = if quick() {
        vec![128, 256]
    } else if full() {
        vec![128, 256, 512, 1024, 2048, 4096, 8192]
    } else {
        vec![128, 256, 512, 1024, 2048]
    };
    let base = ep(
        titan_tasks(counts[0]),
        RuntimeOptions::baseline(),
        EpClass::E64,
    );
    let mut t = Table::new(&["tasks", "IMPACC", "MPI+OpenACC"]);
    for tasks in counts {
        let i = ep(titan_tasks(tasks), RuntimeOptions::impacc(), EpClass::E64);
        let b = ep(titan_tasks(tasks), RuntimeOptions::baseline(), EpClass::E64);
        t.row(vec![
            tasks.to_string(),
            format!("{:.2}x", base / i),
            format!("{:.2}x", base / b),
        ]);
    }
    out.push_str(&format!(
        "Titan, class 64xE (normalized to 128-task MPI+X):\n{}\n",
        t.render()
    ));

    out.push_str(
        "paper: near-linear for big classes, flat for small ones;\n\
         IMPACC == MPI+OpenACC throughout (nothing to optimize).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_e_scales_nearly_linearly_on_psg() {
        let t1 = ep(psg_tasks(1), RuntimeOptions::impacc(), EpClass::E);
        let t8 = ep(psg_tasks(8), RuntimeOptions::impacc(), EpClass::E);
        let speedup = t1 / t8;
        assert!(speedup > 7.5, "class E should be ~linear: {speedup:.2}");
    }

    #[test]
    fn small_class_scales_poorly() {
        let ta1 = ep(psg_tasks(1), RuntimeOptions::impacc(), EpClass::S);
        let ta8 = ep(psg_tasks(8), RuntimeOptions::impacc(), EpClass::S);
        let se = ta1 / ta8;
        let te1 = ep(psg_tasks(1), RuntimeOptions::impacc(), EpClass::E);
        let te8 = ep(psg_tasks(8), RuntimeOptions::impacc(), EpClass::E);
        let le = te1 / te8;
        assert!(
            se < le,
            "class S speedup {se:.2} should trail class E {le:.2}"
        );
    }

    #[test]
    fn models_are_equivalent_for_ep() {
        let i = ep(psg_tasks(8), RuntimeOptions::impacc(), EpClass::C);
        let b = ep(psg_tasks(8), RuntimeOptions::baseline(), EpClass::C);
        let ratio = b / i;
        assert!((0.9..1.15).contains(&ratio), "ratio = {ratio:.3}");
    }
}
