//! Figures 13 & 14 — Jacobi strong scaling and the device-to-device
//! communication-time breakdown.
//!
//! Figure 13: speedup over the MPI+OpenACC 1-task run for 1K–8K meshes on
//! PSG, up to 128 tasks on Beacon, 128+ on Titan.
//!
//! Figure 14: total device-to-device communication time on PSG — IMPACC's
//! single direct DtoD transfer vs the baseline's DtoH + HtoH + HtoD chain.

use impacc_apps::{run_jacobi, run_jacobi_sink, JacobiParams};
use impacc_core::{RunSummary, RuntimeOptions};
use impacc_obs::{breakdown, chrome, Recorder};

use crate::specs::{beacon_tasks, psg_tasks, titan_tasks};
use crate::util::{quick, Table};

const ITERS: usize = 50;

fn jacobi_iters(
    spec: impacc_machine::MachineSpec,
    opts: RuntimeOptions,
    n: usize,
    iters: usize,
) -> RunSummary {
    run_jacobi(
        spec,
        opts,
        Some(4096),
        JacobiParams {
            n,
            iters,
            verify: false,
        },
    )
    .expect("jacobi run")
}

fn jacobi(spec: impacc_machine::MachineSpec, opts: RuntimeOptions, n: usize) -> RunSummary {
    jacobi_iters(spec, opts, n, ITERS)
}

/// Copy-time metric attributable to the sweeps alone: the same run with
/// zero sweeps (setup `copyin`s only) is subtracted out.
fn sweep_metric(
    spec_fn: impl Fn() -> impacc_machine::MachineSpec,
    opts: RuntimeOptions,
    n: usize,
    key: &'static str,
) -> f64 {
    let with = jacobi_iters(spec_fn(), opts, n, ITERS);
    let setup = jacobi_iters(spec_fn(), opts, n, 0);
    let ps = with.report.metrics.get(key).copied().unwrap_or(0)
        - setup.report.metrics.get(key).copied().unwrap_or(0);
    ps as f64 / 1e12
}

/// Mesh sizes for the PSG panels.
pub fn psg_sizes() -> Vec<usize> {
    if quick() {
        vec![1024]
    } else {
        vec![1024, 2048, 4096, 8192]
    }
}

/// Run Figure 13; returns the rendered report.
pub fn run() -> String {
    let mut out = String::new();
    out.push_str("Figure 13: Jacobi strong scaling (speedup over MPI+OpenACC 1-task)\n\n");

    for n in psg_sizes() {
        let base1 = jacobi(psg_tasks(1), RuntimeOptions::baseline(), n).elapsed_secs();
        let mut t = Table::new(&["tasks", "IMPACC", "MPI+OpenACC"]);
        for tasks in [1usize, 2, 4, 8] {
            let i = jacobi(psg_tasks(tasks), RuntimeOptions::impacc(), n).elapsed_secs();
            let b = jacobi(psg_tasks(tasks), RuntimeOptions::baseline(), n).elapsed_secs();
            t.row(vec![
                tasks.to_string(),
                format!("{:.2}x", base1 / i),
                format!("{:.2}x", base1 / b),
            ]);
        }
        out.push_str(&format!("PSG, {0}x{0} mesh:\n{1}\n", n, t.render()));
    }

    // (e) Beacon.
    let n = if quick() { 2048 } else { 8192 };
    let base1 = jacobi(beacon_tasks(1), RuntimeOptions::baseline(), n).elapsed_secs();
    let mut t = Table::new(&["tasks", "IMPACC", "MPI+OpenACC"]);
    let counts: Vec<usize> = if quick() {
        vec![1, 8, 32]
    } else {
        vec![1, 2, 4, 8, 16, 32, 64, 128]
    };
    for tasks in counts {
        let i = jacobi(beacon_tasks(tasks), RuntimeOptions::impacc(), n).elapsed_secs();
        let b = jacobi(beacon_tasks(tasks), RuntimeOptions::baseline(), n).elapsed_secs();
        t.row(vec![
            tasks.to_string(),
            format!("{:.2}x", base1 / i),
            format!("{:.2}x", base1 / b),
        ]);
    }
    out.push_str(&format!("Beacon, {0}x{0} mesh:\n{1}\n", n, t.render()));

    // (f) Titan, normalized to 128 tasks.
    let n = if quick() { 4096 } else { 16384 };
    let counts: Vec<usize> = if quick() {
        vec![128, 256]
    } else {
        vec![128, 256, 512, 1024]
    };
    let base = jacobi(titan_tasks(counts[0]), RuntimeOptions::baseline(), n).elapsed_secs();
    let mut t = Table::new(&["tasks", "IMPACC", "MPI+OpenACC"]);
    for tasks in counts {
        let i = jacobi(titan_tasks(tasks), RuntimeOptions::impacc(), n).elapsed_secs();
        let b = jacobi(titan_tasks(tasks), RuntimeOptions::baseline(), n).elapsed_secs();
        t.row(vec![
            tasks.to_string(),
            format!("{:.2}x", base / i),
            format!("{:.2}x", base / b),
        ]);
    }
    out.push_str(&format!(
        "Titan, {0}x{0} mesh (normalized to 128-task MPI+X):\n{1}\n",
        n,
        t.render()
    ));
    out.push_str(
        "paper: IMPACC ahead on PSG via direct DtoD halos; on Beacon the gap\n\
         opens as communication dominates (16-64 tasks); communication-bound\n\
         at 128+ tasks everywhere.\n",
    );
    out
}

/// Run Figure 14 (DtoD communication-time breakdown on PSG).
pub fn run_fig14() -> String {
    run_fig14_traced(None)
}

/// [`run_fig14`], optionally dumping a Chrome trace of one IMPACC and one
/// baseline Jacobi run (merged as two trace processes) to `trace`, and
/// appending a span-derived copy breakdown that reproduces the figure's
/// stacks directly from the timeline.
pub fn run_fig14_traced(trace: Option<&str>) -> String {
    let mut out = String::new();
    out.push_str("Figure 14: Jacobi device-to-device communication time on PSG (ms aggregate)\n\n");
    let sizes = if quick() {
        vec![1024]
    } else {
        vec![2048, 4096, 8192]
    };
    let mut t = Table::new(&[
        "tasks",
        "mesh",
        "IMPACC DtoD",
        "MPI+X DtoH",
        "MPI+X HtoH",
        "MPI+X HtoD",
        "MPI+X total",
    ]);
    for &n in &sizes {
        for tasks in [2usize, 4, 8] {
            let ms = |opts: RuntimeOptions, key: &'static str| {
                sweep_metric(|| psg_tasks(tasks), opts, n, key) * 1e3
            };
            let i_dtod = ms(RuntimeOptions::impacc(), "t_DtoD");
            let b_dtoh = ms(RuntimeOptions::baseline(), "t_DtoH");
            let b_htoh = ms(RuntimeOptions::baseline(), "t_HtoH");
            let b_htod = ms(RuntimeOptions::baseline(), "t_HtoD");
            t.row(vec![
                tasks.to_string(),
                format!("{n}"),
                format!("{i_dtod:.3}"),
                format!("{b_dtoh:.3}"),
                format!("{b_htoh:.3}"),
                format!("{b_htod:.3}"),
                format!("{:.3}", b_dtoh + b_htoh + b_htod),
            ]);
        }
    }
    out.push_str(&t.render());
    out.push_str(
        "\npaper: IMPACC needs a single direct transfer over PCIe; MPI+OpenACC\n\
         adds host CPU and system-memory hops (DtoH + HtoH + HtoD).\n",
    );
    if let Some(path) = trace {
        out.push('\n');
        out.push_str(&trace_fig14(path));
    }
    out
}

/// Capture one IMPACC and one baseline Jacobi run with a span recorder,
/// write the merged Chrome trace to `path`, and return the span-derived
/// copy breakdown (sweep phase only — the setup `copyin`s are cut off at
/// the jacobi `phase=sweep` marker).
fn trace_fig14(path: &str) -> String {
    let n = if quick() { 1024 } else { 4096 };
    let tasks = 4;
    let traced = |opts: RuntimeOptions| {
        let rec = Recorder::new();
        run_jacobi_sink(
            psg_tasks(tasks),
            opts,
            Some(4096),
            Some(rec.sink()),
            JacobiParams {
                n,
                iters: ITERS,
                verify: false,
            },
        )
        .expect("jacobi run");
        rec.spans()
    };
    let i_spans = traced(RuntimeOptions::impacc());
    let b_spans = traced(RuntimeOptions::baseline());

    let mut out = format!(
        "Span-derived sweep copy breakdown ({tasks} tasks, {n}x{n} mesh; baseline = 1.0):\n"
    );
    let rows = vec![
        breakdown::CopyBreakdown::from_spans(
            "MPI+OpenACC",
            &b_spans,
            breakdown::phase_entered(&b_spans, "sweep"),
        ),
        breakdown::CopyBreakdown::from_spans(
            "IMPACC",
            &i_spans,
            breakdown::phase_entered(&i_spans, "sweep"),
        ),
    ];
    out.push_str(&breakdown::copy_table(&rows));

    match chrome::write_trace_groups(
        std::path::Path::new(path),
        &[("impacc", &i_spans), ("baseline", &b_spans)],
    ) {
        Ok(()) => out.push_str(&format!(
            "\nChrome trace written to {path} ({} + {} spans); open via ui.perfetto.dev\n",
            i_spans.len(),
            b_spans.len()
        )),
        Err(e) => out.push_str(&format!("\nwarning: could not write {path}: {e}\n")),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn impacc_dtod_time_is_fraction_of_baseline_chain() {
        // Large enough rows that the transfers are bandwidth- (not
        // latency-) bound, as in the paper's mesh sizes.
        let n = 4096;
        let i_dtod = sweep_metric(|| psg_tasks(4), RuntimeOptions::impacc(), n, "t_DtoD");
        let b_chain = sweep_metric(|| psg_tasks(4), RuntimeOptions::baseline(), n, "t_DtoH")
            + sweep_metric(|| psg_tasks(4), RuntimeOptions::baseline(), n, "t_HtoH")
            + sweep_metric(|| psg_tasks(4), RuntimeOptions::baseline(), n, "t_HtoD");
        assert!(i_dtod > 0.0);
        assert!(
            b_chain > 2.0 * i_dtod,
            "baseline chain {b_chain} vs IMPACC DtoD {i_dtod}"
        );
    }

    fn traced_spans(opts: RuntimeOptions, n: usize) -> Vec<impacc_obs::Span> {
        let rec = Recorder::new();
        run_jacobi_sink(
            psg_tasks(4),
            opts,
            Some(4096),
            Some(rec.sink()),
            JacobiParams {
                n,
                iters: 10,
                verify: false,
            },
        )
        .unwrap();
        rec.spans()
    }

    #[test]
    fn span_breakdown_reproduces_fig14_ratio() {
        // The acceptance shape: per-copy-kind span totals (sweep phase
        // only) must show IMPACC's direct DtoD as a fraction of the
        // baseline's DtoH + HtoH + HtoD chain. Needs a bandwidth-bound
        // mesh: at 1024 the per-row transfers are latency-dominated and
        // the chain advantage shrinks below the asserted 2x.
        let i = traced_spans(RuntimeOptions::impacc(), 2048);
        let b = traced_spans(RuntimeOptions::baseline(), 2048);
        let ib =
            breakdown::CopyBreakdown::from_spans("i", &i, breakdown::phase_entered(&i, "sweep"));
        let bb =
            breakdown::CopyBreakdown::from_spans("b", &b, breakdown::phase_entered(&b, "sweep"));
        let chain = bb.secs[0] + bb.secs[1] + bb.secs[2]; // HtoH + HtoD + DtoH
        assert!(ib.secs[3] > 0.0, "IMPACC sweep must run on DtoD spans");
        assert!(
            chain > 2.0 * ib.secs[3],
            "baseline chain {chain} vs IMPACC DtoD {}",
            ib.secs[3]
        );
        let doc = chrome::trace_groups(&[("impacc", &i), ("baseline", &b)]);
        assert!(chrome::structurally_valid(&doc));
    }

    #[test]
    fn tracing_does_not_perturb_virtual_time() {
        let p = JacobiParams {
            n: 512,
            iters: 5,
            verify: false,
        };
        for opts in [RuntimeOptions::impacc(), RuntimeOptions::baseline()] {
            let plain = run_jacobi(psg_tasks(2), opts, Some(4096), p.clone()).unwrap();
            let rec = Recorder::new();
            let traced =
                run_jacobi_sink(psg_tasks(2), opts, Some(4096), Some(rec.sink()), p.clone())
                    .unwrap();
            assert!(rec.span_count() > 0);
            assert_eq!(
                plain.elapsed_secs().to_bits(),
                traced.elapsed_secs().to_bits(),
                "recording must not change virtual time"
            );
            assert_eq!(plain.report.metrics, traced.report.metrics);
        }
    }

    #[test]
    fn impacc_leads_across_psg_task_counts() {
        let n = 2048;
        let base1 = jacobi(psg_tasks(1), RuntimeOptions::baseline(), n).elapsed_secs();
        for tasks in [2usize, 8] {
            let i = jacobi(psg_tasks(tasks), RuntimeOptions::impacc(), n).elapsed_secs();
            let b = jacobi(psg_tasks(tasks), RuntimeOptions::baseline(), n).elapsed_secs();
            assert!(
                base1 / i > base1 / b,
                "{tasks} tasks: IMPACC {:.2}x vs baseline {:.2}x",
                base1 / i,
                base1 / b
            );
        }
    }
}
