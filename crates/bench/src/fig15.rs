//! Figure 15 — LULESH weak scaling: task counts are perfect cubes
//! (1, 8, 27, 64, 125, 1000, 3375, 8000), per-task problem size fixed.
//!
//! Paper's shape: on a PSG node IMPACC wins (NUMA pinning + message fusion
//! without inter-process communication); on Beacon IMPACC is ~5% *slower*
//! (nothing to fuse profitably in host-to-host internode traffic, plus
//! message-command/handler overhead); at large Titan scales both are
//! kernel-dominated and weak-scale almost linearly.

use impacc_apps::{run_lulesh, LuleshParams};
use impacc_core::RuntimeOptions;

use crate::specs::{beacon_tasks, psg_tasks, titan_tasks};
use crate::util::{full, quick, Table};

fn lulesh(spec: impacc_machine::MachineSpec, opts: RuntimeOptions, s: usize) -> f64 {
    run_lulesh(
        spec,
        opts,
        Some(4096),
        LuleshParams {
            s,
            iters: if quick() { 2 } else { 4 },
            verify: false,
        },
    )
    .expect("lulesh run")
    .elapsed_secs()
}

/// Run Figure 15; returns the rendered report.
pub fn run() -> String {
    // Per-system per-task problem sizes, like the paper (whose Figure 15
    // graph titles differ per system: the 12 GB PSG GPUs take larger
    // per-task problems than the 8 GB Beacon MICs).
    let (s_psg, s_beacon, s_titan) = if quick() { (16, 8, 8) } else { (48, 20, 32) };
    let mut out = String::new();
    out.push_str(
        "Figure 15: LULESH weak scaling (PSG 48^3, Beacon 20^3, Titan 32^3 per task)\n\
         (time normalized to MPI+OpenACC 1-task; weak scaling => flat is ideal)\n\n",
    );

    // PSG: a single node fits 1 and 8 tasks.
    let s = s_psg;
    let base1 = lulesh(psg_tasks(1), RuntimeOptions::baseline(), s);
    let mut t = Table::new(&["tasks", "IMPACC", "MPI+OpenACC", "IMPACC/MPI+X"]);
    for tasks in [1usize, 8] {
        let i = lulesh(psg_tasks(tasks), RuntimeOptions::impacc(), s);
        let b = lulesh(psg_tasks(tasks), RuntimeOptions::baseline(), s);
        t.row(vec![
            tasks.to_string(),
            format!("{:.2}", i / base1),
            format!("{:.2}", b / base1),
            format!("{:.3}", i / b),
        ]);
    }
    out.push_str(&format!("PSG:\n{}\n", t.render()));

    // Beacon: cubes up to 125 tasks over 32 nodes.
    let s = s_beacon;
    let base1 = lulesh(beacon_tasks(1), RuntimeOptions::baseline(), s);
    let mut t = Table::new(&["tasks", "IMPACC", "MPI+OpenACC", "IMPACC/MPI+X"]);
    let counts: Vec<usize> = if quick() {
        vec![1, 8]
    } else {
        vec![1, 8, 27, 64, 125]
    };
    for tasks in counts {
        let i = lulesh(beacon_tasks(tasks), RuntimeOptions::impacc(), s);
        let b = lulesh(beacon_tasks(tasks), RuntimeOptions::baseline(), s);
        t.row(vec![
            tasks.to_string(),
            format!("{:.2}", i / base1),
            format!("{:.2}", b / base1),
            format!("{:.3}", i / b),
        ]);
    }
    out.push_str(&format!("Beacon:\n{}\n", t.render()));

    // Titan: large cubes, normalized to the 125-task baseline.
    let s = s_titan;
    let counts: Vec<usize> = if quick() {
        vec![125, 216]
    } else if full() {
        vec![125, 216, 512, 1000, 3375, 8000]
    } else {
        vec![125, 216, 512, 1000]
    };
    let base = lulesh(titan_tasks(counts[0]), RuntimeOptions::baseline(), s);
    let mut t = Table::new(&["tasks", "IMPACC", "MPI+OpenACC", "IMPACC/MPI+X"]);
    for tasks in counts {
        let i = lulesh(titan_tasks(tasks), RuntimeOptions::impacc(), s);
        let b = lulesh(titan_tasks(tasks), RuntimeOptions::baseline(), s);
        t.row(vec![
            tasks.to_string(),
            format!("{:.2}", i / base),
            format!("{:.2}", b / base),
            format!("{:.3}", i / b),
        ]);
    }
    out.push_str(&format!(
        "Titan (normalized to 125-task MPI+X):\n{}\n",
        t.render()
    ));
    out.push_str(
        "paper: IMPACC faster on PSG (pinning + fusion), ~5% slower on Beacon\n\
         (handler/message-command overhead, nothing to fuse), both ~linear on\n\
         Titan at large problem sizes.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn psg_single_node_impacc_wins() {
        // Paper-scale per-task problem: faces are large enough that fused
        // single copies beat the message-command overhead.
        let s = 48;
        let i = lulesh(psg_tasks(8), RuntimeOptions::impacc(), s);
        let b = lulesh(psg_tasks(8), RuntimeOptions::baseline(), s);
        assert!(i < b, "IMPACC {i} vs baseline {b}");
    }

    #[test]
    fn beacon_multinode_gap_is_small() {
        // 27 tasks over 7 Beacon nodes: mostly internode host-to-host.
        // The paper reports IMPACC ~5% behind; accept anything from a
        // small win to ~15% behind.
        let s = 12;
        let i = lulesh(beacon_tasks(27), RuntimeOptions::impacc(), s);
        let b = lulesh(beacon_tasks(27), RuntimeOptions::baseline(), s);
        let ratio = i / b;
        assert!(
            (0.85..1.2).contains(&ratio),
            "Beacon LULESH should be a wash, IMPACC/baseline = {ratio:.3}"
        );
    }
}
