//! Figures 4 & 5 — the paper's motivating example: the same
//! kernel → send → recv → kernel exchange written three ways, and where
//! the host thread's time goes in each.
//!
//! * (a) fully synchronous MPI+OpenACC: blocking kernels and blocking
//!   MPI — the host idles through every operation.
//! * (b) asynchronous MPI+OpenACC: `async` queues and `MPI_Isend/Irecv`,
//!   but explicit `acc wait` / `MPI_Waitall` synchronization points
//!   between the two orthogonal streamlines.
//! * (c) the IMPACC unified activity queue: everything (kernels *and*
//!   MPI calls) rides queue 1 in order; the host never blocks until the
//!   final wait — and is free to do other work meanwhile.

use impacc_apps::math_ok;
use impacc_core::{Launch, MpiOpts, RunSummary, RuntimeOptions, TaskCtx};
use impacc_machine::{presets, KernelCost, MachineSpec};
use impacc_obs::{chrome, Recorder};

use crate::util::Table;

/// Which of Figure 4's three listings to run.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Style {
    /// Figure 4(a).
    Synchronous,
    /// Figure 4(b).
    AsyncWithWaits,
    /// Figure 4(c).
    UnifiedQueue,
}

const N: usize = 1 << 18; // 2 Mi bytes per buffer

fn exchange(tc: &TaskCtx, style: Style) {
    let peer = 1 - tc.rank();
    let me = tc.rank() as f64;
    let buf0 = tc.malloc_f64(N);
    let buf1 = tc.malloc_f64(N);
    tc.acc_create(&buf0);
    tc.acc_create(&buf1);
    let cost = KernelCost::new(10.0 * N as f64, 16.0 * N as f64);

    let produce = {
        let d = tc.dev_view(&buf0);
        move || {
            if math_ok(&d) {
                d.write_f64s(0, &vec![me; N]);
            }
        }
    };
    let consume = {
        let d = tc.dev_view(&buf1);
        let expect = peer as f64;
        move || {
            if math_ok(&d) {
                assert_eq!(d.read_f64s(0, 1)[0], expect);
            }
        }
    };

    match style {
        Style::Synchronous => {
            // kernel - copyout - send - recv - copyin - kernel, all blocking.
            tc.acc_kernel(None, cost, produce);
            tc.acc_update_host(&buf0, 0, buf0.len, None);
            let sreq = tc.mpi_isend(&buf0, 0, buf0.len, peer, 0, MpiOpts::host());
            tc.mpi_recv(&buf1, 0, buf1.len, peer, 0, MpiOpts::host());
            sreq.wait(tc.ctx());
            tc.acc_update_device(&buf1, 0, buf1.len, None);
            tc.acc_kernel(None, cost, consume);
        }
        Style::AsyncWithWaits => {
            // async ops, but the host must bridge MPI and OpenACC with
            // explicit synchronization points.
            tc.acc_kernel(Some(1), cost, produce);
            tc.acc_update_host(&buf0, 0, buf0.len, Some(1));
            tc.acc_wait(1);
            let reqs = vec![
                tc.mpi_isend(&buf0, 0, buf0.len, peer, 0, MpiOpts::host()),
                tc.mpi_irecv(&buf1, 0, buf1.len, peer, 0, MpiOpts::host()),
            ];
            tc.mpi_waitall(&reqs);
            tc.acc_update_device(&buf1, 0, buf1.len, Some(1));
            tc.acc_kernel(Some(1), cost, consume);
            tc.acc_wait(1);
        }
        Style::UnifiedQueue => {
            // Figure 4(c): one queue carries everything; the host stays
            // free and does its own work concurrently.
            tc.acc_kernel(Some(1), cost, produce);
            tc.mpi_send(&buf0, 0, buf0.len, peer, 0, MpiOpts::device().on_queue(1));
            tc.mpi_recv(&buf1, 0, buf1.len, peer, 0, MpiOpts::device().on_queue(1));
            tc.acc_kernel(Some(1), cost, consume);
            tc.host_compute(100e-6); // the CPU cycles the paper says we save
            tc.acc_wait(1);
        }
    }
}

fn spec() -> MachineSpec {
    let mut s = presets::psg();
    s.nodes[0].devices.truncate(2);
    s
}

/// Run one style; returns the summary.
pub fn run_style(style: Style) -> RunSummary {
    run_style_rec(style, None)
}

/// [`run_style`] with a span/edge recorder attached, for the
/// critical-path profiler.
pub fn run_style_recorded(style: Style, rec: &Recorder) -> RunSummary {
    run_style_rec(style, Some(rec))
}

fn run_style_rec(style: Style, rec: Option<&Recorder>) -> RunSummary {
    let opts = match style {
        Style::UnifiedQueue => RuntimeOptions::impacc(),
        _ => RuntimeOptions::baseline(),
    };
    let mut l = Launch::new(spec(), opts).phys_cap(4096);
    if let Some(rec) = rec {
        l = l.recorder(rec);
    }
    l.run(move |tc| exchange(tc, style)).expect("figure 5 run")
}

/// Host time stalled on synchronization or blocking transfers (MPI waits,
/// acc waits, and synchronous copies executed on the host thread),
/// averaged over the two ranks.
pub fn host_blocked_secs(s: &RunSummary) -> f64 {
    let ranks = ["rank0", "rank1"];
    ranks
        .iter()
        .map(|r| {
            let a = s.report.actor(r).expect("rank actor");
            ["mpi_wait", "acc_wait", "HtoD", "DtoH", "kernel"]
                .iter()
                .map(|t| a.tag(t).as_secs_f64())
                .sum::<f64>()
        })
        .sum::<f64>()
        / ranks.len() as f64
}

/// Run Figure 5; returns the rendered report.
pub fn run() -> String {
    run_traced(None)
}

/// [`run`], optionally dumping a merged Chrome trace of the three styles
/// (one trace process each) to `trace` — the figure's timelines, live.
pub fn run_traced(trace: Option<&str>) -> String {
    let mut out = String::new();
    out.push_str(
        "Figures 4/5: synchronization timelines for one kernel-send-recv-kernel\n\
         exchange (2 MiB buffers, two GPUs on one PSG node)\n\n",
    );
    let mut t = Table::new(&["style", "total", "host blocked", "blocked %"]);
    let mut groups = Vec::new();
    for (name, style) in [
        ("(a) synchronous", Style::Synchronous),
        ("(b) async + waits", Style::AsyncWithWaits),
        ("(c) unified queue", Style::UnifiedQueue),
    ] {
        let rec = trace.map(|_| Recorder::new());
        let s = run_style_rec(style, rec.as_ref());
        let total = s.elapsed_secs();
        let blocked = host_blocked_secs(&s);
        t.row(vec![
            name.into(),
            format!("{:.1}us", total * 1e6),
            format!("{:.1}us", blocked * 1e6),
            format!("{:.0}%", blocked / total * 100.0),
        ]);
        if let Some(rec) = rec {
            groups.push((name, rec.spans()));
        }
    }
    out.push_str(&t.render());
    out.push_str(
        "\npaper (Figure 5): (a) wastes the host on every operation; (b) frees\n\
         parts but still synchronizes across the MPI/OpenACC boundary; (c)\n\
         keeps the host free until one final wait, and runs fastest.\n",
    );
    if let Some(path) = trace {
        let refs: Vec<(&str, &[impacc_obs::Span])> = groups
            .iter()
            .map(|(name, spans)| (*name, spans.as_slice()))
            .collect();
        match chrome::write_trace_groups(std::path::Path::new(path), &refs) {
            Ok(()) => out.push_str(&format!(
                "\nChrome trace written to {path} ({} spans); open via ui.perfetto.dev\n",
                groups.iter().map(|(_, s)| s.len()).sum::<usize>()
            )),
            Err(e) => out.push_str(&format!("\nwarning: could not write {path}: {e}\n")),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unified_queue_is_fastest_and_least_blocked() {
        let a = run_style(Style::Synchronous);
        let b = run_style(Style::AsyncWithWaits);
        let c = run_style(Style::UnifiedQueue);
        assert!(
            c.elapsed_secs() < a.elapsed_secs(),
            "(c) {} vs (a) {}",
            c.elapsed_secs(),
            a.elapsed_secs()
        );
        assert!(
            c.elapsed_secs() <= b.elapsed_secs() * 1.02,
            "(c) {} vs (b) {}",
            c.elapsed_secs(),
            b.elapsed_secs()
        );
        // The unified queue's host does 100us of its own work and still
        // blocks less than the synchronous style.
        assert!(host_blocked_secs(&c) < host_blocked_secs(&a));
    }

    #[test]
    fn all_styles_compute_the_same_thing() {
        // The data assertions live inside the kernels; full backing makes
        // them real.
        for style in [
            Style::Synchronous,
            Style::AsyncWithWaits,
            Style::UnifiedQueue,
        ] {
            let opts = match style {
                Style::UnifiedQueue => RuntimeOptions::impacc(),
                _ => RuntimeOptions::baseline(),
            };
            Launch::new(spec(), opts)
                .run(move |tc| exchange(tc, style))
                .unwrap();
        }
    }
}
