//! Figure 8 — NUMA-friendly task-CPU pinning: HtoD and DtoH accelerator
//! copy bandwidth with the task pinned on the near vs the far socket, on
//! PSG (CUDA GPUs) and Beacon (OpenCL MICs), 64 B .. 1 GiB.
//!
//! Paper's result: NUMA-friendly pinning delivers up to 3.5× higher
//! bandwidth; small transfers are latency-bound so the gap closes.

use std::sync::Arc;

use impacc_acc::Device;
use impacc_machine::{presets, ClusterResources, HdDir, MachineSpec};
use impacc_mem::{AddressSpace, MemSpace};
use impacc_vtime::Sim;

use crate::util::{fmt_bytes, gbps, quick, size_sweep, Table};

/// One measured copy: time for a single transfer of `bytes`.
fn copy_time(spec: MachineSpec, dir: HdDir, far: bool, bytes: u64) -> f64 {
    let out = crate::util::probe::<f64>();
    let out2 = out.clone();
    let mut sim = Sim::new();
    sim.spawn("task", move |ctx| {
        let res = Arc::new(ClusterResources::new(Arc::new(spec)));
        let space = Arc::new(AddressSpace::new(1 << 42, Some(4096)));
        let dev = Device::new(0, 0, res, space.clone());
        let host = space.alloc(MemSpace::Host, bytes).expect("host alloc");
        let d = dev.alloc(bytes).expect("device alloc");
        let t0 = ctx.now();
        dev.perform_copy(
            ctx,
            dir,
            far,
            true, // bandwidth microbenchmarks use page-locked memory
            (&host.backing, 0),
            (&d.region.backing, 0),
            bytes,
        );
        *out2.lock() = Some(ctx.now().since(t0).as_secs_f64());
    });
    sim.run().expect("fig8 run");
    let v = *out.lock();
    v.expect("probe filled")
}

/// Run the Figure 8 sweep; returns the rendered report.
pub fn run() -> String {
    let max = if quick() { 1 << 24 } else { 1 << 30 };
    let sizes = size_sweep(64, max, 4);
    let mut out = String::new();
    out.push_str("Figure 8: NUMA-friendly task-CPU pinning (copy bandwidth, GB/s)\n\n");
    for (name, spec_fn) in [
        ("PSG (CUDA GPU)", presets::psg as fn() -> MachineSpec),
        ("Beacon (OpenCL MIC)", || presets::beacon(1)),
    ] {
        for dir in [HdDir::HtoD, HdDir::DtoH] {
            let mut t = Table::new(&["size", "near GB/s", "far GB/s", "near/far"]);
            let mut peak_ratio: f64 = 0.0;
            for &s in &sizes {
                let near = copy_time(spec_fn(), dir, false, s);
                let far = copy_time(spec_fn(), dir, true, s);
                let ratio = far / near;
                peak_ratio = peak_ratio.max(ratio);
                t.row(vec![
                    fmt_bytes(s),
                    format!("{:.2}", gbps(s, near)),
                    format!("{:.2}", gbps(s, far)),
                    format!("{ratio:.2}x"),
                ]);
            }
            out.push_str(&format!("{name}, {dir:?}:\n"));
            out.push_str(&t.render());
            out.push_str(&format!("  peak near/far advantage: {peak_ratio:.2}x\n\n"));
        }
    }
    out.push_str("paper: NUMA-friendly delivers up to 3.5x higher bandwidth; ~1x at 64B.\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn far_penalty_grows_with_size_on_psg() {
        let small_ratio = copy_time(presets::psg(), HdDir::HtoD, true, 64)
            / copy_time(presets::psg(), HdDir::HtoD, false, 64);
        let big_ratio = copy_time(presets::psg(), HdDir::HtoD, true, 1 << 28)
            / copy_time(presets::psg(), HdDir::HtoD, false, 1 << 28);
        assert!(small_ratio < 1.3, "latency-bound: {small_ratio}");
        assert!(
            big_ratio > 3.0 && big_ratio < 4.0,
            "bandwidth-bound: {big_ratio}"
        );
    }

    #[test]
    fn beacon_penalty_matches_its_numa_factor() {
        let r = copy_time(presets::beacon(1), HdDir::DtoH, true, 1 << 28)
            / copy_time(presets::beacon(1), HdDir::DtoH, false, 1 << 28);
        assert!(r > 2.0 && r < 3.0, "Beacon far factor is 2.5x: {r}");
    }
}
