//! Figure 9 — point-to-point communication bandwidth between two tasks,
//! IMPACC vs MPI+OpenACC: intra-node on PSG and Beacon (panels a–f) and
//! internode on Titan (panels g–i), for host-to-host, host-to-device and
//! device-to-device transfers.
//!
//! Paper's results: IMPACC wins everywhere there is a copy to eliminate —
//! ≈2× on intra-node HtoH (one fused copy vs two + IPC), ≈8× on PSG
//! intra-node DtoD (direct PCIe peer copy vs DtoH+HtoH+HtoD), and on
//! Titan internode via GPUDirect RDMA.

use impacc_core::{MpiOpts, RuntimeOptions, TaskCtx};
use impacc_machine::{presets, MachineSpec};

use crate::util::{fmt_bytes, gbps, probe, quick, size_sweep, Table};

/// Transfer endpoint kinds for one panel.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Kind {
    /// Host buffer to host buffer.
    HtoH,
    /// Host send buffer into a device receive buffer.
    HtoD,
    /// Device buffer to device buffer.
    DtoD,
}

const REPS: u64 = 4;

/// Measure the per-message transfer time between ranks 0 and 1.
pub fn measure(spec: MachineSpec, options: RuntimeOptions, kind: Kind, bytes: u64) -> f64 {
    let out = probe::<f64>();
    let out2 = out.clone();
    let impacc = options.is_impacc();
    let app = move |tc: &TaskCtx| {
        if tc.rank() >= 2 {
            return;
        }
        let buf = tc.malloc(bytes);
        let send_dev = kind == Kind::DtoD;
        let recv_dev = kind != Kind::HtoH;
        if (tc.rank() == 0 && send_dev) || (tc.rank() == 1 && recv_dev) {
            tc.acc_create(&buf);
        }
        tc.mpi_barrier();
        let t0 = tc.ctx().now();
        for i in 0..REPS {
            let tag = i as i32;
            if tc.rank() == 0 {
                if impacc {
                    let o = if send_dev {
                        MpiOpts::device()
                    } else {
                        MpiOpts::host()
                    };
                    tc.mpi_send(&buf, 0, bytes, 1, tag, o);
                } else {
                    // Baseline: stage the device buffer through the host.
                    if send_dev {
                        tc.acc_update_host(&buf, 0, bytes, None);
                    }
                    tc.mpi_send(&buf, 0, bytes, 1, tag, MpiOpts::host());
                }
            } else {
                if impacc {
                    let o = if recv_dev {
                        MpiOpts::device()
                    } else {
                        MpiOpts::host()
                    };
                    tc.mpi_recv(&buf, 0, bytes, 0, tag, o);
                } else {
                    tc.mpi_recv(&buf, 0, bytes, 0, tag, MpiOpts::host());
                    if recv_dev {
                        tc.acc_update_device(&buf, 0, bytes, None);
                    }
                }
            }
        }
        if tc.rank() == 1 {
            let dt = tc.ctx().now().since(t0).as_secs_f64() / REPS as f64;
            *out2.lock() = Some(dt);
        }
    };
    impacc_apps::launch_app(spec, options, Some(4096), app).expect("fig9 run");
    let v = *out.lock();
    v.expect("probe filled")
}

fn two_device_node(mut spec: MachineSpec) -> MachineSpec {
    for n in spec.nodes.iter_mut() {
        n.devices.truncate(2);
    }
    spec
}

/// One Fig 9 panel: label, machine under test, and transfer direction.
type Panel = (&'static str, fn() -> MachineSpec, Kind);

/// Run the Figure 9 sweep; returns the rendered report.
pub fn run() -> String {
    let max = if quick() { 1 << 22 } else { 1 << 28 };
    let sizes = size_sweep(1024, max, 4);
    let mut out = String::new();
    out.push_str("Figure 9: point-to-point communication bandwidth (GB/s)\n\n");
    let panels: Vec<Panel> = vec![
        (
            "(a) PSG intra-node HtoH",
            || two_device_node(presets::psg()),
            Kind::HtoH,
        ),
        (
            "(b) PSG intra-node HtoD",
            || two_device_node(presets::psg()),
            Kind::HtoD,
        ),
        (
            "(c) PSG intra-node DtoD",
            || two_device_node(presets::psg()),
            Kind::DtoD,
        ),
        (
            "(d) Beacon intra-node HtoH",
            || two_device_node(presets::beacon(1)),
            Kind::HtoH,
        ),
        (
            "(e) Beacon intra-node HtoD",
            || two_device_node(presets::beacon(1)),
            Kind::HtoD,
        ),
        (
            "(f) Beacon intra-node DtoD",
            || two_device_node(presets::beacon(1)),
            Kind::DtoD,
        ),
        ("(g) Titan internode HtoH", || presets::titan(2), Kind::HtoH),
        ("(h) Titan internode HtoD", || presets::titan(2), Kind::HtoD),
        ("(i) Titan internode DtoD", || presets::titan(2), Kind::DtoD),
    ];
    for (name, spec_fn, kind) in panels {
        let mut t = Table::new(&["size", "IMPACC GB/s", "MPI+X GB/s", "speedup"]);
        let mut peak: f64 = 0.0;
        for &s in &sizes {
            let i = measure(spec_fn(), RuntimeOptions::impacc(), kind, s);
            let b = measure(spec_fn(), RuntimeOptions::baseline(), kind, s);
            let speedup = b / i;
            peak = peak.max(speedup);
            t.row(vec![
                fmt_bytes(s),
                format!("{:.2}", gbps(s, i)),
                format!("{:.2}", gbps(s, b)),
                format!("{speedup:.2}x"),
            ]);
        }
        out.push_str(&format!("{name}:\n{}", t.render()));
        out.push_str(&format!("  peak IMPACC advantage: {peak:.2}x\n\n"));
    }
    out.push_str(
        "paper: ~2x intra-node HtoH, ~8x PSG intra-node DtoD (direct PCIe peer copy),\n\
         higher Titan internode bandwidth via GPUDirect RDMA.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn psg_dtod_advantage_is_large() {
        let spec = || two_device_node(presets::psg());
        let i = measure(spec(), RuntimeOptions::impacc(), Kind::DtoD, 1 << 26);
        let b = measure(spec(), RuntimeOptions::baseline(), Kind::DtoD, 1 << 26);
        let speedup = b / i;
        assert!(
            speedup > 4.0 && speedup < 12.0,
            "paper reports ~8x, got {speedup:.2}x"
        );
    }

    #[test]
    fn intra_node_htoh_advantage_is_about_2x() {
        let spec = || two_device_node(presets::psg());
        let i = measure(spec(), RuntimeOptions::impacc(), Kind::HtoH, 1 << 26);
        let b = measure(spec(), RuntimeOptions::baseline(), Kind::HtoH, 1 << 26);
        let speedup = b / i;
        assert!(
            speedup > 1.5 && speedup < 3.0,
            "one copy vs two: {speedup:.2}x"
        );
    }

    #[test]
    fn titan_dtod_uses_rdma() {
        let i = measure(
            presets::titan(2),
            RuntimeOptions::impacc(),
            Kind::DtoD,
            1 << 26,
        );
        let b = measure(
            presets::titan(2),
            RuntimeOptions::baseline(),
            Kind::DtoD,
            1 << 26,
        );
        assert!(
            b / i > 1.2,
            "RDMA skips two PCIe staging hops: {:.2}",
            b / i
        );
    }
}
