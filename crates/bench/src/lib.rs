//! # impacc-bench — the paper's evaluation, reproduced
//!
//! One module per table/figure of §4; each exposes a `run()` that returns
//! the rendered report, and a thin binary under `src/bin/` prints it.
//! `cargo run -p impacc-bench --release --bin all_figures` regenerates
//! everything (EXPERIMENTS.md records the output).
//!
//! Environment switches: `IMPACC_BENCH_QUICK=1` trims sweeps;
//! `IMPACC_BENCH_FULL=1` unlocks the 4096/8192-task Titan points.

#![warn(missing_docs)]

pub mod ablations;
pub mod array;
pub mod chaos;
pub mod coll;
pub mod dsl;
pub mod fig10;
pub mod fig12;
pub mod fig13;
pub mod fig15;
pub mod fig5;
pub mod fig8;
pub mod fig9;
pub mod prof;
pub mod serve;
pub mod specs;
pub mod speed;
pub mod util;

/// Shared entry point for the sweep binaries (`bench_speed`, `bench_chaos`,
/// `bench_coll`, `bench_serve`): one place owning the argument parse and
/// the print-plus-`BENCH_<name>.json` emit boilerplate the bins used to
/// duplicate.
///
/// * `--quick` is an alias for `IMPACC_BENCH_QUICK=1` (trim sweeps);
/// * `--smoke` dispatches the binary's fixed CI check instead of the
///   sweep, when the binary has one (the check panics — nonzero exit — on
///   any violation and writes no artifact);
/// * anything else is a readable error and a nonzero exit.
pub fn bench_bin(name: &str, run: fn() -> String, smoke: Option<fn() -> String>) {
    let mut want_smoke = false;
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--quick" => std::env::set_var("IMPACC_BENCH_QUICK", "1"),
            "--smoke" if smoke.is_some() => want_smoke = true,
            other => {
                let extra = if smoke.is_some() { " [--smoke]" } else { "" };
                eprintln!("bench_{name}: unknown argument {other:?}; usage: bench_{name} [--quick]{extra}");
                std::process::exit(2);
            }
        }
    }
    if want_smoke {
        print!("{}", smoke.expect("guarded above")());
        return;
    }
    util::bench_main(name, run);
}
