//! # impacc-bench — the paper's evaluation, reproduced
//!
//! One module per table/figure of §4; each exposes a `run()` that returns
//! the rendered report, and a thin binary under `src/bin/` prints it.
//! `cargo run -p impacc-bench --release --bin all_figures` regenerates
//! everything (EXPERIMENTS.md records the output).
//!
//! Environment switches: `IMPACC_BENCH_QUICK=1` trims sweeps;
//! `IMPACC_BENCH_FULL=1` unlocks the 4096/8192-task Titan points.

#![warn(missing_docs)]

pub mod ablations;
pub mod chaos;
pub mod coll;
pub mod fig10;
pub mod fig12;
pub mod fig13;
pub mod fig15;
pub mod fig5;
pub mod fig8;
pub mod fig9;
pub mod prof;
pub mod specs;
pub mod speed;
pub mod util;
