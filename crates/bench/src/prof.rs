//! Critical-path profiling plumbing shared by the figure binaries and the
//! standalone `prof` bin.
//!
//! Any of `fig5`, `fig12`, `fig14` re-run one representative configuration
//! with a span/edge recorder attached when `--critical-path` is passed (or
//! `IMPACC_PROF=1` is set), feed the trace to [`impacc_prof::analyze`],
//! print the text report, and persist a deterministic `PROF_<name>.json`
//! next to the `BENCH_*.json` artifacts.

use std::path::PathBuf;

use impacc_apps::{run_ep_sink, run_jacobi_sink, EpClass, EpParams, JacobiParams};
use impacc_core::RuntimeOptions;
use impacc_obs::{chrome, Recorder};
use impacc_prof::Report;

use crate::specs::psg_tasks;
use crate::util::quick;

/// Was a critical-path profile requested? True when the binary got a
/// `--critical-path` flag or `IMPACC_PROF=1` is set.
pub fn requested() -> bool {
    std::env::args().skip(1).any(|a| a == "--critical-path")
        || impacc_core::config::prof_requested()
}

/// Where `PROF_<name>.json` is written: `$IMPACC_BENCH_DIR` when set, else
/// the current directory (mirrors `BenchReport::path`).
pub fn prof_path(name: &str) -> PathBuf {
    impacc_core::config::bench_dir().join(format!("PROF_{name}.json"))
}

/// Analyze a recorded run, persist `PROF_<name>.json` (and optionally a
/// critical-path-highlighted Chrome trace), and return the text report
/// plus the analysis itself.
pub fn report_and_persist(name: &str, rec: &Recorder, trace: Option<&str>) -> (String, Report) {
    let spans = rec.spans();
    let report = impacc_prof::analyze(&spans, &rec.edges());
    debug_assert_eq!(
        report.blame_total(),
        report.end_ps,
        "critical-path blame must tile the run exactly"
    );
    let mut out = report.render_text(name);
    let path = prof_path(name);
    match std::fs::write(&path, report.to_json(name)) {
        Ok(()) => out.push_str(&format!("\nprofile written to {}\n", path.display())),
        Err(e) => out.push_str(&format!(
            "\nwarning: could not write {}: {e}\n",
            path.display()
        )),
    }
    if let Some(tpath) = trace {
        let crit: Vec<chrome::CritSeg> = report
            .path
            .iter()
            .map(|p| chrome::CritSeg {
                actor: p.actor.clone(),
                kind: p.kind.clone(),
                t0: p.t0,
                t1: p.t1,
            })
            .collect();
        match chrome::write_trace_with_critical_path(std::path::Path::new(tpath), &spans, &crit) {
            Ok(()) => out.push_str(&format!(
                "critical-path Chrome trace written to {tpath}; open via ui.perfetto.dev\n"
            )),
            Err(e) => out.push_str(&format!("warning: could not write {tpath}: {e}\n")),
        }
    }
    (out, report)
}

/// Record one unified-queue fig 5 exchange and return its recorder.
pub fn record_fig5() -> Recorder {
    let rec = Recorder::new();
    crate::fig5::run_style_recorded(crate::fig5::Style::UnifiedQueue, &rec);
    rec
}

/// Record one fig 12 EP run (class A, 4 PSG tasks — pure compute plus a
/// single allreduce) and return its recorder.
pub fn record_fig12() -> Recorder {
    let rec = Recorder::new();
    run_ep_sink(
        psg_tasks(4),
        RuntimeOptions::impacc(),
        Some(rec.sink()),
        EpParams {
            total_pairs: EpClass::A.pairs(),
            sample_pairs: 1 << 10,
        },
    )
    .expect("ep run");
    rec
}

/// Record one fig 14 Jacobi run (IMPACC, 4 PSG tasks) and return its
/// recorder. This is the DtoD-heavy workload the what-if projections are
/// most interesting on.
pub fn record_fig14() -> Recorder {
    let rec = Recorder::new();
    let n = if quick() { 512 } else { 2048 };
    run_jacobi_sink(
        psg_tasks(4),
        RuntimeOptions::impacc(),
        Some(4096),
        Some(rec.sink()),
        JacobiParams {
            n,
            iters: 10,
            verify: false,
        },
    )
    .expect("jacobi run");
    rec
}

/// Render the ranked slack view of a report (the `prof --slack` output):
/// top off-path segments by how much they could grow before joining the
/// critical path.
pub fn render_slack(name: &str, r: &Report) -> String {
    let us = |ps: u64| ps as f64 / 1e6;
    let mut out = format!(
        "slack: {name} — top {} off-path segments by grow-room before joining \
         the critical path\n",
        r.slack.len()
    );
    if r.slack.is_empty() {
        out.push_str("  (none: every work segment sits on the critical path)\n");
    }
    for s in &r.slack {
        out.push_str(&format!(
            "  [{:>12.3} .. {:>12.3}] us  {:<12} on {:<16} slack {:>12.3} us\n",
            us(s.t0.0),
            us(s.t1.0),
            s.kind,
            s.actor,
            us(s.slack_ps)
        ));
    }
    out
}

/// Profile the named figure workload; returns the text report section, or
/// a readable error for an unknown workload name (callers exit nonzero).
/// `trace` optionally writes a critical-path-highlighted Chrome trace;
/// `slack` selects the ranked off-path slack view instead of the full
/// blame report.
pub fn profile_figure(name: &str, trace: Option<&str>, slack: bool) -> Result<String, String> {
    let rec = match name {
        "fig5" => record_fig5(),
        "fig12" => record_fig12(),
        "fig14" => record_fig14(),
        other => {
            return Err(format!(
                "unknown profile workload {other:?}; available: fig5, fig12, fig14"
            ))
        }
    };
    let (out, report) = report_and_persist(name, &rec, trace);
    Ok(if slack {
        render_slack(name, &report)
    } else {
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use impacc_obs::EventKind;

    #[test]
    fn fig14_profile_blames_dtod_and_projects_improvement() {
        let rec = record_fig14();
        let r = impacc_prof::analyze(&rec.spans(), &rec.edges());
        assert!(r.end_ps > 0);
        assert_eq!(r.blame_total(), r.end_ps, "blame tiles the run");
        // Jacobi halos ride direct DtoD copies under IMPACC, so the
        // zero-cost-DtoD what-if must predict a faster run (the measured
        // fig 14 direction).
        let proj = r.what_if["zero_cost_dtod"];
        assert!(
            proj < r.end_ps,
            "zero-DtoD projection {proj} should beat measured {}",
            r.end_ps
        );
        // Edges were recorded: wakes at minimum, plus the fused-message
        // machinery.
        assert!(r.edges > 0, "causal edges must be recorded");
    }

    #[test]
    fn fig12_profile_agrees_with_measured_null_ablation() {
        // Fig 12's measured result: EP is pure compute and IMPACC ==
        // MPI+OpenACC ("nothing to optimize"). The single-trace what-if
        // must agree in direction: removing DtoD copies from the critical
        // path projects (essentially) no speedup.
        let rec = record_fig12();
        let r = impacc_prof::analyze(&rec.spans(), &rec.edges());
        assert!(r.end_ps > 0);
        assert_eq!(r.blame_total(), r.end_ps);
        let proj = r.what_if["zero_cost_dtod"];
        let delta = (r.end_ps - proj) as f64 / r.end_ps as f64;
        assert!(
            delta < 0.05,
            "EP projection should be ~null, got {:.1}% speedup",
            delta * 100.0
        );
        // And compute (kernel + untracked host work) dominates the path.
        let compute = r.blame_by_kind.get("kernel").copied().unwrap_or(0)
            + r.blame_by_kind
                .get(impacc_prof::COMPUTE)
                .copied()
                .unwrap_or(0);
        assert!(
            compute as f64 > 0.5 * r.end_ps as f64,
            "EP critical path should be compute-dominated"
        );
    }

    #[test]
    fn fig5_profile_covers_the_exchange() {
        let rec = record_fig5();
        let r = impacc_prof::analyze(&rec.spans(), &rec.edges());
        assert_eq!(r.blame_total(), r.end_ps);
        assert!(r.end_ps > 0);
        // The exchange moves data: some copy kind must sit on the path.
        let any_copy = EventKind::ALL
            .iter()
            .filter(|k| k.is_copy())
            .any(|k| r.blame_by_kind.contains_key(k.label()));
        assert!(any_copy, "blame: {:?}", r.blame_by_kind);
    }
}
