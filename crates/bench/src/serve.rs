//! Serving-layer load test — N client threads × M jobs against the
//! impacc-serve engine, cold then resubmitted.
//!
//! The first pass is all cache misses (every job executes on the worker
//! pool); the second pass resubmits the identical job set and must be
//! served entirely from the content-addressed cache. The table reports
//! throughput and client-observed latency for both passes; the headline
//! numbers (`throughput_jobs_per_sec`, `p50_ms`, `p99_ms`,
//! `cache_hit_rate`) land as top-level `BENCH_serve.json` fields for the
//! CI gate.

use std::sync::Arc;
use std::time::Instant;

use impacc_serve::{JobSpec, Reject, Serve, ServeConfig};

use crate::util::{quick, report_extra, Table};

/// The job grid: `count` distinct allreduce points (seed × payload), so
/// every job is a genuine execution on the cold pass.
fn job_grid(count: usize) -> Vec<JobSpec> {
    (0..count)
        .map(|i| {
            JobSpec::parse(&format!(
                "workload=allreduce\ngpus=2\nelems={}\nrounds=1\nseed={}",
                16 << (i % 3),
                1000 + i
            ))
            .expect("grid job parses")
        })
        .collect()
}

struct PassStats {
    wall_ms: f64,
    throughput: f64,
    p50_ms: f64,
    p99_ms: f64,
    hit_rate: f64,
}

/// Drive `jobs` through `serve` from `clients` threads; collect
/// client-observed latency (submit → result) and the pass hit rate.
fn drive(serve: &Serve, jobs: &[JobSpec], clients: usize) -> PassStats {
    let before = serve.status();
    let start = Instant::now();
    let latencies: Vec<f64> = std::thread::scope(|s| {
        let chunks: Vec<&[JobSpec]> = jobs.chunks(jobs.len().div_ceil(clients)).collect();
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                s.spawn(move || {
                    let mut lats = Vec::with_capacity(chunk.len());
                    for job in chunk {
                        let t0 = Instant::now();
                        let ticket = loop {
                            match serve.submit(job.clone()) {
                                Ok(t) => break t,
                                Err(Reject::QueueFull { .. }) => std::thread::yield_now(),
                                Err(e) => panic!("unexpected reject: {e}"),
                            }
                        };
                        let done = ticket.wait();
                        assert!(done.is_ok(), "job failed: {:?}", done.error);
                        lats.push(t0.elapsed().as_secs_f64() * 1e3);
                    }
                    lats
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let after = serve.status();
    let submitted = (after.admitted - before.admitted) as f64;
    let hits = (after.cache_hits - before.cache_hits) as f64;
    let mut sorted = latencies;
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let pct = |p: f64| sorted[((sorted.len() - 1) as f64 * p) as usize];
    PassStats {
        wall_ms,
        throughput: submitted / (wall_ms / 1e3),
        p50_ms: pct(0.50),
        p99_ms: pct(0.99),
        hit_rate: hits / submitted,
    }
}

/// The two-pass load test; returns the rendered report.
pub fn run() -> String {
    let (clients, count) = if quick() { (2, 12) } else { (4, 48) };
    let jobs = job_grid(count);
    let serve = Serve::start(ServeConfig {
        workers: 4,
        queue_cap: 256,
        ..ServeConfig::default()
    });
    let mut out = format!(
        "Serving layer: {clients} clients x {} jobs, 4 workers, cold then resubmit\n\
         (latency is client-observed submit->result wall time)\n\n",
        count / clients
    );
    let mut t = Table::new(&["pass", "jobs", "wall", "jobs/sec", "p50", "p99", "hit rate"]);
    let mut row = |label: &str, st: &PassStats| {
        t.row(vec![
            label.to_string(),
            count.to_string(),
            format!("{:.1}ms", st.wall_ms),
            format!("{:.0}", st.throughput),
            format!("{:.2}ms", st.p50_ms),
            format!("{:.2}ms", st.p99_ms),
            format!("{:.0}%", st.hit_rate * 100.0),
        ]);
    };
    let cold = drive(&serve, &jobs, clients);
    row("cold", &cold);
    let warm = drive(&serve, &jobs, clients);
    row("resubmit", &warm);
    assert!(
        (warm.hit_rate - 1.0).abs() < f64::EPSILON,
        "resubmit pass must be 100% cache hits, got {:.0}%",
        warm.hit_rate * 100.0
    );
    let st = serve.status();
    assert_eq!(
        st.jobs_done as usize, count,
        "resubmit pass must not re-execute anything"
    );
    out.push_str(&t.render());
    out.push_str(
        "\nthe resubmit pass answers every request from the content-addressed\n\
         cache: zero re-executions, bit-identical bytes, and latency that is\n\
         pure lookup cost instead of simulation cost.\n",
    );
    // Headline fields for the BENCH_serve.json CI gate: cold-pass
    // throughput/latency (the expensive path) and the warm hit rate.
    report_extra("throughput_jobs_per_sec", cold.throughput);
    report_extra("p50_ms", cold.p50_ms);
    report_extra("p99_ms", cold.p99_ms);
    report_extra("cache_hit_rate", warm.hit_rate);
    out
}

/// CI smoke: backpressure rejects with a reason, and a resubmitted job
/// set is served 100% from cache with byte-identical results. Panics
/// (nonzero exit) on any violation.
pub fn smoke() -> String {
    let mut out = String::from("serve smoke: admission control + cache determinism\n");

    // 1. A zero-capacity queue must reject with QueueFull, not block.
    let tiny = Serve::start(ServeConfig {
        workers: 1,
        queue_cap: 0,
        ..ServeConfig::default()
    });
    match tiny.submit(job_grid(1).pop().expect("one job")) {
        Err(Reject::QueueFull { depth, cap }) => {
            out.push_str(&format!("  queue full rejected at depth {depth}/{cap}\n"));
        }
        other => panic!("expected QueueFull from a zero-capacity queue, got {other:?}"),
    }

    // 2. Cold pass executes, resubmit pass is all hits, bytes identical.
    let serve = Serve::start(ServeConfig {
        workers: 2,
        queue_cap: 64,
        ..ServeConfig::default()
    });
    let jobs = job_grid(6);
    let cold: Vec<Arc<String>> = jobs
        .iter()
        .map(|j| {
            let done = serve.submit(j.clone()).expect("admit").wait();
            assert!(!done.cache_hit, "cold pass must execute");
            done.result.expect("cold result")
        })
        .collect();
    let executed = serve.status().jobs_done;
    for (j, first) in jobs.iter().zip(&cold) {
        let done = serve.submit(j.clone()).expect("admit").wait();
        assert!(done.cache_hit, "resubmit must hit the cache");
        assert_eq!(
            **done.result.expect("warm result"),
            ***first,
            "cached bytes must be identical"
        );
    }
    let st = serve.status();
    assert_eq!(st.jobs_done, executed, "resubmit must not re-execute");
    assert_eq!(st.cache_hits as usize, jobs.len());
    out.push_str(&format!(
        "  {} jobs executed once, {} resubmissions all cache hits, bytes identical\n",
        executed, st.cache_hits
    ));
    out.push_str("serve smoke: OK\n");
    out
}
