//! Cluster-sizing helpers: build machine specs that host exactly `t` tasks.

use impacc_machine::{presets, MachineSpec};

/// PSG sized for `t ≤ 8` tasks (one node, `t` GPUs).
pub fn psg_tasks(t: usize) -> MachineSpec {
    assert!((1..=8).contains(&t));
    let mut spec = presets::psg();
    spec.nodes[0].devices.truncate(t);
    spec
}

/// Beacon sized for `t` tasks (4 MICs per node; the last node is trimmed).
pub fn beacon_tasks(t: usize) -> MachineSpec {
    assert!(t >= 1);
    let nodes = t.div_ceil(4);
    let mut spec = presets::beacon(nodes);
    let last = t - (nodes - 1) * 4;
    spec.nodes[nodes - 1].devices.truncate(last);
    spec
}

/// Titan sized for `t` tasks (one K20x per node).
pub fn titan_tasks(t: usize) -> MachineSpec {
    presets::titan(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use impacc_core::{Launch, RuntimeOptions};
    use impacc_machine::DeviceTypeMask;

    fn task_count(spec: MachineSpec) -> usize {
        Launch::plan(&spec, DeviceTypeMask::DEFAULT, true).1.len()
    }

    #[test]
    fn specs_host_exact_task_counts() {
        assert_eq!(task_count(psg_tasks(1)), 1);
        assert_eq!(task_count(psg_tasks(8)), 8);
        assert_eq!(task_count(beacon_tasks(1)), 1);
        assert_eq!(task_count(beacon_tasks(6)), 6);
        assert_eq!(task_count(beacon_tasks(128)), 128);
        assert_eq!(task_count(titan_tasks(27)), 27);
        let _ = RuntimeOptions::impacc();
    }
}
