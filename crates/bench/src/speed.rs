//! Engine speed sweep: wall-clock throughput of the DES scheduler itself.
//!
//! Not a paper figure — this tracks the *simulator's* performance from PR
//! to PR so the Titan-scale experiments (Figs 10/12/13, 8,192 tasks) stay
//! runnable. Two advance patterns bracket the scheduler's behaviour:
//!
//! * **phased**: actor `i` first advances into its own disjoint time
//!   window, then runs its advance loop alone at the front of the event
//!   heap — every advance finds no earlier event, so the baton-handoff
//!   elision fast path removes nearly all park/unpark round-trips (this is
//!   the compute-loop shape of a real rank between MPI calls);
//! * **uniform** strides (everyone advances 1 ns): every advance ties with
//!   the rest of the fleet, FIFO ordering forces a real handoff each time,
//!   and elision never fires — the worst case, and the proof that the fast
//!   path is not taken when ordering matters.
//!
//! Each pattern runs with elision on and off over a fixed total event
//! budget, so the elide-on/elide-off wall-clock ratio is the headline.

use std::time::Instant;

use impacc_vtime::{Sim, SimConfig, SimDur};

use crate::util::{full, quick, Table};

/// One measured point of the sweep.
#[derive(Clone, Debug)]
pub struct SpeedPoint {
    /// Number of actors (OS threads).
    pub actors: usize,
    /// Advance pattern ("phased" or "uniform").
    pub pattern: &'static str,
    /// Was handoff elision enabled?
    pub elide: bool,
    /// Wall-clock of `Sim::run`, milliseconds.
    pub wall_ms: f64,
    /// Scheduler events dispatched.
    pub events: u64,
    /// Handoffs elided (0 when disabled or when every advance ties).
    pub elided: u64,
}

impl SpeedPoint {
    /// Events per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        self.events as f64 / (self.wall_ms / 1e3)
    }
}

/// Run one configuration: `actors` threads each advancing `iters` times.
pub fn measure(actors: usize, iters: u64, phased: bool, elide: bool) -> SpeedPoint {
    let mut sim = Sim::with_config(SimConfig {
        stack_size: 128 * 1024, // thousands of threads at the top end
        elide_handoff: elide,
        ..SimConfig::default()
    });
    for i in 0..actors {
        // Phased: actor i jumps into its own time window [i*(iters+2), ..)
        // first, so its 1 ns advance loop never meets another actor's
        // event and the fast path can fire on every iteration.
        let offset = if phased { i as u64 * (iters + 2) } else { 0 };
        sim.spawn(format!("t{i}"), move |ctx| {
            if offset > 0 {
                ctx.advance(SimDur::from_ns(offset), "phase");
            }
            for _ in 0..iters {
                ctx.advance(SimDur::from_ns(1), "w");
            }
        });
    }
    let t0 = Instant::now();
    let report = sim.run().expect("speed workload must not fail");
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    SpeedPoint {
        actors,
        pattern: if phased { "phased" } else { "uniform" },
        elide,
        wall_ms,
        events: report.events,
        elided: report.handoffs_elided,
    }
}

/// Actor counts for the sweep (2 → 8,192; trimmed in quick mode, the
/// largest point gated behind `IMPACC_BENCH_FULL=1`).
pub fn actor_counts() -> Vec<usize> {
    if quick() {
        vec![2, 8, 32, 128]
    } else if full() {
        vec![2, 8, 32, 128, 512, 2048, 8192]
    } else {
        vec![2, 8, 32, 128, 512, 2048]
    }
}

/// Total scheduler events per measured point (shared across the fleet so
/// big-actor points don't take proportionally longer).
fn event_budget() -> u64 {
    if quick() {
        32_000
    } else {
        256_000
    }
}

/// Run the sweep; returns the rendered report.
pub fn run() -> String {
    let mut out = String::new();
    out.push_str("Engine speed: wall-clock throughput of the DES scheduler\n\n");
    let budget = event_budget();
    let mut t = Table::new(&[
        "actors",
        "pattern",
        "elide",
        "wall ms",
        "events/sec",
        "elided %",
    ]);
    let mut headline: Vec<(usize, f64)> = Vec::new();
    for &actors in &actor_counts() {
        let iters = (budget / actors as u64).max(4);
        for phased in [true, false] {
            let mut pair = [0.0f64; 2];
            for elide in [true, false] {
                let p = measure(actors, iters, phased, elide);
                pair[if elide { 0 } else { 1 }] = p.wall_ms;
                t.row(vec![
                    p.actors.to_string(),
                    p.pattern.to_string(),
                    if p.elide { "on" } else { "off" }.to_string(),
                    format!("{:.2}", p.wall_ms),
                    format!("{:.0}", p.events_per_sec()),
                    format!("{:.1}", 100.0 * p.elided as f64 / p.events as f64),
                ]);
            }
            if phased {
                headline.push((actors, pair[1] / pair[0]));
            }
        }
    }
    out.push_str(&t.render());
    out.push_str("\nphased elide-off/elide-on wall-clock ratio:\n");
    for (actors, ratio) in headline {
        out.push_str(&format!("  {actors:>5} actors: {ratio:.2}x\n"));
    }
    out.push_str(
        "\nphased actors run their advance loops alone at the heap front, so\n\
         elision skips the park/unpark round-trip on nearly every advance\n\
         (the compute-loop shape of a real rank); uniform strides tie on\n\
         every advance, forcing the slow path — elision never fires there,\n\
         preserving FIFO determinism.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phased_pattern_elides_and_uniform_does_not() {
        let phased = measure(4, 200, true, true);
        assert!(
            phased.elided > 4 * 200 / 2,
            "disjoint windows must hit the fast path on most advances \
             (got {} of {})",
            phased.elided,
            phased.events
        );
        let uni = measure(4, 200, false, true);
        assert_eq!(uni.elided, 0, "uniform ties must never elide");
        let off = measure(4, 200, true, false);
        assert_eq!(off.elided, 0);
        assert_eq!(off.events, phased.events, "elision must not change events");
    }
}
