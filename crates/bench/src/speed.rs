//! Engine speed sweep: wall-clock throughput of the DES scheduler itself.
//!
//! Not a paper figure — this tracks the *simulator's* performance from PR
//! to PR so the Titan-scale experiments (Figs 10/12/13, 8,192 tasks) stay
//! runnable. Two advance patterns bracket the serial scheduler's
//! behaviour:
//!
//! * **phased**: actor `i` first advances into its own disjoint time
//!   window, then runs its advance loop alone at the front of the event
//!   heap — every advance finds no earlier event, so the baton-handoff
//!   elision fast path removes nearly all park/unpark round-trips (this is
//!   the compute-loop shape of a real rank between MPI calls);
//! * **uniform** strides (everyone advances 1 ns): every advance ties with
//!   the rest of the fleet, FIFO ordering forces a real handoff each time,
//!   and elision never fires — the worst case, and the proof that the fast
//!   path is not taken when ordering matters.
//!
//! Each pattern runs with elision on and off over a fixed total event
//! budget, so the elide-on/elide-off wall-clock ratio is one headline.
//!
//! The **cores sweep** attacks the case elision cannot touch: uniform
//! lockstep on the conservative parallel engine (each actor its own
//! partition, a fixed lookahead horizon). Inside a window an actor
//! advances lock-free to the horizon, so the per-step park/unpark that
//! dominates serial lockstep collapses to one grant per partition per
//! window — that, not host core count, is where the speedup comes from,
//! and results stay bit-identical (`parallel_determinism`).

use std::sync::Arc;
use std::time::Instant;

use impacc_flight::FlightRecorder;
use impacc_vtime::{Sim, SimConfig, SimDur, SpanSink};

use crate::util::{full, quick, report_extra, Table};

/// Horizon for conservative lockstep points: strides are 1 ns, so a
/// 256 ns lookahead lets every partition batch ~256 advances per window
/// grant instead of parking on each one.
fn lockstep_lookahead() -> SimDur {
    SimDur::from_ns(256)
}

/// One measured point of the sweep.
#[derive(Clone, Debug)]
pub struct SpeedPoint {
    /// Number of actors (OS threads).
    pub actors: usize,
    /// Advance pattern ("phased" or "uniform").
    pub pattern: &'static str,
    /// Was handoff elision enabled?
    pub elide: bool,
    /// Conservative scheduler workers (0 = legacy serial engine).
    pub workers: usize,
    /// Wall-clock of `Sim::run`, milliseconds.
    pub wall_ms: f64,
    /// Scheduler events (dispatches plus in-window fast advances; equal
    /// across engines for the same workload).
    pub events: u64,
    /// Handoffs elided (0 when disabled or when every advance ties).
    pub elided: u64,
    /// Grants issued in windows that released ≥2 partitions (0 on the
    /// serial engine).
    pub parallel_advances: u64,
    /// Partitions left waiting at a closing horizon with work still
    /// queued (0 on the serial engine).
    pub horizon_stalls: u64,
}

impl SpeedPoint {
    /// Events per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        self.events as f64 / (self.wall_ms / 1e3)
    }
}

/// Run one configuration: `actors` threads each advancing `iters` times.
/// `workers` = 0 measures the legacy serial engine; > 0 the conservative
/// parallel engine with that many scheduler workers (each top-level actor
/// modelling one simulated node, i.e. its own partition).
pub fn measure(actors: usize, iters: u64, phased: bool, elide: bool, workers: usize) -> SpeedPoint {
    measure_sink(actors, iters, phased, elide, workers, None)
}

/// [`measure`] with an optional span sink attached — how the flight
/// overhead gate prices the always-on recorder against a bare engine.
pub fn measure_sink(
    actors: usize,
    iters: u64,
    phased: bool,
    elide: bool,
    workers: usize,
    sink: Option<Arc<dyn SpanSink>>,
) -> SpeedPoint {
    let mut sim = Sim::with_config(SimConfig {
        stack_size: 128 * 1024, // thousands of threads at the top end
        elide_handoff: elide,
        parallelism: workers,
        lookahead: if workers > 0 {
            lockstep_lookahead()
        } else {
            SimDur::ZERO
        },
        sink,
        ..SimConfig::default()
    });
    for i in 0..actors {
        // Phased: actor i jumps into its own time window [i*(iters+2), ..)
        // first, so its 1 ns advance loop never meets another actor's
        // event and the fast path can fire on every iteration.
        let offset = if phased { i as u64 * (iters + 2) } else { 0 };
        sim.spawn(format!("t{i}"), move |ctx| {
            if offset > 0 {
                ctx.advance(SimDur::from_ns(offset), "phase");
            }
            for _ in 0..iters {
                ctx.advance(SimDur::from_ns(1), "w");
            }
        });
    }
    let t0 = Instant::now();
    let report = sim.run().expect("speed workload must not fail");
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    SpeedPoint {
        actors,
        pattern: if phased { "phased" } else { "uniform" },
        elide,
        workers,
        wall_ms,
        events: report.events,
        elided: report.handoffs_elided,
        parallel_advances: report.parallel_advances,
        horizon_stalls: report.horizon_stalls,
    }
}

/// Actor counts for the sweep (2 → 8,192; trimmed in quick mode, the
/// largest point gated behind `IMPACC_BENCH_FULL=1`).
pub fn actor_counts() -> Vec<usize> {
    if quick() {
        vec![2, 8, 32, 128]
    } else if full() {
        vec![2, 8, 32, 128, 512, 2048, 8192]
    } else {
        vec![2, 8, 32, 128, 512, 2048]
    }
}

/// Total scheduler events per measured point (shared across the fleet so
/// big-actor points don't take proportionally longer).
fn event_budget() -> u64 {
    if quick() {
        32_000
    } else {
        256_000
    }
}

/// Worker counts for the conservative cores sweep (0 = serial baseline).
pub fn worker_counts() -> Vec<usize> {
    vec![0, 1, 2, 4, 8]
}

/// Run the sweep; returns the rendered report.
pub fn run() -> String {
    let mut out = String::new();
    out.push_str("Engine speed: wall-clock throughput of the DES scheduler\n\n");
    let budget = event_budget();
    let mut t = Table::new(&[
        "actors",
        "pattern",
        "elide",
        "wall ms",
        "events/sec",
        "elided %",
    ]);
    let mut headline: Vec<(usize, f64)> = Vec::new();
    for &actors in &actor_counts() {
        let iters = (budget / actors as u64).max(4);
        for phased in [true, false] {
            let mut pair = [0.0f64; 2];
            for elide in [true, false] {
                let p = measure(actors, iters, phased, elide, 0);
                pair[if elide { 0 } else { 1 }] = p.wall_ms;
                t.row(vec![
                    p.actors.to_string(),
                    p.pattern.to_string(),
                    if p.elide { "on" } else { "off" }.to_string(),
                    format!("{:.2}", p.wall_ms),
                    format!("{:.0}", p.events_per_sec()),
                    format!("{:.1}", 100.0 * p.elided as f64 / p.events as f64),
                ]);
            }
            if phased {
                headline.push((actors, pair[1] / pair[0]));
            }
        }
    }
    out.push_str(&t.render());
    out.push_str("\nphased elide-off/elide-on wall-clock ratio:\n");
    for (actors, ratio) in headline {
        out.push_str(&format!("  {actors:>5} actors: {ratio:.2}x\n"));
    }
    out.push_str(
        "\nphased actors run their advance loops alone at the heap front, so\n\
         elision skips the park/unpark round-trip on nearly every advance\n\
         (the compute-loop shape of a real rank); uniform strides tie on\n\
         every advance, forcing the slow path — elision never fires there,\n\
         preserving FIFO determinism.\n",
    );
    out.push_str(&cores_sweep(budget));
    out
}

/// The conservative cores sweep on the tie-dominated lockstep workload —
/// the shape elision cannot accelerate — plus the elided-vs-parallel
/// attribution line for each workload family. Publishes the lockstep
/// serial/parallel throughputs as `BENCH_speed.json` extras for the CI
/// gate.
fn cores_sweep(budget: u64) -> String {
    let actors = *actor_counts().last().expect("non-empty");
    let iters = (budget / actors as u64).max(4);
    let mut out = format!(
        "\nconservative cores sweep: uniform lockstep, {actors} actors x {iters} steps\n\n"
    );
    let mut t = Table::new(&[
        "workers",
        "wall ms",
        "events/sec",
        "speedup",
        "elided",
        "par advances",
        "horizon stalls",
    ]);
    let mut serial_wall = 0.0f64;
    for &workers in &worker_counts() {
        let p = measure(actors, iters, false, true, workers);
        if workers == 0 {
            serial_wall = p.wall_ms;
            report_extra("lockstep_serial_events_per_sec", p.events_per_sec());
        }
        let speedup = serial_wall / p.wall_ms;
        if workers == 4 {
            report_extra("lockstep_par4_events_per_sec", p.events_per_sec());
            report_extra("lockstep_par4_speedup", speedup);
            report_extra("lockstep_par4_handoffs_elided", p.elided as f64);
            report_extra(
                "lockstep_par4_parallel_advances",
                p.parallel_advances as f64,
            );
            report_extra("lockstep_par4_horizon_stalls", p.horizon_stalls as f64);
        }
        t.row(vec![
            if p.workers == 0 {
                "serial".to_string()
            } else {
                p.workers.to_string()
            },
            format!("{:.2}", p.wall_ms),
            format!("{:.0}", p.events_per_sec()),
            format!("{speedup:.2}x"),
            p.elided.to_string(),
            p.parallel_advances.to_string(),
            p.horizon_stalls.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nattribution per workload: phased compute loops are carried by\n\
         serial handoff elision (table above; uniform ties keep it at 0\n\
         there). Tie-dominated lockstep is carried by the conservative\n\
         engine: one grant per partition per lookahead window, with the\n\
         in-window steps taken on the lock-free fast path — those land in\n\
         the same `elided` counter, nonzero here precisely because\n\
         windowing removed the cross-actor ties. `parallel advances`\n\
         (grants in windows releasing several partitions) attributes the\n\
         engine's concurrency; `horizon stalls` counts partitions parked\n\
         at a closing window with work still queued — the conservative\n\
         protocol's synchronization cost.\n",
    );
    out
}

/// The `bench_speed --smoke` CI gate: the 8,192-actor tie-dominated
/// lockstep spec — the workload PR 2's elision could not accelerate —
/// must not regress vs the serial engine, and must hit the tentpole's
/// ≥2x wall-clock speedup at 4 workers. Event totals must match exactly
/// (the parallel engine is a wall-clock optimization only). Panics
/// (nonzero exit) on any violation; prints the measurements.
pub fn smoke() -> String {
    let actors = 8192;
    let iters = (256_000u64 / actors as u64).max(4);
    let serial = measure(actors, iters, false, true, 0);
    let par = measure(actors, iters, false, true, 4);
    // The serial engine's total includes one final teardown dispatch the
    // windowed scheduler does not issue; the per-actor work counts match.
    assert!(
        serial.events.abs_diff(par.events) <= 1,
        "engines must agree on the event total (serial {}, parallel {})",
        serial.events,
        par.events
    );
    let speedup = serial.wall_ms / par.wall_ms;
    assert!(
        speedup >= 2.0,
        "conservative lockstep speedup gate: {actors} actors x {iters} steps \
         ran {speedup:.2}x vs serial (serial {:.1} ms, 4 workers {:.1} ms); \
         the tentpole requires >=2x",
        serial.wall_ms,
        par.wall_ms
    );
    // Flight-recorder overhead gate: the always-on per-actor ring must
    // price in at no more than IMPACC_FLIGHT_OVERHEAD_PCT (default 10%)
    // of wall clock on the recorder-hostile phased compute loop — the
    // cheapest-per-event shape, so the worst case for relative overhead.
    // Best-of-3 on both sides damps scheduler noise.
    let budget_pct: f64 = std::env::var("IMPACC_FLIGHT_OVERHEAD_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10.0);
    let (fa, fi) = (128usize, 2_000u64);
    let best = |with_flight: bool| -> f64 {
        (0..3)
            .map(|_| {
                let sink = with_flight.then(|| FlightRecorder::new().sink());
                measure_sink(fa, fi, true, true, 0, sink).wall_ms
            })
            .fold(f64::INFINITY, f64::min)
    };
    let bare = best(false);
    let flight = best(true);
    let overhead_pct = 100.0 * (flight - bare) / bare;
    assert!(
        overhead_pct <= budget_pct,
        "flight overhead gate: recorder-on run took {flight:.2} ms vs {bare:.2} ms bare \
         (+{overhead_pct:.1}%); budget is {budget_pct:.0}%"
    );
    format!(
        "speed smoke: {actors}-actor lockstep serial {:.1} ms -> 4 workers {:.1} ms \
         ({speedup:.2}x, gate >=2x), events {} vs {}, \
         parallel advances {}, horizon stalls {}, elided {}\n\
         flight overhead: {fa} actors x {fi} phased steps bare {bare:.2} ms, \
         recorder-on {flight:.2} ms (+{overhead_pct:.1}%, budget {budget_pct:.0}%)\n",
        serial.wall_ms,
        par.wall_ms,
        serial.events,
        par.events,
        par.parallel_advances,
        par.horizon_stalls,
        par.elided
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phased_pattern_elides_and_uniform_does_not() {
        let phased = measure(4, 200, true, true, 0);
        assert!(
            phased.elided > 4 * 200 / 2,
            "disjoint windows must hit the fast path on most advances \
             (got {} of {})",
            phased.elided,
            phased.events
        );
        let uni = measure(4, 200, false, true, 0);
        assert_eq!(uni.elided, 0, "uniform ties must never elide");
        let off = measure(4, 200, true, false, 0);
        assert_eq!(off.elided, 0);
        assert_eq!(off.events, phased.events, "elision must not change events");
    }

    #[test]
    fn conservative_lockstep_matches_serial_events_and_advances_in_parallel() {
        let serial = measure(8, 300, false, true, 0);
        let par = measure(8, 300, false, true, 4);
        // Modulo the serial engine's single teardown dispatch.
        assert!(
            serial.events.abs_diff(par.events) <= 1,
            "parallel engine must not change the event total \
             (serial {}, parallel {})",
            serial.events,
            par.events
        );
        assert_eq!(serial.parallel_advances, 0);
        assert!(
            par.parallel_advances > 0,
            "independent lockstep partitions must overlap inside windows"
        );
    }
}
