//! Shared harness utilities: sweeps, tables, measurement helpers, and the
//! machine-readable `BENCH_<name>.json` report every binary emits.

use std::cell::RefCell;
use std::path::PathBuf;
use std::sync::Arc;

use impacc_core::RunSummary;
use parking_lot::Mutex;

/// Quick mode trims sweeps for CI (`IMPACC_BENCH_QUICK=1`).
pub fn quick() -> bool {
    impacc_core::config::bench_quick()
}

/// Full mode unlocks the largest Titan-scale points
/// (`IMPACC_BENCH_FULL=1`); they spawn tens of thousands of actor threads.
pub fn full() -> bool {
    impacc_core::config::bench_full()
}

/// Geometric size sweep `[from, to]` multiplying by `factor`.
pub fn size_sweep(from: u64, to: u64, factor: u64) -> Vec<u64> {
    let mut v = Vec::new();
    let mut s = from;
    while s <= to {
        v.push(s);
        s *= factor;
    }
    v
}

/// Bytes/second over a span, in GB/s.
pub fn gbps(bytes: u64, secs: f64) -> f64 {
    bytes as f64 / secs / 1e9
}

/// Human-readable byte count for table headers.
pub fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 30 {
        format!("{}GiB", b >> 30)
    } else if b >= 1 << 20 {
        format!("{}MiB", b >> 20)
    } else if b >= 1 << 10 {
        format!("{}KiB", b >> 10)
    } else {
        format!("{b}B")
    }
}

/// A simple aligned text table.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells);
    }

    /// The column headers.
    pub fn columns(&self) -> &[String] {
        &self.header
    }

    /// The data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Render with aligned columns. While a [`BenchReport::capture`] is
    /// active on this thread, rendering also snapshots the table into the
    /// report, so figure code needs no changes to feed the JSON dump.
    pub fn render(&self) -> String {
        CAPTURE.with(|c| {
            if let Some(tables) = c.borrow_mut().as_mut() {
                tables.push(TableSnapshot {
                    header: self.header.clone(),
                    rows: self.rows.clone(),
                });
            }
        });
        self.render_text()
    }

    fn render_text(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

thread_local! {
    /// Active table collector for [`BenchReport::capture`].
    static CAPTURE: RefCell<Option<Vec<TableSnapshot>>> = const { RefCell::new(None) };
    /// Active extra-field collector for [`BenchReport::capture`].
    static EXTRAS: RefCell<Option<Vec<(String, f64)>>> = const { RefCell::new(None) };
}

/// Publish an extra top-level numeric field into the active
/// [`BenchReport::capture`] (e.g. `bench_serve`'s throughput, p50/p99
/// latency and cache-hit rate). Outside a capture this is a no-op. A key
/// reported twice keeps the last value.
pub fn report_extra(key: &str, value: f64) {
    EXTRAS.with(|e| {
        if let Some(extras) = e.borrow_mut().as_mut() {
            if let Some(slot) = extras.iter_mut().find(|(k, _)| k == key) {
                slot.1 = value;
            } else {
                extras.push((key.to_string(), value));
            }
        }
    });
}

/// A rendered table captured for the machine-readable report.
#[derive(Clone, Debug)]
pub struct TableSnapshot {
    /// Column headers.
    pub header: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

/// A machine-readable record of one bench binary's output: the full text
/// report plus every table it rendered, as structured rows. Written to
/// `BENCH_<name>.json` so the perf trajectory can shape-check results
/// without parsing aligned text.
pub struct BenchReport {
    name: String,
    text: String,
    tables: Vec<TableSnapshot>,
    /// Wall-clock of the captured section, in milliseconds.
    wall_ms: f64,
    /// Engine events dispatched per wall-clock second during the capture
    /// (all simulations run by `f`, summed) — the perf trajectory number.
    events_per_sec: f64,
    /// Extra top-level numeric fields published via [`report_extra`]
    /// during the capture, in publish order.
    extras: Vec<(String, f64)>,
}

impl BenchReport {
    /// Run `f` with table capture active and collect its output. Tables are
    /// snapshotted as they render (on this thread); `f`'s return value
    /// becomes the report text. The capture also measures wall-clock time
    /// and engine throughput (events/sec) over the section.
    pub fn capture(name: &str, f: impl FnOnce() -> String) -> BenchReport {
        CAPTURE.with(|c| *c.borrow_mut() = Some(Vec::new()));
        EXTRAS.with(|e| *e.borrow_mut() = Some(Vec::new()));
        let events0 = impacc_vtime::global_events();
        let t0 = std::time::Instant::now();
        let text = f();
        let wall = t0.elapsed();
        let events = impacc_vtime::global_events() - events0;
        let tables = CAPTURE.with(|c| c.borrow_mut().take()).unwrap_or_default();
        let extras = EXTRAS.with(|e| e.borrow_mut().take()).unwrap_or_default();
        let secs = wall.as_secs_f64();
        // Test hook for the CI perf gate: `IMPACC_PERF_INJECT_SLOWDOWN=2`
        // divides reported throughput by 2, simulating a regression so the
        // gate's failure path can be exercised without slowing anything.
        let inject = impacc_core::config::perf_inject_slowdown();
        BenchReport {
            name: name.to_string(),
            text,
            tables,
            wall_ms: secs * 1e3,
            events_per_sec: if secs > 0.0 {
                events as f64 / secs / inject
            } else {
                0.0
            },
            extras,
        }
    }

    /// The human-readable report text.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// The captured tables, in render order.
    pub fn tables(&self) -> &[TableSnapshot] {
        &self.tables
    }

    /// Wall-clock of the captured section, in milliseconds.
    pub fn wall_ms(&self) -> f64 {
        self.wall_ms
    }

    /// Engine events per wall-clock second over the captured section.
    pub fn events_per_sec(&self) -> f64 {
        self.events_per_sec
    }

    /// Extra top-level fields published via [`report_extra`] during the
    /// capture.
    pub fn extras(&self) -> &[(String, f64)] {
        &self.extras
    }

    /// Serialize as JSON: `{"schema_version", "name", "text",
    /// "tables": [{"header", "rows"}], "wall_ms", "events_per_sec"}` plus
    /// one top-level key per [`report_extra`] field.
    pub fn to_json(&self) -> String {
        use impacc_obs::json;
        let mut out = format!(
            "{{\"schema_version\":{},\"name\":",
            impacc_obs::SCHEMA_VERSION
        );
        out.push_str(&json::string(&self.name));
        out.push_str(",\"text\":");
        out.push_str(&json::string(&self.text));
        out.push_str(",\"tables\":[");
        for (i, t) in self.tables.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"header\":[");
            for (j, h) in t.header.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&json::string(h));
            }
            out.push_str("],\"rows\":[");
            for (j, row) in t.rows.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push('[');
                for (k, cell) in row.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    out.push_str(&json::string(cell));
                }
                out.push(']');
            }
            out.push_str("]}");
        }
        out.push_str("],\"wall_ms\":");
        out.push_str(&format!("{:.3}", self.wall_ms));
        out.push_str(",\"events_per_sec\":");
        out.push_str(&format!("{:.0}", self.events_per_sec));
        for (k, v) in &self.extras {
            out.push(',');
            out.push_str(&json::string(k));
            out.push(':');
            out.push_str(&json::number(*v));
        }
        out.push('}');
        out
    }

    /// Where the report is written: `$IMPACC_BENCH_DIR` when set, else the
    /// current directory.
    pub fn path(&self) -> PathBuf {
        impacc_core::config::bench_dir().join(format!("BENCH_{}.json", self.name))
    }

    /// Write `BENCH_<name>.json`, warning (not failing) on I/O errors so a
    /// read-only working directory never breaks a figure run.
    pub fn write_or_warn(&self) {
        let path = self.path();
        if let Err(e) = std::fs::write(&path, self.to_json()) {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
    }
}

/// Shared entry point for bench binaries: run the figure, print its text
/// report, and persist the machine-readable `BENCH_<name>.json`.
pub fn bench_main(name: &str, f: impl FnOnce() -> String) {
    let report = BenchReport::capture(name, f);
    println!("{}", report.text());
    println!(
        "[{}] wall: {:.1} ms, engine throughput: {:.0} events/sec",
        name,
        report.wall_ms(),
        report.events_per_sec()
    );
    report.write_or_warn();
}

/// Parse a `--trace <path>` (or `--trace=<path>`) flag from the binary's
/// command line, for the figures that can dump Chrome traces.
pub fn trace_arg() -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--trace" {
            match args.next() {
                Some(p) => return Some(p),
                None => {
                    eprintln!("warning: --trace needs a path argument; ignoring");
                    return None;
                }
            }
        }
        if let Some(p) = a.strip_prefix("--trace=") {
            return Some(p.to_string());
        }
    }
    None
}

/// A shared slot apps write per-run measurements into.
pub type Probe<T> = Arc<Mutex<Option<T>>>;

/// A fresh probe.
pub fn probe<T>() -> Probe<T> {
    Arc::new(Mutex::new(None))
}

/// Communication time of a run: MPI call/wait time across actors plus
/// host-to-host transfer time.
pub fn comm_secs(s: &RunSummary) -> f64 {
    ["mpi_call", "handler"]
        .iter()
        .map(|t| s.report.tag_total(t).as_secs_f64())
        .sum::<f64>()
        + metric_secs(s, "t_HtoH")
}

/// Picoseconds recorded under a `t_*` copy-time metric, as seconds.
pub fn metric_secs(s: &RunSummary, key: &'static str) -> f64 {
    s.report.metrics.get(key).copied().unwrap_or(0) as f64 / 1e12
}

/// Total device-copy time (all PCIe directions), aggregated across task
/// threads, queue daemons and the message handlers.
pub fn copy_secs(s: &RunSummary) -> f64 {
    metric_secs(s, "t_HtoD") + metric_secs(s, "t_DtoH") + metric_secs(s, "t_DtoD")
}

/// Total kernel time, summed over actors.
pub fn kernel_secs(s: &RunSummary) -> f64 {
    s.report.tag_total("kernel").as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_geometric_inclusive() {
        assert_eq!(size_sweep(64, 4096, 4), vec![64, 256, 1024, 4096]);
        assert_eq!(size_sweep(8, 8, 2), vec![8]);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["size", "GB/s"]);
        t.row(vec!["64B".into(), "1.5".into()]);
        t.row(vec!["1GiB".into(), "11.9".into()]);
        let s = t.render();
        assert!(s.contains("size"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    fn capture_snapshots_rendered_tables() {
        let r = BenchReport::capture("t", || {
            let mut t = Table::new(&["a", "b"]);
            t.row(vec!["1".into(), "2".into()]);
            let text = t.render();
            let mut t2 = Table::new(&["c"]);
            t2.row(vec!["\"quoted\"".into()]);
            text + &t2.render()
        });
        assert_eq!(r.tables().len(), 2);
        assert_eq!(r.tables()[0].header, vec!["a", "b"]);
        assert_eq!(r.tables()[1].rows[0][0], "\"quoted\"");
        let j = r.to_json();
        let prefix = format!(
            "{{\"schema_version\":{},\"name\":\"t\"",
            impacc_obs::SCHEMA_VERSION
        );
        assert!(j.starts_with(&prefix), "got: {j}");
        assert!(j.contains("\"header\":[\"a\",\"b\"]"));
        assert!(j.contains("\\\"quoted\\\""));
        // Capture is deactivated afterwards: renders outside don't leak in.
        let mut t3 = Table::new(&["x"]);
        t3.row(vec!["y".into()]);
        let _ = t3.render();
        assert_eq!(r.tables().len(), 2);
    }

    #[test]
    fn report_without_tables_is_valid_json() {
        let r = BenchReport::capture("empty", || "just text\n".to_string());
        let j = r.to_json();
        // Wall time varies run to run; check structure, not exact bytes.
        let prefix = format!(
            "{{\"schema_version\":{},\"name\":\"empty\",\"text\":\"just text\\n\",\"tables\":[]",
            impacc_obs::SCHEMA_VERSION
        );
        assert!(j.starts_with(&prefix), "got: {j}");
        assert!(j.contains(",\"wall_ms\":"));
        assert!(j.contains(",\"events_per_sec\":"));
        assert!(j.ends_with('}'));
    }

    #[test]
    fn extras_become_top_level_fields() {
        let r = BenchReport::capture("x", || {
            report_extra("p50_ms", 1.5);
            report_extra("cache_hit_rate", 0.25);
            report_extra("p50_ms", 2.5); // republish keeps the last value
            "t\n".to_string()
        });
        assert_eq!(
            r.extras(),
            &[
                ("p50_ms".to_string(), 2.5),
                ("cache_hit_rate".to_string(), 0.25)
            ]
        );
        let j = r.to_json();
        assert!(j.contains(",\"p50_ms\":2.5"), "got: {j}");
        assert!(j.contains(",\"cache_hit_rate\":0.25"));
        // Outside a capture, publishing is a no-op.
        report_extra("orphan", 1.0);
        assert!(!r.to_json().contains("orphan"));
    }

    #[test]
    fn capture_measures_engine_throughput() {
        let r = BenchReport::capture("speedy", || {
            let mut sim = impacc_vtime::Sim::new();
            sim.spawn("a", |ctx| {
                for _ in 0..100 {
                    ctx.advance(impacc_vtime::SimDur::from_ns(1), "w");
                }
            });
            sim.run().unwrap();
            "ran\n".to_string()
        });
        assert!(r.events_per_sec() > 0.0, "a run inside capture must count");
        assert!(r.wall_ms() >= 0.0);
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(64), "64B");
        assert_eq!(fmt_bytes(2048), "2KiB");
        assert_eq!(fmt_bytes(3 << 20), "3MiB");
        assert_eq!(fmt_bytes(1 << 30), "1GiB");
    }
}
