//! Shared harness utilities: sweeps, tables, measurement helpers.

use std::sync::Arc;

use impacc_core::RunSummary;
use parking_lot::Mutex;

/// Quick mode trims sweeps for CI (`IMPACC_BENCH_QUICK=1`).
pub fn quick() -> bool {
    std::env::var("IMPACC_BENCH_QUICK").map_or(false, |v| v == "1")
}

/// Full mode unlocks the largest Titan-scale points
/// (`IMPACC_BENCH_FULL=1`); they spawn tens of thousands of actor threads.
pub fn full() -> bool {
    std::env::var("IMPACC_BENCH_FULL").map_or(false, |v| v == "1")
}

/// Geometric size sweep `[from, to]` multiplying by `factor`.
pub fn size_sweep(from: u64, to: u64, factor: u64) -> Vec<u64> {
    let mut v = Vec::new();
    let mut s = from;
    while s <= to {
        v.push(s);
        s *= factor;
    }
    v
}

/// Bytes/second over a span, in GB/s.
pub fn gbps(bytes: u64, secs: f64) -> f64 {
    bytes as f64 / secs / 1e9
}

/// Human-readable byte count for table headers.
pub fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 30 {
        format!("{}GiB", b >> 30)
    } else if b >= 1 << 20 {
        format!("{}MiB", b >> 20)
    } else if b >= 1 << 10 {
        format!("{}KiB", b >> 10)
    } else {
        format!("{b}B")
    }
}

/// A simple aligned text table.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// A shared slot apps write per-run measurements into.
pub type Probe<T> = Arc<Mutex<Option<T>>>;

/// A fresh probe.
pub fn probe<T>() -> Probe<T> {
    Arc::new(Mutex::new(None))
}

/// Communication time of a run: MPI call/wait time across actors plus
/// host-to-host transfer time.
pub fn comm_secs(s: &RunSummary) -> f64 {
    ["mpi_call", "handler"]
        .iter()
        .map(|t| s.report.tag_total(t).as_secs_f64())
        .sum::<f64>()
        + metric_secs(s, "t_HtoH")
}

/// Picoseconds recorded under a `t_*` copy-time metric, as seconds.
pub fn metric_secs(s: &RunSummary, key: &'static str) -> f64 {
    s.report.metrics.get(key).copied().unwrap_or(0) as f64 / 1e12
}

/// Total device-copy time (all PCIe directions), aggregated across task
/// threads, queue daemons and the message handlers.
pub fn copy_secs(s: &RunSummary) -> f64 {
    metric_secs(s, "t_HtoD") + metric_secs(s, "t_DtoH") + metric_secs(s, "t_DtoD")
}

/// Total kernel time, summed over actors.
pub fn kernel_secs(s: &RunSummary) -> f64 {
    s.report.tag_total("kernel").as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_geometric_inclusive() {
        assert_eq!(size_sweep(64, 4096, 4), vec![64, 256, 1024, 4096]);
        assert_eq!(size_sweep(8, 8, 2), vec![8]);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["size", "GB/s"]);
        t.row(vec!["64B".into(), "1.5".into()]);
        t.row(vec!["1GiB".into(), "11.9".into()]);
        let s = t.render();
        assert!(s.contains("size"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(64), "64B");
        assert_eq!(fmt_bytes(2048), "2KiB");
        assert_eq!(fmt_bytes(3 << 20), "3MiB");
        assert_eq!(fmt_bytes(1 << 30), "1GiB");
    }
}
