//! Fault-injection determinism: the same fault seed and workload must
//! produce identical virtual-time observables across reruns *and* across
//! the scheduler's baton-handoff elision fast path. Chaos rolls are a pure
//! function of per-site counters, never of wall-clock, recording state, or
//! scheduling strategy — this is the tier-1 guard on that claim.

use impacc_bench::chaos::{internode_spec, run_exchange, SWEEP_SEED};
use impacc_bench::coll::run_coll_chaos;
use impacc_core::RunSummary;
use impacc_machine::FaultPlan;
use impacc_obs::{Recorder, Span};

fn faulted_run(elide: bool) -> (RunSummary, Vec<Span>, Vec<impacc_obs::Edge>) {
    let rec = Recorder::new();
    let plan = FaultPlan::new(SWEEP_SEED).with_uniform_rate(0.1);
    let s = run_exchange(internode_spec(), Some(plan), 3, elide, Some(&rec));
    (s, rec.spans(), rec.edges())
}

#[test]
fn faulted_run_is_bit_identical_across_reruns_and_elision() {
    let (on, spans_on, edges_on) = faulted_run(true);
    let (off, spans_off, edges_off) = faulted_run(false);
    let (again, spans_again, _) = faulted_run(true);

    // The injection actually fired — this is a faulted run, not a no-op.
    let retries = on.report.metrics.get("retries").copied().unwrap_or(0);
    assert!(retries > 0, "seeded 10% plan must cause retries");

    // Rerun with identical configuration: bit-identical.
    assert_eq!(on.report.end_time, again.report.end_time, "rerun end time");
    assert_eq!(on.report.metrics, again.report.metrics, "rerun metrics");
    assert_eq!(spans_on, spans_again, "rerun span stream");

    // Elision on vs off: the fast path must not perturb fault rolls.
    assert_eq!(
        off.report.handoffs_elided, 0,
        "forced-off run must not elide"
    );
    assert_eq!(on.report.end_time, off.report.end_time, "virtual end time");
    assert_eq!(on.report.events, off.report.events, "dispatch count");
    assert_eq!(on.report.metrics, off.report.metrics, "engine metrics");
    assert_eq!(on.report.actors, off.report.actors, "per-actor breakdown");
    assert_eq!(spans_on, spans_off, "span streams must match exactly");

    // The derived profile — fault/retry spans included — is byte-identical.
    let prof_on = impacc_prof::analyze(&spans_on, &edges_on).to_json("chaos");
    let prof_off = impacc_prof::analyze(&spans_off, &edges_off).to_json("chaos");
    assert_eq!(prof_on, prof_off, "PROF json must not depend on elision");
    assert!(
        prof_on.contains("\"fault\"") || retries == 0,
        "fault spans must reach the recorded trace"
    );
}

fn faulted_coll_run(elide: bool) -> (RunSummary, Vec<Span>, Vec<impacc_obs::Edge>) {
    let rec = Recorder::new();
    let plan = FaultPlan::new(23).with_uniform_rate(0.08);
    let s = run_coll_chaos(Some(plan), elide, Some(&rec));
    (s, rec.spans(), rec.edges())
}

/// Collectives under fault injection: the hierarchical engine's internode
/// edges traverse the link fault sites and its intra-node folds roll the
/// copy-fault site, and the whole mixed workload must stay bit-identical
/// for a fixed seed — across reruns and across handoff elision.
#[test]
fn faulted_collectives_are_bit_identical_across_reruns_and_elision() {
    let (on, spans_on, edges_on) = faulted_coll_run(true);
    let (off, spans_off, edges_off) = faulted_coll_run(false);
    let (again, spans_again, _) = faulted_coll_run(true);

    // The injection reached the collective paths: retries fired, and the
    // hierarchical engine actually ran (its phase counters are nonzero).
    let m = |k: &str| on.report.metrics.get(k).copied().unwrap_or(0);
    assert!(m("retries") > 0, "seeded 8% plan must cause retries");
    assert!(m("coll_algo_hier") > 0, "workload must take the hier path");
    assert!(
        m("coll_intra_bytes") > 0,
        "intra-node folds must be charged"
    );

    assert_eq!(on.report.end_time, again.report.end_time, "rerun end time");
    assert_eq!(on.report.metrics, again.report.metrics, "rerun metrics");
    assert_eq!(spans_on, spans_again, "rerun span stream");

    assert_eq!(on.report.end_time, off.report.end_time, "virtual end time");
    assert_eq!(on.report.metrics, off.report.metrics, "engine metrics");
    assert_eq!(spans_on, spans_off, "span streams must match exactly");

    let prof_on = impacc_prof::analyze(&spans_on, &edges_on).to_json("coll");
    let prof_off = impacc_prof::analyze(&spans_off, &edges_off).to_json("coll");
    assert_eq!(prof_on, prof_off, "PROF json must not depend on elision");
}
