//! Engine fast-path determinism: baton-handoff elision, sharded metric
//! accounting, and zero-copy send buffers are wall-clock optimizations
//! only. Running the same workload with elision on and forced off must
//! produce bit-identical virtual-time observables — end time, event
//! counts, engine metrics, per-actor tag breakdowns, and the recorded
//! span stream.

use impacc_apps::{run_jacobi_tuned, JacobiParams};
use impacc_bench::specs::psg_tasks;
use impacc_core::{Launch, MpiOpts, RunSummary, RuntimeOptions};
use impacc_machine::KernelCost;
use impacc_obs::Recorder;

fn assert_bit_identical(on: &RunSummary, off: &RunSummary) {
    assert_eq!(
        off.report.handoffs_elided, 0,
        "forced-off run must not elide"
    );
    assert_eq!(on.report.end_time, off.report.end_time, "virtual end time");
    assert_eq!(on.report.events, off.report.events, "dispatch count");
    assert_eq!(on.report.metrics, off.report.metrics, "engine metrics");
    assert_eq!(
        on.report.actors, off.report.actors,
        "per-actor tag breakdown"
    );
}

/// Figure-13-sized Jacobi (timing-only, phys-capped like the figure runs):
/// the full stack — ranks, queue daemons, node handlers, MPI matching.
#[test]
fn jacobi_is_bit_identical_with_and_without_elision() {
    let run = |elide: bool| -> (RunSummary, Vec<impacc_obs::Span>) {
        let rec = Recorder::new();
        let s = run_jacobi_tuned(
            psg_tasks(4),
            RuntimeOptions::impacc(),
            Some(4096),
            Some(rec.sink()),
            elide,
            JacobiParams {
                n: 512,
                iters: 10,
                verify: false,
            },
        )
        .expect("jacobi run");
        (s, rec.spans())
    };
    let (on, spans_on) = run(true);
    let (off, spans_off) = run(false);
    assert!(
        on.report.handoffs_elided > 0,
        "a jacobi run should hit the fast path at least once"
    );
    assert_bit_identical(&on, &off);
    assert_eq!(spans_on, spans_off, "span streams must match exactly");
}

/// Figure-5-sized exchange: kernel → device send → device recv on the
/// unified activity queue, repeated; exercises the COW send-buffer path
/// under both elision settings.
#[test]
fn unified_queue_exchange_is_bit_identical_with_and_without_elision() {
    const N: usize = 1 << 12;
    let run = |elide: bool| -> (RunSummary, Vec<impacc_obs::Span>) {
        let rec = Recorder::new();
        let s = Launch::new(psg_tasks(2), RuntimeOptions::impacc())
            .phys_cap(4096)
            .elide_handoff(elide)
            .recorder(&rec)
            .run(move |tc| {
                let peer = 1 - tc.rank();
                let buf0 = tc.malloc_f64(N);
                let buf1 = tc.malloc_f64(N);
                tc.acc_create(&buf0);
                tc.acc_create(&buf1);
                let cost = KernelCost::new(10.0 * N as f64, 16.0 * N as f64);
                for i in 0..8 {
                    tc.acc_kernel(Some(1), cost, || {});
                    tc.mpi_send(&buf0, 0, buf0.len, peer, i, MpiOpts::device().on_queue(1));
                    tc.mpi_recv(&buf1, 0, buf1.len, peer, i, MpiOpts::device().on_queue(1));
                    tc.acc_wait(1);
                }
            })
            .expect("exchange run");
        (s, rec.spans())
    };
    let (on, spans_on) = run(true);
    let (off, spans_off) = run(false);
    assert_bit_identical(&on, &off);
    assert_eq!(spans_on, spans_off, "span streams must match exactly");
}
