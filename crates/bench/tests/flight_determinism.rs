//! Flight-recorder determinism and non-interference.
//!
//! Two contracts from the observability tentpole:
//!
//! * **Dump determinism** — a flight dump is a pure function of the
//!   workload and trigger: the same run under `parallelism(1)` and
//!   `parallelism(4)` must serialize byte-identical `FLIGHT_*.json`
//!   bodies, because per-actor rings preserve each actor's program-order
//!   emission and the snapshot is actor-sorted.
//! * **Golden traces untouched** — attaching the always-on recorder must
//!   not move a single byte of the existing observability artifacts:
//!   chrome trace, `PROF_*.json` payload, end time, event count, or
//!   engine metrics of a healthy (non-anomalous) run.

use impacc_bench::specs::titan_tasks;
use impacc_core::{Launch, MpiOpts, RunSummary, RuntimeOptions};
use impacc_flight::{FlightRecorder, Trigger};
use impacc_machine::KernelCost;
use impacc_obs::Recorder;

const N: usize = 1 << 12;

/// The cross-node unified-queue exchange from `parallel_determinism`,
/// with a flight recorder riding along.
fn run_exchange(degree: usize, fr: Option<&FlightRecorder>, rec: Option<&Recorder>) -> RunSummary {
    let mut l = Launch::new(titan_tasks(2), RuntimeOptions::impacc())
        .phys_cap(4096)
        .parallelism(degree);
    l = match fr {
        Some(fr) => l.flight(fr).flight_label("flight_det"),
        None => l.flight_off(),
    };
    if let Some(rec) = rec {
        l = l.recorder(rec);
    }
    l.run(move |tc| {
        let peer = 1 - tc.rank();
        let buf0 = tc.malloc_f64(N);
        let buf1 = tc.malloc_f64(N);
        tc.acc_create(&buf0);
        tc.acc_create(&buf1);
        let cost = KernelCost::new(10.0 * N as f64, 16.0 * N as f64);
        for i in 0..8 {
            tc.acc_kernel(Some(1), cost, || {});
            tc.mpi_send(&buf0, 0, buf0.len, peer, i, MpiOpts::device().on_queue(1));
            tc.mpi_recv(&buf1, 0, buf1.len, peer, i, MpiOpts::device().on_queue(1));
            tc.acc_wait(1);
        }
    })
    .expect("exchange run")
}

fn dump_bytes(degree: usize) -> String {
    let fr = FlightRecorder::new();
    let s = run_exchange(degree, Some(&fr), None);
    fr.dump(
        "flight_det",
        Trigger::Request,
        s.report.metrics.iter().map(|(k, v)| (*k, *v)),
        &[],
    )
    .to_json()
}

#[test]
fn flight_dump_is_bit_identical_across_parallelism() {
    let serial = dump_bytes(1);
    assert!(
        serial.contains("\"schema_version\""),
        "dumps are schema-versioned"
    );
    assert!(
        serial.contains("\"traceEvents\""),
        "dumps embed a chrome trace body"
    );
    let parallel = dump_bytes(4);
    assert_eq!(
        serial, parallel,
        "flight dump bytes must not depend on the scheduler's parallelism degree"
    );
    // And re-running at the same degree reproduces the bytes exactly.
    assert_eq!(serial, dump_bytes(1), "dump bytes must be reproducible");
}

#[test]
fn always_on_recorder_leaves_golden_observables_untouched() {
    let observe = |fr: Option<&FlightRecorder>| {
        let rec = Recorder::new();
        let s = run_exchange(1, fr, Some(&rec));
        let spans = rec.spans();
        let chrome = impacc_obs::chrome::trace(&spans);
        let prof = impacc_prof::analyze(&spans, &rec.edges()).to_json("flight_det");
        (s, chrome, prof)
    };
    let (base_s, base_chrome, base_prof) = observe(None);
    let fr = FlightRecorder::new();
    let (s, chrome, prof) = observe(Some(&fr));
    assert!(
        fr.actor_count() > 0,
        "the flight recorder must actually have been recording"
    );
    assert_eq!(
        base_s.report.end_time, s.report.end_time,
        "virtual end time must not move"
    );
    assert_eq!(
        base_s.report.events, s.report.events,
        "event count must not move"
    );
    assert_eq!(
        base_s.report.metrics, s.report.metrics,
        "engine metrics must not move"
    );
    assert_eq!(
        base_chrome, chrome,
        "chrome trace bytes must be identical with the recorder attached"
    );
    assert_eq!(
        base_prof, prof,
        "PROF json payload must be identical with the recorder attached"
    );
}
