//! Conservative-engine determinism: the parallel DES scheduler is a
//! wall-clock optimization only. The same workload run under
//! `IMPACC_PARALLEL=1`, `2`, and `8` must produce bit-identical
//! virtual-time observables — end time, event counts, engine metrics,
//! per-actor tag breakdowns, the canonicalized span stream, and the
//! serialized critical-path profile (`PROF_*.json` payload).
//!
//! Both workloads run on multi-node Titan specs so cross-partition MPI
//! traffic (the mailbox + lookahead-clamp machinery) is actually
//! exercised; single-node specs would never leave one partition.

use impacc_apps::{run_jacobi_tuned, JacobiParams};
use impacc_bench::specs::titan_tasks;
use impacc_core::{Launch, MpiOpts, RunSummary, RuntimeOptions};
use impacc_machine::KernelCost;
use impacc_obs::Recorder;

/// The parallelism degrees the satellite pins: single-worker conservative,
/// a middling count, and more workers than partitions.
const DEGREES: [usize; 3] = [1, 2, 8];

struct Observed {
    summary: RunSummary,
    spans: Vec<impacc_obs::Span>,
    prof_json: String,
}

fn observe(summary: RunSummary, rec: &Recorder, name: &str) -> Observed {
    // Launch only canonicalizes recorders it was handed via `.recorder()`;
    // sink-attached recorders (the app-runner path) are normalized here.
    // Canonicalization is idempotent, so doing it for every run is safe.
    rec.canonicalize();
    let spans = rec.spans();
    let prof_json = impacc_prof::analyze(&spans, &rec.edges()).to_json(name);
    Observed {
        summary,
        spans,
        prof_json,
    }
}

fn assert_bit_identical(base: &Observed, other: &Observed, degree: usize) {
    let (a, b) = (&base.summary.report, &other.summary.report);
    assert_eq!(a.end_time, b.end_time, "virtual end time @ p={degree}");
    assert_eq!(a.events, b.events, "dispatch count @ p={degree}");
    assert_eq!(a.metrics, b.metrics, "engine metrics @ p={degree}");
    assert_eq!(a.actors, b.actors, "per-actor tags @ p={degree}");
    assert_eq!(
        a.handoffs_elided, b.handoffs_elided,
        "elision count @ p={degree}"
    );
    assert_eq!(
        a.parallel_advances, b.parallel_advances,
        "parallel advances @ p={degree}"
    );
    assert_eq!(
        a.horizon_stalls, b.horizon_stalls,
        "horizon stalls @ p={degree}"
    );
    assert_eq!(base.spans, other.spans, "span streams @ p={degree}");
    assert_eq!(
        base.prof_json, other.prof_json,
        "PROF json payload @ p={degree}"
    );
}

/// Multi-node Jacobi through the app runner, with the parallelism degree
/// supplied the way users supply it: the `IMPACC_PARALLEL` environment
/// knob (resolved by `Launch` via `impacc_core::config::parallelism`).
#[test]
fn jacobi_is_bit_identical_across_impacc_parallel() {
    let ambient = std::env::var("IMPACC_PARALLEL").ok();
    let run = |degree: usize| -> Observed {
        std::env::set_var("IMPACC_PARALLEL", degree.to_string());
        let rec = Recorder::new();
        let s = run_jacobi_tuned(
            titan_tasks(4),
            RuntimeOptions::impacc(),
            Some(4096),
            Some(rec.sink()),
            true,
            JacobiParams {
                n: 256,
                iters: 8,
                verify: false,
            },
        )
        .expect("jacobi run");
        observe(s, &rec, "jacobi")
    };
    let base = run(DEGREES[0]);
    let rest: Vec<Observed> = DEGREES[1..].iter().map(|&d| run(d)).collect();
    // Restore whatever the harness had exported (ci runs tier-1 under
    // IMPACC_PARALLEL=4; clobbering it would leak into sibling tests).
    match ambient {
        Some(v) => std::env::set_var("IMPACC_PARALLEL", v),
        None => std::env::remove_var("IMPACC_PARALLEL"),
    }
    assert!(
        base.summary.report.parallel_advances > 0,
        "a 4-node jacobi should overlap partitions in at least one window"
    );
    for (d, other) in DEGREES[1..].iter().zip(&rest) {
        assert_bit_identical(&base, other, *d);
    }
}

/// Cross-node unified-queue exchange pinned through the typed
/// `Launch::parallelism` builder (immune to ambient `IMPACC_PARALLEL`):
/// kernel → device send → device recv over the wire, repeated.
#[test]
fn unified_queue_exchange_is_bit_identical_across_parallelism() {
    const N: usize = 1 << 12;
    let run = |degree: usize| -> Observed {
        let rec = Recorder::new();
        let s = Launch::new(titan_tasks(2), RuntimeOptions::impacc())
            .phys_cap(4096)
            .parallelism(degree)
            .recorder(&rec)
            .run(move |tc| {
                let peer = 1 - tc.rank();
                let buf0 = tc.malloc_f64(N);
                let buf1 = tc.malloc_f64(N);
                tc.acc_create(&buf0);
                tc.acc_create(&buf1);
                let cost = KernelCost::new(10.0 * N as f64, 16.0 * N as f64);
                for i in 0..8 {
                    tc.acc_kernel(Some(1), cost, || {});
                    tc.mpi_send(&buf0, 0, buf0.len, peer, i, MpiOpts::device().on_queue(1));
                    tc.mpi_recv(&buf1, 0, buf1.len, peer, i, MpiOpts::device().on_queue(1));
                    tc.acc_wait(1);
                }
            })
            .expect("exchange run");
        observe(s, &rec, "exchange")
    };
    let base = run(DEGREES[0]);
    assert!(
        base.summary.report.parallel_advances > 0,
        "a 2-node exchange should overlap partitions in at least one window"
    );
    for &d in &DEGREES[1..] {
        assert_bit_identical(&base, &run(d), d);
    }
}
