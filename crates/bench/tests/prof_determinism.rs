//! The profiler's output is a function of the virtual-time trace alone:
//! running the same workload with the baton-handoff elision fast path on
//! and off must produce byte-identical `PROF_*.json` documents. This is
//! the tier-1 guard that the fast path never leaks into recorded spans,
//! edges, or the critical path derived from them.

use impacc_apps::{run_jacobi_tuned, JacobiParams};
use impacc_core::RuntimeOptions;
use impacc_obs::Recorder;

fn profile_jacobi(elide_handoff: bool) -> (impacc_prof::Report, f64) {
    let rec = Recorder::new();
    let summary = run_jacobi_tuned(
        impacc_bench::specs::psg_tasks(4),
        RuntimeOptions::impacc(),
        Some(4096),
        Some(rec.sink()),
        elide_handoff,
        JacobiParams {
            n: 512,
            iters: 6,
            verify: false,
        },
    )
    .expect("jacobi run");
    let report = impacc_prof::analyze(&rec.spans(), &rec.edges());
    let secs = summary.elapsed_secs();
    (report, secs)
}

#[test]
fn critical_path_is_identical_with_and_without_handoff_elision() {
    let (fast, secs_fast) = profile_jacobi(true);
    let (slow, secs_slow) = profile_jacobi(false);

    // Both executions agree on the virtual end time...
    assert_eq!(secs_fast, secs_slow, "virtual elapsed time must match");
    assert_eq!(fast.end_ps, slow.end_ps, "trace end must match");

    // ...and the full serialized profile is byte-identical.
    assert_eq!(
        fast.to_json("fig14"),
        slow.to_json("fig14"),
        "PROF json must not depend on the handoff-elision fast path"
    );

    // Internal consistency: blame tiles the run, and the trace end agrees
    // with the run summary's wall-clock-in-virtual-seconds.
    assert_eq!(fast.blame_total(), fast.end_ps);
    let end_secs = fast.end_ps as f64 / 1e12;
    let rel = (end_secs - secs_fast).abs() / secs_fast.max(1e-12);
    assert!(
        rel < 0.02,
        "trace end {end_secs}s should match summary {secs_fast}s"
    );
}
