//! Deterministic fault injection (`impacc-chaos`).
//!
//! A [`FaultPlan`] is a declarative fault schedule: a seed, per-site
//! probabilities, and optional explicit `(vtime, site)` triggers. The
//! runtime layers consult a shared [`Chaos`] handle at fixed *injection
//! sites* — the internode network path in the MPI engine, the per-node
//! message handler, the unified activity queues, and host↔device copies —
//! and the handle answers "does a fault fire here?" purely as a function
//! of the seed and a per-site roll counter.
//!
//! # Determinism
//!
//! The simulation engine runs exactly one actor at a time and hands the
//! baton over in a schedule that is a pure function of the workload, so
//! the k-th roll at any site is the same roll in every run of the same
//! program — independent of wall clock, recording on/off, and of the
//! `elide_handoff` fast path (which changes *how* the baton moves, never
//! *who runs when*). Each roll hashes `(seed, site, k)` with SplitMix64
//! and compares against the site's rate, so a fault schedule is exactly
//! reproducible from `(seed, workload)` and two runs with the same plan
//! produce byte-identical traces.
//!
//! Faults are *transient* by design: a retried attempt may fail again,
//! but a bounded retry budget ([`FaultPlan::max_retries`]) caps the
//! sequence and the final allowed attempt always succeeds, so a faulted
//! run completes with bit-correct results — slower, never wrong. The one
//! *permanent* fault class, device loss ([`FaultPlan::fail_device`]), is
//! absorbed at launch time by remapping the victim task onto a surviving
//! device (§3.2 task–device mapping).

#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use impacc_vtime::{SimDur, SimTime};

/// An injection site: where in the runtime a fault class fires.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// Internode message lost in flight (MPI engine resends after a
    /// timeout + exponential backoff).
    LinkDrop,
    /// Internode message arrives late by [`FaultPlan::link_delay_penalty`].
    LinkDelay,
    /// Internode message duplicated on the wire (extra NIC occupancy;
    /// the receiver dedups, so matching semantics are unchanged).
    LinkDup,
    /// NIC brown-out: the receive side of a transfer is degraded and
    /// finishes late.
    NicBrownout,
    /// Handler thread stalls before processing a command.
    HandlerStall,
    /// MPSC enqueue into the handler is delayed on the producer side.
    EnqueueJitter,
    /// An activity-queue operation aborts and is replayed after a flush
    /// penalty.
    QueueAbort,
    /// Transient host↔device DMA fault; the copy is re-attempted and
    /// only the final attempt commits bytes.
    CopyFault,
    /// Direct peer-to-peer DtoD transfer faulted; the handler falls back
    /// to the staged DtoH+HtoD path.
    DtodFault,
}

impl FaultSite {
    /// All sites, in roll-counter order.
    pub const ALL: [FaultSite; 9] = [
        FaultSite::LinkDrop,
        FaultSite::LinkDelay,
        FaultSite::LinkDup,
        FaultSite::NicBrownout,
        FaultSite::HandlerStall,
        FaultSite::EnqueueJitter,
        FaultSite::QueueAbort,
        FaultSite::CopyFault,
        FaultSite::DtodFault,
    ];

    fn idx(self) -> usize {
        match self {
            FaultSite::LinkDrop => 0,
            FaultSite::LinkDelay => 1,
            FaultSite::LinkDup => 2,
            FaultSite::NicBrownout => 3,
            FaultSite::HandlerStall => 4,
            FaultSite::EnqueueJitter => 5,
            FaultSite::QueueAbort => 6,
            FaultSite::CopyFault => 7,
            FaultSite::DtodFault => 8,
        }
    }

    /// Stable label (metric key suffix / span attribute).
    pub fn label(self) -> &'static str {
        match self {
            FaultSite::LinkDrop => "link_drop",
            FaultSite::LinkDelay => "link_delay",
            FaultSite::LinkDup => "link_dup",
            FaultSite::NicBrownout => "nic_brownout",
            FaultSite::HandlerStall => "handler_stall",
            FaultSite::EnqueueJitter => "enqueue_jitter",
            FaultSite::QueueAbort => "queue_abort",
            FaultSite::CopyFault => "copy_fault",
            FaultSite::DtodFault => "dtod_fault",
        }
    }
}

/// A declarative fault schedule: seed + per-site rates + explicit
/// triggers + recovery-tuning knobs. Build with [`FaultPlan::new`] and
/// the `with_*` setters.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// Seed hashed into every roll.
    pub seed: u64,
    /// Per-site fault probability, indexed by [`FaultSite::idx`]-order
    /// (use [`FaultPlan::with_rate`]).
    pub rates: [f64; 9],
    /// Explicit one-shot triggers: the first roll of `site` at
    /// `vtime >= at` fires regardless of its rate.
    pub triggers: Vec<(SimTime, FaultSite)>,
    /// Devices `(node, dev_idx)` that are down from launch; the mapper
    /// remaps their tasks onto surviving devices.
    pub failed_devices: Vec<(usize, usize)>,
    /// Retry budget per operation; the final allowed attempt always
    /// succeeds (transient-fault model).
    pub max_retries: u32,
    /// Time for the sender to detect a lost message (ack timeout).
    pub timeout: SimDur,
    /// First backoff step; attempt `k` waits `backoff_base * 2^(k-1)`.
    pub backoff_base: SimDur,
    /// Extra arrival latency charged by [`FaultSite::LinkDelay`].
    pub link_delay_penalty: SimDur,
    /// Receive-side degradation charged by [`FaultSite::NicBrownout`].
    pub brownout_penalty: SimDur,
    /// Stall charged by [`FaultSite::HandlerStall`] /
    /// [`FaultSite::EnqueueJitter`].
    pub stall_penalty: SimDur,
    /// Flush+replay penalty charged by [`FaultSite::QueueAbort`].
    pub abort_penalty: SimDur,
}

impl FaultPlan {
    /// A plan with the given seed, all rates zero, and default recovery
    /// knobs.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rates: [0.0; 9],
            triggers: Vec::new(),
            failed_devices: Vec::new(),
            max_retries: 4,
            timeout: SimDur::from_us(50),
            backoff_base: SimDur::from_us(20),
            link_delay_penalty: SimDur::from_us(30),
            brownout_penalty: SimDur::from_us(80),
            stall_penalty: SimDur::from_us(10),
            abort_penalty: SimDur::from_us(15),
        }
    }

    /// Set the fault probability of one site.
    pub fn with_rate(mut self, site: FaultSite, rate: f64) -> FaultPlan {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0,1]");
        self.rates[site.idx()] = rate;
        self
    }

    /// Set one probability for every rolled site (uniform chaos level).
    pub fn with_uniform_rate(mut self, rate: f64) -> FaultPlan {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0,1]");
        self.rates = [rate; 9];
        self
    }

    /// Add an explicit one-shot trigger: the first roll of `site` at or
    /// after `at` fires.
    pub fn with_trigger(mut self, at: SimTime, site: FaultSite) -> FaultPlan {
        self.triggers.push((at, site));
        self
    }

    /// Mark device `dev_idx` on `node` as failed from launch.
    pub fn fail_device(mut self, node: usize, dev_idx: usize) -> FaultPlan {
        self.failed_devices.push((node, dev_idx));
        self
    }

    /// Set the retry budget.
    pub fn with_max_retries(mut self, n: u32) -> FaultPlan {
        self.max_retries = n;
        self
    }
}

struct ChaosInner {
    plan: FaultPlan,
    /// Per-site roll counters; the k-th roll at a site is `hash(seed,
    /// site, k)` so the schedule is independent of rolls at other sites.
    counters: [AtomicU64; 9],
    /// One-shot latches for `plan.triggers`.
    fired: Vec<AtomicBool>,
}

/// Shared handle consulted at every injection site. Cheap to clone;
/// [`Chaos::disabled`] (the default everywhere) is a no-op that rolls
/// nothing and costs one branch.
#[derive(Clone, Default)]
pub struct Chaos {
    inner: Option<Arc<ChaosInner>>,
}

/// SplitMix64 finalizer: avalanche a 64-bit value.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

impl Chaos {
    /// The no-fault handle.
    pub fn disabled() -> Chaos {
        Chaos { inner: None }
    }

    /// A handle driving the given plan.
    pub fn new(plan: FaultPlan) -> Chaos {
        let fired = plan
            .triggers
            .iter()
            .map(|_| AtomicBool::new(false))
            .collect();
        Chaos {
            inner: Some(Arc::new(ChaosInner {
                plan,
                counters: Default::default(),
                fired,
            })),
        }
    }

    /// Is any fault plan active?
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The active plan, if any.
    pub fn plan(&self) -> Option<&FaultPlan> {
        self.inner.as_ref().map(|i| &i.plan)
    }

    /// Roll the dice at `site` at virtual time `now`. Returns `true` when
    /// a fault fires. Deterministic: the outcome depends only on the
    /// seed, the site, and how many times this site has rolled before
    /// (plus any pending `(vtime, site)` trigger). Call this
    /// unconditionally on the injection path — never gate it on
    /// trace-recording state — so the roll sequence is identical across
    /// instrumented and bare runs.
    pub fn roll(&self, site: FaultSite, now: SimTime) -> bool {
        let Some(inner) = &self.inner else {
            return false;
        };
        let k = inner.counters[site.idx()].fetch_add(1, Ordering::Relaxed);
        for (ti, (at, tsite)) in inner.plan.triggers.iter().enumerate() {
            if *tsite == site && now >= *at && !inner.fired[ti].swap(true, Ordering::Relaxed) {
                return true;
            }
        }
        let rate = inner.plan.rates[site.idx()];
        if rate <= 0.0 {
            return false;
        }
        if rate >= 1.0 {
            return true;
        }
        let h = splitmix64(
            inner
                .plan
                .seed
                .wrapping_add((site.idx() as u64 + 1).wrapping_mul(0xa076_1d64_78bd_642f))
                .wrapping_add(k.wrapping_mul(0xe703_7ed1_a0b4_28db)),
        );
        // Map the hash onto [0,1) with 53 bits of precision.
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        u < rate
    }

    /// How many extra attempts a transient-faultable operation needs at
    /// `site`: rolls until a roll comes up clean or the retry budget is
    /// exhausted. `0` means the first attempt succeeds.
    pub fn extra_attempts(&self, site: FaultSite, now: SimTime) -> u32 {
        let Some(plan) = self.plan() else { return 0 };
        let mut extra = 0;
        while extra < plan.max_retries && self.roll(site, now) {
            extra += 1;
        }
        extra
    }

    /// Is device `dev_idx` on `node` failed from launch?
    pub fn device_failed(&self, node: usize, dev_idx: usize) -> bool {
        self.plan()
            .map(|p| p.failed_devices.contains(&(node, dev_idx)))
            .unwrap_or(false)
    }

    /// Backoff before resend attempt `attempt` (1-based):
    /// `backoff_base * 2^(attempt-1)`, capped at 2^10 steps.
    pub fn backoff(&self, attempt: u32) -> SimDur {
        let base = self.plan().map(|p| p.backoff_base).unwrap_or(SimDur::ZERO);
        SimDur(
            base.0
                .saturating_mul(1u64 << attempt.saturating_sub(1).min(10)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_never_fires() {
        let c = Chaos::disabled();
        for _ in 0..100 {
            assert!(!c.roll(FaultSite::LinkDrop, SimTime(0)));
        }
        assert!(!c.enabled());
        assert_eq!(c.extra_attempts(FaultSite::CopyFault, SimTime(0)), 0);
    }

    #[test]
    fn rate_zero_and_one() {
        let c = Chaos::new(FaultPlan::new(7).with_rate(FaultSite::LinkDrop, 1.0));
        assert!(c.roll(FaultSite::LinkDrop, SimTime(0)));
        assert!(!c.roll(FaultSite::LinkDelay, SimTime(0)));
    }

    #[test]
    fn roll_sequence_is_deterministic() {
        let mk = || Chaos::new(FaultPlan::new(42).with_uniform_rate(0.3));
        let a = mk();
        let b = mk();
        for i in 0..1000 {
            let site = FaultSite::ALL[i % FaultSite::ALL.len()];
            assert_eq!(
                a.roll(site, SimTime(i as u64)),
                b.roll(site, SimTime(i as u64))
            );
        }
    }

    #[test]
    fn sites_roll_independently() {
        // Interleaving rolls at another site must not perturb a site's
        // own sequence (per-site counters, not one global stream).
        let a = Chaos::new(FaultPlan::new(9).with_uniform_rate(0.5));
        let b = Chaos::new(FaultPlan::new(9).with_uniform_rate(0.5));
        let mut seq_a = Vec::new();
        for i in 0..200 {
            seq_a.push(a.roll(FaultSite::CopyFault, SimTime(i)));
        }
        let mut seq_b = Vec::new();
        for i in 0..200 {
            // Extra rolls at a different site in between.
            b.roll(FaultSite::LinkDrop, SimTime(i));
            seq_b.push(b.roll(FaultSite::CopyFault, SimTime(i)));
        }
        assert_eq!(seq_a, seq_b);
    }

    #[test]
    fn rate_is_roughly_honored() {
        let c = Chaos::new(FaultPlan::new(1234).with_rate(FaultSite::LinkDrop, 0.2));
        let fired = (0..10_000)
            .filter(|i| c.roll(FaultSite::LinkDrop, SimTime(*i)))
            .count();
        assert!((1600..2400).contains(&fired), "got {fired} of 10000");
    }

    #[test]
    fn trigger_fires_once_at_vtime() {
        let c = Chaos::new(FaultPlan::new(0).with_trigger(SimTime(100), FaultSite::QueueAbort));
        assert!(!c.roll(FaultSite::QueueAbort, SimTime(50)));
        assert!(c.roll(FaultSite::QueueAbort, SimTime(150)));
        assert!(!c.roll(FaultSite::QueueAbort, SimTime(200)), "one-shot");
        // Other sites unaffected.
        assert!(!c.roll(FaultSite::LinkDrop, SimTime(300)));
    }

    #[test]
    fn extra_attempts_bounded_by_budget() {
        let c = Chaos::new(
            FaultPlan::new(3)
                .with_rate(FaultSite::CopyFault, 1.0)
                .with_max_retries(3),
        );
        assert_eq!(c.extra_attempts(FaultSite::CopyFault, SimTime(0)), 3);
    }

    #[test]
    fn device_failed_lookup() {
        let c = Chaos::new(FaultPlan::new(0).fail_device(1, 0));
        assert!(c.device_failed(1, 0));
        assert!(!c.device_failed(0, 0));
        assert!(!Chaos::disabled().device_failed(1, 0));
    }

    #[test]
    fn backoff_doubles() {
        let c = Chaos::new(FaultPlan::new(0));
        let b1 = c.backoff(1);
        let b2 = c.backoff(2);
        let b3 = c.backoff(3);
        assert_eq!(b2.0, b1.0 * 2);
        assert_eq!(b3.0, b1.0 * 4);
    }
}
