//! Flat-transport registry entries: the classic collective schedules,
//! written generically over [`PointToPoint`].
//!
//! Every function here consumes exactly one internal collective tag per
//! call (binomial composition delegates to trait bodies that take their
//! own), and all members of a communicator resolve the same entry for the
//! same call, so the `(comm, tag)` operation keys line up across ranks.
//!
//! Reductions fold f64 vectors. Fold orders differ between entries (ring
//! folds in rotated rank order, recursive doubling pairs by distance), so
//! results are bit-identical to the flat reference exactly when the
//! payload arithmetic is exact — integer-valued sums, Max/Min, power-of-
//! two products. The equivalence suite pins that contract.

use impacc_mem::Backing;
use impacc_mpi::{Comm, MsgBuf, PointToPoint, ReduceOp};
use impacc_vtime::Ctx;

use crate::scratch;

/// Copy `src`'s bytes into `dst` (same length) without charging time:
/// the local half of a degenerate (single-rank) collective.
pub(crate) fn copy_local(src: &MsgBuf, dst: &MsgBuf) {
    Backing::copy(&src.backing, src.off, &dst.backing, dst.off, src.len);
}

/// Binomial allreduce: the reduce+bcast composition, dispatched as its own
/// registry entry.
pub(crate) fn binomial_allreduce<T: PointToPoint>(
    t: &T,
    ctx: &Ctx,
    sendbuf: &MsgBuf,
    recvbuf: &MsgBuf,
    op: ReduceOp,
    comm: &Comm,
) {
    t.reduce(ctx, sendbuf, Some(recvbuf), op, 0, comm);
    t.flat_bcast(ctx, recvbuf, 0, comm);
}

/// Chunk length (in elems) of ring chunk `i` when `e` elems split over
/// `n` ranks: the first `e % n` chunks get one extra.
fn chunk_cnt(e: usize, n: u32, i: u32) -> usize {
    e / n as usize + usize::from((i as usize) < e % n as usize)
}

fn chunk_start(e: usize, n: u32, i: u32) -> usize {
    (0..i).map(|j| chunk_cnt(e, n, j)).sum()
}

/// Ring allreduce: chunked reduce-scatter ring (n−1 steps) followed by an
/// allgather ring (n−1 steps). Bandwidth-optimal: each rank moves
/// 2·(n−1)/n of the payload regardless of n.
pub(crate) fn ring_allreduce<T: PointToPoint>(
    t: &T,
    ctx: &Ctx,
    sendbuf: &MsgBuf,
    recvbuf: &MsgBuf,
    op: ReduceOp,
    comm: &Comm,
) {
    let n = comm.size();
    if n <= 1 {
        return copy_local(sendbuf, recvbuf);
    }
    let r = t.comm_rank(comm);
    let tag = t.coll_seq().next_tag(comm);
    let mut acc = sendbuf.read_f64s();
    let e = acc.len();
    let next = (r + 1) % n;
    let prev = (r + n - 1) % n;
    // Reduce-scatter: after step s, rank r holds the running sum of
    // chunks (r−s)..r; after n−1 steps it owns chunk (r+1) mod n fully.
    for s in 0..n - 1 {
        let si = (r + n - s) % n;
        let ri = (r + n - s - 1) % n;
        let (slo, scnt) = (chunk_start(e, n, si), chunk_cnt(e, n, si));
        let (rlo, rcnt) = (chunk_start(e, n, ri), chunk_cnt(e, n, ri));
        let sb = scratch(scnt as u64 * 8);
        sb.write_f64s(&acc[slo..slo + scnt]);
        let rb = scratch(rcnt as u64 * 8);
        t.pt_sendrecv(ctx, &sb, next, &rb, prev, tag, comm);
        op.combine(&mut acc[rlo..rlo + rcnt], &rb.read_f64s());
    }
    // Allgather ring: circulate the completed chunks.
    for s in 0..n - 1 {
        let si = (r + 1 + n - s) % n;
        let ri = (r + n - s) % n;
        let (slo, scnt) = (chunk_start(e, n, si), chunk_cnt(e, n, si));
        let (rlo, rcnt) = (chunk_start(e, n, ri), chunk_cnt(e, n, ri));
        let sb = scratch(scnt as u64 * 8);
        sb.write_f64s(&acc[slo..slo + scnt]);
        let rb = scratch(rcnt as u64 * 8);
        t.pt_sendrecv(ctx, &sb, next, &rb, prev, tag, comm);
        acc[rlo..rlo + rcnt].copy_from_slice(&rb.read_f64s());
    }
    recvbuf.write_f64s(&acc);
}

/// The non-power-of-two remainder fold shared by recursive doubling and
/// Rabenseifner (MPICH's scheme): the first `2·rem` ranks pair up, evens
/// fold into their odd neighbour and sit out; the survivors renumber into
/// a power-of-two group. Returns `(pof2, rem, newrank)`; `newrank < 0`
/// means this rank sat out and must receive the final result.
#[allow(clippy::too_many_arguments)]
fn fold_remainder<T: PointToPoint>(
    t: &T,
    ctx: &Ctx,
    acc: &mut [f64],
    op: ReduceOp,
    r: u32,
    n: u32,
    tag: i32,
    comm: &Comm,
) -> (u32, u32, i64) {
    let mut pof2 = 1u32;
    while pof2 * 2 <= n {
        pof2 *= 2;
    }
    let rem = n - pof2;
    let bytes = acc.len() as u64 * 8;
    let newrank = if r < 2 * rem {
        if r.is_multiple_of(2) {
            let sb = scratch(bytes);
            sb.write_f64s(acc);
            t.pt_send(ctx, &sb, r + 1, tag, comm);
            -1
        } else {
            let rb = scratch(bytes);
            t.pt_recv(ctx, &rb, Some(r - 1), Some(tag), comm);
            op.combine(acc, &rb.read_f64s());
            (r / 2) as i64
        }
    } else {
        (r - rem) as i64
    };
    (pof2, rem, newrank)
}

/// The reverse of [`fold_remainder`]: deliver the final result to the
/// ranks that sat out.
fn unfold_remainder<T: PointToPoint>(
    t: &T,
    ctx: &Ctx,
    acc: &mut Vec<f64>,
    r: u32,
    rem: u32,
    tag: i32,
    comm: &Comm,
) {
    if r >= 2 * rem {
        return;
    }
    let bytes = acc.len() as u64 * 8;
    if r.is_multiple_of(2) {
        let rb = scratch(bytes);
        t.pt_recv(ctx, &rb, Some(r + 1), Some(tag), comm);
        *acc = rb.read_f64s();
    } else {
        let sb = scratch(bytes);
        sb.write_f64s(acc);
        t.pt_send(ctx, &sb, r - 1, tag, comm);
    }
}

/// Translate a renumbered (power-of-two group) rank back to its
/// communicator-relative rank.
fn real_rank(newrank: u32, rem: u32) -> u32 {
    if newrank < rem {
        2 * newrank + 1
    } else {
        newrank + rem
    }
}

/// Recursive-doubling allreduce: ⌈log2 n⌉ full-payload exchanges —
/// latency-optimal for small messages.
pub(crate) fn rd_allreduce<T: PointToPoint>(
    t: &T,
    ctx: &Ctx,
    sendbuf: &MsgBuf,
    recvbuf: &MsgBuf,
    op: ReduceOp,
    comm: &Comm,
) {
    let n = comm.size();
    if n <= 1 {
        return copy_local(sendbuf, recvbuf);
    }
    let r = t.comm_rank(comm);
    let tag = t.coll_seq().next_tag(comm);
    let mut acc = sendbuf.read_f64s();
    let bytes = sendbuf.len;
    let (pof2, rem, newrank) = fold_remainder(t, ctx, &mut acc, op, r, n, tag, comm);
    if newrank >= 0 {
        let nr = newrank as u32;
        let mut mask = 1u32;
        while mask < pof2 {
            let partner = real_rank(nr ^ mask, rem);
            let sb = scratch(bytes);
            sb.write_f64s(&acc);
            let rb = scratch(bytes);
            t.pt_sendrecv(ctx, &sb, partner, &rb, partner, tag, comm);
            op.combine(&mut acc, &rb.read_f64s());
            mask <<= 1;
        }
    }
    unfold_remainder(t, ctx, &mut acc, r, rem, tag, comm);
    recvbuf.write_f64s(&acc);
}

/// Rabenseifner allreduce: recursive-halving reduce-scatter then a
/// recursive-doubling allgather that replays the split history in
/// reverse — bandwidth-optimal with log-latency, the classic mid-size
/// choice.
pub(crate) fn rabenseifner_allreduce<T: PointToPoint>(
    t: &T,
    ctx: &Ctx,
    sendbuf: &MsgBuf,
    recvbuf: &MsgBuf,
    op: ReduceOp,
    comm: &Comm,
) {
    let n = comm.size();
    if n <= 1 {
        return copy_local(sendbuf, recvbuf);
    }
    let r = t.comm_rank(comm);
    let tag = t.coll_seq().next_tag(comm);
    let mut acc = sendbuf.read_f64s();
    let (pof2, rem, newrank) = fold_remainder(t, ctx, &mut acc, op, r, n, tag, comm);
    if newrank >= 0 {
        let nr = newrank as u32;
        let e = acc.len();
        let (mut lo, mut hi) = (0usize, e);
        // (mask, lo, mid, hi, kept_lower) per halving level.
        let mut hist: Vec<(u32, usize, usize, usize, bool)> = Vec::new();
        let mut mask = pof2 >> 1;
        while mask >= 1 {
            let partner = real_rank(nr ^ mask, rem);
            let mid = lo + (hi - lo) / 2;
            let keep_lower = nr & mask == 0;
            let (slo, shi, klo, khi) = if keep_lower {
                (mid, hi, lo, mid)
            } else {
                (lo, mid, mid, hi)
            };
            let sb = scratch((shi - slo) as u64 * 8);
            sb.write_f64s(&acc[slo..shi]);
            let rb = scratch((khi - klo) as u64 * 8);
            t.pt_sendrecv(ctx, &sb, partner, &rb, partner, tag, comm);
            op.combine(&mut acc[klo..khi], &rb.read_f64s());
            hist.push((mask, lo, mid, hi, keep_lower));
            if keep_lower {
                hi = mid;
            } else {
                lo = mid;
            }
            mask >>= 1;
        }
        // Allgather: unwind the levels deepest-first; at each level the
        // kept half is complete, so partners swap halves of that level's
        // range.
        for &(mask, flo, fmid, fhi, keep_lower) in hist.iter().rev() {
            let partner = real_rank(nr ^ mask, rem);
            let (slo, shi, klo, khi) = if keep_lower {
                (flo, fmid, fmid, fhi)
            } else {
                (fmid, fhi, flo, fmid)
            };
            let sb = scratch((shi - slo) as u64 * 8);
            sb.write_f64s(&acc[slo..shi]);
            let rb = scratch((khi - klo) as u64 * 8);
            t.pt_sendrecv(ctx, &sb, partner, &rb, partner, tag, comm);
            acc[klo..khi].copy_from_slice(&rb.read_f64s());
        }
    }
    unfold_remainder(t, ctx, &mut acc, r, rem, tag, comm);
    recvbuf.write_f64s(&acc);
}

/// Ring allgather: circulate blocks around the ring directly in
/// `recvbuf`, n−1 steps of one block each.
pub(crate) fn ring_allgather<T: PointToPoint>(
    t: &T,
    ctx: &Ctx,
    sendbuf: &MsgBuf,
    recvbuf: &MsgBuf,
    comm: &Comm,
) {
    let n = comm.size();
    let b = sendbuf.len;
    assert!(recvbuf.len >= b * n as u64, "allgather buffer too small");
    let r = t.comm_rank(comm);
    Backing::copy(
        &sendbuf.backing,
        sendbuf.off,
        &recvbuf.backing,
        recvbuf.off + r as u64 * b,
        b,
    );
    if n <= 1 {
        return;
    }
    let tag = t.coll_seq().next_tag(comm);
    let next = (r + 1) % n;
    let prev = (r + n - 1) % n;
    for s in 0..n - 1 {
        let si = (r + n - s) % n;
        let ri = (r + n - s - 1) % n;
        let out = recvbuf.slice(si as u64 * b, b);
        let inn = recvbuf.slice(ri as u64 * b, b);
        t.pt_sendrecv(ctx, &out, next, &inn, prev, tag, comm);
    }
}

/// Bruck allgather: ⌈log2 n⌉ steps of doubling block counts in a rotated
/// working buffer, then one local rotation into rank order.
pub(crate) fn bruck_allgather<T: PointToPoint>(
    t: &T,
    ctx: &Ctx,
    sendbuf: &MsgBuf,
    recvbuf: &MsgBuf,
    comm: &Comm,
) {
    let n = comm.size();
    let b = sendbuf.len;
    assert!(recvbuf.len >= b * n as u64, "allgather buffer too small");
    let r = t.comm_rank(comm);
    if n <= 1 {
        return copy_local(sendbuf, &recvbuf.slice(r as u64 * b, b));
    }
    let tag = t.coll_seq().next_tag(comm);
    // work block i holds rank (r+i) mod n's contribution.
    let work = scratch(n as u64 * b);
    Backing::copy(&sendbuf.backing, sendbuf.off, &work.backing, 0, b);
    let mut pof2 = 1u32;
    while pof2 < n {
        let cnt = pof2.min(n - pof2);
        let dst = (r + n - pof2) % n;
        let src = (r + pof2) % n;
        let out = work.slice(0, cnt as u64 * b);
        let inn = work.slice(pof2 as u64 * b, cnt as u64 * b);
        t.pt_sendrecv(ctx, &out, dst, &inn, src, tag, comm);
        pof2 <<= 1;
    }
    for i in 0..n {
        let owner = (r + i) % n;
        Backing::copy(
            &work.backing,
            i as u64 * b,
            &recvbuf.backing,
            recvbuf.off + owner as u64 * b,
            b,
        );
    }
}
