//! The two-level hierarchical path: per-node shared-memory rendezvous
//! plus leaders-only internode schedules.
//!
//! One [`NodeColl`] per node (created by the launcher alongside the node
//! VAS) is shared by every task the node hosts. A collective elects one
//! leader per node — the lowest comm-relative rank, or the root's rank on
//! the root's node — and splits into:
//!
//! 1. **intra-node up**: members post their send buffers into a slot
//!    keyed `(comm id, collective tag)`; the leader reads them *in place*
//!    through the shared backings (the node VAS makes a peer's buffer a
//!    plain pointer, §3.4) and folds in ascending rank order;
//! 2. **internode**: only leaders exchange, over the ordinary p2p engine
//!    (so link-fault sites and NIC contention apply unchanged);
//! 3. **intra-node down**: the leader publishes the result into a pooled
//!    shared backing ([`ReducePool`]) and members copy out.
//!
//! Intra-node folds/copies charge host-memcpy time and roll the
//! `copy_fault` chaos site; they emit `coll_intra` spans so the profiler
//! can separate the phases (`free_intranode_coll`).
//!
//! The wait loops follow the engine's check-then-wait idiom: actors are
//! serialized, so re-checking the slot under the lock and only then
//! parking on the [`Notify`] is race-free.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use impacc_mem::{Backing, ReducePool};
use impacc_mpi::{Comm, MsgBuf, PointToPoint, ReduceOp};
use impacc_vtime::{Ctx, Notify};
use parking_lot::Mutex;

use crate::{scratch, CollEngine};

/// One in-flight collective's per-node state.
#[derive(Default)]
struct Slot {
    /// `(comm-relative rank, send buffer)` posted by non-leader members.
    contribs: Vec<(u32, MsgBuf)>,
    /// The leader's published result, once ready.
    result: Option<Arc<Backing>>,
    /// Members that copied the result out (the last one retires the slot).
    taken: usize,
}

/// Per-node rendezvous for hierarchical collectives.
pub struct NodeColl {
    slots: Mutex<HashMap<(u64, i32), Slot>>,
    notify: Notify,
    pool: ReducePool,
}

impl NodeColl {
    /// A fresh rendezvous (one per node, shared by its tasks).
    pub fn new() -> Arc<NodeColl> {
        Arc::new(NodeColl {
            slots: Mutex::new(HashMap::new()),
            notify: Notify::new(),
            pool: ReducePool::new(),
        })
    }

    /// Post a member contribution and wake any waiting leader.
    fn post(&self, ctx: &Ctx, key: (u64, i32), r: u32, buf: MsgBuf) {
        self.slots
            .lock()
            .entry(key)
            .or_default()
            .contribs
            .push((r, buf));
        self.notify.notify_all(ctx);
    }

    /// Leader side: park until `want` members have posted, then return
    /// their contributions sorted by rank.
    fn await_contribs(&self, ctx: &Ctx, key: (u64, i32), want: usize) -> Vec<(u32, MsgBuf)> {
        loop {
            {
                let slots = self.slots.lock();
                if slots.get(&key).map_or(0, |s| s.contribs.len()) == want {
                    break;
                }
            }
            self.notify.wait(ctx, "coll_intra");
        }
        let mut c = self
            .slots
            .lock()
            .get(&key)
            .map_or_else(Vec::new, |s| s.contribs.clone());
        c.sort_by_key(|(r, _)| *r);
        c
    }

    /// Leader side: publish `len` bytes of `src` as the slot result and
    /// release the members.
    fn publish(&self, ctx: &Ctx, key: (u64, i32), src: (&Arc<Backing>, u64), len: u64) {
        let out = self.pool.take(len);
        Backing::copy(src.0, src.1, &out, 0, len);
        self.slots.lock().entry(key).or_default().result = Some(out);
        self.notify.notify_all(ctx);
    }

    /// Member side: park until the leader publishes, then return the
    /// result backing.
    fn await_result(&self, ctx: &Ctx, key: (u64, i32)) -> Arc<Backing> {
        loop {
            {
                let slots = self.slots.lock();
                if let Some(res) = slots.get(&key).and_then(|s| s.result.clone()) {
                    break res;
                }
            }
            self.notify.wait(ctx, "coll_intra");
        }
    }

    /// Member side: mark the result consumed; the last of `members`
    /// non-leader takers retires the slot and recycles the backing.
    fn retire(&self, key: (u64, i32), takers: usize) {
        let mut slots = self.slots.lock();
        let done = {
            let s = slots.get_mut(&key).expect("retiring a live slot");
            s.taken += 1;
            s.taken == takers
        };
        if done {
            let s = slots.remove(&key).unwrap();
            self.pool.put(s.result.expect("retired slot has a result"));
        }
    }
}

/// One node's member group for a collective, leader included.
struct Group {
    node: usize,
    leader: u32,
    members: Vec<u32>,
}

impl CollEngine {
    /// Partition `comm` into per-node groups, deterministically ordered by
    /// leader rank. The leader is the lowest member — except on the root's
    /// node (when `root` is given), where the root leads so rooted
    /// collectives need no extra intra-node hop.
    fn groups(&self, comm: &Comm, root: Option<u32>) -> Vec<Group> {
        let mut by_node: BTreeMap<usize, Vec<u32>> = BTreeMap::new();
        for rel in 0..comm.size() {
            let node = self.node_of()[comm.global_of(rel) as usize];
            by_node.entry(node).or_default().push(rel);
        }
        let mut gs: Vec<Group> = by_node
            .into_iter()
            .map(|(node, members)| {
                let leader = match root {
                    Some(rt) if members.contains(&rt) => rt,
                    _ => members[0],
                };
                Group {
                    node,
                    leader,
                    members,
                }
            })
            .collect();
        gs.sort_by_key(|g| g.leader);
        gs
    }

    /// This rank's group (and sanity-check it lives on our node).
    fn my_group<'a>(&self, groups: &'a [Group], r: u32) -> &'a Group {
        let g = groups
            .iter()
            .find(|g| g.members.contains(&r))
            .expect("rank is a member of its communicator");
        debug_assert_eq!(g.node, self.node(), "rendezvous is per-node");
        g
    }

    /// Wrap an intra-node phase: charge memcpy time (with chaos), count
    /// bytes, and emit the `coll_intra` span.
    fn intra_phase(&self, ctx: &Ctx, op: &'static str, phase: &'static str, bytes: u64) {
        if bytes == 0 {
            return;
        }
        let t0 = ctx.now();
        self.charge_intra(ctx, bytes);
        ctx.metrics().add("coll_intra_bytes", bytes);
        ctx.span("coll_intra", t0, ctx.now(), || {
            vec![
                ("op", op.to_string()),
                ("phase", phase.to_string()),
                ("bytes", bytes.to_string()),
            ]
        });
    }

    /// Hierarchical allreduce: intra-node fold → binomial reduce+bcast
    /// over leaders → publish/copy-out.
    pub(crate) fn hier_allreduce<T: PointToPoint>(
        &self,
        t: &T,
        ctx: &Ctx,
        sendbuf: &MsgBuf,
        recvbuf: &MsgBuf,
        op: ReduceOp,
        comm: &Comm,
    ) {
        let n = comm.size();
        if n <= 1 {
            return crate::algos::copy_local(sendbuf, recvbuf);
        }
        let r = t.comm_rank(comm);
        let tag = t.coll_seq().next_tag(comm);
        let key = (comm.id(), tag);
        let groups = self.groups(comm, None);
        let g = self.my_group(&groups, r);
        let nc = self.rendezvous().clone();
        let bytes = sendbuf.len;
        if r != g.leader {
            nc.post(ctx, key, r, sendbuf.clone());
            let res = nc.await_result(ctx, key);
            Backing::copy(&res, 0, &recvbuf.backing, recvbuf.off, bytes);
            self.intra_phase(ctx, "allreduce", "copy_out", bytes);
            nc.retire(key, g.members.len() - 1);
            return;
        }
        // Leader: fold the node's contributions in ascending rank order
        // (canonical order — identical to the flat reference for exact
        // payloads regardless of where ranks live).
        let contribs = nc.await_contribs(ctx, key, g.members.len() - 1);
        let mut acc = sendbuf.read_f64s();
        let mut fold: Vec<(u32, &MsgBuf)> = contribs.iter().map(|(rr, b)| (*rr, b)).collect();
        fold.push((r, sendbuf));
        fold.sort_by_key(|(rr, _)| *rr);
        let mut acc_set = false;
        for (rr, b) in fold {
            if rr == r {
                if !acc_set {
                    acc = sendbuf.read_f64s();
                    acc_set = true;
                } else {
                    op.combine(&mut acc, &sendbuf.read_f64s());
                }
                continue;
            }
            if !acc_set {
                acc = b.read_f64s();
                acc_set = true;
            } else {
                op.combine(&mut acc, &b.read_f64s());
            }
        }
        self.intra_phase(
            ctx,
            "allreduce",
            "fold",
            bytes * (g.members.len() as u64 - 1),
        );
        recvbuf.write_f64s(&acc);
        // Internode: binomial reduce to the first leader, binomial bcast
        // back over the leader overlay.
        let leaders: Vec<u32> = groups.iter().map(|g| g.leader).collect();
        let ln = leaders.len() as u32;
        if ln > 1 {
            let li = leaders.iter().position(|&l| l == r).unwrap() as u32;
            let tmp = scratch(bytes);
            let mut mask = 1u32;
            while mask < ln {
                if li & mask == 0 {
                    let child = li | mask;
                    if child < ln {
                        t.pt_recv(ctx, &tmp, Some(leaders[child as usize]), Some(tag), comm);
                        op.combine(&mut acc, &tmp.read_f64s());
                    }
                } else {
                    let parent = li & !mask;
                    tmp.write_f64s(&acc);
                    t.pt_send(ctx, &tmp, leaders[parent as usize], tag, comm);
                    ctx.metrics().add("coll_inter_bytes", bytes);
                    break;
                }
                mask <<= 1;
            }
            recvbuf.write_f64s(&acc);
            overlay_bcast(t, ctx, recvbuf, &leaders, li, 0, tag, comm);
        }
        // Publish for the members.
        if g.members.len() > 1 {
            self.intra_phase(ctx, "allreduce", "publish", bytes);
            nc.publish(ctx, key, (&recvbuf.backing, recvbuf.off), bytes);
        }
    }

    /// Hierarchical bcast: binomial over the leader overlay (root leads
    /// its node), then a single shared publish each member copies from —
    /// the §3.8 shape: one node-shared buffer instead of per-pair
    /// messages.
    pub(crate) fn hier_bcast<T: PointToPoint>(
        &self,
        t: &T,
        ctx: &Ctx,
        buf: &MsgBuf,
        root: u32,
        comm: &Comm,
    ) {
        let n = comm.size();
        if n <= 1 {
            return;
        }
        let r = t.comm_rank(comm);
        let tag = t.coll_seq().next_tag(comm);
        let key = (comm.id(), tag);
        let groups = self.groups(comm, Some(root));
        let g = self.my_group(&groups, r);
        let nc = self.rendezvous().clone();
        let bytes = buf.len;
        if r != g.leader {
            let res = nc.await_result(ctx, key);
            Backing::copy(&res, 0, &buf.backing, buf.off, bytes);
            self.intra_phase(ctx, "bcast", "copy_out", bytes);
            nc.retire(key, g.members.len() - 1);
            return;
        }
        let leaders: Vec<u32> = groups.iter().map(|g| g.leader).collect();
        let ln = leaders.len() as u32;
        if ln > 1 {
            let li = leaders.iter().position(|&l| l == r).unwrap() as u32;
            let ri = leaders.iter().position(|&l| l == root).unwrap() as u32;
            overlay_bcast(t, ctx, buf, &leaders, li, ri, tag, comm);
        }
        if g.members.len() > 1 {
            self.intra_phase(ctx, "bcast", "publish", bytes);
            nc.publish(ctx, key, (&buf.backing, buf.off), bytes);
        }
    }

    /// Hierarchical allgather: intra-node gather at the leader, a ring of
    /// variable-size node blocks over the leader overlay, then
    /// publish/copy-out of the assembled vector.
    pub(crate) fn hier_allgather<T: PointToPoint>(
        &self,
        t: &T,
        ctx: &Ctx,
        sendbuf: &MsgBuf,
        recvbuf: &MsgBuf,
        comm: &Comm,
    ) {
        let n = comm.size();
        let b = sendbuf.len;
        assert!(recvbuf.len >= b * n as u64, "allgather buffer too small");
        let r = t.comm_rank(comm);
        if n <= 1 {
            return crate::algos::copy_local(sendbuf, &recvbuf.slice(r as u64 * b, b));
        }
        let tag = t.coll_seq().next_tag(comm);
        let key = (comm.id(), tag);
        let groups = self.groups(comm, None);
        let gi = groups
            .iter()
            .position(|g| g.members.contains(&r))
            .expect("rank is a member");
        let g = &groups[gi];
        debug_assert_eq!(g.node, self.node());
        let nc = self.rendezvous().clone();
        let total = b * n as u64;
        if r != g.leader {
            nc.post(ctx, key, r, sendbuf.clone());
            let res = nc.await_result(ctx, key);
            Backing::copy(&res, 0, &recvbuf.backing, recvbuf.off, total);
            self.intra_phase(ctx, "allgather", "copy_out", total);
            nc.retire(key, g.members.len() - 1);
            return;
        }
        // Leader: place every member's block (own included) at its rank
        // offset in recvbuf.
        let contribs = nc.await_contribs(ctx, key, g.members.len() - 1);
        for (mr, mb) in contribs
            .iter()
            .map(|(mr, mb)| (*mr, mb))
            .chain([(r, sendbuf)])
        {
            Backing::copy(
                &mb.backing,
                mb.off,
                &recvbuf.backing,
                recvbuf.off + mr as u64 * b,
                b,
            );
        }
        self.intra_phase(ctx, "allgather", "gather", b * (g.members.len() as u64 - 1));
        // Internode ring of packed node blocks (sizes derived from the
        // shared placement, so every leader knows every block size).
        let ln = groups.len();
        if ln > 1 {
            let li = gi;
            let next = groups[(li + 1) % ln].leader;
            let prev = groups[(li + ln - 1) % ln].leader;
            let pack = |j: usize| -> MsgBuf {
                let blk = scratch(groups[j].members.len() as u64 * b);
                for (k, &mr) in groups[j].members.iter().enumerate() {
                    Backing::copy(
                        &recvbuf.backing,
                        recvbuf.off + mr as u64 * b,
                        &blk.backing,
                        k as u64 * b,
                        b,
                    );
                }
                blk
            };
            let mut blocks: Vec<Option<MsgBuf>> = (0..ln).map(|_| None).collect();
            blocks[li] = Some(pack(li));
            for s in 0..ln - 1 {
                let sj = (li + ln - s) % ln;
                let rj = (li + ln - s - 1) % ln;
                let rblk = scratch(groups[rj].members.len() as u64 * b);
                t.pt_sendrecv(
                    ctx,
                    blocks[sj].as_ref().expect("block circulated in order"),
                    next,
                    &rblk,
                    prev,
                    tag,
                    comm,
                );
                ctx.metrics()
                    .add("coll_inter_bytes", blocks[sj].as_ref().unwrap().len);
                for (k, &mr) in groups[rj].members.iter().enumerate() {
                    Backing::copy(
                        &rblk.backing,
                        k as u64 * b,
                        &recvbuf.backing,
                        recvbuf.off + mr as u64 * b,
                        b,
                    );
                }
                blocks[rj] = Some(rblk);
            }
        }
        if g.members.len() > 1 {
            self.intra_phase(ctx, "allgather", "publish", total);
            nc.publish(ctx, key, (&recvbuf.backing, recvbuf.off), total);
        }
    }

    /// Hierarchical barrier: members check in at their leader, leaders run
    /// a dissemination barrier, then the leader releases the node.
    pub(crate) fn hier_barrier<T: PointToPoint>(&self, t: &T, ctx: &Ctx, comm: &Comm) {
        let n = comm.size();
        if n <= 1 {
            return;
        }
        let r = t.comm_rank(comm);
        let tag = t.coll_seq().next_tag(comm);
        let key = (comm.id(), tag);
        let groups = self.groups(comm, None);
        let g = self.my_group(&groups, r);
        let nc = self.rendezvous().clone();
        if r != g.leader {
            nc.post(ctx, key, r, scratch(0));
            let _ = nc.await_result(ctx, key);
            nc.retire(key, g.members.len() - 1);
            return;
        }
        let _ = nc.await_contribs(ctx, key, g.members.len() - 1);
        let leaders: Vec<u32> = groups.iter().map(|g| g.leader).collect();
        let ln = leaders.len() as u32;
        if ln > 1 {
            let li = leaders.iter().position(|&l| l == r).unwrap() as u32;
            let token = scratch(0);
            let token_in = scratch(0);
            let mut k = 1u32;
            while k < ln {
                let dst = leaders[((li + k) % ln) as usize];
                let src = leaders[((li + ln - k) % ln) as usize];
                t.pt_sendrecv(ctx, &token, dst, &token_in, src, tag, comm);
                k <<= 1;
            }
        }
        if g.members.len() > 1 {
            nc.publish(ctx, key, (&scratch(0).backing, 0), 0);
        }
    }
}

/// Binomial bcast over a leader overlay: ranks `leaders[..]`, rooted at
/// overlay index `ri`; `li` is this leader's overlay index.
#[allow(clippy::too_many_arguments)]
fn overlay_bcast<T: PointToPoint>(
    t: &T,
    ctx: &Ctx,
    buf: &MsgBuf,
    leaders: &[u32],
    li: u32,
    ri: u32,
    tag: i32,
    comm: &Comm,
) {
    let ln = leaders.len() as u32;
    let vr = (li + ln - ri) % ln;
    let mut mask = 1u32;
    while mask < ln {
        if vr & mask != 0 {
            let src = leaders[((vr - mask + ri) % ln) as usize];
            t.pt_recv(ctx, buf, Some(src), Some(tag), comm);
            break;
        }
        mask <<= 1;
    }
    mask >>= 1;
    while mask > 0 {
        if vr + mask < ln {
            let dst = leaders[((vr + mask + ri) % ln) as usize];
            t.pt_send(ctx, buf, dst, tag, comm);
            ctx.metrics().add("coll_inter_bytes", buf.len);
        }
        mask >>= 1;
    }
}
