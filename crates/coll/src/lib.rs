//! # impacc-coll — the collectives engine
//!
//! Flat point-to-point collectives (`impacc_mpi::PointToPoint`'s default
//! bodies) treat every rank as remote: intra-node peers pay full
//! message-engine latency and large reductions serialize at a root. This
//! crate is the NCCL-shaped subsystem on top: an **algorithm registry**
//! (binomial tree, ring, recursive doubling, Rabenseifner
//! reduce-scatter+allgather, Bruck) plus a **two-level hierarchical path**
//! that elects one leader per node, runs the intra-node phase as direct
//! shared-memory reduction/copies through the node VAS (`impacc-mem`
//! backings + [`ReducePool`](impacc_mem::ReducePool) publish buffers), and
//! crosses the network only between leaders.
//!
//! A [`CollEngine`] picks the algorithm per call from message size,
//! communicator shape and job topology ([`impacc_machine::JobTopo`]);
//! the choice is overridable globally (`IMPACC_COLL_ALGO`), per launch
//! (`Launch::coll_algo`) and per call ([`CollOpts`]). Every collective
//! emits an `mpi_coll` span tagged with the chosen algorithm plus
//! `coll_intra` spans for the shared-memory phases, so `impacc-prof`
//! attributes collective stalls to the intra-node vs internode phase
//! (`free_intranode_coll` what-if).
//!
//! Every registry entry is semantically interchangeable with the `flat`
//! reference: for exactly-representable payloads the results are
//! bit-identical (the equivalence proptest suite pins this).

#![warn(missing_docs)]

pub mod algos;
pub mod hier;

use std::sync::Arc;

use impacc_machine::{Chaos, FaultSite, JobTopo};
use impacc_mem::Backing;
use impacc_mpi::{BufLoc, Comm, MsgBuf, PointToPoint, ReduceOp};
use impacc_vtime::{Ctx, SimDur};

pub use hier::NodeColl;

/// A registry entry: one way to run a collective.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum CollAlgo {
    /// The flat p2p derivation from `impacc_mpi::PointToPoint` — the
    /// correctness reference.
    Flat,
    /// Binomial tree (reduce+bcast composition for allreduce).
    Binomial,
    /// Ring: chunked reduce-scatter + allgather rings (bandwidth-optimal).
    Ring,
    /// Recursive doubling (latency-optimal for small payloads).
    RecursiveDoubling,
    /// Rabenseifner: recursive-halving reduce-scatter + recursive-doubling
    /// allgather.
    Rabenseifner,
    /// Bruck's allgather (⌈log2 n⌉ steps at any n).
    Bruck,
    /// Two-level hierarchical: shared-memory intra-node phase, leaders-only
    /// internode phase.
    Hier,
}

impl CollAlgo {
    /// Every registry entry, in presentation order.
    pub const ALL: [CollAlgo; 7] = [
        CollAlgo::Flat,
        CollAlgo::Binomial,
        CollAlgo::Ring,
        CollAlgo::RecursiveDoubling,
        CollAlgo::Rabenseifner,
        CollAlgo::Bruck,
        CollAlgo::Hier,
    ];

    /// The registry/env spelling.
    pub fn label(self) -> &'static str {
        match self {
            CollAlgo::Flat => "flat",
            CollAlgo::Binomial => "binomial",
            CollAlgo::Ring => "ring",
            CollAlgo::RecursiveDoubling => "rd",
            CollAlgo::Rabenseifner => "rabenseifner",
            CollAlgo::Bruck => "bruck",
            CollAlgo::Hier => "hier",
        }
    }

    /// Parse a registry/env spelling.
    pub fn parse(s: &str) -> Option<CollAlgo> {
        CollAlgo::ALL.iter().copied().find(|a| a.label() == s)
    }

    /// Metrics counter key counting calls dispatched to this entry.
    pub fn counter(self) -> &'static str {
        match self {
            CollAlgo::Flat => "coll_algo_flat",
            CollAlgo::Binomial => "coll_algo_binomial",
            CollAlgo::Ring => "coll_algo_ring",
            CollAlgo::RecursiveDoubling => "coll_algo_rd",
            CollAlgo::Rabenseifner => "coll_algo_rabenseifner",
            CollAlgo::Bruck => "coll_algo_bruck",
            CollAlgo::Hier => "coll_algo_hier",
        }
    }

    /// The forced algorithm from `IMPACC_COLL_ALGO`, if set. Panics on an
    /// unknown spelling (a silently ignored override is worse).
    pub fn from_env() -> Option<CollAlgo> {
        let v = std::env::var("IMPACC_COLL_ALGO").ok()?;
        match CollAlgo::parse(&v) {
            Some(a) => Some(a),
            None => panic!(
                "IMPACC_COLL_ALGO={v:?} is not a registry entry \
                 (flat|binomial|ring|rd|rabenseifner|bruck|hier)"
            ),
        }
    }
}

/// The collective operations the engine dispatches.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum CollOp {
    /// `MPI_Allreduce`.
    Allreduce,
    /// `MPI_Bcast`.
    Bcast,
    /// `MPI_Allgather`.
    Allgather,
    /// `MPI_Barrier`.
    Barrier,
}

impl CollOp {
    /// Span/attr spelling.
    pub fn label(self) -> &'static str {
        match self {
            CollOp::Allreduce => "allreduce",
            CollOp::Bcast => "bcast",
            CollOp::Allgather => "allgather",
            CollOp::Barrier => "barrier",
        }
    }
}

/// Per-call options.
#[derive(Copy, Clone, Debug, Default)]
pub struct CollOpts {
    /// Force a registry entry for this call (still clamped to the entries
    /// that support the operation).
    pub algo: Option<CollAlgo>,
}

/// Scratch host buffer backed by uncapped storage (collective internals
/// must hold real bytes even in phys-capped runs).
pub(crate) fn scratch(len: u64) -> MsgBuf {
    MsgBuf::host(Backing::new(len, None), 0, len)
}

/// The per-task collectives engine: registry dispatch + selection policy.
///
/// One instance per task (cheap: a few `Arc`s). Generic over the
/// transport, so the same engine drives both the system MPI endpoint and
/// the IMPACC unified communication routines.
#[derive(Clone)]
pub struct CollEngine {
    /// Global rank → hosting node.
    node_of: Arc<Vec<usize>>,
    /// This task's node (sanity checks only; groups are derived from
    /// `node_of`).
    node: usize,
    /// Job placement shape, for the hierarchical pre-check.
    topo: JobTopo,
    /// Host memcpy bandwidth (bytes/s) for intra-node fold/copy charges.
    memcpy_bw: f64,
    /// Host memcpy latency (s) per intra-node fold/copy.
    memcpy_lat: f64,
    /// Fault injection: intra-node folds roll `FaultSite::CopyFault`.
    chaos: Chaos,
    /// This node's collective rendezvous, when the runtime provides one
    /// (IMPACC mode). `None` disables the hierarchical path.
    node_coll: Option<Arc<NodeColl>>,
    /// Launch- or env-forced algorithm.
    forced: Option<CollAlgo>,
}

impl CollEngine {
    /// Build an engine. `forced` (e.g. from `Launch::coll_algo`) wins over
    /// `IMPACC_COLL_ALGO`; with neither, the size/topology policy picks.
    pub fn new(
        node_of: Arc<Vec<usize>>,
        node: usize,
        memcpy_bw: f64,
        memcpy_lat: f64,
        chaos: Chaos,
        node_coll: Option<Arc<NodeColl>>,
        forced: Option<CollAlgo>,
    ) -> CollEngine {
        let topo = JobTopo::from_node_of(&node_of);
        let forced = forced.or_else(CollAlgo::from_env);
        CollEngine {
            node_of,
            node,
            topo,
            memcpy_bw,
            memcpy_lat,
            chaos,
            node_coll,
            forced,
        }
    }

    /// A flat-only engine (no hierarchical path, no fault injection) —
    /// for endpoints outside a launched runtime.
    pub fn detached(node_of: Arc<Vec<usize>>, node: usize) -> CollEngine {
        CollEngine::new(node_of, node, 20e9, 0.2e-6, Chaos::default(), None, None)
    }

    /// rank→node map accessor (hier phase grouping).
    pub(crate) fn node_of(&self) -> &[usize] {
        &self.node_of
    }

    pub(crate) fn node(&self) -> usize {
        self.node
    }

    pub(crate) fn rendezvous(&self) -> &Arc<NodeColl> {
        self.node_coll
            .as_ref()
            .expect("hierarchical path requires a NodeColl rendezvous")
    }

    /// Does any node host ≥ 2 members of `comm`? (Deterministic: every
    /// member computes this from the same shared placement.)
    fn comm_multi_rank(&self, comm: &Comm) -> bool {
        let mut seen: Vec<usize> = Vec::with_capacity(comm.size() as usize);
        for rel in 0..comm.size() {
            let node = self.node_of[comm.global_of(rel) as usize];
            if seen.contains(&node) {
                return true;
            }
            seen.push(node);
        }
        false
    }

    /// The size/topology policy (no overrides applied).
    fn policy(&self, op: CollOp, bytes: u64, comm: &Comm) -> CollAlgo {
        if comm.size() <= 1 {
            return CollAlgo::Flat;
        }
        if self.node_coll.is_some() && self.topo.multi_rank() && self.comm_multi_rank(comm) {
            return CollAlgo::Hier;
        }
        match op {
            CollOp::Barrier => CollAlgo::Flat,
            CollOp::Bcast => CollAlgo::Binomial,
            CollOp::Allreduce => {
                if bytes <= 4096 {
                    CollAlgo::RecursiveDoubling
                } else if bytes <= 256 * 1024 {
                    CollAlgo::Rabenseifner
                } else {
                    CollAlgo::Ring
                }
            }
            CollOp::Allgather => {
                if bytes.saturating_mul(comm.size() as u64) <= 64 * 1024 {
                    CollAlgo::Bruck
                } else {
                    CollAlgo::Ring
                }
            }
        }
    }

    /// The deterministic fallback when a requested entry does not support
    /// an operation (documented in DESIGN.md §5g).
    fn fallback(op: CollOp) -> CollAlgo {
        match op {
            CollOp::Allreduce | CollOp::Bcast => CollAlgo::Binomial,
            CollOp::Allgather => CollAlgo::Ring,
            CollOp::Barrier => CollAlgo::Flat,
        }
    }

    /// Clamp `algo` to the entries implementing `op`.
    fn clamp(&self, op: CollOp, algo: CollAlgo) -> CollAlgo {
        use CollAlgo::*;
        match (op, algo) {
            (_, Flat) => Flat,
            (_, Hier) if self.node_coll.is_none() => CollEngine::fallback(op),
            (_, Hier) => Hier,
            (CollOp::Allreduce, Binomial | Ring | RecursiveDoubling | Rabenseifner) => algo,
            (CollOp::Allreduce, Bruck) => RecursiveDoubling,
            (CollOp::Allgather, Ring | Bruck) => algo,
            (CollOp::Allgather, _) => Ring,
            (CollOp::Bcast, _) => Binomial,
            (CollOp::Barrier, _) => Flat,
        }
    }

    /// Resolve the registry entry for one call: per-call override, then
    /// the launch/env force, then the policy; clamped to what `op`
    /// supports. Pure function of per-call inputs every member shares, so
    /// all ranks of a collective resolve identically.
    pub fn select(&self, op: CollOp, bytes: u64, comm: &Comm, opts: CollOpts) -> CollAlgo {
        let pick = opts
            .algo
            .or(self.forced)
            .unwrap_or_else(|| self.policy(op, bytes, comm));
        self.clamp(op, pick)
    }

    /// Can the hierarchical path touch these buffers directly? (Device
    /// payloads fall back: the rendezvous folds through host memory.)
    fn hier_bufs_ok(bufs: &[&MsgBuf]) -> bool {
        bufs.iter().all(|b| b.loc == BufLoc::Host)
    }

    /// Charge virtual time for `bytes` of intra-node shared-memory
    /// traffic, rolling the `copy_fault` chaos site per the faulty-copy
    /// idiom: failed folds occupy the memory system for a full pass, then
    /// retry.
    pub(crate) fn charge_intra(&self, ctx: &Ctx, bytes: u64) {
        let d = SimDur::from_secs_f64(self.memcpy_lat + bytes as f64 / self.memcpy_bw);
        let extra = self.chaos.extra_attempts(FaultSite::CopyFault, ctx.now());
        for attempt in 1..=extra {
            ctx.metrics().inc("retries");
            ctx.metrics().inc("chaos_copy_fault");
            let f0 = ctx.now();
            ctx.advance(d, "coll_intra");
            ctx.span("fault", f0, ctx.now(), || {
                vec![
                    ("site", "copy_fault".to_string()),
                    ("at", "coll_intra".to_string()),
                    ("attempt", attempt.to_string()),
                ]
            });
            ctx.event("retry", || {
                vec![
                    ("site", "copy_fault".to_string()),
                    ("at", "coll_intra".to_string()),
                ]
            });
        }
        ctx.advance(d, "coll_intra");
    }

    /// Emit the engine-level `mpi_coll` span around a dispatched body.
    fn dispatch_span<R>(
        ctx: &Ctx,
        op: CollOp,
        algo: CollAlgo,
        bytes: u64,
        f: impl FnOnce() -> R,
    ) -> R {
        let t0 = ctx.now();
        let r = f();
        ctx.span("mpi_coll", t0, ctx.now(), || {
            vec![
                ("op", op.label().to_string()),
                ("algo", algo.label().to_string()),
                ("bytes", bytes.to_string()),
            ]
        });
        r
    }

    /// Engine-dispatched `MPI_Allreduce`.
    #[allow(clippy::too_many_arguments)]
    pub fn allreduce<T: PointToPoint>(
        &self,
        t: &T,
        ctx: &Ctx,
        sendbuf: &MsgBuf,
        recvbuf: &MsgBuf,
        op: ReduceOp,
        comm: &Comm,
        opts: CollOpts,
    ) {
        let mut algo = self.select(CollOp::Allreduce, sendbuf.len, comm, opts);
        if algo == CollAlgo::Hier && !CollEngine::hier_bufs_ok(&[sendbuf, recvbuf]) {
            algo = CollEngine::fallback(CollOp::Allreduce);
        }
        ctx.metrics().inc(algo.counter());
        if algo == CollAlgo::Flat {
            return t.flat_allreduce(ctx, sendbuf, recvbuf, op, comm);
        }
        CollEngine::dispatch_span(ctx, CollOp::Allreduce, algo, sendbuf.len, || match algo {
            CollAlgo::Binomial => algos::binomial_allreduce(t, ctx, sendbuf, recvbuf, op, comm),
            CollAlgo::Ring => algos::ring_allreduce(t, ctx, sendbuf, recvbuf, op, comm),
            CollAlgo::RecursiveDoubling => algos::rd_allreduce(t, ctx, sendbuf, recvbuf, op, comm),
            CollAlgo::Rabenseifner => {
                algos::rabenseifner_allreduce(t, ctx, sendbuf, recvbuf, op, comm)
            }
            CollAlgo::Hier => self.hier_allreduce(t, ctx, sendbuf, recvbuf, op, comm),
            CollAlgo::Flat | CollAlgo::Bruck => unreachable!("clamped"),
        })
    }

    /// Engine-dispatched `MPI_Bcast`.
    pub fn bcast<T: PointToPoint>(
        &self,
        t: &T,
        ctx: &Ctx,
        buf: &MsgBuf,
        root: u32,
        comm: &Comm,
        opts: CollOpts,
    ) {
        let mut algo = self.select(CollOp::Bcast, buf.len, comm, opts);
        if algo == CollAlgo::Hier && !CollEngine::hier_bufs_ok(&[buf]) {
            algo = CollEngine::fallback(CollOp::Bcast);
        }
        ctx.metrics().inc(algo.counter());
        match algo {
            CollAlgo::Flat => t.flat_bcast(ctx, buf, root, comm),
            CollAlgo::Binomial => {
                // The flat body *is* the binomial tree; dispatching it under
                // the binomial label keeps the registry honest.
                CollEngine::dispatch_span(ctx, CollOp::Bcast, algo, buf.len, || {
                    t.flat_bcast(ctx, buf, root, comm)
                })
            }
            CollAlgo::Hier => CollEngine::dispatch_span(ctx, CollOp::Bcast, algo, buf.len, || {
                self.hier_bcast(t, ctx, buf, root, comm)
            }),
            _ => unreachable!("clamped"),
        }
    }

    /// Engine-dispatched `MPI_Allgather`.
    pub fn allgather<T: PointToPoint>(
        &self,
        t: &T,
        ctx: &Ctx,
        sendbuf: &MsgBuf,
        recvbuf: &MsgBuf,
        comm: &Comm,
        opts: CollOpts,
    ) {
        let mut algo = self.select(CollOp::Allgather, sendbuf.len, comm, opts);
        if algo == CollAlgo::Hier && !CollEngine::hier_bufs_ok(&[sendbuf, recvbuf]) {
            algo = CollEngine::fallback(CollOp::Allgather);
        }
        ctx.metrics().inc(algo.counter());
        if algo == CollAlgo::Flat {
            return t.flat_allgather(ctx, sendbuf, recvbuf, comm);
        }
        CollEngine::dispatch_span(ctx, CollOp::Allgather, algo, sendbuf.len, || match algo {
            CollAlgo::Ring => algos::ring_allgather(t, ctx, sendbuf, recvbuf, comm),
            CollAlgo::Bruck => algos::bruck_allgather(t, ctx, sendbuf, recvbuf, comm),
            CollAlgo::Hier => self.hier_allgather(t, ctx, sendbuf, recvbuf, comm),
            _ => unreachable!("clamped"),
        })
    }

    /// Engine-dispatched `MPI_Barrier`.
    pub fn barrier<T: PointToPoint>(&self, t: &T, ctx: &Ctx, comm: &Comm, opts: CollOpts) {
        let algo = self.select(CollOp::Barrier, 0, comm, opts);
        ctx.metrics().inc(algo.counter());
        match algo {
            CollAlgo::Flat => t.flat_barrier(ctx, comm),
            CollAlgo::Hier => CollEngine::dispatch_span(ctx, CollOp::Barrier, algo, 0, || {
                self.hier_barrier(t, ctx, comm)
            }),
            _ => unreachable!("clamped"),
        }
    }
}

/// Test-only world harness, public so the equivalence suite (and any
/// downstream crate's tests) can drive the engine without the full
/// runtime. Not part of the stable API.
#[doc(hidden)]
pub mod testutil {
    use std::sync::Arc;

    use impacc_machine::{presets, ClusterResources};
    use impacc_mem::Backing;
    use impacc_mpi::{Comm, MpiTask, MsgBuf, SysEndpoint, SysMpi};
    use impacc_vtime::{Ctx, Sim};

    use crate::{CollEngine, NodeColl};

    /// Spawn one actor per rank with a per-node rendezvous and an engine,
    /// mirroring `impacc-mpi`'s `run_world` but engine-backed. `shape[i]`
    /// = ranks hosted on node `i`.
    pub fn run_world_engine(
        shape: &[usize],
        forced: Option<crate::CollAlgo>,
        f: impl Fn(&Ctx, SysEndpoint, CollEngine, Comm) + Send + Sync + 'static,
    ) {
        let n: usize = shape.iter().sum();
        assert!(n > 0, "empty world");
        let max_per_node = shape.iter().copied().max().unwrap();
        let res = Arc::new(ClusterResources::new(Arc::new(presets::test_cluster(
            shape.len(),
            max_per_node.clamp(1, 8),
        ))));
        let mut node_of: Vec<usize> = Vec::with_capacity(n);
        for (node, &cnt) in shape.iter().enumerate() {
            node_of.extend((0..cnt).map(|_| node));
        }
        let node_of = Arc::new(node_of);
        let colls: Vec<Arc<NodeColl>> = (0..shape.len()).map(|_| NodeColl::new()).collect();
        let sys = SysMpi::new(res, node_of.as_ref().clone());
        let world = Comm::world(n as u32);
        let f = Arc::new(f);
        let mut sim = Sim::new();
        for r in 0..n {
            let sys = sys.clone();
            let world = world.clone();
            let f = f.clone();
            let node = node_of[r];
            let engine = CollEngine::new(
                node_of.clone(),
                node,
                20e9,
                0.2e-6,
                Default::default(),
                Some(colls[node].clone()),
                forced,
            );
            sim.spawn(format!("rank{r}"), move |ctx| {
                let ep = SysEndpoint::new(MpiTask::new(sys, r as u32));
                f(ctx, ep, engine, world);
            });
        }
        sim.run().unwrap();
    }

    /// Host buffer holding `vals`.
    pub fn buf_of(vals: &[f64]) -> MsgBuf {
        let m = MsgBuf::host(
            Backing::new(vals.len() as u64 * 8, None),
            0,
            vals.len() as u64 * 8,
        );
        m.write_f64s(vals);
        m
    }

    /// Zeroed host buffer of `elems` f64s.
    pub fn zeros(elems: usize) -> MsgBuf {
        buf_of(&vec![0.0; elems])
    }
}

#[cfg(test)]
mod tests {
    use impacc_mpi::{PointToPoint, ReduceOp};

    use super::testutil::{buf_of, run_world_engine, zeros};
    use super::*;

    #[test]
    fn labels_roundtrip() {
        for a in CollAlgo::ALL {
            assert_eq!(CollAlgo::parse(a.label()), Some(a), "{a:?}");
        }
        assert_eq!(CollAlgo::parse("nccl"), None);
    }

    #[test]
    fn policy_prefers_hier_on_multi_rank_nodes() {
        let node_of = Arc::new(vec![0, 0, 1, 1]);
        let e = CollEngine::new(
            node_of.clone(),
            0,
            20e9,
            0.2e-6,
            Chaos::default(),
            Some(NodeColl::new()),
            None,
        );
        let comm = Comm::world(4);
        for (op, bytes) in [
            (CollOp::Allreduce, 64),
            (CollOp::Bcast, 1 << 20),
            (CollOp::Allgather, 64),
            (CollOp::Barrier, 0),
        ] {
            assert_eq!(
                e.select(op, bytes, &comm, CollOpts::default()),
                CollAlgo::Hier
            );
        }
        // Without a rendezvous the same policy degrades to flat-family picks.
        let d = CollEngine::detached(node_of, 0);
        assert_eq!(
            d.select(CollOp::Allreduce, 64, &comm, CollOpts::default()),
            CollAlgo::RecursiveDoubling
        );
        assert_eq!(
            d.select(CollOp::Allreduce, 1 << 20, &comm, CollOpts::default()),
            CollAlgo::Ring
        );
        assert_eq!(
            d.select(CollOp::Allreduce, 64 * 1024, &comm, CollOpts::default()),
            CollAlgo::Rabenseifner
        );
        assert_eq!(
            d.select(CollOp::Allgather, 1 << 20, &comm, CollOpts::default()),
            CollAlgo::Ring
        );
        assert_eq!(
            d.select(CollOp::Allgather, 16, &comm, CollOpts::default()),
            CollAlgo::Bruck
        );
    }

    #[test]
    fn unsupported_requests_clamp_deterministically() {
        let d = CollEngine::detached(Arc::new(vec![0, 1]), 0);
        let comm = Comm::world(2);
        let force = |a| CollOpts { algo: Some(a) };
        assert_eq!(
            d.select(CollOp::Allreduce, 8, &comm, force(CollAlgo::Bruck)),
            CollAlgo::RecursiveDoubling
        );
        assert_eq!(
            d.select(CollOp::Allgather, 8, &comm, force(CollAlgo::Rabenseifner)),
            CollAlgo::Ring
        );
        assert_eq!(
            d.select(CollOp::Barrier, 0, &comm, force(CollAlgo::Ring)),
            CollAlgo::Flat
        );
        // Hier without a rendezvous falls back, never panics.
        assert_eq!(
            d.select(CollOp::Allreduce, 8, &comm, force(CollAlgo::Hier)),
            CollAlgo::Binomial
        );
        assert_eq!(
            d.select(CollOp::Bcast, 8, &comm, force(CollAlgo::Ring)),
            CollAlgo::Binomial
        );
    }

    fn check_allreduce(shape: &'static [usize], algo: CollAlgo, elems: usize) {
        let n: usize = shape.iter().sum();
        run_world_engine(shape, None, move |ctx, ep, engine, world| {
            let r = ep.comm_rank(&world);
            let vals: Vec<f64> = (0..elems).map(|i| (r as usize * 7 + i) as f64).collect();
            let sb = buf_of(&vals);
            let rb = zeros(elems);
            engine.allreduce(
                &ep,
                ctx,
                &sb,
                &rb,
                ReduceOp::Sum,
                &world,
                CollOpts { algo: Some(algo) },
            );
            let expect: Vec<f64> = (0..elems)
                .map(|i| (0..n).map(|rr| (rr * 7 + i) as f64).sum())
                .collect();
            assert_eq!(rb.read_f64s(), expect, "{algo:?} n={n} elems={elems}");
        });
    }

    #[test]
    fn every_allreduce_entry_sums_correctly() {
        for algo in [
            CollAlgo::Flat,
            CollAlgo::Binomial,
            CollAlgo::Ring,
            CollAlgo::RecursiveDoubling,
            CollAlgo::Rabenseifner,
            CollAlgo::Hier,
        ] {
            // Non-power-of-two world across uneven nodes; elems not a
            // multiple of the rank count (uneven ring chunks).
            check_allreduce(&[3, 2, 1], algo, 10);
            // Power-of-two world, degenerate chunk sizes.
            check_allreduce(&[2, 2], algo, 3);
            // One-rank-per-node and all-on-one-node degenerate shapes.
            check_allreduce(&[1, 1, 1], algo, 5);
            check_allreduce(&[4], algo, 5);
        }
    }

    #[test]
    fn hier_allgather_and_bcast_deliver() {
        run_world_engine(&[3, 2], None, |ctx, ep, engine, world| {
            let r = ep.comm_rank(&world);
            let n = world.size();
            // allgather
            let sb = buf_of(&[r as f64 * 10.0, r as f64 * 10.0 + 1.0]);
            let rb = zeros(2 * n as usize);
            engine.allgather(
                &ep,
                ctx,
                &sb,
                &rb,
                &world,
                CollOpts {
                    algo: Some(CollAlgo::Hier),
                },
            );
            let expect: Vec<f64> = (0..n)
                .flat_map(|rr| [rr as f64 * 10.0, rr as f64 * 10.0 + 1.0])
                .collect();
            assert_eq!(rb.read_f64s(), expect);
            // bcast from a non-lowest root on node 1
            let b = if r == 4 {
                buf_of(&[42.0, 43.0])
            } else {
                zeros(2)
            };
            engine.bcast(
                &ep,
                ctx,
                &b,
                4,
                &world,
                CollOpts {
                    algo: Some(CollAlgo::Hier),
                },
            );
            assert_eq!(b.read_f64s(), vec![42.0, 43.0]);
            // barrier completes
            engine.barrier(
                &ep,
                ctx,
                &world,
                CollOpts {
                    algo: Some(CollAlgo::Hier),
                },
            );
        });
    }

    #[test]
    fn hier_counts_intra_and_inter_bytes() {
        run_world_engine(&[2, 2], None, |ctx, ep, engine, world| {
            let r = ep.comm_rank(&world);
            let sb = buf_of(&[r as f64; 8]);
            let rb = zeros(8);
            engine.allreduce(
                &ep,
                ctx,
                &sb,
                &rb,
                ReduceOp::Sum,
                &world,
                CollOpts::default(),
            );
            // Policy must have picked hier on this 2-ranks-per-node shape;
            // by the time any member returns, the leaders have folded
            // (intra) and exchanged (inter).
            assert!(ctx.metrics().get("coll_algo_hier") >= 1);
            assert!(ctx.metrics().get("coll_intra_bytes") > 0);
            assert!(ctx.metrics().get("coll_inter_bytes") > 0);
        });
    }
}
