//! Registry equivalence: every collective algorithm — the flat p2p
//! schedules, the dedicated trees/rings, and the two-level hierarchical
//! path — must deliver bit-identical results to the flat reference, on
//! random communicator splits, roots, message sizes and node shapes
//! (including the 1-rank-per-node and all-on-one-node degenerate cases).
//!
//! Payloads are chosen so that every reduction order is exact (integer
//! sums, order-independent Max/Min, power-of-two products); a divergence
//! is therefore a real schedule bug, never float noise.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use impacc_coll::testutil::{buf_of, run_world_engine, zeros};
use impacc_coll::{CollAlgo, CollOpts};
use impacc_mpi::{MsgBuf, PointToPoint, ReduceOp};
use proptest::prelude::*;

/// Node shapes under test; indices pick one per case. The first three are
/// the degenerate placements the hierarchical path must survive.
const SHAPES: &[&[usize]] = &[
    &[1],          // single rank
    &[5],          // all on one node
    &[1, 1, 1, 1], // one rank per node (no intra phase anywhere)
    &[3, 2],
    &[2, 2, 1],
    &[1, 3],
    &[2, 1, 2, 1],
    &[4, 4],
];

fn opts(algo: CollAlgo) -> CollOpts {
    CollOpts { algo: Some(algo) }
}

/// Exact payload for rank `r`: integers for Sum/Max/Min, powers of two
/// for Prod, so every fold order is bit-identical.
fn payload(op: ReduceOp, r: u32, elems: usize) -> Vec<f64> {
    (0..elems)
        .map(|i| match op {
            ReduceOp::Prod => {
                if (r as usize + i).is_multiple_of(2) {
                    1.0
                } else {
                    2.0
                }
            }
            _ => ((r as usize * 13 + i * 7) % 97) as f64 - 40.0,
        })
        .collect()
}

fn bits(b: &MsgBuf) -> Vec<u64> {
    b.read_f64s().iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn every_algorithm_matches_the_flat_reference(
        shape_idx in 0usize..8,
        elems in 0usize..12,
        op_idx in 0usize..4,
        root_sel in 0u32..64,
        ncolors in 1i64..4,
        color_mul in 1i64..5,
    ) {
        let shape = SHAPES[shape_idx];
        let n: usize = shape.iter().sum();
        let op = [ReduceOp::Sum, ReduceOp::Max, ReduceOp::Min, ReduceOp::Prod][op_idx];
        let barriers = Arc::new(AtomicUsize::new(0));
        let barriers_in = barriers.clone();
        // Shared split parameters: every rank derives the identical
        // colors/keys vectors locally, like an application would.
        let colors: Vec<i64> = (0..n as i64).map(|r| (r * color_mul) % ncolors).collect();
        let keys: Vec<i64> = (0..n as i64).map(|r| (r * 7919) % n as i64).collect();

        run_world_engine(shape, None, move |ctx, ep, engine, world| {
            let barriers = barriers_in.clone();
            let suite = |comm: &impacc_mpi::Comm| {
                let me = ep.comm_rank(comm);
                let size = comm.size();
                let root = root_sel % size;
                // Payloads are keyed by *global* rank so sub-communicator
                // reductions mix distinct contributions.
                let mine = payload(op, comm.global_of(me), elems);

                // ---- allreduce ----
                let sb = buf_of(&mine);
                let flat = zeros(elems);
                engine.allreduce(&ep, ctx, &sb, &flat, op, comm, opts(CollAlgo::Flat));
                for algo in CollAlgo::ALL {
                    let rb = zeros(elems);
                    engine.allreduce(&ep, ctx, &sb, &rb, op, comm, opts(algo));
                    assert_eq!(
                        bits(&rb),
                        bits(&flat),
                        "allreduce {algo:?} diverged from flat (rank {me}, op {op:?})"
                    );
                }

                // ---- bcast ----
                let base = payload(op, comm.global_of(root), elems.max(1));
                let flat_b = if me == root { buf_of(&base) } else { zeros(base.len()) };
                engine.bcast(&ep, ctx, &flat_b, root, comm, opts(CollAlgo::Flat));
                for algo in CollAlgo::ALL {
                    let b = if me == root { buf_of(&base) } else { zeros(base.len()) };
                    engine.bcast(&ep, ctx, &b, root, comm, opts(algo));
                    assert_eq!(
                        bits(&b),
                        bits(&flat_b),
                        "bcast {algo:?} diverged from flat (rank {me}, root {root})"
                    );
                }

                // ---- allgather ----
                let block = payload(op, comm.global_of(me), elems.max(1));
                let sb = buf_of(&block);
                let flat_g = zeros(block.len() * size as usize);
                engine.allgather(&ep, ctx, &sb, &flat_g, comm, opts(CollAlgo::Flat));
                for algo in CollAlgo::ALL {
                    let rb = zeros(block.len() * size as usize);
                    engine.allgather(&ep, ctx, &sb, &rb, comm, opts(algo));
                    assert_eq!(
                        bits(&rb),
                        bits(&flat_g),
                        "allgather {algo:?} diverged from flat (rank {me})"
                    );
                }

                // ---- barrier ----
                for algo in CollAlgo::ALL {
                    engine.barrier(&ep, ctx, comm, opts(algo));
                    barriers.fetch_add(1, Ordering::Relaxed);
                }
            };

            suite(&world);
            let my_rel = ep.comm_rank(&world);
            let sub = world.split(&colors, &keys, my_rel);
            suite(&sub);
        });

        // Every rank completed every barrier variant on both comms.
        prop_assert_eq!(
            barriers.load(Ordering::Relaxed),
            n * CollAlgo::ALL.len() * 2
        );
    }
}
