//! Message commands exchanged between task threads and the node's message
//! handler thread (§3.7).

use std::sync::Arc;

use impacc_mem::{Backing, HeapPtr, VirtAddr};
use impacc_mpi::{BufLoc, Request, Status};
use impacc_vtime::{Ctx, Latch, SimTime};

use parking_lot::Mutex;

/// A completion handle that carries the operation's virtual completion
/// *instant*: the message handler issues fused copies asynchronously
/// (`cuMemcpyAsync` + callback in the real runtime) and never blocks on
/// them, so the waiter — not the handler — advances to the completion
/// time.
#[derive(Clone, Default)]
pub struct TimedDone {
    latch: Latch,
    at: Arc<Mutex<Option<SimTime>>>,
    /// What this handle completes ("fused send dst=1 tag=7"), recorded on
    /// stall spans so the profiler can classify the wait. Only populated
    /// while a span sink is recording.
    cause: Arc<Mutex<Option<String>>>,
    /// Actor that completed the handle (the message handler), recorded
    /// while a sink is on: the source of the wake edge a waiter emits
    /// when it rides virtual time out to the completion instant, so the
    /// critical path lands on the handler's async copy span instead of
    /// dead-ending in the waiter's advance.
    completed_by: Arc<Mutex<Option<String>>>,
}

impl TimedDone {
    /// A fresh, incomplete handle.
    pub fn new() -> TimedDone {
        TimedDone::default()
    }

    /// Describe what a waiter of this handle is waiting for (profiler
    /// stall-cause attribution).
    pub fn set_cause(&self, cause: String) {
        *self.cause.lock() = Some(cause);
    }

    /// Mark complete at instant `t` (may be in the virtual future).
    pub fn complete(&self, ctx: &Ctx, t: SimTime) {
        *self.at.lock() = Some(t);
        if ctx.sink_enabled() {
            *self.completed_by.lock() = Some(ctx.name());
        }
        self.latch.open(ctx);
    }

    /// Block the calling actor until the completion instant.
    pub fn wait(&self, ctx: &Ctx) {
        self.latch
            .wait_with_cause(ctx, impacc_mpi::tags::MPI_WAIT, || {
                self.cause
                    .lock()
                    .clone()
                    .unwrap_or_else(|| "handler cmd".to_string())
            });
        let t = self.at.lock().expect("latch open implies time set");
        let woke = ctx.now();
        ctx.advance_until(t, impacc_mpi::tags::MPI_WAIT);
        if ctx.sink_enabled() && t > woke {
            // The handler issued the copy asynchronously; the waiter rode
            // virtual time to the completion instant. Record the ride as
            // a stall and hand the critical path back to the completer,
            // whose copy span ends exactly at `t`.
            let cause = self.cause.lock().clone();
            ctx.span("stall", woke, t, || {
                let mut a = vec![("tag", impacc_mpi::tags::MPI_WAIT.to_string())];
                if let Some(c) = &cause {
                    a.push(("cause", c.clone()));
                }
                a
            });
            if let Some(by) = self.completed_by.lock().clone() {
                ctx.edge_to_self("wake", &by, t, t, Vec::new);
            }
        }
    }

    /// Completed and past its completion instant?
    pub fn test(&self, ctx: &Ctx) -> bool {
        self.latch.is_open() && self.at.lock().map(|t| ctx.now() >= t).unwrap_or(false)
    }
}

/// Heap provenance of a host buffer, carried so the handler can check the
/// node-heap-aliasing requirements (§3.8).
#[derive(Clone, Debug)]
pub struct HeapRef {
    /// The pointer variable the application passed (re-aimable).
    pub ptr: HeapPtr,
    /// Current address of the buffer view's first byte.
    pub addr: VirtAddr,
    /// Start address of the containing heap region.
    pub region_start: VirtAddr,
    /// Length of the containing heap region.
    pub region_len: u64,
}

/// A send or receive buffer resolved to storage + path information.
#[derive(Clone)]
pub struct ResolvedBuf {
    /// The bytes.
    pub backing: Arc<Backing>,
    /// Byte offset of the view within the backing.
    pub off: u64,
    /// View length in bytes.
    pub len: u64,
    /// Host or device residency (device index is node-local).
    pub loc: BufLoc,
    /// Whether the owning task is pinned on the far socket from the
    /// device (selects the NUMA-unfriendly PCIe path for fused copies).
    pub far: bool,
    /// Host-heap provenance, when the buffer is heap memory.
    pub heap: Option<HeapRef>,
}

impl std::fmt::Debug for ResolvedBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ResolvedBuf({} B @ {} {:?}{})",
            self.len,
            self.off,
            self.loc,
            if self.heap.is_some() { ", heap" } else { "" }
        )
    }
}

/// Direction of a message command.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum CmdKind {
    /// An `MPI_Send`-side command.
    Send,
    /// An `MPI_Recv`-side command.
    Recv,
}

/// One entry of the intra-node message queue.
pub struct MsgCmd {
    /// Send or receive side.
    pub kind: CmdKind,
    /// Global rank of the sender.
    pub src: u32,
    /// Communicator-relative rank of the sender (for the receive status).
    pub src_rel: u32,
    /// Global rank of the receiver.
    pub dst: u32,
    /// Message tag (exact; the unified intra-node path has no wildcards).
    pub tag: i32,
    /// Communicator id.
    pub comm_id: u64,
    /// The buffer.
    pub buf: ResolvedBuf,
    /// `readonly` attribute from the IMPACC directive (§3.8 requirement 3).
    pub readonly: bool,
    /// Completes when the task's side of the operation is complete.
    pub done: TimedDone,
    /// Receive status slot (filled by the handler for `Recv` commands).
    pub status: Arc<Mutex<Option<Status>>>,
    /// Submitting actor and submission instant, filled by
    /// `NodeHandler::submit` while a span sink is recording: the source end
    /// of the "deq"/"fuse" causal edges the handler emits.
    pub submitted_by: Option<(String, SimTime)>,
}

/// Matching key for intra-node commands: FIFO per (comm, src, dst, tag).
pub type MatchKey = (u64, u32, u32, i32);

impl MsgCmd {
    /// The FIFO bucket this command matches within.
    pub fn key(&self) -> MatchKey {
        (self.comm_id, self.src, self.dst, self.tag)
    }
}

/// One entry of the pending internode message queue: a receive whose
/// network half (into pre-pinned host staging) is in flight and whose
/// device half (HtoD) the handler issues upon completion (§3.7).
pub struct PendingRecv {
    /// The in-flight system-MPI receive into `staging`.
    pub req: Request,
    /// Pre-pinned host bounce buffer.
    pub staging: Arc<Backing>,
    /// Final device destination.
    pub dev_buf: ResolvedBuf,
    /// Completes when the data is in device memory.
    pub done: TimedDone,
    /// Receive status slot.
    pub status: Arc<Mutex<Option<Status>>>,
}
