//! Centralized `IMPACC_*` environment-variable parsing.
//!
//! Every runtime/bench knob that used to be a scattered `std::env::var`
//! call site resolves through one typed accessor here, so the full knob
//! surface is greppable in one place and each variable has exactly one
//! spelling and one parse:
//!
//! | variable | accessor | meaning |
//! |---|---|---|
//! | `IMPACC_TRACE` | [`trace_path`] | auto-record a Chrome trace to this path |
//! | `IMPACC_PROF` | [`prof_requested`] | `1` ⇒ append a critical-path profile |
//! | `IMPACC_COLL_ALGO` | [`coll_algo`] | force one collective registry entry |
//! | `IMPACC_BENCH_DIR` | [`bench_dir`] | where `BENCH_*`/`PROF_*` artifacts go |
//! | `IMPACC_BENCH_QUICK` | [`bench_quick`] | `1` ⇒ trim sweeps for CI |
//! | `IMPACC_BENCH_FULL` | [`bench_full`] | `1` ⇒ unlock the largest points |
//! | `IMPACC_PERF_INJECT_SLOWDOWN` | [`perf_inject_slowdown`] | CI-gate failure-path test hook |
//! | `IMPACC_SERVE_WORKERS` | [`serve_workers`] | worker-pool size override for `impacc-serve` |
//! | `IMPACC_PARALLEL` | [`parallelism`] | conservative-DES worker count (`0`/unset ⇒ legacy serial engine) |
//! | `IMPACC_FLIGHT` | [`flight_enabled`] / [`flight_dump_dir`] | `0` ⇒ flight recorder off; `1` ⇒ dumps to `bench_dir()`; `<dir>` ⇒ dumps there; unset ⇒ record, no launch-side dumps |
//! | `IMPACC_FLIGHT_CAP` | [`flight_capacity`] | per-actor flight ring capacity (spans) |
//! | `IMPACC_FLIGHT_BURST` | [`flight_burst`] | chaos fault-burst dump/anomaly threshold |
//!
//! (`IMPACC_PERF_BASELINE_PCT` is consumed by `ci.sh` itself and never
//! read from Rust; `IMPACC_ACC_DEVICE_TYPE` is modelled as a typed
//! [`Launch`](crate::Launch) parameter, not an env read.)

use std::path::PathBuf;

use impacc_coll::CollAlgo;

/// `true` iff `var` is set to exactly `"1"` (the repo-wide flag idiom).
fn flag(var: &str) -> bool {
    std::env::var(var).is_ok_and(|v| v == "1")
}

/// `IMPACC_TRACE=<path>`: auto-record any launched run and write a Chrome
/// trace to `path` on completion. Empty values count as unset.
pub fn trace_path() -> Option<PathBuf> {
    match std::env::var("IMPACC_TRACE") {
        Ok(p) if !p.is_empty() => Some(PathBuf::from(p)),
        _ => None,
    }
}

/// `IMPACC_PROF=1`: figure binaries append a critical-path profile and
/// persist `PROF_<name>.json`.
pub fn prof_requested() -> bool {
    flag("IMPACC_PROF")
}

/// `IMPACC_COLL_ALGO=<entry>`: force one collective algorithm globally.
/// Panics on an unknown spelling (the parse itself lives next to the
/// registry in `impacc-coll`, the one crate below this module that owns
/// the algorithm names).
pub fn coll_algo() -> Option<CollAlgo> {
    CollAlgo::from_env()
}

/// `IMPACC_BENCH_DIR=<dir>`: where bench/prof/serve artifacts are
/// written; defaults to the current directory.
pub fn bench_dir() -> PathBuf {
    PathBuf::from(std::env::var("IMPACC_BENCH_DIR").unwrap_or_else(|_| ".".into()))
}

/// `IMPACC_BENCH_QUICK=1`: trim sweeps for CI.
pub fn bench_quick() -> bool {
    flag("IMPACC_BENCH_QUICK")
}

/// `IMPACC_BENCH_FULL=1`: unlock the largest (Titan-scale) sweep points.
pub fn bench_full() -> bool {
    flag("IMPACC_BENCH_FULL")
}

/// `IMPACC_PERF_INJECT_SLOWDOWN=<d>`: divide reported bench throughput by
/// `d` (a test hook so the CI perf gate's failure path can be exercised
/// without slowing anything). Unset, unparsable or non-positive ⇒ `1.0`.
pub fn perf_inject_slowdown() -> f64 {
    std::env::var("IMPACC_PERF_INJECT_SLOWDOWN")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|d| *d > 0.0)
        .unwrap_or(1.0)
}

/// `IMPACC_SERVE_WORKERS=<n>`: override the `impacc-serve` worker-pool
/// size. Unset, unparsable or zero ⇒ `None` (the daemon's default wins).
pub fn serve_workers() -> Option<usize> {
    std::env::var("IMPACC_SERVE_WORKERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|n| *n > 0)
}

/// `IMPACC_PARALLEL=<n>`: run simulations on the conservative parallel
/// DES engine with `n` scheduler workers (actors partitioned by simulated
/// node, lookahead derived from the machine spec's internode wire
/// latency). Unset, unparsable or `0` ⇒ the legacy serial engine. Results
/// are bit-identical for every value; only wall-clock changes.
pub fn parallelism() -> usize {
    std::env::var("IMPACC_PARALLEL")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(0)
}

/// `IMPACC_FLIGHT`: is the always-on flight recorder recording? Only the
/// explicit opt-out `0` disables it — every other state (unset, `1`, a
/// dump directory) keeps the per-actor rings live so a crash always has a
/// black-box record.
pub fn flight_enabled() -> bool {
    std::env::var("IMPACC_FLIGHT").map_or(true, |v| v != "0")
}

/// Where `Launch` writes trigger-driven `FLIGHT_*.json` dumps. Unset (the
/// default) ⇒ `None`: the rings record but launch-side dumps stay in
/// memory, so plain `cargo test` runs never spray flight files into the
/// working tree. `1` ⇒ [`bench_dir`]; any other non-`0` value is the
/// directory itself. (`impacc-serve` writes its per-job failure dumps
/// into its own spool regardless of this setting.)
pub fn flight_dump_dir() -> Option<PathBuf> {
    match std::env::var("IMPACC_FLIGHT") {
        Ok(v) if v == "1" => Some(bench_dir()),
        Ok(v) if !v.is_empty() && v != "0" => Some(PathBuf::from(v)),
        _ => None,
    }
}

/// `IMPACC_FLIGHT_CAP=<n>`: per-actor flight ring capacity in spans.
/// Unset or unparsable ⇒ `impacc_flight::DEFAULT_RING_CAPACITY`; `0` is a
/// valid spelling for "recorder allocated but inert".
pub fn flight_capacity() -> usize {
    std::env::var("IMPACC_FLIGHT_CAP")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(impacc_flight::DEFAULT_RING_CAPACITY)
}

/// `IMPACC_FLIGHT_BURST=<n>`: chaos fault count that constitutes a burst
/// (triggers a flight dump and the `fault_burst` anomaly). Unset,
/// unparsable or zero ⇒ `impacc_flight::watchdog::FAULT_BURST_THRESHOLD`.
pub fn flight_burst() -> u64 {
    std::env::var("IMPACC_FLIGHT_BURST")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .filter(|n| *n > 0)
        .unwrap_or(impacc_flight::watchdog::FAULT_BURST_THRESHOLD)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Env-var state is process-global, so one test walks every accessor
    // (cargo runs tests in threads; touching distinct var names per
    // accessor keeps them independent anyway).
    #[test]
    fn accessors_parse_and_default() {
        std::env::remove_var("IMPACC_TRACE");
        assert_eq!(trace_path(), None);
        std::env::set_var("IMPACC_TRACE", "");
        assert_eq!(trace_path(), None, "empty IMPACC_TRACE counts as unset");
        std::env::set_var("IMPACC_TRACE", "/tmp/t.json");
        assert_eq!(trace_path(), Some(PathBuf::from("/tmp/t.json")));
        std::env::remove_var("IMPACC_TRACE");

        std::env::remove_var("IMPACC_PERF_INJECT_SLOWDOWN");
        assert_eq!(perf_inject_slowdown(), 1.0);
        std::env::set_var("IMPACC_PERF_INJECT_SLOWDOWN", "2.5");
        assert_eq!(perf_inject_slowdown(), 2.5);
        std::env::set_var("IMPACC_PERF_INJECT_SLOWDOWN", "-3");
        assert_eq!(perf_inject_slowdown(), 1.0, "non-positive is ignored");
        std::env::remove_var("IMPACC_PERF_INJECT_SLOWDOWN");

        std::env::remove_var("IMPACC_SERVE_WORKERS");
        assert_eq!(serve_workers(), None);
        std::env::set_var("IMPACC_SERVE_WORKERS", "6");
        assert_eq!(serve_workers(), Some(6));
        std::env::set_var("IMPACC_SERVE_WORKERS", "0");
        assert_eq!(serve_workers(), None, "zero workers is not a pool");
        std::env::remove_var("IMPACC_SERVE_WORKERS");

        std::env::remove_var("IMPACC_PROF");
        assert!(!prof_requested());
        std::env::set_var("IMPACC_PROF", "1");
        assert!(prof_requested());
        std::env::remove_var("IMPACC_PROF");

        std::env::remove_var("IMPACC_PARALLEL");
        assert_eq!(parallelism(), 0);
        std::env::set_var("IMPACC_PARALLEL", "4");
        assert_eq!(parallelism(), 4);
        std::env::set_var("IMPACC_PARALLEL", "junk");
        assert_eq!(parallelism(), 0, "unparsable falls back to serial");
        std::env::remove_var("IMPACC_PARALLEL");

        std::env::remove_var("IMPACC_FLIGHT");
        assert!(flight_enabled(), "flight recording is on by default");
        assert_eq!(flight_dump_dir(), None, "but launch-side dumps are not");
        std::env::set_var("IMPACC_FLIGHT", "0");
        assert!(!flight_enabled());
        assert_eq!(flight_dump_dir(), None);
        std::env::set_var("IMPACC_FLIGHT", "1");
        assert!(flight_enabled());
        assert_eq!(flight_dump_dir(), Some(bench_dir()));
        std::env::set_var("IMPACC_FLIGHT", "/tmp/fl");
        assert_eq!(flight_dump_dir(), Some(PathBuf::from("/tmp/fl")));
        std::env::remove_var("IMPACC_FLIGHT");

        std::env::remove_var("IMPACC_FLIGHT_CAP");
        assert_eq!(flight_capacity(), impacc_flight::DEFAULT_RING_CAPACITY);
        std::env::set_var("IMPACC_FLIGHT_CAP", "64");
        assert_eq!(flight_capacity(), 64);
        std::env::set_var("IMPACC_FLIGHT_CAP", "0");
        assert_eq!(flight_capacity(), 0, "0 spells an inert recorder");
        std::env::remove_var("IMPACC_FLIGHT_CAP");

        std::env::remove_var("IMPACC_FLIGHT_BURST");
        assert_eq!(
            flight_burst(),
            impacc_flight::watchdog::FAULT_BURST_THRESHOLD
        );
        std::env::set_var("IMPACC_FLIGHT_BURST", "3");
        assert_eq!(flight_burst(), 3);
        std::env::set_var("IMPACC_FLIGHT_BURST", "0");
        assert_eq!(
            flight_burst(),
            impacc_flight::watchdog::FAULT_BURST_THRESHOLD
        );
        std::env::remove_var("IMPACC_FLIGHT_BURST");
    }
}
