//! The per-node message handler thread (§3.7).
//!
//! One handler daemon runs per node. Task threads push message commands
//! onto two lock-free MPSC queues:
//!
//! * the **intra-node message queue** — send/receive commands the handler
//!   matches by `(comm, src, dst, tag)` in FIFO order and *fuses* into a
//!   single accelerator memory copy (HtoH / HtoD / DtoH / DtoD), applying
//!   *node heap aliasing* instead of copying when the five §3.8
//!   requirements hold;
//! * the **pending internode message queue** — receives whose network half
//!   (into pre-pinned staging) is in flight; on completion the handler
//!   issues the device write.
//!
//! The handler is a single serial actor: bursts of intra-node messages
//! queue behind each other here, which is exactly the overhead the paper
//! observes costing ~5% on host-to-host-only LULESH on Beacon.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use impacc_acc::{tags, Device};
use impacc_machine::{ClusterResources, FaultSite, HdDir};
use impacc_mem::{AddressSpace, Backing, NodeHeap};
use impacc_mpi::{BufLoc, Status};
use impacc_vtime::{Ctx, Notify, SimDur, SimTime, WakeReason};

use crate::cmd::{CmdKind, MatchKey, MsgCmd, PendingRecv};
use crate::mode::RuntimeOptions;
use crate::mpsc::MpscQueue;

/// The node message handler. Construct with [`NodeHandler::new`], then
/// start its daemon with [`NodeHandler::run`] from a spawned actor.
pub struct NodeHandler {
    node: usize,
    res: Arc<ClusterResources>,
    space: Arc<AddressSpace>,
    heap: Arc<NodeHeap>,
    devices: Vec<Device>,
    opts: RuntimeOptions,
    phys_cap: Option<u64>,
    intra: MpscQueue<MsgCmd>,
    pending: MpscQueue<PendingRecv>,
    work: Notify,
}

impl NodeHandler {
    /// Build the handler for `node` with the node-shared structures.
    pub fn new(
        node: usize,
        res: Arc<ClusterResources>,
        space: Arc<AddressSpace>,
        heap: Arc<NodeHeap>,
        devices: Vec<Device>,
        opts: RuntimeOptions,
        phys_cap: Option<u64>,
    ) -> Arc<NodeHandler> {
        Arc::new(NodeHandler {
            node,
            res,
            space,
            heap,
            devices,
            opts,
            phys_cap,
            intra: MpscQueue::new(),
            pending: MpscQueue::new(),
            work: Notify::new(),
        })
    }

    /// Submit an intra-node message command (task-thread side). Charges the
    /// command-creation overhead to the caller.
    pub fn submit(&self, ctx: &Ctx, mut cmd: MsgCmd) {
        ctx.advance(self.res.handler_cmd_overhead(), impacc_mpi::tags::MPI_CALL);
        self.enqueue_jitter(ctx);
        cmd.submitted_by = ctx.sink_enabled().then(|| (ctx.name(), ctx.now()));
        self.intra.push(cmd);
        self.work.notify_one(ctx);
    }

    /// Submit a pending internode receive (task-thread side).
    pub fn submit_pending(&self, ctx: &Ctx, p: PendingRecv) {
        ctx.advance(self.res.handler_cmd_overhead(), impacc_mpi::tags::MPI_CALL);
        self.enqueue_jitter(ctx);
        p.req.subscribe(&self.work);
        self.pending.push(p);
        self.work.notify_one(ctx);
    }

    /// Injected MPSC enqueue jitter: a scheduling hiccup between building a
    /// command and it landing on the handler queue, charged to the caller.
    fn enqueue_jitter(&self, ctx: &Ctx) {
        if self.res.chaos.roll(FaultSite::EnqueueJitter, ctx.now()) {
            let p = self
                .res
                .chaos
                .plan()
                .expect("fault implies plan")
                .stall_penalty;
            ctx.metrics().inc("chaos_enqueue_jitter");
            let t0 = ctx.now();
            ctx.span("fault", t0, t0 + p, || {
                vec![("site", "enqueue_jitter".to_string())]
            });
            ctx.advance(p, impacc_mpi::tags::MPI_CALL);
        }
    }

    /// The handler daemon body. Spawn with
    /// `ctx.spawn_daemon("handler.nX", move |ctx| handler.run(ctx))`.
    pub fn run(&self, ctx: &Ctx) {
        let mut unmatched_send: HashMap<MatchKey, VecDeque<MsgCmd>> = HashMap::new();
        let mut unmatched_recv: HashMap<MatchKey, VecDeque<MsgCmd>> = HashMap::new();
        let mut pendings: Vec<PendingRecv> = Vec::new();
        loop {
            let mut progressed = false;
            while let Some(cmd) = self.intra.pop() {
                let t0 = ctx.now();
                let kind = match cmd.kind {
                    CmdKind::Send => "send",
                    CmdKind::Recv => "recv",
                };
                // Handler-thread dequeue edge: this command's processing
                // could not start before the task pushed it.
                if let Some((by, at)) = &cmd.submitted_by {
                    ctx.edge_to_self("deq", by, *at, t0, || vec![("kind", kind.to_string())]);
                }
                // Dequeue + scheduling cost of one message command.
                ctx.advance(self.res.handler_cmd_overhead(), "handler");
                if self.res.chaos.roll(FaultSite::HandlerStall, ctx.now()) {
                    // The handler thread loses its core for a scheduling
                    // quantum; every queued command behind this one waits.
                    let p = self
                        .res
                        .chaos
                        .plan()
                        .expect("fault implies plan")
                        .stall_penalty;
                    ctx.metrics().inc("chaos_handler_stall");
                    let s0 = ctx.now();
                    ctx.span("fault", s0, s0 + p, || {
                        vec![("site", "handler_stall".to_string())]
                    });
                    ctx.advance(p, "handler");
                }
                self.process(ctx, cmd, &mut unmatched_send, &mut unmatched_recv);
                ctx.span("handler_cmd", t0, ctx.now(), || {
                    vec![("kind", kind.to_string())]
                });
                progressed = true;
            }
            while let Some(p) = self.pending.pop() {
                pendings.push(p);
                progressed = true;
            }
            let now = ctx.now();
            let mut i = 0;
            while i < pendings.len() {
                match pendings[i].req.completion_time() {
                    Some(t) if t <= now => {
                        let p = pendings.swap_remove(i);
                        self.finish_pending(ctx, p);
                        progressed = true;
                    }
                    _ => i += 1,
                }
            }
            if progressed {
                continue;
            }
            let deadline = pendings
                .iter()
                .filter_map(|p| p.req.completion_time())
                .min();
            let reason = match deadline {
                Some(t) => {
                    let n = pendings.len();
                    self.work
                        .wait_deadline_with_cause(ctx, t, "handler_idle", || {
                            format!("pending internode recv x{n}")
                        })
                }
                None => self
                    .work
                    .wait_with_cause(ctx, "handler_idle", || "intra queue empty".to_string()),
            };
            if reason == WakeReason::Shutdown {
                return;
            }
        }
    }

    fn process(
        &self,
        ctx: &Ctx,
        cmd: MsgCmd,
        unmatched_send: &mut HashMap<MatchKey, VecDeque<MsgCmd>>,
        unmatched_recv: &mut HashMap<MatchKey, VecDeque<MsgCmd>>,
    ) {
        let key = cmd.key();
        match cmd.kind {
            CmdKind::Send => {
                if let Some(recv) = unmatched_recv.get_mut(&key).and_then(|q| q.pop_front()) {
                    self.fuse(ctx, cmd, recv);
                } else {
                    unmatched_send.entry(key).or_default().push_back(cmd);
                }
            }
            CmdKind::Recv => {
                if let Some(send) = unmatched_send.get_mut(&key).and_then(|q| q.pop_front()) {
                    self.fuse(ctx, send, cmd);
                } else {
                    unmatched_recv.entry(key).or_default().push_back(cmd);
                }
            }
        }
    }

    /// Message fusion (§3.7, Figure 6): one matched send/recv pair becomes
    /// a single memory copy — or no copy at all under node heap aliasing.
    ///
    /// The handler never blocks on the copy itself: it reserves the links
    /// (issuing the asynchronous device copy, `cuMemcpyAsync`-style) and
    /// completes both sides' handles at the computed finish instant, so a
    /// burst of messages streams onto the PCIe links back-to-back while
    /// the handler keeps draining its queue.
    fn fuse(&self, ctx: &Ctx, send: MsgCmd, recv: MsgCmd) {
        assert!(
            send.buf.len <= recv.buf.len,
            "message truncation: {} byte message into {} byte buffer (tag {})",
            send.buf.len,
            recv.buf.len,
            send.tag
        );
        ctx.metrics().inc("fused_msgs");
        ctx.trace("fuse", || {
            format!(
                "{} -> {} tag {} ({} B, {:?} -> {:?})",
                send.src, send.dst, send.tag, send.buf.len, send.buf.loc, recv.buf.loc
            )
        });
        let path = match (send.buf.loc, recv.buf.loc) {
            (BufLoc::Host, BufLoc::Host) => "HtoH",
            (BufLoc::Host, BufLoc::Device(_)) => "HtoD",
            (BufLoc::Device(_), BufLoc::Host) => "DtoH",
            (BufLoc::Device(_), BufLoc::Device(_)) => "DtoD",
        };
        ctx.event("fuse", || {
            vec![
                ("src", send.src.to_string()),
                ("dst", send.dst.to_string()),
                ("tag", send.tag.to_string()),
                ("bytes", send.buf.len.to_string()),
                ("path", path.to_string()),
            ]
        });
        let len = send.buf.len;
        let now = ctx.now();

        let complete: SimTime = match (send.buf.loc, recv.buf.loc) {
            (BufLoc::Host, BufLoc::Host) => {
                if self.try_alias(ctx, &send, &recv) {
                    ctx.metrics().inc("aliased_msgs");
                    ctx.trace("alias", || {
                        format!(
                            "{} -> {} tag {} shared zero-copy",
                            send.src, send.dst, send.tag
                        )
                    });
                    ctx.event("alias", || {
                        vec![("outcome", "hit".to_string()), ("bytes", len.to_string())]
                    });
                    ctx.now()
                } else {
                    let end = self.res.reserve_host_copy(self.node, len, now);
                    Backing::copy(
                        &send.buf.backing,
                        send.buf.off,
                        &recv.buf.backing,
                        recv.buf.off,
                        len,
                    );
                    ctx.metrics().add(tags::HTOH, len);
                    ctx.metrics().add("t_HtoH", end.since(now).0);
                    ctx.span(tags::HTOH, now, end, || {
                        vec![("bytes", len.to_string()), ("fused", "true".to_string())]
                    });
                    end
                }
            }
            (BufLoc::Host, BufLoc::Device(d)) => self.issue_hd(
                ctx,
                d,
                HdDir::HtoD,
                recv.buf.far,
                (&send.buf.backing, send.buf.off),
                (&recv.buf.backing, recv.buf.off),
                len,
            ),
            (BufLoc::Device(d), BufLoc::Host) => self.issue_hd(
                ctx,
                d,
                HdDir::DtoH,
                send.buf.far,
                (&send.buf.backing, send.buf.off),
                (&recv.buf.backing, recv.buf.off),
                len,
            ),
            (BufLoc::Device(sd), BufLoc::Device(rd)) => {
                if sd == rd {
                    // Same device: an on-device copy at device-memory speed.
                    let spec = self.devices[sd].spec();
                    let end = now
                        + self.res.acc_copy_overhead(spec.kind)
                        + SimDur::for_transfer(len, spec.mem_bw);
                    Backing::copy(
                        &send.buf.backing,
                        send.buf.off,
                        &recv.buf.backing,
                        recv.buf.off,
                        len,
                    );
                    ctx.metrics().add(tags::DTOD, len);
                    ctx.metrics().add("t_DtoD", end.since(now).0);
                    ctx.span(tags::DTOD, now, end, || {
                        vec![("bytes", len.to_string()), ("fused", "true".to_string())]
                    });
                    end
                } else if self.res.spec.nodes[self.node].p2p_dtod
                    && !self.dtod_faulted(ctx, sd, rd, len)
                {
                    // Direct peer copy over the shared PCIe root complex
                    // (GPUDirect / DirectGMA): no CPU, no system memory.
                    let kind = self.devices[sd].spec().kind;
                    let end = self.res.reserve_p2p_copy(
                        self.node,
                        sd,
                        rd,
                        len,
                        now + self.res.acc_copy_overhead(kind),
                    );
                    Backing::copy(
                        &send.buf.backing,
                        send.buf.off,
                        &recv.buf.backing,
                        recv.buf.off,
                        len,
                    );
                    ctx.metrics().add(tags::DTOD, len);
                    ctx.metrics().add("t_DtoD", end.since(now).0);
                    ctx.span(tags::DTOD, now, end, || {
                        vec![("bytes", len.to_string()), ("p2p", "true".to_string())]
                    });
                    end
                } else {
                    // Fused staging: DtoH into a runtime bounce buffer, then
                    // HtoD — still two copies fewer than the baseline.
                    let scratch = Backing::new(len, self.phys_cap);
                    let mid = self.issue_hd(
                        ctx,
                        sd,
                        HdDir::DtoH,
                        send.buf.far,
                        (&send.buf.backing, send.buf.off),
                        (&scratch, 0),
                        len,
                    );
                    let kind = self.devices[rd].spec().kind;
                    let end = self.res.reserve_hd_copy(
                        self.node,
                        rd,
                        HdDir::HtoD,
                        recv.buf.far,
                        true,
                        len,
                        mid + self.res.acc_copy_overhead(kind),
                    );
                    Backing::copy(&scratch, 0, &recv.buf.backing, recv.buf.off, len);
                    ctx.metrics().add(tags::HTOD, len);
                    ctx.span(tags::HTOD, mid, end, || {
                        vec![("bytes", len.to_string()), ("staged", "true".to_string())]
                    });
                    end
                }
            }
        };

        *recv.status.lock() = Some(Status {
            src: send.src_rel,
            tag: send.tag,
            len,
        });
        // Fusion-pairing edges: the fused copy's completion instant depends
        // on *both* sides having submitted their command.
        for (side, cmd) in [("send", &send), ("recv", &recv)] {
            if let Some((by, at)) = &cmd.submitted_by {
                ctx.edge_to_self("fuse", by, *at, complete, || {
                    vec![
                        ("side", side.to_string()),
                        ("tag", send.tag.to_string()),
                        ("bytes", len.to_string()),
                        ("path", path.to_string()),
                    ]
                });
            }
        }
        send.done.complete(ctx, complete);
        recv.done.complete(ctx, complete);
    }

    /// Roll the direct-DtoD fault site for a peer copy; on a fault the
    /// caller falls back to the staged (DtoH + HtoD) path, which does not
    /// depend on the faulted peer link.
    fn dtod_faulted(&self, ctx: &Ctx, sd: usize, rd: usize, len: u64) -> bool {
        let now = ctx.now();
        if !self.res.chaos.roll(FaultSite::DtodFault, now) {
            return false;
        }
        ctx.metrics().inc("chaos_dtod_fault");
        ctx.span("fault", now, now, || {
            vec![
                ("site", "dtod_fault".to_string()),
                ("pair", format!("d{sd}->d{rd}")),
                ("bytes", len.to_string()),
                ("fallback", "staged".to_string()),
            ]
        });
        true
    }

    /// Issue an asynchronous host<->device copy: reserve the PCIe link
    /// (behind the driver-call latency), move the bytes, return the
    /// completion instant. `src`/`dst` are in copy direction.
    #[allow(clippy::too_many_arguments)]
    fn issue_hd(
        &self,
        ctx: &Ctx,
        dev: usize,
        dir: HdDir,
        far: bool,
        src: (&std::sync::Arc<Backing>, u64),
        dst: (&std::sync::Arc<Backing>, u64),
        len: u64,
    ) -> SimTime {
        let kind = self.devices[dev].spec().kind;
        // Handler-issued copies stream through the runtime's pre-pinned
        // staging pool, so they run at full PCIe rate. The reservation is
        // chaos-aware: transient DMA faults re-reserve the link, and the
        // bytes land only at the final attempt's completion instant.
        let end = impacc_mem::reserve_hd_with_faults(
            ctx,
            &self.res,
            self.node,
            dev,
            dir,
            far,
            true,
            len,
            ctx.now() + self.res.acc_copy_overhead(kind),
        );
        Backing::copy(src.0, src.1, dst.0, dst.1, len);
        let (tag, tkey) = match dir {
            HdDir::HtoD => (tags::HTOD, "t_HtoD"),
            HdDir::DtoH => (tags::DTOH, "t_DtoH"),
        };
        ctx.metrics().add(tag, len);
        ctx.metrics().add(tkey, end.since(ctx.now()).0);
        ctx.span(tag, ctx.now(), end, || {
            vec![("bytes", len.to_string()), ("fused", "true".to_string())]
        });
        end
    }

    /// Check the five §3.8 requirements and, if all hold, re-aim the
    /// receiver's pointer at the sender's buffer instead of copying.
    ///
    /// 1. Same node — implied (both commands reached this handler).
    /// 2. Both buffers in host heap memory.
    /// 3. Both calls used the IMPACC directive with `readonly`.
    /// 4. The receiver has no other pointer to the receive buffer.
    /// 5. The receive fully overwrites the receive buffer.
    fn try_alias(&self, ctx: &Ctx, send: &MsgCmd, recv: &MsgCmd) -> bool {
        let miss = |reason: &'static str| {
            ctx.event("alias", || {
                vec![
                    ("outcome", "miss".to_string()),
                    ("reason", reason.to_string()),
                ]
            });
            false
        };
        if !self.opts.aliasing {
            return false; // not attempted: no event
        }
        if !send.readonly || !recv.readonly {
            return miss("not_readonly"); // requirement 3
        }
        let (Some(sh), Some(rh)) = (&send.buf.heap, &recv.buf.heap) else {
            return miss("not_heap"); // requirement 2
        };
        if self.heap.pointer_count(rh.addr) != 1 {
            return miss("other_pointers"); // requirement 4
        }
        if rh.addr != rh.region_start
            || send.buf.len != rh.region_len
            || send.buf.len != recv.buf.len
        {
            return miss("partial_overwrite"); // requirement 5
        }
        ctx.advance(self.res.heap_op_overhead(), "handler");
        self.heap
            .alias(&self.space, rh.ptr, sh.addr)
            .expect("alias requirements were checked");
        true
    }

    fn finish_pending(&self, ctx: &Ctx, p: PendingRecv) {
        let st = p.req.wait(ctx).expect("pending receives carry a status");
        let BufLoc::Device(d) = p.dev_buf.loc else {
            unreachable!("pending internode commands target device memory");
        };
        let end = self.issue_hd(
            ctx,
            d,
            HdDir::HtoD,
            p.dev_buf.far,
            (&p.staging, 0),
            (&p.dev_buf.backing, p.dev_buf.off),
            st.len,
        );
        *p.status.lock() = Some(st);
        p.done.complete(ctx, end);
    }
}
