//! The IMPACC launcher: automatic task-device mapping and job start-up.
//!
//! Under the legacy model the user supplies the MPI task count and each
//! task picks its device with `acc_set_device_num()`. Under IMPACC (§3.2,
//! Figure 2) the user supplies only the machine (node list) and optionally
//! a device-type filter (`IMPACC_ACC_DEVICE_TYPE`); the runtime creates
//! one task per matching accelerator — falling back to the node's CPU
//! cores when a node has no matching discrete accelerator — pins each task
//! near its device (§3.3), and starts the per-node message handler.
//!
//! The same launcher also runs the baseline model (per-task private
//! address spaces, no handler, round-robin OS placement) so experiments
//! compare both runtimes over identical hardware and applications.

use std::sync::Arc;

use impacc_acc::Device;
use impacc_coll::{CollAlgo, NodeColl};
use impacc_flight::{FlightRecorder, Trigger, Watchdog};
use impacc_machine::{
    Chaos, ClusterResources, DeviceKind, DeviceSpec, DeviceTypeMask, FaultPlan, MachineSpec,
};
use impacc_mem::{AddressSpace, NodeHeap};
use impacc_mpi::{Comm, MpiTask, SysMpi};
use impacc_obs::Recorder;
use impacc_vtime::{Sim, SimConfig, SimDur, SimError, SimReport, SpanSink};

use crate::handler::NodeHandler;
use crate::mode::RuntimeOptions;
use crate::task::{CommCore, TaskCtx, TaskSeed};

/// Where one task landed: the output of automatic task-device mapping.
#[derive(Clone, Debug)]
pub struct TaskInfo {
    /// World rank.
    pub rank: u32,
    /// Node index.
    pub node: usize,
    /// Local device index within the node.
    pub dev_idx: usize,
    /// Device kind.
    pub kind: DeviceKind,
    /// Socket the task thread is pinned on.
    pub socket: usize,
    /// Whether that socket is far from the device (NUMA-unfriendly).
    pub far: bool,
}

/// Result of a completed run.
#[derive(Debug)]
pub struct RunSummary {
    /// Engine report: end time, per-actor tagged accounting, metrics.
    pub report: SimReport,
    /// The task-device mapping that was used.
    pub tasks: Vec<TaskInfo>,
}

impl RunSummary {
    /// Virtual wall-clock of the whole job, in seconds.
    pub fn elapsed_secs(&self) -> f64 {
        self.report.end_time.as_secs_f64()
    }

    /// Seconds recorded under a `t_*` transfer-time metric.
    pub fn transfer_secs(&self, key: &str) -> f64 {
        self.report
            .metrics
            .iter()
            .find(|(k, _)| **k == key)
            .map(|(_, v)| *v as f64 / 1e12)
            .unwrap_or(0.0)
    }

    /// A human-readable execution profile: elapsed time, aggregate kernel
    /// and transfer activity, and the headline runtime counters.
    pub fn profile(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "elapsed: {:.6}s over {} tasks ({} scheduler events)\n",
            self.elapsed_secs(),
            self.tasks.len(),
            self.report.events
        ));
        out.push_str(&format!(
            "aggregate kernel time: {:.6}s\n",
            self.report.tag_total("kernel").as_secs_f64()
        ));
        for (label, key) in [
            ("host-to-device", "t_HtoD"),
            ("device-to-host", "t_DtoH"),
            ("device-to-device", "t_DtoD"),
            ("host-to-host", "t_HtoH"),
        ] {
            let secs = self.transfer_secs(key);
            if secs > 0.0 {
                out.push_str(&format!("aggregate {label} transfer time: {secs:.6}s\n"));
            }
        }
        for key in ["fused_msgs", "aliased_msgs", "mpi_bytes_sent"] {
            if let Some(v) = self.report.metrics.iter().find(|(k, _)| **k == key) {
                out.push_str(&format!("{key}: {}\n", v.1));
            }
        }
        out
    }
}

/// How a launch resolves its flight recorder (see [`Launch::flight`]).
enum FlightOpt {
    /// Default: attach a fresh recorder unless `IMPACC_FLIGHT=0`.
    Auto,
    /// Explicitly detached (determinism baselines, overhead A/B tests).
    Off,
    /// Caller-supplied recorder (serve per-job rings, bench harnesses).
    Explicit(FlightRecorder),
}

/// Job launcher. Configure, then [`Launch::run`].
pub struct Launch {
    spec: MachineSpec,
    options: RuntimeOptions,
    mask: DeviceTypeMask,
    phys_cap: Option<u64>,
    stack_size: usize,
    max_events: u64,
    trace_capacity: usize,
    elide_handoff: bool,
    sink: Option<Arc<dyn SpanSink>>,
    chaos: Chaos,
    coll_algo: Option<CollAlgo>,
    parallelism: Option<usize>,
    recorder: Option<Recorder>,
    flight: FlightOpt,
    flight_label: String,
}

impl Launch {
    /// A job on `spec` under `options`, accepting all discrete
    /// accelerators (`acc_device_default`).
    pub fn new(spec: MachineSpec, options: RuntimeOptions) -> Launch {
        Launch {
            spec,
            options,
            mask: DeviceTypeMask::DEFAULT,
            phys_cap: None,
            stack_size: 384 * 1024,
            max_events: u64::MAX,
            trace_capacity: 0,
            elide_handoff: true,
            sink: None,
            chaos: Chaos::disabled(),
            coll_algo: None,
            parallelism: None,
            recorder: None,
            flight: FlightOpt::Auto,
            flight_label: "run".to_string(),
        }
    }

    /// Attach an existing flight recorder instead of the auto-created one
    /// — `impacc-serve` hands each job its own rings so a wedged job's
    /// final moments are inspectable while other jobs keep flying.
    pub fn flight(mut self, fr: &FlightRecorder) -> Launch {
        self.flight = FlightOpt::Explicit(fr.clone());
        self
    }

    /// Detach the always-on flight recorder for this run. Virtual-time
    /// results never depend on recording; this exists for overhead A/B
    /// measurements and the golden-invariance tests that prove it.
    pub fn flight_off(mut self) -> Launch {
        self.flight = FlightOpt::Off;
        self
    }

    /// Label used for this run's `FLIGHT_<label>.json` dumps (default
    /// `"run"`). Serve sets the job key here so dump artifacts carry the
    /// same correlation id as results and profiles.
    pub fn flight_label(mut self, label: impl Into<String>) -> Launch {
        self.flight_label = label.into();
        self
    }

    /// Pin the scheduler worker count for this run, overriding the
    /// `IMPACC_PARALLEL` environment default. `0` selects the legacy
    /// serial engine; any positive value runs the conservative parallel
    /// engine with actors partitioned by simulated node and lookahead
    /// derived from the machine's internode wire latency. Virtual-time
    /// results are bit-identical for every positive value. Ignored
    /// (forced serial) when a fault plan is installed: chaos rolls
    /// consume a shared seeded sequence whose order must stay
    /// schedule-independent.
    pub fn parallelism(mut self, n: usize) -> Launch {
        self.parallelism = Some(n);
        self
    }

    /// Force one collective algorithm for every dispatched collective in
    /// this run (equivalent to `IMPACC_COLL_ALGO`, but scoped to the
    /// launch). Requesting an algorithm that cannot serve an operation
    /// clamps deterministically; see `impacc_coll`.
    pub fn coll_algo(mut self, algo: CollAlgo) -> Launch {
        self.coll_algo = Some(algo);
        self
    }

    /// Install a deterministic fault-injection plan (`impacc-chaos`) for
    /// this run. The plan is consulted by every runtime layer; devices
    /// listed as failed are remapped away from at launch (§3.2).
    pub fn chaos(mut self, plan: FaultPlan) -> Launch {
        self.chaos = Chaos::new(plan);
        self
    }

    /// Set the `IMPACC_ACC_DEVICE_TYPE` filter.
    pub fn device_mask(mut self, mask: DeviceTypeMask) -> Launch {
        self.mask = mask;
        self
    }

    /// Cap the physical backing of every allocation (huge-scale runs).
    pub fn phys_cap(mut self, cap: u64) -> Launch {
        self.phys_cap = Some(cap);
        self
    }

    /// Limit scheduler dispatches (test hygiene).
    pub fn max_events(mut self, n: u64) -> Launch {
        self.max_events = n;
        self
    }

    /// Enable or disable the scheduler's baton-handoff elision fast path.
    /// On by default; determinism tests force it off to prove virtual-time
    /// results are unchanged by the optimisation.
    pub fn elide_handoff(mut self, on: bool) -> Launch {
        self.elide_handoff = on;
        self
    }

    /// Retain the last `n` runtime trace events (fusions, aliases) in the
    /// report for debugging. Superseded by [`Launch::recorder`], which
    /// captures typed spans instead of strings.
    pub fn trace(mut self, n: usize) -> Launch {
        self.trace_capacity = n;
        self
    }

    /// Attach a raw span sink to the engine.
    pub fn span_sink(mut self, sink: Arc<dyn SpanSink>) -> Launch {
        self.sink = Some(sink);
        self
    }

    /// Record typed spans from every layer into `rec`
    /// (see `impacc_obs::Recorder`). Under the parallel engine the
    /// recorder is canonicalized when the run completes, so its spans and
    /// edges read back identically for every `IMPACC_PARALLEL` value.
    pub fn recorder(mut self, rec: &Recorder) -> Launch {
        self.recorder = Some(rec.clone());
        self.span_sink(rec.sink())
    }

    /// Compute the automatic task-device mapping (Figure 2) without
    /// running anything. Returns the (possibly extended with synthesized
    /// CPU devices) spec and the mapping.
    pub fn plan(
        spec: &MachineSpec,
        mask: DeviceTypeMask,
        numa_pinning: bool,
    ) -> (MachineSpec, Vec<TaskInfo>) {
        let mut spec = spec.clone();
        let mut tasks = Vec::new();
        for (n, node) in spec.nodes.iter_mut().enumerate() {
            let mut matched: Vec<usize> = node
                .devices
                .iter()
                .enumerate()
                .filter(|(_, d)| mask.accepts(d.kind))
                .map(|(i, _)| i)
                .collect();
            let cpu_ok = mask == DeviceTypeMask::DEFAULT || mask.accepts(DeviceKind::CpuCores);
            if matched.is_empty() && cpu_ok {
                // CPU fallback: the node's cores act as one accelerator.
                node.devices.push(DeviceSpec {
                    model: "CPU cores".into(),
                    kind: DeviceKind::CpuCores,
                    mem_bytes: node.mem_bytes,
                    cores: node.total_cores() as u32,
                    gflops: 0.0, // derived from sockets in the cost model
                    mem_bw: 0.0,
                    socket: 0,
                    pcie_bw: 1.0,
                    pcie_lat: 0.0,
                });
                matched.push(node.devices.len() - 1);
            }
            let k = matched.len().max(1);
            for (i, d) in matched.into_iter().enumerate() {
                let dev_socket = node.devices[d].socket;
                let sockets = node.sockets.len().max(1);
                let rank = tasks.len() as u32;
                let socket = if numa_pinning {
                    dev_socket
                } else {
                    // Unpinned: the launcher's default compact core binding
                    // spreads the node's tasks over its sockets in rank
                    // order, oblivious to device affinity (§3.3).
                    i * sockets / k
                };
                tasks.push(TaskInfo {
                    rank,
                    node: n,
                    dev_idx: d,
                    kind: node.devices[d].kind,
                    socket,
                    far: socket != dev_socket,
                });
            }
        }
        assert!(
            !tasks.is_empty(),
            "no device in the cluster matches the requested device-type mask"
        );
        (spec, tasks)
    }

    /// Run `app` once per task and collect the report.
    pub fn run<F>(self, app: F) -> Result<RunSummary, SimError>
    where
        F: Fn(&TaskCtx) + Send + Sync + 'static,
    {
        if let Err(e) = impacc_machine::validate(&self.spec) {
            panic!("refusing to launch on an invalid machine: {e}");
        }
        let (spec, mut tasks) = Launch::plan(&self.spec, self.mask, self.options.numa_pinning);
        let impacc = self.options.is_impacc();
        let res = Arc::new(ClusterResources::with_chaos(
            Arc::new(spec),
            self.chaos.clone(),
        ));

        // Graceful degradation (§3.2): a task mapped onto a device the
        // fault plan declares failed is remapped onto a surviving device
        // on the same node, round-robin over the node's healthy devices.
        let mut remapped: Vec<bool> = vec![false; tasks.len()];
        if self.chaos.enabled() {
            let survivors: Vec<Vec<usize>> = (0..res.spec.node_count())
                .map(|n| {
                    let mut v: Vec<usize> = tasks
                        .iter()
                        .filter(|t| t.node == n && !self.chaos.device_failed(n, t.dev_idx))
                        .map(|t| t.dev_idx)
                        .collect();
                    v.sort_unstable();
                    v.dedup();
                    v
                })
                .collect();
            let mut rr = vec![0usize; res.spec.node_count()];
            for (i, t) in tasks.iter_mut().enumerate() {
                if !self.chaos.device_failed(t.node, t.dev_idx) {
                    continue;
                }
                let pool = &survivors[t.node];
                assert!(
                    !pool.is_empty(),
                    "device n{}.d{} failed and node {} has no surviving device \
                     to remap rank {} onto",
                    t.node,
                    t.dev_idx,
                    t.node,
                    t.rank
                );
                let d = pool[rr[t.node] % pool.len()];
                rr[t.node] += 1;
                t.dev_idx = d;
                t.kind = res.spec.nodes[t.node].devices[d].kind;
                t.far = t.socket != res.spec.nodes[t.node].devices[d].socket;
                remapped[i] = true;
            }
        }

        let node_of: Arc<Vec<usize>> = Arc::new(tasks.iter().map(|t| t.node).collect());
        let sysmpi = SysMpi::new(res.clone(), node_of.as_ref().clone());
        let world = Comm::world(tasks.len() as u32);

        // `IMPACC_TRACE=<path>` traces any run without code changes: an
        // auto-created recorder captures spans and the Chrome trace is
        // written on completion (an explicitly attached sink wins).
        let mut sink = self.sink.clone();
        let mut auto_trace: Option<(Recorder, std::path::PathBuf)> = None;
        if sink.is_none() {
            if let Some(path) = crate::config::trace_path() {
                let rec = Recorder::new();
                sink = Some(rec.sink());
                auto_trace = Some((rec, path));
            }
        }

        // The always-on flight recorder (§5j): unless explicitly detached
        // (or `IMPACC_FLIGHT=0`), every launch keeps bounded per-actor
        // rings of its last moments, teed in front of whatever sink is
        // already attached so full tracing is never displaced.
        let flight: Option<FlightRecorder> = match &self.flight {
            FlightOpt::Off => None,
            FlightOpt::Explicit(fr) => Some(fr.clone()),
            FlightOpt::Auto => crate::config::flight_enabled()
                .then(|| FlightRecorder::with_capacity(crate::config::flight_capacity())),
        };
        if let Some(fr) = &flight {
            sink = Some(match sink.take() {
                Some(other) => impacc_flight::tee(fr.sink(), other),
                None => fr.sink(),
            });
        }

        // Engine selection: the conservative parallel scheduler partitions
        // actors by simulated node, with lookahead = the machine's minimum
        // cross-node event distance (internode wire latency). Chaos forces
        // the serial engine — fault rolls consume a shared seeded sequence
        // whose order must stay schedule-independent.
        let mut parallelism = self.parallelism.unwrap_or_else(crate::config::parallelism);
        if self.chaos.enabled() {
            parallelism = 0;
        }
        let lookahead = if parallelism > 0 {
            res.min_cross_node_latency()
        } else {
            SimDur::ZERO
        };

        let mut sim = Sim::with_config(SimConfig {
            stack_size: self.stack_size,
            max_events: self.max_events,
            trace_capacity: self.trace_capacity,
            elide_handoff: self.elide_handoff,
            sink,
            parallelism,
            lookahead,
        });
        if parallelism > 0 {
            // Cross-node messages must cross partitions through the
            // per-node delivery daemons, never from the sender's side.
            sysmpi.spawn_delivery_daemons(&mut sim);
        }

        // Per-node shared structures (IMPACC). The baseline gets fresh
        // per-task ones below.
        let n_nodes = res.spec.node_count();
        let mut node_space: Vec<Option<Arc<AddressSpace>>> = vec![None; n_nodes];
        let mut node_heap: Vec<Option<Arc<NodeHeap>>> = vec![None; n_nodes];
        let mut node_devices: Vec<Option<Vec<Device>>> = vec![None; n_nodes];
        let mut node_handler: Vec<Option<Arc<NodeHandler>>> = vec![None; n_nodes];
        // Hierarchical collectives rendezvous through one NodeColl per
        // node, alongside the node VAS. The baseline has no shared node
        // memory, so its tasks get none and the engine stays flat/p2p.
        let mut node_coll: Vec<Option<Arc<NodeColl>>> = vec![None; n_nodes];
        if impacc {
            for t in &tasks {
                if node_space[t.node].is_none() {
                    let space = Arc::new(AddressSpace::new(
                        res.spec.nodes[t.node].mem_bytes,
                        self.phys_cap,
                    ));
                    let devices: Vec<Device> = (0..res.spec.nodes[t.node].devices.len())
                        .map(|i| Device::new(t.node, i, res.clone(), space.clone()))
                        .collect();
                    let heap = Arc::new(NodeHeap::new());
                    let handler = NodeHandler::new(
                        t.node,
                        res.clone(),
                        space.clone(),
                        heap.clone(),
                        devices.clone(),
                        self.options,
                        self.phys_cap,
                    );
                    {
                        let handler = handler.clone();
                        // Pinned to its node's partition: the handler
                        // touches only node-local shared structures.
                        sim.spawn_daemon_on(t.node as u32, format!("handler.n{}", t.node), {
                            move |ctx| handler.run(ctx)
                        });
                    }
                    node_space[t.node] = Some(space);
                    node_heap[t.node] = Some(heap);
                    node_devices[t.node] = Some(devices);
                    node_handler[t.node] = Some(handler);
                    node_coll[t.node] = Some(NodeColl::new());
                }
            }
        }

        let app = Arc::new(app);
        for (i, t) in tasks.iter().enumerate() {
            let was_remapped = remapped[i];
            let (space, heap, devices, handler) = if impacc {
                (
                    node_space[t.node].clone().expect("built above"),
                    node_heap[t.node].clone().expect("built above"),
                    node_devices[t.node].clone().expect("built above"),
                    node_handler[t.node].clone(),
                )
            } else {
                // Baseline: a private address space per task (OS process).
                let space = Arc::new(AddressSpace::new(
                    res.spec.nodes[t.node].mem_bytes,
                    self.phys_cap,
                ));
                let devices: Vec<Device> = (0..res.spec.nodes[t.node].devices.len())
                    .map(|i| Device::new(t.node, i, res.clone(), space.clone()))
                    .collect();
                (space, Arc::new(NodeHeap::new()), devices, None)
            };
            let seed = TaskSeed {
                world: world.clone(),
                socket: t.socket,
                dev_far: t.far,
                device: devices[t.dev_idx].clone(),
                space,
                heap,
                comm: CommCore {
                    rank: t.rank,
                    node: t.node,
                    node_of: node_of.clone(),
                    res: res.clone(),
                    sysmpi: MpiTask::new(sysmpi.clone(), t.rank),
                    handler,
                    devices,
                    opts: self.options,
                    phys_cap: self.phys_cap,
                },
                node_coll: node_coll[t.node].clone(),
                coll_algo: self.coll_algo,
            };
            let app = app.clone();
            let (node, dev_idx, socket, far) = (t.node, t.dev_idx, t.socket, t.far);
            sim.spawn_on(t.node as u32, format!("rank{}", t.rank), move |ctx| {
                ctx.event("marker", || {
                    vec![
                        ("phase", "pin".to_string()),
                        ("node", node.to_string()),
                        ("device", dev_idx.to_string()),
                        ("socket", socket.to_string()),
                        ("far", far.to_string()),
                    ]
                });
                if was_remapped {
                    ctx.metrics().inc("device_remaps");
                    ctx.event("marker", || {
                        vec![
                            ("phase", "remap".to_string()),
                            ("node", node.to_string()),
                            ("device", dev_idx.to_string()),
                        ]
                    });
                }
                let tc = TaskCtx::from_seed(ctx.clone(), seed);
                app(&tc);
            });
        }

        // Counter handle surviving `sim.run(self)`: a panicked run still
        // has final counters for its black-box dump.
        let metrics = sim.metrics().clone();
        let report = match sim.run() {
            Ok(report) => report,
            Err(e) => {
                if let (Some(fr), Some(dir)) = (&flight, crate::config::flight_dump_dir()) {
                    let dump = fr.dump(
                        &self.flight_label,
                        Trigger::Panic(format!("{e:?}")),
                        metrics.snapshot(),
                        &[],
                    );
                    match dump.write(&dir) {
                        Ok(path) => eprintln!("flight: panic dump at {}", path.display()),
                        Err(we) => eprintln!("flight: failed to write panic dump: {we}"),
                    }
                }
                return Err(e);
            }
        };
        if parallelism > 0 {
            // Concurrent partitions emit spans in racy real-time order;
            // canonicalizing restores a schedule-independent order so
            // recorded artifacts are byte-identical for every worker count.
            if let Some(rec) = &self.recorder {
                rec.canonicalize();
            }
            if let Some((rec, _)) = &auto_trace {
                rec.canonicalize();
            }
        }
        // Watchdog pass over the run's final counters. Findings become
        // structured `anomaly` spans (recorded into the flight rings and
        // any attached recorders at the run's end instant), and — when a
        // dump directory is configured — trigger a `FLIGHT_*.json` dump.
        // Burst beats rule findings in trigger precedence: a fault burst
        // explains its own anomalies.
        if let Some(fr) = &flight {
            let burst = crate::config::flight_burst();
            let wd = Watchdog::new().with_burst_threshold(burst);
            let pairs: Vec<(&str, u64)> = report.metrics.iter().map(|(k, v)| (*k, *v)).collect();
            let mut anomalies = wd.check_counters(&pairs);
            if let Some(a) = wd.check_engine(report.horizon_stalls, report.parallel_advances) {
                anomalies.push(a);
            }
            for a in &anomalies {
                let span = a.to_span(report.end_time);
                fr.record_span(span.clone());
                if let Some(rec) = &self.recorder {
                    rec.record(span.clone());
                }
                if let Some((rec, _)) = &auto_trace {
                    rec.record(span);
                }
            }
            if let Some(dir) = crate::config::flight_dump_dir() {
                let trigger = if fr.fault_fires() >= burst {
                    Trigger::FaultBurst {
                        fired: fr.fault_fires(),
                        threshold: burst,
                    }
                } else if let Some(a) = anomalies.iter().find(|a| a.deterministic) {
                    Trigger::Anomaly(a.rule.to_string())
                } else {
                    Trigger::Request
                };
                // Only determinism-safe findings are embedded in dump
                // bytes (DESIGN.md §5j); live-only rules stay live-only.
                anomalies.retain(|a| a.deterministic);
                let dump = fr.dump(
                    &self.flight_label,
                    trigger,
                    report.metrics.iter().map(|(k, v)| (*k, *v)),
                    &anomalies,
                );
                if let Err(e) = dump.write(&dir) {
                    eprintln!("flight: failed to write dump: {e}");
                }
            }
        }
        if let Some((rec, path)) = auto_trace {
            let spans = rec.spans();
            let label = if impacc { "impacc" } else { "baseline" };
            if let Err(e) =
                impacc_obs::chrome::write_trace_groups(&path, &[(label, spans.as_slice())])
            {
                eprintln!("IMPACC_TRACE: failed to write {}: {e}", path.display());
            }
        }
        Ok(RunSummary { report, tasks })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use impacc_machine::presets;

    #[test]
    fn default_mask_takes_all_accelerators() {
        let (_, tasks) = Launch::plan(&presets::psg(), DeviceTypeMask::DEFAULT, true);
        assert_eq!(tasks.len(), 8);
        assert!(tasks.iter().all(|t| t.kind == DeviceKind::CudaGpu));
        assert!(tasks.iter().all(|t| !t.far), "pinned tasks sit near");
    }

    #[test]
    fn mixed_cluster_mapping_matches_figure2() {
        let m = presets::mixed_demo();
        // (a) default: node0 2 GPUs, node1 GPU+MIC, node2 CPU fallback.
        let (_, t) = Launch::plan(&m, DeviceTypeMask::DEFAULT, true);
        let kinds: Vec<DeviceKind> = t.iter().map(|x| x.kind).collect();
        assert_eq!(
            kinds,
            vec![
                DeviceKind::CudaGpu,
                DeviceKind::CudaGpu,
                DeviceKind::CudaGpu,
                DeviceKind::OpenClMic,
                DeviceKind::CpuCores
            ]
        );
        // (b) nvidia only: 3 tasks, node2 has none.
        let (_, t) = Launch::plan(&m, DeviceTypeMask::NVIDIA, true);
        assert_eq!(t.len(), 3);
        assert!(t.iter().all(|x| x.kind == DeviceKind::CudaGpu));
        // (c) cpu: one task per node.
        let (_, t) = Launch::plan(&m, DeviceTypeMask::CPU, true);
        assert_eq!(t.len(), 3);
        assert!(t.iter().all(|x| x.kind == DeviceKind::CpuCores));
        assert_eq!(t.iter().map(|x| x.node).collect::<Vec<_>>(), vec![0, 1, 2]);
        // (d) xeonphi: one task (node 1).
        let (_, t) = Launch::plan(&m, DeviceTypeMask::XEONPHI, true);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].node, 1);
        // (e) nvidia|xeonphi: 4 tasks.
        let (_, t) = Launch::plan(&m, DeviceTypeMask::NVIDIA.or(DeviceTypeMask::XEONPHI), true);
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn unpinned_compact_binding_ignores_device_affinity() {
        // Full PSG: compact binding happens to match the socket layout
        // (4 GPUs per socket), so nobody lands far...
        let (_, tasks) = Launch::plan(&presets::psg(), DeviceTypeMask::DEFAULT, false);
        assert_eq!(tasks.iter().filter(|t| t.far).count(), 0);
        // ...but with only the first 4 GPUs (all on socket 0), the same
        // binding strands half the tasks on the far socket.
        let mut spec = presets::psg();
        spec.nodes[0].devices.truncate(4);
        let (_, tasks) = Launch::plan(&spec, DeviceTypeMask::DEFAULT, false);
        assert_eq!(tasks.iter().filter(|t| t.far).count(), 2);
        let (_, pinned) = Launch::plan(&spec, DeviceTypeMask::DEFAULT, true);
        assert_eq!(pinned.iter().filter(|t| t.far).count(), 0);
    }

    #[test]
    #[should_panic(expected = "no device in the cluster")]
    fn empty_mapping_is_an_error() {
        let m = presets::beacon(1);
        let _ = Launch::plan(&m, DeviceTypeMask::NVIDIA, true);
    }

    #[test]
    fn device_loss_remaps_onto_survivor() {
        let mut spec = presets::psg();
        spec.nodes[0].devices.truncate(2);
        let s = Launch::new(spec, RuntimeOptions::impacc())
            .chaos(FaultPlan::new(7).fail_device(0, 0))
            .run(|tc| {
                tc.mpi_barrier();
            })
            .unwrap();
        assert_eq!(s.tasks[0].dev_idx, 1, "rank 0 moved onto the survivor");
        assert_eq!(s.tasks[1].dev_idx, 1, "rank 1 kept its healthy device");
        let remaps = s.report.metrics.get("device_remaps").copied().unwrap_or(0);
        assert_eq!(remaps, 1);
    }

    #[test]
    #[should_panic(expected = "no surviving device")]
    fn total_device_loss_is_an_error() {
        let mut spec = presets::psg();
        spec.nodes[0].devices.truncate(1);
        let _ = Launch::new(spec, RuntimeOptions::impacc())
            .chaos(FaultPlan::new(7).fail_device(0, 0))
            .run(|_tc| {});
    }
}
