//! # impacc-core — the IMPACC runtime
//!
//! The paper's primary contribution, reproduced over the simulation
//! substrates: automatic task-device mapping with NUMA-friendly pinning
//! ([`Launch`], §3.2–3.3), the unified node virtual address space and
//! per-task present tables (via `impacc-mem`, §3.4), unified MPI
//! communication routines accepting device buffers ([`TaskCtx`], §3.5),
//! the unified activity queue (`MpiOpts::on_queue`, §3.6), the per-node
//! message handler with lock-free command queues and message fusion
//! ([`NodeHandler`], [`MpscQueue`], §3.7), and node heap aliasing (§3.8).
//!
//! The same launcher also provides the legacy MPI+OpenACC baseline
//! ([`RuntimeOptions::baseline`]) so every experiment compares the two
//! models over identical simulated hardware.

#![warn(missing_docs)]

pub mod cmd;
pub mod config;
pub mod handler;
pub mod launch;
pub mod mode;
pub mod mpsc;
pub mod task;

pub use cmd::{CmdKind, HeapRef, MsgCmd, PendingRecv, ResolvedBuf};
pub use handler::NodeHandler;
pub use impacc_coll::{CollAlgo, CollEngine, CollOp, CollOpts, NodeColl};
pub use launch::{Launch, RunSummary, TaskInfo};
pub use mode::{Mode, RuntimeOptions};
pub use mpsc::MpscQueue;
pub use task::{BufView, DataClause, HBuf, MpiOpts, TaskCtx, UReq};
