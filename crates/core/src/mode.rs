//! Runtime modes and feature toggles.

/// Which programming-model semantics the launcher provides.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Mode {
    /// The IMPACC runtime: threaded-MPI tasks sharing a unified node
    /// virtual address space, message handler with fusion, unified
    /// communication routines, unified activity queues, heap aliasing.
    Impacc,
    /// The legacy flat MPI+OpenACC model: one OS process per task with a
    /// private address space; all communication through the system MPI
    /// library (intra-node staging); explicit host staging around device
    /// buffers; explicit synchronization between MPI and OpenACC.
    MpiOpenAcc,
}

/// Feature switches, primarily for the ablation benchmarks. The paper's two
/// configurations are [`RuntimeOptions::impacc`] and
/// [`RuntimeOptions::baseline`]; individual toggles isolate each technique's
/// contribution.
#[derive(Copy, Clone, Debug)]
pub struct RuntimeOptions {
    /// Programming-model semantics.
    pub mode: Mode,
    /// Node heap aliasing (§3.8). Only meaningful under `Mode::Impacc`.
    pub aliasing: bool,
    /// Unified activity queue: allow MPI calls with an `async` clause
    /// (§3.6). Only meaningful under `Mode::Impacc`.
    pub unified_queue: bool,
    /// NUMA-friendly task-CPU pinning (§3.3). Without it, tasks land on
    /// sockets round-robin by rank, as an unpinned OS would place them.
    pub numa_pinning: bool,
    /// Message fusion through the node handler (§3.7). Disabled, intra-node
    /// traffic falls back to the system MPI staging path even in IMPACC
    /// mode (ablation).
    pub fusion: bool,
}

impl RuntimeOptions {
    /// Full IMPACC: everything on.
    pub fn impacc() -> RuntimeOptions {
        RuntimeOptions {
            mode: Mode::Impacc,
            aliasing: true,
            unified_queue: true,
            numa_pinning: true,
            fusion: true,
        }
    }

    /// The legacy MPI+OpenACC baseline: everything off.
    pub fn baseline() -> RuntimeOptions {
        RuntimeOptions {
            mode: Mode::MpiOpenAcc,
            aliasing: false,
            unified_queue: false,
            numa_pinning: false,
            fusion: false,
        }
    }

    /// Is this the IMPACC runtime?
    pub fn is_impacc(&self) -> bool {
        self.mode == Mode::Impacc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_consistent() {
        let i = RuntimeOptions::impacc();
        assert!(i.is_impacc() && i.aliasing && i.unified_queue && i.numa_pinning && i.fusion);
        let b = RuntimeOptions::baseline();
        assert!(!b.is_impacc() && !b.aliasing && !b.unified_queue && !b.numa_pinning && !b.fusion);
    }
}
