//! Lock-free, in-order, multi-producer single-consumer queues (§3.7).
//!
//! The IMPACC runtime's task threads push message commands onto two such
//! queues per node — the *intra-node message queue* and the *pending
//! internode message queue* — and the node's single message handler thread
//! consumes them. This is a Vyukov-style intrusive MPSC queue: producers
//! serialize only on one atomic swap, the consumer walks the linked list
//! without any atomics beyond a per-node `next` load.
//!
//! FIFO ordering per producer is guaranteed (the swap on `tail` is the
//! linearization point), which is what preserves MPI's non-overtaking rule
//! through the handler.

use std::ptr;
use std::sync::atomic::{AtomicPtr, Ordering};

struct Node<T> {
    next: AtomicPtr<Node<T>>,
    value: Option<T>,
}

/// A lock-free MPSC FIFO. `push` may be called from any thread; `pop` must
/// only be called from the single consumer thread.
pub struct MpscQueue<T> {
    /// Producers swap themselves in here.
    tail: AtomicPtr<Node<T>>,
    /// Consumer-owned: the current stub node.
    head: AtomicPtr<Node<T>>,
}

unsafe impl<T: Send> Send for MpscQueue<T> {}
unsafe impl<T: Send> Sync for MpscQueue<T> {}

impl<T> Default for MpscQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> MpscQueue<T> {
    /// An empty queue.
    pub fn new() -> MpscQueue<T> {
        let stub = Box::into_raw(Box::new(Node {
            next: AtomicPtr::new(ptr::null_mut()),
            value: None,
        }));
        MpscQueue {
            tail: AtomicPtr::new(stub),
            head: AtomicPtr::new(stub),
        }
    }

    /// Enqueue a value. Wait-free except for one atomic swap.
    pub fn push(&self, value: T) {
        let node = Box::into_raw(Box::new(Node {
            next: AtomicPtr::new(ptr::null_mut()),
            value: Some(value),
        }));
        // The swap is the linearization point: the queue order is the
        // order of swaps.
        let prev = self.tail.swap(node, Ordering::AcqRel);
        // Link the predecessor to us. Between the swap and this store the
        // queue is momentarily "broken" after `prev`; the consumer observes
        // a null next and treats the queue as (temporarily) empty there,
        // which is safe: the element is not yet considered delivered.
        unsafe {
            (*prev).next.store(node, Ordering::Release);
        }
    }

    /// Dequeue the oldest value, if one is fully linked.
    /// Must only be called by the single consumer.
    pub fn pop(&self) -> Option<T> {
        unsafe {
            let head = self.head.load(Ordering::Relaxed);
            let next = (*head).next.load(Ordering::Acquire);
            if next.is_null() {
                return None;
            }
            // `next` becomes the new stub; its value is taken.
            self.head.store(next, Ordering::Relaxed);
            let value = (*next).value.take();
            drop(Box::from_raw(head));
            debug_assert!(value.is_some(), "non-stub nodes always carry a value");
            value
        }
    }

    /// Best-effort emptiness check (exact when producers are quiescent).
    pub fn is_empty(&self) -> bool {
        unsafe {
            let head = self.head.load(Ordering::Relaxed);
            (*head).next.load(Ordering::Acquire).is_null()
        }
    }
}

impl<T> Drop for MpscQueue<T> {
    fn drop(&mut self) {
        while self.pop().is_some() {}
        let stub = self.head.load(Ordering::Relaxed);
        unsafe {
            drop(Box::from_raw(stub));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_single_producer() {
        let q = MpscQueue::new();
        assert!(q.is_empty());
        for i in 0..100 {
            q.push(i);
        }
        assert!(!q.is_empty());
        for i in 0..100 {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_pop() {
        let q = MpscQueue::new();
        q.push(1);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
        q.push(2);
        q.push(3);
        assert_eq!(q.pop(), Some(2));
        q.push(4);
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), Some(4));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn drop_reclaims_pending_nodes() {
        let q = MpscQueue::new();
        let marker = Arc::new(());
        for _ in 0..10 {
            q.push(marker.clone());
        }
        assert_eq!(Arc::strong_count(&marker), 11);
        drop(q);
        assert_eq!(Arc::strong_count(&marker), 1);
    }

    /// Real multi-threaded stress outside the DES: many producers, one
    /// consumer, per-producer FIFO must hold.
    #[test]
    fn stress_multi_producer_fifo() {
        const PRODUCERS: usize = 8;
        const PER: u64 = 20_000;
        let q = Arc::new(MpscQueue::new());
        let mut handles = Vec::new();
        for p in 0..PRODUCERS as u64 {
            let q = q.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..PER {
                    q.push((p, i));
                }
            }));
        }
        let mut last = [None::<u64>; PRODUCERS];
        let mut seen = 0u64;
        while seen < PRODUCERS as u64 * PER {
            if let Some((p, i)) = q.pop() {
                let prev = last[p as usize];
                assert!(
                    prev.map_or(i == 0, |x| i == x + 1),
                    "producer {p} out of order"
                );
                last[p as usize] = Some(i);
                seen += 1;
            } else {
                std::hint::spin_loop();
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(q.is_empty());
    }
}
