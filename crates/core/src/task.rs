//! The task context: what an MPI+OpenACC program is written against.
//!
//! A [`TaskCtx`] bundles the paper's programming surface:
//!
//! * **MPI**: `mpi_send` / `mpi_recv` / `mpi_isend` / `mpi_irecv` plus
//!   collectives — *unified communication routines* (§3.5) that accept
//!   device buffers and route intra-node traffic through the node's
//!   message handler under IMPACC, or the plain system-MPI calls under the
//!   baseline model.
//! * **OpenACC**: heap allocation (hooked `malloc`), data constructs
//!   (`acc_create` / `acc_update_*` / `acc_delete` maintaining the present
//!   table), kernels and `async` activity queues, `acc_wait`.
//! * **IMPACC directives** ([`MpiOpts`]): the `sendbuf(device)`,
//!   `readonly` and `async(n)` clauses of `#pragma acc mpi`.

use std::collections::HashMap;
use std::sync::Arc;

use impacc_acc::{ActivityQueue, Device};
use impacc_coll::{CollAlgo, CollEngine, CollOpts, NodeColl};
use impacc_machine::{ClusterResources, DeviceKind, HdDir, KernelCost};
use impacc_mem::{AddressSpace, Backing, HeapPtr, NodeHeap, PresentTable, VirtAddr};
use impacc_mem::{DevPtr, PresentEntry};
use impacc_mpi::{
    BufLoc, CollSeq, Comm, MpiTask, MsgBuf, PointToPoint, ReduceOp, Request, SrcSel, Status, TagSel,
};
use impacc_vtime::{Ctx, Latch, SimDur};
use parking_lot::Mutex;

use crate::cmd::{CmdKind, HeapRef, MsgCmd, PendingRecv, ResolvedBuf, TimedDone};
use crate::handler::NodeHandler;
use crate::mode::RuntimeOptions;

/// A data clause of a structured `#pragma acc data` region
/// (see [`TaskCtx::acc_data`]).
#[derive(Copy, Clone, Debug)]
pub enum DataClause<'a> {
    /// `create(b)`: device mirror for the region's duration, no transfers.
    Create(&'a HBuf),
    /// `copyin(b)`: push on entry, delete on exit.
    Copyin(&'a HBuf),
    /// `copyout(b)`: create on entry, pull + delete on exit.
    Copyout(&'a HBuf),
    /// `copy(b)`: push on entry, pull + delete on exit.
    Copy(&'a HBuf),
    /// `present(b)`: assert an enclosing region already mapped it.
    Present(&'a HBuf),
}

/// A host heap buffer handle — a simulated pointer *variable*, so node heap
/// aliasing can transparently re-aim it (§3.8). Dereference through
/// [`TaskCtx::host_view`].
#[derive(Copy, Clone, Debug)]
pub struct HBuf {
    pub(crate) ptr: HeapPtr,
    /// Length in bytes.
    pub len: u64,
}

impl HBuf {
    /// Length in f64 elements.
    pub fn elems(&self) -> usize {
        (self.len / 8) as usize
    }
}

/// A resolved view of storage (host or device side) for direct access in
/// kernels and tests.
#[derive(Clone)]
pub struct BufView {
    /// The storage.
    pub backing: Arc<Backing>,
    /// Byte offset of the view.
    pub off: u64,
    /// View length in bytes.
    pub len: u64,
}

impl BufView {
    /// Read `n` f64 elements starting at element `start`.
    pub fn read_f64s(&self, start: usize, n: usize) -> Vec<f64> {
        assert!((start + n) as u64 * 8 <= self.len, "read out of range");
        self.backing.read_f64s(self.off + start as u64 * 8, n)
    }

    /// Write f64 elements starting at element `start`.
    pub fn write_f64s(&self, start: usize, vals: &[f64]) {
        assert!(
            (start + vals.len()) as u64 * 8 <= self.len,
            "write out of range"
        );
        self.backing.write_f64s(self.off + start as u64 * 8, vals);
    }

    /// Number of f64 elements in the view.
    pub fn elems(&self) -> usize {
        (self.len / 8) as usize
    }
}

/// The clauses of the IMPACC directive `#pragma acc mpi` (§3.5):
/// `sendbuf(device[,readonly]) / recvbuf(device[,readonly]) / async(n)`.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct MpiOpts {
    /// Use the device copy of the buffer (present-table translation).
    pub device: bool,
    /// The buffer is read-only around this call (aliasing requirement 3).
    pub readonly: bool,
    /// Enqueue the call on this activity queue (unified activity queue,
    /// §3.6) instead of executing it on the host thread.
    pub queue: Option<u32>,
}

impl MpiOpts {
    /// Plain host-buffer call (no directive).
    pub fn host() -> MpiOpts {
        MpiOpts::default()
    }

    /// `sendbuf(device)` / `recvbuf(device)`.
    pub fn device() -> MpiOpts {
        MpiOpts {
            device: true,
            ..Default::default()
        }
    }

    /// Add the `readonly` attribute.
    pub fn readonly(mut self) -> MpiOpts {
        self.readonly = true;
        self
    }

    /// Add an `async(q)` clause.
    pub fn on_queue(mut self, q: u32) -> MpiOpts {
        self.queue = Some(q);
        self
    }
}

/// A unified request: completion handle of a non-blocking unified MPI call
/// (handler-fused, queue-enqueued, or system-MPI backed).
pub struct UReq {
    inner: UReqInner,
}

enum UReqInner {
    Sys(Request),
    Timed {
        done: TimedDone,
        status: Arc<Mutex<Option<Status>>>,
    },
}

impl UReq {
    fn from_timed(done: TimedDone, status: Arc<Mutex<Option<Status>>>) -> UReq {
        UReq {
            inner: UReqInner::Timed { done, status },
        }
    }

    fn from_sys(req: Request) -> UReq {
        UReq {
            inner: UReqInner::Sys(req),
        }
    }

    /// Block until complete; receives return their status.
    pub fn wait(&self, ctx: &Ctx) -> Option<Status> {
        match &self.inner {
            UReqInner::Sys(req) => req.wait(ctx),
            UReqInner::Timed { done, status } => {
                done.wait(ctx);
                *status.lock()
            }
        }
    }

    /// `MPI_Test`: complete by the current virtual time?
    pub fn test(&self, ctx: &Ctx) -> bool {
        match &self.inner {
            UReqInner::Sys(req) => req.test(ctx),
            UReqInner::Timed { done, .. } => done.test(ctx),
        }
    }
}

/// Everything a communication operation needs, clonable into activity-queue
/// closures (the op may execute on a queue daemon, not the task thread).
#[derive(Clone)]
pub(crate) struct CommCore {
    pub rank: u32,
    pub node: usize,
    pub node_of: Arc<Vec<usize>>,
    pub res: Arc<ClusterResources>,
    pub sysmpi: MpiTask,
    pub handler: Option<Arc<NodeHandler>>,
    pub devices: Vec<Device>,
    pub opts: RuntimeOptions,
    pub phys_cap: Option<u64>,
}

impl CommCore {
    fn gpudirect(&self) -> bool {
        self.res.spec.network.gpudirect_rdma
    }

    fn msgbuf(&self, buf: &ResolvedBuf) -> MsgBuf {
        MsgBuf {
            backing: buf.backing.clone(),
            off: buf.off,
            len: buf.len,
            loc: buf.loc,
            // The IMPACC runtime registers communication buffers with the
            // library up front; the legacy model sends unregistered
            // application buffers.
            pinned: self.opts.is_impacc(),
        }
    }

    /// Route one send. Blocking: returns when the send buffer is reusable.
    pub fn do_send(
        &self,
        ctx: &Ctx,
        buf: ResolvedBuf,
        dst_rel: u32,
        tag: i32,
        comm: &Comm,
        readonly: bool,
    ) {
        self.isend_inner(ctx, buf, dst_rel, tag, comm, readonly)
            .wait(ctx);
    }

    pub fn isend_inner(
        &self,
        ctx: &Ctx,
        buf: ResolvedBuf,
        dst_rel: u32,
        tag: i32,
        comm: &Comm,
        readonly: bool,
    ) -> UReq {
        let dst_global = comm.global_of(dst_rel);
        let dst_node = self.node_of[dst_global as usize];
        let fused = self.opts.is_impacc() && self.opts.fusion && dst_node == self.node;
        if fused {
            let handler = self.handler.as_ref().expect("IMPACC mode has a handler");
            let done = TimedDone::new();
            if ctx.sink_enabled() {
                done.set_cause(format!("fused send dst={dst_global} tag={tag}"));
            }
            let status = Arc::new(Mutex::new(None));
            handler.submit(
                ctx,
                MsgCmd {
                    kind: CmdKind::Send,
                    src: self.rank,
                    src_rel: comm.rel_of(self.rank).expect("sender in communicator"),
                    dst: dst_global,
                    tag,
                    comm_id: comm.id(),
                    buf,
                    readonly,
                    done: done.clone(),
                    status: status.clone(),
                    submitted_by: None,
                },
            );
            return UReq::from_timed(done, status);
        }
        // System-MPI path; stage device buffers unless GPUDirect covers
        // this internode transfer.
        match buf.loc {
            BufLoc::Device(d) if dst_node == self.node || !self.gpudirect() => {
                let staging = Backing::new(buf.len, self.phys_cap);
                self.devices[d].perform_copy(
                    ctx,
                    HdDir::DtoH,
                    buf.far,
                    true, // runtime staging is pre-pinned
                    (&staging, 0),
                    (&buf.backing, buf.off),
                    buf.len,
                );
                let m = MsgBuf::host(staging, 0, buf.len).registered();
                UReq::from_sys(self.sysmpi.isend(ctx, &m, dst_rel, tag, comm))
            }
            _ => UReq::from_sys(
                self.sysmpi
                    .isend(ctx, &self.msgbuf(&buf), dst_rel, tag, comm),
            ),
        }
    }

    /// Route one receive. Blocking.
    pub fn do_recv(
        &self,
        ctx: &Ctx,
        buf: ResolvedBuf,
        src: SrcSel,
        tag: TagSel,
        comm: &Comm,
        readonly: bool,
    ) -> Status {
        self.irecv_inner(ctx, buf, src, tag, comm, readonly)
            .wait(ctx)
            .expect("receives carry a status")
    }

    pub fn irecv_inner(
        &self,
        ctx: &Ctx,
        buf: ResolvedBuf,
        src: SrcSel,
        tag: TagSel,
        comm: &Comm,
        readonly: bool,
    ) -> UReq {
        let routed_intra = if self.opts.is_impacc() && self.opts.fusion {
            match src {
                Some(s) => self.node_of[comm.global_of(s) as usize] == self.node,
                None => false, // wildcard receives use the system path
            }
        } else {
            false
        };
        if routed_intra {
            let src_rel = src.expect("checked above");
            let tag = tag.expect("the unified intra-node path needs an exact tag");
            let handler = self.handler.as_ref().expect("IMPACC mode has a handler");
            let done = TimedDone::new();
            if ctx.sink_enabled() {
                done.set_cause(format!("fused recv src={src_rel} tag={tag}"));
            }
            let status = Arc::new(Mutex::new(None));
            handler.submit(
                ctx,
                MsgCmd {
                    kind: CmdKind::Recv,
                    src: comm.global_of(src_rel),
                    src_rel,
                    dst: self.rank,
                    tag,
                    comm_id: comm.id(),
                    buf,
                    readonly,
                    done: done.clone(),
                    status: status.clone(),
                    submitted_by: None,
                },
            );
            return UReq::from_timed(done, status);
        }
        match buf.loc {
            BufLoc::Device(_) if !self.gpudirect() => {
                // Pre-pinned staging + pending internode message queue: the
                // handler issues the HtoD when the network half completes.
                let handler = self
                    .handler
                    .as_ref()
                    .expect("device receives without GPUDirect need the IMPACC runtime");
                let staging = Backing::new(buf.len, self.phys_cap);
                let m = MsgBuf::host(staging.clone(), 0, buf.len).registered();
                let req = self.sysmpi.irecv(ctx, &m, src, tag, comm);
                let done = TimedDone::new();
                if ctx.sink_enabled() {
                    done.set_cause("pending internode recv".to_string());
                }
                let status = Arc::new(Mutex::new(None));
                handler.submit_pending(
                    ctx,
                    PendingRecv {
                        req,
                        staging,
                        dev_buf: buf,
                        done: done.clone(),
                        status: status.clone(),
                    },
                );
                UReq::from_timed(done, status)
            }
            _ => UReq::from_sys(self.sysmpi.irecv(ctx, &self.msgbuf(&buf), src, tag, comm)),
        }
    }
}

/// The per-task programming context. Created by the launcher; passed by
/// reference to the application closure.
pub struct TaskCtx {
    ctx: Ctx,
    world: Comm,
    socket: usize,
    dev_far: bool,
    device: Device,
    space: Arc<AddressSpace>,
    heap: Arc<NodeHeap>,
    present: PresentTable,
    queues: Mutex<HashMap<u32, ActivityQueue>>,
    comm: CommCore,
    coll: CollSeq,
    engine: CollEngine,
}

/// Bundle the launcher hands to each task actor to build its context.
pub(crate) struct TaskSeed {
    pub world: Comm,
    pub socket: usize,
    pub dev_far: bool,
    pub device: Device,
    pub space: Arc<AddressSpace>,
    pub heap: Arc<NodeHeap>,
    pub comm: CommCore,
    pub node_coll: Option<Arc<NodeColl>>,
    pub coll_algo: Option<CollAlgo>,
}

impl TaskCtx {
    pub(crate) fn from_seed(ctx: Ctx, seed: TaskSeed) -> TaskCtx {
        let costs = &seed.comm.res.spec.costs;
        let engine = CollEngine::new(
            seed.comm.node_of.clone(),
            seed.comm.node,
            costs.host_memcpy_bw,
            costs.host_memcpy_lat,
            seed.comm.res.chaos.clone(),
            seed.node_coll,
            seed.coll_algo,
        );
        TaskCtx {
            ctx,
            world: seed.world,
            socket: seed.socket,
            dev_far: seed.dev_far,
            device: seed.device,
            space: seed.space,
            heap: seed.heap,
            present: PresentTable::new(),
            queues: Mutex::new(HashMap::new()),
            comm: seed.comm,
            coll: CollSeq::new(),
            engine,
        }
    }

    /// The collectives engine behind this task's `barrier` / `bcast` /
    /// `allreduce` / `allgather`: call it directly to pass per-call
    /// [`CollOpts`] (e.g. force a registry algorithm for one operation).
    pub fn coll_engine(&self) -> &CollEngine {
        &self.engine
    }

    /// The engine context (virtual time, metrics, spawning).
    pub fn ctx(&self) -> &Ctx {
        &self.ctx
    }

    /// This task's world rank.
    pub fn rank(&self) -> u32 {
        self.comm.rank
    }

    /// Total number of tasks (`MPI_Comm_size(MPI_COMM_WORLD)`).
    pub fn size(&self) -> u32 {
        self.world.size()
    }

    /// `MPI_COMM_WORLD`.
    pub fn world(&self) -> Comm {
        self.world.clone()
    }

    fn world_ref(&self) -> &Comm {
        &self.world
    }

    /// The node this task runs on.
    pub fn node(&self) -> usize {
        self.comm.node
    }

    /// The socket this task's thread is pinned to (§3.3).
    pub fn socket(&self) -> usize {
        self.socket
    }

    /// Whether this task sits on the far socket from its accelerator.
    pub fn is_far(&self) -> bool {
        self.dev_far
    }

    /// `acc_get_device_type()`: the kind of the attached accelerator.
    pub fn acc_device_kind(&self) -> DeviceKind {
        self.device.kind()
    }

    /// `acc_get_device_num()`: the node-local index of the attached
    /// accelerator.
    pub fn acc_get_device_num(&self) -> usize {
        self.device.idx()
    }

    /// `acc_set_device_num()`: under IMPACC the task-device mapping is
    /// fixed at launch and the runtime **ignores** this call (§3.2); it is
    /// provided so unmodified MPI+OpenACC sources still run.
    pub fn acc_set_device_num(&self, _num: usize) {
        // Deliberately a no-op: "the runtime ignores any additional
        // acc_set_device_num() calls by the host program."
    }

    /// `acc_get_num_devices()`: how many accelerators of `kind` this
    /// task's node has.
    pub fn acc_get_num_devices(&self, kind: DeviceKind) -> usize {
        self.comm.res.spec.nodes[self.comm.node]
            .devices
            .iter()
            .filter(|d| d.kind == kind)
            .count()
    }

    /// `acc_is_present()`: does the buffer currently have a device mirror?
    pub fn acc_is_present(&self, b: &HBuf) -> bool {
        let addr = self.heap.deref(b.ptr).expect("live buffer");
        self.present.find_by_host(addr).is_some()
    }

    /// The attached accelerator.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// The runtime configuration.
    pub fn options(&self) -> &RuntimeOptions {
        &self.comm.opts
    }

    /// The machine resources (cost model access for workload builders).
    pub fn resources(&self) -> &Arc<ClusterResources> {
        &self.comm.res
    }

    // ---------------------------------------------------------------
    // Hooked heap
    // ---------------------------------------------------------------

    /// `malloc(len)` on the (node-shared) hooked heap.
    pub fn malloc(&self, len: u64) -> HBuf {
        self.ctx.advance(self.comm.res.heap_op_overhead(), "heap");
        let ptr = self.heap.malloc(&self.space, len).expect("host allocation");
        HBuf { ptr, len }
    }

    /// Allocate a buffer of `n` f64 elements.
    pub fn malloc_f64(&self, n: usize) -> HBuf {
        self.malloc(n as u64 * 8)
    }

    /// `calloc(n, size)` on the hooked heap (zero-initialized).
    pub fn calloc(&self, n: u64, size: u64) -> HBuf {
        self.ctx.advance(self.comm.res.heap_op_overhead(), "heap");
        let ptr = self
            .heap
            .calloc(&self.space, n, size)
            .expect("host allocation");
        HBuf { ptr, len: n * size }
    }

    /// `realloc(b, new_len)` on the hooked heap: the handle is re-aimed at
    /// a private block of `new_len` bytes with the old prefix copied (an
    /// aliased buffer is unshared by this).
    pub fn realloc(&self, b: &mut HBuf, new_len: u64) {
        self.ctx.advance(self.comm.res.heap_op_overhead(), "heap");
        self.heap
            .realloc(&self.space, b.ptr, new_len)
            .expect("valid realloc");
        b.len = new_len;
    }

    /// `free()`: drop this task's reference; storage is released when the
    /// heap-table refcount reaches zero.
    pub fn free(&self, b: HBuf) {
        self.ctx.advance(self.comm.res.heap_op_overhead(), "heap");
        self.heap.free(&self.space, b.ptr).expect("valid free");
    }

    /// Resolve the current host storage of a buffer (aliasing-aware).
    pub fn host_view(&self, b: &HBuf) -> BufView {
        let addr = self.heap.deref(b.ptr).expect("live buffer");
        let (region, off) = self.space.resolve(addr).expect("mapped buffer");
        BufView {
            backing: region.backing,
            off,
            len: b.len,
        }
    }

    /// Declare an extra pointer variable into `b` (blocks aliasing —
    /// requirement 4). Returns the raw pointer for later release.
    pub fn hold_extra_pointer(&self, b: &HBuf) -> HeapPtr {
        let addr = self.heap.deref(b.ptr).expect("live buffer");
        self.heap.declare_ptr(addr)
    }

    /// Drop a pointer declared with [`TaskCtx::hold_extra_pointer`].
    pub fn release_extra_pointer(&self, p: HeapPtr) {
        self.heap.drop_ptr(p);
    }

    // ---------------------------------------------------------------
    // OpenACC data constructs (present table)
    // ---------------------------------------------------------------

    /// `#pragma acc enter data create(b)`: allocate the device mirror and
    /// register it in the present table.
    pub fn acc_create(&self, b: &HBuf) {
        let addr = self.heap.deref(b.ptr).expect("live buffer");
        let alloc = self.device.alloc(b.len).expect("device allocation");
        self.present.insert(PresentEntry {
            host_addr: addr,
            len: b.len,
            dev: alloc.ptr.clone(),
            dev_region: alloc.region.clone(),
        });
        // Keep the shadow region alive implicitly via the present entry;
        // the shadow address range is freed in acc_delete.
        if let Some(shadow) = alloc.shadow {
            // Shadow regions are resolved through the present table only.
            let _ = shadow;
        }
    }

    /// `#pragma acc exit data delete(b)`: drop the device mirror.
    pub fn acc_delete(&self, b: &HBuf) {
        let addr = self.heap.deref(b.ptr).expect("live buffer");
        let entry = self.present.remove(addr).expect("buffer was present");
        self.space
            .free(entry.dev_region.addr)
            .expect("device region live");
        if let DevPtr::OpenCl { mapped, .. } = entry.dev {
            self.space.free(mapped).expect("shadow region live");
        }
    }

    /// `acc_deviceptr()`: device address of the (present) host buffer.
    pub fn acc_deviceptr(&self, b: &HBuf) -> VirtAddr {
        let addr = self.heap.deref(b.ptr).expect("live buffer");
        let (entry, off) = self.present.find_by_host(addr).expect("present");
        entry.dev.lookup_addr().offset(off)
    }

    /// `acc_hostptr()`: host address corresponding to a device address.
    pub fn acc_hostptr(&self, dev_addr: VirtAddr) -> VirtAddr {
        let (entry, off) = self.present.find_by_dev(dev_addr).expect("present");
        entry.host_addr.offset(off)
    }

    /// The device-side view of a present buffer (for kernel closures).
    pub fn dev_view(&self, b: &HBuf) -> BufView {
        let addr = self.heap.deref(b.ptr).expect("live buffer");
        let (entry, off) = self.present.find_by_host(addr).expect("present");
        BufView {
            backing: entry.dev_region.backing.clone(),
            off,
            len: entry.len - off,
        }
    }

    /// `#pragma acc update device(b[off..off+len])`. With `q`, enqueued
    /// asynchronously; otherwise blocks.
    pub fn acc_update_device(&self, b: &HBuf, off: u64, len: u64, q: Option<u32>) -> Option<Latch> {
        self.update(b, off, len, HdDir::HtoD, q)
    }

    /// `#pragma acc update host(b[off..off+len])`.
    pub fn acc_update_host(&self, b: &HBuf, off: u64, len: u64, q: Option<u32>) -> Option<Latch> {
        self.update(b, off, len, HdDir::DtoH, q)
    }

    fn update(&self, b: &HBuf, off: u64, len: u64, dir: HdDir, q: Option<u32>) -> Option<Latch> {
        let addr = self.heap.deref(b.ptr).expect("live buffer");
        let (region, roff) = self.space.resolve(addr).expect("mapped buffer");
        let (entry, eoff) = self.present.find_by_host(addr).expect("present");
        assert!(off + len <= entry.len - eoff, "update out of present range");
        let host = (region.backing.clone(), roff + off);
        let dev = (entry.dev_region.backing.clone(), eoff + off);
        // Application `acc update` copies move pageable heap memory.
        match q {
            Some(q) => Some(self.device.enqueue_copy(
                &self.ctx,
                &self.queue(q),
                dir,
                self.dev_far,
                false,
                host,
                dev,
                len,
            )),
            None => {
                self.device.perform_copy(
                    &self.ctx,
                    dir,
                    self.dev_far,
                    false,
                    (&host.0, host.1),
                    (&dev.0, dev.1),
                    len,
                );
                None
            }
        }
    }

    /// `copyin`: create + full update-device.
    pub fn acc_copyin(&self, b: &HBuf) {
        self.acc_create(b);
        self.acc_update_device(b, 0, b.len, None);
    }

    /// A structured `#pragma acc data` region: the clauses' entry actions
    /// run, then `body`, then the exit actions — device mirrors created by
    /// the region are deleted on the way out even for `copyin`-only data.
    ///
    /// ```ignore
    /// tc.acc_data(&[DataClause::Copyin(&a), DataClause::Copyout(&c)], |tc| {
    ///     tc.acc_kernel(...);
    /// });
    /// ```
    pub fn acc_data<R>(&self, clauses: &[DataClause<'_>], body: impl FnOnce(&TaskCtx) -> R) -> R {
        for c in clauses {
            match c {
                DataClause::Create(b) | DataClause::Copyout(b) => self.acc_create(b),
                DataClause::Copyin(b) | DataClause::Copy(b) => self.acc_copyin(b),
                DataClause::Present(b) => {
                    assert!(
                        self.acc_is_present(b),
                        "present() clause on data that is not on the device"
                    );
                }
            }
        }
        let out = body(self);
        for c in clauses {
            match c {
                DataClause::Create(b) | DataClause::Copyin(b) => self.acc_delete(b),
                DataClause::Copyout(b) | DataClause::Copy(b) => self.acc_copyout(b),
                DataClause::Present(b) => {
                    let _ = b; // owned by an enclosing region
                }
            }
        }
        out
    }

    /// `copyout`: full update-host + delete.
    pub fn acc_copyout(&self, b: &HBuf) {
        self.acc_update_host(b, 0, b.len, None);
        self.acc_delete(b);
    }

    // ---------------------------------------------------------------
    // Kernels and queues
    // ---------------------------------------------------------------

    /// The activity queue with id `q` (created on first use).
    pub fn queue(&self, q: u32) -> ActivityQueue {
        let mut map = self.queues.lock();
        map.entry(q)
            .or_insert_with(|| {
                ActivityQueue::spawn_with_chaos(
                    &self.ctx,
                    format!("q{}.rank{}", q, self.comm.rank),
                    self.comm.res.chaos.clone(),
                )
            })
            .clone()
    }

    /// Launch a kernel (`#pragma acc kernels/parallel`). `f` performs the
    /// real computation; `cost` models its duration. With `q`, enqueued on
    /// that activity queue (`async(q)`); otherwise blocks (the implicit
    /// barrier of a synchronous construct, charged with sync overhead).
    pub fn acc_kernel(
        &self,
        q: Option<u32>,
        cost: KernelCost,
        f: impl FnOnce() + Send + 'static,
    ) -> Option<Latch> {
        match q {
            Some(q) => Some(
                self.device
                    .enqueue_kernel(&self.ctx, &self.queue(q), cost, f),
            ),
            None => {
                self.device.perform_kernel(&self.ctx, &cost, f);
                self.ctx.advance(self.comm.res.sync_overhead(), "acc_wait");
                None
            }
        }
    }

    /// Launch a kernel with an explicit `num_gangs/num_workers/
    /// vector_length` configuration.
    pub fn acc_kernel_cfg(
        &self,
        q: Option<u32>,
        cost: KernelCost,
        cfg: impacc_machine::LaunchConfig,
        f: impl FnOnce() + Send + 'static,
    ) -> Option<Latch> {
        match q {
            Some(q) => {
                let dev = self.device.clone();
                Some(self.queue(q).enqueue(&self.ctx, "kernel", move |qctx| {
                    dev.perform_kernel_cfg(qctx, &cost, &cfg, f);
                }))
            }
            None => {
                self.device.perform_kernel_cfg(&self.ctx, &cost, &cfg, f);
                self.ctx.advance(self.comm.res.sync_overhead(), "acc_wait");
                None
            }
        }
    }

    /// `#pragma acc wait(q)`.
    pub fn acc_wait(&self, q: u32) {
        self.ctx.advance(self.comm.res.sync_overhead(), "acc_wait");
        self.queue(q).wait_all(&self.ctx, "acc_wait");
    }

    /// `#pragma acc wait(wait_q) async(async_q)`: make queue `async_q`
    /// wait for everything currently on `wait_q`, without blocking the
    /// host thread.
    pub fn acc_wait_async(&self, wait_q: u32, async_q: u32) {
        let waiter = self.queue(async_q);
        let target = self.queue(wait_q);
        waiter.enqueue_wait_for(&self.ctx, &target);
    }

    /// `#pragma acc wait` (all queues this task ever used).
    pub fn acc_wait_all(&self) {
        let queues: Vec<ActivityQueue> = self.queues.lock().values().cloned().collect();
        self.ctx.advance(self.comm.res.sync_overhead(), "acc_wait");
        for q in queues {
            q.wait_all(&self.ctx, "acc_wait");
        }
    }

    /// Charge host (CPU) computation time.
    pub fn host_compute(&self, secs: f64) {
        self.ctx.advance(SimDur::from_secs_f64(secs), "host");
    }

    // ---------------------------------------------------------------
    // Unified MPI communication routines
    // ---------------------------------------------------------------

    fn resolve(&self, b: &HBuf, off: u64, len: u64, device: bool) -> ResolvedBuf {
        assert!(off + len <= b.len, "buffer view out of range");
        let addr = self.heap.deref(b.ptr).expect("live buffer").offset(off);
        if device {
            let (entry, eoff) = self
                .present
                .find_by_host(addr)
                .expect("sendbuf(device)/recvbuf(device) requires present data");
            assert!(eoff + len <= entry.len);
            let dev_idx = match entry.dev_region.space {
                impacc_mem::MemSpace::Device(i) => i,
                _ => unreachable!("present entries map device regions"),
            };
            ResolvedBuf {
                backing: entry.dev_region.backing.clone(),
                off: eoff,
                len,
                loc: BufLoc::Device(dev_idx),
                far: self.dev_far,
                heap: None,
            }
        } else {
            let (region, roff) = self.space.resolve(addr).expect("mapped buffer");
            let heap = self.heap.entry_containing(addr).map(|e| HeapRef {
                ptr: b.ptr,
                addr,
                region_start: e.region.addr,
                region_len: e.region.len,
            });
            ResolvedBuf {
                backing: region.backing,
                off: roff,
                len,
                loc: BufLoc::Host,
                far: self.dev_far,
                heap,
            }
        }
    }

    fn check_opts(&self, opts: &MpiOpts) {
        if !self.comm.opts.is_impacc() {
            assert!(
                !opts.device && !opts.readonly && opts.queue.is_none(),
                "IMPACC directive clauses require the IMPACC runtime \
                 (the baseline model stages and synchronizes explicitly)"
            );
        }
        if opts.queue.is_some() {
            assert!(
                self.comm.opts.unified_queue,
                "async MPI requires the unified activity queue (enable RuntimeOptions::unified_queue)"
            );
        }
    }

    /// `MPI_Send` over a byte range of `b` (world communicator).
    /// With `opts.queue`, the call is enqueued (returns immediately).
    pub fn mpi_send(&self, b: &HBuf, off: u64, len: u64, dst: u32, tag: i32, opts: MpiOpts) {
        self.check_opts(&opts);
        let buf = self.resolve(b, off, len, opts.device);
        let world = self.world_ref().clone();
        match opts.queue {
            Some(q) => {
                // Enqueued non-blocking send (`#pragma acc mpi sendbuf(..)
                // async(q); MPI_Isend(..)`): the queue operation completes
                // at *issue* — like MPI_Isend itself — so two symmetric
                // tasks can both enqueue send-then-recv on one queue
                // (Figure 4(c)) without deadlocking. The send buffer must
                // not be overwritten by later operations until the message
                // is delivered, exactly as with any MPI_Isend.
                let core = self.comm.clone();
                self.queue(q).enqueue(&self.ctx, "mpi_isend", move |qctx| {
                    let _issued = core.isend_inner(qctx, buf, dst, tag, &world, opts.readonly);
                });
            }
            None => self
                .comm
                .do_send(&self.ctx, buf, dst, tag, &world, opts.readonly),
        }
    }

    /// `MPI_Recv`. With `opts.queue`, enqueued (returns `None`).
    pub fn mpi_recv(
        &self,
        b: &HBuf,
        off: u64,
        len: u64,
        src: u32,
        tag: i32,
        opts: MpiOpts,
    ) -> Option<Status> {
        self.check_opts(&opts);
        let buf = self.resolve(b, off, len, opts.device);
        let world = self.world_ref().clone();
        match opts.queue {
            Some(q) => {
                let core = self.comm.clone();
                self.queue(q).enqueue(&self.ctx, "mpi_irecv", move |qctx| {
                    core.do_recv(qctx, buf, Some(src), Some(tag), &world, opts.readonly);
                });
                None
            }
            None => {
                Some(
                    self.comm
                        .do_recv(&self.ctx, buf, Some(src), Some(tag), &world, opts.readonly),
                )
            }
        }
    }

    /// `MPI_Isend`.
    pub fn mpi_isend(
        &self,
        b: &HBuf,
        off: u64,
        len: u64,
        dst: u32,
        tag: i32,
        opts: MpiOpts,
    ) -> UReq {
        self.check_opts(&opts);
        assert!(
            opts.queue.is_none(),
            "use mpi_send with async(q) to enqueue"
        );
        let buf = self.resolve(b, off, len, opts.device);
        self.comm
            .isend_inner(&self.ctx, buf, dst, tag, self.world_ref(), opts.readonly)
    }

    /// `MPI_Irecv`.
    pub fn mpi_irecv(
        &self,
        b: &HBuf,
        off: u64,
        len: u64,
        src: u32,
        tag: i32,
        opts: MpiOpts,
    ) -> UReq {
        self.check_opts(&opts);
        assert!(
            opts.queue.is_none(),
            "use mpi_recv with async(q) to enqueue"
        );
        let buf = self.resolve(b, off, len, opts.device);
        self.comm.irecv_inner(
            &self.ctx,
            buf,
            Some(src),
            Some(tag),
            self.world_ref(),
            opts.readonly,
        )
    }

    /// `MPI_Sendrecv`: combined exchange over the unified routines,
    /// deadlock-free even against synchronous fused sends.
    #[allow(clippy::too_many_arguments)]
    pub fn mpi_sendrecv(
        &self,
        send: &HBuf,
        dst: u32,
        recv: &HBuf,
        src: u32,
        tag: i32,
        opts: MpiOpts,
    ) -> Status {
        self.check_opts(&opts);
        assert!(opts.queue.is_none(), "enqueue the send and recv separately");
        let sbuf = self.resolve(send, 0, send.len, opts.device);
        let rbuf = self.resolve(recv, 0, recv.len, opts.device);
        let world = self.world_ref().clone();
        let sreq = self
            .comm
            .isend_inner(&self.ctx, sbuf, dst, tag, &world, opts.readonly);
        let st = self
            .comm
            .do_recv(&self.ctx, rbuf, Some(src), Some(tag), &world, opts.readonly);
        sreq.wait(&self.ctx);
        st
    }

    /// `MPI_Irecv` with `MPI_ANY_SOURCE`/`MPI_ANY_TAG`. Wildcard receives
    /// go through the system-MPI path, so under the IMPACC runtime the
    /// matching sender must be on another node (node-local senders use
    /// the handler's exact-match queues).
    pub fn mpi_irecv_any(&self, b: &HBuf, off: u64, len: u64, opts: MpiOpts) -> UReq {
        self.check_opts(&opts);
        assert!(opts.queue.is_none(), "wildcard receives cannot be enqueued");
        let buf = self.resolve(b, off, len, opts.device);
        self.comm
            .irecv_inner(&self.ctx, buf, None, None, self.world_ref(), opts.readonly)
    }

    /// `MPI_Waitall`.
    pub fn mpi_waitall(&self, reqs: &[UReq]) {
        self.ctx.advance(self.comm.res.sync_overhead(), "mpi_wait");
        for r in reqs {
            r.wait(&self.ctx);
        }
    }

    /// `MPI_Barrier(MPI_COMM_WORLD)`.
    pub fn mpi_barrier(&self) {
        let world = self.world_ref().clone();
        self.barrier(&self.ctx, &world);
    }

    /// `MPI_Bcast` of a whole heap buffer. Under IMPACC with `readonly`,
    /// uses the node-leader pattern of §3.8: the root sends once per
    /// remote node; node-local redistribution goes through the handler
    /// with `readonly` attributes, so eligible receivers *alias* the
    /// buffer instead of copying.
    pub fn mpi_bcast(&self, b: &HBuf, root: u32, opts: MpiOpts) {
        self.check_opts(&opts);
        let world = self.world_ref().clone();
        let use_alias = self.comm.opts.is_impacc() && self.comm.opts.aliasing && opts.readonly;
        if !use_alias {
            let buf = self.resolve(b, 0, b.len, opts.device);
            let m = self.comm.msgbuf(&buf);
            self.bcast(&self.ctx, &m, root, &world);
            return;
        }
        let tag = self.coll.next_tag(&world);
        let me = self.comm.rank;
        let my_node = self.comm.node;
        let node_of = &self.comm.node_of;
        let root_node = node_of[root as usize];
        // One leader per participating node: the root for its own node,
        // the lowest rank elsewhere.
        let leader_of = |n: usize| -> u32 {
            if n == root_node {
                return root;
            }
            (0..world.size())
                .find(|r| node_of[*r as usize] == n)
                .expect("every node with tasks has a leader")
        };
        let mut nodes: Vec<usize> = (0..world.size()).map(|r| node_of[r as usize]).collect();
        nodes.sort_unstable();
        nodes.dedup();
        let leaders: Vec<u32> = nodes.iter().map(|n| leader_of(*n)).collect();
        let o = MpiOpts {
            device: false,
            readonly: true,
            queue: None,
        };
        if let Some(li) = leaders.iter().position(|l| *l == me) {
            // Internode stage: a binomial tree over the node leaders (the
            // root leads its own node), so the critical path is
            // logarithmic in the node count.
            let nl = leaders.len() as u32;
            let li = li as u32;
            let ri = leaders
                .iter()
                .position(|l| *l == root)
                .expect("root leads its node") as u32;
            let vr = (li + nl - ri) % nl;
            let mut mask = 1u32;
            while mask < nl {
                if vr & mask != 0 {
                    let src = leaders[((vr - mask + ri) % nl) as usize];
                    self.mpi_recv(b, 0, b.len, src, tag, MpiOpts::host());
                    break;
                }
                mask <<= 1;
            }
            mask >>= 1;
            while mask > 0 {
                if vr + mask < nl {
                    let dst = leaders[((vr + mask + ri) % nl) as usize];
                    self.mpi_send(b, 0, b.len, dst, tag, MpiOpts::host());
                }
                mask >>= 1;
            }
            // Intra-node stage: read-only redistribution through the
            // handler — eligible receivers alias instead of copying.
            for r in 0..world.size() {
                if r != me && node_of[r as usize] == my_node {
                    self.mpi_send(b, 0, b.len, r, tag, o);
                }
            }
        } else {
            self.mpi_recv(b, 0, b.len, leader_of(my_node), tag, o);
        }
    }

    /// `MPI_Comm_split`: collectively split the world communicator by
    /// `(color, key)`. Implemented as an allgather of every task's pair
    /// followed by the deterministic local grouping, so all members of a
    /// color agree on the sub-communicator (including its id).
    pub fn mpi_comm_split(&self, color: i64, key: i64) -> Comm {
        let world = self.world_ref().clone();
        let n = world.size() as usize;
        let mine = MsgBuf::host(Backing::new(16, None), 0, 16);
        mine.write_f64s(&[color as f64, key as f64]);
        let all = MsgBuf::host(Backing::new(16 * n as u64, None), 0, 16 * n as u64);
        self.allgather(&self.ctx, &mine, &all, &world);
        let vals = all.read_f64s();
        let colors: Vec<i64> = (0..n).map(|i| vals[2 * i] as i64).collect();
        let keys: Vec<i64> = (0..n).map(|i| vals[2 * i + 1] as i64).collect();
        world.split(&colors, &keys, self.comm_rank(&world))
    }

    /// `MPI_Allreduce` convenience over f64 values (scratch-buffer based).
    pub fn mpi_allreduce_f64(&self, vals: &[f64], op: ReduceOp) -> Vec<f64> {
        let world = self.world_ref().clone();
        let len = vals.len() as u64 * 8;
        let sb = MsgBuf::host(Backing::new(len, None), 0, len);
        sb.write_f64s(vals);
        let rb = MsgBuf::host(Backing::new(len, None), 0, len);
        self.allreduce(&self.ctx, &sb, &rb, op, &world);
        rb.read_f64s()
    }

    /// `MPI_Reduce` convenience over f64 values; result on `root`.
    pub fn mpi_reduce_f64(&self, vals: &[f64], op: ReduceOp, root: u32) -> Option<Vec<f64>> {
        let world = self.world_ref().clone();
        let len = vals.len() as u64 * 8;
        let sb = MsgBuf::host(Backing::new(len, None), 0, len);
        sb.write_f64s(vals);
        let rb = MsgBuf::host(Backing::new(len, None), 0, len);
        self.reduce(&self.ctx, &sb, Some(&rb), op, root, &world);
        if self.comm.rank == world.global_of(root) {
            Some(rb.read_f64s())
        } else {
            None
        }
    }
}

impl PointToPoint for TaskCtx {
    fn pt_send(&self, ctx: &Ctx, buf: &MsgBuf, dst: u32, tag: i32, comm: &Comm) {
        let rbuf = ResolvedBuf {
            backing: buf.backing.clone(),
            off: buf.off,
            len: buf.len,
            loc: buf.loc,
            far: self.dev_far,
            heap: None,
        };
        self.comm.do_send(ctx, rbuf, dst, tag, comm, false);
    }

    fn pt_recv(&self, ctx: &Ctx, buf: &MsgBuf, src: SrcSel, tag: TagSel, comm: &Comm) -> Status {
        let rbuf = ResolvedBuf {
            backing: buf.backing.clone(),
            off: buf.off,
            len: buf.len,
            loc: buf.loc,
            far: self.dev_far,
            heap: None,
        };
        self.comm.do_recv(ctx, rbuf, src, tag, comm, false)
    }

    fn pt_sendrecv(
        &self,
        ctx: &Ctx,
        sendbuf: &MsgBuf,
        dst: u32,
        recvbuf: &MsgBuf,
        src: u32,
        tag: i32,
        comm: &Comm,
    ) -> Status {
        let to_r = |buf: &MsgBuf| ResolvedBuf {
            backing: buf.backing.clone(),
            off: buf.off,
            len: buf.len,
            loc: buf.loc,
            far: self.dev_far,
            heap: None,
        };
        let sreq = self
            .comm
            .isend_inner(ctx, to_r(sendbuf), dst, tag, comm, false);
        let st = self
            .comm
            .do_recv(ctx, to_r(recvbuf), Some(src), Some(tag), comm, false);
        sreq.wait(ctx);
        st
    }

    fn comm_rank(&self, comm: &Comm) -> u32 {
        comm.rel_of(self.comm.rank).expect("task in communicator")
    }

    fn coll_seq(&self) -> &CollSeq {
        &self.coll
    }

    // The four dispatched collectives route through the engine, which
    // selects a registry algorithm (hierarchical under IMPACC when the
    // placement has multi-rank nodes) instead of the flat p2p defaults.

    fn barrier(&self, ctx: &Ctx, comm: &Comm) {
        self.engine.barrier(self, ctx, comm, CollOpts::default());
    }

    fn bcast(&self, ctx: &Ctx, buf: &MsgBuf, root: u32, comm: &Comm) {
        self.engine
            .bcast(self, ctx, buf, root, comm, CollOpts::default());
    }

    fn allreduce(&self, ctx: &Ctx, sendbuf: &MsgBuf, recvbuf: &MsgBuf, op: ReduceOp, comm: &Comm) {
        self.engine
            .allreduce(self, ctx, sendbuf, recvbuf, op, comm, CollOpts::default());
    }

    fn allgather(&self, ctx: &Ctx, sendbuf: &MsgBuf, recvbuf: &MsgBuf, comm: &Comm) {
        self.engine
            .allgather(self, ctx, sendbuf, recvbuf, comm, CollOpts::default());
    }
}
