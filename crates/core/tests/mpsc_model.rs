//! Property tests for the handler's lock-free MPSC queues under injected
//! scheduling chaos.
//!
//! The chaos subsystem injects *enqueue jitter* (a producer loses its core
//! between building a command and linking it into the queue) and *handler
//! stalls* (the single consumer stops draining for a while). These
//! properties drive the Vyukov queue with real threads whose yield points
//! are drawn from a deterministic proptest strategy, and check the two
//! invariants the runtime depends on:
//!
//! 1. **Nothing is lost** — every pushed value is popped exactly once.
//! 2. **Per-producer FIFO** — a producer's values arrive in push order
//!    (MPI's non-overtaking rule through the handler).

use std::sync::Arc;

use impacc_core::MpscQueue;
use proptest::prelude::*;

/// One producer's schedule: how many items to push and a jitter bitmask
/// deciding after which pushes the thread yields (injected enqueue jitter).
#[derive(Clone, Debug)]
struct ProducerPlan {
    items: usize,
    jitter: u64,
}

fn producer_plan() -> impl Strategy<Value = ProducerPlan> {
    (1usize..400, any::<u64>()).prop_map(|(items, jitter)| ProducerPlan { items, jitter })
}

/// Run `plans.len()` real producer threads against one consumer. The
/// consumer stalls (yields `stall_len` times) whenever the low bits of
/// `stall_mask` say so, modelling an injected handler stall. Returns the
/// popped `(producer, seq)` pairs in arrival order.
fn drive(plans: &[ProducerPlan], stall_mask: u64, stall_len: usize) -> Vec<(usize, usize)> {
    let q = Arc::new(MpscQueue::new());
    let total: usize = plans.iter().map(|p| p.items).sum();
    let mut handles = Vec::new();
    for (p, plan) in plans.iter().enumerate() {
        let q = q.clone();
        let plan = plan.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..plan.items {
                q.push((p, i));
                if plan.jitter >> (i % 64) & 1 == 1 {
                    std::thread::yield_now();
                }
            }
        }));
    }
    let mut got = Vec::with_capacity(total);
    let mut polls = 0u64;
    while got.len() < total {
        if stall_mask >> (polls % 64) & 1 == 1 {
            for _ in 0..stall_len {
                std::thread::yield_now();
            }
        }
        polls += 1;
        if let Some(pair) = q.pop() {
            got.push(pair);
        } else {
            std::hint::spin_loop();
        }
    }
    for h in handles {
        h.join().unwrap();
    }
    assert!(q.is_empty(), "drained queue reports non-empty");
    assert_eq!(q.pop(), None);
    got
}

fn check_fifo_and_complete(plans: &[ProducerPlan], got: &[(usize, usize)]) {
    let total: usize = plans.iter().map(|p| p.items).sum();
    assert_eq!(got.len(), total, "lost or duplicated items");
    let mut next = vec![0usize; plans.len()];
    for &(p, i) in got {
        assert_eq!(i, next[p], "producer {p} out of order");
        next[p] += 1;
    }
    for (p, plan) in plans.iter().enumerate() {
        assert_eq!(next[p], plan.items, "producer {p} items missing");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A single queue under jittered producers and a stalling consumer
    /// loses nothing and preserves per-producer FIFO.
    #[test]
    fn queue_survives_jitter_and_stalls(
        plans in prop::collection::vec(producer_plan(), 1..5),
        stall_mask in any::<u64>(),
        stall_len in 1usize..64,
    ) {
        let got = drive(&plans, stall_mask, stall_len);
        check_fifo_and_complete(&plans, &got);
    }

    /// The handler owns *two* queues (intra + pending) drained from one
    /// thread, exactly like `NodeHandler::run`. Interleaved drains of both
    /// must preserve each queue's per-producer FIFO independently.
    #[test]
    fn paired_queues_drain_independently(
        items_a in 1usize..300,
        items_b in 1usize..300,
        jitter in any::<u64>(),
        drain_mask in any::<u64>(),
    ) {
        let qa = Arc::new(MpscQueue::new());
        let qb = Arc::new(MpscQueue::new());
        let ha = {
            let qa = qa.clone();
            std::thread::spawn(move || {
                for i in 0..items_a {
                    qa.push(i);
                    if jitter >> (i % 64) & 1 == 1 {
                        std::thread::yield_now();
                    }
                }
            })
        };
        let hb = {
            let qb = qb.clone();
            std::thread::spawn(move || {
                for i in 0..items_b {
                    qb.push(i);
                    if jitter >> ((i + 17) % 64) & 1 == 1 {
                        std::thread::yield_now();
                    }
                }
            })
        };
        let (mut got_a, mut got_b) = (0usize, 0usize);
        let mut polls = 0u64;
        while got_a < items_a || got_b < items_b {
            // The drain mask decides which queue the "handler" polls
            // first this round, so the interleaving itself is fuzzed.
            let a_first = drain_mask >> (polls % 64) & 1 == 1;
            polls += 1;
            let order = if a_first { [0, 1] } else { [1, 0] };
            let mut progressed = false;
            for which in order {
                if which == 0 {
                    if let Some(i) = qa.pop() {
                        prop_assert_eq!(i, got_a, "queue A out of order");
                        got_a += 1;
                        progressed = true;
                    }
                } else if let Some(i) = qb.pop() {
                    prop_assert_eq!(i, got_b, "queue B out of order");
                    got_b += 1;
                    progressed = true;
                }
            }
            if !progressed {
                std::hint::spin_loop();
            }
        }
        ha.join().unwrap();
        hb.join().unwrap();
        prop_assert!(qa.is_empty() && qb.is_empty());
    }
}
