//! End-to-end tests of the IMPACC runtime semantics: message fusion, node
//! heap aliasing (all five §3.8 requirements), unified activity queues,
//! device-buffer staging paths, and the baseline model.

use impacc_core::{Launch, MpiOpts, RuntimeOptions, TaskCtx};
use impacc_machine::{presets, KernelCost};
use impacc_mpi::ReduceOp;

fn run_impacc(
    spec: impacc_machine::MachineSpec,
    app: impl Fn(&TaskCtx) + Send + Sync + 'static,
) -> impacc_core::RunSummary {
    Launch::new(spec, RuntimeOptions::impacc())
        .run(app)
        .expect("simulation completes")
}

fn run_baseline(
    spec: impacc_machine::MachineSpec,
    app: impl Fn(&TaskCtx) + Send + Sync + 'static,
) -> impacc_core::RunSummary {
    Launch::new(spec, RuntimeOptions::baseline())
        .run(app)
        .expect("simulation completes")
}

#[test]
fn intra_node_host_send_recv_is_fused() {
    let s = run_impacc(presets::test_cluster(1, 2), |tc| {
        let buf = tc.malloc_f64(64);
        if tc.rank() == 0 {
            let v: Vec<f64> = (0..64).map(|i| i as f64).collect();
            tc.host_view(&buf).write_f64s(0, &v);
            tc.mpi_send(&buf, 0, buf.len, 1, 5, MpiOpts::host());
        } else {
            let st = tc
                .mpi_recv(&buf, 0, buf.len, 0, 5, MpiOpts::host())
                .unwrap();
            assert_eq!(st.src, 0);
            assert_eq!(st.len, 512);
            assert_eq!(tc.host_view(&buf).read_f64s(0, 3), vec![0.0, 1.0, 2.0]);
        }
    });
    assert_eq!(s.report.metrics["fused_msgs"], 1);
    assert_eq!(
        s.report.metrics.get("aliased_msgs"),
        None,
        "not readonly: copy"
    );
    assert_eq!(s.report.metrics["HtoH"], 512);
}

#[test]
fn figure7_aliasing_end_to_end() {
    // Sender mallocs 100 f64, sends a 10-element slice at offset 40;
    // receiver's 10-element buffer aliases it: zero bytes copied.
    let s = run_impacc(presets::test_cluster(1, 2), |tc| {
        if tc.rank() == 0 {
            let src = tc.malloc_f64(100);
            let v: Vec<f64> = (0..100).map(|i| i as f64).collect();
            tc.host_view(&src).write_f64s(0, &v);
            tc.mpi_send(&src, 40 * 8, 80, 1, 0, MpiOpts::host().readonly());
        } else {
            let dst = tc.malloc_f64(10);
            tc.mpi_recv(&dst, 0, 80, 0, 0, MpiOpts::host().readonly());
            // The receiver observes the sender's data through its pointer.
            assert_eq!(tc.host_view(&dst).read_f64s(0, 3), vec![40.0, 41.0, 42.0]);
        }
    });
    assert_eq!(s.report.metrics["aliased_msgs"], 1);
    assert_eq!(s.report.metrics.get("HtoH"), None, "no bytes copied");
}

#[test]
fn aliasing_requires_readonly_on_both_sides() {
    for (send_ro, recv_ro) in [(true, false), (false, true), (false, false)] {
        let s = run_impacc(presets::test_cluster(1, 2), move |tc| {
            let o = |ro: bool| {
                if ro {
                    MpiOpts::host().readonly()
                } else {
                    MpiOpts::host()
                }
            };
            if tc.rank() == 0 {
                let src = tc.malloc_f64(8);
                tc.mpi_send(&src, 0, 64, 1, 0, o(send_ro));
            } else {
                let dst = tc.malloc_f64(8);
                tc.mpi_recv(&dst, 0, 64, 0, 0, o(recv_ro));
            }
        });
        assert_eq!(s.report.metrics.get("aliased_msgs"), None);
        assert_eq!(s.report.metrics["HtoH"], 64);
    }
}

#[test]
fn aliasing_requires_single_pointer_to_recv_buffer() {
    // Requirement 4: a second pointer variable into the receive buffer
    // blocks aliasing.
    let s = run_impacc(presets::test_cluster(1, 2), |tc| {
        if tc.rank() == 0 {
            let src = tc.malloc_f64(8);
            tc.mpi_send(&src, 0, 64, 1, 0, MpiOpts::host().readonly());
        } else {
            let dst = tc.malloc_f64(8);
            let extra = tc.hold_extra_pointer(&dst);
            tc.mpi_recv(&dst, 0, 64, 0, 0, MpiOpts::host().readonly());
            tc.release_extra_pointer(extra);
        }
    });
    assert_eq!(s.report.metrics.get("aliased_msgs"), None);
}

#[test]
fn aliasing_requires_full_overwrite() {
    // Requirement 5: receiving into a prefix of a larger buffer copies.
    let s = run_impacc(presets::test_cluster(1, 2), |tc| {
        if tc.rank() == 0 {
            let src = tc.malloc_f64(8);
            tc.mpi_send(&src, 0, 64, 1, 0, MpiOpts::host().readonly());
        } else {
            let dst = tc.malloc_f64(16); // twice the message size
            tc.mpi_recv(&dst, 0, 64, 0, 0, MpiOpts::host().readonly());
        }
    });
    assert_eq!(s.report.metrics.get("aliased_msgs"), None);
}

#[test]
fn aliasing_disabled_by_option() {
    let mut opts = RuntimeOptions::impacc();
    opts.aliasing = false;
    let s = Launch::new(presets::test_cluster(1, 2), opts)
        .run(|tc| {
            if tc.rank() == 0 {
                let src = tc.malloc_f64(8);
                tc.mpi_send(&src, 0, 64, 1, 0, MpiOpts::host().readonly());
            } else {
                let dst = tc.malloc_f64(8);
                tc.mpi_recv(&dst, 0, 64, 0, 0, MpiOpts::host().readonly());
            }
        })
        .unwrap();
    assert_eq!(s.report.metrics.get("aliased_msgs"), None);
}

#[test]
fn aliased_sender_free_keeps_data_alive() {
    run_impacc(presets::test_cluster(1, 2), |tc| {
        if tc.rank() == 0 {
            let src = tc.malloc_f64(4);
            tc.host_view(&src).write_f64s(0, &[7.0, 8.0, 9.0, 10.0]);
            tc.mpi_send(&src, 0, 32, 1, 0, MpiOpts::host().readonly());
            tc.free(src); // refcount drops to 1; receiver still owns it
            tc.mpi_barrier();
        } else {
            let dst = tc.malloc_f64(4);
            tc.mpi_recv(&dst, 0, 32, 0, 0, MpiOpts::host().readonly());
            tc.mpi_barrier();
            assert_eq!(
                tc.host_view(&dst).read_f64s(0, 4),
                vec![7.0, 8.0, 9.0, 10.0]
            );
            tc.free(dst);
        }
    });
}

#[test]
fn device_to_device_intra_node_uses_peer_copy_on_psg() {
    let s = run_impacc(presets::psg(), |tc| {
        let buf = tc.malloc_f64(1024);
        tc.acc_create(&buf);
        if tc.rank() == 0 {
            tc.dev_view(&buf).write_f64s(0, &[3.5; 16]);
            tc.mpi_send(&buf, 0, buf.len, 1, 0, MpiOpts::device());
        } else if tc.rank() == 1 {
            tc.mpi_recv(&buf, 0, buf.len, 0, 0, MpiOpts::device());
            assert_eq!(tc.dev_view(&buf).read_f64s(0, 2), vec![3.5, 3.5]);
        }
    });
    assert_eq!(s.report.metrics["DtoD"], 8192);
    assert_eq!(s.report.metrics.get("HtoD"), None, "no host involvement");
    assert_eq!(s.report.metrics.get("DtoH"), None);
}

#[test]
fn device_to_device_on_beacon_stages_once_through_host() {
    let s = run_impacc(presets::beacon(1), |tc| {
        let buf = tc.malloc_f64(1024);
        tc.acc_create(&buf);
        if tc.rank() == 0 {
            tc.dev_view(&buf).write_f64s(0, &[1.25; 4]);
            tc.mpi_send(&buf, 0, buf.len, 1, 0, MpiOpts::device());
        } else if tc.rank() == 1 {
            tc.mpi_recv(&buf, 0, buf.len, 0, 0, MpiOpts::device());
            assert_eq!(tc.dev_view(&buf).read_f64s(0, 2), vec![1.25, 1.25]);
        }
    });
    // No peer capability: fused staging = one DtoH + one HtoD, no HtoH.
    assert_eq!(s.report.metrics["DtoH"], 8192);
    assert_eq!(s.report.metrics["HtoD"], 8192);
    assert_eq!(s.report.metrics.get("HtoH"), None);
}

#[test]
fn internode_device_recv_goes_through_pending_queue() {
    // Beacon has no GPUDirect: internode device receives stage through
    // pre-pinned memory and the pending internode message queue.
    let s = run_impacc(presets::beacon(2), |tc| {
        let buf = tc.malloc_f64(256);
        tc.acc_create(&buf);
        if tc.rank() == 0 {
            tc.dev_view(&buf).write_f64s(0, &[2.5; 8]);
            // rank 4 is the first task of node 1
            tc.mpi_send(&buf, 0, buf.len, 4, 9, MpiOpts::device());
        } else if tc.rank() == 4 {
            let st = tc
                .mpi_recv(&buf, 0, buf.len, 0, 9, MpiOpts::device())
                .unwrap();
            assert_eq!(st.len, 2048);
            assert_eq!(tc.dev_view(&buf).read_f64s(0, 2), vec![2.5, 2.5]);
        }
    });
    assert_eq!(s.report.metrics["DtoH"], 2048, "sender staged");
    assert_eq!(
        s.report.metrics["HtoD"], 2048,
        "handler completed the device write"
    );
}

#[test]
fn internode_device_transfer_uses_gpudirect_on_titan() {
    let s = run_impacc(presets::titan(2), |tc| {
        let buf = tc.malloc_f64(256);
        tc.acc_create(&buf);
        if tc.rank() == 0 {
            tc.dev_view(&buf).write_f64s(0, &[4.5; 4]);
            tc.mpi_send(&buf, 0, buf.len, 1, 0, MpiOpts::device());
        } else {
            tc.mpi_recv(&buf, 0, buf.len, 0, 0, MpiOpts::device());
            assert_eq!(tc.dev_view(&buf).read_f64s(0, 2), vec![4.5, 4.5]);
        }
    });
    assert_eq!(s.report.metrics.get("DtoH"), None, "RDMA skips staging");
    assert_eq!(s.report.metrics.get("HtoD"), None);
}

#[test]
fn unified_activity_queue_runs_figure4c_pipeline() {
    // kernel -> isend -> irecv -> kernel all on queue 1, host never blocks
    // until the final acc_wait.
    let s = run_impacc(presets::test_cluster(1, 2), |tc| {
        let peer = 1 - tc.rank();
        let buf0 = tc.malloc_f64(512);
        let buf1 = tc.malloc_f64(512);
        tc.acc_create(&buf0);
        tc.acc_create(&buf1);
        let d0 = tc.dev_view(&buf0);
        let me = tc.rank() as f64;
        tc.acc_kernel(Some(1), KernelCost::flops(1e9), move || {
            d0.write_f64s(0, &vec![me; 512]);
        });
        tc.mpi_send(&buf0, 0, buf0.len, peer, 0, MpiOpts::device().on_queue(1));
        tc.mpi_recv(&buf1, 0, buf1.len, peer, 0, MpiOpts::device().on_queue(1));
        let host_free_at = tc.ctx().now();
        assert!(
            host_free_at.as_secs_f64() < 1e-4,
            "host must not block on the pipeline"
        );
        let d1 = tc.dev_view(&buf1);
        let expect = peer as f64;
        tc.acc_kernel(Some(1), KernelCost::flops(1e9), move || {
            assert_eq!(d1.read_f64s(0, 2), vec![expect, expect]);
        });
        tc.acc_wait(1);
    });
    assert!(s.report.metrics["fused_msgs"] >= 2);
}

#[test]
fn baseline_requires_explicit_staging_and_works() {
    // The Figure 4(a) style: copyout, blocking send/recv, copyin.
    let s = run_baseline(presets::psg(), |tc| {
        if tc.rank() >= 2 {
            return;
        }
        let peer = 1 - tc.rank();
        let buf = tc.malloc_f64(512);
        tc.acc_create(&buf);
        if tc.rank() == 0 {
            let d = tc.dev_view(&buf);
            tc.acc_kernel(None, KernelCost::flops(1e9), move || {
                d.write_f64s(0, &[6.5; 512]);
            });
            tc.acc_update_host(&buf, 0, buf.len, None);
            tc.mpi_send(&buf, 0, buf.len, peer, 0, MpiOpts::host());
        } else {
            tc.mpi_recv(&buf, 0, buf.len, peer, 0, MpiOpts::host());
            tc.acc_update_device(&buf, 0, buf.len, None);
            assert_eq!(tc.dev_view(&buf).read_f64s(0, 2), vec![6.5, 6.5]);
        }
    });
    // Baseline never fuses.
    assert_eq!(s.report.metrics.get("fused_msgs"), None);
}

#[test]
#[should_panic(expected = "IMPACC directive clauses require the IMPACC runtime")]
fn baseline_rejects_impacc_directives() {
    let _ = run_baseline(presets::test_cluster(1, 2), |tc| {
        let buf = tc.malloc_f64(8);
        tc.acc_create(&buf);
        if tc.rank() == 0 {
            tc.mpi_send(&buf, 0, buf.len, 1, 0, MpiOpts::device());
        }
    });
}

#[test]
fn collectives_work_through_unified_routines() {
    let s = run_impacc(presets::test_cluster(2, 2), |tc| {
        let r = tc.rank() as f64;
        let sums = tc.mpi_allreduce_f64(&[r, 1.0], ReduceOp::Sum);
        assert_eq!(sums, vec![6.0, 4.0]);
        let maxs = tc.mpi_reduce_f64(&[r], ReduceOp::Max, 0);
        if tc.rank() == 0 {
            assert_eq!(maxs.unwrap(), vec![3.0]);
        } else {
            assert!(maxs.is_none());
        }
        tc.mpi_barrier();
    });
    // Intra-node legs of the collectives were fused.
    assert!(s.report.metrics["fused_msgs"] > 0);
}

#[test]
fn bcast_aliases_across_node_local_tasks() {
    let s = run_impacc(presets::test_cluster(2, 4), |tc| {
        let buf = tc.malloc_f64(1024);
        if tc.rank() == 2 {
            let v: Vec<f64> = (0..1024).map(|i| i as f64 * 0.5).collect();
            tc.host_view(&buf).write_f64s(0, &v);
        }
        tc.mpi_bcast(&buf, 2, MpiOpts::host().readonly());
        assert_eq!(tc.host_view(&buf).read_f64s(2, 2), vec![1.0, 1.5]);
    });
    // 8 tasks on 2 nodes, root on node 0: 3 node-local aliases at the root
    // node + 3 at the other node (the leader's recv buffer itself came over
    // the wire) = 6 aliased deliveries, 1 internode copy.
    assert_eq!(s.report.metrics["aliased_msgs"], 6);
}

#[test]
fn present_table_round_trips_pointers() {
    run_impacc(presets::psg(), |tc| {
        if tc.rank() != 0 {
            return;
        }
        let buf = tc.malloc_f64(100);
        tc.acc_create(&buf);
        let dp = tc.acc_deviceptr(&buf);
        let hp = tc.acc_hostptr(dp);
        let (region, off) = (hp, 0u64);
        let _ = (region, off);
        // acc_hostptr(acc_deviceptr(x)) == x
        let view = tc.host_view(&buf);
        let _ = view;
        tc.acc_delete(&buf);
    });
}

#[test]
fn update_device_and_host_move_data_both_ways() {
    run_impacc(presets::beacon(1), |tc| {
        if tc.rank() != 0 {
            return;
        }
        let buf = tc.malloc_f64(32);
        tc.host_view(&buf).write_f64s(0, &[1.0; 32]);
        tc.acc_copyin(&buf);
        assert_eq!(tc.dev_view(&buf).read_f64s(0, 2), vec![1.0, 1.0]);
        tc.dev_view(&buf).write_f64s(0, &[2.0; 32]);
        tc.acc_update_host(&buf, 0, buf.len, None);
        assert_eq!(tc.host_view(&buf).read_f64s(30, 2), vec![2.0, 2.0]);
        tc.acc_delete(&buf);
    });
}

#[test]
fn partial_updates_respect_offsets() {
    run_impacc(presets::psg(), |tc| {
        if tc.rank() != 0 {
            return;
        }
        let buf = tc.malloc_f64(16);
        tc.host_view(&buf)
            .write_f64s(0, &(0..16).map(|i| i as f64).collect::<Vec<_>>());
        tc.acc_create(&buf);
        // Update only elements 4..8 on the device.
        tc.acc_update_device(&buf, 4 * 8, 4 * 8, None);
        let d = tc.dev_view(&buf);
        assert_eq!(d.read_f64s(0, 2), vec![0.0, 0.0], "untouched prefix");
        assert_eq!(d.read_f64s(4, 4), vec![4.0, 5.0, 6.0, 7.0]);
        tc.acc_delete(&buf);
    });
}

#[test]
fn cpu_fallback_node_runs_tasks() {
    let s = run_impacc(presets::mixed_demo(), |tc| {
        // 5 tasks: 2 GPU + GPU + MIC + 1 CPU (see launch::tests).
        let r = tc.rank() as f64;
        let total = tc.mpi_allreduce_f64(&[r], ReduceOp::Sum);
        assert_eq!(total, vec![10.0]);
        if tc.acc_device_kind() == impacc_machine::DeviceKind::CpuCores {
            // CPU-as-accelerator can run kernels too.
            let buf = tc.malloc_f64(8);
            tc.acc_create(&buf);
            let d = tc.dev_view(&buf);
            tc.acc_kernel(None, KernelCost::flops(1e9), move || {
                d.write_f64s(0, &[9.0; 8]);
            });
            assert_eq!(tc.dev_view(&buf).read_f64s(0, 1), vec![9.0]);
        }
    });
    assert_eq!(s.tasks.len(), 5);
}

#[test]
fn numa_pinning_speeds_up_transfers() {
    // Same single-task copy workload, pinned vs unpinned. With only the
    // first 4 PSG GPUs (all on socket 0), the launcher's default compact
    // binding strands rank 2 on socket 1 — far from its device.
    let spec = || {
        let mut s = presets::psg();
        s.nodes[0].devices.truncate(4);
        s
    };
    let work = |tc: &TaskCtx| {
        if tc.rank() != 2 {
            return;
        }
        let buf = tc.malloc_f64(1 << 20);
        tc.acc_create(&buf);
        tc.acc_update_device(&buf, 0, buf.len, None);
        tc.acc_delete(&buf);
    };
    let pinned = Launch::new(spec(), RuntimeOptions::impacc())
        .run(work)
        .unwrap();
    let mut unpinned_opts = RuntimeOptions::impacc();
    unpinned_opts.numa_pinning = false;
    let unpinned = Launch::new(spec(), unpinned_opts).run(work).unwrap();
    assert!(pinned.tasks[2].socket == 0 && !pinned.tasks[2].far);
    assert!(
        unpinned.tasks[2].far,
        "rank 2 lands on the far socket unpinned"
    );
    let ratio = unpinned.elapsed_secs() / pinned.elapsed_secs();
    assert!(
        ratio > 2.0,
        "far transfer must be much slower, ratio = {ratio}"
    );
}

#[test]
fn device_memory_capacity_respected_per_task() {
    // Two tasks sharing one node must each get their own device memory.
    run_impacc(presets::titan(1), |tc| {
        let buf = tc.malloc(5 << 30);
        tc.acc_create(&buf); // 5 GB of the K20x's 6 GB
        tc.acc_delete(&buf);
        tc.free(buf);
    });
}

#[test]
fn truncated_backing_keeps_timing_but_caps_memory() {
    let full = Launch::new(presets::psg(), RuntimeOptions::impacc())
        .run(|tc| {
            if tc.rank() >= 2 {
                return;
            }
            let buf = tc.malloc_f64(1 << 16);
            if tc.rank() == 0 {
                tc.mpi_send(&buf, 0, buf.len, 1, 0, MpiOpts::host());
            } else {
                tc.mpi_recv(&buf, 0, buf.len, 0, 0, MpiOpts::host());
            }
        })
        .unwrap();
    let capped = Launch::new(presets::psg(), RuntimeOptions::impacc())
        .phys_cap(1024)
        .run(|tc| {
            if tc.rank() >= 2 {
                return;
            }
            let buf = tc.malloc_f64(1 << 16);
            if tc.rank() == 0 {
                tc.mpi_send(&buf, 0, buf.len, 1, 0, MpiOpts::host());
            } else {
                tc.mpi_recv(&buf, 0, buf.len, 0, 0, MpiOpts::host());
            }
        })
        .unwrap();
    assert_eq!(
        full.report.end_time, capped.report.end_time,
        "physical truncation must not change virtual timing"
    );
}

#[test]
fn impacc_intra_node_beats_baseline_on_large_messages() {
    let app = |tc: &TaskCtx| {
        if tc.rank() >= 2 {
            return;
        }
        let buf = tc.malloc_f64(1 << 17); // 1 MiB
        if tc.rank() == 0 {
            tc.mpi_send(&buf, 0, buf.len, 1, 0, MpiOpts::host());
        } else {
            tc.mpi_recv(&buf, 0, buf.len, 0, 0, MpiOpts::host());
        }
    };
    let i = run_impacc(presets::psg(), app);
    let b = run_baseline(presets::psg(), app);
    let speedup = b.elapsed_secs() / i.elapsed_secs();
    assert!(
        speedup > 1.5 && speedup < 3.0,
        "one copy vs two + IPC should be ~2x, got {speedup}"
    );
}

#[test]
fn openacc_runtime_routines_behave_per_spec() {
    run_impacc(presets::mixed_demo(), |tc| {
        // acc_set_device_num is ignored: the mapping is fixed at launch.
        let before = tc.acc_get_device_num();
        tc.acc_set_device_num(before + 1);
        assert_eq!(tc.acc_get_device_num(), before);

        // Device counts reflect this task's node.
        let gpus = tc.acc_get_num_devices(impacc_machine::DeviceKind::CudaGpu);
        let mics = tc.acc_get_num_devices(impacc_machine::DeviceKind::OpenClMic);
        match tc.node() {
            0 => assert_eq!((gpus, mics), (2, 0)),
            1 => assert_eq!((gpus, mics), (1, 1)),
            2 => assert_eq!((gpus, mics), (0, 0)),
            _ => unreachable!(),
        }

        // acc_is_present tracks create/delete.
        let buf = tc.malloc_f64(16);
        assert!(!tc.acc_is_present(&buf));
        tc.acc_create(&buf);
        assert!(tc.acc_is_present(&buf));
        tc.acc_delete(&buf);
        assert!(!tc.acc_is_present(&buf));
    });
}

#[test]
fn sendrecv_ring_rotates_data() {
    let s = run_impacc(presets::test_cluster(2, 2), |tc| {
        let n = tc.size();
        let me = tc.rank();
        let right = (me + 1) % n;
        let left = (me + n - 1) % n;
        let out = tc.malloc_f64(4);
        let inn = tc.malloc_f64(4);
        tc.host_view(&out).write_f64s(0, &[me as f64; 4]);
        let st = tc.mpi_sendrecv(&out, right, &inn, left, 3, MpiOpts::host());
        assert_eq!(st.src, left);
        assert_eq!(tc.host_view(&inn).read_f64s(0, 4), vec![left as f64; 4]);
    });
    // The two intra-node halves of the ring fused through the handlers.
    assert!(s.report.metrics["fused_msgs"] >= 2);
}

#[test]
fn profile_renders_the_run() {
    let s = run_impacc(presets::test_cluster(1, 2), |tc| {
        let buf = tc.malloc_f64(1024);
        tc.acc_create(&buf);
        tc.acc_update_device(&buf, 0, buf.len, None);
        if tc.rank() == 0 {
            tc.mpi_send(&buf, 0, buf.len, 1, 0, MpiOpts::host());
        } else {
            tc.mpi_recv(&buf, 0, buf.len, 0, 0, MpiOpts::host());
        }
        tc.acc_kernel(None, KernelCost::flops(1e6), || {});
    });
    let p = s.profile();
    assert!(p.contains("elapsed:"));
    assert!(p.contains("aggregate kernel time"));
    assert!(p.contains("host-to-device"));
    assert!(p.contains("fused_msgs: 1"));
}

#[test]
fn comm_split_groups_by_node_and_reduces_within() {
    run_impacc(presets::test_cluster(2, 4), |tc| {
        // Split by node; order sub-ranks by descending world rank.
        let sub = tc.mpi_comm_split(tc.node() as i64, -(tc.rank() as i64));
        assert_eq!(sub.size(), 4);
        // Reduce within the sub-communicator through the unified routines.
        let sb = impacc_mpi::MsgBuf::host(impacc_mem::Backing::new(8, None), 0, 8);
        sb.write_f64s(&[tc.rank() as f64]);
        let rb = impacc_mpi::MsgBuf::host(impacc_mem::Backing::new(8, None), 0, 8);
        use impacc_mpi::PointToPoint;
        tc.allreduce(tc.ctx(), &sb, &rb, ReduceOp::Sum, &sub);
        let expect = if tc.node() == 0 {
            0.0 + 1.0 + 2.0 + 3.0
        } else {
            4.0 + 5.0 + 6.0 + 7.0
        };
        assert_eq!(rb.read_f64s(), vec![expect]);
        // Key ordering: highest world rank is sub-rank 0.
        let my_sub_rank = tc.comm_rank(&sub);
        let expected_rank = 3 - (tc.rank() % 4);
        assert_eq!(my_sub_rank, expected_rank);
    });
}

#[test]
fn runtime_trace_records_fusions_and_aliases() {
    let s = Launch::new(presets::test_cluster(1, 2), RuntimeOptions::impacc())
        .trace(16)
        .run(|tc| {
            let a = tc.malloc_f64(8);
            if tc.rank() == 0 {
                tc.mpi_send(&a, 0, a.len, 1, 1, MpiOpts::host());
                tc.mpi_send(&a, 0, a.len, 1, 2, MpiOpts::host().readonly());
            } else {
                tc.mpi_recv(&a, 0, a.len, 0, 1, MpiOpts::host());
                let b = tc.malloc_f64(8);
                tc.mpi_recv(&b, 0, b.len, 0, 2, MpiOpts::host().readonly());
            }
        })
        .unwrap();
    let labels: Vec<&str> = s.report.trace.iter().map(|e| e.label).collect();
    assert!(labels.contains(&"fuse"));
    assert!(labels.contains(&"alias"));
    let fuse = s.report.trace.iter().find(|e| e.label == "fuse").unwrap();
    assert!(fuse.actor.starts_with("handler"));
    assert!(fuse.detail.contains("0 -> 1"));
}

#[test]
fn acc_data_region_manages_mirrors_and_motion() {
    use impacc_core::DataClause;
    run_impacc(presets::psg(), |tc| {
        if tc.rank() != 0 {
            return;
        }
        let a = tc.malloc_f64(16);
        let c = tc.malloc_f64(16);
        tc.host_view(&a).write_f64s(0, &[2.0; 16]);
        let sum = tc.acc_data(&[DataClause::Copyin(&a), DataClause::Copyout(&c)], |tc| {
            assert!(tc.acc_is_present(&a) && tc.acc_is_present(&c));
            let av = tc.dev_view(&a);
            let cv = tc.dev_view(&c);
            tc.acc_kernel(None, KernelCost::flops(16.0), move || {
                let vals: Vec<f64> = av.read_f64s(0, 16).iter().map(|v| v * 3.0).collect();
                cv.write_f64s(0, &vals);
            });
            // Nested present() region over already-mapped data.
            tc.acc_data(&[DataClause::Present(&a)], |_| {});
            42
        });
        assert_eq!(sum, 42);
        // Mirrors gone; copyout materialized on the host.
        assert!(!tc.acc_is_present(&a) && !tc.acc_is_present(&c));
        assert_eq!(tc.host_view(&c).read_f64s(0, 2), vec![6.0, 6.0]);
    });
}

#[test]
fn launch_reports_app_panics_with_rank() {
    let err = Launch::new(presets::test_cluster(1, 2), RuntimeOptions::impacc())
        .run(|tc| {
            if tc.rank() == 1 {
                panic!("application bug on rank 1");
            }
            // rank 0 blocks forever waiting for rank 1
            let b = tc.malloc_f64(1);
            tc.mpi_recv(&b, 0, 8, 1, 0, MpiOpts::host());
        })
        .unwrap_err();
    match err {
        impacc_vtime::SimError::ActorPanic { actor, message } => {
            assert_eq!(actor, "rank1");
            assert!(message.contains("application bug"));
        }
        other => panic!("expected ActorPanic, got {other:?}"),
    }
}

#[test]
fn launch_reports_communication_deadlocks() {
    let err = Launch::new(presets::test_cluster(1, 2), RuntimeOptions::impacc())
        .run(|tc| {
            if tc.rank() == 0 {
                let b = tc.malloc_f64(1);
                // No matching sender anywhere.
                tc.mpi_recv(&b, 0, 8, 1, 77, MpiOpts::host());
            }
        })
        .unwrap_err();
    match err {
        impacc_vtime::SimError::Deadlock { detail } => {
            assert!(detail.contains("rank0"), "{detail}");
        }
        other => panic!("expected Deadlock, got {other:?}"),
    }
}

#[test]
fn wildcard_receive_works_for_internode_senders() {
    // Wildcard receives route through the system-MPI path; they are
    // supported whenever the matching sender is on another node (the
    // unified intra-node path needs an explicit source — a documented
    // limitation of the reproduction).
    run_impacc(presets::test_cluster(2, 1), |tc| {
        let b = tc.malloc_f64(4);
        if tc.rank() == 0 {
            tc.host_view(&b).write_f64s(0, &[5.0; 4]);
            tc.mpi_send(&b, 0, b.len, 1, 11, MpiOpts::host());
        } else {
            let req = tc.mpi_irecv_any(&b, 0, b.len, MpiOpts::host());
            let st = req.wait(tc.ctx()).unwrap();
            assert_eq!((st.src, st.tag), (0, 11));
            assert_eq!(tc.host_view(&b).read_f64s(0, 1), vec![5.0]);
        }
    });
}

#[test]
fn realloc_through_taskctx_unshares_aliased_buffers() {
    run_impacc(presets::test_cluster(1, 2), |tc| {
        if tc.rank() == 0 {
            let src = tc.malloc_f64(8);
            tc.host_view(&src).write_f64s(0, &[4.0; 8]);
            tc.mpi_send(&src, 0, 64, 1, 0, MpiOpts::host().readonly());
            tc.mpi_barrier();
        } else {
            let mut dst = tc.malloc_f64(8);
            tc.mpi_recv(&dst, 0, 64, 0, 0, MpiOpts::host().readonly());
            // dst aliases the sender's buffer; growing it must unshare.
            tc.realloc(&mut dst, 128);
            assert_eq!(dst.len, 128);
            let v = tc.host_view(&dst);
            assert_eq!(v.read_f64s(0, 8), vec![4.0; 8]);
            v.write_f64s(8, &[9.0; 8]);
            tc.mpi_barrier();
        }
    });
}

#[test]
fn launch_config_underutilization_shows_in_time() {
    use impacc_machine::LaunchConfig;
    let run = |cfg: LaunchConfig| {
        Launch::new(presets::test_cluster(1, 1), RuntimeOptions::impacc())
            .run(move |tc| {
                tc.acc_kernel_cfg(None, KernelCost::flops(1e10), cfg, || {});
            })
            .unwrap()
            .elapsed_secs()
    };
    let saturated = run(LaunchConfig::default());
    let half = run(LaunchConfig {
        gangs: Some(39), // 39 * 32 = 1248 threads on a 2496-lane GK210
        workers: Some(1),
        vector: Some(32),
    });
    let ratio = half / saturated;
    assert!((1.8..2.2).contains(&ratio), "ratio = {ratio}");
}
