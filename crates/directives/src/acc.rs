//! General OpenACC directive parsing — the other half of what the IMPACC
//! compiler's front end consumes.
//!
//! The paper's compiler translates `parallel`/`kernels` regions and data
//! constructs into accelerator programs and runtime calls; the `#pragma
//! acc mpi` extension (see [`crate::parser`]) rides alongside them. This
//! module parses the OpenACC 2.x directives those programs use: compute
//! constructs, structured/unstructured data constructs, `update`, `wait`
//! and loop annotations, with the clause set the evaluation applications
//! exercise.

use crate::parser::{tokenize, ParseError, Tok};

/// Which OpenACC directive a line carries.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AccKind {
    /// `#pragma acc kernels` (optionally `kernels loop`).
    Kernels,
    /// `#pragma acc parallel` (optionally `parallel loop`).
    Parallel,
    /// `#pragma acc data` (structured region).
    Data,
    /// `#pragma acc enter data`.
    EnterData,
    /// `#pragma acc exit data`.
    ExitData,
    /// `#pragma acc update`.
    Update,
    /// `#pragma acc wait`.
    Wait,
    /// `#pragma acc loop` (inside a compute construct).
    Loop,
}

/// One data clause's variable list, e.g. `copyin(a, b)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VarList {
    /// The clause name (`copy`, `copyin`, `copyout`, `create`, `present`,
    /// `delete`, `device`, `self`).
    pub clause: String,
    /// The listed variable names.
    pub vars: Vec<String>,
}

/// One `reduction(op:var, ...)` clause, e.g. `reduction(+:sum)` or
/// `reduction(max:res)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Reduction {
    /// The reduction operator: `+`, `*`, `max` or `min`.
    pub op: String,
    /// The reduced scalar variables.
    pub vars: Vec<String>,
}

/// A parsed OpenACC directive.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AccDirective {
    /// Directive kind.
    pub kind: AccKind,
    /// `loop` suffix on a compute construct (`kernels loop`).
    pub has_loop: bool,
    /// `async` clause: absent / bare / `async(q)`.
    pub asyncq: Option<Option<u32>>,
    /// `wait` clause arguments (`wait(1, 2)`), or the `wait` directive's.
    pub waits: Vec<u32>,
    /// Data clauses in source order.
    pub data: Vec<VarList>,
    /// `num_gangs(n)`.
    pub num_gangs: Option<u32>,
    /// `num_workers(n)`.
    pub num_workers: Option<u32>,
    /// `vector_length(n)`.
    pub vector_length: Option<u32>,
    /// `collapse(n)` on a loop.
    pub collapse: Option<u32>,
    /// Bare parallelism clauses present on a loop (`gang`, `worker`,
    /// `vector`, `independent`, `seq`).
    pub loop_modes: Vec<String>,
    /// `reduction(op:var, ...)` clauses in source order.
    pub reductions: Vec<Reduction>,
}

impl AccDirective {
    /// The activity queue this directive targets (bare `async` = queue 0).
    pub fn queue(&self) -> Option<u32> {
        self.asyncq.map(|q| q.unwrap_or(0))
    }

    /// Variables listed under a given data clause.
    pub fn vars_of(&self, clause: &str) -> Vec<&str> {
        self.data
            .iter()
            .filter(|v| v.clause == clause)
            .flat_map(|v| v.vars.iter().map(|s| s.as_str()))
            .collect()
    }
}

const DATA_CLAUSES: &[&str] = &[
    "copy", "copyin", "copyout", "create", "present", "delete", "device", "self", "host",
];
const LOOP_MODES: &[&str] = &["gang", "worker", "vector", "independent", "seq"];

/// Parse one `#pragma acc ...` line (any directive except `acc mpi`,
/// which [`crate::parse_directive`] owns).
pub fn parse_acc_directive(line: &str) -> Result<AccDirective, ParseError> {
    let toks = tokenize(line)?;
    let mut pos = 0usize;
    let ident = |pos: usize| -> Option<&str> {
        match toks.get(pos) {
            Some((_, Tok::Ident(w))) => Some(w.as_str()),
            _ => None,
        }
    };
    for want in ["#pragma", "acc"] {
        if ident(pos) != Some(want) {
            return Err(ParseError {
                at: toks.get(pos).map(|(a, _)| *a).unwrap_or(line.len()),
                message: format!("expected '{want}'"),
            });
        }
        pos += 1;
    }
    let (kind, consumed) = match (ident(pos), ident(pos + 1)) {
        (Some("kernels"), _) => (AccKind::Kernels, 1),
        (Some("parallel"), _) => (AccKind::Parallel, 1),
        (Some("enter"), Some("data")) => (AccKind::EnterData, 2),
        (Some("exit"), Some("data")) => (AccKind::ExitData, 2),
        (Some("data"), _) => (AccKind::Data, 1),
        (Some("update"), _) => (AccKind::Update, 1),
        (Some("wait"), _) => (AccKind::Wait, 1),
        (Some("loop"), _) => (AccKind::Loop, 1),
        (Some("mpi"), _) => {
            return Err(ParseError {
                at: toks[pos].0,
                message: "use parse_directive() for '#pragma acc mpi'".into(),
            })
        }
        (other, _) => {
            return Err(ParseError {
                at: toks.get(pos).map(|(a, _)| *a).unwrap_or(line.len()),
                message: format!("unknown OpenACC directive {other:?}"),
            })
        }
    };
    pos += consumed;

    let mut d = AccDirective {
        kind,
        has_loop: false,
        asyncq: None,
        waits: Vec::new(),
        data: Vec::new(),
        num_gangs: None,
        num_workers: None,
        vector_length: None,
        collapse: None,
        loop_modes: Vec::new(),
        reductions: Vec::new(),
    };

    // `kernels loop` / `parallel loop`.
    if matches!(kind, AccKind::Kernels | AccKind::Parallel) && ident(pos) == Some("loop") {
        d.has_loop = true;
        pos += 1;
    }

    // The `wait` *directive* takes an optional bare argument list.
    if kind == AccKind::Wait {
        if matches!(toks.get(pos), Some((_, Tok::LParen))) {
            d.waits = parse_int_list(line, &toks, &mut pos)?;
        }
        if pos < toks.len() {
            // fall through: `wait(1) async(2)` is legal
        } else {
            return Ok(d);
        }
    }

    while pos < toks.len() {
        let (at, name) = match &toks[pos] {
            (at, Tok::Ident(n)) => (*at, n.clone()),
            (at, other) => {
                return Err(ParseError {
                    at: *at,
                    message: format!("expected a clause, found {other:?}"),
                })
            }
        };
        pos += 1;
        match name.as_str() {
            "async" => {
                if matches!(toks.get(pos), Some((_, Tok::LParen))) {
                    let list = parse_int_list(line, &toks, &mut pos)?;
                    if list.len() != 1 {
                        return Err(ParseError {
                            at,
                            message: "async takes exactly one queue".into(),
                        });
                    }
                    d.asyncq = Some(Some(list[0]));
                } else {
                    d.asyncq = Some(None);
                }
            }
            "wait" => {
                d.waits = parse_int_list(line, &toks, &mut pos)?;
            }
            "num_gangs" | "num_workers" | "vector_length" | "collapse" => {
                let list = parse_int_list(line, &toks, &mut pos)?;
                if list.len() != 1 {
                    return Err(ParseError {
                        at,
                        message: format!("{name} takes exactly one integer"),
                    });
                }
                let slot = match name.as_str() {
                    "num_gangs" => &mut d.num_gangs,
                    "num_workers" => &mut d.num_workers,
                    "vector_length" => &mut d.vector_length,
                    _ => &mut d.collapse,
                };
                *slot = Some(list[0]);
            }
            "reduction" => {
                d.reductions.push(parse_reduction(line, &toks, &mut pos)?);
            }
            c if DATA_CLAUSES.contains(&c) => {
                let vars = parse_var_list(line, &toks, &mut pos)?;
                d.data.push(VarList { clause: name, vars });
            }
            m if LOOP_MODES.contains(&m) => {
                d.loop_modes.push(name);
            }
            other => {
                return Err(ParseError {
                    at,
                    message: format!("unknown clause '{other}'"),
                })
            }
        }
    }
    Ok(d)
}

fn parse_int_list(
    line: &str,
    toks: &[(usize, Tok)],
    pos: &mut usize,
) -> Result<Vec<u32>, ParseError> {
    expect(line, toks, pos, &Tok::LParen)?;
    let mut out = Vec::new();
    loop {
        match toks.get(*pos) {
            Some((_, Tok::Int(v))) => {
                out.push(*v);
                *pos += 1;
            }
            Some((at, t)) => {
                return Err(ParseError {
                    at: *at,
                    message: format!("expected an integer, found {t:?}"),
                })
            }
            None => {
                return Err(ParseError {
                    at: line.len(),
                    message: "unterminated argument list".into(),
                })
            }
        }
        match toks.get(*pos) {
            Some((_, Tok::Comma)) => *pos += 1,
            Some((_, Tok::RParen)) => {
                *pos += 1;
                return Ok(out);
            }
            _ => {
                return Err(ParseError {
                    at: line.len(),
                    message: "expected ',' or ')'".into(),
                })
            }
        }
    }
}

fn parse_reduction(
    line: &str,
    toks: &[(usize, Tok)],
    pos: &mut usize,
) -> Result<Reduction, ParseError> {
    expect(line, toks, pos, &Tok::LParen)?;
    let op = match toks.get(*pos) {
        Some((_, Tok::Sym(c))) if matches!(c, '+' | '*') => c.to_string(),
        Some((_, Tok::Ident(w))) if w == "max" || w == "min" => w.clone(),
        Some((at, t)) => {
            return Err(ParseError {
                at: *at,
                message: format!("expected a reduction operator (+, *, max, min), found {t:?}"),
            })
        }
        None => {
            return Err(ParseError {
                at: line.len(),
                message: "unterminated reduction clause".into(),
            })
        }
    };
    *pos += 1;
    expect(line, toks, pos, &Tok::Sym(':'))?;
    let mut vars = Vec::new();
    loop {
        match toks.get(*pos) {
            Some((_, Tok::Ident(v))) => {
                vars.push(v.clone());
                *pos += 1;
            }
            Some((at, t)) => {
                return Err(ParseError {
                    at: *at,
                    message: format!("expected a reduction variable, found {t:?}"),
                })
            }
            None => {
                return Err(ParseError {
                    at: line.len(),
                    message: "unterminated reduction clause".into(),
                })
            }
        }
        match toks.get(*pos) {
            Some((_, Tok::Comma)) => *pos += 1,
            Some((_, Tok::RParen)) => {
                *pos += 1;
                return Ok(Reduction { op, vars });
            }
            _ => {
                return Err(ParseError {
                    at: line.len(),
                    message: "expected ',' or ')'".into(),
                })
            }
        }
    }
}

fn parse_var_list(
    line: &str,
    toks: &[(usize, Tok)],
    pos: &mut usize,
) -> Result<Vec<String>, ParseError> {
    expect(line, toks, pos, &Tok::LParen)?;
    let mut out = Vec::new();
    loop {
        match toks.get(*pos) {
            Some((_, Tok::Ident(v))) => {
                out.push(v.clone());
                *pos += 1;
            }
            Some((at, t)) => {
                return Err(ParseError {
                    at: *at,
                    message: format!("expected a variable name, found {t:?}"),
                })
            }
            None => {
                return Err(ParseError {
                    at: line.len(),
                    message: "unterminated variable list".into(),
                })
            }
        }
        match toks.get(*pos) {
            Some((_, Tok::Comma)) => *pos += 1,
            Some((_, Tok::RParen)) => {
                *pos += 1;
                return Ok(out);
            }
            _ => {
                return Err(ParseError {
                    at: line.len(),
                    message: "expected ',' or ')'".into(),
                })
            }
        }
    }
}

fn expect(
    line: &str,
    toks: &[(usize, Tok)],
    pos: &mut usize,
    want: &Tok,
) -> Result<(), ParseError> {
    match toks.get(*pos) {
        Some((_, t)) if t == want => {
            *pos += 1;
            Ok(())
        }
        Some((at, t)) => Err(ParseError {
            at: *at,
            message: format!("expected {want:?}, found {t:?}"),
        }),
        None => Err(ParseError {
            at: line.len(),
            message: format!("expected {want:?}, found end of line"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_papers_kernels_lines() {
        // Figure 4: "#pragma acc kernels loop copyout(buf0) async(1)"
        let d = parse_acc_directive("#pragma acc kernels loop copyout(buf0) async(1)").unwrap();
        assert_eq!(d.kind, AccKind::Kernels);
        assert!(d.has_loop);
        assert_eq!(d.vars_of("copyout"), vec!["buf0"]);
        assert_eq!(d.queue(), Some(1));

        let d = parse_acc_directive("#pragma acc kernels loop copyin(buf1)").unwrap();
        assert_eq!(d.vars_of("copyin"), vec!["buf1"]);
        assert_eq!(d.queue(), None);
    }

    #[test]
    fn parses_data_constructs() {
        let d =
            parse_acc_directive("#pragma acc data copyin(a, b) create(c) present(d) copyout(r)")
                .unwrap();
        assert_eq!(d.kind, AccKind::Data);
        assert_eq!(d.vars_of("copyin"), vec!["a", "b"]);
        assert_eq!(d.vars_of("create"), vec!["c"]);
        assert_eq!(d.vars_of("present"), vec!["d"]);
        assert_eq!(d.vars_of("copyout"), vec!["r"]);

        let d = parse_acc_directive("#pragma acc enter data create(u) async(2)").unwrap();
        assert_eq!(d.kind, AccKind::EnterData);
        assert_eq!(d.queue(), Some(2));
        let d = parse_acc_directive("#pragma acc exit data delete(u)").unwrap();
        assert_eq!(d.kind, AccKind::ExitData);
    }

    #[test]
    fn parses_update_and_wait() {
        let d = parse_acc_directive("#pragma acc update host(u) device(v) async(1)").unwrap();
        assert_eq!(d.kind, AccKind::Update);
        assert_eq!(d.vars_of("host"), vec!["u"]);
        assert_eq!(d.vars_of("device"), vec!["v"]);

        let d = parse_acc_directive("#pragma acc wait(1, 2)").unwrap();
        assert_eq!(d.kind, AccKind::Wait);
        assert_eq!(d.waits, vec![1, 2]);

        let d = parse_acc_directive("#pragma acc wait").unwrap();
        assert!(d.waits.is_empty());
    }

    #[test]
    fn parses_parallel_tuning_clauses() {
        let d = parse_acc_directive(
            "#pragma acc parallel loop gang vector num_gangs(128) vector_length(256) collapse(2)",
        )
        .unwrap();
        assert_eq!(d.kind, AccKind::Parallel);
        assert!(d.has_loop);
        assert_eq!(d.num_gangs, Some(128));
        assert_eq!(d.vector_length, Some(256));
        assert_eq!(d.collapse, Some(2));
        assert_eq!(d.loop_modes, vec!["gang", "vector"]);
    }

    #[test]
    fn parses_reduction_clauses() {
        // The testmpi.cpp pattern: "#pragma acc parallel loop reduction(+:sum)".
        let d =
            parse_acc_directive("#pragma acc parallel loop reduction(+:sum) copyin(a, b)").unwrap();
        assert_eq!(
            d.reductions,
            vec![Reduction {
                op: "+".into(),
                vars: vec!["sum".into()]
            }]
        );
        assert_eq!(d.vars_of("copyin"), vec!["a", "b"]);

        let d = parse_acc_directive("#pragma acc parallel loop reduction(max:res, err)").unwrap();
        assert_eq!(d.reductions[0].op, "max");
        assert_eq!(d.reductions[0].vars, vec!["res", "err"]);

        let d =
            parse_acc_directive("#pragma acc loop reduction(*:prod) reduction(min:lo)").unwrap();
        assert_eq!(d.reductions.len(), 2);
        assert_eq!(d.reductions[1].op, "min");
    }

    #[test]
    fn rejects_malformed_acc_directives() {
        for (text, needle) in [
            ("#pragma acc mpi sendbuf(device)", "use parse_directive"),
            (
                "#pragma acc parallel loop reduction(^:x)",
                "unexpected character",
            ),
            (
                "#pragma acc parallel loop reduction(sum)",
                "expected a reduction operator",
            ),
            (
                "#pragma acc parallel loop reduction(+:)",
                "expected a reduction variable",
            ),
            (
                "#pragma acc parallel loop reduction(+:x",
                "expected ',' or ')'",
            ),
            ("#pragma acc frobnicate", "unknown OpenACC directive"),
            ("#pragma acc kernels quux(a)", "unknown clause"),
            ("#pragma acc kernels copyin()", "expected a variable name"),
            ("#pragma acc kernels async(1, 2)", "exactly one queue"),
            ("#pragma acc update host(u", "expected ',' or ')'"),
            ("#pragma acc parallel num_gangs()", "expected an integer"),
        ] {
            let err = parse_acc_directive(text).unwrap_err();
            assert!(err.message.contains(needle), "{text}: {}", err.message);
        }
    }

    #[test]
    fn wait_directive_with_async_continuation() {
        let d = parse_acc_directive("#pragma acc wait(3) async(4)").unwrap();
        assert_eq!(d.waits, vec![3]);
        assert_eq!(d.queue(), Some(4));
    }
}
