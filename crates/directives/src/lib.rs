//! # impacc-directives — the `#pragma acc mpi` directive extension
//!
//! The IMPACC compiler is a source-to-source translator; the part of it
//! that is *specified* in the paper (§3.5) is the new OpenACC directive
//! extension:
//!
//! ```text
//! #pragma acc mpi clause-list new-line
//! clause := sendbuf( [device] [,] [readonly] )
//!         | recvbuf( [device] [,] [readonly] )
//!         | async [ ( int-expr ) ]
//! ```
//!
//! This crate implements that grammar: a tokenizer, a parser producing a
//! typed [`Directive`], conversion to the runtime's
//! [`MpiOpts`](impacc_core::MpiOpts), and a small source scanner that
//! finds IMPACC directives in C-like source text and checks that each is
//! followed by an MPI call (reporting which call and whether the clauses
//! are consistent with it — e.g. `sendbuf` on an `MPI_Irecv` is rejected).

#![warn(missing_docs)]

pub mod acc;
pub mod parser;
pub mod scan;
pub mod translate;

pub use acc::{parse_acc_directive, AccDirective, AccKind, Reduction, VarList};
pub use parser::{parse_directive, BufClause, Directive, ParseError};
pub use scan::{scan_source, MpiCallKind, ScanIssue, ScannedDirective};
pub use translate::{translate, Lowering, RuntimeCall};
