//! Tokenizer and parser for the IMPACC directive clause grammar.

use std::fmt;

use impacc_core::MpiOpts;

/// A parsed `sendbuf(...)` / `recvbuf(...)` clause.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct BufClause {
    /// `device` attribute present.
    pub device: bool,
    /// `readonly` attribute present.
    pub readonly: bool,
}

/// A fully parsed `#pragma acc mpi` directive.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Directive {
    /// `sendbuf(...)`, if present.
    pub sendbuf: Option<BufClause>,
    /// `recvbuf(...)`, if present.
    pub recvbuf: Option<BufClause>,
    /// `async` clause: `None` = absent; `Some(None)` = bare `async`
    /// (default queue); `Some(Some(q))` = `async(q)`.
    pub asyncq: Option<Option<u32>>,
}

impl Directive {
    /// The runtime options this directive selects for a send-side call.
    /// Bare `async` maps to queue 0 (the OpenACC default queue).
    pub fn send_opts(&self) -> MpiOpts {
        let c = self.sendbuf.unwrap_or_default();
        MpiOpts {
            device: c.device,
            readonly: c.readonly,
            queue: self.asyncq.map(|q| q.unwrap_or(0)),
        }
    }

    /// The runtime options for a receive-side call.
    pub fn recv_opts(&self) -> MpiOpts {
        let c = self.recvbuf.unwrap_or_default();
        MpiOpts {
            device: c.device,
            readonly: c.readonly,
            queue: self.asyncq.map(|q| q.unwrap_or(0)),
        }
    }

    /// Render back to canonical directive text.
    pub fn render(&self) -> String {
        let mut out = String::from("#pragma acc mpi");
        let buf = |name: &str, c: &BufClause| {
            let mut attrs = Vec::new();
            if c.device {
                attrs.push("device");
            }
            if c.readonly {
                attrs.push("readonly");
            }
            format!(" {}({})", name, attrs.join(", "))
        };
        if let Some(c) = &self.sendbuf {
            out.push_str(&buf("sendbuf", c));
        }
        if let Some(c) = &self.recvbuf {
            out.push_str(&buf("recvbuf", c));
        }
        match self.asyncq {
            None => {}
            Some(None) => out.push_str(" async"),
            Some(Some(q)) => out.push_str(&format!(" async({q})")),
        }
        out
    }
}

/// A parse failure, with the byte offset where it was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the directive text.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "directive parse error at byte {}: {}",
            self.at, self.message
        )
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Tok {
    Ident(String),
    Int(u32),
    LParen,
    RParen,
    Comma,
    /// An operator/punctuation symbol (`+ - * / :`), as used by
    /// `reduction(+:x)` clauses.
    Sym(char),
}

pub(crate) fn tokenize(s: &str) -> Result<Vec<(usize, Tok)>, ParseError> {
    let mut toks = Vec::new();
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_whitespace() {
            i += 1;
        } else if c == '(' {
            toks.push((i, Tok::LParen));
            i += 1;
        } else if c == ')' {
            toks.push((i, Tok::RParen));
            i += 1;
        } else if c == ',' {
            toks.push((i, Tok::Comma));
            i += 1;
        } else if matches!(c, '+' | '-' | '*' | '/' | ':') {
            toks.push((i, Tok::Sym(c)));
            i += 1;
        } else if c.is_ascii_alphabetic() || c == '_' || c == '#' {
            let start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric()
                    || bytes[i] == b'_'
                    || bytes[i] == b'#')
            {
                i += 1;
            }
            toks.push((start, Tok::Ident(s[start..i].to_string())));
        } else if c.is_ascii_digit() {
            let start = i;
            while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                i += 1;
            }
            let v: u32 = s[start..i].parse().map_err(|_| ParseError {
                at: start,
                message: format!("integer literal out of range: {}", &s[start..i]),
            })?;
            toks.push((start, Tok::Int(v)));
        } else {
            return Err(ParseError {
                at: i,
                message: format!("unexpected character '{c}'"),
            });
        }
    }
    Ok(toks)
}

/// Parse one directive line, e.g.
/// `#pragma acc mpi sendbuf(device, readonly) async(1)`.
pub fn parse_directive(line: &str) -> Result<Directive, ParseError> {
    let toks = tokenize(line)?;
    let mut pos = 0usize;
    let expect_ident = |pos: &mut usize, want: &str| -> Result<(), ParseError> {
        match toks.get(*pos) {
            Some((_, Tok::Ident(w))) if w == want => {
                *pos += 1;
                Ok(())
            }
            Some((at, t)) => Err(ParseError {
                at: *at,
                message: format!("expected '{want}', found {t:?}"),
            }),
            None => Err(ParseError {
                at: line.len(),
                message: format!("expected '{want}', found end of line"),
            }),
        }
    };
    expect_ident(&mut pos, "#pragma")?;
    expect_ident(&mut pos, "acc")?;
    expect_ident(&mut pos, "mpi")?;

    let mut d = Directive::default();
    while pos < toks.len() {
        let (at, tok) = &toks[pos];
        let name = match tok {
            Tok::Ident(n) => n.clone(),
            other => {
                return Err(ParseError {
                    at: *at,
                    message: format!("expected a clause, found {other:?}"),
                })
            }
        };
        pos += 1;
        match name.as_str() {
            "sendbuf" | "recvbuf" => {
                let clause = parse_buf_clause(line, &toks, &mut pos)?;
                let slot = if name == "sendbuf" {
                    &mut d.sendbuf
                } else {
                    &mut d.recvbuf
                };
                if slot.is_some() {
                    return Err(ParseError {
                        at: *at,
                        message: format!("duplicate '{name}' clause"),
                    });
                }
                *slot = Some(clause);
            }
            "async" => {
                if d.asyncq.is_some() {
                    return Err(ParseError {
                        at: *at,
                        message: "duplicate 'async' clause".into(),
                    });
                }
                // Optional (int-expr).
                if matches!(toks.get(pos), Some((_, Tok::LParen))) {
                    pos += 1;
                    let q = match toks.get(pos) {
                        Some((_, Tok::Int(v))) => *v,
                        Some((at, t)) => {
                            return Err(ParseError {
                                at: *at,
                                message: format!(
                                    "async expects a non-negative integer, found {t:?}"
                                ),
                            })
                        }
                        None => {
                            return Err(ParseError {
                                at: line.len(),
                                message: "unterminated async clause".into(),
                            })
                        }
                    };
                    pos += 1;
                    match toks.get(pos) {
                        Some((_, Tok::RParen)) => pos += 1,
                        _ => {
                            return Err(ParseError {
                                at: line.len(),
                                message: "expected ')' after async queue".into(),
                            })
                        }
                    }
                    d.asyncq = Some(Some(q));
                } else {
                    d.asyncq = Some(None);
                }
            }
            other => {
                return Err(ParseError {
                    at: *at,
                    message: format!(
                        "unknown clause '{other}' (expected sendbuf, recvbuf or async)"
                    ),
                })
            }
        }
    }
    if d.sendbuf.is_none() && d.recvbuf.is_none() && d.asyncq.is_none() {
        return Err(ParseError {
            at: line.len(),
            message: "directive has no clauses".into(),
        });
    }
    Ok(d)
}

fn parse_buf_clause(
    line: &str,
    toks: &[(usize, Tok)],
    pos: &mut usize,
) -> Result<BufClause, ParseError> {
    match toks.get(*pos) {
        Some((_, Tok::LParen)) => *pos += 1,
        _ => {
            return Err(ParseError {
                at: line.len(),
                message: "expected '(' after buffer clause".into(),
            })
        }
    }
    let mut clause = BufClause::default();
    let mut first = true;
    loop {
        match toks.get(*pos) {
            Some((_, Tok::RParen)) => {
                *pos += 1;
                return Ok(clause);
            }
            Some((_, Tok::Comma)) if !first => {
                *pos += 1;
            }
            Some((at, Tok::Comma)) => {
                return Err(ParseError {
                    at: *at,
                    message: "leading comma in buffer clause".into(),
                })
            }
            _ => {}
        }
        match toks.get(*pos) {
            Some((at, Tok::Ident(a))) => {
                match a.as_str() {
                    "device" => {
                        if clause.device {
                            return Err(ParseError {
                                at: *at,
                                message: "duplicate 'device' attribute".into(),
                            });
                        }
                        clause.device = true;
                    }
                    "readonly" => {
                        if clause.readonly {
                            return Err(ParseError {
                                at: *at,
                                message: "duplicate 'readonly' attribute".into(),
                            });
                        }
                        clause.readonly = true;
                    }
                    other => {
                        return Err(ParseError {
                            at: *at,
                            message: format!(
                                "unknown attribute '{other}' (expected device or readonly)"
                            ),
                        })
                    }
                }
                *pos += 1;
                first = false;
            }
            Some((_, Tok::RParen)) => continue,
            Some((at, t)) => {
                return Err(ParseError {
                    at: *at,
                    message: format!("unexpected {t:?} in buffer clause"),
                })
            }
            None => {
                return Err(ParseError {
                    at: line.len(),
                    message: "unterminated buffer clause".into(),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_papers_examples() {
        // §3.5: "#pragma acc mpi sendbuf(device)"
        let d = parse_directive("#pragma acc mpi sendbuf(device)").unwrap();
        assert_eq!(
            d.sendbuf,
            Some(BufClause {
                device: true,
                readonly: false
            })
        );
        assert!(d.recvbuf.is_none() && d.asyncq.is_none());

        // Figure 4(c): "#pragma acc mpi sendbuf(device) async(1)"
        let d = parse_directive("#pragma acc mpi sendbuf(device) async(1)").unwrap();
        assert_eq!(d.asyncq, Some(Some(1)));
        let opts = d.send_opts();
        assert!(opts.device && !opts.readonly);
        assert_eq!(opts.queue, Some(1));

        // Figure 7 abbreviations expand to these:
        let d = parse_directive("#pragma acc mpi sendbuf(readonly)").unwrap();
        assert_eq!(
            d.send_opts(),
            MpiOpts {
                device: false,
                readonly: true,
                queue: None
            }
        );
        let d = parse_directive("#pragma acc mpi recvbuf(readonly)").unwrap();
        assert!(d.recv_opts().readonly);
    }

    #[test]
    fn both_attributes_with_and_without_comma() {
        for text in [
            "#pragma acc mpi sendbuf(device, readonly)",
            "#pragma acc mpi sendbuf(device readonly)",
            "#pragma acc mpi sendbuf( device , readonly )",
        ] {
            let d = parse_directive(text).unwrap();
            assert_eq!(
                d.sendbuf,
                Some(BufClause {
                    device: true,
                    readonly: true
                }),
                "{text}"
            );
        }
    }

    #[test]
    fn bare_async_uses_default_queue() {
        let d = parse_directive("#pragma acc mpi recvbuf(device) async").unwrap();
        assert_eq!(d.asyncq, Some(None));
        assert_eq!(d.recv_opts().queue, Some(0));
    }

    #[test]
    fn empty_buffer_clause_is_legal() {
        // Grammar: both attributes are optional.
        let d = parse_directive("#pragma acc mpi sendbuf()").unwrap();
        assert_eq!(d.sendbuf, Some(BufClause::default()));
    }

    #[test]
    fn send_and_recv_in_one_directive() {
        // e.g. annotating an MPI_Sendrecv.
        let d =
            parse_directive("#pragma acc mpi sendbuf(device) recvbuf(device, readonly) async(3)")
                .unwrap();
        assert!(d.send_opts().device);
        assert!(d.recv_opts().device && d.recv_opts().readonly);
        assert_eq!(d.send_opts().queue, Some(3));
    }

    #[test]
    fn rejects_malformed_directives() {
        for (text, needle) in [
            ("#pragma acc mpi", "no clauses"),
            ("#pragma acc mpi sendbuf", "expected '('"),
            ("#pragma acc mpi sendbuf(device", "unterminated"),
            ("#pragma acc mpi sendbuf(writable)", "unknown attribute"),
            ("#pragma acc mpi foo(device)", "unknown clause"),
            ("#pragma acc mpi async(x)", "non-negative integer"),
            ("#pragma acc mpi async(1", "expected ')'"),
            (
                "#pragma acc mpi sendbuf(device) sendbuf(readonly)",
                "duplicate 'sendbuf'",
            ),
            ("#pragma acc mpi async async(1)", "duplicate 'async'"),
            (
                "#pragma acc mpi sendbuf(device,device)",
                "duplicate 'device'",
            ),
            ("#pragma acc mpi sendbuf(,device)", "leading comma"),
            ("#pragma omp parallel", "expected 'acc'"),
            ("#pragma acc mpi sendbuf(device) $", "unexpected character"),
        ] {
            let err = parse_directive(text).unwrap_err();
            assert!(
                err.message.contains(needle),
                "{text}: expected '{needle}' in '{}'",
                err.message
            );
        }
    }

    #[test]
    fn render_round_trips() {
        for text in [
            "#pragma acc mpi sendbuf(device)",
            "#pragma acc mpi sendbuf(device, readonly) async(2)",
            "#pragma acc mpi recvbuf(readonly) async",
            "#pragma acc mpi sendbuf(device) recvbuf(device) async(7)",
        ] {
            let d = parse_directive(text).unwrap();
            let d2 = parse_directive(&d.render()).unwrap();
            assert_eq!(d, d2, "{text}");
        }
    }
}
