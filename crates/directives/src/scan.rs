//! Source scanner: find IMPACC directives in C-like source text and check
//! them against the MPI call each one annotates.
//!
//! Per §3.5 the directive applies to "the immediately following MPI call".
//! The scanner enforces that, classifies the call, and flags clause/call
//! mismatches a real compiler would reject (this is the front-end
//! validation half of the source-to-source translator; code generation is
//! out of the paper's scope and ours).

use crate::parser::{parse_directive, Directive, ParseError};

/// The kind of MPI call an IMPACC directive annotates.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum MpiCallKind {
    /// `MPI_Send` / `MPI_Isend`.
    Send {
        /// Non-blocking variant.
        nonblocking: bool,
    },
    /// `MPI_Recv` / `MPI_Irecv`.
    Recv {
        /// Non-blocking variant.
        nonblocking: bool,
    },
    /// `MPI_Sendrecv`.
    SendRecv,
    /// `MPI_Bcast` (aliasing-eligible collective, §3.8).
    Bcast,
    /// Another `MPI_*` routine.
    Other,
}

/// One directive found in the source.
#[derive(Clone, Debug)]
pub struct ScannedDirective {
    /// 1-based line number of the `#pragma`.
    pub line: usize,
    /// The parsed directive.
    pub directive: Directive,
    /// The annotated call, if one follows.
    pub call: Option<MpiCallKind>,
    /// The identifier of the annotated call (e.g. `MPI_Isend`).
    pub call_name: Option<String>,
}

/// A problem found while scanning.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScanIssue {
    /// The directive text failed to parse.
    Parse {
        /// 1-based line of the directive.
        line: usize,
        /// The underlying error.
        error: ParseError,
    },
    /// The directive is not followed by an MPI call.
    NoFollowingCall {
        /// 1-based line of the directive.
        line: usize,
    },
    /// Clause/call mismatch (e.g. `sendbuf` on a receive).
    ClauseMismatch {
        /// 1-based line of the directive.
        line: usize,
        /// Explanation.
        message: String,
    },
    /// `async` on a blocking call: only `MPI_Isend`/`MPI_Irecv` may be
    /// queued (§3.5: "the following *non-blocking* MPI call ... will be
    /// queued").
    AsyncOnBlockingCall {
        /// 1-based line of the directive.
        line: usize,
        /// The blocking call's name.
        call: String,
    },
}

/// Classify the MPI call at the start of a statement (crate-internal
/// helper shared with the translator).
pub(crate) fn classify_call_pub(stmt: &str) -> Option<(MpiCallKind, String)> {
    classify_call(stmt)
}

fn classify_call(stmt: &str) -> Option<(MpiCallKind, String)> {
    let s = stmt.trim_start();
    let name_end = s
        .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .unwrap_or(s.len());
    let name = &s[..name_end];
    if !name.starts_with("MPI_") {
        return None;
    }
    let kind = match name {
        "MPI_Send" | "MPI_Ssend" | "MPI_Rsend" | "MPI_Bsend" => {
            MpiCallKind::Send { nonblocking: false }
        }
        "MPI_Isend" => MpiCallKind::Send { nonblocking: true },
        "MPI_Recv" => MpiCallKind::Recv { nonblocking: false },
        "MPI_Irecv" => MpiCallKind::Recv { nonblocking: true },
        "MPI_Sendrecv" => MpiCallKind::SendRecv,
        "MPI_Bcast" => MpiCallKind::Bcast,
        _ => MpiCallKind::Other,
    };
    Some((kind, name.to_string()))
}

/// Scan `source` for IMPACC directives. Returns the directives found and
/// any issues a compiler front-end would report.
pub fn scan_source(source: &str) -> (Vec<ScannedDirective>, Vec<ScanIssue>) {
    let mut found = Vec::new();
    let mut issues = Vec::new();
    let lines: Vec<&str> = source.lines().collect();
    for (i, raw) in lines.iter().enumerate() {
        let line_no = i + 1;
        let trimmed = raw.trim_start();
        if !trimmed.starts_with("#pragma") {
            continue;
        }
        // Only `#pragma acc mpi ...` is ours.
        let mut words = trimmed.split_whitespace();
        let (_, second, third) = (words.next(), words.next(), words.next());
        if second != Some("acc") || third != Some("mpi") {
            continue;
        }
        let directive = match parse_directive(trimmed) {
            Ok(d) => d,
            Err(error) => {
                issues.push(ScanIssue::Parse {
                    line: line_no,
                    error,
                });
                continue;
            }
        };
        // The immediately following non-empty, non-comment line must be an
        // MPI call.
        let call = lines[i + 1..]
            .iter()
            .map(|l| l.trim())
            .find(|l| !l.is_empty() && !l.starts_with("//") && !l.starts_with("/*"))
            .and_then(classify_call);
        match &call {
            None => issues.push(ScanIssue::NoFollowingCall { line: line_no }),
            Some((kind, name)) => match kind {
                MpiCallKind::Send { nonblocking } => {
                    if directive.recvbuf.is_some() {
                        issues.push(ScanIssue::ClauseMismatch {
                            line: line_no,
                            message: format!("recvbuf clause on send call {name}"),
                        });
                    }
                    if directive.asyncq.is_some() && !nonblocking {
                        issues.push(ScanIssue::AsyncOnBlockingCall {
                            line: line_no,
                            call: name.clone(),
                        });
                    }
                }
                MpiCallKind::Recv { nonblocking } => {
                    if directive.sendbuf.is_some() {
                        issues.push(ScanIssue::ClauseMismatch {
                            line: line_no,
                            message: format!("sendbuf clause on receive call {name}"),
                        });
                    }
                    if directive.asyncq.is_some() && !nonblocking {
                        issues.push(ScanIssue::AsyncOnBlockingCall {
                            line: line_no,
                            call: name.clone(),
                        });
                    }
                }
                MpiCallKind::SendRecv | MpiCallKind::Bcast | MpiCallKind::Other => {}
            },
        }
        found.push(ScannedDirective {
            line: line_no,
            directive,
            call: call.as_ref().map(|(k, _)| *k),
            call_name: call.map(|(_, n)| n),
        });
    }
    (found, issues)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The exact Figure 4(c) listing from the paper.
    const FIGURE_4C: &str = r#"
/* (c) IMPACC Unified Activity Queue */
#pragma acc kernels loop async(1)
for (i = 0; i < n; i++) { buf0[i] = 1; }
#pragma acc mpi sendbuf(device) async(1)
MPI_Isend(buf0, another_task, &req[0]);
#pragma acc mpi recvbuf(device) async(1)
MPI_Irecv(buf1, another_task, &req[1]);
#pragma acc kernels loop async(1)
for (i = 0; i < n; i++) { x = buf1[i]; }
"#;

    #[test]
    fn scans_figure_4c_cleanly() {
        let (found, issues) = scan_source(FIGURE_4C);
        assert!(issues.is_empty(), "{issues:?}");
        assert_eq!(found.len(), 2, "acc kernels pragmas are not ours");
        assert_eq!(found[0].call, Some(MpiCallKind::Send { nonblocking: true }));
        assert_eq!(found[0].call_name.as_deref(), Some("MPI_Isend"));
        assert_eq!(found[0].directive.send_opts().queue, Some(1));
        assert_eq!(found[1].call, Some(MpiCallKind::Recv { nonblocking: true }));
        assert!(found[1].directive.recv_opts().device);
    }

    #[test]
    fn figure7_readonly_pair() {
        let src = r#"
#pragma acc mpi sendbuf(readonly)
MPI_Send(src + off, 10, MPI_DOUBLE, 1, 0, MPI_COMM_WORLD);
#pragma acc mpi recvbuf(readonly)
MPI_Recv(dst, 10, MPI_DOUBLE, 0, 0, MPI_COMM_WORLD, &st);
"#;
        let (found, issues) = scan_source(src);
        assert!(issues.is_empty(), "{issues:?}");
        assert!(found[0].directive.send_opts().readonly);
        assert!(found[1].directive.recv_opts().readonly);
    }

    #[test]
    fn flags_missing_call() {
        let (found, issues) = scan_source("#pragma acc mpi sendbuf(device)\nint x = 3;\n");
        assert_eq!(found.len(), 1);
        assert_eq!(issues, vec![ScanIssue::NoFollowingCall { line: 1 }]);
    }

    #[test]
    fn flags_clause_call_mismatch() {
        let src = "#pragma acc mpi recvbuf(device)\nMPI_Isend(buf, 1, MPI_INT, 0, 0, c, &r);\n";
        let (_, issues) = scan_source(src);
        assert!(matches!(
            issues[0],
            ScanIssue::ClauseMismatch { line: 1, .. }
        ));
    }

    #[test]
    fn flags_async_on_blocking_call() {
        let src = "#pragma acc mpi sendbuf(device) async(1)\nMPI_Send(buf, 1, MPI_INT, 0, 0, c);\n";
        let (_, issues) = scan_source(src);
        assert_eq!(
            issues,
            vec![ScanIssue::AsyncOnBlockingCall {
                line: 1,
                call: "MPI_Send".into()
            }]
        );
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let src = "int a;\n  #pragma acc mpi sendbuf(writable)\nMPI_Send(a,1,MPI_INT,0,0,c);\n";
        let (found, issues) = scan_source(src);
        assert!(found.is_empty());
        assert!(matches!(issues[0], ScanIssue::Parse { line: 2, .. }));
    }

    #[test]
    fn comments_and_blank_lines_are_skipped_to_the_call() {
        let src = "#pragma acc mpi sendbuf(device)\n\n// comment\nMPI_Isend(b, 1, MPI_INT, 0, 0, c, &r);\n";
        let (found, issues) = scan_source(src);
        assert!(issues.is_empty());
        assert_eq!(found[0].call, Some(MpiCallKind::Send { nonblocking: true }));
    }

    #[test]
    fn bcast_is_accepted_for_aliasing() {
        let src = "#pragma acc mpi sendbuf(readonly) recvbuf(readonly)\nMPI_Bcast(b, n, MPI_DOUBLE, 0, comm);\n";
        let (found, issues) = scan_source(src);
        assert!(issues.is_empty());
        assert_eq!(found[0].call, Some(MpiCallKind::Bcast));
    }

    #[test]
    fn other_pragmas_are_ignored() {
        let src = "#pragma omp parallel\n#pragma acc kernels\nMPI_Send(b,1,MPI_INT,0,0,c);\n";
        let (found, issues) = scan_source(src);
        assert!(found.is_empty() && issues.is_empty());
    }
}
