//! Directive-to-runtime lowering: the plan of `TaskCtx` calls the IMPACC
//! compiler would emit for each directive in a source file.
//!
//! The real compiler is a full source-to-source translator (built on
//! OpenARC; out of the paper's scope). This module implements the part
//! that *is* specified: which runtime operations each directive selects,
//! with which queue and buffer options — enough to check a program's
//! directive usage end-to-end and to drive the runtime from annotated
//! sources in tests.

use impacc_core::MpiOpts;
use impacc_machine::LaunchConfig;

use crate::acc::{parse_acc_directive, AccKind};
use crate::parser::parse_directive;
use crate::scan::{classify_call_pub, ScanIssue};

/// One lowered runtime operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RuntimeCall {
    /// `acc_create` for each variable (enter data create / data create).
    Create {
        /// Variables to mirror on the device.
        vars: Vec<String>,
    },
    /// `acc_delete` for each variable (exit data delete).
    Delete {
        /// Variables whose mirrors are dropped.
        vars: Vec<String>,
    },
    /// `acc_update_device(var)` (copyin / update device).
    UpdateDevice {
        /// Variables to push.
        vars: Vec<String>,
        /// Activity queue, if `async`.
        queue: Option<u32>,
    },
    /// `acc_update_host(var)` (copyout / update host|self).
    UpdateHost {
        /// Variables to pull.
        vars: Vec<String>,
        /// Activity queue, if `async`.
        queue: Option<u32>,
    },
    /// `acc_kernel(...)` for a compute construct.
    KernelLaunch {
        /// Activity queue, if `async`; `None` = synchronous construct
        /// with its implicit barrier.
        queue: Option<u32>,
        /// Gang/worker/vector configuration from the tuning clauses.
        cfg: LaunchConfig,
    },
    /// `acc_wait(q)` for each listed queue (empty = wait all).
    Wait {
        /// Queues to drain.
        queues: Vec<u32>,
    },
    /// A unified MPI call with IMPACC directive options applied.
    UnifiedMpi {
        /// The annotated call's name (`MPI_Isend`, ...).
        call: String,
        /// Options for the send side.
        send_opts: MpiOpts,
        /// Options for the receive side.
        recv_opts: MpiOpts,
    },
}

/// The lowering of one source file: `(line, call)` pairs plus front-end
/// diagnostics.
#[derive(Clone, Debug, Default)]
pub struct Lowering {
    /// Lowered operations in source order.
    pub calls: Vec<(usize, RuntimeCall)>,
    /// Diagnostics (parse failures, clause/call mismatches).
    pub issues: Vec<ScanIssue>,
}

/// Lower every `#pragma acc` directive in `source`.
pub fn translate(source: &str) -> Lowering {
    let mut out = Lowering::default();
    let lines: Vec<&str> = source.lines().collect();
    for (i, raw) in lines.iter().enumerate() {
        let line_no = i + 1;
        let trimmed = raw.trim_start();
        if !trimmed.starts_with("#pragma") {
            continue;
        }
        let mut words = trimmed.split_whitespace();
        let (_, second, third) = (words.next(), words.next(), words.next());
        if second != Some("acc") {
            continue;
        }
        if third == Some("mpi") {
            // Diagnostics for `acc mpi` lines come from the scan pass
            // appended below; here we only lower the well-formed ones.
            if let Ok(d) = parse_directive(trimmed) {
                let call = lines[i + 1..]
                    .iter()
                    .map(|l| l.trim())
                    .find(|l| !l.is_empty() && !l.starts_with("//"))
                    .and_then(classify_call_pub);
                if let Some((_, name)) = call {
                    out.calls.push((
                        line_no,
                        RuntimeCall::UnifiedMpi {
                            call: name,
                            send_opts: d.send_opts(),
                            recv_opts: d.recv_opts(),
                        },
                    ));
                }
            }
            continue;
        }
        match parse_acc_directive(trimmed) {
            Ok(d) => {
                let q = d.queue();
                let grab = |clauses: &[&str]| -> Vec<String> {
                    clauses
                        .iter()
                        .flat_map(|c| d.vars_of(c))
                        .map(|s| s.to_string())
                        .collect()
                };
                if !d.waits.is_empty() || d.kind == AccKind::Wait {
                    out.calls.push((
                        line_no,
                        RuntimeCall::Wait {
                            queues: d.waits.clone(),
                        },
                    ));
                }
                // Data motion clauses lower in OpenACC's defined order:
                // create/copyin at region entry, then the construct itself.
                let creates = grab(&["create", "copy", "copyin", "copyout"]);
                if (matches!(d.kind, AccKind::Data | AccKind::EnterData)
                    || (matches!(d.kind, AccKind::Kernels | AccKind::Parallel)
                        && !creates.is_empty()))
                    && !creates.is_empty()
                {
                    out.calls
                        .push((line_no, RuntimeCall::Create { vars: creates }));
                }
                let ins = grab(&["copy", "copyin"]);
                if !ins.is_empty() {
                    out.calls.push((
                        line_no,
                        RuntimeCall::UpdateDevice {
                            vars: ins,
                            queue: q,
                        },
                    ));
                }
                match d.kind {
                    AccKind::Kernels | AccKind::Parallel => {
                        let cfg = LaunchConfig {
                            gangs: d.num_gangs,
                            workers: d.num_workers,
                            vector: d.vector_length,
                        };
                        out.calls
                            .push((line_no, RuntimeCall::KernelLaunch { queue: q, cfg }));
                    }
                    AccKind::Update => {
                        let dev = grab(&["device"]);
                        if !dev.is_empty() {
                            out.calls.push((
                                line_no,
                                RuntimeCall::UpdateDevice {
                                    vars: dev,
                                    queue: q,
                                },
                            ));
                        }
                        let host = grab(&["host", "self"]);
                        if !host.is_empty() {
                            out.calls.push((
                                line_no,
                                RuntimeCall::UpdateHost {
                                    vars: host,
                                    queue: q,
                                },
                            ));
                        }
                    }
                    AccKind::ExitData => {
                        let outs = grab(&["copy", "copyout"]);
                        if !outs.is_empty() {
                            out.calls.push((
                                line_no,
                                RuntimeCall::UpdateHost {
                                    vars: outs,
                                    queue: q,
                                },
                            ));
                        }
                        let dels = grab(&["delete", "copy", "copyout"]);
                        if !dels.is_empty() {
                            out.calls
                                .push((line_no, RuntimeCall::Delete { vars: dels }));
                        }
                    }
                    _ => {}
                }
                // Compute constructs with copyout lower the pull at region
                // exit.
                if matches!(d.kind, AccKind::Kernels | AccKind::Parallel) {
                    let outs = grab(&["copy", "copyout"]);
                    if !outs.is_empty() {
                        out.calls.push((
                            line_no,
                            RuntimeCall::UpdateHost {
                                vars: outs,
                                queue: q,
                            },
                        ));
                    }
                }
            }
            Err(error) => out.issues.push(ScanIssue::Parse {
                line: line_no,
                error,
            }),
        }
    }
    // Reuse the clause/call validation from the scanner.
    let (_, mut scan_issues) = crate::scan::scan_source(source);
    out.issues.append(&mut scan_issues);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The complete Figure 4(c) listing lowers to the exact call sequence
    /// the IMPACC runtime expects.
    #[test]
    fn figure4c_lowers_to_the_unified_pipeline() {
        let src = r#"
#pragma acc kernels loop async(1)
for (i = 0; i < n; i++) { buf0[i] = f(i); }
#pragma acc mpi sendbuf(device) async(1)
MPI_Isend(buf0, n, MPI_DOUBLE, peer, 0, comm, &req0);
#pragma acc mpi recvbuf(device) async(1)
MPI_Irecv(buf1, n, MPI_DOUBLE, peer, 0, comm, &req1);
#pragma acc kernels loop async(1)
for (i = 0; i < n; i++) { g(buf1[i]); }
"#;
        let l = translate(src);
        assert!(l.issues.is_empty(), "{:?}", l.issues);
        let kinds: Vec<&RuntimeCall> = l.calls.iter().map(|(_, c)| c).collect();
        assert_eq!(kinds.len(), 4);
        assert!(matches!(
            kinds[0],
            RuntimeCall::KernelLaunch { queue: Some(1), .. }
        ));
        match kinds[1] {
            RuntimeCall::UnifiedMpi {
                call, send_opts, ..
            } => {
                assert_eq!(call, "MPI_Isend");
                assert!(send_opts.device);
                assert_eq!(send_opts.queue, Some(1));
            }
            other => panic!("expected unified send, got {other:?}"),
        }
        match kinds[2] {
            RuntimeCall::UnifiedMpi {
                call, recv_opts, ..
            } => {
                assert_eq!(call, "MPI_Irecv");
                assert!(recv_opts.device);
            }
            other => panic!("expected unified recv, got {other:?}"),
        }
        assert!(matches!(
            kinds[3],
            RuntimeCall::KernelLaunch { queue: Some(1), .. }
        ));
    }

    #[test]
    fn figure4a_lowers_with_data_motion_around_kernels() {
        let src = r#"
#pragma acc kernels loop copyout(buf0)
for (i = 0; i < n; i++) { buf0[i] = f(i); }
#pragma acc kernels loop copyin(buf1)
for (i = 0; i < n; i++) { g(buf1[i]); }
"#;
        let l = translate(src);
        assert!(l.issues.is_empty());
        let kinds: Vec<&RuntimeCall> = l.calls.iter().map(|(_, c)| c).collect();
        // copyout: create + launch + pull; copyin: create + push + launch.
        assert!(matches!(kinds[0], RuntimeCall::Create { .. }));
        assert!(matches!(
            kinds[1],
            RuntimeCall::KernelLaunch { queue: None, .. }
        ));
        assert!(matches!(
            kinds[2],
            RuntimeCall::UpdateHost { queue: None, .. }
        ));
        assert!(matches!(kinds[3], RuntimeCall::Create { .. }));
        assert!(matches!(kinds[4], RuntimeCall::UpdateDevice { .. }));
        assert!(matches!(
            kinds[5],
            RuntimeCall::KernelLaunch { queue: None, .. }
        ));
    }

    #[test]
    fn update_and_wait_lower_directly() {
        let l = translate(
            "#pragma acc update host(u) async(2)\n#pragma acc wait(2)\n#pragma acc update device(u)\n",
        );
        assert!(l.issues.is_empty());
        assert_eq!(
            l.calls[0].1,
            RuntimeCall::UpdateHost {
                vars: vec!["u".into()],
                queue: Some(2)
            }
        );
        assert_eq!(l.calls[1].1, RuntimeCall::Wait { queues: vec![2] });
        assert_eq!(
            l.calls[2].1,
            RuntimeCall::UpdateDevice {
                vars: vec!["u".into()],
                queue: None
            }
        );
    }

    #[test]
    fn enter_exit_data_pair() {
        let l = translate(
            "#pragma acc enter data create(u) copyin(v)\n#pragma acc exit data copyout(u) delete(v)\n",
        );
        assert!(l.issues.is_empty());
        let kinds: Vec<&RuntimeCall> = l.calls.iter().map(|(_, c)| c).collect();
        assert!(matches!(kinds[0], RuntimeCall::Create { .. }));
        assert!(matches!(kinds[1], RuntimeCall::UpdateDevice { .. }));
        assert!(matches!(kinds[2], RuntimeCall::UpdateHost { .. }));
        match kinds[3] {
            RuntimeCall::Delete { vars } => {
                assert!(vars.contains(&"v".to_string()) && vars.contains(&"u".to_string()))
            }
            other => panic!("expected delete, got {other:?}"),
        }
    }

    #[test]
    fn tuning_clauses_reach_the_launch_config() {
        let l = translate(
            "#pragma acc parallel loop num_gangs(64) num_workers(4) vector_length(128) async(1)\nx;\n",
        );
        assert!(l.issues.is_empty());
        match &l.calls[0].1 {
            RuntimeCall::KernelLaunch { queue, cfg } => {
                assert_eq!(*queue, Some(1));
                assert_eq!(cfg.gangs, Some(64));
                assert_eq!(cfg.workers, Some(4));
                assert_eq!(cfg.vector, Some(128));
                assert_eq!(cfg.threads(), Some(64 * 4 * 128));
            }
            other => panic!("expected a kernel launch, got {other:?}"),
        }
    }

    #[test]
    fn issues_propagate_from_both_parsers() {
        let l =
            translate("#pragma acc kernels quux(a)\nx;\n#pragma acc mpi sendbuf(device)\nint y;\n");
        assert_eq!(l.issues.len(), 2, "{:?}", l.issues);
    }
}
