//! Typed AST for the `.acc` kernel language, plus the canonical
//! pretty-printer.
//!
//! The printer emits fully parenthesized expressions, so
//! pretty-print → reparse is the identity on the AST (the proptest
//! round-trip suite holds the compiler to that). Pragma lines are kept
//! verbatim: the directive text *is* their canonical form, and semantic
//! analysis re-parses them through `impacc-directives`.

use std::fmt::Write as _;

/// Binary operators, C precedence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&&`
    And,
    /// `||`
    Or,
}

impl BinOp {
    /// Source spelling.
    pub fn sym(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }

    /// True for the four arithmetic operators the flop model counts.
    pub fn is_arith(self) -> bool {
        matches!(self, BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// `-`
    Neg,
    /// `!`
    Not,
}

/// An expression. Everything is f64; comparisons and logic yield
/// 1.0/0.0.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Numeric literal.
    Num(f64),
    /// A parameter, scalar variable, or loop index.
    Var(String),
    /// An array subscript `a[e0][e1]...`.
    Index(String, Vec<Expr>),
    /// Unary operation.
    Un(UnOp, Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// `c ? a : b`.
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Builtin call (`min`, `max`, `abs`, `sqrt`).
    Call(String, Vec<Expr>),
}

impl Expr {
    /// Fully parenthesized canonical form.
    pub fn pretty(&self) -> String {
        match self {
            Expr::Num(v) => format!("{v:?}"),
            Expr::Var(n) => n.clone(),
            Expr::Index(n, subs) => {
                let mut s = n.clone();
                for e in subs {
                    let _ = write!(s, "[{}]", e.pretty());
                }
                s
            }
            Expr::Un(op, e) => format!(
                "({}{})",
                match op {
                    UnOp::Neg => "-",
                    UnOp::Not => "!",
                },
                e.pretty()
            ),
            Expr::Bin(op, a, b) => format!("({} {} {})", a.pretty(), op.sym(), b.pretty()),
            Expr::Ternary(c, a, b) => {
                format!("({} ? {} : {})", c.pretty(), a.pretty(), b.pretty())
            }
            Expr::Call(f, args) => {
                let parts: Vec<String> = args.iter().map(|a| a.pretty()).collect();
                format!("{}({})", f, parts.join(", "))
            }
        }
    }
}

/// One level of a parallel loop nest: `for (var = lo; var < hi; ++var)`.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopHeader {
    /// The index variable.
    pub var: String,
    /// Inclusive lower bound (a parameter-constant expression).
    pub lo: Expr,
    /// Exclusive upper bound (a parameter-constant expression).
    pub hi: Expr,
}

impl LoopHeader {
    fn pretty(&self) -> String {
        format!(
            "for ({v} = {lo}; {v} < {hi}; ++{v})",
            v = self.var,
            lo = self.lo.pretty(),
            hi = self.hi.pretty()
        )
    }
}

/// The single statement at the bottom of a parallel loop nest.
#[derive(Debug, Clone, PartialEq)]
pub enum Kernel {
    /// `dst[i][j] = rhs;` — a map or stencil sweep.
    Assign {
        /// Target array.
        array: String,
        /// Subscripts (must be the loop indices, in order).
        subs: Vec<Expr>,
        /// Right-hand side.
        rhs: Expr,
    },
    /// `acc += rhs;` — a reduction fold.
    Accum {
        /// The reduced scalar (must match the `reduction` clause).
        var: String,
        /// Per-element contribution.
        rhs: Expr,
    },
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `var x = expr;` — declare a host scalar.
    Var {
        /// Scalar name.
        name: String,
        /// Initial value (host expression).
        value: Expr,
    },
    /// `x = expr;` — host scalar assignment.
    Assign {
        /// Scalar name.
        name: String,
        /// New value (host expression).
        value: Expr,
    },
    /// `assert(expr);` — host-side check (nonzero = pass).
    Assert {
        /// Condition.
        cond: Expr,
    },
    /// `swap(a, b);` — exchange two congruent arrays.
    Swap {
        /// First array.
        a: String,
        /// Second array.
        b: String,
    },
    /// `comm_split_shared;` — the testmpi.cpp idiom: split the world
    /// communicator by node and bind each task to the device indexed by
    /// its shared-memory rank.
    CommSplitShared,
    /// Sequential host loop `for (v = lo; v < hi; ++v) { ... }`.
    For {
        /// Loop header.
        header: LoopHeader,
        /// Body statements.
        body: Vec<Stmt>,
    },
    /// A `#pragma acc`-annotated parallel loop nest.
    ParLoop {
        /// The pragma line, verbatim.
        pragma: String,
        /// The loop nest, outermost first.
        loops: Vec<LoopHeader>,
        /// The innermost statement.
        kernel: Kernel,
    },
}

/// A top-level item.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// `param n = expr;` — a compile-time constant (overridable).
    Param {
        /// Parameter name.
        name: String,
        /// Default value (constant over earlier params).
        value: Expr,
    },
    /// `array u[n][n] grid(2) init(expr);` — a distributed array.
    Array {
        /// Array name.
        name: String,
        /// Global extents (parameter-constant expressions).
        dims: Vec<Expr>,
        /// Decomposition grid dimensionality (1 = row blocks, default).
        grid: Option<u32>,
        /// Initial value over global coordinates `i`/`j`/`k`/`l`
        /// (ghost coordinates fall outside the domain — boundary
        /// conditions live there). Default 0.
        init: Option<Expr>,
    },
    /// An executable statement.
    Stmt(Stmt),
}

/// A whole program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Items in source order.
    pub items: Vec<Item>,
}

impl Program {
    /// Canonical source form; parsing it back yields an identical AST.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        for item in &self.items {
            match item {
                Item::Param { name, value } => {
                    let _ = writeln!(out, "param {name} = {};", value.pretty());
                }
                Item::Array {
                    name,
                    dims,
                    grid,
                    init,
                } => {
                    let _ = write!(out, "array {name}");
                    for d in dims {
                        let _ = write!(out, "[{}]", d.pretty());
                    }
                    if let Some(g) = grid {
                        let _ = write!(out, " grid({g})");
                    }
                    if let Some(e) = init {
                        let _ = write!(out, " init({})", e.pretty());
                    }
                    out.push_str(";\n");
                }
                Item::Stmt(s) => pretty_stmt(&mut out, s, 0),
            }
        }
        out
    }
}

fn pretty_stmt(out: &mut String, s: &Stmt, depth: usize) {
    let pad = "  ".repeat(depth);
    match s {
        Stmt::Var { name, value } => {
            let _ = writeln!(out, "{pad}var {name} = {};", value.pretty());
        }
        Stmt::Assign { name, value } => {
            let _ = writeln!(out, "{pad}{name} = {};", value.pretty());
        }
        Stmt::Assert { cond } => {
            let _ = writeln!(out, "{pad}assert({});", cond.pretty());
        }
        Stmt::Swap { a, b } => {
            let _ = writeln!(out, "{pad}swap({a}, {b});");
        }
        Stmt::CommSplitShared => {
            let _ = writeln!(out, "{pad}comm_split_shared;");
        }
        Stmt::For { header, body } => {
            let _ = writeln!(out, "{pad}{} {{", header.pretty());
            for inner in body {
                pretty_stmt(out, inner, depth + 1);
            }
            let _ = writeln!(out, "{pad}}}");
        }
        Stmt::ParLoop {
            pragma,
            loops,
            kernel,
        } => {
            let _ = writeln!(out, "{pad}{pragma}");
            for (i, h) in loops.iter().enumerate() {
                let ipad = "  ".repeat(depth + i);
                let _ = writeln!(out, "{ipad}{} {{", h.pretty());
            }
            let kpad = "  ".repeat(depth + loops.len());
            match kernel {
                Kernel::Assign { array, subs, rhs } => {
                    let _ = write!(out, "{kpad}{array}");
                    for e in subs {
                        let _ = write!(out, "[{}]", e.pretty());
                    }
                    let _ = writeln!(out, " = {};", rhs.pretty());
                }
                Kernel::Accum { var, rhs } => {
                    let _ = writeln!(out, "{kpad}{var} += {};", rhs.pretty());
                }
            }
            for i in (0..loops.len()).rev() {
                let ipad = "  ".repeat(depth + i);
                let _ = writeln!(out, "{ipad}}}");
            }
        }
    }
}
