//! `impaccc`: the IMPACC DSL driver.
//!
//! ```text
//! impaccc list
//! impaccc translate <file|example> [--set k=v]...
//! impaccc run <file|example> [--nodes N] [--gpus G]
//!             [--mode impacc|split|baseline] [--set k=v]... [--check]
//! ```
//!
//! `translate` prints the canonical source (the parser's fixed point)
//! and the lowered plan — inferred halos, margins, flop charges,
//! reductions — without running anything; CI pins golden copies of this
//! output for the shipped examples. `run` executes the program on a
//! simulated `test_cluster(nodes, gpus)` launch with one rank per GPU
//! (JACC-style: one annotated loop splits across every device of every
//! node); `--check` replays the program on the serial interpreter and
//! insists on bit-identical residuals and scalars.

use std::sync::Arc;

use impacc_array::ResProbe;
use impacc_core::{Launch, RuntimeOptions};
use impacc_dsl::{
    compile_with_overrides, dump_plan, example, interpret_serial, run_program, validate_launch,
    RunOut, EXAMPLES,
};
use impacc_machine::presets;
use parking_lot::Mutex;

fn usage() -> ! {
    eprintln!(
        "usage: impaccc list\n       impaccc translate <file|example> [--set k=v]...\n       \
         impaccc run <file|example> [--nodes N] [--gpus G] [--mode impacc|split|baseline] \
         [--set k=v]... [--check]"
    );
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("impaccc: {msg}");
    std::process::exit(1);
}

/// Resolve a source argument: a readable file path first, then a
/// shipped example name.
fn load(arg: &str) -> (String, String) {
    if let Ok(text) = std::fs::read_to_string(arg) {
        return (arg.to_string(), text);
    }
    if let Some(src) = example(arg) {
        return (arg.to_string(), src.to_string());
    }
    fail(&format!(
        "'{arg}' is neither a readable file nor a shipped example \
         (try `impaccc list`)"
    ));
}

fn parse_set(args: &[String]) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--set" {
            let kv = args.get(i + 1).unwrap_or_else(|| usage());
            let (k, v) = kv.split_once('=').unwrap_or_else(|| usage());
            let v: f64 = v
                .parse()
                .unwrap_or_else(|_| fail(&format!("--set {k}: '{v}' is not a number")));
            out.push((k.to_string(), v));
            i += 2;
        } else {
            i += 1;
        }
    }
    out
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .map(|p| args.get(p + 1).unwrap_or_else(|| usage()).clone())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or_else(|| usage());
    match cmd {
        "list" => {
            for (name, src) in EXAMPLES {
                let first = src
                    .lines()
                    .find_map(|l| l.strip_prefix("// "))
                    .unwrap_or("");
                println!("{name:<12} {first}");
            }
        }
        "translate" => {
            let target = args.get(1).unwrap_or_else(|| usage());
            let overrides = parse_set(&args[2..]);
            let (name, src) = load(target);
            let c = compile_with_overrides(&src, &overrides)
                .unwrap_or_else(|e| fail(&format!("{name}: {e}")));
            println!("== canonical source ==");
            print!("{}", c.program.pretty());
            println!("== lowered plan ==");
            print!("{}", dump_plan(&c));
        }
        "run" => {
            let target = args.get(1).unwrap_or_else(|| usage());
            let rest = &args[2..];
            let overrides = parse_set(rest);
            let nodes: usize = flag_value(rest, "--nodes")
                .map(|v| v.parse().unwrap_or_else(|_| usage()))
                .unwrap_or(1);
            let gpus: usize = flag_value(rest, "--gpus")
                .map(|v| v.parse().unwrap_or_else(|_| usage()))
                .unwrap_or(2);
            let mode = flag_value(rest, "--mode").unwrap_or_else(|| "impacc".into());
            let check = rest.iter().any(|a| a == "--check");
            let opts = match mode.as_str() {
                "impacc" => RuntimeOptions::impacc(),
                "split" => {
                    let mut o = RuntimeOptions::impacc();
                    o.unified_queue = false;
                    o
                }
                "baseline" => RuntimeOptions::baseline(),
                other => fail(&format!("unknown mode '{other}'")),
            };
            let (name, src) = load(target);
            let c = Arc::new(
                compile_with_overrides(&src, &overrides)
                    .unwrap_or_else(|e| fail(&format!("{name}: {e}"))),
            );
            let tasks = nodes * gpus;
            validate_launch(&c, tasks)
                .unwrap_or_else(|e| fail(&format!("{name} cannot launch on {tasks} ranks: {e}")));
            let probe = ResProbe::new();
            let out_slot: Arc<Mutex<Option<RunOut>>> = Arc::new(Mutex::new(None));
            let (cc, pp, slot) = (c.clone(), probe.clone(), out_slot.clone());
            let summary = Launch::new(presets::test_cluster(nodes, gpus), opts)
                .run(move |tc| {
                    let out = run_program(tc, &cc, Some(&pp), false);
                    if tc.rank() == 0 {
                        *slot.lock() = Some(out);
                    }
                })
                .unwrap_or_else(|e| fail(&format!("simulation failed: {e:?}")));
            let out = out_slot.lock().take().unwrap_or_default();
            println!(
                "{name}: {tasks} ranks ({nodes} nodes x {gpus} gpus), mode {mode}, \
                 virtual time {:.6}s, {} events",
                summary.elapsed_secs(),
                summary.report.events
            );
            for (k, v) in &out.scalars {
                println!("  {k} = {v:?}");
            }
            let residuals = probe.take();
            if !residuals.is_empty() {
                println!("  residuals: {residuals:?}");
            }
            if check {
                let serial =
                    interpret_serial(&c).unwrap_or_else(|e| fail(&format!("serial replay: {e}")));
                let sr = &serial.residuals;
                if sr.len() != residuals.len()
                    || sr
                        .iter()
                        .zip(&residuals)
                        .any(|(a, b)| a.to_bits() != b.to_bits())
                {
                    fail(&format!(
                        "residual mismatch vs serial oracle: got {residuals:?}, want {sr:?}"
                    ));
                }
                for (k, v) in &out.scalars {
                    let want = serial.scalars.get(k).copied().unwrap_or(f64::NAN);
                    if v.to_bits() != want.to_bits() {
                        fail(&format!("scalar {k}: distributed {v:?} vs serial {want:?}"));
                    }
                }
                println!("  check: residuals and scalars match the serial oracle bit-for-bit");
            }
        }
        _ => usage(),
    }
}
