//! The runtime executor: drive a [`Compiled`] program through a
//! [`TaskCtx`].
//!
//! The op walk reproduces the hand-written scenario structure *exactly*
//! — build every array in declaration order, fill, copyin, emit the
//! `marker` event, run the plan, and finally drain queue 1 under the
//! unified mode — so a DSL program lowered to the same operations as a
//! hand-written task produces bit-identical residuals, byte-identical
//! stripped metrics and the same virtual end time. The parity suite
//! holds compiled `jacobi.acc` to that standard against
//! `jacobi_array_task` in all three runtime modes.
//!
//! Reduction loops are hand-lowered (rather than calling
//! [`DistArray::reduce`]) because their cell expressions may read
//! several arrays (`sum += x[i] * y[i]`), but the lowering mirrors
//! `reduce` operation for operation: device fold kernel on the unified
//! queue, queue drain, identity for empty ranks, allreduce under an
//! `array.redist` span.

use std::collections::BTreeMap;
use std::sync::Arc;

use impacc_array::{math_ok, ArraySpec, CartGrid, Cell, CellFn, DistArray, ResProbe, StencilSpec};
use impacc_core::{BufView, TaskCtx};
use impacc_machine::KernelCost;
use parking_lot::Mutex;

use crate::sema::{apply_bin, apply_call, ArrayInfo, Compiled, KExpr, Op, ReduceOp};

/// Everything a finished run hands back to the host harness.
#[derive(Debug, Clone, Default)]
pub struct RunOut {
    /// Final values of every host scalar.
    pub scalars: BTreeMap<String, f64>,
    /// Gathered global arrays (rank 0 only, and only when real math is
    /// enabled), keyed by array name. Empty unless `gather` was set.
    pub fields: BTreeMap<String, Vec<f64>>,
}

/// Evaluate a lowered expression. The three handlers supply the leaves;
/// contexts that cannot produce a leaf kind panic inside their handler
/// (semantic analysis rules those programs out).
fn eval(
    e: &KExpr,
    coord: &dyn Fn(usize) -> f64,
    at: &dyn Fn(usize, &[isize]) -> f64,
    scalar: &dyn Fn(&str) -> f64,
) -> f64 {
    match e {
        KExpr::Num(v) => *v,
        KExpr::Coord(d) => coord(*d),
        KExpr::Scalar(n) => scalar(n),
        KExpr::At(s, offs) => at(*s, offs),
        KExpr::Un(op, a) => {
            let a = eval(a, coord, at, scalar);
            match op {
                crate::ast::UnOp::Neg => -a,
                crate::ast::UnOp::Not => {
                    if a == 0.0 {
                        1.0
                    } else {
                        0.0
                    }
                }
            }
        }
        KExpr::Bin(op, a, b) => {
            let a = eval(a, coord, at, scalar);
            let b = eval(b, coord, at, scalar);
            apply_bin(*op, a, b)
        }
        KExpr::Ternary(c, a, b) => {
            if eval(c, coord, at, scalar) != 0.0 {
                eval(a, coord, at, scalar)
            } else {
                eval(b, coord, at, scalar)
            }
        }
        KExpr::Call(f, args) => {
            let vals: Vec<f64> = args.iter().map(|a| eval(a, coord, at, scalar)).collect();
            apply_call(f, &vals)
        }
    }
}

fn no_at(_: usize, _: &[isize]) -> f64 {
    unreachable!("host expressions never read arrays")
}

fn no_scalar(_: &str) -> f64 {
    unreachable!("device expressions never read host scalars")
}

/// Evaluate a host expression over the scalar environment.
pub(crate) fn eval_host(e: &KExpr, env: &BTreeMap<String, f64>) -> f64 {
    eval(
        e,
        &|_| unreachable!("host expressions have no coordinates"),
        &no_at,
        &|n| *env.get(n).expect("sema checked scalar visibility"),
    )
}

/// Evaluate an `init(...)` expression at global coordinates `g`.
pub(crate) fn eval_init(e: &KExpr, g: &[isize]) -> f64 {
    eval(e, &|d| g[d] as f64, &no_at, &no_scalar)
}

/// Build the stencil cell closure for a lowered cell expression
/// (slot 0 is the source array).
pub(crate) fn cell_fn(e: &KExpr) -> CellFn {
    let e = e.clone();
    Arc::new(move |c: &Cell<'_>| {
        eval(
            &e,
            &|d| c.global(d) as f64,
            &|_, offs| c.at(offs),
            &no_scalar,
        )
    })
}

fn build_grid(info: &ArrayInfo, size: usize) -> CartGrid {
    if info.grid_nd == 1 {
        CartGrid::line(size)
    } else {
        CartGrid::new(size, info.grid_nd)
    }
}

/// The [`ArraySpec`] a declaration lowers to for a launch of `size`
/// ranks.
pub fn array_spec(info: &ArrayInfo, size: usize) -> ArraySpec {
    ArraySpec::block(info.shape.clone(), build_grid(info, size), info.halo)
}

fn two(v: &mut [DistArray], a: usize, b: usize) -> (&mut DistArray, &mut DistArray) {
    assert_ne!(a, b);
    if a < b {
        let (lo, hi) = v.split_at_mut(b);
        (&mut lo[a], &mut hi[0])
    } else {
        let (lo, hi) = v.split_at_mut(a);
        (&mut hi[0], &mut lo[b])
    }
}

struct Exec<'a> {
    tc: &'a TaskCtx,
    c: &'a Compiled,
    arrays: Vec<DistArray>,
    env: BTreeMap<String, f64>,
    probe: Option<&'a ResProbe>,
    /// Completed sweeps per stencil site, for the `1/(sweeps+1)`
    /// truncation-fallback convention.
    sweeps: Vec<usize>,
    unified: bool,
}

impl Exec<'_> {
    fn run_ops(&mut self, ops: &[Op]) {
        for op in ops {
            self.run_op(op);
        }
    }

    fn run_op(&mut self, op: &Op) {
        let tc = self.tc;
        match op {
            Op::CommSplitShared => {
                // The testmpi.cpp idiom: split by node, bind the device
                // indexed by the shared-memory rank. Under IMPACC the
                // set call is a documented no-op — the launcher already
                // bound compactly, which is exactly this mapping when
                // the node has one device per task.
                let shm = tc.mpi_comm_split(tc.node() as i64, tc.rank() as i64);
                let shmrank = shm.rel_of(tc.rank()).unwrap_or(0) as usize;
                tc.acc_set_device_num(shmrank);
                if shm.size() as usize == tc.acc_get_num_devices(tc.acc_device_kind()) {
                    assert_eq!(
                        tc.acc_get_device_num(),
                        shmrank,
                        "compact binding must equal the shared-memory rank"
                    );
                }
            }
            Op::SetScalar { name, value } => {
                let v = eval_host(value, &self.env);
                self.env.insert(name.clone(), v);
            }
            Op::Assert { value, text } => {
                assert!(
                    eval_host(value, &self.env) != 0.0,
                    "dsl assert failed: {text}"
                );
            }
            Op::For {
                var,
                lo,
                count,
                body,
            } => {
                for k in 0..*count {
                    self.env.insert(var.clone(), (*lo + k as i64) as f64);
                    self.run_ops(body);
                }
            }
            Op::Exchange { arr } => self.arrays[*arr].exchange(tc),
            Op::Stencil {
                site,
                src,
                dst,
                margin,
                flops,
                cell,
                reduce,
            } => {
                let sspec = StencilSpec {
                    margin: margin.clone(),
                    flops_per_cell: *flops,
                    fallback: 1.0 / (self.sweeps[*site] + 1) as f64,
                    color: None,
                };
                self.sweeps[*site] += 1;
                let res = self.arrays[*src].stencil(tc, &self.arrays[*dst], &sspec, cell_fn(cell));
                if let Some(var) = reduce {
                    if self.unified {
                        tc.acc_wait(1);
                    }
                    let mine = res.get();
                    let residual = tc.mpi_allreduce_f64(&[mine], ReduceOp::Max);
                    assert!(
                        residual[0].is_finite() && residual[0] >= mine,
                        "global residual must bound the local one"
                    );
                    if let Some(pr) = self.probe {
                        if tc.rank() == 0 {
                            pr.push(residual[0]);
                        }
                    }
                    self.env.insert(var.clone(), residual[0]);
                }
            }
            Op::Map { arr, flops, cell } => {
                let e = cell.clone();
                self.arrays[*arr].map(tc, *flops, move |g, old| {
                    eval(&e, &|d| g[d] as f64, &|_, _| old, &no_scalar)
                });
            }
            Op::Reduce {
                arrays,
                op,
                var,
                flops,
                cell,
            } => {
                let v = self.run_reduce(arrays, *op, *flops, cell);
                self.env.insert(var.clone(), v);
            }
            Op::Swap { a, b } => {
                if a != b {
                    let (a, b) = two(&mut self.arrays, *a, *b);
                    a.swap(b);
                }
            }
        }
    }

    /// Multi-array fold + allreduce, operation-for-operation parallel to
    /// [`DistArray::reduce`].
    fn run_reduce(&mut self, idxs: &[usize], op: ReduceOp, flops: f64, cell: &KExpr) -> f64 {
        let tc = self.tc;
        let anchor = &self.arrays[idxs[0]];
        let local: Arc<Mutex<Option<f64>>> = Arc::new(Mutex::new(None));
        if !anchor.is_empty() {
            let views: Vec<BufView> = idxs
                .iter()
                .map(|&i| tc.dev_view(self.arrays[i].buf()))
                .collect();
            let nd = anchor.padded().len();
            let region = anchor.owned_region();
            let (plo, phi) = (region.lo, region.hi);
            let total: usize = anchor.padded().iter().product();
            let padded = anchor.padded().to_vec();
            let mut strides = vec![1isize; nd];
            for d in (0..nd.saturating_sub(1)).rev() {
                strides[d] = strides[d + 1] * padded[d + 1] as isize;
            }
            let offsets = anchor.offsets().to_vec();
            let info = &self.c.arrays[idxs[0]];
            let mut pad = vec![0isize; nd];
            for p in pad.iter_mut().take(info.grid_nd) {
                *p = info.halo as isize;
            }
            let e = cell.clone();
            let slot = local.clone();
            let body = move || {
                if views.iter().any(|v| !math_ok(v)) {
                    *slot.lock() = Some(0.0);
                    return;
                }
                let data: Vec<Vec<f64>> = views.iter().map(|v| v.read_f64s(0, total)).collect();
                let mut acc: Option<f64> = None;
                let mut idx = plo.clone();
                let mut g = vec![0isize; nd];
                'cells: loop {
                    let mut lin = 0isize;
                    for d in 0..nd {
                        lin += idx[d] as isize * strides[d];
                        g[d] = offsets[d] as isize + idx[d] as isize - pad[d];
                    }
                    let lin = lin as usize;
                    let v = eval(&e, &|d| g[d] as f64, &|s, _| data[s][lin], &no_scalar);
                    acc = Some(match (acc, op) {
                        (None, _) => v,
                        (Some(a), ReduceOp::Sum) => a + v,
                        (Some(a), ReduceOp::Max) => a.max(v),
                        (Some(a), ReduceOp::Min) => a.min(v),
                        (Some(a), ReduceOp::Prod) => a * v,
                    });
                    let mut d = nd;
                    loop {
                        if d == 0 {
                            break 'cells;
                        }
                        d -= 1;
                        idx[d] += 1;
                        if idx[d] < phi[d] {
                            break;
                        }
                        idx[d] = plo[d];
                    }
                }
                *slot.lock() = acc;
            };
            let cost = KernelCost::new(
                flops * anchor.owned_cells().max(1) as f64,
                idxs.len() as f64 * total as f64 * 8.0,
            );
            let q = self.unified.then_some(1);
            tc.acc_kernel(q, cost, body);
        }
        if self.unified {
            tc.acc_wait(1);
        }
        let mine = (*local.lock()).unwrap_or(match op {
            ReduceOp::Sum => 0.0,
            ReduceOp::Max => f64::MIN,
            ReduceOp::Min => f64::MAX,
            ReduceOp::Prod => 1.0,
        });
        let ctx = tc.ctx();
        let t0 = ctx.now();
        let out = tc.mpi_allreduce_f64(&[mine], op);
        ctx.span("array.redist", t0, ctx.now(), || {
            vec![("kind", "reduce".to_string())]
        });
        out[0]
    }
}

/// Execute a compiled program on one task. Collective: every launched
/// rank must call it with the same `Compiled`.
///
/// `probe` records every globally-reduced stencil residual on rank 0;
/// `gather` additionally collects each global array to rank 0's host at
/// the end (extra simulated traffic — leave off for tick-parity runs).
pub fn run_program(tc: &TaskCtx, c: &Compiled, probe: Option<&ResProbe>, gather: bool) -> RunOut {
    let size = tc.size() as usize;
    let arrays: Vec<DistArray> = c
        .arrays
        .iter()
        .map(|info| DistArray::build(tc, &array_spec(info, size)))
        .collect();
    for (arr, info) in arrays.iter().zip(&c.arrays) {
        match &info.init {
            Some(e) => {
                let e = e.clone();
                arr.fill(tc, move |g| eval_init(&e, g));
            }
            None => arr.fill(tc, |_| 0.0),
        }
    }
    for arr in &arrays {
        arr.to_device(tc);
    }
    tc.ctx()
        .event("marker", || vec![("phase", "sweep".to_string())]);

    let unified = tc.options().is_impacc() && tc.options().unified_queue;
    let mut params: BTreeMap<String, f64> = BTreeMap::new();
    for (name, v) in &c.params {
        params.insert(name.clone(), *v);
    }
    let mut ex = Exec {
        tc,
        c,
        arrays,
        env: params,
        probe,
        sweeps: vec![0; c.stencil_sites],
        unified,
    };
    ex.run_ops(&c.plan);
    if unified && c.has_device_ops {
        tc.acc_wait(1);
    }

    let mut out = RunOut {
        scalars: ex.env,
        fields: BTreeMap::new(),
    };
    if gather {
        for (i, info) in c.arrays.iter().enumerate() {
            if let Some(vals) = ex.arrays[i].gather(tc, 0) {
                out.fields.insert(info.name.clone(), vals);
            }
        }
    }
    out
}
