//! Serial reference interpreter: the correctness oracle.
//!
//! Runs a compiled program over plain padded host fields — the same
//! ghost-pad semantics the distributed tiles have (pads of the inferred
//! halo depth on grid-mapped dimensions, initialized from `init(...)`
//! at out-of-domain coordinates and never updated) — with no runtime,
//! no decomposition and no cost model. Because every distributed sweep
//! computes each cell from identically-valued neighbours, the gathered
//! distributed field and every globally-reduced `max` residual match
//! this replay *bit for bit*; sum/product folds are exact only when the
//! data makes them order-independent (the shipped `dot.acc` does).

use std::collections::BTreeMap;

use crate::exec::{eval_host, eval_init};
use crate::lex::DslError;
use crate::sema::{apply_bin, apply_call, ArrayInfo, Compiled, KExpr, Op, ReduceOp};

/// Result of a serial run.
#[derive(Debug, Clone, Default)]
pub struct SerialOut {
    /// Final host scalar values.
    pub scalars: BTreeMap<String, f64>,
    /// Residual of every reducing stencil sweep, in execution order.
    pub residuals: Vec<f64>,
    /// Un-padded global fields, row-major, keyed by array name.
    pub fields: BTreeMap<String, Vec<f64>>,
}

struct Field {
    pad: Vec<isize>,
    strides: Vec<isize>,
    vals: Vec<f64>,
}

impl Field {
    fn new(info: &ArrayInfo) -> Field {
        let nd = info.shape.len();
        let mut pad = vec![0isize; nd];
        for p in pad.iter_mut().take(info.grid_nd) {
            *p = info.halo as isize;
        }
        let padded: Vec<usize> = info
            .shape
            .iter()
            .zip(&pad)
            .map(|(s, p)| s + 2 * *p as usize)
            .collect();
        let mut strides = vec![1isize; nd];
        for d in (0..nd.saturating_sub(1)).rev() {
            strides[d] = strides[d + 1] * padded[d + 1] as isize;
        }
        let total: usize = padded.iter().product();
        let mut vals = vec![0.0f64; total];
        if let Some(e) = &info.init {
            let mut idx = vec![0usize; nd];
            let mut g = vec![0isize; nd];
            for v in vals.iter_mut() {
                for d in 0..nd {
                    g[d] = idx[d] as isize - pad[d];
                }
                *v = eval_init(e, &g);
                let mut d = nd;
                while d > 0 {
                    d -= 1;
                    idx[d] += 1;
                    if idx[d] < padded[d] {
                        break;
                    }
                    idx[d] = 0;
                }
            }
        }
        Field { pad, strides, vals }
    }

    /// Un-padded global contents, row-major.
    fn interior(&self, shape: &[usize]) -> Vec<f64> {
        let nd = shape.len();
        let total: usize = shape.iter().product();
        let mut out = Vec::with_capacity(total);
        let mut idx = vec![0usize; nd];
        for _ in 0..total {
            let lin: isize = (0..nd)
                .map(|d| (idx[d] as isize + self.pad[d]) * self.strides[d])
                .sum();
            out.push(self.vals[lin as usize]);
            let mut d = nd;
            while d > 0 {
                d -= 1;
                idx[d] += 1;
                if idx[d] < shape[d] {
                    break;
                }
                idx[d] = 0;
            }
        }
        out
    }
}

fn eval_cell(e: &KExpr, g: &[isize], at: &dyn Fn(usize, &[isize]) -> f64) -> f64 {
    match e {
        KExpr::Num(v) => *v,
        KExpr::Coord(d) => g[*d] as f64,
        KExpr::Scalar(_) => unreachable!("device expressions never read host scalars"),
        KExpr::At(s, offs) => at(*s, offs),
        KExpr::Un(op, a) => {
            let a = eval_cell(a, g, at);
            match op {
                crate::ast::UnOp::Neg => -a,
                crate::ast::UnOp::Not => {
                    if a == 0.0 {
                        1.0
                    } else {
                        0.0
                    }
                }
            }
        }
        KExpr::Bin(op, a, b) => {
            let a = eval_cell(a, g, at);
            let b = eval_cell(b, g, at);
            apply_bin(*op, a, b)
        }
        KExpr::Ternary(c, a, b) => {
            if eval_cell(c, g, at) != 0.0 {
                eval_cell(a, g, at)
            } else {
                eval_cell(b, g, at)
            }
        }
        KExpr::Call(f, args) => {
            let vals: Vec<f64> = args.iter().map(|a| eval_cell(a, g, at)).collect();
            apply_call(f, &vals)
        }
    }
}

/// Iterate `idx` row-major over `lo..hi` (padded coordinates), calling
/// `body(idx)`. Returns immediately on an empty box.
fn walk(lo: &[usize], hi: &[usize], mut body: impl FnMut(&[usize])) {
    let nd = lo.len();
    if (0..nd).any(|d| hi[d] <= lo[d]) {
        return;
    }
    let mut idx = lo.to_vec();
    'cells: loop {
        body(&idx);
        let mut d = nd;
        loop {
            if d == 0 {
                break 'cells;
            }
            d -= 1;
            idx[d] += 1;
            if idx[d] < hi[d] {
                break;
            }
            idx[d] = lo[d];
        }
    }
}

struct Interp<'a> {
    c: &'a Compiled,
    fields: Vec<Field>,
    env: BTreeMap<String, f64>,
    residuals: Vec<f64>,
}

impl Interp<'_> {
    fn run_ops(&mut self, ops: &[Op]) -> Result<(), DslError> {
        for op in ops {
            self.run_op(op)?;
        }
        Ok(())
    }

    fn run_op(&mut self, op: &Op) -> Result<(), DslError> {
        match op {
            // Serial world: one domain, nothing to exchange or split.
            Op::CommSplitShared | Op::Exchange { .. } => {}
            Op::SetScalar { name, value } => {
                let v = eval_host(value, &self.env);
                self.env.insert(name.clone(), v);
            }
            Op::Assert { value, text } => {
                if eval_host(value, &self.env) == 0.0 {
                    return Err(DslError::new(0, format!("assert failed: {text}")));
                }
            }
            Op::For {
                var,
                lo,
                count,
                body,
            } => {
                for k in 0..*count {
                    self.env.insert(var.clone(), (*lo + k as i64) as f64);
                    self.run_ops(body)?;
                }
            }
            Op::Stencil {
                src,
                dst,
                margin,
                cell,
                reduce,
                ..
            } => {
                let shape = &self.c.arrays[*src].shape;
                let nd = shape.len();
                let sf = &self.fields[*src];
                let lo: Vec<usize> = (0..nd).map(|d| sf.pad[d] as usize + margin[d].0).collect();
                let hi: Vec<usize> = (0..nd)
                    .map(|d| sf.pad[d] as usize + shape[d] - margin[d].1)
                    .collect();
                let src_vals = sf.vals.clone();
                let strides = sf.strides.clone();
                let pad = sf.pad.clone();
                let mut res = 0.0f64;
                let mut updates: Vec<(usize, f64)> = Vec::new();
                let mut g = vec![0isize; nd];
                walk(&lo, &hi, |idx| {
                    let mut lin = 0isize;
                    for d in 0..nd {
                        lin += idx[d] as isize * strides[d];
                        g[d] = idx[d] as isize - pad[d];
                    }
                    let lin = lin as usize;
                    let at = |_s: usize, offs: &[isize]| {
                        let mut i = lin as isize;
                        for (d, o) in offs.iter().enumerate() {
                            i += o * strides[d];
                        }
                        src_vals[i as usize]
                    };
                    let next = eval_cell(cell, &g, &at);
                    res = res.max((next - src_vals[lin]).abs());
                    updates.push((lin, next));
                });
                for (lin, v) in updates {
                    self.fields[*dst].vals[lin] = v;
                }
                if let Some(var) = reduce {
                    self.residuals.push(res);
                    self.env.insert(var.clone(), res);
                }
            }
            Op::Map { arr, cell, .. } => {
                let shape = &self.c.arrays[*arr].shape;
                let nd = shape.len();
                let f = &self.fields[*arr];
                let lo: Vec<usize> = f.pad.iter().map(|&p| p as usize).collect();
                let hi: Vec<usize> = (0..nd).map(|d| f.pad[d] as usize + shape[d]).collect();
                let strides = f.strides.clone();
                let pad = f.pad.clone();
                let old = f.vals.clone();
                let mut updates: Vec<(usize, f64)> = Vec::new();
                let mut g = vec![0isize; nd];
                walk(&lo, &hi, |idx| {
                    let mut lin = 0isize;
                    for d in 0..nd {
                        lin += idx[d] as isize * strides[d];
                        g[d] = idx[d] as isize - pad[d];
                    }
                    let lin = lin as usize;
                    let next = eval_cell(cell, &g, &|_, _| old[lin]);
                    updates.push((lin, next));
                });
                for (lin, v) in updates {
                    self.fields[*arr].vals[lin] = v;
                }
            }
            Op::Reduce {
                arrays,
                op,
                var,
                cell,
                ..
            } => {
                let shape = &self.c.arrays[arrays[0]].shape;
                let nd = shape.len();
                let anchor = &self.fields[arrays[0]];
                let lo: Vec<usize> = anchor.pad.iter().map(|&p| p as usize).collect();
                let hi: Vec<usize> = (0..nd).map(|d| anchor.pad[d] as usize + shape[d]).collect();
                let strides = anchor.strides.clone();
                let pad = anchor.pad.clone();
                let data: Vec<&Vec<f64>> = arrays.iter().map(|&i| &self.fields[i].vals).collect();
                let mut acc: Option<f64> = None;
                let mut g = vec![0isize; nd];
                walk(&lo, &hi, |idx| {
                    let mut lin = 0isize;
                    for d in 0..nd {
                        lin += idx[d] as isize * strides[d];
                        g[d] = idx[d] as isize - pad[d];
                    }
                    let lin = lin as usize;
                    let v = eval_cell(cell, &g, &|s, _| data[s][lin]);
                    acc = Some(match (acc, op) {
                        (None, _) => v,
                        (Some(a), ReduceOp::Sum) => a + v,
                        (Some(a), ReduceOp::Max) => a.max(v),
                        (Some(a), ReduceOp::Min) => a.min(v),
                        (Some(a), ReduceOp::Prod) => a * v,
                    });
                });
                let v = acc.unwrap_or(match op {
                    ReduceOp::Sum => 0.0,
                    ReduceOp::Max => f64::MIN,
                    ReduceOp::Min => f64::MAX,
                    ReduceOp::Prod => 1.0,
                });
                self.env.insert(var.clone(), v);
            }
            Op::Swap { a, b } => {
                if a != b {
                    let (x, y) = (*a.min(b), *a.max(b));
                    let (lo, hi) = self.fields.split_at_mut(y);
                    std::mem::swap(&mut lo[x].vals, &mut hi[0].vals);
                }
            }
        }
        Ok(())
    }
}

/// Run the program serially. Errors only on a failed `assert(...)`.
pub fn interpret_serial(c: &Compiled) -> Result<SerialOut, DslError> {
    let fields: Vec<Field> = c.arrays.iter().map(Field::new).collect();
    let mut env = BTreeMap::new();
    for (name, v) in &c.params {
        env.insert(name.clone(), *v);
    }
    let mut it = Interp {
        c,
        fields,
        env,
        residuals: Vec::new(),
    };
    it.run_ops(&c.plan)?;
    let mut out = SerialOut {
        scalars: it.env,
        residuals: it.residuals,
        fields: BTreeMap::new(),
    };
    for (i, info) in c.arrays.iter().enumerate() {
        out.fields
            .insert(info.name.clone(), it.fields[i].interior(&info.shape));
    }
    Ok(out)
}
