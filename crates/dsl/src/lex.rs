//! Lexer for the `.acc` kernel language.
//!
//! The token stream is ordinary C-like punctuation plus one special
//! case: a line whose first non-blank character is `#` is captured
//! whole as a [`Tok::Pragma`] and handed to `impacc-directives` later —
//! the DSL reuses the existing OpenACC clause grammar rather than
//! reinventing it. `//` comments run to end of line.

use std::fmt;

/// A compile error, with the 1-based source line it was detected on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DslError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl DslError {
    pub(crate) fn new(line: usize, message: impl Into<String>) -> DslError {
        DslError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for DslError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for DslError {}

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Numeric literal (all DSL arithmetic is f64).
    Num(f64),
    /// A whole `#pragma ...` line, verbatim (trimmed).
    Pragma(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBrack,
    /// `]`
    RBrack,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `+=`
    PlusAssign,
    /// `++`
    PlusPlus,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Not,
    /// `?`
    Question,
    /// `:`
    Colon,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "'{s}'"),
            Tok::Num(v) => write!(f, "'{v:?}'"),
            Tok::Pragma(s) => write!(f, "pragma '{s}'"),
            Tok::LParen => write!(f, "'('"),
            Tok::RParen => write!(f, "')'"),
            Tok::LBrack => write!(f, "'['"),
            Tok::RBrack => write!(f, "']'"),
            Tok::LBrace => write!(f, "'{{'"),
            Tok::RBrace => write!(f, "'}}'"),
            Tok::Semi => write!(f, "';'"),
            Tok::Comma => write!(f, "','"),
            Tok::Assign => write!(f, "'='"),
            Tok::Plus => write!(f, "'+'"),
            Tok::Minus => write!(f, "'-'"),
            Tok::Star => write!(f, "'*'"),
            Tok::Slash => write!(f, "'/'"),
            Tok::PlusAssign => write!(f, "'+='"),
            Tok::PlusPlus => write!(f, "'++'"),
            Tok::Lt => write!(f, "'<'"),
            Tok::Le => write!(f, "'<='"),
            Tok::Gt => write!(f, "'>'"),
            Tok::Ge => write!(f, "'>='"),
            Tok::EqEq => write!(f, "'=='"),
            Tok::Ne => write!(f, "'!='"),
            Tok::AndAnd => write!(f, "'&&'"),
            Tok::OrOr => write!(f, "'||'"),
            Tok::Not => write!(f, "'!'"),
            Tok::Question => write!(f, "'?'"),
            Tok::Colon => write!(f, "':'"),
        }
    }
}

/// Tokenize a whole source file; each token carries its 1-based line.
pub fn lex(src: &str) -> Result<Vec<(usize, Tok)>, DslError> {
    let mut toks = Vec::new();
    for (lineno, raw) in src.lines().enumerate() {
        let line = lineno + 1;
        let text = match raw.find("//") {
            Some(p) => &raw[..p],
            None => raw,
        };
        let trimmed = text.trim();
        if trimmed.is_empty() {
            continue;
        }
        if trimmed.starts_with('#') {
            toks.push((line, Tok::Pragma(trimmed.to_string())));
            continue;
        }
        let bytes = text.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            let c = bytes[i] as char;
            let two = if i + 1 < bytes.len() {
                &text[i..i + 2]
            } else {
                ""
            };
            if c.is_whitespace() {
                i += 1;
                continue;
            }
            let double = match two {
                "+=" => Some(Tok::PlusAssign),
                "++" => Some(Tok::PlusPlus),
                "<=" => Some(Tok::Le),
                ">=" => Some(Tok::Ge),
                "==" => Some(Tok::EqEq),
                "!=" => Some(Tok::Ne),
                "&&" => Some(Tok::AndAnd),
                "||" => Some(Tok::OrOr),
                _ => None,
            };
            if let Some(t) = double {
                toks.push((line, t));
                i += 2;
                continue;
            }
            let single = match c {
                '(' => Some(Tok::LParen),
                ')' => Some(Tok::RParen),
                '[' => Some(Tok::LBrack),
                ']' => Some(Tok::RBrack),
                '{' => Some(Tok::LBrace),
                '}' => Some(Tok::RBrace),
                ';' => Some(Tok::Semi),
                ',' => Some(Tok::Comma),
                '=' => Some(Tok::Assign),
                '+' => Some(Tok::Plus),
                '-' => Some(Tok::Minus),
                '*' => Some(Tok::Star),
                '/' => Some(Tok::Slash),
                '<' => Some(Tok::Lt),
                '>' => Some(Tok::Gt),
                '!' => Some(Tok::Not),
                '?' => Some(Tok::Question),
                ':' => Some(Tok::Colon),
                _ => None,
            };
            if let Some(t) = single {
                toks.push((line, t));
                i += 1;
                continue;
            }
            if c.is_ascii_alphabetic() || c == '_' {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                toks.push((line, Tok::Ident(text[start..i].to_string())));
                continue;
            }
            if c.is_ascii_digit() {
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                if i < bytes.len() && bytes[i] == b'.' {
                    i += 1;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    let mut j = i + 1;
                    if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                        j += 1;
                    }
                    if j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                        i = j;
                        while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let lit = &text[start..i];
                let v: f64 = lit
                    .parse()
                    .map_err(|_| DslError::new(line, format!("bad numeric literal '{lit}'")))?;
                toks.push((line, Tok::Num(v)));
                continue;
            }
            return Err(DslError::new(line, format!("unexpected character '{c}'")));
        }
    }
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_numbers_idents_and_pragmas() {
        let toks = lex("param n = 64;\n// comment\n#pragma acc parallel loop reduction(+:sum)\nsum += a[i] * 2.5e-1;\n").unwrap();
        assert_eq!(toks[0], (1, Tok::Ident("param".into())));
        assert_eq!(toks[2], (1, Tok::Assign));
        assert_eq!(toks[3], (1, Tok::Num(64.0)));
        assert!(matches!(&toks[5], (3, Tok::Pragma(p)) if p.contains("reduction(+:sum)")));
        assert_eq!(toks[6], (4, Tok::Ident("sum".into())));
        assert_eq!(toks[7], (4, Tok::PlusAssign));
        assert!(toks.contains(&(4, Tok::Num(0.25))));
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex("a $ b").unwrap_err().message.contains("unexpected"));
    }
}
