//! `impacc-dsl`: an IPMACC/JACC-style source-to-source kernel compiler
//! over a small C-like `acc` DSL.
//!
//! Pipeline (§5l of DESIGN.md):
//!
//! 1. [`lex`] — tokenize; `#pragma` lines are captured verbatim.
//! 2. [`parse`] — recursive descent to a typed [`ast::Program`], with a
//!    canonical pretty-printer (`pretty → reparse` is the identity).
//! 3. [`sema`] — resolve params (with overrides), classify every
//!    annotated loop nest as stencil / map / reduction from its
//!    subscript structure, *infer* halo depths from the offsets, force
//!    congruence groups, and lower to an [`sema::Op`] plan. Pragmas are
//!    re-parsed through `impacc-directives`, so the DSL speaks the
//!    existing OpenACC clause grammar (including the new
//!    `reduction(+:x)` clauses).
//! 4. [`lower`] — byte-stable plan dump (the golden-translation gate).
//! 5. [`exec`] — run the plan on the simulated runtime through
//!    `impacc-array`, reproducing the hand-written scenario structure
//!    exactly (the parity suite proves bit-and-tick equality for
//!    `jacobi.acc`); [`interp`] is the serial correctness oracle.
//!
//! The surface covers the testmpi.cpp pattern end to end:
//! `comm_split_shared` (split by node + device binding by shm rank), a
//! `parallel loop` with `reduction(+:sum)` lowered to a device fold
//! plus `MPI_Allreduce`, and JACC-style splitting of a single annotated
//! loop across all of a node's devices by launching one rank per GPU.

pub mod ast;
pub mod exec;
pub mod interp;
pub mod lex;
pub mod lower;
pub mod parse;
pub mod sema;

pub use ast::Program;
pub use exec::{run_program, RunOut};
pub use interp::{interpret_serial, SerialOut};
pub use lex::DslError;
pub use lower::dump_plan;
pub use sema::{ArrayInfo, Compiled, KExpr, Op};

/// Compile a source text with default parameters.
pub fn compile(src: &str) -> Result<Compiled, DslError> {
    compile_with_overrides(src, &[])
}

/// Compile with `param` overrides (by name; unknown names are ignored).
pub fn compile_with_overrides(
    src: &str,
    overrides: &[(String, f64)],
) -> Result<Compiled, DslError> {
    let program = parse::parse(src)?;
    sema::analyze(src, program, overrides)
}

/// Content hash of a DSL source: FNV-1a over a versioned preamble with
/// a splitmix64 finalizer, 16 hex digits. Canonical cache keys for
/// compiled programs are derived from this, so editing one character of
/// a kernel is a guaranteed cache miss.
pub fn source_hash(src: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in "impacc-dsl-v1\n".bytes().chain(src.bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^= h >> 31;
    format!("{h:016x}")
}

/// The shipped example programs, compiled into the library so every
/// layer (CLI, serve, bench, campaigns) resolves the same sources.
pub const EXAMPLES: [(&str, &str); 3] = [
    ("jacobi", include_str!("../../../examples/jacobi.acc")),
    ("dot", include_str!("../../../examples/dot.acc")),
    ("stencil2d", include_str!("../../../examples/stencil2d.acc")),
];

/// Look up a shipped example by name.
pub fn example(name: &str) -> Option<&'static str> {
    EXAMPLES
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, src)| *src)
}

/// Check that every declared array decomposes over a launch of `tasks`
/// ranks (halo fits the smallest block, grid addresses the ranks).
pub fn validate_launch(c: &Compiled, tasks: usize) -> Result<(), String> {
    for info in &c.arrays {
        exec::array_spec(info, tasks)
            .validate(tasks)
            .map_err(|e| format!("array '{}': {e}", info.name))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_examples_compile() {
        for (name, src) in EXAMPLES {
            let c = compile(src).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(!c.plan.is_empty(), "{name} lowered to an empty plan");
            validate_launch(&c, 1).unwrap();
            validate_launch(&c, 4).unwrap();
        }
    }

    #[test]
    fn source_hash_is_stable_and_sensitive() {
        let a = source_hash("param n = 4;");
        assert_eq!(a.len(), 16);
        assert_eq!(a, source_hash("param n = 4;"));
        assert_ne!(a, source_hash("param n = 5;"));
    }

    #[test]
    fn jacobi_lowering_matches_the_hand_written_scenario() {
        let c = compile(example("jacobi").unwrap()).unwrap();
        assert_eq!(c.arrays.len(), 2);
        assert_eq!(c.arrays[0].halo, 1, "halo inferred from the ±1 offsets");
        assert_eq!(c.arrays[1].halo, 1, "congruence group shares the halo");
        assert_eq!(c.arrays[0].grid_nd, 1);
        assert!(c.has_device_ops);
        // One sequential loop wrapping exchange + stencil + swap.
        let body = match &c.plan[..] {
            [Op::SetScalar { .. }, Op::For { body, count, .. }, Op::Assert { .. }] => {
                assert_eq!(*count, 4);
                body
            }
            other => panic!("unexpected plan shape: {other:?}"),
        };
        match &body[..] {
            [Op::Exchange { arr: 0 }, Op::Stencil {
                src: 0,
                dst: 1,
                margin,
                flops,
                reduce: Some(var),
                ..
            }, Op::Swap { a: 0, b: 1 }] => {
                assert_eq!(margin, &vec![(0, 0), (1, 1)]);
                assert_eq!(*flops, 6.0, "4 arith ops + 2 for the residual fold");
                assert_eq!(var, "res");
            }
            other => panic!("unexpected sweep body: {other:?}"),
        }
    }

    #[test]
    fn dot_lowering_is_a_fold_with_allreduce() {
        let c = compile(example("dot").unwrap()).unwrap();
        let red = c
            .plan
            .iter()
            .find_map(|op| match op {
                Op::Reduce {
                    arrays, op, flops, ..
                } => Some((arrays.clone(), *op, *flops)),
                _ => None,
            })
            .expect("dot must lower to a reduce");
        assert_eq!(red.0.len(), 2, "reads both x and y");
        assert_eq!(red.1, sema::ReduceOp::Sum);
        assert_eq!(red.2, 2.0, "one multiply + one fold combine");
        assert!(
            c.plan.iter().any(|op| matches!(op, Op::CommSplitShared)),
            "dot carries the testmpi comm-split prologue"
        );
    }

    #[test]
    fn stencil2d_infers_a_deep_halo_from_param_offsets() {
        let c = compile(example("stencil2d").unwrap()).unwrap();
        assert_eq!(c.arrays[0].halo, 2, "halo h=2 inferred from u[i - h]");
        let c3 = compile_with_overrides(example("stencil2d").unwrap(), &[("h".to_string(), 3.0)])
            .unwrap();
        assert_eq!(c3.arrays[0].halo, 3, "override flows into inference");
        assert!(
            c.plan.iter().any(|op| matches!(op, Op::Map { .. })),
            "stencil2d ends with a clamp map"
        );
    }

    #[test]
    fn serial_oracle_agrees_with_itself_and_dot_sum_is_exact() {
        let src = example("dot").unwrap();
        let c = compile_with_overrides(src, &[("n".to_string(), 512.0)]).unwrap();
        let out = interpret_serial(&c).unwrap();
        assert_eq!(out.scalars["sum"], 512.0 * 512.0);
    }

    #[test]
    fn rejects_programs_that_cannot_lower() {
        // Stencil reading two source arrays.
        let two_src = "
            param n = 8;
            array a[n][n];
            array b[n][n];
            array c[n][n];
            #pragma acc parallel loop
            for (i = 0; i < n; ++i) {
              for (j = 1; j < n - 1; ++j) {
                c[i][j] = a[i][j - 1] + b[i][j + 1];
              }
            }
        ";
        let e = compile(two_src).unwrap_err();
        assert!(e.message.contains("exactly one other array"), "{e}");

        // Reduction loop with neighbour offsets.
        let off_red = "
            param n = 8;
            array a[n];
            var s = 0.0;
            #pragma acc parallel loop reduction(+:s)
            for (i = 1; i < n; ++i) {
              s += a[i - 1];
            }
        ";
        let e = compile(off_red).unwrap_err();
        assert!(
            e.message.contains("element-wise") || e.message.contains("full index range"),
            "{e}"
        );

        // Unmapped-dimension read outside the margin.
        let past_margin = "
            param n = 8;
            array a[n][n];
            array b[n][n];
            #pragma acc parallel loop
            for (i = 0; i < n; ++i) {
              for (j = 1; j < n - 1; ++j) {
                b[i][j] = a[i][j - 2];
              }
            }
        ";
        let e = compile(past_margin).unwrap_err();
        assert!(e.message.contains("outside the fixed margin"), "{e}");

        // Mismatched shapes in one congruence group.
        let shapes = "
            param n = 8;
            array a[n][n];
            array b[n][4];
            swap(a, b);
        ";
        let e = compile(shapes).unwrap_err();
        assert!(e.message.contains("congruent"), "{e}");

        // Reduction clause on an unknown scalar.
        let unknown = "
            param n = 8;
            array a[n];
            #pragma acc parallel loop reduction(+:zz)
            for (i = 0; i < n; ++i) {
              zz += a[i];
            }
        ";
        let e = compile(unknown).unwrap_err();
        assert!(e.message.contains("declared scalar"), "{e}");
    }

    #[test]
    fn plan_dump_is_deterministic() {
        let src = example("jacobi").unwrap();
        let a = dump_plan(&compile(src).unwrap());
        let b = dump_plan(&compile(src).unwrap());
        assert_eq!(a, b);
        assert!(a.contains("stencil[0] unew <- u"), "{a}");
        assert!(a.contains("halo(1)"), "{a}");
        assert!(a.contains("reduce(max -> res)"), "{a}");
    }
}
