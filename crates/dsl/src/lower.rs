//! Textual plan dump: the `impaccc translate` output.
//!
//! The dump is a pure function of a [`Compiled`] program — byte-stable
//! across runs and platforms — so CI can pin golden translations of the
//! shipped examples and fail on any drift in parsing, halo inference,
//! flop accounting or lowering.

use std::fmt::Write as _;

use crate::sema::{Compiled, KExpr, Op, ReduceOp};

fn red_sym(op: ReduceOp) -> &'static str {
    match op {
        ReduceOp::Sum => "+",
        ReduceOp::Prod => "*",
        ReduceOp::Max => "max",
        ReduceOp::Min => "min",
    }
}

fn fmt_num(v: f64) -> String {
    format!("{v:?}")
}

fn dump_ops(out: &mut String, c: &Compiled, ops: &[Op], depth: usize) {
    let pad = "  ".repeat(depth);
    let name = |i: usize| c.arrays[i].name.clone();
    let none: Vec<String> = Vec::new();
    for op in ops {
        match op {
            Op::CommSplitShared => {
                let _ = writeln!(out, "{pad}comm_split_shared");
            }
            Op::SetScalar { name, value } => {
                let _ = writeln!(out, "{pad}set {name} = {}", value.pretty(&none));
            }
            Op::Assert { value, .. } => {
                let _ = writeln!(out, "{pad}assert {}", value.pretty(&none));
            }
            Op::For {
                var,
                lo,
                count,
                body,
            } => {
                let _ = writeln!(out, "{pad}for {var} = {lo} .. {}:", lo + *count as i64);
                dump_ops(out, c, body, depth + 1);
            }
            Op::Exchange { arr } => {
                let _ = writeln!(
                    out,
                    "{pad}exchange {} halo({})",
                    name(*arr),
                    c.arrays[*arr].halo
                );
            }
            Op::Stencil {
                site,
                src,
                dst,
                margin,
                flops,
                cell,
                reduce,
            } => {
                let m: Vec<String> = margin.iter().map(|(a, b)| format!("({a},{b})")).collect();
                let red = match reduce {
                    Some(v) => format!(" reduce(max -> {v})"),
                    None => String::new(),
                };
                let _ = writeln!(
                    out,
                    "{pad}stencil[{site}] {} <- {} margin[{}] flops({}){red}",
                    name(*dst),
                    name(*src),
                    m.join(", "),
                    fmt_num(*flops)
                );
                let slots = vec![name(*src)];
                let _ = writeln!(out, "{pad}  cell: {}", cell.pretty(&slots));
            }
            Op::Map { arr, flops, cell } => {
                let _ = writeln!(out, "{pad}map {} flops({})", name(*arr), fmt_num(*flops));
                let slots = vec![name(*arr)];
                let _ = writeln!(out, "{pad}  cell: {}", cell.pretty(&slots));
            }
            Op::Reduce {
                arrays,
                op,
                var,
                flops,
                cell,
            } => {
                let names: Vec<String> = arrays.iter().map(|&i| name(i)).collect();
                let _ = writeln!(
                    out,
                    "{pad}reduce({} -> {var}) over [{}] flops({})",
                    red_sym(*op),
                    names.join(", "),
                    fmt_num(*flops)
                );
                let _ = writeln!(out, "{pad}  cell: {}", cell.pretty(&names));
            }
            Op::Swap { a, b } => {
                let _ = writeln!(out, "{pad}swap {} {}", name(*a), name(*b));
            }
        }
    }
}

/// Render the lowered plan: params, arrays with inferred halos, ops.
pub fn dump_plan(c: &Compiled) -> String {
    let mut out = String::new();
    out.push_str("impacc-dsl plan v1\n");
    let _ = writeln!(out, "source-hash: {}", crate::source_hash(&c.source));
    out.push_str("params:\n");
    for (name, v) in &c.params {
        let _ = writeln!(out, "  {name} = {}", fmt_num(*v));
    }
    out.push_str("arrays:\n");
    for (i, a) in c.arrays.iter().enumerate() {
        let dims: Vec<String> = a.shape.iter().map(|d| format!("[{d}]")).collect();
        let init = match &a.init {
            Some(e) => format!(" init({})", e.pretty(&[])),
            None => String::new(),
        };
        let _ = writeln!(
            out,
            "  [{i}] {}{} grid({}) halo({}){init}",
            a.name,
            dims.join(""),
            a.grid_nd,
            a.halo
        );
    }
    out.push_str("plan:\n");
    dump_ops(&mut out, c, &c.plan, 1);
    out
}

/// Pretty helper shared with `KExpr::pretty` callers that have no slots
/// (host expressions).
pub fn pretty_host(e: &KExpr) -> String {
    e.pretty(&[])
}
