//! Recursive-descent parser for the `.acc` kernel language.

use crate::ast::*;
use crate::lex::{lex, DslError, Tok};

struct Parser {
    toks: Vec<(usize, Tok)>,
    pos: usize,
}

/// Parse a whole source file into a [`Program`].
pub fn parse(src: &str) -> Result<Program, DslError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let mut items = Vec::new();
    while !p.done() {
        items.push(p.item()?);
    }
    Ok(Program { items })
}

impl Parser {
    fn done(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn line(&self) -> usize {
        self.toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map(|(l, _)| *l)
            .unwrap_or(1)
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.pos + 1).map(|(_, t)| t)
    }

    fn next(&mut self) -> Result<Tok, DslError> {
        let t = self
            .toks
            .get(self.pos)
            .map(|(_, t)| t.clone())
            .ok_or_else(|| DslError::new(self.line(), "unexpected end of input"))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect(&mut self, want: &Tok) -> Result<(), DslError> {
        let line = self.line();
        let got = self.next()?;
        if &got == want {
            Ok(())
        } else {
            Err(DslError::new(line, format!("expected {want}, found {got}")))
        }
    }

    fn ident(&mut self) -> Result<String, DslError> {
        let line = self.line();
        match self.next()? {
            Tok::Ident(s) => Ok(s),
            other => Err(DslError::new(
                line,
                format!("expected an identifier, found {other}"),
            )),
        }
    }

    fn eat(&mut self, want: &Tok) -> bool {
        if self.peek() == Some(want) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn item(&mut self) -> Result<Item, DslError> {
        match self.peek() {
            Some(Tok::Ident(k)) if k == "param" => {
                self.pos += 1;
                let name = self.ident()?;
                self.expect(&Tok::Assign)?;
                let value = self.expr()?;
                self.expect(&Tok::Semi)?;
                Ok(Item::Param { name, value })
            }
            Some(Tok::Ident(k)) if k == "array" => {
                self.pos += 1;
                let name = self.ident()?;
                let mut dims = Vec::new();
                while self.eat(&Tok::LBrack) {
                    dims.push(self.expr()?);
                    self.expect(&Tok::RBrack)?;
                }
                if dims.is_empty() {
                    return Err(DslError::new(
                        self.line(),
                        format!("array '{name}' needs at least one dimension"),
                    ));
                }
                let mut grid = None;
                let mut init = None;
                while let Some(Tok::Ident(clause)) = self.peek() {
                    let clause = clause.clone();
                    match clause.as_str() {
                        "grid" => {
                            self.pos += 1;
                            self.expect(&Tok::LParen)?;
                            let line = self.line();
                            let g = match self.next()? {
                                Tok::Num(v) if v == 1.0 || v == 2.0 => v as u32,
                                other => {
                                    return Err(DslError::new(
                                        line,
                                        format!("grid() takes 1 or 2, found {other}"),
                                    ))
                                }
                            };
                            self.expect(&Tok::RParen)?;
                            grid = Some(g);
                        }
                        "init" => {
                            self.pos += 1;
                            self.expect(&Tok::LParen)?;
                            init = Some(self.expr()?);
                            self.expect(&Tok::RParen)?;
                        }
                        other => {
                            return Err(DslError::new(
                                self.line(),
                                format!("unknown array clause '{other}' (expected grid or init)"),
                            ))
                        }
                    }
                }
                self.expect(&Tok::Semi)?;
                Ok(Item::Array {
                    name,
                    dims,
                    grid,
                    init,
                })
            }
            _ => Ok(Item::Stmt(self.stmt()?)),
        }
    }

    fn stmt(&mut self) -> Result<Stmt, DslError> {
        let line = self.line();
        match self.peek() {
            Some(Tok::Pragma(_)) => self.par_loop(),
            Some(Tok::Ident(k)) if k == "for" => {
                let header = self.loop_header()?;
                self.expect(&Tok::LBrace)?;
                let mut body = Vec::new();
                while !self.eat(&Tok::RBrace) {
                    if self.done() {
                        return Err(DslError::new(line, "unterminated for-loop body"));
                    }
                    body.push(self.stmt()?);
                }
                Ok(Stmt::For { header, body })
            }
            Some(Tok::Ident(k)) if k == "var" => {
                self.pos += 1;
                let name = self.ident()?;
                self.expect(&Tok::Assign)?;
                let value = self.expr()?;
                self.expect(&Tok::Semi)?;
                Ok(Stmt::Var { name, value })
            }
            Some(Tok::Ident(k)) if k == "swap" => {
                self.pos += 1;
                self.expect(&Tok::LParen)?;
                let a = self.ident()?;
                self.expect(&Tok::Comma)?;
                let b = self.ident()?;
                self.expect(&Tok::RParen)?;
                self.expect(&Tok::Semi)?;
                Ok(Stmt::Swap { a, b })
            }
            Some(Tok::Ident(k)) if k == "comm_split_shared" => {
                self.pos += 1;
                self.expect(&Tok::Semi)?;
                Ok(Stmt::CommSplitShared)
            }
            Some(Tok::Ident(k)) if k == "assert" => {
                self.pos += 1;
                self.expect(&Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(&Tok::RParen)?;
                self.expect(&Tok::Semi)?;
                Ok(Stmt::Assert { cond })
            }
            Some(Tok::Ident(_)) if self.peek2() == Some(&Tok::Assign) => {
                let name = self.ident()?;
                self.expect(&Tok::Assign)?;
                let value = self.expr()?;
                self.expect(&Tok::Semi)?;
                Ok(Stmt::Assign { name, value })
            }
            Some(other) => Err(DslError::new(line, format!("unexpected {other}"))),
            None => Err(DslError::new(line, "unexpected end of input")),
        }
    }

    fn par_loop(&mut self) -> Result<Stmt, DslError> {
        let line = self.line();
        let pragma = match self.next()? {
            Tok::Pragma(p) => p,
            _ => unreachable!("caller peeked a pragma"),
        };
        let mut loops = Vec::new();
        let mut braces = Vec::new();
        let kernel = loop {
            match self.peek() {
                Some(Tok::Ident(k)) if k == "for" => {
                    loops.push(self.loop_header()?);
                    braces.push(self.eat(&Tok::LBrace));
                }
                _ => {
                    if loops.is_empty() {
                        return Err(DslError::new(
                            line,
                            "a #pragma acc line must annotate a for-loop nest",
                        ));
                    }
                    break self.kernel_stmt()?;
                }
            }
        };
        for had_brace in braces.into_iter().rev() {
            if had_brace {
                self.expect(&Tok::RBrace)?;
            }
        }
        Ok(Stmt::ParLoop {
            pragma,
            loops,
            kernel,
        })
    }

    fn kernel_stmt(&mut self) -> Result<Kernel, DslError> {
        let line = self.line();
        let name = self.ident()?;
        match self.peek() {
            Some(Tok::LBrack) => {
                let mut subs = Vec::new();
                while self.eat(&Tok::LBrack) {
                    subs.push(self.expr()?);
                    self.expect(&Tok::RBrack)?;
                }
                self.expect(&Tok::Assign)?;
                let rhs = self.expr()?;
                self.expect(&Tok::Semi)?;
                Ok(Kernel::Assign {
                    array: name,
                    subs,
                    rhs,
                })
            }
            Some(Tok::PlusAssign) => {
                self.pos += 1;
                let rhs = self.expr()?;
                self.expect(&Tok::Semi)?;
                Ok(Kernel::Accum { var: name, rhs })
            }
            _ => Err(DslError::new(
                line,
                "a parallel loop body must be 'dst[i]... = expr;' or 'acc += expr;'",
            )),
        }
    }

    fn loop_header(&mut self) -> Result<LoopHeader, DslError> {
        let line = self.line();
        match self.next()? {
            Tok::Ident(k) if k == "for" => {}
            other => {
                return Err(DslError::new(
                    line,
                    format!("expected 'for', found {other}"),
                ))
            }
        }
        self.expect(&Tok::LParen)?;
        let var = self.ident()?;
        self.expect(&Tok::Assign)?;
        let lo = self.expr()?;
        self.expect(&Tok::Semi)?;
        let cond_var = self.ident()?;
        if cond_var != var {
            return Err(DslError::new(
                line,
                format!("loop condition must test '{var}', found '{cond_var}'"),
            ));
        }
        self.expect(&Tok::Lt)?;
        let hi = self.expr()?;
        self.expect(&Tok::Semi)?;
        // `++v`, `v++` or `v += 1`.
        match self.next()? {
            Tok::PlusPlus => {
                let v = self.ident()?;
                if v != var {
                    return Err(DslError::new(line, "loop increment must bump the index"));
                }
            }
            Tok::Ident(v) if v == var => match self.next()? {
                Tok::PlusPlus => {}
                Tok::PlusAssign => {
                    if self.next()? != Tok::Num(1.0) {
                        return Err(DslError::new(line, "only unit-stride loops are supported"));
                    }
                }
                other => {
                    return Err(DslError::new(
                        line,
                        format!("expected '++' or '+= 1', found {other}"),
                    ))
                }
            },
            other => {
                return Err(DslError::new(
                    line,
                    format!("expected loop increment, found {other}"),
                ))
            }
        }
        self.expect(&Tok::RParen)?;
        Ok(LoopHeader { var, lo, hi })
    }

    // Expression grammar, C precedence: ternary > or > and > cmp > add > mul > unary.
    fn expr(&mut self) -> Result<Expr, DslError> {
        let cond = self.or_expr()?;
        if self.eat(&Tok::Question) {
            let a = self.expr()?;
            self.expect(&Tok::Colon)?;
            let b = self.expr()?;
            Ok(Expr::Ternary(Box::new(cond), Box::new(a), Box::new(b)))
        } else {
            Ok(cond)
        }
    }

    fn or_expr(&mut self) -> Result<Expr, DslError> {
        let mut e = self.and_expr()?;
        while self.eat(&Tok::OrOr) {
            let r = self.and_expr()?;
            e = Expr::Bin(BinOp::Or, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn and_expr(&mut self) -> Result<Expr, DslError> {
        let mut e = self.cmp_expr()?;
        while self.eat(&Tok::AndAnd) {
            let r = self.cmp_expr()?;
            e = Expr::Bin(BinOp::And, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn cmp_expr(&mut self) -> Result<Expr, DslError> {
        let e = self.add_expr()?;
        let op = match self.peek() {
            Some(Tok::Lt) => Some(BinOp::Lt),
            Some(Tok::Le) => Some(BinOp::Le),
            Some(Tok::Gt) => Some(BinOp::Gt),
            Some(Tok::Ge) => Some(BinOp::Ge),
            Some(Tok::EqEq) => Some(BinOp::Eq),
            Some(Tok::Ne) => Some(BinOp::Ne),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let r = self.add_expr()?;
            Ok(Expr::Bin(op, Box::new(e), Box::new(r)))
        } else {
            Ok(e)
        }
    }

    fn add_expr(&mut self) -> Result<Expr, DslError> {
        let mut e = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => BinOp::Add,
                Some(Tok::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let r = self.mul_expr()?;
            e = Expr::Bin(op, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn mul_expr(&mut self) -> Result<Expr, DslError> {
        let mut e = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Star) => BinOp::Mul,
                Some(Tok::Slash) => BinOp::Div,
                _ => break,
            };
            self.pos += 1;
            let r = self.unary_expr()?;
            e = Expr::Bin(op, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn unary_expr(&mut self) -> Result<Expr, DslError> {
        if self.eat(&Tok::Minus) {
            Ok(Expr::Un(UnOp::Neg, Box::new(self.unary_expr()?)))
        } else if self.eat(&Tok::Not) {
            Ok(Expr::Un(UnOp::Not, Box::new(self.unary_expr()?)))
        } else {
            self.primary_expr()
        }
    }

    fn primary_expr(&mut self) -> Result<Expr, DslError> {
        let line = self.line();
        match self.next()? {
            Tok::Num(v) => Ok(Expr::Num(v)),
            Tok::LParen => {
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Tok::Ident(name) => match self.peek() {
                Some(Tok::LParen) => {
                    if !matches!(name.as_str(), "min" | "max" | "abs" | "sqrt") {
                        return Err(DslError::new(line, format!("unknown function '{name}'")));
                    }
                    self.pos += 1;
                    let mut args = Vec::new();
                    if !self.eat(&Tok::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if self.eat(&Tok::RParen) {
                                break;
                            }
                            self.expect(&Tok::Comma)?;
                        }
                    }
                    let want = if matches!(name.as_str(), "abs" | "sqrt") {
                        1
                    } else {
                        2
                    };
                    if args.len() != want {
                        return Err(DslError::new(
                            line,
                            format!("{name}() takes {want} argument(s), got {}", args.len()),
                        ));
                    }
                    Ok(Expr::Call(name, args))
                }
                Some(Tok::LBrack) => {
                    let mut subs = Vec::new();
                    while self.eat(&Tok::LBrack) {
                        subs.push(self.expr()?);
                        self.expect(&Tok::RBrack)?;
                    }
                    Ok(Expr::Index(name, subs))
                }
                _ => Ok(Expr::Var(name)),
            },
            other => Err(DslError::new(
                line,
                format!("expected an expression, found {other}"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_jacobi_shaped_program() {
        let src = "\
param n = 8;
param iters = 2;
array u[n][n] init((i < 0) ? 1.0 : 0.0);
array unew[n][n] init((i < 0) ? 1.0 : 0.0);
var res = 0.0;
for (it = 0; it < iters; ++it) {
  #pragma acc parallel loop reduction(max:res) copyin(u) copyout(unew)
  for (i = 0; i < n; ++i) {
    for (j = 1; j < n - 1; ++j) {
      unew[i][j] = 0.25 * (u[i - 1][j] + u[i + 1][j] + u[i][j - 1] + u[i][j + 1]);
    }
  }
  swap(u, unew);
}
";
        let p = parse(src).unwrap();
        assert_eq!(p.items.len(), 6);
        let Item::Stmt(Stmt::For { body, .. }) = &p.items[5] else {
            panic!("expected the sweep loop");
        };
        let Stmt::ParLoop { loops, kernel, .. } = &body[0] else {
            panic!("expected a parallel loop");
        };
        assert_eq!(loops.len(), 2);
        assert!(matches!(kernel, Kernel::Assign { array, .. } if array == "unew"));
        assert!(matches!(&body[1], Stmt::Swap { a, b } if a == "u" && b == "unew"));
    }

    #[test]
    fn pretty_print_reparses_identically() {
        let src = "\
param n = 4;
array a[n];
var sum = 0.0;
comm_split_shared;
#pragma acc parallel loop reduction(+:sum) copyin(a)
for (i = 0; i < n; ++i) {
  sum += a[i] * 2.0;
}
assert(sum >= 0.0);
";
        let p = parse(src).unwrap();
        let printed = p.pretty();
        let p2 = parse(&printed).unwrap();
        assert_eq!(p, p2, "pretty output:\n{printed}");
        assert_eq!(printed, p2.pretty());
    }

    #[test]
    fn rejects_malformed_programs() {
        for (src, needle) in [
            ("param n 64;", "expected '='"),
            ("array a;", "at least one dimension"),
            ("#pragma acc parallel loop\nx = 1;", "must annotate"),
            (
                "#pragma acc parallel loop\nfor (i = 0; j < 4; ++i) a[i] = 0.0;",
                "must test 'i'",
            ),
            (
                "#pragma acc parallel loop\nfor (i = 0; i < 4; i += 2) a[i] = 0.0;",
                "unit-stride",
            ),
            ("var x = frob(1);", "unknown function"),
            ("for (i = 0; i < 4; ++i) { x = 1;", "unterminated"),
        ] {
            let err = parse(src).unwrap_err();
            assert!(
                err.message.contains(needle),
                "{src}: expected '{needle}' in '{}'",
                err.message
            );
        }
    }
}
