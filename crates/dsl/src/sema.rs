//! Semantic analysis and lowering.
//!
//! This is the IPMACC move: classify every `#pragma acc`-annotated loop
//! nest by its subscript structure and lower it onto the runtime's
//! distributed-array operations —
//!
//! * an assignment whose right-hand side reads one *other* array at
//!   constant offsets is a **stencil** sweep (`DistArray::stencil`),
//!   preceded by the halo exchange its offsets imply;
//! * an assignment reading no neighbours is a **map**
//!   (`DistArray::map`);
//! * `acc += expr` under a `reduction` clause is a device **fold**
//!   followed by an `MPI_Allreduce` — the testmpi.cpp pattern.
//!
//! Halo depths are *inferred*: the ghost depth of an array is the
//! largest grid-mapped subscript offset any stencil reads from it, and
//! arrays connected by stencils, swaps or shared reductions are forced
//! into one congruence group (equal shape, grid and halo) so their
//! padded tiles line up.
//!
//! The flop model matches the hand-written scenarios: each `+ - * /`
//! (and builtin call) in a kernel expression costs one flop per cell, a
//! stencil residual reduction adds two (the subtract + max fold a delta
//! residual performs), and a fold loop adds one for the combine.

use std::collections::{BTreeMap, BTreeSet};

use impacc_directives::parse_acc_directive;
pub use impacc_mpi::ReduceOp;

use crate::ast::{BinOp, Expr, Item, Kernel, Program, Stmt, UnOp};
use crate::lex::DslError;

/// Coordinate spellings in `init(...)` expressions and plan dumps:
/// `i`/`j`/`k`/`l` name global dimensions 0–3.
pub const COORD_NAMES: [&str; 4] = ["i", "j", "k", "l"];

/// A fully resolved array declaration.
#[derive(Debug, Clone)]
pub struct ArrayInfo {
    /// Array name.
    pub name: String,
    /// Global extents.
    pub shape: Vec<usize>,
    /// Decomposition grid dimensionality (1 = row blocks).
    pub grid_nd: usize,
    /// Inferred ghost depth on grid-mapped dimensions.
    pub halo: usize,
    /// Initial value over global coordinates (ghosts included);
    /// `None` = all zeros.
    pub init: Option<KExpr>,
}

/// A lowered kernel expression: references are resolved, parameters are
/// constant-folded, and array reads carry their inferred offsets.
#[derive(Debug, Clone, PartialEq)]
pub enum KExpr {
    /// Constant.
    Num(f64),
    /// Global coordinate along dimension `d`.
    Coord(usize),
    /// A host scalar (host expressions only).
    Scalar(String),
    /// Read of referenced array `slot` at the given per-dim offsets.
    At(usize, Vec<isize>),
    /// Unary operation.
    Un(UnOp, Box<KExpr>),
    /// Binary operation.
    Bin(BinOp, Box<KExpr>, Box<KExpr>),
    /// `c ? a : b` (selects, never blends — bit-exact branches).
    Ternary(Box<KExpr>, Box<KExpr>, Box<KExpr>),
    /// Builtin call.
    Call(String, Vec<KExpr>),
}

impl KExpr {
    /// Render for the plan dump; `slots` names the referenced arrays.
    pub fn pretty(&self, slots: &[String]) -> String {
        match self {
            KExpr::Num(v) => format!("{v:?}"),
            KExpr::Coord(d) => COORD_NAMES.get(*d).unwrap_or(&"?").to_string(),
            KExpr::Scalar(n) => n.clone(),
            KExpr::At(s, offs) => {
                let name = slots.get(*s).map(|s| s.as_str()).unwrap_or("?");
                let offs: Vec<String> = offs.iter().map(|o| o.to_string()).collect();
                format!("{name}@[{}]", offs.join(", "))
            }
            KExpr::Un(op, e) => format!(
                "({}{})",
                match op {
                    UnOp::Neg => "-",
                    UnOp::Not => "!",
                },
                e.pretty(slots)
            ),
            KExpr::Bin(op, a, b) => {
                format!("({} {} {})", a.pretty(slots), op.sym(), b.pretty(slots))
            }
            KExpr::Ternary(c, a, b) => format!(
                "({} ? {} : {})",
                c.pretty(slots),
                a.pretty(slots),
                b.pretty(slots)
            ),
            KExpr::Call(f, args) => {
                let parts: Vec<String> = args.iter().map(|a| a.pretty(slots)).collect();
                format!("{}({})", f, parts.join(", "))
            }
        }
    }
}

/// One lowered operation. Array operands are indices into
/// [`Compiled::arrays`].
#[derive(Debug, Clone)]
pub enum Op {
    /// Split the world communicator by node and bind the device indexed
    /// by the shared-memory rank.
    CommSplitShared,
    /// Host scalar write.
    SetScalar {
        /// Scalar name.
        name: String,
        /// Value (host expression).
        value: KExpr,
    },
    /// Host-side assertion.
    Assert {
        /// Condition (nonzero = pass).
        value: KExpr,
        /// Source text for the failure message.
        text: String,
    },
    /// Sequential host loop.
    For {
        /// Counter name (visible to host expressions in the body).
        var: String,
        /// First value.
        lo: i64,
        /// Trip count.
        count: usize,
        /// Body operations.
        body: Vec<Op>,
    },
    /// Halo exchange on the inferred schedule.
    Exchange {
        /// Array to refresh.
        arr: usize,
    },
    /// One stencil sweep reading `src`, writing `dst`.
    Stencil {
        /// Stable per-source-site id (fallback residuals count sweeps
        /// per site, matching the hand-written `1/(it+1)` convention).
        site: usize,
        /// Source array.
        src: usize,
        /// Destination array.
        dst: usize,
        /// Per-dimension global margins from the loop bounds.
        margin: Vec<(usize, usize)>,
        /// Flops per cell.
        flops: f64,
        /// Cell expression (slot 0 = `src`).
        cell: KExpr,
        /// `reduction(max:var)`: allreduce the delta residual into
        /// `var` after the sweep.
        reduce: Option<String>,
    },
    /// Element-wise update of one array.
    Map {
        /// Updated array (slot 0 = its own old value).
        arr: usize,
        /// Flops per cell.
        flops: f64,
        /// Cell expression.
        cell: KExpr,
    },
    /// Device fold + `MPI_Allreduce` into a host scalar.
    Reduce {
        /// Referenced arrays (slots of `cell`, in first-read order).
        arrays: Vec<usize>,
        /// Combine operator.
        op: ReduceOp,
        /// Destination scalar.
        var: String,
        /// Flops per element.
        flops: f64,
        /// Per-element contribution.
        cell: KExpr,
    },
    /// Exchange two congruent arrays (host metadata only).
    Swap {
        /// First array.
        a: usize,
        /// Second array.
        b: usize,
    },
}

/// A compiled program: resolved parameters, congruence-grouped array
/// declarations, and the lowered operation plan.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The original source text.
    pub source: String,
    /// The parsed AST.
    pub program: Program,
    /// Parameters after overrides, in declaration order.
    pub params: Vec<(String, f64)>,
    /// Array declarations with inferred halos.
    pub arrays: Vec<ArrayInfo>,
    /// The lowered plan.
    pub plan: Vec<Op>,
    /// Number of stencil sites (distinct source-level stencil loops).
    pub stencil_sites: usize,
    /// True when the plan issues any device kernel (the executor then
    /// drains queue 1 at program end under the unified mode, exactly
    /// like the hand-written scenarios).
    pub has_device_ops: bool,
}

fn err(message: impl Into<String>) -> DslError {
    DslError::new(0, message)
}

fn const_eval(e: &Expr, env: &BTreeMap<String, f64>) -> Result<f64, DslError> {
    match e {
        Expr::Num(v) => Ok(*v),
        Expr::Var(n) => env
            .get(n)
            .copied()
            .ok_or_else(|| err(format!("'{n}' is not a compile-time constant"))),
        Expr::Index(n, _) => Err(err(format!("array '{n}' used where a constant is needed"))),
        Expr::Un(op, a) => {
            let a = const_eval(a, env)?;
            Ok(match op {
                UnOp::Neg => -a,
                UnOp::Not => {
                    if a == 0.0 {
                        1.0
                    } else {
                        0.0
                    }
                }
            })
        }
        Expr::Bin(op, a, b) => {
            let (a, b) = (const_eval(a, env)?, const_eval(b, env)?);
            Ok(apply_bin(*op, a, b))
        }
        Expr::Ternary(c, a, b) => {
            if const_eval(c, env)? != 0.0 {
                const_eval(a, env)
            } else {
                const_eval(b, env)
            }
        }
        Expr::Call(f, args) => {
            let vals: Vec<f64> = args
                .iter()
                .map(|a| const_eval(a, env))
                .collect::<Result<_, _>>()?;
            Ok(apply_call(f, &vals))
        }
    }
}

pub(crate) fn apply_bin(op: BinOp, a: f64, b: f64) -> f64 {
    let truth = |t: bool| if t { 1.0 } else { 0.0 };
    match op {
        BinOp::Add => a + b,
        BinOp::Sub => a - b,
        BinOp::Mul => a * b,
        BinOp::Div => a / b,
        BinOp::Lt => truth(a < b),
        BinOp::Le => truth(a <= b),
        BinOp::Gt => truth(a > b),
        BinOp::Ge => truth(a >= b),
        BinOp::Eq => truth(a == b),
        BinOp::Ne => truth(a != b),
        BinOp::And => truth(a != 0.0 && b != 0.0),
        BinOp::Or => truth(a != 0.0 || b != 0.0),
    }
}

pub(crate) fn apply_call(f: &str, args: &[f64]) -> f64 {
    match f {
        "min" => args[0].min(args[1]),
        "max" => args[0].max(args[1]),
        "abs" => args[0].abs(),
        "sqrt" => args[0].sqrt(),
        _ => unreachable!("parser admits only known builtins"),
    }
}

fn as_index(v: f64, what: &str) -> Result<i64, DslError> {
    if v.fract() != 0.0 || !v.is_finite() {
        return Err(err(format!("{what} must be an integer, got {v}")));
    }
    Ok(v as i64)
}

/// Count the arithmetic operations (and builtin calls) in a lowered
/// expression — the per-cell flop charge.
pub fn arith_ops(e: &KExpr) -> f64 {
    match e {
        KExpr::Num(_) | KExpr::Coord(_) | KExpr::Scalar(_) | KExpr::At(..) => 0.0,
        KExpr::Un(_, a) => arith_ops(a),
        KExpr::Bin(op, a, b) => {
            (if op.is_arith() { 1.0 } else { 0.0 }) + arith_ops(a) + arith_ops(b)
        }
        KExpr::Ternary(c, a, b) => arith_ops(c) + arith_ops(a) + arith_ops(b),
        KExpr::Call(_, args) => 1.0 + args.iter().map(arith_ops).sum::<f64>(),
    }
}

fn collect_ats(e: &KExpr, out: &mut Vec<(usize, Vec<isize>)>) {
    match e {
        KExpr::At(s, offs) => out.push((*s, offs.clone())),
        KExpr::Un(_, a) => collect_ats(a, out),
        KExpr::Bin(_, a, b) => {
            collect_ats(a, out);
            collect_ats(b, out);
        }
        KExpr::Ternary(c, a, b) => {
            collect_ats(c, out);
            collect_ats(a, out);
            collect_ats(b, out);
        }
        KExpr::Call(_, args) => {
            for a in args {
                collect_ats(a, out);
            }
        }
        _ => {}
    }
}

struct Analyzer {
    params: BTreeMap<String, f64>,
    param_order: Vec<(String, f64)>,
    array_names: Vec<String>,
    shapes: Vec<Vec<usize>>,
    grid_explicit: Vec<Option<u32>>,
    init_exprs: Vec<Option<Expr>>,
    halo_need: Vec<usize>,
    group: Vec<usize>,
    scalars: BTreeSet<String>,
    stencil_sites: usize,
}

impl Analyzer {
    fn array_idx(&self, name: &str) -> Option<usize> {
        self.array_names.iter().position(|n| n == name)
    }

    fn root(&mut self, mut i: usize) -> usize {
        while self.group[i] != i {
            self.group[i] = self.group[self.group[i]];
            i = self.group[i];
        }
        i
    }

    fn union(&mut self, a: usize, b: usize) -> Result<(), DslError> {
        if self.shapes[a] != self.shapes[b] {
            return Err(err(format!(
                "arrays '{}' and '{}' must be congruent (same shape) to share a kernel",
                self.array_names[a], self.array_names[b]
            )));
        }
        let (ra, rb) = (self.root(a), self.root(b));
        self.group[rb] = ra;
        Ok(())
    }

    fn grid_nd_of(&self, i: usize) -> usize {
        self.grid_explicit[i].unwrap_or(1) as usize
    }

    // Lower a device kernel expression; `refs` accumulates the
    // referenced arrays (slot order) and `loop_vars` are the nest
    // indices outermost-first.
    fn lower_device(
        &self,
        e: &Expr,
        loop_vars: &[String],
        refs: &mut Vec<usize>,
    ) -> Result<KExpr, DslError> {
        match e {
            Expr::Num(v) => Ok(KExpr::Num(*v)),
            Expr::Var(n) => {
                if let Some(d) = loop_vars.iter().position(|v| v == n) {
                    Ok(KExpr::Coord(d))
                } else if let Some(v) = self.params.get(n) {
                    Ok(KExpr::Num(*v))
                } else {
                    Err(err(format!(
                        "'{n}' is not visible in a device kernel (only loop indices and params are)"
                    )))
                }
            }
            Expr::Index(name, subs) => {
                let idx = self
                    .array_idx(name)
                    .ok_or_else(|| err(format!("unknown array '{name}'")))?;
                if subs.len() != loop_vars.len() || subs.len() != self.shapes[idx].len() {
                    return Err(err(format!(
                        "'{name}' has rank {}, but the loop nest is {}-deep",
                        self.shapes[idx].len(),
                        loop_vars.len()
                    )));
                }
                let mut offs = Vec::with_capacity(subs.len());
                for (d, sub) in subs.iter().enumerate() {
                    offs.push(self.subscript_offset(sub, &loop_vars[d], name)?);
                }
                let slot = match refs.iter().position(|&r| r == idx) {
                    Some(s) => s,
                    None => {
                        refs.push(idx);
                        refs.len() - 1
                    }
                };
                Ok(KExpr::At(slot, offs))
            }
            Expr::Un(op, a) => Ok(KExpr::Un(
                *op,
                Box::new(self.lower_device(a, loop_vars, refs)?),
            )),
            Expr::Bin(op, a, b) => Ok(KExpr::Bin(
                *op,
                Box::new(self.lower_device(a, loop_vars, refs)?),
                Box::new(self.lower_device(b, loop_vars, refs)?),
            )),
            Expr::Ternary(c, a, b) => Ok(KExpr::Ternary(
                Box::new(self.lower_device(c, loop_vars, refs)?),
                Box::new(self.lower_device(a, loop_vars, refs)?),
                Box::new(self.lower_device(b, loop_vars, refs)?),
            )),
            Expr::Call(f, args) => Ok(KExpr::Call(
                f.clone(),
                args.iter()
                    .map(|a| self.lower_device(a, loop_vars, refs))
                    .collect::<Result<_, _>>()?,
            )),
        }
    }

    // `v`, `v + c` or `v - c` where `c` is parameter-constant.
    fn subscript_offset(&self, sub: &Expr, var: &str, array: &str) -> Result<isize, DslError> {
        let bad = || {
            err(format!(
                "subscript of '{array}' must be '{var}', '{var} + c' or '{var} - c' \
                 with c a parameter constant"
            ))
        };
        match sub {
            Expr::Var(v) if v == var => Ok(0),
            Expr::Bin(op @ (BinOp::Add | BinOp::Sub), a, b) => match a.as_ref() {
                Expr::Var(v) if v == var => {
                    let c = const_eval(b, &self.params).map_err(|_| bad())?;
                    let c = as_index(c, "a subscript offset")?;
                    Ok(if *op == BinOp::Add { c } else { -c } as isize)
                }
                _ => Err(bad()),
            },
            _ => Err(bad()),
        }
    }

    fn lower_host(&self, e: &Expr) -> Result<KExpr, DslError> {
        match e {
            Expr::Num(v) => Ok(KExpr::Num(*v)),
            Expr::Var(n) => {
                if let Some(v) = self.params.get(n) {
                    Ok(KExpr::Num(*v))
                } else if self.scalars.contains(n) {
                    Ok(KExpr::Scalar(n.clone()))
                } else {
                    Err(err(format!("unknown scalar '{n}' in host expression")))
                }
            }
            Expr::Index(n, _) => Err(err(format!(
                "array '{n}' cannot be read in a host expression (use a reduction loop)"
            ))),
            Expr::Un(op, a) => Ok(KExpr::Un(*op, Box::new(self.lower_host(a)?))),
            Expr::Bin(op, a, b) => Ok(KExpr::Bin(
                *op,
                Box::new(self.lower_host(a)?),
                Box::new(self.lower_host(b)?),
            )),
            Expr::Ternary(c, a, b) => Ok(KExpr::Ternary(
                Box::new(self.lower_host(c)?),
                Box::new(self.lower_host(a)?),
                Box::new(self.lower_host(b)?),
            )),
            Expr::Call(f, args) => Ok(KExpr::Call(
                f.clone(),
                args.iter()
                    .map(|a| self.lower_host(a))
                    .collect::<Result<_, _>>()?,
            )),
        }
    }

    fn lower_init(&self, e: &Expr, rank: usize) -> Result<KExpr, DslError> {
        match e {
            Expr::Num(v) => Ok(KExpr::Num(*v)),
            Expr::Var(n) => {
                if let Some(d) = COORD_NAMES.iter().position(|c| c == n) {
                    if d < rank {
                        return Ok(KExpr::Coord(d));
                    }
                }
                if let Some(v) = self.params.get(n) {
                    Ok(KExpr::Num(*v))
                } else {
                    Err(err(format!(
                        "'{n}' is not visible in init() (coordinates {:?} and params are)",
                        &COORD_NAMES[..rank.min(4)]
                    )))
                }
            }
            Expr::Index(n, _) => Err(err(format!("array '{n}' cannot be read in init()"))),
            Expr::Un(op, a) => Ok(KExpr::Un(*op, Box::new(self.lower_init(a, rank)?))),
            Expr::Bin(op, a, b) => Ok(KExpr::Bin(
                *op,
                Box::new(self.lower_init(a, rank)?),
                Box::new(self.lower_init(b, rank)?),
            )),
            Expr::Ternary(c, a, b) => Ok(KExpr::Ternary(
                Box::new(self.lower_init(c, rank)?),
                Box::new(self.lower_init(a, rank)?),
                Box::new(self.lower_init(b, rank)?),
            )),
            Expr::Call(f, args) => Ok(KExpr::Call(
                f.clone(),
                args.iter()
                    .map(|a| self.lower_init(a, rank))
                    .collect::<Result<_, _>>()?,
            )),
        }
    }

    fn lower_stmt(&mut self, s: &Stmt, ops: &mut Vec<Op>) -> Result<(), DslError> {
        match s {
            Stmt::Var { name, value } => {
                if self.params.contains_key(name) || self.array_idx(name).is_some() {
                    return Err(err(format!("'{name}' is already declared")));
                }
                let value = self.lower_host(value)?;
                self.scalars.insert(name.clone());
                ops.push(Op::SetScalar {
                    name: name.clone(),
                    value,
                });
            }
            Stmt::Assign { name, value } => {
                if !self.scalars.contains(name) {
                    return Err(err(format!(
                        "assignment to undeclared scalar '{name}' (use 'var {name} = ...;')"
                    )));
                }
                ops.push(Op::SetScalar {
                    name: name.clone(),
                    value: self.lower_host(value)?,
                });
            }
            Stmt::Assert { cond } => ops.push(Op::Assert {
                value: self.lower_host(cond)?,
                text: cond.pretty(),
            }),
            Stmt::Swap { a, b } => {
                let ia = self
                    .array_idx(a)
                    .ok_or_else(|| err(format!("unknown array '{a}' in swap")))?;
                let ib = self
                    .array_idx(b)
                    .ok_or_else(|| err(format!("unknown array '{b}' in swap")))?;
                self.union(ia, ib)?;
                ops.push(Op::Swap { a: ia, b: ib });
            }
            Stmt::CommSplitShared => ops.push(Op::CommSplitShared),
            Stmt::For { header, body } => {
                let lo = as_index(const_eval(&header.lo, &self.params)?, "a loop bound")?;
                let hi = as_index(const_eval(&header.hi, &self.params)?, "a loop bound")?;
                let count = (hi - lo).max(0) as usize;
                let fresh = self.scalars.insert(header.var.clone());
                let mut inner = Vec::new();
                for stmt in body {
                    self.lower_stmt(stmt, &mut inner)?;
                }
                if fresh {
                    self.scalars.remove(&header.var);
                }
                ops.push(Op::For {
                    var: header.var.clone(),
                    lo,
                    count,
                    body: inner,
                });
            }
            Stmt::ParLoop {
                pragma,
                loops,
                kernel,
            } => self.lower_par_loop(pragma, loops, kernel, ops)?,
        }
        Ok(())
    }

    fn lower_par_loop(
        &mut self,
        pragma: &str,
        loops: &[crate::ast::LoopHeader],
        kernel: &Kernel,
        ops: &mut Vec<Op>,
    ) -> Result<(), DslError> {
        let d = parse_acc_directive(pragma).map_err(|e| err(format!("in '{pragma}': {e}")))?;
        use impacc_directives::AccKind;
        if !matches!(d.kind, AccKind::Parallel | AccKind::Kernels) {
            return Err(err(format!(
                "only 'parallel'/'kernels' constructs can annotate a loop nest: '{pragma}'"
            )));
        }
        for vl in &d.data {
            if !matches!(
                vl.clause.as_str(),
                "copy" | "copyin" | "copyout" | "create" | "present"
            ) {
                return Err(err(format!(
                    "data clause '{}' is not valid on a compute loop",
                    vl.clause
                )));
            }
            for v in &vl.vars {
                if self.array_idx(v).is_none() {
                    return Err(err(format!(
                        "data clause '{}' lists unknown array '{v}'",
                        vl.clause
                    )));
                }
            }
        }
        if d.reductions.len() > 1 {
            return Err(err("at most one reduction clause per loop"));
        }
        let reduction = match d.reductions.first() {
            Some(r) => {
                if r.vars.len() != 1 {
                    return Err(err("reduction clauses here take exactly one variable"));
                }
                let var = r.vars[0].clone();
                if !self.scalars.contains(&var) {
                    return Err(err(format!(
                        "reduction variable '{var}' must be a declared scalar"
                    )));
                }
                Some((r.op.clone(), var))
            }
            None => None,
        };

        let depth = loops.len();
        let loop_vars: Vec<String> = loops.iter().map(|h| h.var.clone()).collect();
        let mut bounds = Vec::with_capacity(depth);
        for h in loops {
            let lo = as_index(const_eval(&h.lo, &self.params)?, "a parallel loop bound")?;
            let hi = as_index(const_eval(&h.hi, &self.params)?, "a parallel loop bound")?;
            if lo < 0 || hi < lo {
                return Err(err(format!(
                    "degenerate parallel loop bounds {lo}..{hi} on '{}'",
                    h.var
                )));
            }
            bounds.push((lo as usize, hi as usize));
        }

        match kernel {
            Kernel::Assign { array, subs, rhs } => {
                let dst = self
                    .array_idx(array)
                    .ok_or_else(|| err(format!("unknown array '{array}'")))?;
                let shape = self.shapes[dst].clone();
                if shape.len() != depth {
                    return Err(err(format!(
                        "'{array}' has rank {}, but the loop nest is {depth}-deep",
                        shape.len()
                    )));
                }
                for (d, sub) in subs.iter().enumerate() {
                    if !matches!(sub, Expr::Var(v) if *v == loop_vars[d]) {
                        return Err(err(format!(
                            "left-hand subscripts of '{array}' must be the loop indices in order"
                        )));
                    }
                }
                let mut margin = Vec::with_capacity(depth);
                for (d, &(lo, hi)) in bounds.iter().enumerate() {
                    if hi > shape[d] {
                        return Err(err(format!(
                            "loop over '{}' runs to {hi}, past extent {}",
                            loop_vars[d], shape[d]
                        )));
                    }
                    margin.push((lo, shape[d] - hi));
                }
                let mut refs = Vec::new();
                let cell = self.lower_device(rhs, &loop_vars, &mut refs)?;
                let mut ats = Vec::new();
                collect_ats(&cell, &mut ats);
                let pure_map = refs.is_empty()
                    || (refs == [dst] && ats.iter().all(|(_, o)| o.iter().all(|&x| x == 0)));
                if pure_map {
                    if margin.iter().any(|&(a, b)| a != 0 || b != 0) {
                        return Err(err(format!(
                            "a map loop over '{array}' must cover the full index range"
                        )));
                    }
                    if reduction.is_some() {
                        return Err(err("a map loop cannot carry a reduction clause"));
                    }
                    ops.push(Op::Map {
                        arr: dst,
                        flops: arith_ops(&cell),
                        cell,
                    });
                    return Ok(());
                }
                if refs.len() != 1 || refs[0] == dst {
                    return Err(err(format!(
                        "a stencil writing '{array}' must read exactly one other array \
                         (found {:?})",
                        refs.iter()
                            .map(|&r| self.array_names[r].clone())
                            .collect::<Vec<_>>()
                    )));
                }
                let src = refs[0];
                self.union(src, dst)?;
                let gnd = self.grid_nd_of(src);
                let mut halo_req = 0usize;
                for (_, offs) in &ats {
                    for (dim, &o) in offs.iter().enumerate() {
                        let mag = o.unsigned_abs();
                        if dim < gnd {
                            halo_req = halo_req.max(mag);
                        } else {
                            let (mlo, mhi) = margin[dim];
                            if (o < 0 && mag > mlo) || (o > 0 && mag > mhi) {
                                return Err(err(format!(
                                    "stencil reads offset {o} on unmapped dimension {dim}, \
                                     outside the fixed margin ({mlo}, {mhi}) the loop bounds give"
                                )));
                            }
                        }
                    }
                }
                self.halo_need[src] = self.halo_need[src].max(halo_req);
                let reduce = match reduction {
                    Some((op, var)) => {
                        if op != "max" {
                            return Err(err(format!(
                                "a stencil residual reduction must be 'max', got '{op}' \
                                 (use an accumulation loop for '+')"
                            )));
                        }
                        Some(var)
                    }
                    None => None,
                };
                let flops = arith_ops(&cell) + if reduce.is_some() { 2.0 } else { 0.0 };
                let site = self.stencil_sites;
                self.stencil_sites += 1;
                ops.push(Op::Exchange { arr: src });
                ops.push(Op::Stencil {
                    site,
                    src,
                    dst,
                    margin,
                    flops,
                    cell,
                    reduce,
                });
            }
            Kernel::Accum { var, rhs } => {
                let (op_name, red_var) = reduction
                    .ok_or_else(|| err("an accumulation loop needs a reduction clause"))?;
                if red_var != *var {
                    return Err(err(format!(
                        "loop accumulates '{var}' but the reduction clause names '{red_var}'"
                    )));
                }
                let op = match op_name.as_str() {
                    "+" => ReduceOp::Sum,
                    "*" => ReduceOp::Prod,
                    "max" => ReduceOp::Max,
                    "min" => ReduceOp::Min,
                    other => return Err(err(format!("unsupported reduction operator '{other}'"))),
                };
                let mut refs = Vec::new();
                let cell = self.lower_device(rhs, &loop_vars, &mut refs)?;
                if refs.is_empty() {
                    return Err(err("a reduction loop must read at least one array"));
                }
                let mut ats = Vec::new();
                collect_ats(&cell, &mut ats);
                if ats.iter().any(|(_, o)| o.iter().any(|&x| x != 0)) {
                    return Err(err(
                        "reduction loops read arrays element-wise (no neighbour offsets)",
                    ));
                }
                let shape = self.shapes[refs[0]].clone();
                if shape.len() != depth {
                    return Err(err(format!(
                        "reduction arrays have rank {}, but the loop nest is {depth}-deep",
                        shape.len()
                    )));
                }
                for (d, &(lo, hi)) in bounds.iter().enumerate() {
                    if lo != 0 || hi != shape[d] {
                        return Err(err(
                            "a reduction loop must cover the full index range of its arrays",
                        ));
                    }
                }
                for win in refs.windows(2) {
                    self.union(win[0], win[1])?;
                }
                ops.push(Op::Reduce {
                    arrays: refs,
                    op,
                    var: var.clone(),
                    flops: arith_ops(&cell) + 1.0,
                    cell,
                });
            }
        }
        Ok(())
    }
}

fn plan_has_device_ops(ops: &[Op]) -> bool {
    ops.iter().any(|op| match op {
        Op::Stencil { .. } | Op::Map { .. } | Op::Reduce { .. } => true,
        Op::For { body, .. } => plan_has_device_ops(body),
        _ => false,
    })
}

/// Analyze and lower a parsed program. `overrides` replace `param`
/// defaults by name (unknown names are ignored, so generic job knobs
/// apply cleanly).
pub fn analyze(
    source: &str,
    program: Program,
    overrides: &[(String, f64)],
) -> Result<Compiled, DslError> {
    let mut a = Analyzer {
        params: BTreeMap::new(),
        param_order: Vec::new(),
        array_names: Vec::new(),
        shapes: Vec::new(),
        grid_explicit: Vec::new(),
        init_exprs: Vec::new(),
        halo_need: Vec::new(),
        group: Vec::new(),
        scalars: BTreeSet::new(),
        stencil_sites: 0,
    };
    let mut plan = Vec::new();
    for item in &program.items {
        match item {
            Item::Param { name, value } => {
                if a.params.contains_key(name) {
                    return Err(err(format!("duplicate param '{name}'")));
                }
                let v = match overrides.iter().rev().find(|(n, _)| n == name) {
                    Some((_, v)) => *v,
                    None => const_eval(value, &a.params)?,
                };
                a.params.insert(name.clone(), v);
                a.param_order.push((name.clone(), v));
            }
            Item::Array {
                name,
                dims,
                grid,
                init,
            } => {
                if a.array_idx(name).is_some() || a.params.contains_key(name) {
                    return Err(err(format!("duplicate declaration of '{name}'")));
                }
                let mut shape = Vec::with_capacity(dims.len());
                for d in dims {
                    let v = as_index(const_eval(d, &a.params)?, "an array extent")?;
                    if v < 1 {
                        return Err(err(format!("array '{name}' has a non-positive extent")));
                    }
                    shape.push(v as usize);
                }
                if let Some(g) = grid {
                    if *g as usize > shape.len() {
                        return Err(err(format!(
                            "array '{name}' is rank {} but asks for a {g}-d grid",
                            shape.len()
                        )));
                    }
                }
                if shape.len() > COORD_NAMES.len() {
                    return Err(err(format!(
                        "array '{name}' exceeds the supported rank {}",
                        COORD_NAMES.len()
                    )));
                }
                a.array_names.push(name.clone());
                a.shapes.push(shape);
                a.grid_explicit.push(*grid);
                a.init_exprs.push(init.clone());
                a.halo_need.push(0);
                a.group.push(a.group.len());
            }
            Item::Stmt(s) => a.lower_stmt(s, &mut plan)?,
        }
    }

    // Finalize congruence groups: everything a stencil/swap/reduction
    // ties together shares one grid and the max inferred halo.
    let n = a.array_names.len();
    let mut arrays = Vec::with_capacity(n);
    let roots: Vec<usize> = (0..n).map(|i| a.root(i)).collect();
    for i in 0..n {
        let mut halo = a.halo_need[i];
        let mut grid: Option<u32> = a.grid_explicit[i];
        for j in 0..n {
            if roots[j] == roots[i] {
                halo = halo.max(a.halo_need[j]);
                match (grid, a.grid_explicit[j]) {
                    (Some(g1), Some(g2)) if g1 != g2 => {
                        return Err(err(format!(
                            "arrays '{}' and '{}' share kernels but declare different grids",
                            a.array_names[i], a.array_names[j]
                        )));
                    }
                    (None, Some(g)) => grid = Some(g),
                    _ => {}
                }
            }
        }
        let rank = a.shapes[i].len();
        let init = match &a.init_exprs[i] {
            Some(e) => Some(a.lower_init(e, rank)?),
            None => None,
        };
        arrays.push(ArrayInfo {
            name: a.array_names[i].clone(),
            shape: a.shapes[i].clone(),
            grid_nd: grid.unwrap_or(1) as usize,
            halo,
            init,
        });
    }

    let has_device_ops = plan_has_device_ops(&plan);
    Ok(Compiled {
        source: source.to_string(),
        program,
        params: a.param_order,
        arrays,
        plan,
        stencil_sites: a.stencil_sites,
        has_device_ops,
    })
}
