//! Golden-translation gate: the canonical source and lowered plan for
//! every shipped example are pinned byte-for-byte under
//! `crates/dsl/golden/`. Any change to the pretty-printer, the flop
//! model, halo inference or the plan dump shows up here as a readable
//! diff — regenerate with `cargo run --bin impaccc -- translate <name>`
//! after deciding the change is intentional (ci.sh runs the binary and
//! diffs the same files).

use impacc_dsl::{compile, dump_plan, example};

const GOLDEN: [(&str, &str); 3] = [
    ("jacobi", include_str!("../golden/jacobi.plan")),
    ("dot", include_str!("../golden/dot.plan")),
    ("stencil2d", include_str!("../golden/stencil2d.plan")),
];

fn translate(src: &str) -> String {
    let c = compile(src).expect("shipped example compiles");
    format!(
        "== canonical source ==\n{}== lowered plan ==\n{}",
        c.program.pretty(),
        dump_plan(&c)
    )
}

#[test]
fn translations_match_their_golden_snapshots() {
    for (name, want) in GOLDEN {
        let got = translate(example(name).expect("example exists"));
        assert_eq!(
            got, want,
            "{name}: translation drifted from crates/dsl/golden/{name}.plan \
             (regenerate via `cargo run --bin impaccc -- translate {name}` if intended)"
        );
    }
}

#[test]
fn translation_is_byte_stable_across_compiles() {
    for (name, _) in GOLDEN {
        let src = example(name).unwrap();
        assert_eq!(translate(src), translate(src), "{name}: unstable output");
    }
}
