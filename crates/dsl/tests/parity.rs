//! The compiler's acceptance bar: a DSL program lowered to the same
//! operations as a hand-written app is indistinguishable from it in the
//! simulator — bit-identical residual history, byte-identical engine
//! metrics (the array layer's own counters stripped), the same virtual
//! end time and the same dispatch count — in all three runtime modes
//! and across conservative-engine parallelism degrees.

use std::collections::BTreeMap;
use std::sync::Arc;

use impacc_apps::{run_jacobi_probed, JacobiParams};
use impacc_array::scenarios::{jacobi_array_task, ArrayJacobiParams};
use impacc_array::ResProbe;
use impacc_core::{Launch, RunSummary, RuntimeOptions, TaskCtx};
use impacc_dsl::{compile_with_overrides, example, interpret_serial, run_program, Compiled};
use impacc_machine::presets;
use parking_lot::Mutex;

fn modes() -> Vec<(&'static str, RuntimeOptions)> {
    let mut split = RuntimeOptions::impacc();
    split.unified_queue = false;
    vec![
        ("impacc-unified", RuntimeOptions::impacc()),
        ("impacc-split", split),
        ("baseline", RuntimeOptions::baseline()),
    ]
}

fn stripped(s: &RunSummary) -> BTreeMap<&'static str, u64> {
    s.report
        .metrics
        .iter()
        .filter(|(k, _)| !k.starts_with("array_"))
        .map(|(k, v)| (*k, *v))
        .collect()
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn jacobi_compiled(n: usize, iters: usize) -> Arc<Compiled> {
    Arc::new(
        compile_with_overrides(
            example("jacobi").unwrap(),
            &[
                ("n".to_string(), n as f64),
                ("iters".to_string(), iters as f64),
            ],
        )
        .expect("jacobi.acc compiles"),
    )
}

fn launch_dsl(
    spec: impacc_machine::MachineSpec,
    opts: RuntimeOptions,
    parallelism: Option<usize>,
    c: Arc<Compiled>,
    probe: ResProbe,
) -> RunSummary {
    let mut l = Launch::new(spec, opts);
    if let Some(p) = parallelism {
        l = l.parallelism(p);
    }
    l.run(move |tc: &TaskCtx| {
        run_program(tc, &c, Some(&probe), false);
    })
    .expect("dsl run")
}

/// Compiled `jacobi.acc` vs the hand-written MPI+OpenACC jacobi app:
/// bit-and-tick identical in all three runtime modes.
#[test]
fn dsl_jacobi_matches_handwritten_in_all_modes() {
    let c = jacobi_compiled(24, 6);
    for (name, opts) in modes() {
        let hand_probe = ResProbe::new();
        let hand = run_jacobi_probed(
            presets::test_cluster(2, 2),
            opts,
            None,
            None,
            true,
            JacobiParams {
                n: 24,
                iters: 6,
                verify: false,
            },
            hand_probe.clone(),
        )
        .expect("hand-written jacobi");

        let dsl_probe = ResProbe::new();
        let dsl = launch_dsl(
            presets::test_cluster(2, 2),
            opts,
            None,
            c.clone(),
            dsl_probe.clone(),
        );

        let h = hand_probe.take();
        let d = dsl_probe.take();
        assert!(!h.is_empty(), "{name}: probe captured no residuals");
        assert_eq!(bits(&h), bits(&d), "{name}: residual history bits");
        assert_eq!(stripped(&hand), stripped(&dsl), "{name}: engine metrics");
        assert_eq!(
            hand.report.end_time, dsl.report.end_time,
            "{name}: virtual end time"
        );
        assert_eq!(
            hand.report.events, dsl.report.events,
            "{name}: dispatch count"
        );
    }
}

/// Same bar against the array-API scenario (the layer the DSL lowers
/// through), and bit-identical across `IMPACC_PARALLEL`-style engine
/// parallelism degrees 1 and 4, pinned via the typed builder.
#[test]
fn dsl_jacobi_matches_array_scenario_across_parallelism() {
    let c = jacobi_compiled(32, 5);
    for degree in [1usize, 4] {
        let arr_probe = ResProbe::new();
        let probe_in = arr_probe.clone();
        let arr = Launch::new(presets::test_cluster(2, 2), RuntimeOptions::impacc())
            .parallelism(degree)
            .run(move |tc| {
                jacobi_array_task(
                    tc,
                    &ArrayJacobiParams {
                        n: 32,
                        iters: 5,
                        verify: false,
                    },
                    Some(&probe_in),
                )
            })
            .expect("array jacobi");

        let dsl_probe = ResProbe::new();
        let dsl = launch_dsl(
            presets::test_cluster(2, 2),
            RuntimeOptions::impacc(),
            Some(degree),
            c.clone(),
            dsl_probe.clone(),
        );

        assert_eq!(
            bits(&arr_probe.take()),
            bits(&dsl_probe.take()),
            "degree {degree}: residual bits"
        );
        assert_eq!(
            stripped(&arr),
            stripped(&dsl),
            "degree {degree}: engine metrics"
        );
        assert_eq!(
            arr.report.end_time, dsl.report.end_time,
            "degree {degree}: virtual end time"
        );
        assert_eq!(
            arr.report.events, dsl.report.events,
            "degree {degree}: dispatch count"
        );
    }
}

/// The gathered distributed field matches the serial interpreter bit
/// for bit, and the reduced residual history matches on every rank
/// count tried.
#[test]
fn dsl_jacobi_field_matches_serial_oracle() {
    let c = jacobi_compiled(20, 4);
    let serial = interpret_serial(&c).expect("serial replay");
    for ranks in [(1usize, 1usize), (1, 3), (2, 2)] {
        let probe = ResProbe::new();
        let (cc, pp) = (c.clone(), probe.clone());
        let fields: Arc<Mutex<BTreeMap<String, Vec<f64>>>> = Arc::new(Mutex::new(BTreeMap::new()));
        let sink = fields.clone();
        Launch::new(
            presets::test_cluster(ranks.0, ranks.1),
            RuntimeOptions::impacc(),
        )
        .run(move |tc| {
            let out = run_program(tc, &cc, Some(&pp), true);
            if tc.rank() == 0 {
                *sink.lock() = out.fields;
            }
        })
        .expect("dsl run");
        assert_eq!(
            bits(&probe.take()),
            bits(&serial.residuals),
            "{ranks:?}: residuals vs oracle"
        );
        let fields = fields.lock();
        let got = fields.get("u").expect("gathered u");
        assert_eq!(
            bits(got),
            bits(&serial.fields["u"]),
            "{ranks:?}: field u vs oracle"
        );
    }
}

/// The testmpi.cpp-pattern program: comm split by node, device binding
/// by shared-memory rank, reduction(+:sum) → allreduce. The sum is
/// exactly n² on every launch geometry, and the stencil2d example
/// (deep inferred halo + map epilogue) holds to its oracle too.
#[test]
fn dot_and_stencil2d_run_end_to_end() {
    for (nodes, gpus) in [(1usize, 1usize), (1, 4), (2, 3)] {
        let c = Arc::new(
            compile_with_overrides(example("dot").unwrap(), &[("n".to_string(), 1024.0)])
                .expect("dot.acc compiles"),
        );
        let cc = c.clone();
        let sums: Arc<Mutex<Vec<f64>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = sums.clone();
        Launch::new(presets::test_cluster(nodes, gpus), RuntimeOptions::impacc())
            .run(move |tc| {
                let out = run_program(tc, &cc, None, false);
                sink.lock().push(out.scalars["sum"]);
            })
            .expect("dot run");
        let sums = sums.lock();
        assert_eq!(sums.len(), nodes * gpus, "one result per rank");
        for s in sums.iter() {
            assert_eq!(*s, 1024.0 * 1024.0, "({nodes},{gpus}): dot sum");
        }
    }

    let c = Arc::new(compile_with_overrides(example("stencil2d").unwrap(), &[]).unwrap());
    let serial = interpret_serial(&c).expect("stencil2d serial");
    let probe = ResProbe::new();
    let (cc, pp) = (c.clone(), probe.clone());
    let fields: Arc<Mutex<BTreeMap<String, Vec<f64>>>> = Arc::new(Mutex::new(BTreeMap::new()));
    let sink = fields.clone();
    Launch::new(presets::test_cluster(2, 2), RuntimeOptions::impacc())
        .run(move |tc| {
            let out = run_program(tc, &cc, Some(&pp), true);
            if tc.rank() == 0 {
                *sink.lock() = out.fields;
            }
        })
        .expect("stencil2d run");
    assert_eq!(
        bits(&probe.take()),
        bits(&serial.residuals),
        "stencil2d residuals vs oracle"
    );
    let fields = fields.lock();
    assert_eq!(
        bits(fields.get("u").expect("gathered u")),
        bits(&serial.fields["u"]),
        "stencil2d field u vs oracle (stencil sweeps + clamp map)"
    );
}
