//! Property: the pretty-printer is a section of the parser — for any
//! well-formed AST, `parse(program.pretty())` returns an identical AST,
//! and the printed form is already the parser's fixed point (printing
//! the reparse yields the same bytes). This is what lets CI pin golden
//! translations and lets the serve layer key caches on canonical
//! source: the canonical form is unique.
//!
//! Generated programs exercise the whole surface grammar — every
//! operator at every precedence level, ternaries, builtin calls,
//! subscripted reads, `param`/`array` items with `grid`/`init`
//! clauses, nested host loops, pragma-annotated nests with both kernel
//! shapes, and statement forms down to `comm_split_shared;`. They are
//! *syntactically* valid but usually semantically meaningless; only
//! the parser is on trial here.

use impacc_dsl::ast::{BinOp, Expr, Item, Kernel, LoopHeader, Program, Stmt, UnOp};
use impacc_dsl::parse::parse;
use proptest::prelude::*;

/// Identifiers that are safe everywhere: not statement keywords, not
/// array clauses (`grid`/`init`), not builtin function names.
const NAMES: [&str; 8] = ["n", "u", "w2", "alpha", "res", "acc_v", "x9", "tmp"];

/// Loop index variables (kept distinct from value names for clarity;
/// the parser does not care).
const IVARS: [&str; 4] = ["i", "j", "k", "it"];

/// Verbatim pragma lines (the lexer stores them trimmed; semantic
/// validity is not the parser's concern).
const PRAGMAS: [&str; 3] = [
    "#pragma acc parallel loop",
    "#pragma acc parallel loop copy(u, w2) reduction(max:res)",
    "#pragma acc parallel loop copyin(u) copyout(w2) reduction(+:res)",
];

/// Numbers whose `{:?}` rendering the lexer reads back exactly.
fn num() -> BoxedStrategy<Expr> {
    prop_oneof![
        (0u32..64).prop_map(|v| Expr::Num(v as f64)),
        (0u32..256).prop_map(|v| Expr::Num(v as f64 * 0.125)),
    ]
    .boxed()
}

fn name() -> BoxedStrategy<String> {
    (0usize..NAMES.len())
        .prop_map(|i| NAMES[i].to_string())
        .boxed()
}

fn ivar() -> BoxedStrategy<String> {
    (0usize..IVARS.len())
        .prop_map(|i| IVARS[i].to_string())
        .boxed()
}

fn bin_op() -> BoxedStrategy<BinOp> {
    (0usize..12)
        .prop_map(|i| {
            [
                BinOp::Add,
                BinOp::Sub,
                BinOp::Mul,
                BinOp::Div,
                BinOp::Lt,
                BinOp::Le,
                BinOp::Gt,
                BinOp::Ge,
                BinOp::Eq,
                BinOp::Ne,
                BinOp::And,
                BinOp::Or,
            ][i]
        })
        .boxed()
}

/// An expression of nesting depth at most `depth`.
fn expr(depth: u32) -> BoxedStrategy<Expr> {
    if depth == 0 {
        return prop_oneof![num(), name().prop_map(Expr::Var)].boxed();
    }
    let sub = move || expr(depth - 1);
    prop_oneof![
        num(),
        name().prop_map(Expr::Var),
        (name(), prop::collection::vec(sub(), 1..3)).prop_map(|(n, subs)| Expr::Index(n, subs)),
        (sub(), any::<bool>())
            .prop_map(|(e, neg)| Expr::Un(if neg { UnOp::Neg } else { UnOp::Not }, Box::new(e))),
        (bin_op(), sub(), sub()).prop_map(|(op, a, b)| Expr::Bin(op, Box::new(a), Box::new(b))),
        (sub(), sub(), sub()).prop_map(|(c, a, b)| Expr::Ternary(
            Box::new(c),
            Box::new(a),
            Box::new(b)
        )),
        (sub(), sub(), 0usize..2)
            .prop_map(|(a, b, f)| Expr::Call(["min", "max"][f].to_string(), vec![a, b])),
        (sub(), any::<bool>())
            .prop_map(|(a, f)| Expr::Call(if f { "abs" } else { "sqrt" }.to_string(), vec![a])),
    ]
    .boxed()
}

fn loop_header() -> BoxedStrategy<LoopHeader> {
    (ivar(), expr(1), expr(1))
        .prop_map(|(var, lo, hi)| LoopHeader { var, lo, hi })
        .boxed()
}

fn kernel() -> BoxedStrategy<Kernel> {
    prop_oneof![
        (name(), prop::collection::vec(expr(1), 1..3), expr(2))
            .prop_map(|(array, subs, rhs)| Kernel::Assign { array, subs, rhs }),
        (name(), expr(2)).prop_map(|(var, rhs)| Kernel::Accum { var, rhs }),
    ]
    .boxed()
}

/// A statement; `depth` bounds `for`-body nesting.
fn stmt(depth: u32) -> BoxedStrategy<Stmt> {
    let leaf = prop_oneof![
        (name(), expr(2)).prop_map(|(name, value)| Stmt::Var { name, value }),
        (name(), expr(2)).prop_map(|(name, value)| Stmt::Assign { name, value }),
        expr(2).prop_map(|cond| Stmt::Assert { cond }),
        (name(), name()).prop_map(|(a, b)| Stmt::Swap { a, b }),
        (0usize..1).prop_map(|_| Stmt::CommSplitShared),
        (
            0usize..PRAGMAS.len(),
            prop::collection::vec(loop_header(), 1..3),
            kernel()
        )
            .prop_map(|(p, loops, kernel)| Stmt::ParLoop {
                pragma: PRAGMAS[p].to_string(),
                loops,
                kernel,
            }),
    ]
    .boxed();
    if depth == 0 {
        return leaf;
    }
    prop_oneof![
        leaf,
        (loop_header(), prop::collection::vec(stmt(depth - 1), 0..3))
            .prop_map(|(header, body)| Stmt::For { header, body }),
    ]
    .boxed()
}

fn item() -> BoxedStrategy<Item> {
    prop_oneof![
        (name(), expr(1)).prop_map(|(name, value)| Item::Param { name, value }),
        (
            name(),
            prop::collection::vec(expr(1), 1..3),
            0u32..3,
            expr(1),
            any::<bool>()
        )
            .prop_map(|(name, dims, grid, init, has_init)| Item::Array {
                name,
                dims,
                grid: if grid == 0 { None } else { Some(grid) },
                init: has_init.then_some(init),
            }),
        stmt(2).prop_map(Item::Stmt),
    ]
    .boxed()
}

fn program() -> BoxedStrategy<Program> {
    prop::collection::vec(item(), 0..8)
        .prop_map(|items| Program { items })
        .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// parse ∘ pretty = id on ASTs, and pretty is idempotent on text.
    fn pretty_then_parse_is_identity(p in program()) {
        let printed = p.pretty();
        let reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("canonical form must reparse: {e}\n---\n{printed}"));
        prop_assert_eq!(&reparsed, &p, "AST drift through pretty-print:\n{}", printed);
        prop_assert_eq!(reparsed.pretty(), printed, "canonical form is not a fixed point");
    }
}
