//! # impacc-flight — the always-on flight recorder
//!
//! Post-hoc observability (`impacc-obs` traces, `impacc-prof` reports)
//! only exists when tracing was switched on *before* the interesting run.
//! This crate closes that gap the way an aircraft flight recorder does:
//!
//! * [`FlightRecorder`] — per-actor bounded ring buffers retaining the
//!   last N spans of every actor even when full tracing is off. The hot
//!   path is contention-free in practice: each engine actor is an OS
//!   thread that emits spans for exactly one actor name, so a per-thread
//!   single-slot cache resolves the actor's ring without touching the
//!   shared registry, and the per-ring lock is only ever taken by its
//!   owning thread plus the (rare) dump path. Attribute closures are
//!   evaluated only for attribution-relevant kinds (faults, retries,
//!   markers, anomalies) — bulk copy/kernel/stall spans are retained
//!   attribute-free, which is what bounds the overhead.
//! * [`Trigger`]-driven dumps — on panic, job failure, chaos fault burst,
//!   watchdog anomaly or explicit request, [`FlightRecorder::dump`]
//!   drains the rings into a [`FlightDump`] whose JSON rendering is
//!   schema-versioned, Chrome-trace loadable (`traceEvents` body) and
//!   byte-identical for the same seed + trigger at every
//!   `IMPACC_PARALLEL` worker count (rings are drained in sorted actor
//!   order, per-actor emission order — the same canonical order
//!   `Recorder::canonicalize` uses).
//! * [`watchdog`] — rule-based anomaly detection over the engine's
//!   counter vocabulary (retry storms, fault bursts, device loss,
//!   goodput collapse, queue backlog growth, horizon-stall ratio).
//! * [`tee`] — compose the flight sink with a full-trace recorder so
//!   always-on recording never displaces explicit tracing; attribute
//!   closures still run at most once.
//!
//! Recording never advances virtual time and a disabled recorder
//! (capacity 0 or [`FlightRecorder::set_enabled`]`(false)`) is zero-cost:
//! `enabled()` gates every path before any allocation.

#![warn(missing_docs)]

pub mod watchdog;

pub use watchdog::{Anomaly, Watchdog};

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use impacc_obs::{chrome, json, EventKind, Span};
use impacc_vtime::{SimTime, SpanSink};
use parking_lot::Mutex;

/// Default per-actor ring capacity: the "last moments" window. 256 spans
/// per actor is enough to attribute a fault cascade while keeping a
/// 1024-actor run under ~10 MB of retained telemetry.
pub const DEFAULT_RING_CAPACITY: usize = 256;

/// Should this span kind's attribute closure be evaluated on the flight
/// hot path? Bulk kinds (copies, kernels, stalls, queue waits) are
/// retained without attributes — evaluating their closures would put
/// string formatting on every event and blow the overhead budget. The
/// rare, attribution-critical kinds keep full detail.
fn keep_attrs(kind: EventKind) -> bool {
    matches!(
        kind,
        EventKind::Fault | EventKind::Retry | EventKind::Marker | EventKind::Anomaly
    )
}

/// Why a flight dump was taken.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Trigger {
    /// The run aborted: engine panic or poisoned simulation.
    Panic(String),
    /// A serve job returned an error result.
    JobFailed(String),
    /// Chaos fault injections crossed the burst threshold.
    FaultBurst {
        /// Faults observed by this recorder.
        fired: u64,
        /// The configured burst threshold.
        threshold: u64,
    },
    /// A watchdog rule fired; carries the rule name.
    Anomaly(String),
    /// Explicitly requested (tooling, tests, operator).
    Request,
}

impl Trigger {
    /// Stable wire label for the trigger class.
    pub fn label(&self) -> &'static str {
        match self {
            Trigger::Panic(_) => "panic",
            Trigger::JobFailed(_) => "job_failed",
            Trigger::FaultBurst { .. } => "fault_burst",
            Trigger::Anomaly(_) => "anomaly",
            Trigger::Request => "request",
        }
    }

    /// Human detail accompanying the label.
    pub fn detail(&self) -> String {
        match self {
            Trigger::Panic(msg) => msg.clone(),
            Trigger::JobFailed(why) => why.clone(),
            Trigger::FaultBurst { fired, threshold } => {
                format!("{fired} faults fired (threshold {threshold})")
            }
            Trigger::Anomaly(rule) => rule.clone(),
            Trigger::Request => String::new(),
        }
    }
}

/// One retained ring entry. The actor name lives in the registry key, not
/// in every entry.
struct FlightEvent {
    kind: EventKind,
    t0: SimTime,
    t1: SimTime,
    attrs: Vec<(&'static str, String)>,
}

/// Fixed-capacity overwrite-oldest buffer.
struct RingBuf {
    cap: usize,
    buf: Vec<FlightEvent>,
    /// Oldest entry (= next overwrite position) once the buffer is full.
    head: usize,
}

impl RingBuf {
    fn new(cap: usize) -> RingBuf {
        RingBuf {
            cap,
            buf: Vec::new(),
            head: 0,
        }
    }

    /// Push, returning `true` when an old entry was overwritten.
    fn push(&mut self, ev: FlightEvent) -> bool {
        if self.buf.len() < self.cap {
            self.buf.push(ev);
            false
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.cap;
            true
        }
    }

    fn iter_oldest_first(&self) -> impl Iterator<Item = &FlightEvent> {
        self.buf[self.head..]
            .iter()
            .chain(self.buf[..self.head].iter())
    }
}

struct ActorRing {
    ring: Mutex<RingBuf>,
    dropped: AtomicU64,
}

struct Inner {
    /// Process-unique recorder identity, so the thread-local ring cache
    /// can never serve a ring from a freed recorder that happened to be
    /// reallocated at the same address.
    id: u64,
    cap: usize,
    enabled: AtomicBool,
    rings: Mutex<BTreeMap<String, Arc<ActorRing>>>,
    /// Highest span end seen — "current vtime" for live introspection.
    last_vtime_ps: AtomicU64,
    /// Fault-kind spans observed (the chaos burst trigger input).
    fault_fires: AtomicU64,
}

static NEXT_RECORDER_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Single-slot (recorder, actor) → ring cache. Engine actors are OS
    /// threads bound to one actor name, so this hits ~always after the
    /// first span.
    static RING_CACHE: RefCell<Option<(u64, String, Arc<ActorRing>)>> =
        const { RefCell::new(None) };
}

/// A shared handle to the per-actor flight rings. Cloning is cheap (one
/// `Arc`); all clones observe the same state. Attach to a run with
/// [`FlightRecorder::sink`] (optionally composed with a full-trace
/// recorder via [`tee`]) — `impacc_core::Launch` does this automatically
/// unless `IMPACC_FLIGHT=0`.
#[derive(Clone)]
pub struct FlightRecorder {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.inner.cap)
            .field("enabled", &self.enabled())
            .field("actors", &self.inner.rings.lock().len())
            .finish()
    }
}

impl Default for FlightRecorder {
    fn default() -> FlightRecorder {
        FlightRecorder::new()
    }
}

impl FlightRecorder {
    /// A recorder retaining at most `capacity` spans per actor (oldest
    /// overwritten first). Capacity 0 builds a permanently disabled,
    /// zero-cost recorder.
    pub fn with_capacity(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            inner: Arc::new(Inner {
                id: NEXT_RECORDER_ID.fetch_add(1, Ordering::Relaxed),
                cap: capacity,
                enabled: AtomicBool::new(capacity > 0),
                rings: Mutex::new(BTreeMap::new()),
                last_vtime_ps: AtomicU64::new(0),
                fault_fires: AtomicU64::new(0),
            }),
        }
    }

    /// A recorder with [`DEFAULT_RING_CAPACITY`].
    pub fn new() -> FlightRecorder {
        FlightRecorder::with_capacity(DEFAULT_RING_CAPACITY)
    }

    /// A permanently disabled, zero-cost recorder.
    pub fn disabled() -> FlightRecorder {
        FlightRecorder::with_capacity(0)
    }

    /// Is recording currently on?
    pub fn enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Pause/resume recording. Ignored on a capacity-0 recorder.
    pub fn set_enabled(&self, on: bool) {
        if self.inner.cap > 0 {
            self.inner.enabled.store(on, Ordering::Relaxed);
        }
    }

    /// This recorder as an engine span sink.
    pub fn sink(&self) -> Arc<dyn SpanSink> {
        Arc::new(self.clone())
    }

    /// Highest span-end virtual time observed so far (0 before any span).
    pub fn last_vtime(&self) -> SimTime {
        SimTime(self.inner.last_vtime_ps.load(Ordering::Relaxed))
    }

    /// Fault-kind spans observed — the chaos burst-trigger input.
    pub fn fault_fires(&self) -> u64 {
        self.inner.fault_fires.load(Ordering::Relaxed)
    }

    /// Spans overwritten across all rings (expected in steady state — the
    /// rings are *supposed* to forget old history).
    pub fn dropped_total(&self) -> u64 {
        self.inner
            .rings
            .lock()
            .values()
            .map(|r| r.dropped.load(Ordering::Relaxed))
            .sum()
    }

    /// Number of actors with a ring.
    pub fn actor_count(&self) -> usize {
        self.inner.rings.lock().len()
    }

    fn ring_for(&self, actor: &str) -> Arc<ActorRing> {
        RING_CACHE.with(|c| {
            let mut c = c.borrow_mut();
            if let Some((id, name, ring)) = c.as_ref() {
                if *id == self.inner.id && name == actor {
                    return ring.clone();
                }
            }
            let ring = self
                .inner
                .rings
                .lock()
                .entry(actor.to_string())
                .or_insert_with(|| {
                    Arc::new(ActorRing {
                        ring: Mutex::new(RingBuf::new(self.inner.cap)),
                        dropped: AtomicU64::new(0),
                    })
                })
                .clone();
            *c = Some((self.inner.id, actor.to_string(), ring.clone()));
            ring
        })
    }

    fn push(
        &self,
        actor: &str,
        kind: EventKind,
        t0: SimTime,
        t1: SimTime,
        attrs: Vec<(&'static str, String)>,
    ) {
        if kind == EventKind::Fault {
            self.inner.fault_fires.fetch_add(1, Ordering::Relaxed);
        }
        self.inner.last_vtime_ps.fetch_max(t1.0, Ordering::Relaxed);
        let ring = self.ring_for(actor);
        let overwrote = ring.ring.lock().push(FlightEvent {
            kind,
            t0,
            t1,
            attrs,
        });
        if overwrote {
            ring.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record a span directly (bypassing the label-parsing sink path).
    /// Used by the watchdog to append structured anomaly events.
    pub fn record_span(&self, span: Span) {
        if !self.enabled() {
            return;
        }
        self.push(&span.actor, span.kind, span.t0, span.t1, span.attrs);
    }

    /// Canonical drain: every retained span, actors in sorted order,
    /// per-actor emission order preserved — schedule-independent, so the
    /// same run yields the same snapshot at every `IMPACC_PARALLEL` count.
    pub fn snapshot(&self) -> Vec<Span> {
        let rings = self.inner.rings.lock();
        let mut out = Vec::new();
        for (actor, ring) in rings.iter() {
            let rb = ring.ring.lock();
            for ev in rb.iter_oldest_first() {
                out.push(Span {
                    actor: actor.clone(),
                    kind: ev.kind,
                    t0: ev.t0,
                    t1: ev.t1,
                    attrs: ev.attrs.clone(),
                });
            }
        }
        out
    }

    /// Drop all retained spans and tallies (the enable state is kept).
    pub fn clear(&self) {
        self.inner.rings.lock().clear();
        self.inner.last_vtime_ps.store(0, Ordering::Relaxed);
        self.inner.fault_fires.store(0, Ordering::Relaxed);
    }

    /// Run the critical-path profiler over the retained window. Flight
    /// rings keep no causal edges, so blame falls back to per-actor
    /// continuity — coarse, but enough to rank where the final moments
    /// went.
    pub fn analyze(&self) -> impacc_prof::Report {
        impacc_prof::analyze(&self.snapshot(), &[])
    }

    /// Drain the rings into a dump describing why (`trigger`) and what
    /// (`counters`, `anomalies`) — pure data; call [`FlightDump::write`]
    /// to persist it.
    pub fn dump<K: Into<String>>(
        &self,
        job: &str,
        trigger: Trigger,
        counters: impl IntoIterator<Item = (K, u64)>,
        anomalies: &[Anomaly],
    ) -> FlightDump {
        let rings = self.inner.rings.lock();
        let mut spans = Vec::new();
        let mut dropped = Vec::new();
        for (actor, ring) in rings.iter() {
            let d = ring.dropped.load(Ordering::Relaxed);
            if d > 0 {
                dropped.push((actor.clone(), d));
            }
            let rb = ring.ring.lock();
            for ev in rb.iter_oldest_first() {
                spans.push(Span {
                    actor: actor.clone(),
                    kind: ev.kind,
                    t0: ev.t0,
                    t1: ev.t1,
                    attrs: ev.attrs.clone(),
                });
            }
        }
        drop(rings);
        FlightDump {
            job: job.to_string(),
            campaign: String::new(),
            trigger,
            end_ps: self.inner.last_vtime_ps.load(Ordering::Relaxed),
            spans,
            dropped,
            counters: counters.into_iter().map(|(k, v)| (k.into(), v)).collect(),
            anomalies: anomalies.to_vec(),
        }
    }
}

impl SpanSink for FlightRecorder {
    fn enabled(&self) -> bool {
        FlightRecorder::enabled(self)
    }

    fn span(
        &self,
        actor: &str,
        label: &'static str,
        t0: SimTime,
        t1: SimTime,
        attrs: &mut dyn FnMut() -> Vec<(&'static str, String)>,
    ) {
        if !self.enabled() {
            return;
        }
        // Same label vocabulary as the full recorder: unknown labels
        // degrade to markers carrying the original label. Bulk kinds skip
        // their attribute closures entirely (see `keep_attrs`).
        let (kind, attrs) = match EventKind::parse(label) {
            Some(k) if keep_attrs(k) => (k, attrs()),
            Some(k) => (k, Vec::new()),
            None => {
                let mut a = attrs();
                a.push(("label", label.to_string()));
                (EventKind::Marker, a)
            }
        };
        self.push(actor, kind, t0, t1, attrs);
    }

    // Causal edges are deliberately not retained: the flight window is a
    // bounded "last moments" record, and edge retention would double its
    // cost for attribution the dump path doesn't need. The default no-op
    // edge() applies.
}

/// Compose two sinks into one: spans and edges go to both, attribute
/// closures still run at most once (the first enabled side materializes
/// them; the other receives a clone). `Launch` uses this to keep the
/// always-on flight recorder from displacing an explicit trace recorder.
pub fn tee(a: Arc<dyn SpanSink>, b: Arc<dyn SpanSink>) -> Arc<dyn SpanSink> {
    Arc::new(Tee { a, b })
}

struct Tee {
    a: Arc<dyn SpanSink>,
    b: Arc<dyn SpanSink>,
}

impl SpanSink for Tee {
    fn enabled(&self) -> bool {
        self.a.enabled() || self.b.enabled()
    }

    fn span(
        &self,
        actor: &str,
        label: &'static str,
        t0: SimTime,
        t1: SimTime,
        attrs: &mut dyn FnMut() -> Vec<(&'static str, String)>,
    ) {
        let mut cache: Option<Vec<(&'static str, String)>> = None;
        if self.a.enabled() {
            self.a.span(actor, label, t0, t1, &mut || {
                cache.get_or_insert_with(&mut *attrs).clone()
            });
        }
        if self.b.enabled() {
            self.b.span(actor, label, t0, t1, &mut || {
                cache.get_or_insert_with(&mut *attrs).clone()
            });
        }
    }

    fn edge(
        &self,
        kind: &'static str,
        src_actor: &str,
        src_t: SimTime,
        dst_actor: &str,
        dst_t: SimTime,
        attrs: &mut dyn FnMut() -> Vec<(&'static str, String)>,
    ) {
        let mut cache: Option<Vec<(&'static str, String)>> = None;
        if self.a.enabled() {
            self.a
                .edge(kind, src_actor, src_t, dst_actor, dst_t, &mut || {
                    cache.get_or_insert_with(&mut *attrs).clone()
                });
        }
        if self.b.enabled() {
            self.b
                .edge(kind, src_actor, src_t, dst_actor, dst_t, &mut || {
                    cache.get_or_insert_with(&mut *attrs).clone()
                });
        }
    }
}

/// A drained flight window plus the context that triggered it. Render
/// with [`FlightDump::to_json`] (deterministic: same retained window +
/// same trigger ⇒ identical bytes) or feed [`FlightDump::analyze`].
#[derive(Clone, Debug)]
pub struct FlightDump {
    /// Job/run label; becomes the `FLIGHT_<job>.json` file name.
    pub job: String,
    /// Owning campaign id, when the job came from a campaign ("" if not).
    pub campaign: String,
    /// Why the dump was taken.
    pub trigger: Trigger,
    /// Highest virtual time the recorder observed, in picoseconds.
    pub end_ps: u64,
    /// The retained window: actors sorted, per-actor emission order.
    pub spans: Vec<Span>,
    /// Per-actor overwrite tallies (actors with none are omitted).
    pub dropped: Vec<(String, u64)>,
    /// Counter snapshot supplied by the caller (engine metrics).
    pub counters: BTreeMap<String, u64>,
    /// Watchdog findings accompanying the dump.
    pub anomalies: Vec<Anomaly>,
}

impl FlightDump {
    /// Attach the owning campaign id.
    pub fn with_campaign(mut self, campaign: &str) -> FlightDump {
        self.campaign = campaign.to_string();
        self
    }

    /// Total spans overwritten before the dump.
    pub fn events_dropped(&self) -> u64 {
        self.dropped.iter().map(|(_, d)| d).sum()
    }

    /// The dump's file name: `FLIGHT_<job>.json` with path-hostile
    /// characters in the label replaced by `_`.
    pub fn file_name(&self) -> String {
        let safe: String = self
            .job
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '_' || c == '-' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        format!("FLIGHT_{safe}.json")
    }

    /// Run the critical-path profiler over the dumped window.
    pub fn analyze(&self) -> impacc_prof::Report {
        impacc_prof::analyze(&self.spans, &[])
    }

    /// Deterministic JSON rendering. The document doubles as a Chrome
    /// trace: the trailing `displayTimeUnit`/`traceEvents` members are the
    /// standard trace-document body, so `about://tracing` loads the file
    /// as-is and simply ignores the flight header fields.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"schema_version\":{},\"kind\":\"flight\"",
            impacc_obs::SCHEMA_VERSION
        ));
        out.push_str(",\"job\":");
        out.push_str(&json::string(&self.job));
        out.push_str(",\"campaign\":");
        out.push_str(&json::string(&self.campaign));
        out.push_str(",\"trigger\":");
        out.push_str(&json::string(self.trigger.label()));
        out.push_str(",\"trigger_detail\":");
        out.push_str(&json::string(&self.trigger.detail()));
        out.push_str(&format!(",\"end_ps\":{}", self.end_ps));
        out.push_str(&format!(",\"events_retained\":{}", self.spans.len()));
        out.push_str(&format!(",\"events_dropped\":{}", self.events_dropped()));
        out.push_str(",\"dropped_by_actor\":{");
        for (i, (actor, d)) in self.dropped.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json::string(actor));
            out.push_str(&format!(":{d}"));
        }
        out.push_str("},\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json::string(k));
            out.push_str(&format!(":{v}"));
        }
        out.push_str("},\"anomalies\":[");
        for (i, a) in self.anomalies.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&a.to_json());
        }
        out.push_str("],");
        // Chrome-trace body: reuse the canonical exporter and splice its
        // members into this object (drop the exporter's own `{`).
        let chrome_doc = chrome::trace(&self.spans);
        out.push_str(chrome_doc.strip_prefix('{').unwrap_or(&chrome_doc));
        debug_assert!(chrome::structurally_valid(&out));
        out
    }

    /// Write `FLIGHT_<job>.json` atomically (tmp + rename) into `dir`,
    /// creating it as needed. Returns the final path.
    pub fn write(&self, dir: &Path) -> io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(self.file_name());
        let tmp = dir.join(format!(".{}.tmp", self.file_name()));
        std::fs::write(&tmp, self.to_json())?;
        std::fs::rename(&tmp, &path)?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(actor: &str, kind: EventKind, t0: u64, t1: u64) -> Span {
        Span {
            actor: actor.into(),
            kind,
            t0: SimTime(t0),
            t1: SimTime(t1),
            attrs: Vec::new(),
        }
    }

    fn sink_span(fr: &FlightRecorder, actor: &str, label: &'static str, t0: u64, t1: u64) {
        SpanSink::span(fr, actor, label, SimTime(t0), SimTime(t1), &mut Vec::new);
    }

    #[test]
    fn ring_keeps_the_last_n_and_counts_overwrites() {
        let fr = FlightRecorder::with_capacity(3);
        for i in 0..10u64 {
            fr.record_span(span("a", EventKind::Kernel, i, i + 1));
        }
        let spans = fr.snapshot();
        assert_eq!(spans.len(), 3);
        // Oldest-first drain of the final window [7,8,9].
        assert_eq!(spans[0].t0, SimTime(7));
        assert_eq!(spans[2].t0, SimTime(9));
        assert_eq!(fr.dropped_total(), 7);
        assert_eq!(fr.last_vtime(), SimTime(10));
    }

    #[test]
    fn snapshot_is_actor_sorted_with_per_actor_order() {
        let fr = FlightRecorder::with_capacity(8);
        fr.record_span(span("zeta", EventKind::Kernel, 0, 1));
        fr.record_span(span("alpha", EventKind::Kernel, 5, 6));
        fr.record_span(span("alpha", EventKind::Kernel, 7, 8));
        let spans = fr.snapshot();
        let order: Vec<(&str, u64)> = spans.iter().map(|s| (s.actor.as_str(), s.t0.0)).collect();
        assert_eq!(order, vec![("alpha", 5), ("alpha", 7), ("zeta", 0)]);
    }

    #[test]
    fn hot_kinds_skip_attr_closures_rare_kinds_keep_them() {
        let fr = FlightRecorder::with_capacity(8);
        let mut calls = 0;
        SpanSink::span(&fr, "a", "kernel", SimTime(0), SimTime(1), &mut || {
            calls += 1;
            vec![("bytes", "64".into())]
        });
        assert_eq!(calls, 0, "bulk kinds must not evaluate attrs");
        SpanSink::span(&fr, "a", "fault", SimTime(1), SimTime(1), &mut || {
            calls += 1;
            vec![("site", "link_drop".into())]
        });
        assert_eq!(calls, 1);
        let spans = fr.snapshot();
        assert!(spans[0].attrs.is_empty());
        assert_eq!(spans[1].attr("site"), Some("link_drop"));
        assert_eq!(fr.fault_fires(), 1);
        // Unknown labels degrade to markers carrying the label.
        sink_span(&fr, "a", "exotic", 2, 2);
        let s = fr.snapshot().pop().unwrap();
        assert_eq!(s.kind, EventKind::Marker);
        assert_eq!(s.attr("label"), Some("exotic"));
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let fr = FlightRecorder::disabled();
        assert!(!fr.enabled());
        fr.set_enabled(true); // capacity 0: cannot be enabled
        assert!(!fr.enabled());
        SpanSink::span(&fr, "a", "fault", SimTime(0), SimTime(1), &mut || {
            panic!("attrs evaluated on a disabled recorder")
        });
        assert_eq!(fr.snapshot().len(), 0);
        assert_eq!(fr.actor_count(), 0);
    }

    #[test]
    fn tee_delivers_to_both_and_evaluates_attrs_once() {
        let fr = FlightRecorder::with_capacity(8);
        let rec = impacc_obs::Recorder::new();
        let t = tee(fr.sink(), rec.sink());
        assert!(t.enabled());
        let mut calls = 0;
        t.span("a", "fault", SimTime(0), SimTime(1), &mut || {
            calls += 1;
            vec![("site", "x".into())]
        });
        assert_eq!(calls, 1, "tee must materialize attrs exactly once");
        assert_eq!(fr.snapshot()[0].attr("site"), Some("x"));
        assert_eq!(rec.spans()[0].attr("site"), Some("x"));
        // One side disabled: still exactly one evaluation, one delivery.
        let t2 = tee(FlightRecorder::disabled().sink(), rec.sink());
        let mut calls2 = 0;
        t2.span("a", "fault", SimTime(2), SimTime(3), &mut || {
            calls2 += 1;
            Vec::new()
        });
        assert_eq!(calls2, 1);
        assert_eq!(rec.spans().len(), 2);
    }

    #[test]
    fn dump_json_is_schema_versioned_chrome_loadable_and_deterministic() {
        let make = || {
            let fr = FlightRecorder::with_capacity(2);
            sink_span(&fr, "rank0", "kernel", 0, 10);
            sink_span(&fr, "rank0", "fault", 10, 10);
            sink_span(&fr, "rank0", "retry", 10, 20);
            sink_span(&fr, "rank1", "kernel", 0, 5);
            fr.dump(
                "unit",
                Trigger::FaultBurst {
                    fired: 1,
                    threshold: 1,
                },
                [("retries", 3u64)],
                &[],
            )
        };
        let d1 = make();
        let d2 = make();
        assert_eq!(d1.to_json(), d2.to_json(), "same window ⇒ same bytes");
        let doc = d1.to_json();
        assert!(doc.starts_with(&format!(
            "{{\"schema_version\":{},\"kind\":\"flight\"",
            impacc_obs::SCHEMA_VERSION
        )));
        assert!(doc.contains("\"trigger\":\"fault_burst\""));
        assert!(doc.contains("\"traceEvents\":["));
        assert!(doc.contains("\"counters\":{\"retries\":3}"));
        assert!(chrome::structurally_valid(&doc));
        // rank0's ring (cap 2) overwrote the kernel span: the retained
        // window ends with the fault/retry pair — the final moments.
        assert_eq!(d1.events_dropped(), 1);
        let rank0: Vec<EventKind> = d1
            .spans
            .iter()
            .filter(|s| s.actor == "rank0")
            .map(|s| s.kind)
            .collect();
        assert_eq!(rank0, vec![EventKind::Fault, EventKind::Retry]);
        // And the profiler consumes the dump directly.
        let rep = d1.analyze();
        assert_eq!(rep.spans, 3);
        assert_eq!(rep.end_ps, 20);
    }

    #[test]
    fn dump_write_is_atomic_and_named_by_job() {
        let dir = std::env::temp_dir().join(format!("impacc_flight_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let fr = FlightRecorder::with_capacity(4);
        sink_span(&fr, "a", "kernel", 0, 1);
        let dump = fr.dump::<String>("job/../weird name", Trigger::Request, [], &[]);
        let path = dump.write(&dir).unwrap();
        assert_eq!(
            path.file_name().unwrap().to_str().unwrap(),
            "FLIGHT_job____weird_name.json"
        );
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body, dump.to_json());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
