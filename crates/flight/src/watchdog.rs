//! Rule-based anomaly detection over the engine's counter vocabulary.
//!
//! The watchdog is deliberately dumb: a handful of threshold rules over
//! counters the runtime already maintains, so detection adds no new
//! instrumentation cost. Rules come in two determinism classes:
//!
//! * **Deterministic** rules read only virtual-time-derived counters
//!   (`retries`, `chaos_*`, `device_remaps`) — they fire identically for
//!   the same seed at every `IMPACC_PARALLEL` value, so their findings may
//!   be embedded in byte-deterministic `FLIGHT_*.json` dumps.
//! * **Non-deterministic** rules read scheduler- or wall-clock-shaped
//!   state (horizon-stall ratios, live queue depths). They feed the live
//!   `serve` health surface and may *trigger* dumps, but their findings
//!   are never embedded in dump bytes (DESIGN.md §5j determinism caveat).

use impacc_obs::json;
use impacc_obs::{EventKind, Span};
use impacc_vtime::SimTime;

/// Default `retries` threshold for the retry-storm rule.
pub const RETRY_STORM_THRESHOLD: u64 = 32;
/// Default fired-fault threshold for the fault-burst rule (also the
/// flight-dump trigger threshold, `IMPACC_FLIGHT_BURST`).
pub const FAULT_BURST_THRESHOLD: u64 = 8;
/// Consecutive strictly-increasing queue-depth observations before the
/// backlog rule fires.
pub const BACKLOG_RUN: usize = 5;

/// One watchdog finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Anomaly {
    /// Detector name (`retry_storm`, `fault_burst`, ...).
    pub rule: &'static str,
    /// `warn` or `critical`.
    pub severity: &'static str,
    /// The measurement that tripped the rule.
    pub value: u64,
    /// The threshold it crossed.
    pub threshold: u64,
    /// Human-readable context.
    pub detail: String,
    /// Whether the rule reads only virtual-time-derived state (safe to
    /// embed in deterministic flight dumps).
    pub deterministic: bool,
}

impl Anomaly {
    /// Deterministic JSON object rendering.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"rule\":{},\"severity\":{},\"value\":{},\"threshold\":{},\"deterministic\":{},\"detail\":{}}}",
            json::string(self.rule),
            json::string(self.severity),
            self.value,
            self.threshold,
            self.deterministic,
            json::string(&self.detail),
        )
    }

    /// One-line rendering for logs and the `serve top` dashboard.
    pub fn render(&self) -> String {
        format!(
            "[{}] {}: {} (value {} ≥ threshold {})",
            self.severity, self.rule, self.detail, self.value, self.threshold
        )
    }

    /// This finding as a structured `anomaly` span at instant `at`,
    /// attributed to the synthetic `watchdog` actor — recordable into both
    /// the flight rings and a full-trace recorder.
    pub fn to_span(&self, at: SimTime) -> Span {
        Span {
            actor: "watchdog".to_string(),
            kind: EventKind::Anomaly,
            t0: at,
            t1: at,
            attrs: vec![
                ("rule", self.rule.to_string()),
                ("severity", self.severity.to_string()),
                ("value", self.value.to_string()),
                ("threshold", self.threshold.to_string()),
                ("detail", self.detail.clone()),
            ],
        }
    }
}

/// The rule engine. Stateless rules live in [`Watchdog::check_counters`]
/// and [`Watchdog::check_engine`]; the queue-backlog rule keeps a short
/// depth history in the struct.
#[derive(Clone, Debug)]
pub struct Watchdog {
    /// `retries` at or above this fires `retry_storm`.
    pub retry_storm: u64,
    /// Total chaos fault fires at or above this fires `fault_burst`.
    pub fault_burst: u64,
    /// Consecutive strictly-increasing depth observations that fire
    /// `queue_backlog_growth`.
    pub backlog_run: usize,
    depths: Vec<u64>,
}

impl Default for Watchdog {
    fn default() -> Watchdog {
        Watchdog::new()
    }
}

impl Watchdog {
    /// A watchdog with the default thresholds.
    pub fn new() -> Watchdog {
        Watchdog {
            retry_storm: RETRY_STORM_THRESHOLD,
            fault_burst: FAULT_BURST_THRESHOLD,
            backlog_run: BACKLOG_RUN,
            depths: Vec::new(),
        }
    }

    /// Override the fault-burst threshold (`IMPACC_FLIGHT_BURST`).
    pub fn with_burst_threshold(mut self, threshold: u64) -> Watchdog {
        self.fault_burst = threshold.max(1);
        self
    }

    /// Deterministic rules over a run's final counter snapshot. Accepts
    /// any `(key, value)` pair slice so both the engine's
    /// `BTreeMap<&'static str, u64>` and serve's string-keyed snapshots
    /// feed it without conversion ceremony. Findings come back in a fixed
    /// rule order.
    pub fn check_counters(&self, counters: &[(&str, u64)]) -> Vec<Anomaly> {
        let get = |key: &str| {
            counters
                .iter()
                .find(|(k, _)| *k == key)
                .map_or(0, |(_, v)| *v)
        };
        let faults: u64 = counters
            .iter()
            .filter(|(k, _)| k.starts_with("chaos_"))
            .map(|(_, v)| *v)
            .sum();
        let retries = get("retries");
        let remaps = get("device_remaps");

        let mut out = Vec::new();
        if retries >= self.retry_storm {
            out.push(Anomaly {
                rule: "retry_storm",
                severity: "warn",
                value: retries,
                threshold: self.retry_storm,
                detail: format!("{retries} recovery retries in one run"),
                deterministic: true,
            });
        }
        if faults >= self.fault_burst {
            out.push(Anomaly {
                rule: "fault_burst",
                severity: "warn",
                value: faults,
                threshold: self.fault_burst,
                detail: format!("{faults} chaos faults fired across all sites"),
                deterministic: true,
            });
        }
        // Goodput collapse: recovery work dominating useful traffic —
        // each fired fault costing 4+ retries means backoff is spiralling
        // rather than absorbing.
        if faults > 0 && retries >= 4 * faults && retries >= 8 {
            out.push(Anomaly {
                rule: "goodput_collapse",
                severity: "critical",
                value: retries,
                threshold: 4 * faults,
                detail: format!(
                    "{retries} retries for {faults} faults: recovery dominates goodput"
                ),
                deterministic: true,
            });
        }
        if remaps >= 1 {
            out.push(Anomaly {
                rule: "device_loss",
                severity: "critical",
                value: remaps,
                threshold: 1,
                detail: format!("{remaps} rank(s) remapped off lost devices at launch (§3.2)"),
                deterministic: true,
            });
        }
        out
    }

    /// Non-deterministic rule over the parallel engine's horizon protocol:
    /// a run spending 4+ closed-window stalls per productive window
    /// advance is scheduling, not simulating.
    pub fn check_engine(&self, horizon_stalls: u64, parallel_advances: u64) -> Option<Anomaly> {
        if parallel_advances > 0 && horizon_stalls >= 4 * parallel_advances && horizon_stalls >= 16
        {
            return Some(Anomaly {
                rule: "horizon_stall_ratio",
                severity: "warn",
                value: horizon_stalls,
                threshold: 4 * parallel_advances,
                detail: format!(
                    "{horizon_stalls} horizon stalls vs {parallel_advances} window advances"
                ),
                deterministic: false,
            });
        }
        None
    }

    /// Non-deterministic live rule: feed the current total queue depth on
    /// every heartbeat; fires after [`Watchdog::backlog_run`] consecutive
    /// strictly-increasing observations (history resets on a fire or any
    /// non-increase).
    pub fn observe_queue_depth(&mut self, depth: u64) -> Option<Anomaly> {
        if let Some(&last) = self.depths.last() {
            if depth <= last {
                self.depths.clear();
            }
        }
        self.depths.push(depth);
        if self.depths.len() > self.backlog_run {
            let first = self.depths[0];
            self.depths.clear();
            self.depths.push(depth);
            return Some(Anomaly {
                rule: "queue_backlog_growth",
                severity: "warn",
                value: depth,
                threshold: first,
                detail: format!(
                    "queue depth grew monotonically {first} → {depth} over {} heartbeats",
                    self.backlog_run
                ),
                deterministic: false,
            });
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_storm_and_fault_burst_fire_at_threshold() {
        let wd = Watchdog::new();
        assert!(wd.check_counters(&[("retries", 31)]).is_empty());
        let found = wd.check_counters(&[("retries", 32)]);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, "retry_storm");
        assert!(found[0].deterministic);

        let found = wd.check_counters(&[("chaos_link_drop", 5), ("chaos_nic_brownout", 3)]);
        assert_eq!(found[0].rule, "fault_burst");
        assert_eq!(found[0].value, 8);
    }

    #[test]
    fn goodput_collapse_needs_fault_dominated_retries() {
        let wd = Watchdog::new();
        // 2 faults, 8 retries: 4x ratio and ≥ 8 absolute → fires.
        let found = wd.check_counters(&[("chaos_link_drop", 2), ("retries", 8)]);
        assert!(found.iter().any(|a| a.rule == "goodput_collapse"));
        // Same retries, more faults: healthy absorption, no collapse.
        let found = wd.check_counters(&[("chaos_link_drop", 4), ("retries", 8)]);
        assert!(!found.iter().any(|a| a.rule == "goodput_collapse"));
        // No faults at all: retries alone never collapse goodput.
        let found = wd.check_counters(&[("retries", 8)]);
        assert!(!found.iter().any(|a| a.rule == "goodput_collapse"));
    }

    #[test]
    fn device_loss_is_critical_and_deterministic() {
        let found = Watchdog::new().check_counters(&[("device_remaps", 2)]);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, "device_loss");
        assert_eq!(found[0].severity, "critical");
        assert!(found[0].deterministic);
    }

    #[test]
    fn horizon_rule_is_ratio_gated_and_nondeterministic() {
        let wd = Watchdog::new();
        assert!(wd.check_engine(15, 1).is_none()); // below absolute floor
        assert!(wd.check_engine(16, 5).is_none()); // below ratio
        let a = wd.check_engine(20, 5).unwrap();
        assert_eq!(a.rule, "horizon_stall_ratio");
        assert!(!a.deterministic);
    }

    #[test]
    fn backlog_rule_needs_a_sustained_run() {
        let mut wd = Watchdog::new();
        for d in [1u64, 2, 3, 4, 5] {
            assert!(wd.observe_queue_depth(d).is_none());
        }
        let a = wd.observe_queue_depth(6).unwrap();
        assert_eq!(a.rule, "queue_backlog_growth");
        assert!(!a.deterministic);
        // A dip resets the streak.
        for d in [7u64, 8, 3, 4, 5, 6, 7] {
            assert!(wd.observe_queue_depth(d).is_none());
        }
        assert!(wd.observe_queue_depth(8).is_some());
    }

    #[test]
    fn anomaly_renders_json_and_span() {
        let a = Anomaly {
            rule: "retry_storm",
            severity: "warn",
            value: 40,
            threshold: 32,
            detail: "x".into(),
            deterministic: true,
        };
        assert_eq!(
            a.to_json(),
            "{\"rule\":\"retry_storm\",\"severity\":\"warn\",\"value\":40,\"threshold\":32,\"deterministic\":true,\"detail\":\"x\"}"
        );
        let s = a.to_span(SimTime(9));
        assert_eq!(s.kind, EventKind::Anomaly);
        assert_eq!(s.actor, "watchdog");
        assert_eq!(s.attr("rule"), Some("retry_storm"));
        assert_eq!((s.t0, s.t1), (SimTime(9), SimTime(9)));
    }
}
