//! Validation and a fluent builder for custom machine descriptions.
//!
//! The presets cover the paper's three systems; downstream users modelling
//! their own clusters get a checked builder here, and every `Launch`
//! validates its spec so a bad topology fails fast with a precise message
//! instead of producing quietly absurd timings.

use std::fmt;

use crate::spec::{
    CostParams, DeviceKind, DeviceSpec, MachineSpec, MpiThreading, NetworkSpec, NodeSpec, NumaSpec,
    SocketSpec,
};

/// A problem with a machine description.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecError {
    /// Where in the spec (e.g. `nodes[2].devices[0]`).
    pub at: String,
    /// What is wrong.
    pub message: String,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid machine spec at {}: {}", self.at, self.message)
    }
}

impl std::error::Error for SpecError {}

/// Validate a machine description: socket references in range, strictly
/// positive bandwidths and capacities, sane factors.
// `!(x > 0.0)` (not `x <= 0.0`) so NaN parameters are rejected too.
#[allow(clippy::neg_cmp_op_on_partial_ord)]
pub fn validate(spec: &MachineSpec) -> Result<(), SpecError> {
    let err = |at: String, message: String| Err(SpecError { at, message });
    if spec.nodes.is_empty() {
        return err("nodes".into(), "a cluster needs at least one node".into());
    }
    for (n, node) in spec.nodes.iter().enumerate() {
        if node.sockets.is_empty() {
            return err(
                format!("nodes[{n}].sockets"),
                "a node needs at least one socket".into(),
            );
        }
        if node.mem_bytes == 0 {
            return err(format!("nodes[{n}].mem_bytes"), "zero host memory".into());
        }
        for (si, s) in node.sockets.iter().enumerate() {
            if s.cores == 0 {
                return err(format!("nodes[{n}].sockets[{si}]"), "zero cores".into());
            }
            if !(s.core_gflops > 0.0) {
                return err(
                    format!("nodes[{n}].sockets[{si}]"),
                    "non-positive core throughput".into(),
                );
            }
        }
        if !(0.0 < node.numa.far_bw_factor && node.numa.far_bw_factor <= 1.0) {
            return err(
                format!("nodes[{n}].numa.far_bw_factor"),
                format!("must be in (0, 1], got {}", node.numa.far_bw_factor),
            );
        }
        if node.numa.cross_lat < 0.0 {
            return err(
                format!("nodes[{n}].numa.cross_lat"),
                "negative latency".into(),
            );
        }
        for (di, d) in node.devices.iter().enumerate() {
            let at = format!("nodes[{n}].devices[{di}]");
            if d.socket >= node.sockets.len() {
                return err(
                    at,
                    format!(
                        "socket {} out of range (node has {})",
                        d.socket,
                        node.sockets.len()
                    ),
                );
            }
            if d.mem_bytes == 0 {
                return err(at, "zero device memory".into());
            }
            if d.kind.is_discrete() {
                if !(d.pcie_bw > 0.0) {
                    return err(at, "non-positive PCIe bandwidth".into());
                }
                if d.pcie_lat < 0.0 {
                    return err(at, "negative PCIe latency".into());
                }
                if !(d.gflops > 0.0) {
                    return err(at, "non-positive device throughput".into());
                }
                if !(d.mem_bw > 0.0) {
                    return err(at, "non-positive device memory bandwidth".into());
                }
            }
        }
    }
    if !(spec.network.nic_bw > 0.0) {
        return err("network.nic_bw".into(), "non-positive NIC bandwidth".into());
    }
    if spec.network.latency < 0.0 {
        return err("network.latency".into(), "negative latency".into());
    }
    if spec.network.bisect < 0.0 {
        return err(
            "network.bisect".into(),
            "negative bisection exponent".into(),
        );
    }
    let c = &spec.costs;
    for (name, v) in [
        ("host_memcpy_bw", c.host_memcpy_bw),
        ("p2p_efficiency", c.p2p_efficiency),
        ("kernel_efficiency", c.kernel_efficiency),
        ("pageable_factor", c.pageable_factor),
        ("net_unpinned_factor", c.net_unpinned_factor),
    ] {
        if !(v > 0.0) {
            return err(
                format!("costs.{name}"),
                format!("must be positive, got {v}"),
            );
        }
    }
    for (name, v) in [
        ("p2p_efficiency", c.p2p_efficiency),
        ("kernel_efficiency", c.kernel_efficiency),
        ("pageable_factor", c.pageable_factor),
        ("net_unpinned_factor", c.net_unpinned_factor),
    ] {
        if v > 1.0 {
            return err(format!("costs.{name}"), format!("must be ≤ 1, got {v}"));
        }
    }
    Ok(())
}

/// Fluent builder for one node.
pub struct NodeBuilder {
    node: NodeSpec,
}

impl NodeBuilder {
    /// A node with `sockets` sockets of `cores` cores each and `mem_gb`
    /// of host memory.
    pub fn new(sockets: usize, cores: usize, mem_gb: u64) -> NodeBuilder {
        NodeBuilder {
            node: NodeSpec {
                sockets: vec![
                    SocketSpec {
                        cores,
                        core_gflops: 16.0,
                    };
                    sockets
                ],
                devices: Vec::new(),
                numa: NumaSpec {
                    cross_lat: 0.6e-6,
                    far_bw_factor: 0.4,
                },
                p2p_dtod: false,
                mem_bytes: mem_gb << 30,
            },
        }
    }

    /// Attach `count` identical CUDA GPUs to `socket`.
    pub fn gpus(mut self, count: usize, socket: usize, mem_gb: u64, gflops: f64) -> NodeBuilder {
        for _ in 0..count {
            self.node.devices.push(DeviceSpec {
                model: "Custom GPU".into(),
                kind: DeviceKind::CudaGpu,
                mem_bytes: mem_gb << 30,
                cores: 2048,
                gflops,
                mem_bw: 200e9,
                socket,
                pcie_bw: 12e9,
                pcie_lat: 6e-6,
            });
        }
        self
    }

    /// Attach `count` identical OpenCL accelerators to `socket`.
    pub fn mics(mut self, count: usize, socket: usize, mem_gb: u64, gflops: f64) -> NodeBuilder {
        for _ in 0..count {
            self.node.devices.push(DeviceSpec {
                model: "Custom MIC".into(),
                kind: DeviceKind::OpenClMic,
                mem_bytes: mem_gb << 30,
                cores: 60,
                gflops,
                mem_bw: 300e9,
                socket,
                pcie_bw: 6e9,
                pcie_lat: 10e-6,
            });
        }
        self
    }

    /// Enable direct peer DtoD copies (shared root complex).
    pub fn with_p2p(mut self) -> NodeBuilder {
        self.node.p2p_dtod = true;
        self
    }

    /// Set the NUMA penalty explicitly.
    pub fn with_numa(mut self, cross_lat: f64, far_bw_factor: f64) -> NodeBuilder {
        self.node.numa = NumaSpec {
            cross_lat,
            far_bw_factor,
        };
        self
    }

    /// Finish the node.
    pub fn build(self) -> NodeSpec {
        self.node
    }
}

/// Fluent builder for a whole cluster.
pub struct ClusterBuilder {
    name: String,
    nodes: Vec<NodeSpec>,
    network: NetworkSpec,
    mpi_threading: MpiThreading,
    costs: CostParams,
}

impl ClusterBuilder {
    /// Start an empty cluster with defaults (InfiniBand-ish network,
    /// thread-multiple MPI, default cost constants).
    pub fn new(name: impl Into<String>) -> ClusterBuilder {
        ClusterBuilder {
            name: name.into(),
            nodes: Vec::new(),
            network: NetworkSpec {
                latency: 1.3e-6,
                nic_bw: 6.8e9,
                gpudirect_rdma: false,
                bisect: 0.0,
            },
            mpi_threading: MpiThreading::Multiple,
            costs: CostParams::default(),
        }
    }

    /// Add `count` copies of a node.
    pub fn nodes(mut self, count: usize, node: NodeSpec) -> ClusterBuilder {
        self.nodes.extend(std::iter::repeat_n(node, count));
        self
    }

    /// Configure the interconnect.
    pub fn network(mut self, latency: f64, nic_bw: f64, gpudirect_rdma: bool) -> ClusterBuilder {
        self.network = NetworkSpec {
            latency,
            nic_bw,
            gpudirect_rdma,
            bisect: self.network.bisect,
        };
        self
    }

    /// An MPI library without `MPI_THREAD_MULTIPLE`.
    pub fn serialized_mpi(mut self) -> ClusterBuilder {
        self.mpi_threading = MpiThreading::Serialized;
        self
    }

    /// Override cost constants.
    pub fn costs(mut self, costs: CostParams) -> ClusterBuilder {
        self.costs = costs;
        self
    }

    /// Validate and finish.
    pub fn build(self) -> Result<MachineSpec, SpecError> {
        let spec = MachineSpec {
            name: self.name,
            nodes: self.nodes,
            network: self.network,
            mpi_threading: self.mpi_threading,
            costs: self.costs,
        };
        validate(&spec)?;
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn presets_validate() {
        for spec in [
            presets::psg(),
            presets::beacon(4),
            presets::titan(16),
            presets::mixed_demo(),
        ] {
            validate(&spec).unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        }
    }

    #[test]
    fn builder_produces_a_valid_cluster() {
        let node = NodeBuilder::new(2, 12, 128)
            .gpus(2, 0, 16, 2000.0)
            .mics(1, 1, 8, 900.0)
            .with_p2p()
            .with_numa(0.5e-6, 0.35)
            .build();
        let spec = ClusterBuilder::new("custom")
            .nodes(3, node)
            .network(1.0e-6, 10e9, true)
            .build()
            .unwrap();
        assert_eq!(spec.node_count(), 3);
        assert_eq!(spec.nodes[0].devices.len(), 3);
        assert!(spec.nodes[0].p2p_dtod);
        assert!(spec.network.gpudirect_rdma);
    }

    #[test]
    fn validation_catches_bad_socket_reference() {
        let node = NodeBuilder::new(1, 8, 64).gpus(1, 3, 8, 1000.0).build();
        let err = ClusterBuilder::new("bad")
            .nodes(1, node)
            .build()
            .unwrap_err();
        assert!(err.at.contains("devices[0]"));
        assert!(err.message.contains("socket 3 out of range"));
    }

    #[test]
    fn validation_catches_bad_factors() {
        let mut spec = presets::psg();
        spec.costs.kernel_efficiency = 1.5;
        let err = validate(&spec).unwrap_err();
        assert!(err.at.contains("kernel_efficiency"));

        let mut spec = presets::psg();
        spec.nodes[0].numa.far_bw_factor = 0.0;
        assert!(validate(&spec).is_err());

        let mut spec = presets::psg();
        spec.network.nic_bw = -1.0;
        assert!(validate(&spec).is_err());
    }

    #[test]
    fn empty_cluster_is_rejected() {
        assert!(ClusterBuilder::new("empty").build().is_err());
    }
}
