//! Instantiated, contended hardware resources for a running simulation.
//!
//! A [`ClusterResources`] is built once per simulation from a
//! [`MachineSpec`]; it owns one [`SerialResource`] per contended link
//! (PCIe up/down per device, NIC tx/rx per node, host memory engine per
//! node) and converts byte counts into reservations on those links.
//!
//! All reservation methods are *non-blocking*: they return the completion
//! instant; the caller (an activity-queue engine, the message handler, a
//! task thread) decides whether and when to `advance_until` it. This is
//! what lets asynchronous operations overlap in virtual time.

use std::sync::Arc;

use impacc_chaos::Chaos;
use impacc_vtime::{SerialResource, SimDur, SimTime};

use crate::spec::{CostParams, DeviceKind, MachineSpec};

/// Direction of a host<->device transfer.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum HdDir {
    /// Host memory to device memory (OpenACC `copyin` / `update device`).
    HtoD,
    /// Device memory to host memory (`copyout` / `update host`).
    DtoH,
}

/// Analytic cost of a device kernel; converted to time against the device's
/// compute and memory throughput (roofline-style: the max of the two).
#[derive(Copy, Clone, Debug, Default)]
pub struct KernelCost {
    /// Double-precision floating-point operations performed.
    pub flops: f64,
    /// Bytes moved through device memory.
    pub bytes: f64,
}

impl KernelCost {
    /// A purely compute-bound kernel.
    pub fn flops(flops: f64) -> KernelCost {
        KernelCost { flops, bytes: 0.0 }
    }

    /// A kernel with both compute and memory components.
    pub fn new(flops: f64, bytes: f64) -> KernelCost {
        KernelCost { flops, bytes }
    }
}

/// An OpenACC compute-construct launch configuration (§2.3): gangs ×
/// workers × vector lanes of parallelism. `None` fields mean
/// "compiler-chosen", which saturates the device.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct LaunchConfig {
    /// `num_gangs(n)`.
    pub gangs: Option<u32>,
    /// `num_workers(n)`.
    pub workers: Option<u32>,
    /// `vector_length(n)`.
    pub vector: Option<u32>,
}

impl LaunchConfig {
    /// Total threads this launch exposes, if fully specified; `None` when
    /// any dimension is compiler-chosen.
    pub fn threads(&self) -> Option<u64> {
        match (self.gangs, self.workers, self.vector) {
            (Some(g), Some(w), Some(v)) => Some(g as u64 * w as u64 * v as u64),
            _ => None,
        }
    }
}

/// Both halves of an internode transfer.
#[derive(Copy, Clone, Debug)]
pub struct NetTimes {
    /// Instant the message has fully left the sender's NIC (the sender's
    /// buffer is reusable: eager-send completion).
    pub tx_end: SimTime,
    /// Instant the message is fully received at the destination.
    pub rx_end: SimTime,
}

/// The sender-side half of an internode transfer (see
/// [`ClusterResources::reserve_net_tx`]). Carries everything the receiver
/// side needs to finish the reservation without re-deriving link bandwidth.
#[derive(Copy, Clone, Debug)]
pub struct NetTx {
    /// Instant the message has fully left the sender's NIC.
    pub tx_end: SimTime,
    /// Instant the head of the message reaches the receiver (wire latency
    /// after injection starts). The earliest possible rx activity.
    pub head_arrival: SimTime,
    /// Byte time on the end-to-end bottleneck link; the rx NIC is occupied
    /// for this long starting no earlier than `head_arrival`.
    pub dur: SimDur,
}

/// Link classes with a hard minimum latency. The conservative parallel
/// scheduler derives its lookahead from these: no event can cross the
/// named link class in less virtual time than the reported minimum.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum LinkClass {
    /// Internode wire (NIC to NIC). This is the cross-*node* minimum.
    Network,
    /// Host<->device PCIe hop (minimum over all discrete devices).
    Pcie,
    /// Host memory-copy engine.
    HostMem,
}

/// Per-node contended resources.
pub struct NodeResources {
    /// Host memory-copy engine (intra-node HtoH staging shares this).
    pub host_mem: SerialResource,
    /// NIC injection (sends leaving this node).
    pub nic_tx: SerialResource,
    /// NIC ejection (receives entering this node).
    pub nic_rx: SerialResource,
    /// Per-device PCIe device-to-host direction.
    pub dev_up: Vec<SerialResource>,
    /// Per-device PCIe host-to-device direction.
    pub dev_down: Vec<SerialResource>,
}

/// All contended resources of a cluster plus the spec they were built from.
pub struct ClusterResources {
    /// The machine description used for every cost computation.
    pub spec: Arc<MachineSpec>,
    /// Per-node resources, indexed like `spec.nodes`.
    pub nodes: Vec<NodeResources>,
    /// Fault-injection handle consulted by the runtime layers that hold
    /// these resources (MPI engine, message handler, devices). Disabled
    /// unless the launcher installs a plan via
    /// [`ClusterResources::with_chaos`].
    pub chaos: Chaos,
}

impl ClusterResources {
    /// Instantiate fresh (idle) resources for `spec` with fault
    /// injection disabled.
    pub fn new(spec: Arc<MachineSpec>) -> ClusterResources {
        ClusterResources::with_chaos(spec, Chaos::disabled())
    }

    /// Instantiate fresh resources for `spec` with the given
    /// fault-injection handle.
    pub fn with_chaos(spec: Arc<MachineSpec>, chaos: Chaos) -> ClusterResources {
        let nodes = spec
            .nodes
            .iter()
            .map(|n| NodeResources {
                host_mem: SerialResource::new("host_mem"),
                nic_tx: SerialResource::new("nic_tx"),
                nic_rx: SerialResource::new("nic_rx"),
                dev_up: n
                    .devices
                    .iter()
                    .map(|_| SerialResource::new("pcie_up"))
                    .collect(),
                dev_down: n
                    .devices
                    .iter()
                    .map(|_| SerialResource::new("pcie_down"))
                    .collect(),
            })
            .collect();
        ClusterResources { spec, nodes, chaos }
    }

    fn costs(&self) -> &CostParams {
        &self.spec.costs
    }

    /// Fixed driver overhead of one accelerator copy on `kind`.
    pub fn acc_copy_overhead(&self, kind: DeviceKind) -> SimDur {
        let s = match kind {
            DeviceKind::CudaGpu => self.costs().acc_copy_overhead_cuda,
            DeviceKind::OpenClMic => self.costs().acc_copy_overhead_opencl,
            DeviceKind::CpuCores => 0.0, // integrated: no driver copy at all
        };
        SimDur::from_secs_f64(s)
    }

    /// Fixed kernel-launch overhead on `kind`.
    pub fn launch_overhead(&self, kind: DeviceKind) -> SimDur {
        let s = match kind {
            DeviceKind::CudaGpu => self.costs().kernel_launch_cuda,
            DeviceKind::OpenClMic => self.costs().kernel_launch_opencl,
            DeviceKind::CpuCores => 1e-6, // thread-pool dispatch
        };
        SimDur::from_secs_f64(s)
    }

    /// Host-side cost of a blocking synchronization point.
    pub fn sync_overhead(&self) -> SimDur {
        SimDur::from_secs_f64(self.costs().sync_overhead)
    }

    /// Software overhead of one MPI call.
    pub fn mpi_call_overhead(&self) -> SimDur {
        SimDur::from_secs_f64(self.costs().mpi_call_overhead)
    }

    /// Cost of creating + scheduling one message command through the
    /// node's message handler (§3.7).
    pub fn handler_cmd_overhead(&self) -> SimDur {
        SimDur::from_secs_f64(self.costs().handler_cmd_overhead)
    }

    /// Baseline-model extra cost per intra-node inter-process message.
    pub fn ipc_msg_overhead(&self) -> SimDur {
        SimDur::from_secs_f64(self.costs().ipc_msg_overhead)
    }

    /// Hooked-heap bookkeeping cost (malloc/free/table ops).
    pub fn heap_op_overhead(&self) -> SimDur {
        SimDur::from_secs_f64(self.costs().heap_op_overhead)
    }

    /// Reserve a host-to-host memcpy of `bytes` on `node`, starting no
    /// earlier than `earliest`. Returns the completion instant.
    pub fn reserve_host_copy(&self, node: usize, bytes: u64, earliest: SimTime) -> SimTime {
        let c = self.costs();
        let dur = SimDur::from_secs_f64(c.host_memcpy_lat)
            + SimDur::for_transfer(bytes, c.host_memcpy_bw);
        let (_, end) = self.nodes[node].host_mem.reserve_from(earliest, dur);
        end
    }

    /// Reserve a host<->device PCIe transfer. `far` selects the
    /// NUMA-unfriendly path (task pinned on the far socket): extra QPI
    /// latency and reduced bandwidth (§3.3, Figure 8). `pinned` says the
    /// host endpoint is page-locked; pageable transfers lose
    /// `pageable_factor` of the PCIe bandwidth.
    #[allow(clippy::too_many_arguments)]
    pub fn reserve_hd_copy(
        &self,
        node: usize,
        dev: usize,
        dir: HdDir,
        far: bool,
        pinned: bool,
        bytes: u64,
        earliest: SimTime,
    ) -> SimTime {
        let n = &self.spec.nodes[node];
        let d = &n.devices[dev];
        if !d.kind.is_discrete() {
            // Integrated accelerator: "copies" are elided (§2.4); charge a
            // bare host memcpy so semantics keep a cost without PCIe.
            return self.reserve_host_copy(node, bytes, earliest);
        }
        let mut lat = d.pcie_lat;
        let mut bw = d.pcie_bw;
        if far {
            lat += n.numa.cross_lat;
            bw *= n.numa.far_bw_factor;
        }
        if !pinned {
            bw *= self.costs().pageable_factor;
        }
        let dur = SimDur::from_secs_f64(lat) + SimDur::for_transfer(bytes, bw);
        let link = match dir {
            HdDir::HtoD => &self.nodes[node].dev_down[dev],
            HdDir::DtoH => &self.nodes[node].dev_up[dev],
        };
        let (_, end) = link.reserve_from(earliest, dur);
        end
    }

    /// Reserve a direct device-to-device peer copy over the shared PCIe
    /// root complex (GPUDirect P2P / DirectGMA). Panics if the node does
    /// not support it — callers must check `spec.nodes[node].p2p_dtod`.
    pub fn reserve_p2p_copy(
        &self,
        node: usize,
        src_dev: usize,
        dst_dev: usize,
        bytes: u64,
        earliest: SimTime,
    ) -> SimTime {
        let n = &self.spec.nodes[node];
        assert!(
            n.p2p_dtod,
            "node {node} does not support direct peer DtoD copies"
        );
        let s = &n.devices[src_dev];
        let d = &n.devices[dst_dev];
        let bw = s.pcie_bw.min(d.pcie_bw) * self.costs().p2p_efficiency;
        let lat = s.pcie_lat.max(d.pcie_lat);
        let dur = SimDur::from_secs_f64(lat) + SimDur::for_transfer(bytes, bw);
        // The transfer occupies the source's up-link and the destination's
        // down-link for the same span.
        let (start, _) = self.nodes[node].dev_up[src_dev].reserve_from(earliest, dur);
        let (_, end) = self.nodes[node].dev_down[dst_dev].reserve_from(start, dur);
        end
    }

    /// Effective NIC bandwidth once bisection pressure at `node_count`
    /// cluster size is applied.
    pub fn effective_nic_bw(&self) -> f64 {
        let n = self.spec.node_count().max(1) as f64;
        self.spec.network.nic_bw / n.powf(self.spec.network.bisect)
    }

    /// Minimum latency of one hop through `class` anywhere in the cluster.
    /// These are spec-derived floors: contention, chaos delays, and software
    /// overheads only ever add to them, so they are safe causal bounds.
    pub fn min_link_latency(&self, class: LinkClass) -> SimDur {
        let secs = match class {
            LinkClass::Network => self.spec.network.latency,
            LinkClass::Pcie => self
                .spec
                .nodes
                .iter()
                .flat_map(|n| n.devices.iter())
                .filter(|d| d.kind.is_discrete())
                .map(|d| d.pcie_lat)
                .fold(f64::INFINITY, f64::min),
            LinkClass::HostMem => self.spec.costs.host_memcpy_lat,
        };
        if secs.is_finite() {
            SimDur::from_secs_f64(secs)
        } else {
            // No link of this class exists (e.g. all-integrated nodes):
            // zero is the conservative answer — no lookahead credit.
            SimDur::ZERO
        }
    }

    /// Minimum virtual-time distance between a cause on one node and its
    /// earliest possible effect on another: every internode delivery pays
    /// at least the wire latency. This is the lookahead bound the
    /// conservative parallel scheduler partitions actors by node against.
    pub fn min_cross_node_latency(&self) -> SimDur {
        self.min_link_latency(LinkClass::Network)
    }

    /// Reserve an internode network transfer `src_node -> dst_node` of
    /// `bytes`: occupies the sender's NIC tx, the wire latency, and the
    /// receiver's NIC rx. Returns the instant the data is fully received.
    pub fn reserve_net(
        &self,
        src_node: usize,
        dst_node: usize,
        bytes: u64,
        earliest: SimTime,
    ) -> SimTime {
        self.reserve_net_parts(src_node, dst_node, bytes, earliest, None, None, true)
            .rx_end
    }

    /// Like [`ClusterResources::reserve_net`] but returns both halves of
    /// the transfer, and optionally models GPUDirect-RDMA endpoints:
    /// `src_dev`/`dst_dev` name device memories the transfer streams
    /// from/into directly, pinning the end-to-end bandwidth to the slowest
    /// of NIC and the involved PCIe links and occupying those links.
    #[allow(clippy::too_many_arguments)]
    pub fn reserve_net_parts(
        &self,
        src_node: usize,
        dst_node: usize,
        bytes: u64,
        earliest: SimTime,
        src_dev: Option<usize>,
        dst_dev: Option<usize>,
        pinned: bool,
    ) -> NetTimes {
        let tx = self.reserve_net_tx(
            src_node, dst_node, bytes, earliest, src_dev, dst_dev, pinned,
        );
        let rx_end = self.reserve_net_rx(dst_node, dst_dev, tx.head_arrival, tx.dur);
        NetTimes {
            tx_end: tx.tx_end,
            rx_end,
        }
    }

    /// Sender-side half of an internode transfer: occupies the sender's
    /// NIC tx (and source device up-link for GPUDirect) and computes the
    /// end-to-end byte time, but touches **no destination-node resource**.
    /// Under the conservative parallel scheduler each partition owns one
    /// simulated node's resources exclusively, so a sending actor must
    /// stop here and hand `NetTx` across the partition boundary; the
    /// receiver's delivery daemon finishes the reservation with
    /// [`ClusterResources::reserve_net_rx`] in deterministic arrival order.
    #[allow(clippy::too_many_arguments)]
    pub fn reserve_net_tx(
        &self,
        src_node: usize,
        dst_node: usize,
        bytes: u64,
        earliest: SimTime,
        src_dev: Option<usize>,
        dst_dev: Option<usize>,
        pinned: bool,
    ) -> NetTx {
        assert_ne!(src_node, dst_node, "reserve_net is internode only");
        let mut bw = self.effective_nic_bw();
        if !pinned {
            // Unregistered buffers stage through the library's internal
            // pinned pool on their way to the HCA.
            bw *= self.costs().net_unpinned_factor;
        }
        let mut wire = self.spec.network.latency;
        if let Some(d) = src_dev {
            let dev = &self.spec.nodes[src_node].devices[d];
            bw = bw.min(dev.pcie_bw);
            wire += dev.pcie_lat;
        }
        if let Some(d) = dst_dev {
            // Spec reads are side-effect free: the destination's PCIe caps
            // pin end-to-end bandwidth without touching its resources.
            let dev = &self.spec.nodes[dst_node].devices[d];
            bw = bw.min(dev.pcie_bw);
            wire += dev.pcie_lat;
        }
        let wire = SimDur::from_secs_f64(wire);
        let dur = SimDur::for_transfer(bytes, bw);
        let (tx_start, tx_end) = self.nodes[src_node].nic_tx.reserve_from(earliest, dur);
        if let Some(d) = src_dev {
            self.nodes[src_node].dev_up[d].reserve_from(tx_start, dur);
        }
        NetTx {
            tx_end,
            // The head of the message reaches the receiver after the wire
            // latency; ejection occupies the rx NIC for the byte time.
            head_arrival: tx_start + wire,
            dur,
        }
    }

    /// Receiver-side half of an internode transfer: occupies the
    /// destination's NIC rx (and device down-link for GPUDirect) from the
    /// head-arrival instant. Returns the instant the data is fully
    /// received.
    pub fn reserve_net_rx(
        &self,
        dst_node: usize,
        dst_dev: Option<usize>,
        head_arrival: SimTime,
        dur: SimDur,
    ) -> SimTime {
        let (rx_start, rx_end) = self.nodes[dst_node].nic_rx.reserve_from(head_arrival, dur);
        if let Some(d) = dst_dev {
            self.nodes[dst_node].dev_down[d].reserve_from(rx_start, dur);
        }
        rx_end
    }

    /// Execution time of a kernel of the given cost on device `dev` of
    /// `node` (excludes launch overhead, which the activity queue charges).
    pub fn kernel_dur(&self, node: usize, dev: usize, cost: &KernelCost) -> SimDur {
        self.kernel_dur_cfg(node, dev, cost, &LaunchConfig::default())
    }

    /// Like [`ClusterResources::kernel_dur`], honouring an explicit launch
    /// configuration: a launch exposing fewer threads than the device has
    /// execution lanes (Table 1's "cores per accelerator") runs the
    /// compute term at proportionally lower utilization.
    pub fn kernel_dur_cfg(
        &self,
        node: usize,
        dev: usize,
        cost: &KernelCost,
        cfg: &LaunchConfig,
    ) -> SimDur {
        let d = &self.spec.nodes[node].devices[dev];
        let (gflops, mem_bw) = match d.kind {
            DeviceKind::CpuCores => {
                // CPU-as-accelerator: all cores of the node participate
                // (host compilers generate near-peak code; no discount).
                let n = &self.spec.nodes[node];
                let total: f64 = n
                    .sockets
                    .iter()
                    .map(|s| s.cores as f64 * s.core_gflops)
                    .sum();
                (total, 50e9)
            }
            _ => (d.gflops * self.costs().kernel_efficiency, d.mem_bw),
        };
        let utilization = match cfg.threads() {
            Some(t) => {
                let lanes = self.spec.nodes[node].devices[dev].cores.max(1) as f64;
                (t as f64 / lanes).min(1.0)
            }
            None => 1.0,
        };
        let compute = cost.flops / (gflops * 1e9 * utilization.max(1e-9));
        let memory = cost.bytes / mem_bw;
        SimDur::from_secs_f64(compute.max(memory))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    fn psg_res() -> ClusterResources {
        ClusterResources::new(Arc::new(presets::psg()))
    }

    #[test]
    fn near_beats_far_by_calibrated_ratio() {
        let r = psg_res();
        let bytes = 1 << 30; // 1 GiB: latency negligible
        let near = r.reserve_hd_copy(0, 0, HdDir::HtoD, false, true, bytes, SimTime::ZERO);
        let r2 = psg_res();
        let far = r2.reserve_hd_copy(0, 0, HdDir::HtoD, true, true, bytes, SimTime::ZERO);
        let ratio =
            far.since(SimTime::ZERO).as_secs_f64() / near.since(SimTime::ZERO).as_secs_f64();
        assert!((ratio - 3.5).abs() < 0.05, "ratio = {ratio}");
    }

    #[test]
    fn small_transfers_are_latency_bound() {
        let r = psg_res();
        let near = r.reserve_hd_copy(0, 0, HdDir::HtoD, false, true, 64, SimTime::ZERO);
        let r2 = psg_res();
        let far = r2.reserve_hd_copy(0, 0, HdDir::HtoD, true, true, 64, SimTime::ZERO);
        let ratio =
            far.since(SimTime::ZERO).as_secs_f64() / near.since(SimTime::ZERO).as_secs_f64();
        assert!(
            ratio < 1.2,
            "64B transfers should be latency-dominated, ratio = {ratio}"
        );
    }

    #[test]
    fn pcie_directions_are_independent_but_same_direction_serializes() {
        let r = psg_res();
        let up = r.reserve_hd_copy(0, 0, HdDir::DtoH, false, true, 1 << 20, SimTime::ZERO);
        let down = r.reserve_hd_copy(0, 0, HdDir::HtoD, false, true, 1 << 20, SimTime::ZERO);
        assert_eq!(up, down, "full-duplex PCIe: directions don't contend");
        let second_up = r.reserve_hd_copy(0, 0, HdDir::DtoH, false, true, 1 << 20, SimTime::ZERO);
        assert!(second_up > up, "same direction must serialize");
    }

    #[test]
    fn p2p_uses_both_links_once() {
        let r = psg_res();
        let end = r.reserve_p2p_copy(0, 0, 1, 1 << 20, SimTime::ZERO);
        // Staged copy via host would be ≥ 2 PCIe traversals + host memcpy.
        let r2 = psg_res();
        let h1 = r2.reserve_hd_copy(0, 0, HdDir::DtoH, false, true, 1 << 20, SimTime::ZERO);
        let h2 = r2.reserve_hd_copy(0, 1, HdDir::HtoD, false, true, 1 << 20, h1);
        assert!(end < h2);
    }

    #[test]
    #[should_panic(expected = "does not support direct peer")]
    fn p2p_requires_capability() {
        let r = ClusterResources::new(Arc::new(presets::beacon(1)));
        let _ = r.reserve_p2p_copy(0, 0, 1, 1024, SimTime::ZERO);
    }

    #[test]
    fn internode_transfer_respects_nic_serialization() {
        let r = ClusterResources::new(Arc::new(presets::titan(4)));
        let a = r.reserve_net(0, 1, 1 << 20, SimTime::ZERO);
        let b = r.reserve_net(0, 2, 1 << 20, SimTime::ZERO);
        assert!(b > a, "both leave node 0: tx NIC serializes");
        let c = r.reserve_net(3, 2, 1 << 20, SimTime::ZERO);
        // c shares only node 2's rx with b; it starts its rx after b's.
        assert!(c > a);
    }

    #[test]
    fn bisection_pressure_reduces_bandwidth() {
        let small = ClusterResources::new(Arc::new(presets::titan(2)));
        let large = ClusterResources::new(Arc::new(presets::titan(8192)));
        assert!(large.effective_nic_bw() < small.effective_nic_bw());
    }

    #[test]
    fn min_cross_node_latency_is_the_wire_latency() {
        let r = ClusterResources::new(Arc::new(presets::titan(4)));
        let wire = SimDur::from_secs_f64(r.spec.network.latency);
        assert_eq!(r.min_cross_node_latency(), wire);
        assert_eq!(r.min_link_latency(LinkClass::Network), wire);
        assert!(wire > SimDur::ZERO, "titan wire latency must be nonzero");
    }

    #[test]
    fn min_link_latency_per_class() {
        let r = psg_res();
        let pcie_floor = r
            .spec
            .nodes
            .iter()
            .flat_map(|n| n.devices.iter())
            .filter(|d| d.kind.is_discrete())
            .map(|d| d.pcie_lat)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(
            r.min_link_latency(LinkClass::Pcie),
            SimDur::from_secs_f64(pcie_floor)
        );
        assert_eq!(
            r.min_link_latency(LinkClass::HostMem),
            SimDur::from_secs_f64(r.spec.costs.host_memcpy_lat)
        );
        // A delivery can never undercut the floor: a minimal internode
        // transfer still arrives ≥ wire latency after it is posted.
        let rt = ClusterResources::new(Arc::new(presets::titan(2)));
        let arrival = rt.reserve_net(0, 1, 1, SimTime::ZERO);
        assert!(arrival.since(SimTime::ZERO) >= rt.min_cross_node_latency());
    }

    #[test]
    fn min_pcie_latency_without_discrete_devices_is_zero() {
        let mut spec = presets::test_cluster(2, 1);
        for n in &mut spec.nodes {
            for d in &mut n.devices {
                d.kind = DeviceKind::CpuCores;
            }
        }
        let r = ClusterResources::new(Arc::new(spec));
        assert_eq!(r.min_link_latency(LinkClass::Pcie), SimDur::ZERO);
    }

    #[test]
    fn split_net_halves_match_combined_reservation() {
        let combined = ClusterResources::new(Arc::new(presets::titan(4)));
        let split = ClusterResources::new(Arc::new(presets::titan(4)));
        for (bytes, earliest) in [
            (1u64 << 20, SimTime::ZERO),
            (64, SimTime::from_secs_f64(1e-3)),
        ] {
            let whole = combined.reserve_net_parts(0, 1, bytes, earliest, None, None, true);
            let tx = split.reserve_net_tx(0, 1, bytes, earliest, None, None, true);
            let rx_end = split.reserve_net_rx(1, None, tx.head_arrival, tx.dur);
            assert_eq!(tx.tx_end, whole.tx_end);
            assert_eq!(rx_end, whole.rx_end);
        }
    }

    #[test]
    fn undersized_launches_underutilize_the_device() {
        let r = psg_res();
        let full = r.kernel_dur(0, 0, &KernelCost::flops(1e12));
        // GK210 has 2496 lanes; exposing 624 threads quarters throughput.
        let quarter = r.kernel_dur_cfg(
            0,
            0,
            &KernelCost::flops(1e12),
            &LaunchConfig {
                gangs: Some(39),
                workers: Some(1),
                vector: Some(16),
            },
        );
        let ratio = quarter.as_secs_f64() / full.as_secs_f64();
        assert!((ratio - 4.0).abs() < 0.01, "ratio = {ratio}");
        // Oversubscription does not exceed peak.
        let over = r.kernel_dur_cfg(
            0,
            0,
            &KernelCost::flops(1e12),
            &LaunchConfig {
                gangs: Some(10_000),
                workers: Some(4),
                vector: Some(32),
            },
        );
        assert_eq!(over, full);
    }

    #[test]
    fn kernel_roofline_takes_max_of_compute_and_memory() {
        let r = psg_res();
        let compute_bound = r.kernel_dur(0, 0, &KernelCost::new(1e12, 1e6));
        let memory_bound = r.kernel_dur(0, 0, &KernelCost::new(1e6, 1e12));
        let balanced = r.kernel_dur(0, 0, &KernelCost::flops(1e12));
        assert_eq!(compute_bound, balanced);
        assert!(memory_bound.as_secs_f64() > 1.0); // 1 TB over 240 GB/s
    }

    #[test]
    fn cpu_accelerator_kernels_use_all_cores() {
        let r = ClusterResources::new(Arc::new(presets::mixed_demo()));
        // Node 2 has no devices; CPU-as-accelerator is exercised through a
        // synthetic CpuCores device — kernel_dur handles it via spec, so
        // test via a direct spec poke instead.
        let mut spec = presets::mixed_demo();
        let node_mem = spec.nodes[2].mem_bytes;
        spec.nodes[2].devices.push(crate::spec::DeviceSpec {
            model: "CPU cores".into(),
            kind: DeviceKind::CpuCores,
            mem_bytes: node_mem,
            cores: 32,
            gflops: 0.0,
            mem_bw: 0.0,
            socket: 0,
            pcie_bw: 0.0,
            pcie_lat: 0.0,
        });
        let r2 = ClusterResources::new(Arc::new(spec));
        let d = r2.kernel_dur(2, 0, &KernelCost::flops(576e9));
        // 32 cores * 18 GFLOP/s = 576 GFLOP/s => 1 second.
        assert!((d.as_secs_f64() - 1.0).abs() < 1e-9);
        drop(r);
    }

    #[test]
    fn integrated_copy_elides_pcie() {
        let mut spec = presets::test_cluster(1, 1);
        spec.nodes[0].devices[0].kind = DeviceKind::CpuCores;
        let r = ClusterResources::new(Arc::new(spec));
        let end = r.reserve_hd_copy(0, 0, HdDir::HtoD, false, true, 1 << 20, SimTime::ZERO);
        let r2 = psg_res();
        let pcie = r2.reserve_hd_copy(0, 0, HdDir::HtoD, false, true, 1 << 20, SimTime::ZERO);
        assert!(end < pcie, "integrated device copies are host memcpys");
    }
}
