//! # impacc-machine — cluster topology and cost model
//!
//! Static descriptions ([`MachineSpec`]) of heterogeneous accelerator
//! clusters — nodes, NUMA sockets, accelerators, PCIe links, NICs, the
//! interconnect — plus the analytic cost model that converts byte counts
//! and kernel work into virtual-time reservations on contended
//! [`SerialResource`](impacc_vtime::SerialResource)s ([`ClusterResources`]).
//!
//! The three systems of the paper's Table 1 are provided as presets:
//! [`presets::psg`], [`presets::beacon`], [`presets::titan`], with constants
//! calibrated to reproduce the paper's measured *ratios* (the ≈3.5× NUMA
//! penalty of Figure 8, the ≈8× DtoD gap of Figure 9(c), ...).

#![warn(missing_docs)]

pub mod build;
pub mod inst;
pub mod presets;
pub mod spec;
pub mod topo;

pub use build::{validate, ClusterBuilder, NodeBuilder, SpecError};
pub use impacc_chaos::{Chaos, FaultPlan, FaultSite};
pub use inst::{
    ClusterResources, HdDir, KernelCost, LaunchConfig, LinkClass, NetTimes, NetTx, NodeResources,
};
pub use spec::{
    CostParams, DeviceKind, DeviceSpec, DeviceTypeMask, MachineSpec, MpiThreading, NetworkSpec,
    NodeSpec, NumaSpec, SocketSpec,
};
pub use topo::JobTopo;
