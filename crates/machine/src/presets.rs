//! The evaluation systems of Table 1, plus synthetic clusters for tests.
//!
//! Bandwidth/latency constants are practical (not peak) figures from public
//! specifications of the hardware in Table 1; software overhead constants
//! are calibrated so that the microbenchmark figures (Figures 8 and 9)
//! reproduce the paper's reported ratios (≈3.5× NUMA penalty on PSG, ≈8×
//! IMPACC DtoD advantage on PSG, ≈2× HtoH advantage intra-node).

use crate::spec::*;

/// NVIDIA PSG cluster node (Table 1, column 1): 2× Xeon E5-2698 v3,
/// 8× Kepler GK210 (K80 halves), PCIe Gen3 x16, CUDA.
pub fn psg_node() -> NodeSpec {
    NodeSpec {
        sockets: vec![
            SocketSpec {
                cores: 16,
                core_gflops: 18.0,
            };
            2
        ],
        devices: (0..8)
            .map(|i| DeviceSpec {
                model: "NVIDIA Kepler GK210".into(),
                kind: DeviceKind::CudaGpu,
                mem_bytes: 12 << 30,
                cores: 2496,
                gflops: 1450.0,
                mem_bw: 240e9,
                socket: i / 4, // 4 GPUs per socket's root complex
                pcie_bw: 12e9, // Gen3 x16 practical
                pcie_lat: 6e-6,
            })
            .collect(),
        numa: NumaSpec {
            cross_lat: 0.6e-6,
            // Figure 8(a)(b): far-socket transfers reach ~1/3.5 of the
            // near-socket bandwidth at large sizes.
            far_bw_factor: 1.0 / 3.5,
        },
        p2p_dtod: true, // GPUDirect peer-to-peer across the shared root complex
        mem_bytes: 256 << 30,
    }
}

/// The PSG system as used in the paper: one node (of 16).
pub fn psg() -> MachineSpec {
    MachineSpec::homogeneous(
        "PSG",
        1,
        psg_node(),
        NetworkSpec {
            latency: 1.3e-6,
            nic_bw: 6.8e9, // InfiniBand FDR
            gpudirect_rdma: false,
            bisect: 0.0,
        },
        MpiThreading::Multiple,
        CostParams::default(),
    )
}

/// Beacon node (Table 1, column 2): 2× Xeon E5-2670, 4× Xeon Phi 5110P,
/// PCIe Gen2 x16, Intel OpenCL.
pub fn beacon_node() -> NodeSpec {
    NodeSpec {
        sockets: vec![
            SocketSpec {
                cores: 8,
                core_gflops: 20.0,
            };
            2
        ],
        devices: (0..4)
            .map(|i| DeviceSpec {
                model: "Intel Xeon Phi 5110P".into(),
                kind: DeviceKind::OpenClMic,
                mem_bytes: 8 << 30,
                cores: 60,
                gflops: 1011.0,
                mem_bw: 320e9,
                socket: i / 2,
                pcie_bw: 6e9, // Gen2 x16 practical
                pcie_lat: 10e-6,
            })
            .collect(),
        numa: NumaSpec {
            cross_lat: 0.8e-6,
            far_bw_factor: 0.4,
        },
        p2p_dtod: false, // MIC peer copies stage through the host
        mem_bytes: 256 << 30,
    }
}

/// The Beacon system: `nodes` of the 48 (the paper uses up to 32).
pub fn beacon(nodes: usize) -> MachineSpec {
    MachineSpec::homogeneous(
        "Beacon",
        nodes,
        beacon_node(),
        NetworkSpec {
            latency: 1.3e-6,
            nic_bw: 6.8e9,
            gpudirect_rdma: false,
            bisect: 0.0,
        },
        MpiThreading::Multiple,
        CostParams {
            host_memcpy_bw: 16e9,
            ..CostParams::default()
        },
    )
}

/// Titan node (Table 1, column 3): AMD Opteron 6274, one Tesla K20x,
/// PCIe Gen2, Cray Gemini interconnect.
pub fn titan_node() -> NodeSpec {
    NodeSpec {
        sockets: vec![SocketSpec {
            cores: 16,
            core_gflops: 9.0,
        }],
        devices: vec![DeviceSpec {
            model: "NVIDIA Tesla K20x".into(),
            kind: DeviceKind::CudaGpu,
            mem_bytes: 6 << 30,
            cores: 2688,
            gflops: 1310.0,
            mem_bw: 250e9,
            socket: 0,
            pcie_bw: 6e9,
            pcie_lat: 7e-6,
        }],
        numa: NumaSpec {
            cross_lat: 0.0,
            far_bw_factor: 1.0, // single socket: no NUMA penalty
        },
        p2p_dtod: false, // single GPU per node
        mem_bytes: 32 << 30,
    }
}

/// The Titan system: `nodes` of the 18,688 (the paper uses up to 8,192).
pub fn titan(nodes: usize) -> MachineSpec {
    MachineSpec::homogeneous(
        "Titan",
        nodes,
        titan_node(),
        NetworkSpec {
            latency: 1.5e-6,
            nic_bw: 4.5e9, // Gemini per-node injection
            gpudirect_rdma: true,
            bisect: 0.05, // 3-D torus bisection pressure at scale
        },
        MpiThreading::Multiple,
        CostParams {
            host_memcpy_bw: 12e9,
            ..CostParams::default()
        },
    )
}

/// A small synthetic GPU cluster for tests: `nodes` × `gpus` identical
/// CUDA devices, 2 sockets, PSG-like constants.
pub fn test_cluster(nodes: usize, gpus: usize) -> MachineSpec {
    let mut node = psg_node();
    node.devices.truncate(gpus);
    for (i, d) in node.devices.iter_mut().enumerate() {
        d.socket = if gpus > 1 { i * 2 / gpus } else { 0 };
    }
    MachineSpec::homogeneous(
        "TestCluster",
        nodes,
        node,
        NetworkSpec {
            latency: 1.3e-6,
            nic_bw: 6.8e9,
            gpudirect_rdma: false,
            bisect: 0.0,
        },
        MpiThreading::Multiple,
        CostParams::default(),
    )
}

/// A Figure-2-style heterogeneous cluster: node 0 has two GPUs, node 1 has
/// one GPU and one MIC, node 2 has no accelerators at all (its CPU cores
/// serve as the accelerator under `acc_device_cpu` / CPU fallback).
pub fn mixed_demo() -> MachineSpec {
    let gpu_node = {
        let mut n = psg_node();
        n.devices.truncate(2);
        n.devices[1].socket = 1;
        n
    };
    let hybrid_node = {
        let mut n = psg_node();
        n.devices.truncate(1);
        let mut mic = beacon_node().devices.remove(0);
        mic.socket = 1;
        n.devices.push(mic);
        n
    };
    let cpu_node = {
        let mut n = psg_node();
        n.devices.clear();
        n
    };
    MachineSpec {
        name: "MixedDemo".into(),
        nodes: vec![gpu_node, hybrid_node, cpu_node],
        network: NetworkSpec {
            latency: 1.3e-6,
            nic_bw: 6.8e9,
            gpudirect_rdma: false,
            bisect: 0.0,
        },
        mpi_threading: MpiThreading::Multiple,
        costs: CostParams::default(),
    }
}

/// Render Table 1 (the target systems) for the `table1` harness binary.
pub fn table1() -> String {
    let systems = [psg(), beacon(32), titan(8192)];
    let mut out = String::new();
    out.push_str(&format!(
        "{:<28} {:>12} {:>12} {:>12}\n",
        "System", "PSG", "Beacon", "Titan"
    ));
    let row = |label: &str, f: &dyn Fn(&MachineSpec) -> String| {
        format!(
            "{:<28} {:>12} {:>12} {:>12}\n",
            label,
            f(&systems[0]),
            f(&systems[1]),
            f(&systems[2])
        )
    };
    out.push_str(&row("Nodes (modelled)", &|m| m.node_count().to_string()));
    out.push_str(&row("Sockets/node", &|m| {
        m.nodes[0].sockets.len().to_string()
    }));
    out.push_str(&row("Devices/node", &|m| {
        m.nodes[0].devices.len().to_string()
    }));
    out.push_str(&row("Device kind", &|m| {
        m.nodes[0]
            .devices
            .first()
            .map(|d| format!("{:?}", d.kind))
            .unwrap_or_default()
    }));
    out.push_str(&row("Cores/accelerator", &|m| {
        m.nodes[0].devices[0].cores.to_string()
    }));
    out.push_str(&row("Device mem (GB)", &|m| {
        (m.nodes[0].devices[0].mem_bytes >> 30).to_string()
    }));
    out.push_str(&row("PCIe BW (GB/s)", &|m| {
        format!("{:.0}", m.nodes[0].devices[0].pcie_bw / 1e9)
    }));
    out.push_str(&row("NIC BW (GB/s)", &|m| {
        format!("{:.1}", m.network.nic_bw / 1e9)
    }));
    out.push_str(&row("GPUDirect RDMA", &|m| {
        m.network.gpudirect_rdma.to_string()
    }));
    out.push_str(&row("MPI threading", &|m| format!("{:?}", m.mpi_threading)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table1_structure() {
        let p = psg();
        assert_eq!(p.nodes[0].devices.len(), 8);
        assert_eq!(p.nodes[0].sockets.len(), 2);
        assert!(p.nodes[0].p2p_dtod);
        assert_eq!(p.nodes[0].devices[0].kind, DeviceKind::CudaGpu);

        let b = beacon(32);
        assert_eq!(b.node_count(), 32);
        assert_eq!(b.nodes[0].devices.len(), 4);
        assert_eq!(b.nodes[0].devices[0].kind, DeviceKind::OpenClMic);
        assert!(!b.nodes[0].p2p_dtod);

        let t = titan(8192);
        assert_eq!(t.node_count(), 8192);
        assert_eq!(t.nodes[0].devices.len(), 1);
        assert!(t.network.gpudirect_rdma);
    }

    #[test]
    fn psg_numa_penalty_is_3_5x() {
        let p = psg();
        assert!((p.nodes[0].numa.far_bw_factor - 1.0 / 3.5).abs() < 1e-12);
    }

    #[test]
    fn mixed_demo_matches_figure2() {
        let m = mixed_demo();
        assert_eq!(m.nodes[0].devices.len(), 2);
        assert_eq!(m.nodes[1].devices.len(), 2);
        assert_eq!(m.nodes[1].devices[1].kind, DeviceKind::OpenClMic);
        assert!(m.nodes[2].devices.is_empty());
    }

    #[test]
    fn table1_renders_all_columns() {
        let t = table1();
        assert!(t.contains("PSG"));
        assert!(t.contains("Beacon"));
        assert!(t.contains("Titan"));
        assert!(t.contains("GPUDirect RDMA"));
    }

    #[test]
    fn test_cluster_socket_spread() {
        let m = test_cluster(2, 4);
        let sockets: Vec<usize> = m.nodes[0].devices.iter().map(|d| d.socket).collect();
        assert_eq!(sockets, vec![0, 0, 1, 1]);
    }
}
