//! Static description of a heterogeneous accelerator cluster.
//!
//! Mirrors the paper's platform model (§2.1): a cluster of nodes, each with
//! multi-socket NUMA CPUs and one or more accelerators hanging off PCIe,
//! connected by an interconnection network. The three evaluation systems
//! (Table 1: PSG, Beacon, Titan) are provided as presets in
//! [`crate::presets`].

use std::fmt;

/// The kind of an accelerator device, as distinguished by the IMPACC
/// runtime (§3.4): CUDA devices expose raw device pointers (`CUdeviceptr`),
/// OpenCL devices expose buffer handles (`cl_mem`) that the runtime shadows
/// with reserved host virtual addresses, and CPU accelerators share the
/// host memory outright.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum DeviceKind {
    /// A CUDA-capable discrete GPU (addressed via UVA device pointers).
    CudaGpu,
    /// An OpenCL-driven accelerator (MIC): buffer-handle addressing.
    OpenClMic,
    /// A set of host CPU cores treated as an accelerator (integrated:
    /// shares host memory, no PCIe traffic).
    CpuCores,
}

impl DeviceKind {
    /// True when the device has its own discrete memory behind PCIe.
    pub fn is_discrete(self) -> bool {
        !matches!(self, DeviceKind::CpuCores)
    }
}

/// Bit-field of acceptable device types, matching the paper's
/// `IMPACC_ACC_DEVICE_TYPE` environment variable (§3.2, Figure 2):
/// `acc_device_nvidia | acc_device_xeonphi` selects GPUs and MICs.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct DeviceTypeMask(pub u32);

impl DeviceTypeMask {
    /// `acc_device_nvidia`
    pub const NVIDIA: DeviceTypeMask = DeviceTypeMask(1);
    /// `acc_device_xeonphi`
    pub const XEONPHI: DeviceTypeMask = DeviceTypeMask(2);
    /// `acc_device_cpu`
    pub const CPU: DeviceTypeMask = DeviceTypeMask(4);
    /// `acc_device_default`: every discrete accelerator in the node, or the
    /// CPU cores if the node has none (Figure 2(a)).
    pub const DEFAULT: DeviceTypeMask = DeviceTypeMask(0);

    /// Union of two masks.
    pub fn or(self, other: DeviceTypeMask) -> DeviceTypeMask {
        DeviceTypeMask(self.0 | other.0)
    }

    /// Does this mask accept the given device kind? `DEFAULT` accepts all
    /// discrete accelerators only.
    pub fn accepts(self, kind: DeviceKind) -> bool {
        if self == DeviceTypeMask::DEFAULT {
            return kind.is_discrete();
        }
        match kind {
            DeviceKind::CudaGpu => self.0 & DeviceTypeMask::NVIDIA.0 != 0,
            DeviceKind::OpenClMic => self.0 & DeviceTypeMask::XEONPHI.0 != 0,
            DeviceKind::CpuCores => self.0 & DeviceTypeMask::CPU.0 != 0,
        }
    }
}

/// One accelerator device within a node.
#[derive(Clone, Debug)]
pub struct DeviceSpec {
    /// Marketing-ish name for diagnostics ("Tesla K20x").
    pub model: String,
    /// Which API family drives it (affects addressing and fixed overheads).
    pub kind: DeviceKind,
    /// Capacity of the device memory in bytes.
    pub mem_bytes: u64,
    /// Parallel execution lanes ("cores per accelerator" in Table 1:
    /// CUDA cores for GPUs, x86 cores for MICs). A kernel launched with
    /// fewer total threads than this underutilizes the device.
    pub cores: u32,
    /// Peak double-precision throughput used by kernel cost models, GFLOP/s.
    pub gflops: f64,
    /// Device-memory bandwidth (kernels that are memory-bound), bytes/s.
    pub mem_bw: f64,
    /// Index of the socket this device's PCIe root complex attaches to.
    pub socket: usize,
    /// PCIe bandwidth from/to this device, bytes/s (per direction).
    pub pcie_bw: f64,
    /// PCIe + driver latency per transfer, seconds.
    pub pcie_lat: f64,
}

/// One CPU socket.
#[derive(Clone, Debug)]
pub struct SocketSpec {
    /// Core count (CPU-as-accelerator tasks compute at `core_gflops * cores`).
    pub cores: usize,
    /// Per-core double-precision throughput, GFLOP/s.
    pub core_gflops: f64,
}

/// Fixed per-operation software overheads, in seconds. These are what the
/// runtime charges for driver calls, message-command bookkeeping and IPC —
/// the constants behind effects like the Beacon LULESH ~5% IMPACC
/// regression (§4.2, handler-thread overhead).
#[derive(Clone, Debug)]
pub struct CostParams {
    /// Host-to-host memcpy bandwidth within a node, bytes/s.
    pub host_memcpy_bw: f64,
    /// Fixed cost of initiating a host memcpy, s.
    pub host_memcpy_lat: f64,
    /// Software overhead per MPI call (matching, headers), s.
    pub mpi_call_overhead: f64,
    /// Extra per-message cost of inter-process intra-node transport in the
    /// baseline model (shared-memory segment handshake), s.
    pub ipc_msg_overhead: f64,
    /// Cost for a task thread to create a message command and enqueue it on
    /// the intra-node message queue, plus handler dequeue/scheduling (§3.7).
    pub handler_cmd_overhead: f64,
    /// Fixed driver cost of an accelerator memory copy (issue + completion).
    pub acc_copy_overhead_cuda: f64,
    /// Same, for OpenCL devices (higher: buffer-handle translation).
    pub acc_copy_overhead_opencl: f64,
    /// Kernel launch overhead, CUDA devices, s.
    pub kernel_launch_cuda: f64,
    /// Kernel launch overhead, OpenCL devices, s.
    pub kernel_launch_opencl: f64,
    /// Host-side cost of a blocking synchronization (`acc wait`,
    /// `MPI_Wait*`): condition polling, context switches, s.
    pub sync_overhead: f64,
    /// Cost of malloc/free bookkeeping in the hooked node heap, s.
    pub heap_op_overhead: f64,
    /// Device-to-device peer copy efficiency relative to `pcie_bw`
    /// (1.0 = full PCIe rate through the shared root complex).
    pub p2p_efficiency: f64,
    /// Effective NIC bandwidth multiplier for internode messages whose
    /// buffers were NOT pre-registered with the library: the MPI library
    /// pipelines them through its internal pinned buffers (an extra copy
    /// between the user buffer and the HCA buffer). The IMPACC runtime
    /// registers its buffers up front and sends zero-copy (§4.2's
    /// Figure 9(g)-(i) internode advantage).
    pub net_unpinned_factor: f64,
    /// PCIe bandwidth multiplier for transfers whose host endpoint is
    /// pageable (not page-locked) memory. The IMPACC runtime stages
    /// through an internal pre-pinned pool (§3.7 "the runtime internally
    /// uses the pre-pinned host memory"); application-issued
    /// `acc update` copies of heap buffers pay this penalty.
    pub pageable_factor: f64,
    /// Fraction of a discrete accelerator's peak throughput that
    /// compiler-generated kernels achieve (the IMPACC compiler translates
    /// OpenACC regions to CUDA/OpenCL — nowhere near hand-tuned cuBLAS).
    /// Applied to the compute term of the kernel roofline.
    pub kernel_efficiency: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            host_memcpy_bw: 20e9,
            host_memcpy_lat: 0.2e-6,
            mpi_call_overhead: 0.6e-6,
            ipc_msg_overhead: 0.8e-6,
            handler_cmd_overhead: 0.6e-6,
            acc_copy_overhead_cuda: 7e-6,
            acc_copy_overhead_opencl: 15e-6,
            kernel_launch_cuda: 8e-6,
            kernel_launch_opencl: 25e-6,
            sync_overhead: 2e-6,
            heap_op_overhead: 0.1e-6,
            p2p_efficiency: 0.9,
            kernel_efficiency: 0.3,
            pageable_factor: 0.5,
            net_unpinned_factor: 0.7,
        }
    }
}

/// NUMA cross-socket traversal model (QPI / HyperTransport).
#[derive(Clone, Debug)]
pub struct NumaSpec {
    /// Additional latency for a transfer that crosses sockets, s.
    pub cross_lat: f64,
    /// Bandwidth multiplier applied to PCIe transfers whose task is pinned
    /// on the far socket (<1). Figure 8 shows up to 3.5× degradation.
    pub far_bw_factor: f64,
}

/// One compute node.
#[derive(Clone, Debug)]
pub struct NodeSpec {
    /// CPU sockets.
    pub sockets: Vec<SocketSpec>,
    /// Accelerators (may be empty for CPU-only nodes).
    pub devices: Vec<DeviceSpec>,
    /// NUMA traversal model.
    pub numa: NumaSpec,
    /// Do devices share an upstream PCIe root complex, enabling direct
    /// peer DtoD copies (GPUDirect / DirectGMA, §3.7)?
    pub p2p_dtod: bool,
    /// Host main memory, bytes.
    pub mem_bytes: u64,
}

impl NodeSpec {
    /// Total CPU core count across sockets.
    pub fn total_cores(&self) -> usize {
        self.sockets.iter().map(|s| s.cores).sum()
    }
}

/// Interconnection network between nodes.
#[derive(Clone, Debug)]
pub struct NetworkSpec {
    /// One-way wire + software latency between any two nodes, s.
    pub latency: f64,
    /// Per-node injection (NIC) bandwidth, bytes/s, per direction.
    pub nic_bw: f64,
    /// Does the MPI library + NIC support direct accelerator memory access
    /// (GPUDirect RDMA): internode sends/recvs of device buffers skip the
    /// host staging copy?
    pub gpudirect_rdma: bool,
    /// Effective bisection-contention exponent: effective NIC bandwidth for
    /// collective-heavy patterns is divided by `(nodes as f64).powf(bisect)`.
    /// 0 disables (full-bisection fat-tree); Titan's 3-D torus uses a small
    /// positive value.
    pub bisect: f64,
}

/// Does the MPI library allow concurrent calls from multiple threads?
/// Without `MPI_THREAD_MULTIPLE`, IMPACC serializes internode calls per
/// node (§3.7).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum MpiThreading {
    /// `MPI_THREAD_MULTIPLE`: concurrent calls allowed.
    Multiple,
    /// Library is not thread-safe: IMPACC serializes per node.
    Serialized,
}

/// Complete description of a target system.
#[derive(Clone, Debug)]
pub struct MachineSpec {
    /// System name ("PSG", "Beacon", "Titan", ...).
    pub name: String,
    /// Per-node descriptions. All experiment helpers support heterogeneous
    /// mixes (Figure 2 uses nodes with different accelerator sets).
    pub nodes: Vec<NodeSpec>,
    /// Interconnect.
    pub network: NetworkSpec,
    /// MPI threading support.
    pub mpi_threading: MpiThreading,
    /// Software cost constants.
    pub costs: CostParams,
}

impl MachineSpec {
    /// A cluster of `n` identical nodes.
    pub fn homogeneous(
        name: impl Into<String>,
        n: usize,
        node: NodeSpec,
        network: NetworkSpec,
        mpi_threading: MpiThreading,
        costs: CostParams,
    ) -> MachineSpec {
        MachineSpec {
            name: name.into(),
            nodes: vec![node; n],
            network,
            mpi_threading,
            costs,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Total number of devices matching `mask` across the cluster; for
    /// nodes with no matching device under `DEFAULT`/`CPU`, CPU fallback is
    /// handled by the runtime (this counts raw matches only).
    pub fn matching_devices(&self, mask: DeviceTypeMask) -> usize {
        self.nodes
            .iter()
            .flat_map(|n| &n.devices)
            .filter(|d| mask.accepts(d.kind))
            .count()
    }
}

impl fmt::Display for MachineSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}: {} node(s)", self.name, self.nodes.len())?;
        if let Some(n) = self.nodes.first() {
            writeln!(
                f,
                "  sockets: {} x {} cores, mem {} GB",
                n.sockets.len(),
                n.sockets.first().map(|s| s.cores).unwrap_or(0),
                n.mem_bytes / (1 << 30)
            )?;
            for d in &n.devices {
                writeln!(
                    f,
                    "  device: {} ({:?}) {} GB, {:.0} GFLOP/s, PCIe {:.1} GB/s",
                    d.model,
                    d.kind,
                    d.mem_bytes / (1 << 30),
                    d.gflops,
                    d.pcie_bw / 1e9
                )?;
            }
        }
        writeln!(
            f,
            "  network: {:.1} GB/s/NIC, {:.1} us, GPUDirect RDMA: {}",
            self.network.nic_bw / 1e9,
            self.network.latency * 1e6,
            self.network.gpudirect_rdma
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu(socket: usize) -> DeviceSpec {
        DeviceSpec {
            model: "TestGPU".into(),
            kind: DeviceKind::CudaGpu,
            mem_bytes: 6 << 30,
            cores: 2048,
            gflops: 1000.0,
            mem_bw: 200e9,
            socket,
            pcie_bw: 12e9,
            pcie_lat: 6e-6,
        }
    }

    #[test]
    fn mask_semantics_match_figure2() {
        assert!(DeviceTypeMask::DEFAULT.accepts(DeviceKind::CudaGpu));
        assert!(DeviceTypeMask::DEFAULT.accepts(DeviceKind::OpenClMic));
        assert!(!DeviceTypeMask::DEFAULT.accepts(DeviceKind::CpuCores));
        assert!(DeviceTypeMask::NVIDIA.accepts(DeviceKind::CudaGpu));
        assert!(!DeviceTypeMask::NVIDIA.accepts(DeviceKind::OpenClMic));
        let both = DeviceTypeMask::NVIDIA.or(DeviceTypeMask::XEONPHI);
        assert!(both.accepts(DeviceKind::CudaGpu));
        assert!(both.accepts(DeviceKind::OpenClMic));
        assert!(!both.accepts(DeviceKind::CpuCores));
        assert!(DeviceTypeMask::CPU.accepts(DeviceKind::CpuCores));
    }

    #[test]
    fn matching_devices_counts_across_nodes() {
        let node = NodeSpec {
            sockets: vec![SocketSpec {
                cores: 16,
                core_gflops: 10.0,
            }],
            devices: vec![gpu(0), gpu(0)],
            numa: NumaSpec {
                cross_lat: 1e-6,
                far_bw_factor: 0.3,
            },
            p2p_dtod: true,
            mem_bytes: 256 << 30,
        };
        let m = MachineSpec::homogeneous(
            "t",
            3,
            node,
            NetworkSpec {
                latency: 1.5e-6,
                nic_bw: 5e9,
                gpudirect_rdma: false,
                bisect: 0.0,
            },
            MpiThreading::Multiple,
            CostParams::default(),
        );
        assert_eq!(m.matching_devices(DeviceTypeMask::NVIDIA), 6);
        assert_eq!(m.matching_devices(DeviceTypeMask::XEONPHI), 0);
        assert_eq!(m.node_count(), 3);
    }

    #[test]
    fn display_is_humane() {
        let m = crate::presets::psg();
        let s = format!("{m}");
        assert!(s.contains("PSG"));
        assert!(s.contains("GK210"));
    }
}
