//! Job topology queries: the rank→node placement a launch produced,
//! summarized for consumers that pick communication strategies.
//!
//! The collectives engine (`impacc-coll`) selects between flat and
//! hierarchical algorithms from this shape: a job with several ranks
//! co-resident on a node has a cheap shared-memory intra-node phase
//! available; a one-rank-per-node job does not.

/// Shape of a job's rank→node placement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobTopo {
    /// Total ranks in the job.
    pub ranks: usize,
    /// Distinct nodes hosting at least one rank.
    pub nodes_used: usize,
    /// Largest number of ranks co-resident on one node.
    pub max_ranks_per_node: usize,
}

impl JobTopo {
    /// Summarize a rank→node map (`node_of[rank]` = hosting node index).
    pub fn from_node_of(node_of: &[usize]) -> JobTopo {
        let mut counts: Vec<usize> = Vec::new();
        for &n in node_of {
            if n >= counts.len() {
                counts.resize(n + 1, 0);
            }
            counts[n] += 1;
        }
        JobTopo {
            ranks: node_of.len(),
            nodes_used: counts.iter().filter(|&&c| c > 0).count(),
            max_ranks_per_node: counts.iter().copied().max().unwrap_or(0),
        }
    }

    /// Does any node host more than one rank? (The precondition for a
    /// hierarchical collective to have a non-trivial intra-node phase.)
    pub fn multi_rank(&self) -> bool {
        self.max_ranks_per_node > 1
    }

    /// Does the job span more than one node?
    pub fn multi_node(&self) -> bool {
        self.nodes_used > 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarizes_mixed_placement() {
        let t = JobTopo::from_node_of(&[0, 0, 1, 1, 1, 3]);
        assert_eq!(t.ranks, 6);
        assert_eq!(t.nodes_used, 3); // node 2 hosts nobody
        assert_eq!(t.max_ranks_per_node, 3);
        assert!(t.multi_rank());
        assert!(t.multi_node());
    }

    #[test]
    fn one_rank_per_node_is_not_multi_rank() {
        let t = JobTopo::from_node_of(&[0, 1, 2, 3]);
        assert_eq!(t.max_ranks_per_node, 1);
        assert!(!t.multi_rank());
        assert!(t.multi_node());
    }

    #[test]
    fn all_on_one_node_is_not_multi_node() {
        let t = JobTopo::from_node_of(&[0, 0, 0]);
        assert!(t.multi_rank());
        assert!(!t.multi_node());
    }

    #[test]
    fn empty_job_degenerates() {
        let t = JobTopo::from_node_of(&[]);
        assert_eq!(t.ranks, 0);
        assert_eq!(t.nodes_used, 0);
        assert_eq!(t.max_ranks_per_node, 0);
        assert!(!t.multi_rank());
    }
}
