//! Physical storage behind simulated buffers.
//!
//! Every allocation in the simulation is backed by a [`Backing`]: a byte
//! array with a *logical* length (what the simulated program believes it
//! owns, and what all timing is computed from) and a *physical* length
//! (how many bytes this process actually stores). For correctness tests the
//! two are equal; for Titan-scale experiments (24K×24K matrices on 8,192
//! tasks) the physical length is capped so the experiment fits in RAM while
//! timing — which depends only on logical sizes — is unaffected. This
//! substitution is documented in DESIGN.md §2.

use std::sync::Arc;

use parking_lot::Mutex;

/// Reference-counted storage for one allocation. All byte accesses clip to
/// the physical prefix; logical sizes drive the cost model.
pub struct Backing {
    logical_len: u64,
    phys: Mutex<Vec<u8>>,
}

impl std::fmt::Debug for Backing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Backing(logical={}, phys={})",
            self.logical_len,
            self.phys.lock().len()
        )
    }
}

impl Backing {
    /// Allocate `logical_len` bytes, storing at most `phys_cap` of them
    /// physically (`None` = store everything).
    pub fn new(logical_len: u64, phys_cap: Option<u64>) -> Arc<Backing> {
        let phys_len = match phys_cap {
            Some(cap) => logical_len.min(cap),
            None => logical_len,
        };
        Arc::new(Backing {
            logical_len,
            phys: Mutex::new(vec![0u8; phys_len as usize]),
        })
    }

    /// The size the simulated program sees.
    pub fn logical_len(&self) -> u64 {
        self.logical_len
    }

    /// How many bytes are physically stored.
    pub fn phys_len(&self) -> u64 {
        self.phys.lock().len() as u64
    }

    /// Write `data` at `off`, clipping to the physical prefix.
    pub fn write(&self, off: u64, data: &[u8]) {
        debug_assert!(off + data.len() as u64 <= self.logical_len);
        let mut phys = self.phys.lock();
        let plen = phys.len() as u64;
        if off >= plen {
            return;
        }
        let n = ((plen - off) as usize).min(data.len());
        phys[off as usize..off as usize + n].copy_from_slice(&data[..n]);
    }

    /// Read into `out` from `off`, clipping to the physical prefix
    /// (unstored bytes read as 0).
    pub fn read(&self, off: u64, out: &mut [u8]) {
        debug_assert!(off + out.len() as u64 <= self.logical_len);
        let phys = self.phys.lock();
        let plen = phys.len() as u64;
        out.fill(0);
        if off >= plen {
            return;
        }
        let n = ((plen - off) as usize).min(out.len());
        out[..n].copy_from_slice(&phys[off as usize..off as usize + n]);
    }

    /// Copy `len` logical bytes from `src@src_off` to `dst@dst_off`,
    /// moving whatever both sides physically store.
    pub fn copy(src: &Backing, src_off: u64, dst: &Backing, dst_off: u64, len: u64) {
        debug_assert!(src_off + len <= src.logical_len);
        debug_assert!(dst_off + len <= dst.logical_len);
        if len == 0 {
            return;
        }
        if std::ptr::eq(src, dst) {
            // Self-copy (e.g. aliased regions resolve to one backing):
            // must avoid double-locking; use an intermediate.
            let mut tmp = vec![0u8; len as usize];
            src.read(src_off, &mut tmp);
            dst.write(dst_off, &tmp);
            return;
        }
        let sphys = src.phys.lock();
        let mut dphys = dst.phys.lock();
        let s_avail = (sphys.len() as u64).saturating_sub(src_off);
        let d_avail = (dphys.len() as u64).saturating_sub(dst_off);
        let n = len.min(s_avail).min(d_avail) as usize;
        if n > 0 {
            dphys[dst_off as usize..dst_off as usize + n]
                .copy_from_slice(&sphys[src_off as usize..src_off as usize + n]);
        }
        // Bytes beyond the source's physical prefix are "unknown": zero the
        // remainder of the destination's stored range so truncated runs
        // stay deterministic.
        let extra = (len.min(d_avail) as usize).saturating_sub(n);
        if extra > 0 {
            dphys[dst_off as usize + n..dst_off as usize + n + extra].fill(0);
        }
    }

    /// Write a slice of `f64`s starting at byte offset `off`.
    pub fn write_f64s(&self, off: u64, vals: &[f64]) {
        let bytes: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
        self.write(off, &bytes);
    }

    /// Read `n` `f64`s starting at byte offset `off`.
    pub fn read_f64s(&self, off: u64, n: usize) -> Vec<f64> {
        let mut bytes = vec![0u8; n * 8];
        self.read(off, &mut bytes);
        bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("chunk of 8")))
            .collect()
    }

    /// Number of f64 elements that are physically stored from offset 0.
    pub fn phys_f64_len(&self) -> usize {
        (self.phys_len() / 8) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_backing_round_trips() {
        let b = Backing::new(64, None);
        b.write(8, &[1, 2, 3, 4]);
        let mut out = [0u8; 6];
        b.read(7, &mut out);
        assert_eq!(out, [0, 1, 2, 3, 4, 0]);
    }

    #[test]
    fn truncated_backing_clips_silently() {
        let b = Backing::new(1 << 20, Some(16));
        assert_eq!(b.logical_len(), 1 << 20);
        assert_eq!(b.phys_len(), 16);
        b.write(8, &[7; 16]); // only 8 bytes land
        let mut out = [0u8; 16];
        b.read(8, &mut out);
        assert_eq!(&out[..8], &[7; 8]);
        assert_eq!(&out[8..], &[0; 8]);
        // Entirely beyond the physical prefix: all zeros, no panic.
        b.write(1000, &[9; 4]);
        let mut far = [1u8; 4];
        b.read(1000, &mut far);
        assert_eq!(far, [0; 4]);
    }

    #[test]
    fn copy_between_backings() {
        let a = Backing::new(32, None);
        let b = Backing::new(32, None);
        a.write(0, &(0u8..32).collect::<Vec<_>>());
        Backing::copy(&a, 4, &b, 8, 10);
        let mut out = [0u8; 10];
        b.read(8, &mut out);
        assert_eq!(out, [4, 5, 6, 7, 8, 9, 10, 11, 12, 13]);
    }

    #[test]
    fn copy_zeroes_tail_when_source_truncated() {
        let a = Backing::new(32, Some(4));
        let b = Backing::new(32, None);
        a.write(0, &[5; 4]);
        // Pre-dirty destination to prove the tail is zeroed.
        b.write(0, &[9; 16]);
        Backing::copy(&a, 0, &b, 0, 16);
        let mut out = [0u8; 16];
        b.read(0, &mut out);
        assert_eq!(&out[..4], &[5; 4]);
        assert_eq!(&out[4..], &[0; 12]);
    }

    #[test]
    fn self_copy_through_shared_backing() {
        let a = Backing::new(32, None);
        a.write(0, &(0u8..32).collect::<Vec<_>>());
        Backing::copy(&a, 0, &a, 16, 8);
        let mut out = [0u8; 8];
        a.read(16, &mut out);
        assert_eq!(out, [0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn f64_round_trip() {
        let b = Backing::new(80, None);
        let vals = [1.5, -2.25, 3.125];
        b.write_f64s(16, &vals);
        assert_eq!(b.read_f64s(16, 3), vals);
        assert_eq!(b.phys_f64_len(), 10);
    }

    #[test]
    fn zero_length_copy_is_noop() {
        let a = Backing::new(8, None);
        let b = Backing::new(8, None);
        Backing::copy(&a, 8, &b, 8, 0); // offsets at end, len 0: legal
    }
}
