//! Physical storage behind simulated buffers.
//!
//! Every allocation in the simulation is backed by a [`Backing`]: a byte
//! array with a *logical* length (what the simulated program believes it
//! owns, and what all timing is computed from) and a *physical* length
//! (how many bytes this process actually stores). For correctness tests the
//! two are equal; for Titan-scale experiments (24K×24K matrices on 8,192
//! tasks) the physical length is capped so the experiment fits in RAM while
//! timing — which depends only on logical sizes — is unaffected. This
//! substitution is documented in DESIGN.md §2.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Weak};

use parking_lot::Mutex;

/// Reference-counted storage for one allocation. All byte accesses clip to
/// the physical prefix; logical sizes drive the cost model.
///
/// A backing can be *watched* by [`CowSnapshot`]s (zero-copy message
/// payloads): every mutation first materializes any snapshot overlapping
/// the written range, so snapshots always observe the bytes as they were
/// at snapshot time without eagerly copying them.
pub struct Backing {
    logical_len: u64,
    phys: Mutex<Vec<u8>>,
    /// Live copy-on-write snapshots of ranges of this backing. Only
    /// consulted on mutation, and only when `watcher_count` is nonzero —
    /// the common unwatched write stays a single lock + memcpy.
    watchers: Mutex<Vec<Weak<CowSnapshot>>>,
    /// Fast-path gate: an upper bound on the live entries in `watchers`
    /// (pruned lazily when a mutation walks the list).
    watcher_count: AtomicUsize,
}

impl std::fmt::Debug for Backing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Backing(logical={}, phys={})",
            self.logical_len,
            self.phys.lock().len()
        )
    }
}

impl Backing {
    /// Allocate `logical_len` bytes, storing at most `phys_cap` of them
    /// physically (`None` = store everything).
    pub fn new(logical_len: u64, phys_cap: Option<u64>) -> Arc<Backing> {
        let phys_len = match phys_cap {
            Some(cap) => logical_len.min(cap),
            None => logical_len,
        };
        Arc::new(Backing {
            logical_len,
            phys: Mutex::new(vec![0u8; phys_len as usize]),
            watchers: Mutex::new(Vec::new()),
            watcher_count: AtomicUsize::new(0),
        })
    }

    /// The size the simulated program sees.
    pub fn logical_len(&self) -> u64 {
        self.logical_len
    }

    /// How many bytes are physically stored.
    pub fn phys_len(&self) -> u64 {
        self.phys.lock().len() as u64
    }

    /// Write `data` at `off`, clipping to the physical prefix.
    pub fn write(&self, off: u64, data: &[u8]) {
        debug_assert!(off + data.len() as u64 <= self.logical_len);
        self.materialize_watchers(off, data.len() as u64);
        let mut phys = self.phys.lock();
        let plen = phys.len() as u64;
        if off >= plen {
            return;
        }
        let n = ((plen - off) as usize).min(data.len());
        phys[off as usize..off as usize + n].copy_from_slice(&data[..n]);
    }

    /// Take a copy-on-write snapshot of `len` bytes at `off`: the snapshot
    /// observes the bytes as of now, but nothing is copied unless (until)
    /// the watched range is overwritten. Dropping the snapshot cancels the
    /// watch.
    pub fn snapshot(self: &Arc<Backing>, off: u64, len: u64) -> Arc<CowSnapshot> {
        debug_assert!(off + len <= self.logical_len);
        let snap = Arc::new(CowSnapshot {
            backing: self.clone(),
            off,
            len,
            owned: Mutex::new(None),
        });
        self.watchers.lock().push(Arc::downgrade(&snap));
        self.watcher_count.fetch_add(1, Ordering::Release);
        snap
    }

    /// Before mutating `[off, off+len)`: give every live snapshot that
    /// overlaps the range its private copy of the bytes it watches, and
    /// prune dead entries. Must be called before taking the `phys` lock.
    fn materialize_watchers(&self, off: u64, len: u64) {
        if self.watcher_count.load(Ordering::Acquire) == 0 || len == 0 {
            return;
        }
        let mut watchers = self.watchers.lock();
        let mut remaining: Vec<Weak<CowSnapshot>> = Vec::with_capacity(watchers.len());
        let mut hit: Vec<Arc<CowSnapshot>> = Vec::new();
        for w in watchers.drain(..) {
            let Some(snap) = w.upgrade() else {
                continue; // snapshot dropped: unwatch
            };
            if snap.off >= off + len || off >= snap.off + snap.len {
                remaining.push(w); // no overlap: still watching
            } else {
                hit.push(snap);
            }
        }
        let mut phys = self.phys.lock();
        let plen = phys.len() as u64;
        // Full-overwrite steal: the write is about to replace every stored
        // byte, and exactly one snapshot — watching the whole stored
        // prefix — needs the old ones. Hand it the Vec outright and let
        // the writer rebuild from fresh zeroes: same bytes everywhere, and
        // the double-buffer swap of a ping-pong send loop never memcpys.
        if hit.len() == 1 && off == 0 && len >= plen && hit[0].off == 0 && hit[0].len >= plen {
            let snap = hit.pop().expect("length checked");
            let mut owned = snap.owned.lock();
            if owned.is_none() {
                let stolen = std::mem::take(&mut *phys);
                *phys = vec![0u8; stolen.len()];
                *owned = Some(stolen);
            }
        }
        for snap in hit {
            // Overlap: capture the physically stored prefix of the watched
            // window. Bytes past the prefix read as zero both now and after
            // the write, so storing only the prefix preserves semantics
            // without ballooning phys-capped (Titan-scale) runs.
            let avail = plen.saturating_sub(snap.off);
            let n = avail.min(snap.len) as usize;
            let mut owned = snap.owned.lock();
            if owned.is_none() {
                *owned = Some(phys[snap.off as usize..snap.off as usize + n].to_vec());
            }
            // materialized: no longer needs watching
        }
        *watchers = remaining;
        self.watcher_count.store(watchers.len(), Ordering::Release);
    }

    /// Read into `out` from `off`, clipping to the physical prefix
    /// (unstored bytes read as 0).
    pub fn read(&self, off: u64, out: &mut [u8]) {
        debug_assert!(off + out.len() as u64 <= self.logical_len);
        let phys = self.phys.lock();
        let plen = phys.len() as u64;
        out.fill(0);
        if off >= plen {
            return;
        }
        let n = ((plen - off) as usize).min(out.len());
        out[..n].copy_from_slice(&phys[off as usize..off as usize + n]);
    }

    /// Copy `len` logical bytes from `src@src_off` to `dst@dst_off`,
    /// moving whatever both sides physically store.
    pub fn copy(src: &Backing, src_off: u64, dst: &Backing, dst_off: u64, len: u64) {
        debug_assert!(src_off + len <= src.logical_len);
        debug_assert!(dst_off + len <= dst.logical_len);
        if len == 0 {
            return;
        }
        if std::ptr::eq(src, dst) {
            // Self-copy (e.g. aliased regions resolve to one backing):
            // must avoid double-locking; use an intermediate. (`write`
            // runs the snapshot barrier.)
            let mut tmp = vec![0u8; len as usize];
            src.read(src_off, &mut tmp);
            dst.write(dst_off, &tmp);
            return;
        }
        dst.materialize_watchers(dst_off, len);
        let sphys = src.phys.lock();
        let mut dphys = dst.phys.lock();
        let s_avail = (sphys.len() as u64).saturating_sub(src_off);
        let d_avail = (dphys.len() as u64).saturating_sub(dst_off);
        let n = len.min(s_avail).min(d_avail) as usize;
        if n > 0 {
            dphys[dst_off as usize..dst_off as usize + n]
                .copy_from_slice(&sphys[src_off as usize..src_off as usize + n]);
        }
        // Bytes beyond the source's physical prefix are "unknown": zero the
        // remainder of the destination's stored range so truncated runs
        // stay deterministic.
        let extra = (len.min(d_avail) as usize).saturating_sub(n);
        if extra > 0 {
            dphys[dst_off as usize + n..dst_off as usize + n + extra].fill(0);
        }
    }

    /// Write a slice of `f64`s starting at byte offset `off`, serializing
    /// each value straight into the locked physical buffer (no intermediate
    /// byte vector — this sits on the kernel hot path).
    pub fn write_f64s(&self, off: u64, vals: &[f64]) {
        debug_assert!(off + 8 * vals.len() as u64 <= self.logical_len);
        self.materialize_watchers(off, 8 * vals.len() as u64);
        let mut phys = self.phys.lock();
        let plen = phys.len() as u64;
        if off >= plen {
            return;
        }
        let avail = ((plen - off) / 8) as usize;
        let whole = avail.min(vals.len());
        for (i, v) in vals[..whole].iter().enumerate() {
            let at = off as usize + 8 * i;
            phys[at..at + 8].copy_from_slice(&v.to_le_bytes());
        }
        // A value straddling the physical boundary lands partially.
        if whole < vals.len() {
            let at = off + 8 * whole as u64;
            if at < plen {
                let part = (plen - at) as usize;
                let bytes = vals[whole].to_le_bytes();
                phys[at as usize..plen as usize].copy_from_slice(&bytes[..part]);
            }
        }
    }

    /// Read `n` `f64`s starting at byte offset `off`.
    pub fn read_f64s(&self, off: u64, n: usize) -> Vec<f64> {
        let mut bytes = vec![0u8; n * 8];
        self.read(off, &mut bytes);
        bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("chunk of 8")))
            .collect()
    }

    /// Number of f64 elements that are physically stored from offset 0.
    pub fn phys_f64_len(&self) -> usize {
        (self.phys_len() / 8) as usize
    }
}

/// A copy-on-write view of `len` bytes at `off` in a [`Backing`], created
/// by [`Backing::snapshot`]. Semantically an immutable copy taken at
/// snapshot time; physically it aliases the live backing until (unless)
/// the watched range is overwritten, at which point the writer pays for
/// one private copy of the window's physically stored prefix. Readonly
/// send buffers and fused intra-node transfers therefore never allocate.
pub struct CowSnapshot {
    backing: Arc<Backing>,
    off: u64,
    len: u64,
    /// `Some(prefix)` once materialized: the physically stored prefix of
    /// the window as of snapshot time (bytes past it read as zero).
    owned: Mutex<Option<Vec<u8>>>,
}

impl std::fmt::Debug for CowSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "CowSnapshot(off={}, len={}, materialized={})",
            self.off,
            self.len,
            self.owned.lock().is_some()
        )
    }
}

impl CowSnapshot {
    /// Window length in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True for an empty window.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the writer ever had to pay for a private copy.
    pub fn is_materialized(&self) -> bool {
        self.owned.lock().is_some()
    }

    /// Read the snapshot into `out` (clipped like [`Backing::read`]:
    /// bytes beyond the stored prefix are zero).
    pub fn read(&self, off: u64, out: &mut [u8]) {
        debug_assert!(off + out.len() as u64 <= self.len);
        {
            // Scope the lock: the fall-through path re-locks the backing,
            // whose watcher barrier takes snapshot locks itself.
            let owned = self.owned.lock();
            if let Some(data) = &*owned {
                out.fill(0);
                if (off as usize) < data.len() {
                    let n = (data.len() - off as usize).min(out.len());
                    out[..n].copy_from_slice(&data[off as usize..off as usize + n]);
                }
                return;
            }
        }
        self.backing.read(self.off + off, out);
    }

    /// Copy `len` bytes of the snapshot into `dst@dst_off`, with
    /// [`Backing::copy`] truncation semantics (the destination's stored
    /// range past the snapshot's prefix is zeroed).
    pub fn copy_to(&self, dst: &Backing, dst_off: u64, len: u64) {
        debug_assert!(len <= self.len);
        debug_assert!(dst_off + len <= dst.logical_len);
        if len == 0 {
            return;
        }
        {
            let owned = self.owned.lock();
            if let Some(data) = &*owned {
                // The destination may itself be watched. Safe to barrier
                // while holding `owned`: we are materialized, so the
                // barrier can no longer reach back into this snapshot.
                dst.materialize_watchers(dst_off, len);
                let mut dphys = dst.phys.lock();
                let d_avail = (dphys.len() as u64).saturating_sub(dst_off);
                let stored = len.min(d_avail);
                let n = stored.min(data.len() as u64) as usize;
                if n > 0 {
                    dphys[dst_off as usize..dst_off as usize + n].copy_from_slice(&data[..n]);
                }
                let extra = stored as usize - n;
                if extra > 0 {
                    dphys[dst_off as usize + n..dst_off as usize + n + extra].fill(0);
                }
                return;
            }
        }
        // Untouched since the snapshot: the live backing still holds the
        // snapshot bytes, so this is a straight (zero-allocation)
        // backing-to-backing copy. `Backing::copy` handles the self-copy
        // case (and its write barrier may materialize this very snapshot
        // against the pre-write bytes — still the snapshot-time state).
        Backing::copy(&self.backing, self.off, dst, dst_off, len);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_backing_round_trips() {
        let b = Backing::new(64, None);
        b.write(8, &[1, 2, 3, 4]);
        let mut out = [0u8; 6];
        b.read(7, &mut out);
        assert_eq!(out, [0, 1, 2, 3, 4, 0]);
    }

    #[test]
    fn truncated_backing_clips_silently() {
        let b = Backing::new(1 << 20, Some(16));
        assert_eq!(b.logical_len(), 1 << 20);
        assert_eq!(b.phys_len(), 16);
        b.write(8, &[7; 16]); // only 8 bytes land
        let mut out = [0u8; 16];
        b.read(8, &mut out);
        assert_eq!(&out[..8], &[7; 8]);
        assert_eq!(&out[8..], &[0; 8]);
        // Entirely beyond the physical prefix: all zeros, no panic.
        b.write(1000, &[9; 4]);
        let mut far = [1u8; 4];
        b.read(1000, &mut far);
        assert_eq!(far, [0; 4]);
    }

    #[test]
    fn copy_between_backings() {
        let a = Backing::new(32, None);
        let b = Backing::new(32, None);
        a.write(0, &(0u8..32).collect::<Vec<_>>());
        Backing::copy(&a, 4, &b, 8, 10);
        let mut out = [0u8; 10];
        b.read(8, &mut out);
        assert_eq!(out, [4, 5, 6, 7, 8, 9, 10, 11, 12, 13]);
    }

    #[test]
    fn copy_zeroes_tail_when_source_truncated() {
        let a = Backing::new(32, Some(4));
        let b = Backing::new(32, None);
        a.write(0, &[5; 4]);
        // Pre-dirty destination to prove the tail is zeroed.
        b.write(0, &[9; 16]);
        Backing::copy(&a, 0, &b, 0, 16);
        let mut out = [0u8; 16];
        b.read(0, &mut out);
        assert_eq!(&out[..4], &[5; 4]);
        assert_eq!(&out[4..], &[0; 12]);
    }

    #[test]
    fn self_copy_through_shared_backing() {
        let a = Backing::new(32, None);
        a.write(0, &(0u8..32).collect::<Vec<_>>());
        Backing::copy(&a, 0, &a, 16, 8);
        let mut out = [0u8; 8];
        a.read(16, &mut out);
        assert_eq!(out, [0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn f64_round_trip() {
        let b = Backing::new(80, None);
        let vals = [1.5, -2.25, 3.125];
        b.write_f64s(16, &vals);
        assert_eq!(b.read_f64s(16, 3), vals);
        assert_eq!(b.phys_f64_len(), 10);
    }

    #[test]
    fn zero_length_copy_is_noop() {
        let a = Backing::new(8, None);
        let b = Backing::new(8, None);
        Backing::copy(&a, 8, &b, 8, 0); // offsets at end, len 0: legal
    }

    #[test]
    fn snapshot_aliases_until_overwritten() {
        let a = Backing::new(32, None);
        a.write(0, &[1; 16]);
        let snap = a.snapshot(0, 16);
        assert!(!snap.is_materialized(), "snapshot must not copy eagerly");
        let dst = Backing::new(32, None);
        snap.copy_to(&dst, 0, 16);
        assert!(
            !snap.is_materialized(),
            "copy-out of a clean range is zero-copy"
        );
        let mut out = [0u8; 16];
        dst.read(0, &mut out);
        assert_eq!(out, [1; 16]);
    }

    #[test]
    fn snapshot_preserves_bytes_across_overwrite() {
        let a = Backing::new(32, None);
        a.write(0, &[1; 16]);
        let snap = a.snapshot(0, 16);
        a.write(4, &[9; 8]); // sender reuses its buffer
        assert!(snap.is_materialized());
        let mut out = [0u8; 16];
        snap.read(0, &mut out);
        assert_eq!(out, [1; 16], "snapshot must show snapshot-time bytes");
        let dst = Backing::new(32, None);
        snap.copy_to(&dst, 0, 16);
        let mut got = [0u8; 16];
        dst.read(0, &mut got);
        assert_eq!(got, [1; 16]);
    }

    #[test]
    fn non_overlapping_write_keeps_snapshot_lazy() {
        let a = Backing::new(64, None);
        a.write(0, &[3; 8]);
        let snap = a.snapshot(0, 8);
        a.write(32, &[7; 8]); // disjoint range
        assert!(!snap.is_materialized());
        a.write_f64s(16, &[1.5]); // still disjoint
        assert!(!snap.is_materialized());
        let mut out = [0u8; 8];
        snap.read(0, &mut out);
        assert_eq!(out, [3; 8]);
    }

    #[test]
    fn dropped_snapshot_stops_watching() {
        let a = Backing::new(32, None);
        let snap = a.snapshot(0, 32);
        drop(snap);
        a.write(0, &[1; 32]); // prunes the dead watcher
        assert_eq!(a.watcher_count.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn snapshot_of_truncated_backing_stores_only_prefix() {
        let a = Backing::new(1 << 20, Some(8));
        a.write(0, &[5; 8]);
        let snap = a.snapshot(0, 1 << 20);
        a.write(0, &[6; 8]);
        assert!(snap.is_materialized());
        let mut out = [0u8; 16];
        snap.read(0, &mut out);
        assert_eq!(&out[..8], &[5; 8]);
        assert_eq!(&out[8..], &[0; 8], "beyond phys prefix reads as zero");
        // copy_to zeroes the destination tail like Backing::copy.
        let dst = Backing::new(32, None);
        dst.write(0, &[9; 32]);
        snap.copy_to(&dst, 0, 32);
        let mut got = [0u8; 32];
        dst.read(0, &mut got);
        assert_eq!(&got[..8], &[5; 8]);
        assert_eq!(&got[8..], &[0; 24]);
    }

    #[test]
    fn snapshot_self_copy_within_one_backing() {
        let a = Backing::new(32, None);
        a.write(0, &(0u8..32).collect::<Vec<_>>());
        let snap = a.snapshot(0, 8);
        // Destination overlaps the watched range on the same backing.
        snap.copy_to(&a, 4, 8);
        let mut out = [0u8; 12];
        a.read(0, &mut out);
        assert_eq!(out, [0, 1, 2, 3, 0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn full_overwrite_steals_into_sole_snapshot() {
        let a = Backing::new(16, None);
        a.write(0, &[1; 16]);
        let snap = a.snapshot(0, 16);
        // The write replaces every stored byte: the snapshot takes
        // ownership of the old Vec instead of copying it.
        a.write(0, &[2; 16]);
        assert!(snap.is_materialized());
        let mut old = [0u8; 16];
        snap.read(0, &mut old);
        assert_eq!(old, [1; 16], "snapshot keeps pre-write bytes");
        let mut new = [0u8; 16];
        a.read(0, &mut new);
        assert_eq!(new, [2; 16], "backing holds post-write bytes");
    }

    #[test]
    fn full_overwrite_steal_with_short_write_zeroes_tail() {
        // `copy` with a truncated source covers the whole destination
        // range but lands fewer bytes; the steal must leave the unwritten
        // remainder zeroed, exactly like the copying path.
        let src = Backing::new(16, Some(4));
        src.write(0, &[7; 4]);
        let dst = Backing::new(16, None);
        dst.write(0, &[1; 16]);
        let snap = dst.snapshot(0, 16);
        Backing::copy(&src, 0, &dst, 0, 16);
        assert!(snap.is_materialized());
        let mut old = [0u8; 16];
        snap.read(0, &mut old);
        assert_eq!(old, [1; 16]);
        let mut new = [0u8; 16];
        dst.read(0, &mut new);
        assert_eq!(&new[..4], &[7; 4]);
        assert_eq!(&new[4..], &[0; 12], "tail past truncated source is zero");
    }

    #[test]
    fn partial_overwrite_does_not_steal() {
        let a = Backing::new(16, None);
        a.write(0, &(0u8..16).collect::<Vec<_>>());
        let snap = a.snapshot(0, 16);
        a.write(4, &[9; 4]); // covers part of the range: copying path
        assert!(snap.is_materialized());
        let mut old = [0u8; 16];
        snap.read(0, &mut old);
        assert_eq!(old, (0u8..16).collect::<Vec<_>>().as_slice());
        let mut new = [0u8; 16];
        a.read(0, &mut new);
        assert_eq!(&new[..4], &[0, 1, 2, 3], "untouched prefix survives");
        assert_eq!(&new[4..8], &[9; 4]);
        assert_eq!(&new[8..], &(8u8..16).collect::<Vec<_>>()[..]);
    }

    #[test]
    fn full_overwrite_with_two_watchers_preserves_both() {
        let a = Backing::new(8, None);
        a.write(0, &[3; 8]);
        let s1 = a.snapshot(0, 8);
        let s2 = a.snapshot(0, 8);
        a.write(0, &[4; 8]); // two claimants: nobody steals, both copy
        for s in [&s1, &s2] {
            assert!(s.is_materialized());
            let mut old = [0u8; 8];
            s.read(0, &mut old);
            assert_eq!(old, [3; 8]);
        }
        let mut new = [0u8; 8];
        a.read(0, &mut new);
        assert_eq!(new, [4; 8]);
    }

    #[test]
    fn narrow_snapshot_is_not_stolen_by_full_overwrite() {
        let a = Backing::new(16, None);
        a.write(0, &(0u8..16).collect::<Vec<_>>());
        let snap = a.snapshot(4, 4); // watches a slice, not the prefix
        a.write(0, &[9; 16]);
        assert!(snap.is_materialized());
        let mut old = [0u8; 4];
        snap.read(0, &mut old);
        assert_eq!(old, [4, 5, 6, 7]);
        let mut new = [0u8; 16];
        a.read(0, &mut new);
        assert_eq!(new, [9; 16]);
    }

    #[test]
    fn write_f64s_straddling_phys_boundary() {
        let a = Backing::new(80, Some(20)); // 2.5 f64 slots stored
        a.write_f64s(0, &[1.0, 2.0, 3.0]);
        assert_eq!(a.read_f64s(0, 2), vec![1.0, 2.0]);
        // The third value landed partially (4 of 8 bytes).
        let mut raw = [0u8; 8];
        a.read(16, &mut raw);
        assert_eq!(&raw[..4], &3.0f64.to_le_bytes()[..4]);
        assert_eq!(&raw[4..], &[0; 4]);
    }
}
